//! Adversarial battery for the solution-certification subsystem.
//!
//! The claims under test, end to end:
//!
//! 1. **Hilbert fixture (acceptance criterion)** — on `H₁₂ + 1e-12·I`
//!    the direct Cholesky path *succeeds* while its solution is
//!    untrustworthy (forward error and certified error bound both far
//!    above 1e-8); the certified pipeline keeps the backward error at the
//!    working-precision floor (≤ 1e-12) and escalates until a rung
//!    certifies.
//! 2. **Fit-level escalation** — a graded-spectrum dataset makes the
//!    fit's first factorization fail *certification* (not factorization),
//!    and the `FitReport` records the escalation plus certified
//!    certificates for the accepted rung.
//! 3. **Determinism** — certificates are bitwise identical between the
//!    serial and threaded backends, on every solver path.
//! 4. **Monotonicity** — iterative refinement never returns an iterate
//!    with a larger backward error than its input, across conditioning
//!    regimes and perturbation sizes.
//! 5. **Coverage** — every fit path (dense NE, sparse dual NE, dense
//!    LSQR, sparse LSQR, matrix-free operator) records one certificate
//!    per response and a `worst_backward_error` summary, exported as
//!    `srda-obs` gauges.

use srda::{CertStatus, ExecPolicy, Recorder, ResponseSolver, Srda, SrdaConfig, SrdaSolver};
use srda_linalg::ops::matvec;
use srda_linalg::{refine, Cholesky, Mat};
use srda_solvers::certify_spd_solve;
use srda_sparse::CsrMatrix;

/// Hilbert matrix: the canonical ill-conditioned SPD fixture.
fn hilbert(n: usize) -> Mat {
    Mat::from_fn(n, n, |i, j| 1.0 / (i as f64 + j as f64 + 1.0))
}

/// Deterministic noise in [-0.5, 0.5).
fn noise(i: usize, j: usize) -> f64 {
    let t = (i as f64 * 91.17 + j as f64 * 13.73).sin() * 43758.5453;
    t - t.floor() - 0.5
}

/// Three classes, 4-D, well-separated — 2 responses, benign conditioning.
fn three_blobs() -> (Mat, Vec<usize>) {
    let centers = [
        [0.0, 0.0, 0.0, 0.0],
        [5.0, 0.0, 5.0, 0.0],
        [0.0, 5.0, 0.0, 5.0],
    ];
    let mut rows = Vec::new();
    let mut y = Vec::new();
    for (k, c) in centers.iter().enumerate() {
        for s in 0..6 {
            rows.push((0..4).map(|d| c[d] + noise(k * 31 + s * 7, d) * 0.3).collect::<Vec<_>>());
            y.push(k);
        }
    }
    (Mat::from_rows(&rows).unwrap(), y)
}

/// Columns scaled by `10⁻ʲ`: the Gram matrix factors fine but its κ is
/// astronomical, so certification (not breakdown) drives the escalation.
fn graded(m: usize, n: usize) -> Mat {
    Mat::from_fn(m, n, |i, j| noise(i, j) * 10f64.powi(-(j as i32)))
}

fn inf_norm(v: &[f64]) -> f64 {
    v.iter().fold(0.0f64, |m, &t| m.max(t.abs()))
}

/// Everything observable about a certificate, as bit patterns.
fn cert_bits(rep: &srda::FitReport) -> Vec<(u64, u64, usize, CertStatus)> {
    rep.certificates
        .iter()
        .map(|c| {
            (
                c.backward_error.to_bits(),
                c.cond_estimate.to_bits(),
                c.refinement_steps,
                c.certified,
            )
        })
        .collect()
}

// ---------------------------------------------------------------------
// 1. Hilbert acceptance fixture
// ---------------------------------------------------------------------

#[test]
fn hilbert_direct_solve_is_untrustworthy_until_escalation_certifies() {
    let n = 12;
    let alpha = 1e-12;
    let mut g = hilbert(n);
    g.add_to_diag(alpha);
    let x_true: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.7).sin()).collect();
    let b = matvec(&g, &x_true).unwrap();

    // The direct path alone: the factorization succeeds, but with
    // κ ≈ 2e12 the solution's forward error is garbage at the 1e-8 level
    // — and the certificate's error bound κ·η flags exactly that.
    let chol = Cholesky::factor(&g).unwrap();
    let cond = chol.condition_estimate();
    assert!(cond > 1e10, "κ(H₁₂ + 1e-12·I) must be seen as huge: {cond:e}");
    let x_direct = chol.solve(&b).unwrap();
    let diff: Vec<f64> = x_direct.iter().zip(&x_true).map(|(a, b)| a - b).collect();
    let fwd_err = inf_norm(&diff) / inf_norm(&x_true);
    assert!(
        fwd_err > 1e-8,
        "the uncertified direct solve should be visibly wrong: {fwd_err:e}"
    );
    let eta_direct = refine::backward_error(&g, &b, &x_direct);
    assert!(
        cond * eta_direct > 1e-8,
        "the certificate must flag the direct solve: bound {:e}",
        cond * eta_direct
    );

    // The certified pipeline: refinement keeps η at the working-precision
    // floor (≤ 1e-12), and because κ·ε can never pass the forward-error
    // bound at this conditioning, the verdict demands escalation.
    let mut x = x_direct.clone();
    let cert = certify_spd_solve(&chol, &g, cond, &b, &mut x, 8).unwrap();
    assert!(
        cert.backward_error <= 1e-12,
        "certified-pipeline η = {:e}",
        cert.backward_error
    );
    assert_ne!(
        cert.certified,
        CertStatus::Certified,
        "κ·η = {:e} cannot be certified without escalation",
        cert.error_bound()
    );

    // Walk the ladder's jitter schedule (base α·10, ×10 per retry, 3
    // retries — the RobustRidge defaults): a rung must certify, and its
    // backward error must stay at the floor.
    let mut escalations = 0;
    let mut accepted = None;
    for retry in 1..=3 {
        let jitter = (alpha * 10.0) * 10f64.powi(retry - 1);
        let mut gk = hilbert(n);
        gk.add_to_diag(alpha + jitter);
        let cholk = Cholesky::factor(&gk).unwrap();
        let condk = cholk.condition_estimate();
        let mut xk = cholk.solve(&b).unwrap();
        escalations += 1;
        let ck = certify_spd_solve(&cholk, &gk, condk, &b, &mut xk, 8).unwrap();
        if !ck.is_suspect() {
            accepted = Some(ck);
            break;
        }
    }
    let accepted = accepted.expect("the jitter ladder must reach a certifiable rung");
    assert!(escalations >= 1, "escalation must be exercised");
    assert!(
        accepted.backward_error <= 1e-12,
        "escalated solve η = {:e}",
        accepted.backward_error
    );
    assert!(accepted.cond_estimate < cond, "jitter must lower κ");
}

// ---------------------------------------------------------------------
// 2. Fit-level escalation recorded in FitReport
// ---------------------------------------------------------------------

#[test]
fn graded_fit_escalates_on_certification_and_reports_it() {
    // 7 graded columns put κ(Gram) ≈ 1e13: far enough below 1/(n·ε) that
    // the factorization itself always succeeds, far enough above the
    // certification bound that the direct rung can never pass κ·η ≤ 1e-4
    // — escalation is driven by the certificate, not by a breakdown.
    let x = graded(16, 7);
    let y: Vec<usize> = (0..16).map(|i| i / 8).collect();
    let model = Srda::new(SrdaConfig {
        alpha: 0.0,
        ..SrdaConfig::default()
    })
    .fit_dense(&x, &y)
    .unwrap();

    let rep = model.fit_report();
    assert!(!rep.clean(), "a certification escalation is not a clean fit");
    assert!(
        rep.warnings.iter().any(|w| w.contains("failed certification")),
        "warnings must say certification drove the ladder: {:?}",
        rep.warnings
    );
    assert!(!rep.recoveries.is_empty());
    assert!(
        rep.responses
            .iter()
            .all(|s| !matches!(s, ResponseSolver::Direct)),
        "the plain direct solve must not survive: {:?}",
        rep.responses
    );
    // the accepted rung's certificates are clean and at the precision floor
    assert!(!rep.certificates.is_empty());
    assert!(rep.certificates.iter().all(|c| !c.is_suspect()));
    let worst = rep.worst_backward_error.expect("certificates were recorded");
    assert!(worst <= 1e-12, "certified fit η = {worst:e}");
    let w = model.embedding().weights();
    assert!(w.as_slice().iter().all(|v| v.is_finite()));
}

// ---------------------------------------------------------------------
// 3. Serial ≡ threaded certificate identity
// ---------------------------------------------------------------------

fn fit_dense_with(x: &Mat, y: &[usize], solver: SrdaSolver, exec: ExecPolicy) -> srda::SrdaModel {
    Srda::new(SrdaConfig {
        solver,
        exec,
        ..SrdaConfig::default()
    })
    .fit_dense(x, y)
    .unwrap()
}

#[test]
fn certificates_are_bitwise_identical_serial_vs_threaded() {
    let (x, y) = three_blobs();

    // direct normal-equations path
    let s = fit_dense_with(&x, &y, SrdaSolver::NormalEquations, ExecPolicy::serial());
    let t = fit_dense_with(&x, &y, SrdaSolver::NormalEquations, ExecPolicy::threaded(4));
    let base = cert_bits(s.fit_report());
    assert_eq!(base.len(), 2, "one certificate per response");
    assert_eq!(base, cert_bits(t.fit_report()), "NE path");

    // LSQR path (fixed iteration budget, the paper's configuration)
    let lsqr = |exec| {
        fit_dense_with(
            &x,
            &y,
            SrdaSolver::Lsqr {
                max_iter: 40,
                tol: 0.0,
            },
            exec,
        )
    };
    let s = lsqr(ExecPolicy::serial());
    let t = lsqr(ExecPolicy::threaded(4));
    let base = cert_bits(s.fit_report());
    assert_eq!(base.len(), 2);
    assert_eq!(base, cert_bits(t.fit_report()), "LSQR path");

    // sparse dual path
    let xs = CsrMatrix::from_dense(&x, 0.0);
    let sparse = |exec| {
        Srda::new(SrdaConfig {
            exec,
            ..SrdaConfig::default()
        })
        .fit_sparse(&xs, &y)
        .unwrap()
    };
    let s = sparse(ExecPolicy::serial());
    let t = sparse(ExecPolicy::threaded(4));
    let base = cert_bits(s.fit_report());
    assert_eq!(base.len(), 2);
    assert_eq!(base, cert_bits(t.fit_report()), "sparse dual path");
}

// ---------------------------------------------------------------------
// 4. Refinement monotonicity across fixtures
// ---------------------------------------------------------------------

#[test]
fn refinement_never_increases_backward_error_across_fixtures() {
    for n in [6, 10, 12] {
        for shift in [1e-6, 1e-10, 1e-13] {
            let mut g = hilbert(n);
            g.add_to_diag(shift);
            let chol = match Cholesky::factor(&g) {
                Ok(c) => c,
                Err(_) => continue, // fixture too singular to factor at all
            };
            let x_true: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.7).sin()).collect();
            let b = matvec(&g, &x_true).unwrap();
            for perturb in [0.0, 1e-8, 1e-2] {
                let mut x = chol.solve(&b).unwrap();
                for v in x.iter_mut() {
                    *v *= 1.0 + perturb;
                }
                let before = refine::backward_error(&g, &b, &x);
                let rep = refine::refine_solve(&chol, &g, &b, &mut x, 6).unwrap();
                let after = refine::backward_error(&g, &b, &x);
                assert!(
                    after <= before * (1.0 + 1e-12) + f64::EPSILON,
                    "n={n} shift={shift:e} perturb={perturb:e}: \
                     η went {before:e} -> {after:e}"
                );
                // the report is honest about the returned iterate
                assert!(
                    (after - rep.backward_error).abs()
                        <= after.max(1e-300) * 1e-6 + 1e-18,
                    "n={n}: reported {:e} vs actual {after:e}",
                    rep.backward_error
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// 5. Every fit path records certificates + obs gauges
// ---------------------------------------------------------------------

#[test]
fn every_fit_path_records_certificates() {
    let (x, y) = three_blobs();
    let xs = CsrMatrix::from_dense(&x, 0.0);

    // dense direct (primal NE)
    let m = Srda::new(SrdaConfig::default()).fit_dense(&x, &y).unwrap();
    let rep = m.fit_report();
    assert!(rep.clean());
    assert_eq!(rep.certificates.len(), 2);
    assert!(rep
        .certificates
        .iter()
        .all(|c| c.certified == CertStatus::Certified));
    assert!(rep.worst_backward_error.is_some());
    assert!(rep.condition_estimate.is_some());

    // sparse direct (dual NE)
    let m = Srda::new(SrdaConfig::default()).fit_sparse(&xs, &y).unwrap();
    let rep = m.fit_report();
    assert!(rep.clean());
    assert_eq!(rep.certificates.len(), 2);
    assert!(rep
        .certificates
        .iter()
        .all(|c| c.certified == CertStatus::Certified));
    assert!(rep.responses.iter().all(|s| *s == ResponseSolver::Direct));

    // dense and sparse LSQR, converged to a real tolerance
    let lsqr_cfg = || SrdaConfig {
        solver: SrdaSolver::Lsqr {
            max_iter: 200,
            tol: 1e-10,
        },
        ..SrdaConfig::default()
    };
    let m = Srda::new(lsqr_cfg()).fit_dense(&x, &y).unwrap();
    let rep = m.fit_report();
    assert_eq!(rep.certificates.len(), 2);
    assert!(rep.certificates.iter().all(|c| !c.is_suspect()));
    assert!(rep.worst_backward_error.is_some());

    let m = Srda::new(lsqr_cfg()).fit_sparse(&xs, &y).unwrap();
    let rep = m.fit_report();
    assert_eq!(rep.certificates.len(), 2);
    assert!(rep.certificates.iter().all(|c| !c.is_suspect()));
}

#[test]
fn certification_summary_is_exported_as_gauges() {
    let (x, y) = three_blobs();
    let rec = Recorder::new_enabled();
    let model = Srda::new(SrdaConfig {
        recorder: rec,
        ..SrdaConfig::default()
    })
    .fit_dense(&x, &y)
    .unwrap();
    let snapshot = rec.snapshot();
    let worst = snapshot
        .gauges
        .get("fit.worst_backward_error")
        .copied()
        .expect("worst-backward-error gauge must be exported");
    assert_eq!(
        worst.to_bits(),
        model
            .fit_report()
            .worst_backward_error
            .expect("certificates recorded")
            .to_bits()
    );
    assert_eq!(snapshot.gauges.get("fit.certificates.suspect"), Some(&0.0));
}
