//! Deterministic fault injection for every recovery path in the fit
//! pipeline, driven through the `srda_linalg::failpoint` registry (the
//! `failpoints` feature is enabled for test builds by this package's
//! dev-dependencies; release builds contain none of it).
//!
//! Three recovery paths are exercised end to end:
//!
//! 1. **Jitter retry** — a forced `Cholesky::factor` failure makes the
//!    fit re-factor with escalating diagonal loading; the `FitReport`
//!    records the retry and the warning.
//! 2. **LSQR fallback** — when every factorization fails, the fit solves
//!    matrix-free with damped LSQR and says so.
//! 3. **Disk-I/O error surfacing** — an injected `DiskCsr` read failure
//!    poisons the matvec, LSQR stops with `Diverged`, and the fit
//!    returns an error instead of a NaN model.
//!
//! Failpoints are thread-local, so every test arms and resets its own
//! state and stays on one thread (no `parallel_responses`).

use srda::{RecoveryAction, ResponseSolver, Srda, SrdaConfig, SrdaError, SrdaSolver};
use srda_linalg::failpoint;
use srda_linalg::Mat;
use srda_sparse::CsrMatrix;

/// Two well-separated blobs — small enough that every solver is exact.
fn blobs() -> (Mat, Vec<usize>) {
    let x = Mat::from_rows(&[
        vec![0.0, 0.1, -0.1],
        vec![0.1, -0.1, 0.0],
        vec![-0.1, 0.0, 0.1],
        vec![0.05, 0.05, 0.0],
        vec![4.0, 4.1, 3.9],
        vec![4.1, 3.9, 4.0],
        vec![3.9, 4.0, 4.1],
        vec![4.0, 4.0, 4.0],
    ])
    .unwrap();
    let y = vec![0, 0, 0, 0, 1, 1, 1, 1];
    (x, y)
}

#[test]
fn forced_cholesky_failure_recovers_via_jitter_retry() {
    failpoint::reset();
    let (x, y) = blobs();
    // fail only the first factorization: the first jittered retry works
    failpoint::arm("cholesky.singular", 1);
    let model = Srda::new(SrdaConfig::default()).fit_dense(&x, &y).unwrap();
    assert_eq!(failpoint::fired("cholesky.singular"), 1);
    failpoint::reset();

    let rep = model.fit_report();
    assert!(!rep.clean());
    assert!(
        rep.responses
            .iter()
            .all(|s| matches!(s, ResponseSolver::DirectJittered { jitter } if *jitter > 0.0)),
        "expected jittered responses, got {:?}",
        rep.responses
    );
    assert_eq!(rep.recoveries.len(), 1);
    assert!(matches!(
        rep.recoveries[0],
        RecoveryAction::JitterRetry { .. }
    ));
    assert!(rep.warnings.iter().any(|w| w.contains("recovered")));
    assert!(rep.condition_estimate.is_some());
    // the jittered model is a valid (more-regularized) SRDA model
    let w = model.embedding().weights();
    assert!(w.as_slice().iter().all(|v| v.is_finite()));
}

#[test]
fn exhausted_jitter_retries_fall_back_to_lsqr() {
    failpoint::reset();
    let (x, y) = blobs();
    let clean = Srda::new(SrdaConfig::default()).fit_dense(&x, &y).unwrap();

    // direct attempt + all 3 jitter retries fail → matrix-free fallback
    failpoint::arm("cholesky.singular", 4);
    let model = Srda::new(SrdaConfig::default()).fit_dense(&x, &y).unwrap();
    assert_eq!(failpoint::fired("cholesky.singular"), 4);
    failpoint::reset();

    let rep = model.fit_report();
    assert!(!rep.clean());
    assert!(rep
        .responses
        .iter()
        .all(|s| *s == ResponseSolver::LsqrFallback));
    assert_eq!(
        *rep.recoveries.last().unwrap(),
        RecoveryAction::LsqrFallback
    );
    assert!(rep.condition_estimate.is_none());
    // LSQR solves the same damped problem the direct path would have:
    // the fallback model must match the clean one
    let wf = model.embedding().weights();
    let wc = clean.embedding().weights();
    assert!(
        wf.approx_eq(wc, 1e-6 * wc.max_abs().max(1.0)),
        "fallback drifted from the clean solution by {}",
        wf.sub(wc).unwrap().max_abs()
    );
}

#[test]
fn sparse_dual_path_recovers_via_jitter_and_fallback() {
    failpoint::reset();
    let (x, y) = blobs();
    let xs = CsrMatrix::from_dense(&x, 0.0);
    let clean = Srda::new(SrdaConfig::default())
        .fit_sparse(&xs, &y)
        .unwrap();
    assert!(clean.fit_report().clean());

    // one forced failure → jittered retry
    failpoint::arm("cholesky.singular", 1);
    let jittered = Srda::new(SrdaConfig::default())
        .fit_sparse(&xs, &y)
        .unwrap();
    failpoint::reset();
    assert!(jittered
        .fit_report()
        .responses
        .iter()
        .all(|s| matches!(s, ResponseSolver::DirectJittered { .. })));

    // four forced failures → LSQR fallback, matching the clean weights
    failpoint::arm("cholesky.singular", 4);
    let fallback = Srda::new(SrdaConfig::default())
        .fit_sparse(&xs, &y)
        .unwrap();
    failpoint::reset();
    let rep = fallback.fit_report();
    assert!(rep
        .responses
        .iter()
        .all(|s| *s == ResponseSolver::LsqrFallback));
    assert!(rep.warnings.iter().any(|w| w.contains("damped LSQR")));
    let wf = fallback.embedding().weights();
    let wc = clean.embedding().weights();
    assert!(
        wf.approx_eq(wc, 1e-6 * wc.max_abs().max(1.0)),
        "sparse fallback drifted by {}",
        wf.sub(wc).unwrap().max_abs()
    );
}

#[test]
fn poisoned_condition_estimate_escalates_fit_ladder() {
    failpoint::reset();
    let (x, y) = blobs();
    // Poison only the first factorization's Hager estimate: the direct
    // solve succeeds numerically, but its certificate sees a κ inflated by
    // 1e14, fails the forward-error bound even after refinement, and the
    // ladder must escalate exactly as if the factorization had broken.
    failpoint::arm("cond.inflate", 1);
    let model = Srda::new(SrdaConfig::default()).fit_dense(&x, &y).unwrap();
    assert_eq!(failpoint::fired("cond.inflate"), 1);
    failpoint::reset();

    let rep = model.fit_report();
    assert!(!rep.clean());
    assert!(
        rep.responses
            .iter()
            .all(|s| matches!(s, ResponseSolver::DirectJittered { jitter } if *jitter > 0.0)),
        "a suspect certificate must escalate to a jittered solve, got {:?}",
        rep.responses
    );
    assert_eq!(rep.recoveries.len(), 1);
    assert!(matches!(
        rep.recoveries[0],
        RecoveryAction::JitterRetry { .. }
    ));
    assert!(
        rep.warnings.iter().any(|w| w.contains("failed certification")),
        "warnings: {:?}",
        rep.warnings
    );
    // the retry re-certified with an honest κ: no surviving suspects
    assert!(!rep.certificates.is_empty());
    assert!(rep.certificates.iter().all(|c| !c.is_suspect()));
    assert!(rep.worst_backward_error.is_some());
    let w = model.embedding().weights();
    assert!(w.as_slice().iter().all(|v| v.is_finite()));
}

#[test]
fn stagnant_refinement_cannot_rescue_a_poisoned_certificate() {
    failpoint::reset();
    let (x, y) = blobs();
    let clean = Srda::new(SrdaConfig::default()).fit_dense(&x, &y).unwrap();

    // Poison every factorization's κ estimate AND force any refinement
    // attempt to stagnate immediately: no direct rung can certify, so the
    // fit must walk the whole ladder and land on the LSQR fallback — whose
    // post-hoc operator certificates are honest and pass.
    failpoint::arm("cond.inflate", 4);
    failpoint::arm("refine.stagnate", 100);
    let model = Srda::new(SrdaConfig::default()).fit_dense(&x, &y).unwrap();
    assert_eq!(failpoint::fired("cond.inflate"), 4);
    failpoint::reset();

    let rep = model.fit_report();
    assert!(!rep.clean());
    assert!(rep
        .responses
        .iter()
        .all(|s| *s == ResponseSolver::LsqrFallback));
    assert_eq!(
        *rep.recoveries.last().unwrap(),
        RecoveryAction::LsqrFallback
    );
    assert!(
        rep.warnings.iter().any(|w| w.contains("failed certification")),
        "warnings: {:?}",
        rep.warnings
    );
    assert!(rep.warnings.iter().any(|w| w.contains("damped LSQR")));
    // fallback certificates describe the matrix-free solves and are clean
    assert_eq!(rep.certificates.len(), rep.responses.len());
    assert!(rep.certificates.iter().all(|c| !c.is_suspect()));
    // the fallback solves the same damped problem: weights match the
    // clean fit
    let wf = model.embedding().weights();
    let wc = clean.embedding().weights();
    assert!(
        wf.approx_eq(wc, 1e-6 * wc.max_abs().max(1.0)),
        "fallback drifted from the clean solution by {}",
        wf.sub(wc).unwrap().max_abs()
    );
}

#[test]
fn disk_read_failure_surfaces_as_error_not_nan_model() {
    failpoint::reset();
    let (x, y) = blobs();
    let xs = CsrMatrix::from_dense(&x, 0.0);
    let dir = std::env::temp_dir().join("srda_fault_injection_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("train.srdacsr");
    srda_sparse::disk::write_csr(&path, &xs).unwrap();
    let disk = srda_sparse::DiskCsr::open(&path).unwrap();

    let srda = Srda::new(SrdaConfig {
        solver: SrdaSolver::Lsqr {
            max_iter: 30,
            tol: 0.0,
        },
        ..SrdaConfig::default()
    });
    // sanity: the healthy disk path works
    assert!(srda.fit_operator(&disk, &y).is_ok());

    failpoint::arm("diskcsr.read", 1);
    let err = srda.fit_operator(&disk, &y).unwrap_err();
    assert_eq!(failpoint::fired("diskcsr.read"), 1);
    failpoint::reset();
    // the injected I/O failure surfaces as a divergence error — never a
    // model with NaN (or silently zeroed) weights
    match &err {
        SrdaError::Linalg(inner) => {
            assert!(
                err.to_string().contains("diverged"),
                "unexpected error: {err} ({inner:?})"
            );
        }
        other => panic!("expected a Linalg divergence error, got {other:?}"),
    }

    // once the failpoint is disarmed the same handle fits fine again
    let model = srda.fit_operator(&disk, &y).unwrap();
    assert!(model.fit_report().clean());
    std::fs::remove_file(&path).ok();
}

#[test]
fn forced_lsqr_breakdown_fails_the_fit_loudly() {
    failpoint::reset();
    let (x, y) = blobs();
    failpoint::arm("lsqr.breakdown", 1);
    let err = Srda::new(SrdaConfig::lsqr_default())
        .fit_dense(&x, &y)
        .unwrap_err();
    assert_eq!(failpoint::fired("lsqr.breakdown"), 1);
    failpoint::reset();
    assert!(matches!(err, SrdaError::Linalg(_)), "{err:?}");
    assert!(err.to_string().contains("diverged"), "{err}");
}
