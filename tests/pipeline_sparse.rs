//! End-to-end pipeline tests on the sparse text family: the linear-time
//! path, the memory wall, and dense/sparse consistency.

use srda::{Srda, SrdaConfig, SrdaSolver};
use srda_data::{newsgroups_like, ratio_split};
use srda_eval::{run_sparse, Algo};

#[test]
fn sparse_lsqr_pipeline_beats_chance() {
    let data = newsgroups_like(0.04, 1);
    let sp = ratio_split(&data.labels, 0.3, 0);
    let tr = data.select(&sp.train);
    let te = data.select(&sp.test);
    let out = run_sparse(
        &Algo::Srda(SrdaConfig::lsqr_default()),
        &tr.x,
        &tr.labels,
        &te.x,
        &te.labels,
        data.n_classes,
        None,
    );
    let err = out.error_rate.expect("should run");
    assert!(err < 0.7, "error {err} vs chance 0.95");
}

#[test]
fn memory_wall_matches_paper_tables_ix_x() {
    // a budget that holds the CSR matrix but not its dense form: SRDA
    // runs, the three densifying baselines are skipped
    let data = newsgroups_like(0.03, 2);
    let sp = ratio_split(&data.labels, 0.4, 0);
    let tr = data.select(&sp.train);
    let te = data.select(&sp.test);
    let budget = Some(2 * tr.x.memory_bytes());
    assert!(tr.x.nrows() * tr.x.ncols() * 8 > 2 * tr.x.memory_bytes());

    for algo in [
        Algo::Lda,
        Algo::Rlda { alpha: 1.0 },
        Algo::IdrQr { lambda: 1.0 },
    ] {
        let out = run_sparse(
            &algo,
            &tr.x,
            &tr.labels,
            &te.x,
            &te.labels,
            data.n_classes,
            budget,
        );
        assert!(
            out.skipped.is_some(),
            "{} should hit the memory wall",
            algo.name()
        );
    }
    let out = run_sparse(
        &Algo::Srda(SrdaConfig::lsqr_default()),
        &tr.x,
        &tr.labels,
        &te.x,
        &te.labels,
        data.n_classes,
        budget,
    );
    assert!(out.skipped.is_none(), "SRDA must survive the memory wall");
}

#[test]
fn sparse_and_densified_srda_agree() {
    let data = newsgroups_like(0.02, 3);
    let sp = ratio_split(&data.labels, 0.5, 0);
    let tr = data.select(&sp.train);
    let dense = tr.x.to_dense();
    for solver in [
        SrdaSolver::NormalEquations,
        SrdaSolver::Lsqr {
            max_iter: 30,
            tol: 0.0,
        },
    ] {
        let cfg = SrdaConfig {
            solver,
            ..SrdaConfig::default()
        };
        let ms = Srda::new(cfg.clone())
            .fit_sparse(&tr.x, &tr.labels)
            .unwrap();
        let md = Srda::new(cfg).fit_dense(&dense, &tr.labels).unwrap();
        let ws = ms.embedding().weights();
        let wd = md.embedding().weights();
        assert!(
            ws.approx_eq(wd, 1e-6 * wd.max_abs().max(1e-9)),
            "{solver:?} diverges: {}",
            ws.sub(wd).unwrap().max_abs()
        );
    }
}

#[test]
fn lsqr_iteration_budget_controls_work() {
    let data = newsgroups_like(0.03, 4);
    let sp = ratio_split(&data.labels, 0.3, 0);
    let tr = data.select(&sp.train);
    let few = Srda::new(SrdaConfig {
        solver: SrdaSolver::Lsqr {
            max_iter: 3,
            tol: 0.0,
        },
        ..SrdaConfig::default()
    })
    .fit_sparse(&tr.x, &tr.labels)
    .unwrap();
    let many = Srda::new(SrdaConfig {
        solver: SrdaSolver::Lsqr {
            max_iter: 15,
            tol: 0.0,
        },
        ..SrdaConfig::default()
    })
    .fit_sparse(&tr.x, &tr.labels)
    .unwrap();
    assert_eq!(few.lsqr_iterations(), 3 * (data.n_classes - 1));
    assert_eq!(many.lsqr_iterations(), 15 * (data.n_classes - 1));
}

#[test]
fn sparse_io_roundtrip_preserves_pipeline_output() {
    // serialize a sparse dataset to the LIBSVM-style text format, parse it
    // back, and confirm the trained model is identical
    let data = newsgroups_like(0.02, 5);
    let labeled = srda_sparse::io::LabeledSparse {
        x: data.x.clone(),
        labels: data.labels.clone(),
    };
    let text = srda_sparse::io::write(&labeled);
    let parsed = srda_sparse::io::parse(&text, data.x.ncols()).unwrap();
    assert_eq!(parsed.x, data.x);

    let m1 = Srda::new(SrdaConfig::lsqr_default())
        .fit_sparse(&data.x, &data.labels)
        .unwrap();
    let m2 = Srda::new(SrdaConfig::lsqr_default())
        .fit_sparse(&parsed.x, &parsed.labels)
        .unwrap();
    assert!(m1
        .embedding()
        .weights()
        .approx_eq(m2.embedding().weights(), 0.0));
}
