//! Golden-trajectory lock on the solver telemetry channel.
//!
//! The observability layer promises two things these tests pin down:
//!
//! 1. **Telemetry is a pure read.** The per-iteration residual / ‖Aᵀr‖
//!    values a [`SolverTrace`] records are the exact floats the solver's
//!    stopping rules already computed — so the trajectory is reproducible
//!    bit for bit, run over run, and is committed here as golden `u64`
//!    bit patterns. A golden mismatch means either the solver's float
//!    sequence changed (a real numerical change that must be reviewed) or
//!    telemetry started perturbing/duplicating work (a bug outright).
//! 2. **Telemetry is backend-independent.** The serial and threaded
//!    kernel backends produce bitwise-identical trajectories, so a trace
//!    captured in production (threaded) can be replayed/diffed against a
//!    serial debug run.
//!
//! To regenerate the goldens after an *intentional* numerical change:
//!
//! ```text
//! cargo test --test telemetry_golden -- --ignored --nocapture
//! ```
//!
//! and paste the printed arrays over the `GOLDEN_*` constants below.

use srda::{Recorder, Srda, SrdaConfig, SrdaModel, SrdaSolver};
use srda_linalg::{ExecPolicy, Executor, Mat};
use srda_obs::IterationRecord;
use srda_solvers::cgls::{cgls_controlled, CglsConfig, CglsControls};
use srda_solvers::ExecDense;

/// Three classes, 4-D, deterministic sin-based noise (same generator
/// family as `tests/governor_resume.rs`): 2 responses × 12 iterations.
fn three_blobs(per_class: usize) -> (Mat, Vec<usize>) {
    let centers = [
        [0.0, 0.0, 0.0, 0.0],
        [5.0, 0.0, 5.0, 0.0],
        [0.0, 5.0, 0.0, 5.0],
    ];
    let mut rows = Vec::new();
    let mut y = Vec::new();
    for (k, c) in centers.iter().enumerate() {
        for s in 0..per_class {
            let noise = |d: usize| {
                let x = ((k * 31 + s * 7 + d * 13) as f64 * 12.9898).sin() * 43758.5453;
                (x - x.floor() - 0.5) * 0.3
            };
            rows.push((0..4).map(|d| c[d] + noise(d)).collect::<Vec<_>>());
            y.push(k);
        }
    }
    (Mat::from_rows(&rows).unwrap(), y)
}

fn lsqr_config(exec: ExecPolicy, rec: Recorder) -> SrdaConfig {
    SrdaConfig {
        alpha: 1.0,
        solver: SrdaSolver::Lsqr {
            max_iter: 12,
            tol: 0.0,
        },
        exec,
        recorder: rec,
        ..SrdaConfig::default()
    }
}

/// One recorded telemetry channel: (label, solver, backend, iterations).
type TraceChannel = (String, String, String, Vec<IterationRecord>);

/// Fit the 18×4 LSQR problem and return (model, telemetry per response).
fn traced_fit(exec: ExecPolicy) -> (SrdaModel, Vec<TraceChannel>) {
    let (x, y) = three_blobs(6);
    let rec = Recorder::new_enabled();
    let model = Srda::new(lsqr_config(exec, rec)).fit_dense(&x, &y).unwrap();
    let traces = rec
        .snapshot()
        .traces
        .iter()
        .map(|t| {
            (
                t.label.clone(),
                t.solver.clone(),
                t.backend.clone(),
                t.iterations.clone(),
            )
        })
        .collect();
    (model, traces)
}

fn weight_bits(m: &SrdaModel) -> Vec<u64> {
    m.embedding()
        .weights()
        .as_slice()
        .iter()
        .map(|v| v.to_bits())
        .collect()
}

fn bits(records: &[IterationRecord], field: impl Fn(&IterationRecord) -> f64) -> Vec<u64> {
    records.iter().map(|r| field(r).to_bits()).collect()
}

// ---------------------------------------------------------------------------
// committed goldens (see module docs for the regeneration recipe)
// ---------------------------------------------------------------------------

/// `fit/response[0]/lsqr` damped-residual trajectory, 12 iterations.
const GOLDEN_LSQR_RES_R0: &[u64] = &[
    0x3fea05a14bebe064,
    0x3fd4a48bcf11f744,
    0x3fa0d09edb8b5381,
    0x3fa056d820d36905,
    0x3f50ffd69c63683d,
    0x3ef5838f14f9bbf0,
    0x3dc3232fd00fff2b,
    0x3d4083e4985d9d3b,
    0x3d12b3f7671f1634,
    0x3bae4a3761796971,
    0x3b4a3a9ce4689f5a,
    0x3b49f33d86912177,
];

/// `fit/response[0]/lsqr` ‖Aᵀr‖-estimate trajectory, 12 iterations.
const GOLDEN_LSQR_ATR_R0: &[u64] = &[
    0x40000731773d0c8a,
    0x3ffe4d455640c1a8,
    0x3f6e899b65453f00,
    0x3f11511d41d9f70f,
    0x3dc32b3b0a5b3c15,
    0x3d40922385e865c8,
    0x3d1477d311f10d5b,
    0x3bc75f60d737b6ca,
    0x3b66992baf79652e,
    0x3b7bb2b6645f1144,
    0x3afb25ce8db79614,
    0x3a2d999f2bffe451,
];

/// `fit/response[1]/lsqr` damped-residual trajectory, 12 iterations.
const GOLDEN_LSQR_RES_R1: &[u64] = &[
    0x3fafa1e4482a6a74,
    0x3f9761f9a9e3250c,
    0x3f96346bb8879add,
    0x3f685e4cb2d288f2,
    0x3f4fe2735b3b43c2,
    0x3ef0af082f1b3418,
    0x3de2ecc1a4346030,
    0x3d5244dbf74bfdf6,
    0x3c779205f6563891,
    0x3badeaebba6d4e23,
    0x3b40596743fbd8db,
    0x3b403996b6ffbb29,
];

/// CGLS gradient-norm trajectory on the 8×4 seeded problem below.
const GOLDEN_CGLS_RES: &[u64] = &[
    0x3facd0ad75ce4426,
    0x3f8f61ffacfbbf7d,
    0x3f712ed4051d1f10,
    0x3c8d7eea48fed23f,
    0x3c88eb7cb456380d,
    0x3c85a80a57e8d7d1,
    0x3c809eeacab398f3,
    0x3c804f3bd03c0a64,
];

#[test]
fn lsqr_telemetry_matches_committed_golden() {
    let (_, traces) = traced_fit(ExecPolicy::serial());
    assert_eq!(traces.len(), 2, "c − 1 = 2 telemetry channels");

    let (label0, solver0, backend0, iters0) = &traces[0];
    assert_eq!(label0, "fit/response[0]/lsqr");
    assert_eq!(solver0, "lsqr");
    assert_eq!(backend0, "serial");
    assert_eq!(bits(iters0, |r| r.residual), GOLDEN_LSQR_RES_R0);
    assert_eq!(bits(iters0, |r| r.atr_norm), GOLDEN_LSQR_ATR_R0);
    // iteration numbers are 1-based and contiguous
    let nums: Vec<usize> = iters0.iter().map(|r| r.iteration).collect();
    assert_eq!(nums, (1..=iters0.len()).collect::<Vec<_>>());

    let (label1, _, _, iters1) = &traces[1];
    assert_eq!(label1, "fit/response[1]/lsqr");
    assert_eq!(bits(iters1, |r| r.residual), GOLDEN_LSQR_RES_R1);
}

#[test]
fn telemetry_identical_serial_vs_threaded() {
    let (m_serial, t_serial) = traced_fit(ExecPolicy::serial());
    let (m_par, t_par) = traced_fit(ExecPolicy::threaded(4));

    // the model itself is bitwise identical across backends ...
    assert_eq!(weight_bits(&m_serial), weight_bits(&m_par));

    // ... and so is every recorded trajectory. Only the backend tag may
    // differ (that is the point of recording it).
    assert_eq!(t_serial.len(), t_par.len());
    for ((l_s, s_s, b_s, i_s), (l_p, s_p, b_p, i_p)) in t_serial.iter().zip(&t_par) {
        assert_eq!(l_s, l_p);
        assert_eq!(s_s, s_p);
        assert_eq!(b_s, "serial");
        assert_eq!(b_p, "threaded");
        assert_eq!(
            bits(i_s, |r| r.residual),
            bits(i_p, |r| r.residual),
            "residual trajectory diverged between backends on {l_s}"
        );
        assert_eq!(
            bits(i_s, |r| r.atr_norm),
            bits(i_p, |r| r.atr_norm),
            "‖Aᵀr‖ trajectory diverged between backends on {l_s}"
        );
    }
}

#[test]
fn traced_fit_is_bitwise_identical_to_untraced() {
    let (x, y) = three_blobs(6);
    let untraced = Srda::new(lsqr_config(ExecPolicy::serial(), Recorder::disabled()))
        .fit_dense(&x, &y)
        .unwrap();
    let (traced, _) = traced_fit(ExecPolicy::serial());
    assert_eq!(weight_bits(&untraced), weight_bits(&traced));
}

/// The seeded 8×4 CGLS problem for the golden below.
fn cgls_problem() -> (Mat, Vec<f64>) {
    let noise = |s: usize| {
        let x = (s as f64 * 12.9898).sin() * 43758.5453;
        x - x.floor() - 0.5
    };
    let mut a = Mat::zeros(8, 4);
    for i in 0..8 {
        for j in 0..4 {
            a[(i, j)] = noise(1 + i * 4 + j);
        }
    }
    let b: Vec<f64> = (0..8).map(|i| noise(100 + i)).collect();
    (a, b)
}

#[test]
fn cgls_telemetry_matches_committed_golden() {
    let (a, b) = cgls_problem();
    let rec = Recorder::new_enabled();
    let trace = rec.solver_trace("cgls").unwrap();
    let op = ExecDense::new(&a, Executor::serial());
    let cfg = CglsConfig {
        alpha: 0.1,
        max_iter: 8,
        tol: 0.0,
    };
    let ctl = CglsControls {
        telemetry: Some(&trace),
        ..CglsControls::default()
    };
    let result = cgls_controlled(&op, &b, &cfg, &ctl);
    assert!(result.interrupted.is_none());

    let report = rec.snapshot();
    let t = &report.traces[0];
    assert_eq!(t.solver, "cgls");
    assert_eq!(t.damp, 0.1);
    assert_eq!(bits(&t.iterations, |r| r.residual), GOLDEN_CGLS_RES);
    // CGLS tracks one quantity (‖Aᵀr − αx‖); it fills both columns
    assert_eq!(
        bits(&t.iterations, |r| r.residual),
        bits(&t.iterations, |r| r.atr_norm)
    );
}

#[test]
fn ungoverned_solve_reports_zero_governor_checks() {
    let (x, y) = three_blobs(6);
    let rec = Recorder::new_enabled();
    Srda::new(lsqr_config(ExecPolicy::serial(), rec))
        .fit_dense(&x, &y)
        .unwrap();
    let report = rec.snapshot();
    assert!(!report.traces.is_empty());
    for t in &report.traces {
        assert_eq!(t.governor_checks, 0, "no governor was installed");
    }
}

/// Acceptance criterion: on a moderate LSQR fit, the child spans under
/// `fit` (prepare + per-response solves) account for ≥ 95% of the fit's
/// wall time — i.e. the span tree actually covers where time goes.
#[test]
fn fit_span_children_cover_95_percent_of_fit() {
    let (x, y) = three_blobs(120); // 360 × 4, 2 responses × 60 iterations
    let rec = Recorder::new_enabled();
    let cfg = SrdaConfig {
        solver: SrdaSolver::Lsqr {
            max_iter: 60,
            tol: 0.0,
        },
        ..lsqr_config(ExecPolicy::serial(), rec)
    };
    Srda::new(cfg).fit_dense(&x, &y).unwrap();
    let report = rec.snapshot();
    let coverage = report
        .span_coverage("fit")
        .expect("fit span must be recorded");
    assert!(
        coverage >= 0.95,
        "span coverage {coverage:.3} < 0.95 — fit wall time is leaking \
         outside the instrumented phases"
    );
}

/// Regeneration helper (never runs by default): prints the current
/// trajectories in the exact format of the `GOLDEN_*` constants.
#[test]
#[ignore = "golden regeneration helper; run with --ignored --nocapture"]
fn print_goldens() {
    let hex = |bits: Vec<u64>| {
        bits.iter()
            .map(|b| format!("0x{b:016x}"))
            .collect::<Vec<_>>()
            .join(", ")
    };
    let (_, traces) = traced_fit(ExecPolicy::serial());
    for (label, _, _, iters) in &traces {
        println!("// {label}");
        println!("res: &[{}];", hex(bits(iters, |r| r.residual)));
        println!("atr: &[{}];", hex(bits(iters, |r| r.atr_norm)));
    }
    let (a, b) = cgls_problem();
    let rec = Recorder::new_enabled();
    let trace = rec.solver_trace("cgls").unwrap();
    let op = ExecDense::new(&a, Executor::serial());
    let cfg = CglsConfig {
        alpha: 0.1,
        max_iter: 8,
        tol: 0.0,
    };
    cgls_controlled(
        &op,
        &b,
        &cfg,
        &CglsControls {
            telemetry: Some(&trace),
            ..CglsControls::default()
        },
    );
    let report = rec.snapshot();
    println!("// cgls");
    println!(
        "res: &[{}];",
        hex(bits(&report.traces[0].iterations, |r| r.residual))
    );
}
