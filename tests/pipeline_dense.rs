//! End-to-end pipeline tests on the three dense dataset families,
//! asserting the qualitative structure the paper's Tables III–VIII report.

use srda::SrdaConfig;
use srda_data::{isolet_like, mnist_like, per_class_split, pie_like, DenseDataset};
use srda_eval::{run_dense, Algo};

fn errors_at(data: &DenseDataset, l: usize, splits: usize) -> [f64; 4] {
    let algos = [
        Algo::Lda,
        Algo::Rlda { alpha: 1.0 },
        Algo::Srda(SrdaConfig::default()),
        Algo::IdrQr { lambda: 1.0 },
    ];
    let mut out = [0.0; 4];
    for (i, algo) in algos.iter().enumerate() {
        let mut acc = 0.0;
        for s in 0..splits {
            let sp = per_class_split(&data.labels, l, s as u64);
            let tr = data.select(&sp.train);
            let te = data.select(&sp.test);
            acc += run_dense(
                algo,
                &tr.x,
                &tr.labels,
                &te.x,
                &te.labels,
                data.n_classes,
                None,
            )
            .error_rate
            .expect("run");
        }
        out[i] = acc / splits as f64;
    }
    out
}

#[test]
fn mnist_like_small_sample_ordering() {
    // the paper's qualitative claim: regularized methods (RLDA/SRDA)
    // dominate plain LDA in the small-sample regime
    let data = mnist_like(0.08, 1);
    let [lda, rlda, srda, idr] = errors_at(&data, 10, 2);
    assert!(srda < lda, "SRDA {srda} should beat LDA {lda}");
    assert!(rlda < lda, "RLDA {rlda} should beat LDA {lda}");
    // all methods beat chance
    let chance = 0.9;
    for (name, e) in [("lda", lda), ("rlda", rlda), ("srda", srda), ("idr", idr)] {
        assert!(e < chance, "{name} at {e} did not beat chance");
    }
}

#[test]
fn isolet_like_error_decreases_with_training_size() {
    let data = isolet_like(0.15, 2);
    let small = errors_at(&data, 4, 2)[2]; // SRDA
    let large = errors_at(&data, 20, 2)[2];
    assert!(
        large < small,
        "SRDA error should fall with more data: {small} -> {large}"
    );
}

#[test]
fn pie_like_68_class_pipeline_runs() {
    let data = pie_like(0.08, 3);
    assert_eq!(data.n_classes, 68);
    let [lda, rlda, srda, idr] = errors_at(&data, 5, 1);
    // chance error is ~98.5%; everything must do much better
    for (name, e) in [("lda", lda), ("rlda", rlda), ("srda", srda), ("idr", idr)] {
        assert!(e < 0.9, "{name} error {e}");
    }
    // regularized beats plain LDA at 5 samples/class
    assert!(srda < lda);
}

#[test]
fn srda_beats_raw_space_nearest_centroid() {
    // dimension reduction must actually help over classifying in the
    // original feature space
    let data = mnist_like(0.08, 4);
    let sp = per_class_split(&data.labels, 15, 0);
    let tr = data.select(&sp.train);
    let te = data.select(&sp.test);

    let raw_err = srda_eval::nearest_centroid_error_rate(
        &tr.x,
        &tr.labels,
        &te.x,
        &te.labels,
        data.n_classes,
    );
    let srda_err = run_dense(
        &Algo::Srda(SrdaConfig::default()),
        &tr.x,
        &tr.labels,
        &te.x,
        &te.labels,
        data.n_classes,
        None,
    )
    .error_rate
    .unwrap();
    assert!(
        srda_err < raw_err + 0.02,
        "SRDA {srda_err} should not lose to raw nearest-centroid {raw_err}"
    );
}

#[test]
fn timing_fields_are_populated_and_plausible() {
    let data = mnist_like(0.06, 5);
    let sp = per_class_split(&data.labels, 10, 0);
    let tr = data.select(&sp.train);
    let te = data.select(&sp.test);
    let out = run_dense(
        &Algo::Srda(SrdaConfig::default()),
        &tr.x,
        &tr.labels,
        &te.x,
        &te.labels,
        data.n_classes,
        None,
    );
    let secs = out.train_secs.unwrap();
    assert!(secs > 0.0 && secs < 60.0, "implausible time {secs}");
    assert!(out.train_flam.unwrap() > 1000);
}

#[test]
fn splits_are_reproducible_end_to_end() {
    let data = mnist_like(0.06, 6);
    let run = || {
        let sp = per_class_split(&data.labels, 10, 7);
        let tr = data.select(&sp.train);
        let te = data.select(&sp.test);
        run_dense(
            &Algo::Srda(SrdaConfig::default()),
            &tr.x,
            &tr.labels,
            &te.x,
            &te.labels,
            data.n_classes,
            None,
        )
        .error_rate
        .unwrap()
    };
    assert_eq!(run(), run());
}
