//! Empirical check that the flam counters exposed through the metrics
//! registry reproduce the *shape* of the paper's Table I:
//!
//! * SRDA via normal equations is cheaper than classical (SVD-based) LDA
//!   at the square `m = n` shape, where Table I gives SRDA
//!   `¼mn² + O(ms)` flam against LDA's `3/2 mn² + O(n³)`.
//! * LSQR training cost grows **linearly** in the sample count: the
//!   log-log slope of flam against `m` (fixed per-row density, fixed
//!   iteration count) sits in `[0.9, 1.1]` — the paper's headline
//!   "linear time" claim (§III.C.2).
//!
//! The counts come from the same pipeline `--metrics-out` reports: the
//! fit installs its `flam.fit` registry counter as a thread-local flam
//! sink, so these tests double as an end-to-end check that the
//! observability counter and a direct [`flam::measure`] agree exactly.

use srda::{Lda, LdaConfig, Recorder, Srda, SrdaConfig, SrdaSolver};
use srda_linalg::{flam, ExecPolicy, Mat};
use srda_sparse::CsrMatrix;

/// Deterministic pseudo-random value in [-0.5, 0.5).
fn noise(seed: usize) -> f64 {
    let x = (seed as f64 * 12.9898).sin() * 43758.5453;
    x - x.floor() - 0.5
}

/// `m × n` dense data with `classes` separated blobs.
fn dense_blobs(m: usize, n: usize, classes: usize) -> (Mat, Vec<usize>) {
    let mut x = Mat::zeros(m, n);
    let mut y = Vec::with_capacity(m);
    for i in 0..m {
        let k = i % classes;
        for j in 0..n {
            let center = if j % classes == k { 4.0 } else { 0.0 };
            x[(i, j)] = center + noise(1 + i * n + j);
        }
        y.push(k);
    }
    (x, y)
}

/// Sparse `m × n` data, ~`per_row` nonzeros per row, two classes.
fn sparse_blobs(m: usize, n: usize, per_row: usize) -> (CsrMatrix, Vec<usize>) {
    let mut indptr = vec![0];
    let mut indices = Vec::new();
    let mut data = Vec::new();
    let mut y = Vec::with_capacity(m);
    for i in 0..m {
        let k = i % 2;
        let mut cols: Vec<usize> = (0..per_row)
            .map(|c| {
                let u = noise(7 + i * per_row + c) + 0.5;
                ((u * n as f64) as usize).min(n - 1)
            })
            .collect();
        cols.sort_unstable();
        cols.dedup();
        for &j in &cols {
            data.push(noise(31 * (i + j)) + if j % 2 == k { 2.0 } else { 0.5 });
            indices.push(j);
        }
        indptr.push(indices.len());
        y.push(k);
    }
    (
        CsrMatrix::from_raw_parts(m, n, indptr, indices, data).unwrap(),
        y,
    )
}

/// Fit SRDA with an enabled recorder and return the `flam.fit` counter —
/// the exact number `--metrics-out` would report for this fit.
fn srda_fit_flam(cfg: SrdaConfig, fit: impl FnOnce(&Srda)) -> u64 {
    let rec = Recorder::new_enabled();
    let srda = Srda::new(SrdaConfig {
        recorder: rec,
        ..cfg
    });
    fit(&srda);
    *rec.snapshot()
        .counters
        .get("flam.fit")
        .expect("instrumented fit must publish flam.fit")
}

#[test]
fn srda_ne_is_cheaper_than_lda_at_square_shape() {
    // m = n = 120: the square shape where Table I's SRDA advantage is
    // smallest — if SRDA wins here it wins everywhere on the table's axis
    let (x, y) = dense_blobs(120, 120, 4);

    let cfg = SrdaConfig {
        solver: SrdaSolver::NormalEquations,
        exec: ExecPolicy::serial(),
        ..SrdaConfig::default()
    };
    let srda_flam = srda_fit_flam(cfg, |s| {
        s.fit_dense(&x, &y).unwrap();
    });

    let lda = Lda::new(LdaConfig {
        exec: ExecPolicy::serial(),
        ..LdaConfig::default()
    });
    let ((), lda_flam) = flam::measure(|| {
        lda.fit_dense(&x, &y).unwrap();
    });

    assert!(srda_flam > 0, "SRDA fit reported no flam");
    assert!(lda_flam > 0, "LDA fit reported no flam");
    assert!(
        srda_flam < lda_flam,
        "Table I shape violated at m = n: SRDA-NE {srda_flam} flam ≥ LDA {lda_flam} flam"
    );
}

#[test]
fn lsqr_flam_grows_linearly_in_samples() {
    // fixed density, fixed iteration count (tol = 0 pins it at max_iter),
    // fixed feature count → cost should be Θ(m)
    let sizes = [200usize, 400, 800, 1600];
    let flams: Vec<u64> = sizes
        .iter()
        .map(|&m| {
            let (x, y) = sparse_blobs(m, 50, 8);
            let cfg = SrdaConfig {
                solver: SrdaSolver::Lsqr {
                    max_iter: 10,
                    tol: 0.0,
                },
                exec: ExecPolicy::serial(),
                ..SrdaConfig::default()
            };
            srda_fit_flam(cfg, |s| {
                s.fit_sparse(&x, &y).unwrap();
            })
        })
        .collect();

    // end-to-end log-log slope over the 8× span of m
    let slope =
        ((flams[3] as f64) / (flams[0] as f64)).ln() / ((sizes[3] as f64) / (sizes[0] as f64)).ln();
    assert!(
        (0.9..=1.1).contains(&slope),
        "LSQR flam not linear in m: counts {flams:?} give log-log slope {slope:.3}"
    );
    // and monotone, for good measure
    assert!(flams.windows(2).all(|w| w[0] < w[1]), "counts {flams:?}");
}

#[test]
fn metrics_counter_agrees_with_direct_flam_measure() {
    // the registry counter and an enclosing flam::measure sink see the
    // same thread-local add() stream, so they must agree *exactly*
    let (x, y) = dense_blobs(60, 20, 3);
    let rec = Recorder::new_enabled();
    let srda = Srda::new(SrdaConfig {
        solver: SrdaSolver::NormalEquations,
        exec: ExecPolicy::serial(),
        recorder: rec,
        ..SrdaConfig::default()
    });
    let ((), measured) = flam::measure(|| {
        srda.fit_dense(&x, &y).unwrap();
    });
    let counter = *rec
        .snapshot()
        .counters
        .get("flam.fit")
        .expect("flam.fit counter missing");
    assert!(measured > 0);
    assert_eq!(
        counter, measured,
        "--metrics-out flam counter diverged from flam::measure"
    );
}
