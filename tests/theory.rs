//! Integration tests for the paper's theoretical claims, exercised through
//! the public API of the workspace crates.

use srda::{ClassIndex, Lda, Rlda, RldaConfig, Srda, SrdaConfig, SrdaSolver};
use srda_linalg::ops::{gram, matvec};
use srda_linalg::stats::centered;
use srda_linalg::Mat;

fn hash01(i: usize, j: usize, salt: u64) -> f64 {
    let x = (i as f64 * 12.9898 + j as f64 * 78.233 + salt as f64 * 0.618).sin() * 43758.5453;
    x - x.floor() - 0.5
}

/// Random-ish data with m linearly independent samples in n ≥ m dims.
fn independent_samples(m: usize, n: usize, c: usize, salt: u64) -> (Mat, Vec<usize>) {
    assert!(n >= m);
    let y: Vec<usize> = (0..m).map(|i| i % c).collect();
    let x = Mat::from_fn(m, n, |i, j| {
        hash01(i, j, salt) + if j % c == y[i] { 1.0 } else { 0.0 }
    });
    (x, y)
}

/// Between-class scatter S_b = Σ_k m_k (μ_k − μ)(μ_k − μ)ᵀ.
fn scatter_between(x: &Mat, y: &[usize], c: usize) -> Mat {
    let (cent, counts) = srda_linalg::stats::class_means(x, y, c).unwrap();
    let mu = srda_linalg::stats::col_means(x);
    let n = x.ncols();
    let mut sb = Mat::zeros(n, n);
    for k in 0..c {
        let mut d = cent.row(k).to_vec();
        for (di, &mi) in d.iter_mut().zip(&mu) {
            *di -= mi;
        }
        for i in 0..n {
            for j in 0..n {
                sb[(i, j)] += counts[k] as f64 * d[i] * d[j];
            }
        }
    }
    sb
}

#[test]
fn theorem_1_exact_fit_gives_lda_eigenvector() {
    // Theorem 1: if ȳ is an eigenvector of W (eigenvalue 1) and X̄ᵀa = ȳ,
    // then a solves the LDA eigenproblem with the same eigenvalue:
    // S_b a = 1 · S_t a.
    let (x, y) = independent_samples(12, 30, 3, 5);
    let (xc, _) = centered(&x);
    let index = ClassIndex::new(&y).unwrap();
    let ybar = srda::responses::generate(&index);

    // minimum-norm exact solution of xc · a = ȳ via heavily-iterated LSQR
    let a = {
        let r = srda_solvers::lsqr::lsqr(
            &xc,
            &ybar.col(0),
            &srda_solvers::lsqr::LsqrConfig {
                damp: 0.0,
                max_iter: 500,
                tol: 1e-14,
            },
        );
        // confirm the fit is exact (samples independent ⇒ solvable)
        let fit = matvec(&xc, &r.x).unwrap();
        for (u, v) in fit.iter().zip(&ybar.col(0)) {
            assert!((u - v).abs() < 1e-8, "system not solved: {u} vs {v}");
        }
        r.x
    };

    let st = gram(&xc);
    let sb = scatter_between(&x, &y, 3);
    let sba = matvec(&sb, &a).unwrap();
    let sta = matvec(&st, &a).unwrap();
    let scale = sta.iter().fold(0.0f64, |m, v| m.max(v.abs())).max(1e-12);
    for i in 0..30 {
        assert!(
            (sba[i] - sta[i]).abs() < 1e-7 * scale,
            "S_b a ≠ S_t a at {i}: {} vs {}",
            sba[i],
            sta[i]
        );
    }
}

#[test]
fn corollary_3_classes_collapse_when_samples_independent() {
    // Corollary 3: linearly independent samples ⇒ as α → 0 the SRDA
    // embedding maps every training sample of a class to the same point.
    let (x, y) = independent_samples(15, 40, 3, 9);
    let model = Srda::new(SrdaConfig {
        alpha: 1e-12,
        ..SrdaConfig::default()
    })
    .fit_dense(&x, &y)
    .unwrap();
    let z = model.embedding().transform_dense(&x).unwrap();
    let (cent, _) = srda_linalg::stats::class_means(&z, &y, 3).unwrap();
    let mut max_within = 0.0f64;
    for (i, &k) in y.iter().enumerate() {
        max_within = max_within.max(srda_linalg::vector::dist2_sq(z.row(i), cent.row(k)).sqrt());
    }
    let between = srda_linalg::vector::dist2_sq(cent.row(0), cent.row(1)).sqrt();
    assert!(
        max_within < 1e-6 * between,
        "classes not collapsed: within {max_within}, between {between}"
    );
}

#[test]
fn srda_and_lda_agree_on_training_separation_in_independent_case() {
    // In the linearly independent regime both LDA and SRDA(α→0) collapse
    // training classes; their embeddings must induce the same training
    // partition (identical nearest-centroid training predictions).
    let (x, y) = independent_samples(18, 50, 3, 13);
    let lda = Lda::default().fit_dense(&x, &y).unwrap();
    let srda = Srda::new(SrdaConfig {
        alpha: 1e-12,
        ..SrdaConfig::default()
    })
    .fit_dense(&x, &y)
    .unwrap();
    let z1 = lda.transform_dense(&x).unwrap();
    let z2 = srda.embedding().transform_dense(&x).unwrap();
    let p1 = srda_eval::NearestCentroid::fit(&z1, &y, 3).predict(&z1);
    let p2 = srda_eval::NearestCentroid::fit(&z2, &y, 3).predict(&z2);
    assert_eq!(p1, y, "LDA should fit training data exactly");
    assert_eq!(p2, y, "SRDA should fit training data exactly");
}

#[test]
fn srda_solvers_agree_end_to_end() {
    // The same model must come out of normal equations and LSQR.
    let data = srda_data::isolet_like(0.06, 3);
    let split = srda_data::per_class_split(&data.labels, 8, 0);
    let tr = data.select(&split.train);
    let ne = Srda::new(SrdaConfig::default())
        .fit_dense(&tr.x, &tr.labels)
        .unwrap();
    let it = Srda::new(SrdaConfig {
        solver: SrdaSolver::Lsqr {
            max_iter: 400,
            tol: 0.0,
        },
        ..SrdaConfig::default()
    })
    .fit_dense(&tr.x, &tr.labels)
    .unwrap();
    let w1 = ne.embedding().weights();
    let w2 = it.embedding().weights();
    assert!(
        w1.approx_eq(w2, 1e-5 * w1.max_abs().max(1.0)),
        "solver disagreement: {}",
        w1.sub(w2).unwrap().max_abs()
    );
}

#[test]
fn rlda_alpha_zero_matches_lda_subspace_when_well_posed() {
    // well-posed: m ≫ n so S_t is nonsingular
    let (x, y) = {
        let y: Vec<usize> = (0..60).map(|i| i % 3).collect();
        let x = Mat::from_fn(60, 8, |i, j| {
            hash01(i, j, 21) * 0.3 + if j % 3 == y[i] { 1.0 } else { 0.0 }
        });
        (x, y)
    };
    let lda = Lda::default().fit_dense(&x, &y).unwrap();
    let rlda = Rlda::new(RldaConfig {
        alpha: 1e-10,
        ..RldaConfig::default()
    })
    .fit_dense(&x, &y)
    .unwrap();
    // same span: project each LDA direction onto the RLDA span
    let cols: Vec<Vec<f64>> = (0..rlda.n_components())
        .map(|j| rlda.weights().col(j))
        .collect();
    let basis = srda_linalg::gram_schmidt::orthonormalize(&cols, 1e-10);
    for j in 0..lda.n_components() {
        let mut a = lda.weights().col(j);
        srda_linalg::vector::normalize(&mut a);
        let proj: f64 = basis
            .iter()
            .map(|b| srda_linalg::vector::dot(b, &a).powi(2))
            .sum();
        assert!(proj > 1.0 - 1e-6, "direction {j}: projection {proj}");
    }
}

#[test]
fn dual_and_primal_normal_equations_give_same_srda_model() {
    // n > m triggers the dual path in RidgeSolver::auto; forcing m > n
    // uses the primal. The embeddings on shared data must agree.
    let (x, y) = independent_samples(14, 40, 2, 31); // wide: dual
    let wide = Srda::new(SrdaConfig::default()).fit_dense(&x, &y).unwrap();
    // check against explicitly computed ridge solution
    let index = ClassIndex::new(&y).unwrap();
    let ybar = srda::responses::generate(&index);
    let x_aug = x.append_constant_col(1.0);
    let mut g = gram(&x_aug);
    g.add_to_diag(1.0);
    let atb = srda_linalg::ops::matmul_transa(&x_aug, &ybar).unwrap();
    let w_direct = srda_linalg::Cholesky::factor(&g)
        .unwrap()
        .solve_mat(&atb)
        .unwrap();
    let w_model = wide.embedding().weights();
    for i in 0..40 {
        for j in 0..1 {
            assert!(
                (w_model[(i, j)] - w_direct[(i, j)]).abs() < 1e-7,
                "({i},{j}): {} vs {}",
                w_model[(i, j)],
                w_direct[(i, j)]
            );
        }
    }
}
