//! End-to-end kill-and-resume determinism: a fit killed at an arbitrary
//! LSQR iteration (via the `lsqr.interrupt` failpoint — the same code
//! path an external cancellation takes) must, after resuming from its
//! checkpoint, produce **bitwise-identical** final weights to the fit
//! that was never interrupted — under both the serial and the threaded
//! kernel backend.
//!
//! Failpoints are thread-local, so the kill always lands on the main
//! thread: resumable fits force the response loop serial (persistence
//! and `parallel_responses` are mutually exclusive by design), and the
//! threaded backend here parallelizes *inside* the kernels, not across
//! responses.

use srda::{
    CheckpointPolicy, FitOutcome, Interrupt, Srda, SrdaConfig, SrdaSolver, FIT_CHECKPOINT_FILE,
};
use srda_linalg::{failpoint, ExecPolicy, Mat};

/// Three classes, 4-D, over-determined — 2 responses × 12 iterations.
fn three_blobs() -> (Mat, Vec<usize>) {
    let centers = [
        [0.0, 0.0, 0.0, 0.0],
        [5.0, 0.0, 5.0, 0.0],
        [0.0, 5.0, 0.0, 5.0],
    ];
    let mut rows = Vec::new();
    let mut y = Vec::new();
    for (k, c) in centers.iter().enumerate() {
        for s in 0..6 {
            let noise = |d: usize| {
                let x = ((k * 31 + s * 7 + d * 13) as f64 * 12.9898).sin() * 43758.5453;
                (x - x.floor() - 0.5) * 0.3
            };
            rows.push((0..4).map(|d| c[d] + noise(d)).collect::<Vec<_>>());
            y.push(k);
        }
    }
    (Mat::from_rows(&rows).unwrap(), y)
}

fn lsqr_config(exec: ExecPolicy) -> SrdaConfig {
    SrdaConfig {
        alpha: 1.0,
        solver: SrdaSolver::Lsqr {
            max_iter: 12,
            tol: 0.0,
        },
        exec,
        ..SrdaConfig::default()
    }
}

fn weight_bits(m: &srda::SrdaModel) -> Vec<u64> {
    m.embedding()
        .weights()
        .as_slice()
        .iter()
        .map(|v| v.to_bits())
        .collect()
}

/// Bit patterns of every per-response solution certificate: the
/// certificates are a pure function of the final iterates, so a resumed
/// fit must reproduce them exactly — including across the SRDACKP1
/// checkpoint round-trip, which persists no certificate state.
fn cert_bits(m: &srda::SrdaModel) -> Vec<(u64, u64, usize, srda::CertStatus)> {
    m.fit_report()
        .certificates
        .iter()
        .map(|c| {
            (
                c.backward_error.to_bits(),
                c.cond_estimate.to_bits(),
                c.refinement_steps,
                c.certified,
            )
        })
        .collect()
}

/// Kill the fit at global LSQR iteration `k`, resume it, and check the
/// final weights against the uninterrupted baseline, bit for bit.
fn kill_resume_roundtrip(exec: ExecPolicy, k: usize, tag: &str) {
    let (x, y) = three_blobs();
    let dir =
        std::env::temp_dir().join(format!("srda-kill-resume-{tag}-{k}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    failpoint::reset();
    let baseline = Srda::new(lsqr_config(exec)).fit_dense(&x, &y).unwrap();

    // kill exactly at the k-th iteration boundary
    failpoint::arm_after("lsqr.interrupt", k, 1);
    let killed = Srda::new(SrdaConfig {
        checkpoint: Some(CheckpointPolicy {
            dir: dir.clone(),
            every: 1,
        }),
        ..lsqr_config(exec)
    })
    .fit_dense_outcome(&x, &y)
    .unwrap();
    failpoint::reset();

    let interrupted = match killed {
        FitOutcome::Interrupted(i) => i,
        FitOutcome::Complete(_) => panic!("failpoint at iteration {k} must interrupt"),
    };
    assert_eq!(interrupted.reason, Interrupt::Cancelled);
    assert_eq!(interrupted.iterations, k, "killed at the exact iteration");
    let ckpt = interrupted
        .checkpoint
        .expect("checkpoint policy was configured");
    assert_eq!(ckpt, dir.join(FIT_CHECKPOINT_FILE));

    let resumed = Srda::new(SrdaConfig {
        resume_from: Some(ckpt.clone()),
        ..lsqr_config(exec)
    })
    .fit_dense(&x, &y)
    .unwrap();
    assert_eq!(
        weight_bits(&baseline),
        weight_bits(&resumed),
        "kill at iter {k} ({tag}): resume must be bitwise identical"
    );
    assert_eq!(baseline.embedding().bias(), resumed.embedding().bias());
    let base_certs = cert_bits(&baseline);
    assert_eq!(base_certs.len(), 2, "one certificate per response");
    assert_eq!(
        base_certs,
        cert_bits(&resumed),
        "kill at iter {k} ({tag}): certificates must survive resume bitwise"
    );
    assert_eq!(
        baseline
            .fit_report()
            .worst_backward_error
            .map(f64::to_bits),
        resumed.fit_report().worst_backward_error.map(f64::to_bits)
    );
    // the resumed, completed fit cleans up its own checkpoint... only if
    // it also has a checkpoint policy; here it has none, so the file
    // simply remains for inspection
    assert!(ckpt.exists());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn kill_and_resume_is_bitwise_deterministic_serial() {
    // k = 5: mid-response-0. k = 12: the boundary between responses.
    // k = 17: mid-response-1.
    for k in [5, 12, 17] {
        kill_resume_roundtrip(ExecPolicy::serial(), k, "serial");
    }
}

#[test]
fn kill_and_resume_is_bitwise_deterministic_threaded() {
    for k in [5, 12, 17] {
        kill_resume_roundtrip(ExecPolicy::threaded(4), k, "threaded");
    }
}

#[test]
fn serial_and_threaded_resumes_agree_with_each_other() {
    // the two backends are bitwise-identical by contract, so a fit
    // interrupted under serial may be resumed under threaded (and vice
    // versa) without changing the trajectory
    let (x, y) = three_blobs();
    let dir =
        std::env::temp_dir().join(format!("srda-cross-backend-resume-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    failpoint::reset();
    let baseline = Srda::new(lsqr_config(ExecPolicy::serial()))
        .fit_dense(&x, &y)
        .unwrap();

    failpoint::arm_after("lsqr.interrupt", 9, 1);
    let killed = Srda::new(SrdaConfig {
        checkpoint: Some(CheckpointPolicy {
            dir: dir.clone(),
            every: 1,
        }),
        ..lsqr_config(ExecPolicy::serial())
    })
    .fit_dense_outcome(&x, &y)
    .unwrap();
    failpoint::reset();
    let ckpt = match killed {
        FitOutcome::Interrupted(i) => i.checkpoint.unwrap(),
        FitOutcome::Complete(_) => panic!("must interrupt"),
    };

    let resumed = Srda::new(SrdaConfig {
        resume_from: Some(ckpt),
        ..lsqr_config(ExecPolicy::threaded(4))
    })
    .fit_dense(&x, &y)
    .unwrap();
    assert_eq!(weight_bits(&baseline), weight_bits(&resumed));
    assert_eq!(
        cert_bits(&baseline),
        cert_bits(&resumed),
        "cross-backend resume must certify identically"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
