//! Integration tests for the beyond-the-paper extensions (the ones the
//! paper's §III explicitly gestures at): spectral regression over general
//! graphs, kernel SRDA, incremental refits, and the ingestion pipeline.

use srda::{
    AffinityGraph, EdgeWeight, Kernel, KernelSrda, KernelSrdaConfig, SpectralRegression,
    SpectralRegressionConfig, Srda, SrdaConfig, SrdaSolver,
};
use srda_data::ingest::{ingest_corpus, VocabularyOptions};
use srda_data::{mnist_like, per_class_split};

#[test]
fn spectral_regression_on_class_graph_classifies_like_srda() {
    let data = mnist_like(0.05, 11);
    let split = per_class_split(&data.labels, 10, 0);
    let tr = data.select(&split.train);
    let te = data.select(&split.test);

    let graph = AffinityGraph::supervised(&tr.labels);
    let sr = SpectralRegression::new(SpectralRegressionConfig {
        n_components: data.n_classes - 1,
        alpha: 1.0,
        lsqr_iterations: None,
        ..Default::default()
    })
    .fit_dense(&tr.x, &graph)
    .unwrap();
    let srda = Srda::new(SrdaConfig::default())
        .fit_dense(&tr.x, &tr.labels)
        .unwrap();

    let err_of = |emb: &srda::Embedding| {
        let zt = emb.transform_dense(&tr.x).unwrap();
        let ze = emb.transform_dense(&te.x).unwrap();
        srda_eval::nearest_centroid_error_rate(&zt, &tr.labels, &ze, &te.labels, data.n_classes)
    };
    let e_sr = err_of(&sr);
    let e_srda = err_of(srda.embedding());
    assert!(
        (e_sr - e_srda).abs() < 0.05,
        "SR {e_sr} vs SRDA {e_srda} diverge"
    );
}

#[test]
fn kernel_srda_with_linear_kernel_tracks_linear_srda() {
    let data = mnist_like(0.04, 13);
    let split = per_class_split(&data.labels, 8, 0);
    let tr = data.select(&split.train);
    let te = data.select(&split.test);

    let kern = KernelSrda::new(KernelSrdaConfig {
        kernel: Kernel::Linear,
        alpha: 1.0,
        ..KernelSrdaConfig::default()
    })
    .fit_dense(&tr.x, &tr.labels)
    .unwrap();
    let lin = Srda::new(SrdaConfig::default())
        .fit_dense(&tr.x, &tr.labels)
        .unwrap();

    let zk_tr = kern.transform_dense(&tr.x).unwrap();
    let zk_te = kern.transform_dense(&te.x).unwrap();
    let ek = srda_eval::nearest_centroid_error_rate(
        &zk_tr,
        &tr.labels,
        &zk_te,
        &te.labels,
        data.n_classes,
    );
    let zl_tr = lin.embedding().transform_dense(&tr.x).unwrap();
    let zl_te = lin.embedding().transform_dense(&te.x).unwrap();
    let el = srda_eval::nearest_centroid_error_rate(
        &zl_tr,
        &tr.labels,
        &zl_te,
        &te.labels,
        data.n_classes,
    );
    // same function class up to the bias treatment: errors should be close
    assert!((ek - el).abs() < 0.12, "kernel {ek} vs linear {el}");
}

#[test]
fn unsupervised_graph_pipeline_runs_end_to_end() {
    let data = mnist_like(0.03, 17);
    let graph = AffinityGraph::knn(&data.x, 4, EdgeWeight::Heat { t: 3.0 });
    assert!(graph.n_edges() > 0);
    let emb = SpectralRegression::new(SpectralRegressionConfig {
        n_components: 3,
        alpha: 0.5,
        lsqr_iterations: Some(50),
        ..Default::default()
    })
    .fit_dense(&data.x, &graph)
    .unwrap();
    assert_eq!(emb.n_components(), 3);
    assert!(emb.weights().is_finite());
}

#[test]
fn incremental_refit_through_growing_corpus() {
    // simulate a stream: fit on 60%, refit incrementally at 80% and 100%
    let data = srda_data::newsgroups_like(0.03, 19);
    let s60 = srda_data::ratio_split(&data.labels, 0.6, 0);
    let s80 = srda_data::ratio_split(&data.labels, 0.8, 0);
    let base = data.select(&s60.train);
    let mid = data.select(&s80.train);

    let srda = Srda::new(SrdaConfig::default());
    let m0 = Srda::new(SrdaConfig {
        solver: SrdaSolver::Lsqr {
            max_iter: 200,
            tol: 1e-8,
        },
        ..SrdaConfig::default()
    })
    .fit_sparse(&base.x, &base.labels)
    .unwrap();
    let m1 = srda
        .fit_sparse_incremental(&mid.x, &mid.labels, &m0, 200, 1e-8)
        .unwrap();
    let m2 = srda
        .fit_sparse_incremental(&data.x, &data.labels, &m1, 200, 1e-8)
        .unwrap();
    // final model matches a cold fit on the full data
    let cold = Srda::new(SrdaConfig {
        solver: SrdaSolver::Lsqr {
            max_iter: 200,
            tol: 1e-8,
        },
        ..SrdaConfig::default()
    })
    .fit_sparse(&data.x, &data.labels)
    .unwrap();
    let diff = m2
        .embedding()
        .weights()
        .sub(cold.embedding().weights())
        .unwrap()
        .max_abs();
    assert!(diff < 1e-4, "stream drifted from cold fit by {diff}");
}

#[test]
fn ingestion_to_classification_pipeline() {
    // raw strings -> vocabulary -> tf matrix -> SRDA -> predictions
    let texts: Vec<String> = (0..30)
        .map(|i| match i % 3 {
            0 => format!("goalkeeper striker midfield football match {i}"),
            1 => format!("parliament election senate vote legislation {i}"),
            _ => format!("telescope galaxy nebula astronomy orbit {i}"),
        })
        .collect();
    let refs: Vec<&str> = texts.iter().map(|s| s.as_str()).collect();
    let (x, vocab) = ingest_corpus(&refs, &VocabularyOptions::default(), true);
    assert!(vocab.len() >= 12);
    let labels: Vec<usize> = (0..30).map(|i| i % 3).collect();
    let model = Srda::new(SrdaConfig::lsqr_default())
        .fit_sparse(&x, &labels)
        .unwrap();
    let z = model.embedding().transform_sparse(&x).unwrap();
    let err = srda_eval::nearest_centroid_error_rate(&z, &labels, &z, &labels, 3);
    assert_eq!(err, 0.0, "clean topics must classify perfectly");
}

#[test]
fn idx_roundtrip_feeds_the_pipeline() {
    // encode a small dense dataset as IDX bytes, decode, train
    let data = mnist_like(0.03, 23);
    let m = data.x.nrows();
    let bytes_img = srda_data::idx::encode_idx(&srda_data::idx::IdxTensor {
        shape: vec![m, 28, 28],
        data: data
            .x
            .as_slice()
            .iter()
            .map(|&v| (v * 255.0).round() as u8)
            .collect(),
    });
    let bytes_lbl = srda_data::idx::encode_idx(&srda_data::idx::IdxTensor {
        shape: vec![m],
        data: data.labels.iter().map(|&l| l as u8).collect(),
    });
    let imgs = srda_data::idx::parse_idx(&bytes_img).unwrap();
    let lbls = srda_data::idx::parse_idx(&bytes_lbl).unwrap();
    let x = srda_data::idx::images_to_mat(&imgs);
    let y = srda_data::idx::labels_to_vec(&lbls);
    assert_eq!(x.shape(), (m, 784));
    let model = Srda::new(SrdaConfig::default()).fit_dense(&x, &y).unwrap();
    assert_eq!(model.embedding().n_components(), 9);
}

#[test]
fn cross_validated_alpha_selection_runs() {
    let data = mnist_like(0.04, 29);
    let (alpha, err) =
        srda_eval::select_alpha_dense(&data.x, &data.labels, &[0.1, 1.0, 10.0], 3, 1);
    assert!([0.1, 1.0, 10.0].contains(&alpha));
    assert!((0.0..=1.0).contains(&err));
}
