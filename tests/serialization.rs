//! Serialization round-trips across crates: trained models and sparse
//! matrices must survive JSON (serde) intact and keep producing identical
//! predictions.

use srda::{Embedding, Srda, SrdaConfig};
use srda_data::{mnist_like, per_class_split};
use srda_sparse::CsrMatrix;

#[test]
fn trained_embedding_roundtrips_through_json() {
    let data = mnist_like(0.05, 1);
    let sp = per_class_split(&data.labels, 8, 0);
    let tr = data.select(&sp.train);
    let model = Srda::new(SrdaConfig::default())
        .fit_dense(&tr.x, &tr.labels)
        .unwrap();
    let emb = model.embedding();

    let json = serde_json::to_string(emb).unwrap();
    let back: Embedding = serde_json::from_str(&json).unwrap();
    assert_eq!(emb, &back);

    // identical behaviour after the round-trip
    let z1 = emb.transform_dense(&tr.x).unwrap();
    let z2 = back.transform_dense(&tr.x).unwrap();
    assert!(z1.approx_eq(&z2, 0.0));
}

#[test]
fn sparse_matrix_roundtrips_through_json() {
    let data = srda_data::newsgroups_like(0.01, 2);
    let json = serde_json::to_string(&data.x).unwrap();
    let back: CsrMatrix = serde_json::from_str(&json).unwrap();
    assert_eq!(data.x, back);
}

#[test]
fn embedding_json_is_humanly_plausible() {
    // guard against accidental opaque encodings: the JSON must contain the
    // structural fields by name
    let emb = Embedding::new(srda_linalg::Mat::identity(2), vec![0.5, -0.5]).unwrap();
    let json = serde_json::to_string(&emb).unwrap();
    assert!(json.contains("weights"));
    assert!(json.contains("bias"));
}

#[test]
fn model_persistence_workflow() {
    // the README's suggested save/load workflow: train, serialize to a
    // file, load in a "new process", predict
    let dir = std::env::temp_dir().join("srda_serialization_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("model.json");

    let data = mnist_like(0.05, 3);
    let sp = per_class_split(&data.labels, 8, 0);
    let tr = data.select(&sp.train);
    let te = data.select(&sp.test);
    let model = Srda::new(SrdaConfig::default())
        .fit_dense(&tr.x, &tr.labels)
        .unwrap();
    std::fs::write(&path, serde_json::to_vec(model.embedding()).unwrap()).unwrap();

    let loaded: Embedding = serde_json::from_slice(&std::fs::read(&path).unwrap()).unwrap();
    let z1 = model.embedding().transform_dense(&te.x).unwrap();
    let z2 = loaded.transform_dense(&te.x).unwrap();
    assert!(z1.approx_eq(&z2, 0.0));
    std::fs::remove_file(&path).ok();
}

// ---------------------------------------------------------------------------
// checkpoint corruption: the binary `SRDACKP1` (solver state) and
// `SRDAFCK1` (fit state) formats are CRC-32 sealed, so *every* single-bit
// flip anywhere in the file — magic, kind tag, payload, or the CRC
// trailer itself — must be rejected with a typed error, never parsed
// into silently-wrong resume state.
// ---------------------------------------------------------------------------

use srda::{CompletedResponse, FitCheckpoint, FitFingerprint};
use srda_solvers::{CglsCheckpoint, LsqrCheckpoint, ProblemFingerprint, StopReason};

/// A small but fully-populated LSQR checkpoint (every field non-trivial,
/// so flips in any region hit live data).
fn sample_lsqr_checkpoint() -> LsqrCheckpoint {
    let b = vec![1.0, -2.0, 3.5, 0.25];
    LsqrCheckpoint {
        fingerprint: ProblemFingerprint::new(4, 3, 0.5, 1e-8, 20, &b),
        iteration: 7,
        x: vec![0.1, -0.2, 0.3],
        w: vec![1.5, 2.5, -3.5],
        u: vec![0.4, 0.3, 0.2, 0.1],
        v: vec![-1.0, 0.0, 1.0],
        alpha: 1.25,
        phibar: -0.75,
        rhobar: 2.0,
        anorm_sq: 42.0,
        b_norm: 4.25,
        best_res: 0.125,
        no_improve: 2,
        residual_trace: vec![1.0, 0.5, 0.25, 0.2, 0.19, 0.15, 0.125],
    }
}

fn sample_fit_checkpoint() -> FitCheckpoint {
    let y = vec![0usize, 0, 1, 1, 2, 2];
    FitCheckpoint {
        fingerprint: FitFingerprint::new(6, 3, 2, 1.0, 15, 1e-10, &y),
        completed: vec![CompletedResponse {
            x: vec![0.25, -0.5, 0.75, 0.125],
            iterations: 9,
            stop: StopReason::Converged,
        }],
        in_flight: Some(sample_lsqr_checkpoint()),
        warnings: vec!["response 0: solution near breakdown".to_string()],
    }
}

/// Flip every bit of `bytes` in turn and assert `parse` rejects each
/// corrupted copy (and accepts the original).
fn assert_every_bit_flip_rejected<T>(
    bytes: &[u8],
    parse: impl Fn(&[u8]) -> Result<T, srda::CheckpointError>,
) {
    assert!(parse(bytes).is_ok(), "pristine bytes must parse");
    let mut corrupt = bytes.to_vec();
    for byte in 0..bytes.len() {
        for bit in 0..8 {
            corrupt[byte] ^= 1 << bit;
            assert!(
                parse(&corrupt).is_err(),
                "bit flip at byte {byte} bit {bit} was not detected \
                 ({} bytes total)",
                bytes.len()
            );
            corrupt[byte] ^= 1 << bit; // restore
        }
    }
    assert_eq!(corrupt, bytes, "harness must leave the buffer pristine");
}

#[test]
fn lsqr_checkpoint_rejects_every_single_bit_flip() {
    let ckpt = sample_lsqr_checkpoint();
    let bytes = ckpt.to_bytes();
    assert_eq!(&bytes[..8], b"SRDACKP1");
    assert_eq!(LsqrCheckpoint::from_bytes(&bytes).unwrap(), ckpt);
    assert_every_bit_flip_rejected(&bytes, LsqrCheckpoint::from_bytes);
}

#[test]
fn cgls_checkpoint_rejects_every_single_bit_flip() {
    let ckpt = CglsCheckpoint {
        fingerprint: ProblemFingerprint::new(4, 3, 0.1, 1e-9, 30, &[0.5, 1.5, -2.5, 3.0]),
        iteration: 4,
        x: vec![0.1, 0.2, 0.3],
        r: vec![-0.5, 0.25, -0.125, 0.0625],
        p: vec![1.0, -1.0, 0.5],
        gamma: 0.75,
        gamma0: 12.5,
    };
    let bytes = ckpt.to_bytes();
    assert_eq!(&bytes[..8], b"SRDACKP1");
    assert_eq!(CglsCheckpoint::from_bytes(&bytes).unwrap(), ckpt);
    assert_every_bit_flip_rejected(&bytes, CglsCheckpoint::from_bytes);
}

#[test]
fn fit_checkpoint_rejects_every_single_bit_flip() {
    let ckpt = sample_fit_checkpoint();
    let bytes = ckpt.to_bytes();
    assert_eq!(&bytes[..8], b"SRDAFCK1");
    assert_eq!(FitCheckpoint::from_bytes(&bytes).unwrap(), ckpt);
    assert_every_bit_flip_rejected(&bytes, FitCheckpoint::from_bytes);
}

#[test]
fn truncated_checkpoints_are_rejected() {
    // every strict prefix fails too — a torn write can drop a tail, not
    // just flip bits
    let bytes = sample_fit_checkpoint().to_bytes();
    for len in 0..bytes.len() {
        assert!(
            FitCheckpoint::from_bytes(&bytes[..len]).is_err(),
            "prefix of {len} bytes parsed"
        );
    }
    let bytes = sample_lsqr_checkpoint().to_bytes();
    for len in 0..bytes.len() {
        assert!(
            LsqrCheckpoint::from_bytes(&bytes[..len]).is_err(),
            "prefix of {len} bytes parsed"
        );
    }
}
