//! Serialization round-trips across crates: trained models and sparse
//! matrices must survive JSON (serde) intact and keep producing identical
//! predictions.

use srda::{Embedding, Srda, SrdaConfig};
use srda_data::{mnist_like, per_class_split};
use srda_sparse::CsrMatrix;

#[test]
fn trained_embedding_roundtrips_through_json() {
    let data = mnist_like(0.05, 1);
    let sp = per_class_split(&data.labels, 8, 0);
    let tr = data.select(&sp.train);
    let model = Srda::new(SrdaConfig::default())
        .fit_dense(&tr.x, &tr.labels)
        .unwrap();
    let emb = model.embedding();

    let json = serde_json::to_string(emb).unwrap();
    let back: Embedding = serde_json::from_str(&json).unwrap();
    assert_eq!(emb, &back);

    // identical behaviour after the round-trip
    let z1 = emb.transform_dense(&tr.x).unwrap();
    let z2 = back.transform_dense(&tr.x).unwrap();
    assert!(z1.approx_eq(&z2, 0.0));
}

#[test]
fn sparse_matrix_roundtrips_through_json() {
    let data = srda_data::newsgroups_like(0.01, 2);
    let json = serde_json::to_string(&data.x).unwrap();
    let back: CsrMatrix = serde_json::from_str(&json).unwrap();
    assert_eq!(data.x, back);
}

#[test]
fn embedding_json_is_humanly_plausible() {
    // guard against accidental opaque encodings: the JSON must contain the
    // structural fields by name
    let emb = Embedding::new(srda_linalg::Mat::identity(2), vec![0.5, -0.5]).unwrap();
    let json = serde_json::to_string(&emb).unwrap();
    assert!(json.contains("weights"));
    assert!(json.contains("bias"));
}

#[test]
fn model_persistence_workflow() {
    // the README's suggested save/load workflow: train, serialize to a
    // file, load in a "new process", predict
    let dir = std::env::temp_dir().join("srda_serialization_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("model.json");

    let data = mnist_like(0.05, 3);
    let sp = per_class_split(&data.labels, 8, 0);
    let tr = data.select(&sp.train);
    let te = data.select(&sp.test);
    let model = Srda::new(SrdaConfig::default())
        .fit_dense(&tr.x, &tr.labels)
        .unwrap();
    std::fs::write(&path, serde_json::to_vec(model.embedding()).unwrap()).unwrap();

    let loaded: Embedding =
        serde_json::from_slice(&std::fs::read(&path).unwrap()).unwrap();
    let z1 = model.embedding().transform_dense(&te.x).unwrap();
    let z2 = loaded.transform_dense(&te.x).unwrap();
    assert!(z1.approx_eq(&z2, 0.0));
    std::fs::remove_file(&path).ok();
}
