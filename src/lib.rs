//! # srda-suite
//!
//! Workspace root package: hosts the runnable examples (`examples/`) and
//! the cross-crate integration tests (`tests/`) of the SRDA reproduction.
//! The library itself only re-exports the workspace crates so examples and
//! tests have a single import surface.

pub use srda;
pub use srda_data;
pub use srda_eval;
pub use srda_linalg;
pub use srda_solvers;
pub use srda_sparse;
