#!/usr/bin/env bash
# Local CI gate: formatting, lints, the full test suite under both
# execution backends, and a kernel-benchmark smoke run.
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

# Every test must pass under the serial backend AND a thread-
# oversubscribed one: results are required to be bitwise identical, so
# nothing may rely on the default ExecPolicy resolving to serial.
echo "==> cargo test (SRDA_THREADS=1, serial backend)"
SRDA_THREADS=1 cargo test --workspace -q

echo "==> cargo test (SRDA_THREADS=4, threaded backend)"
SRDA_THREADS=4 cargo test --workspace -q

# Bench smoke: tiny scale, still exercises all four kernels and the
# serial-vs-threaded bitwise check (bench_kernels exits nonzero on any
# divergence). The full-scale BENCH_kernels.json is produced manually.
echo "==> bench smoke (bench_kernels, reduced scale)"
SRDA_BENCH_SCALE=0.05 SRDA_BENCH_THREADS=4 \
    cargo run -q --release -p srda-bench --bin bench_kernels \
    -- target/BENCH_kernels.smoke.json

echo "CI OK"
