#!/usr/bin/env bash
# Local CI gate: formatting, lints, the full test suite under both
# execution backends, and a kernel-benchmark smoke run.
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

# Every test must pass under the serial backend AND a thread-
# oversubscribed one: results are required to be bitwise identical, so
# nothing may rely on the default ExecPolicy resolving to serial.
echo "==> cargo test (SRDA_THREADS=1, serial backend)"
SRDA_THREADS=1 cargo test --workspace -q

echo "==> cargo test (SRDA_THREADS=4, threaded backend)"
SRDA_THREADS=4 cargo test --workspace -q

# Tracing must be a pure observer: the whole suite also passes with the
# recorder armed from the environment (golden-trajectory and bitwise
# determinism tests then run with live telemetry attached).
echo "==> cargo test (SRDA_TRACE=1, recorder armed)"
SRDA_TRACE=1 cargo test --workspace -q

# Certified-numerics hardening pass: the linalg and solver suites run
# again at release codegen with debug assertions and overflow checks
# baked in, so the condition-estimation / refinement / certification
# kernels are exercised with every internal invariant armed under the
# same optimizations production uses.
echo "==> cargo test (release + debug-assertions + overflow-checks, linalg/solvers)"
CARGO_PROFILE_RELEASE_DEBUG_ASSERTIONS=true \
CARGO_PROFILE_RELEASE_OVERFLOW_CHECKS=true \
    cargo test -q --release -p srda-linalg -p srda-solvers

# Bench smoke: tiny scale, still exercises all four kernels and the
# serial-vs-threaded bitwise check (bench_kernels exits nonzero on any
# divergence). The full-scale BENCH_kernels.json is produced manually.
echo "==> bench smoke (bench_kernels, reduced scale)"
SRDA_BENCH_SCALE=0.05 SRDA_BENCH_THREADS=4 \
    cargo run -q --release -p srda-bench --bin bench_kernels \
    -- target/BENCH_kernels.smoke.json

# Zero-overhead gate: an instrumented-but-disabled recorder must cost
# < 2% on a hot kernel versus an enabled one (the overhead probe in
# bench_kernels runs at a fixed, noise-resistant shape regardless of
# SRDA_BENCH_SCALE). This is the observability layer's core promise:
# leaving the plumbing compiled in is free.
echo "==> recorder zero-overhead gate (< 2%)"
rel_delta=$(sed -n 's/.*"rel_delta": \([-0-9.e]*\).*/\1/p' \
    target/BENCH_kernels.smoke.json)
awk -v d="$rel_delta" 'BEGIN { exit !(d < 0.02) }' || {
    echo "recorder overhead $rel_delta exceeds the 2% budget" >&2
    exit 1
}

# Kill-and-resume smoke: a fit cut off by an iteration budget must exit
# with code 3, leave a checkpoint behind, and — after `srda resume` —
# produce a model JSON that is byte-identical to the uninterrupted
# baseline (serde emits bitwise float round-trips, so `cmp` is exact).
echo "==> kill-and-resume smoke (srda train --iter-budget / srda resume)"
cargo build -q --release -p srda-cli
SRDA=target/release/srda
SMOKE_DIR=$(mktemp -d)
trap 'rm -rf "$SMOKE_DIR"' EXIT
"$SRDA" generate --dataset news --scale 0.02 --seed 11 \
    --out "$SMOKE_DIR/data.svm"
"$SRDA" train --data "$SMOKE_DIR/data.svm" \
    --model "$SMOKE_DIR/baseline.json" --solver lsqr --iters 8
set +e
"$SRDA" train --data "$SMOKE_DIR/data.svm" \
    --model "$SMOKE_DIR/partial.json" --solver lsqr --iters 8 \
    --iter-budget 20 --checkpoint-dir "$SMOKE_DIR/ckpt"
rc=$?
set -e
if [ "$rc" -ne 3 ]; then
    echo "expected exit code 3 (interrupted), got $rc" >&2
    exit 1
fi
test -f "$SMOKE_DIR/ckpt/srda-fit.ckpt" || {
    echo "interrupted train left no checkpoint" >&2
    exit 1
}
test ! -f "$SMOKE_DIR/partial.json" || {
    echo "interrupted train must not write a model" >&2
    exit 1
}
"$SRDA" resume --data "$SMOKE_DIR/data.svm" \
    --checkpoint "$SMOKE_DIR/ckpt/srda-fit.ckpt" \
    --model "$SMOKE_DIR/resumed.json"
cmp "$SMOKE_DIR/baseline.json" "$SMOKE_DIR/resumed.json" || {
    echo "resumed model diverges from the uninterrupted baseline" >&2
    exit 1
}

# Observability smoke: a traced train must emit the srda-obs-v1 report
# to --metrics-out, cover the fit with solver telemetry, and produce a
# model byte-identical to the untraced baseline above.
echo "==> trace smoke (srda train --trace --metrics-out)"
"$SRDA" train --data "$SMOKE_DIR/data.svm" \
    --model "$SMOKE_DIR/traced.json" --solver lsqr --iters 8 \
    --trace --metrics-out "$SMOKE_DIR/metrics.json" 2>/dev/null
grep -q '"schema": "srda-obs-v1"' "$SMOKE_DIR/metrics.json" || {
    echo "--metrics-out did not emit the srda-obs-v1 schema" >&2
    exit 1
}
grep -q '"solver": "lsqr"' "$SMOKE_DIR/metrics.json" || {
    echo "metrics report carries no LSQR telemetry" >&2
    exit 1
}
cmp "$SMOKE_DIR/baseline.json" "$SMOKE_DIR/traced.json" || {
    echo "traced model diverges from the untraced baseline" >&2
    exit 1
}

# Certification smoke: one sample with a huge-magnitude feature drives
# κ(K) ≈ 1e13, so the plain direct solve cannot pass its forward-error
# bound — the jitter ladder must escalate until a rung certifies, and
# `--certify` must then exit 0 with no Suspect certificate (a Suspect
# survivor exits 4, failing this gate under `set -e`).
echo "==> certify smoke (srda train --certify on ill-conditioned data)"
cat > "$SMOKE_DIR/illcond.svm" <<'EOF'
0 0:3e6 1:0.4
0 0:1.1 1:0.7 2:0.2
0 1:0.9 2:0.4
0 0:0.8 1:0.3 2:0.6
1 0:0.2 2:1.3
1 0:0.5 1:1.1 2:0.9
1 1:0.3 2:1.4
1 0:0.1 1:0.8 2:1.2
EOF
"$SRDA" train --data "$SMOKE_DIR/illcond.svm" \
    --model "$SMOKE_DIR/illcond.json" --solver ne --certify \
    2> "$SMOKE_DIR/certify.log"
grep -q "verdict" "$SMOKE_DIR/certify.log" || {
    echo "--certify printed no solution certificates" >&2
    exit 1
}
if grep -q "Suspect" "$SMOKE_DIR/certify.log"; then
    echo "--certify left a Suspect certificate on the smoke fixture" >&2
    exit 1
fi

echo "CI OK"
