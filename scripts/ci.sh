#!/usr/bin/env bash
# Local CI gate: formatting, lints, the full test suite under both
# execution backends, and a kernel-benchmark smoke run.
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

# Every test must pass under the serial backend AND a thread-
# oversubscribed one: results are required to be bitwise identical, so
# nothing may rely on the default ExecPolicy resolving to serial.
echo "==> cargo test (SRDA_THREADS=1, serial backend)"
SRDA_THREADS=1 cargo test --workspace -q

echo "==> cargo test (SRDA_THREADS=4, threaded backend)"
SRDA_THREADS=4 cargo test --workspace -q

# Tracing must be a pure observer: the whole suite also passes with the
# recorder armed from the environment (golden-trajectory and bitwise
# determinism tests then run with live telemetry attached).
echo "==> cargo test (SRDA_TRACE=1, recorder armed)"
SRDA_TRACE=1 cargo test --workspace -q

# Bench smoke: tiny scale, still exercises all four kernels and the
# serial-vs-threaded bitwise check (bench_kernels exits nonzero on any
# divergence). The full-scale BENCH_kernels.json is produced manually.
echo "==> bench smoke (bench_kernels, reduced scale)"
SRDA_BENCH_SCALE=0.05 SRDA_BENCH_THREADS=4 \
    cargo run -q --release -p srda-bench --bin bench_kernels \
    -- target/BENCH_kernels.smoke.json

# Zero-overhead gate: an instrumented-but-disabled recorder must cost
# < 2% on a hot kernel versus an enabled one (the overhead probe in
# bench_kernels runs at a fixed, noise-resistant shape regardless of
# SRDA_BENCH_SCALE). This is the observability layer's core promise:
# leaving the plumbing compiled in is free.
echo "==> recorder zero-overhead gate (< 2%)"
rel_delta=$(sed -n 's/.*"rel_delta": \([-0-9.e]*\).*/\1/p' \
    target/BENCH_kernels.smoke.json)
awk -v d="$rel_delta" 'BEGIN { exit !(d < 0.02) }' || {
    echo "recorder overhead $rel_delta exceeds the 2% budget" >&2
    exit 1
}

# Kill-and-resume smoke: a fit cut off by an iteration budget must exit
# with code 3, leave a checkpoint behind, and — after `srda resume` —
# produce a model JSON that is byte-identical to the uninterrupted
# baseline (serde emits bitwise float round-trips, so `cmp` is exact).
echo "==> kill-and-resume smoke (srda train --iter-budget / srda resume)"
cargo build -q --release -p srda-cli
SRDA=target/release/srda
SMOKE_DIR=$(mktemp -d)
trap 'rm -rf "$SMOKE_DIR"' EXIT
"$SRDA" generate --dataset news --scale 0.02 --seed 11 \
    --out "$SMOKE_DIR/data.svm"
"$SRDA" train --data "$SMOKE_DIR/data.svm" \
    --model "$SMOKE_DIR/baseline.json" --solver lsqr --iters 8
set +e
"$SRDA" train --data "$SMOKE_DIR/data.svm" \
    --model "$SMOKE_DIR/partial.json" --solver lsqr --iters 8 \
    --iter-budget 20 --checkpoint-dir "$SMOKE_DIR/ckpt"
rc=$?
set -e
if [ "$rc" -ne 3 ]; then
    echo "expected exit code 3 (interrupted), got $rc" >&2
    exit 1
fi
test -f "$SMOKE_DIR/ckpt/srda-fit.ckpt" || {
    echo "interrupted train left no checkpoint" >&2
    exit 1
}
test ! -f "$SMOKE_DIR/partial.json" || {
    echo "interrupted train must not write a model" >&2
    exit 1
}
"$SRDA" resume --data "$SMOKE_DIR/data.svm" \
    --checkpoint "$SMOKE_DIR/ckpt/srda-fit.ckpt" \
    --model "$SMOKE_DIR/resumed.json"
cmp "$SMOKE_DIR/baseline.json" "$SMOKE_DIR/resumed.json" || {
    echo "resumed model diverges from the uninterrupted baseline" >&2
    exit 1
}

# Observability smoke: a traced train must emit the srda-obs-v1 report
# to --metrics-out, cover the fit with solver telemetry, and produce a
# model byte-identical to the untraced baseline above.
echo "==> trace smoke (srda train --trace --metrics-out)"
"$SRDA" train --data "$SMOKE_DIR/data.svm" \
    --model "$SMOKE_DIR/traced.json" --solver lsqr --iters 8 \
    --trace --metrics-out "$SMOKE_DIR/metrics.json" 2>/dev/null
grep -q '"schema": "srda-obs-v1"' "$SMOKE_DIR/metrics.json" || {
    echo "--metrics-out did not emit the srda-obs-v1 schema" >&2
    exit 1
}
grep -q '"solver": "lsqr"' "$SMOKE_DIR/metrics.json" || {
    echo "metrics report carries no LSQR telemetry" >&2
    exit 1
}
cmp "$SMOKE_DIR/baseline.json" "$SMOKE_DIR/traced.json" || {
    echo "traced model diverges from the untraced baseline" >&2
    exit 1
}

echo "CI OK"
