#!/usr/bin/env bash
# Local CI gate: formatting, lints, the full test suite under both
# execution backends, and a kernel-benchmark smoke run.
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

# Every test must pass under the serial backend AND a thread-
# oversubscribed one: results are required to be bitwise identical, so
# nothing may rely on the default ExecPolicy resolving to serial.
echo "==> cargo test (SRDA_THREADS=1, serial backend)"
SRDA_THREADS=1 cargo test --workspace -q

echo "==> cargo test (SRDA_THREADS=4, threaded backend)"
SRDA_THREADS=4 cargo test --workspace -q

# Bench smoke: tiny scale, still exercises all four kernels and the
# serial-vs-threaded bitwise check (bench_kernels exits nonzero on any
# divergence). The full-scale BENCH_kernels.json is produced manually.
echo "==> bench smoke (bench_kernels, reduced scale)"
SRDA_BENCH_SCALE=0.05 SRDA_BENCH_THREADS=4 \
    cargo run -q --release -p srda-bench --bin bench_kernels \
    -- target/BENCH_kernels.smoke.json

# Kill-and-resume smoke: a fit cut off by an iteration budget must exit
# with code 3, leave a checkpoint behind, and — after `srda resume` —
# produce a model JSON that is byte-identical to the uninterrupted
# baseline (serde emits bitwise float round-trips, so `cmp` is exact).
echo "==> kill-and-resume smoke (srda train --iter-budget / srda resume)"
cargo build -q --release -p srda-cli
SRDA=target/release/srda
SMOKE_DIR=$(mktemp -d)
trap 'rm -rf "$SMOKE_DIR"' EXIT
"$SRDA" generate --dataset news --scale 0.02 --seed 11 \
    --out "$SMOKE_DIR/data.svm"
"$SRDA" train --data "$SMOKE_DIR/data.svm" \
    --model "$SMOKE_DIR/baseline.json" --solver lsqr --iters 8
set +e
"$SRDA" train --data "$SMOKE_DIR/data.svm" \
    --model "$SMOKE_DIR/partial.json" --solver lsqr --iters 8 \
    --iter-budget 20 --checkpoint-dir "$SMOKE_DIR/ckpt"
rc=$?
set -e
if [ "$rc" -ne 3 ]; then
    echo "expected exit code 3 (interrupted), got $rc" >&2
    exit 1
fi
test -f "$SMOKE_DIR/ckpt/srda-fit.ckpt" || {
    echo "interrupted train left no checkpoint" >&2
    exit 1
}
test ! -f "$SMOKE_DIR/partial.json" || {
    echo "interrupted train must not write a model" >&2
    exit 1
}
"$SRDA" resume --data "$SMOKE_DIR/data.svm" \
    --checkpoint "$SMOKE_DIR/ckpt/srda-fit.ckpt" \
    --model "$SMOKE_DIR/resumed.json"
cmp "$SMOKE_DIR/baseline.json" "$SMOKE_DIR/resumed.json" || {
    echo "resumed model diverges from the uninterrupted baseline" >&2
    exit 1
}

echo "CI OK"
