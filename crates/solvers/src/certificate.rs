//! Machine-checkable solution-quality certificates.
//!
//! Every ridge solve in the workspace — direct Cholesky, damped LSQR/CGLS,
//! or a ladder-recovered hybrid — can produce a [`SolveCertificate`]
//! answering the question the error *type* cannot: "the solve returned
//! finite numbers, but are they any good?". The certificate pairs an a
//! posteriori backward error with a condition estimate, so their product
//! bounds the relative forward error (Higham, ch. 7):
//!
//! ```text
//!   ‖x − x*‖ / ‖x*‖  ≲  κ(A) · η(x)
//! ```
//!
//! * **Direct path** — η is the normwise Rigal–Gaches backward error of the
//!   factored system, κ is the Hager 1-norm estimate captured by
//!   [`srda_linalg::Cholesky`]. If the bound fails, fixed-precision
//!   iterative refinement ([`srda_linalg::refine`]) is attempted against
//!   the existing factor before declaring the solution [`Suspect`].
//! * **Matrix-free path** — the certificate is computed *post hoc* from the
//!   final iterate with three operator applies: the relative
//!   normal-equation residual `‖Aᵀ(b − A·x) − δ²·x‖ / ‖Aᵀb‖` (the same
//!   quantity behind Paige–Saunders' `‖Aᵀr‖` stopping rule) plus a
//!   Rayleigh-quotient condition probe. Because it is a pure function of
//!   the final `x`, certificates are bitwise identical between serial and
//!   threaded backends and between fresh and checkpoint-resumed solves.
//!
//! [`Suspect`]: CertStatus::Suspect

use crate::operator::LinearOperator;
use srda_linalg::{refine, vector, Cholesky, Mat, Result};

/// Forward-error-bound acceptance threshold for direct solves: a solution
/// is certified when `cond_estimate × backward_error ≤ CERTIFY_BOUND`,
/// i.e. its estimated relative forward error is at most 1 part in 10⁴ —
/// far tighter than anything a downstream classifier margin can detect,
/// while still letting the backward-stable-but-ill-conditioned regime
/// (κ·ε ≳ 10⁻⁴) escalate.
pub const CERTIFY_BOUND: f64 = 1e-4;

/// Residual acceptance threshold for matrix-free certificates: the
/// relative normal-equation residual of a converged damped LSQR/CGLS run
/// (default tol 1e-10) sits orders of magnitude below this; anything above
/// it means the iteration stopped early or stalled.
pub const CERTIFY_RESIDUAL: f64 = 1e-6;

/// Certification verdict attached to a solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CertStatus {
    /// The solution met the acceptance bound as computed — no repair was
    /// needed.
    Certified,
    /// The solution met the bound only after iterative refinement.
    Refined,
    /// The solution failed the bound even after refinement (or the
    /// certificate itself was non-finite). Downstream layers must escalate
    /// or warn.
    Suspect,
}

/// A posteriori quality certificate for one linear-system solution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolveCertificate {
    /// Normwise relative backward error of the returned solution (direct:
    /// Rigal–Gaches η; matrix-free: relative normal-equation residual).
    pub backward_error: f64,
    /// Condition estimate of the solved system (direct: Hager κ₁;
    /// matrix-free: Rayleigh-quotient probe of `(σ²+δ²)/δ²`, or `+∞` when
    /// `δ = 0` leaves the spectrum unbounded below).
    pub cond_estimate: f64,
    /// Refinement steps applied before the verdict (0 on the matrix-free
    /// path, which repairs by escalation instead).
    pub refinement_steps: usize,
    /// The verdict.
    pub certified: CertStatus,
}

impl SolveCertificate {
    /// The forward-error bound `cond_estimate × backward_error` (NaN-free:
    /// a zero backward error yields 0 even against an infinite κ).
    pub fn error_bound(&self) -> f64 {
        if self.backward_error == 0.0 {
            0.0
        } else {
            self.cond_estimate * self.backward_error
        }
    }

    /// Whether this certificate demands escalation.
    pub fn is_suspect(&self) -> bool {
        self.certified == CertStatus::Suspect
    }
}

/// Worst (largest) backward error across a set of certificates; NaN is
/// treated as `+∞` (a non-finite certificate is the worst possible).
/// `None` for an empty set.
pub fn worst_backward_error(certs: &[SolveCertificate]) -> Option<f64> {
    certs
        .iter()
        .map(|c| {
            if c.backward_error.is_nan() {
                f64::INFINITY
            } else {
                c.backward_error
            }
        })
        .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.max(v))))
}

/// Certify (and, when the bound fails, refine in place) one solution of
/// the SPD system `G·x = b` against its existing Cholesky factor.
///
/// `g` must be the full symmetric matrix that was factored (with any
/// diagonal shift already applied — certificates always describe the
/// system that was actually solved). `cond_estimate` is computed once per
/// factorization by the caller ([`Cholesky::condition_estimate`] costs a
/// handful of O(n²) solves) and shared across the `c − 1` response
/// certificates. When the initial forward-error bound is within
/// [`CERTIFY_BOUND`], `x` is left bitwise untouched.
pub fn certify_spd_solve(
    chol: &Cholesky,
    g: &Mat,
    cond_estimate: f64,
    b: &[f64],
    x: &mut [f64],
    max_refine_steps: usize,
) -> Result<SolveCertificate> {
    let eta = refine::backward_error(g, b, x);
    if eta == 0.0 || cond_estimate * eta <= CERTIFY_BOUND {
        return Ok(SolveCertificate {
            backward_error: eta,
            cond_estimate,
            refinement_steps: 0,
            certified: CertStatus::Certified,
        });
    }
    let rep = refine::refine_solve(chol, g, b, x, max_refine_steps)?;
    let bound = cond_estimate * rep.backward_error;
    let certified = if bound.is_finite() && bound <= CERTIFY_BOUND {
        CertStatus::Refined
    } else {
        CertStatus::Suspect
    };
    Ok(SolveCertificate {
        backward_error: rep.backward_error,
        cond_estimate,
        refinement_steps: rep.steps,
        certified,
    })
}

/// Post-hoc certificate for a damped least-squares solution
/// `min ‖A·x − b‖² + δ²‖x‖²` computed by any iterative solver.
///
/// Three operator applies: `‖Aᵀ(b − A·x) − δ²·x‖ / ‖Aᵀb‖` is the relative
/// residual of the damped normal equations (zero at the exact minimizer),
/// and `(‖A·x‖²/‖x‖² + δ²)/δ²` is a Rayleigh-quotient probe of the normal
/// matrix's condition number using the solution itself as the probe
/// direction. Deterministic in `x`: bitwise-equal solutions (serial vs
/// threaded, fresh vs resumed) get bitwise-equal certificates.
pub fn certify_operator<Op: LinearOperator + ?Sized>(
    op: &Op,
    b: &[f64],
    x: &[f64],
    damp: f64,
) -> SolveCertificate {
    let atb = op.apply_t(b);
    let denom = vector::norm2_robust(&atb);
    let ax = op.apply(x);
    let mut r = b.to_vec();
    for (ri, ti) in r.iter_mut().zip(&ax) {
        *ri -= ti;
    }
    let mut s = op.apply_t(&r);
    let d2 = damp * damp;
    for (si, xi) in s.iter_mut().zip(x) {
        *si -= d2 * xi;
    }
    let s_norm = vector::norm2_robust(&s);
    let rho = if s_norm == 0.0 {
        0.0
    } else if denom == 0.0 || !s_norm.is_finite() {
        f64::INFINITY
    } else {
        s_norm / denom
    };
    let x_norm = vector::norm2_robust(x);
    let cond_estimate = if x_norm == 0.0 || !x_norm.is_finite() {
        1.0
    } else {
        let sigma_sq = {
            let q = vector::norm2_robust(&ax) / x_norm;
            q * q
        };
        if d2 > 0.0 {
            (sigma_sq + d2) / d2
        } else {
            f64::INFINITY
        }
    };
    let certified = if rho.is_finite() && rho <= CERTIFY_RESIDUAL {
        CertStatus::Certified
    } else {
        CertStatus::Suspect
    };
    SolveCertificate {
        backward_error: rho,
        cond_estimate,
        refinement_steps: 0,
        certified,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srda_linalg::ops::matvec;

    fn hilbert(n: usize) -> Mat {
        Mat::from_fn(n, n, |i, j| 1.0 / (i as f64 + j as f64 + 1.0))
    }

    #[test]
    fn well_conditioned_solve_is_certified_untouched() {
        let mut g = Mat::from_fn(4, 4, |i, j| if i == j { 3.0 } else { 0.5 });
        g.add_to_diag(0.0);
        let chol = Cholesky::factor(&g).unwrap();
        let cond = chol.condition_estimate();
        let b = vec![1.0, -2.0, 0.5, 3.0];
        let x0 = chol.solve(&b).unwrap();
        let mut x = x0.clone();
        let cert = certify_spd_solve(&chol, &g, cond, &b, &mut x, 3).unwrap();
        assert_eq!(cert.certified, CertStatus::Certified);
        assert_eq!(cert.refinement_steps, 0);
        assert!(cert.error_bound() <= CERTIFY_BOUND);
        // bitwise untouched on the certified path
        for (a, b) in x.iter().zip(&x0) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn ill_conditioned_solve_refines_or_escalates() {
        let n = 12;
        let mut g = hilbert(n);
        g.add_to_diag(1e-13);
        let chol = Cholesky::factor(&g).unwrap();
        let cond = chol.condition_estimate();
        assert!(cond > 1e10, "Hilbert(12)+1e-13·I should be seen as bad: {cond:e}");
        let x_true: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.7).sin()).collect();
        let b = matvec(&g, &x_true).unwrap();
        let mut x = chol.solve(&b).unwrap();
        let cert = certify_spd_solve(&chol, &g, cond, &b, &mut x, 5).unwrap();
        // whatever the verdict, the certificate must be honest: the reported
        // backward error matches the returned iterate
        let eta = refine::backward_error(&g, &b, &x);
        assert!((eta - cert.backward_error).abs() <= eta.max(1e-300) * 1e-6 + 1e-18);
        assert_ne!(
            cert.certified,
            CertStatus::Certified,
            "κ·η = {:e} cannot pass the bound without refinement",
            cond * eta
        );
    }

    #[test]
    fn operator_certificate_accepts_exact_solutions() {
        let a = Mat::from_fn(6, 3, |i, j| ((i * 3 + j) as f64 * 0.41).cos());
        let damp = 0.5;
        // Solve the damped problem exactly via the primal normal equations.
        let solver = crate::ridge::RidgeSolver::primal(&a, damp * damp).unwrap();
        let y: Vec<f64> = (0..6).map(|i| (i as f64) - 2.0).collect();
        let x = solver.solve_vec(&a, &y).unwrap();
        let cert = certify_operator(&a, &y, &x, damp);
        assert_eq!(cert.certified, CertStatus::Certified);
        assert!(cert.backward_error <= 1e-12, "{:e}", cert.backward_error);
        assert!(cert.cond_estimate >= 1.0);
    }

    #[test]
    fn operator_certificate_rejects_garbage() {
        let a = Mat::from_fn(6, 3, |i, j| ((i * 3 + j) as f64 * 0.41).cos());
        let y: Vec<f64> = (0..6).map(|i| (i as f64) - 2.0).collect();
        let cert = certify_operator(&a, &y, &[100.0, -50.0, 25.0], 0.5);
        assert_eq!(cert.certified, CertStatus::Suspect);
        assert!(cert.backward_error > CERTIFY_RESIDUAL);
        let cert = certify_operator(&a, &y, &[f64::NAN, 0.0, 0.0], 0.5);
        assert_eq!(cert.certified, CertStatus::Suspect);
    }

    #[test]
    fn operator_certificate_is_deterministic() {
        let a = Mat::from_fn(5, 4, |i, j| ((i + 2 * j) as f64 * 0.13).sin());
        let y: Vec<f64> = (0..5).map(|i| (i as f64 * 0.9).cos()).collect();
        let x: Vec<f64> = (0..4).map(|i| (i as f64) * 0.25 - 0.4).collect();
        let c1 = certify_operator(&a, &y, &x, 0.3);
        let c2 = certify_operator(&a, &y, &x, 0.3);
        assert_eq!(c1.backward_error.to_bits(), c2.backward_error.to_bits());
        assert_eq!(c1.cond_estimate.to_bits(), c2.cond_estimate.to_bits());
    }

    #[test]
    fn worst_backward_error_picks_max_and_hates_nan() {
        let mk = |e: f64| SolveCertificate {
            backward_error: e,
            cond_estimate: 1.0,
            refinement_steps: 0,
            certified: CertStatus::Certified,
        };
        assert_eq!(worst_backward_error(&[]), None);
        assert_eq!(worst_backward_error(&[mk(1e-12), mk(3e-9)]), Some(3e-9));
        assert_eq!(
            worst_backward_error(&[mk(1e-12), mk(f64::NAN)]),
            Some(f64::INFINITY)
        );
    }

    #[test]
    fn error_bound_handles_zero_times_infinity() {
        let c = SolveCertificate {
            backward_error: 0.0,
            cond_estimate: f64::INFINITY,
            refinement_steps: 0,
            certified: CertStatus::Certified,
        };
        assert_eq!(c.error_bound(), 0.0);
    }
}
