//! CGLS: conjugate gradient applied to the regularized normal equations.
//!
//! Solves the same problem as [`crate::lsqr`] — `min ‖Ax − b‖² + α‖x‖²` —
//! by running CG on `(AᵀA + αI)x = Aᵀb` without ever forming `AᵀA`. In
//! exact arithmetic CGLS and LSQR generate identical iterates; in floating
//! point LSQR is the more stable of the two, which is why the paper (and
//! our default) uses LSQR. CGLS is kept as an independent cross-check and
//! for the solver-ablation benchmark.

use crate::operator::LinearOperator;
use srda_linalg::vector;

/// Configuration for a CGLS run.
#[derive(Debug, Clone)]
pub struct CglsConfig {
    /// Ridge parameter `α` (note: *not* squared, unlike LSQR's `damp`).
    pub alpha: f64,
    /// Iteration cap.
    pub max_iter: usize,
    /// Stop when `‖Aᵀr − αx‖` falls below `tol` times its initial value.
    pub tol: f64,
}

impl Default for CglsConfig {
    fn default() -> Self {
        CglsConfig {
            alpha: 0.0,
            max_iter: 50,
            tol: 1e-12,
        }
    }
}

/// Outcome of a CGLS run.
#[derive(Debug, Clone)]
pub struct CglsResult {
    /// The computed solution.
    pub x: Vec<f64>,
    /// Iterations performed.
    pub iterations: usize,
    /// Final normal-equation residual norm `‖Aᵀ(b − Ax) − αx‖`.
    pub gradient_norm: f64,
}

/// Run CGLS on `min ‖A·x − b‖² + α‖x‖²`.
pub fn cgls<A: LinearOperator + ?Sized>(a: &A, b: &[f64], cfg: &CglsConfig) -> CglsResult {
    assert_eq!(b.len(), a.nrows(), "rhs length must equal operator rows");
    let n = a.ncols();
    let mut x = vec![0.0; n];
    let mut r = b.to_vec(); // residual b − A·x (x = 0 initially)
    let mut s = a.apply_t(&r); // gradient direction Aᵀr − αx (x = 0)
    let mut p = s.clone();
    let mut gamma = vector::dot(&s, &s);
    let gamma0 = gamma;
    if gamma0 == 0.0 {
        return CglsResult {
            x,
            iterations: 0,
            gradient_norm: 0.0,
        };
    }

    let mut iterations = 0;
    // product buffer reused across iterations (see LinearOperator::apply_into)
    let mut q = vec![0.0; a.nrows()];
    for iter in 0..cfg.max_iter {
        iterations = iter + 1;
        a.apply_into(&p, &mut q);
        let delta = vector::dot(&q, &q) + cfg.alpha * vector::dot(&p, &p);
        if delta <= 0.0 {
            break; // p in the (numerical) null space; cannot progress
        }
        let step = gamma / delta;
        vector::axpy(step, &p, &mut x);
        vector::axpy(-step, &q, &mut r);

        // s = Aᵀr − αx
        a.apply_t_into(&r, &mut s);
        vector::axpy(-cfg.alpha, &x, &mut s);

        let gamma_new = vector::dot(&s, &s);
        if gamma_new.sqrt() <= cfg.tol * gamma0.sqrt() {
            gamma = gamma_new;
            break;
        }
        let beta = gamma_new / gamma;
        for (pi, si) in p.iter_mut().zip(&s) {
            *pi = si + beta * *pi;
        }
        gamma = gamma_new;
    }

    CglsResult {
        x,
        iterations,
        gradient_norm: gamma.sqrt(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lsqr::{lsqr, LsqrConfig};
    use srda_linalg::ops::{gram, matvec_t};
    use srda_linalg::{Cholesky, Mat};

    fn noise_mat(m: usize, n: usize) -> Mat {
        Mat::from_fn(m, n, |i, j| {
            let x = (i as f64 * 45.164 + j as f64 * 94.673).sin() * 43758.5453;
            x - x.floor() - 0.5
        })
    }

    fn ridge_oracle(a: &Mat, b: &[f64], alpha: f64) -> Vec<f64> {
        let mut g = gram(a);
        g.add_to_diag(alpha);
        let atb = matvec_t(a, b).unwrap();
        Cholesky::factor(&g).unwrap().solve(&atb).unwrap()
    }

    #[test]
    fn matches_direct_ridge() {
        let a = noise_mat(18, 7);
        let b: Vec<f64> = (0..18).map(|i| (i as f64 * 0.4).sin()).collect();
        let alpha = 0.9;
        let r = cgls(
            &a,
            &b,
            &CglsConfig {
                alpha,
                max_iter: 300,
                tol: 1e-14,
            },
        );
        let oracle = ridge_oracle(&a, &b, alpha);
        for (u, v) in r.x.iter().zip(&oracle) {
            assert!((u - v).abs() < 1e-8, "{u} vs {v}");
        }
    }

    #[test]
    fn agrees_with_lsqr() {
        let a = noise_mat(25, 12);
        let b: Vec<f64> = (0..25).map(|i| (i as f64 * 0.23).cos()).collect();
        let alpha = 0.3;
        let r1 = cgls(
            &a,
            &b,
            &CglsConfig {
                alpha,
                max_iter: 400,
                tol: 1e-14,
            },
        );
        let r2 = lsqr(
            &a,
            &b,
            &LsqrConfig {
                damp: alpha.sqrt(),
                max_iter: 400,
                tol: 1e-14,
            },
        );
        for (u, v) in r1.x.iter().zip(&r2.x) {
            assert!((u - v).abs() < 1e-7, "{u} vs {v}");
        }
    }

    #[test]
    fn zero_rhs() {
        let a = noise_mat(5, 4);
        let r = cgls(&a, &[0.0; 5], &CglsConfig::default());
        assert_eq!(r.iterations, 0);
        assert_eq!(r.x, vec![0.0; 4]);
    }

    #[test]
    fn unregularized_underdetermined_finds_a_solution() {
        let a = noise_mat(4, 10);
        let b = vec![1.0, -1.0, 2.0, 0.5];
        let r = cgls(
            &a,
            &b,
            &CglsConfig {
                alpha: 0.0,
                max_iter: 200,
                tol: 1e-13,
            },
        );
        // residual should be ~0 for a full-row-rank underdetermined system
        let ax = LinearOperator::apply(&a, &r.x);
        for (u, v) in ax.iter().zip(&b) {
            assert!((u - v).abs() < 1e-7);
        }
    }

    #[test]
    fn exact_arithmetic_terminates_in_n_iterations() {
        // CG theory: at most n iterations for an n-dim problem
        let a = noise_mat(12, 4);
        let b = vec![1.0; 12];
        let r = cgls(
            &a,
            &b,
            &CglsConfig {
                alpha: 0.1,
                max_iter: 100,
                tol: 1e-12,
            },
        );
        assert!(r.iterations <= 8, "took {} iterations", r.iterations);
    }

    #[test]
    #[should_panic(expected = "rhs length")]
    fn rhs_checked() {
        let a = noise_mat(4, 3);
        let _ = cgls(&a, &[1.0; 5], &CglsConfig::default());
    }
}
