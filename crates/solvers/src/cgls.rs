//! CGLS: conjugate gradient applied to the regularized normal equations.
//!
//! Solves the same problem as [`crate::lsqr`] — `min ‖Ax − b‖² + α‖x‖²` —
//! by running CG on `(AᵀA + αI)x = Aᵀb` without ever forming `AᵀA`. In
//! exact arithmetic CGLS and LSQR generate identical iterates; in floating
//! point LSQR is the more stable of the two, which is why the paper (and
//! our default) uses LSQR. CGLS is kept as an independent cross-check and
//! for the solver-ablation benchmark.

use crate::checkpoint::{CglsCheckpoint, ProblemFingerprint};
use crate::governor::{Interrupt, RunGovernor};
use crate::operator::LinearOperator;
use srda_linalg::vector;
use srda_obs::SolverTrace;

/// Configuration for a CGLS run.
#[derive(Debug, Clone)]
pub struct CglsConfig {
    /// Ridge parameter `α` (note: *not* squared, unlike LSQR's `damp`).
    pub alpha: f64,
    /// Iteration cap.
    pub max_iter: usize,
    /// Stop when `‖Aᵀr − αx‖` falls below `tol` times its initial value.
    pub tol: f64,
}

impl Default for CglsConfig {
    fn default() -> Self {
        CglsConfig {
            alpha: 0.0,
            max_iter: 50,
            tol: 1e-12,
        }
    }
}

/// Outcome of a CGLS run.
#[derive(Debug, Clone)]
pub struct CglsResult {
    /// The computed solution.
    pub x: Vec<f64>,
    /// Iterations performed.
    pub iterations: usize,
    /// Final normal-equation residual norm `‖Aᵀ(b − Ax) − αx‖`.
    pub gradient_norm: f64,
    /// `Some(reason)` when a [`RunGovernor`] stopped the run early; the
    /// returned `x` is the last completed iterate and `checkpoint` carries
    /// the resumable state.
    pub interrupted: Option<Interrupt>,
    /// Resumable solver state, populated only on interruption.
    pub checkpoint: Option<Box<CglsCheckpoint>>,
}

/// Governance hooks for [`cgls_controlled`] (the CGLS analogue of
/// [`crate::lsqr::SolveControls`]). Defaults to an ungoverned solve.
#[derive(Clone, Copy, Default)]
pub struct CglsControls<'a> {
    /// Budget/cancellation authority, consulted every iteration.
    pub governor: Option<&'a RunGovernor>,
    /// Resume from a previously captured state (fingerprint must match;
    /// mismatch panics — validate first with
    /// [`ProblemFingerprint::ensure_matches`] for a typed error).
    pub resume: Option<&'a CglsCheckpoint>,
    /// Emit a checkpoint every N completed iterations (0 = never).
    pub checkpoint_every: usize,
    /// Periodic checkpoint sink.
    pub on_checkpoint: Option<&'a (dyn Fn(&CglsCheckpoint) + Sync)>,
    /// Telemetry channel for the per-iteration gradient-norm trajectory
    /// and governor checks. Pure observation: a traced run is bitwise
    /// identical to an untraced one.
    pub telemetry: Option<&'a SolverTrace>,
}

/// Run CGLS on `min ‖A·x − b‖² + α‖x‖²`.
pub fn cgls<A: LinearOperator + ?Sized>(a: &A, b: &[f64], cfg: &CglsConfig) -> CglsResult {
    cgls_controlled(a, b, cfg, &CglsControls::default())
}

/// [`cgls`] with run governance. Same determinism contract as
/// [`crate::lsqr::lsqr_controlled`]: governance observes state between
/// iterations without perturbing the float sequence, so interrupt +
/// resume replays bitwise-identically.
pub fn cgls_controlled<A: LinearOperator + ?Sized>(
    a: &A,
    b: &[f64],
    cfg: &CglsConfig,
    ctl: &CglsControls,
) -> CglsResult {
    assert_eq!(b.len(), a.nrows(), "rhs length must equal operator rows");
    if let Some(t) = ctl.telemetry {
        t.set_solver("cgls", cfg.alpha);
    }
    let n = a.ncols();

    let fingerprint = if ctl.resume.is_some()
        || ctl.governor.is_some()
        || (ctl.checkpoint_every > 0 && ctl.on_checkpoint.is_some())
    {
        // alpha rides in the fingerprint's damp slot
        Some(ProblemFingerprint::new(
            a.nrows(),
            n,
            cfg.alpha,
            cfg.tol,
            cfg.max_iter,
            b,
        ))
    } else {
        None
    };

    let mut x;
    let mut r;
    let mut p;
    let mut gamma;
    let gamma0;
    let start_iter;
    let mut s = vec![0.0; n];
    if let Some(ckpt) = ctl.resume {
        if let Err(e) = ckpt.fingerprint.ensure_matches(
            fingerprint
                .as_ref()
                .expect("fingerprint computed for resume"),
        ) {
            panic!("cgls resume: {e}");
        }
        assert_eq!(ckpt.x.len(), n, "checkpoint x length");
        assert_eq!(ckpt.r.len(), a.nrows(), "checkpoint r length");
        assert_eq!(ckpt.p.len(), n, "checkpoint p length");
        x = ckpt.x.clone();
        r = ckpt.r.clone();
        p = ckpt.p.clone();
        gamma = ckpt.gamma;
        gamma0 = ckpt.gamma0;
        start_iter = ckpt.iteration;
    } else {
        x = vec![0.0; n];
        r = b.to_vec(); // residual b − A·x (x = 0 initially)
        s = a.apply_t(&r); // gradient direction Aᵀr − αx (x = 0)
        p = s.clone();
        gamma = vector::dot(&s, &s);
        gamma0 = gamma;
        if gamma0 == 0.0 {
            return CglsResult {
                x,
                iterations: 0,
                gradient_norm: 0.0,
                interrupted: None,
                checkpoint: None,
            };
        }
        start_iter = 0;
    }

    let snapshot = |iteration: usize, x: &[f64], r: &[f64], p: &[f64], gamma: f64| CglsCheckpoint {
        fingerprint: fingerprint.expect("snapshot only taken when fingerprinted"),
        iteration,
        x: x.to_vec(),
        r: r.to_vec(),
        p: p.to_vec(),
        gamma,
        gamma0,
    };

    let mut iterations = start_iter;
    let mut interrupted = None;
    let mut interrupted_ckpt: Option<Box<CglsCheckpoint>> = None;
    // product buffer reused across iterations (see LinearOperator::apply_into)
    let mut q = vec![0.0; a.nrows()];
    for iter in start_iter..cfg.max_iter {
        if let Some(reason) = ctl.governor.and_then(|g| {
            if let Some(t) = ctl.telemetry {
                t.governor_check();
            }
            g.tick()
        }) {
            interrupted = Some(reason);
            iterations = iter;
            interrupted_ckpt = Some(Box::new(snapshot(iter, &x, &r, &p, gamma)));
            break;
        }
        iterations = iter + 1;
        a.apply_into(&p, &mut q);
        let delta = vector::dot(&q, &q) + cfg.alpha * vector::dot(&p, &p);
        if !delta.is_finite() {
            // overflow/NaN in the curvature term: `delta <= 0.0` is false
            // for NaN, so without this check a poisoned matvec would spin
            // to max_iter corrupting x. Stop on the last finite iterate.
            break;
        }
        if delta <= 0.0 {
            break; // p in the (numerical) null space; cannot progress
        }
        let step = gamma / delta;
        vector::axpy(step, &p, &mut x);
        vector::axpy(-step, &q, &mut r);

        // s = Aᵀr − αx
        a.apply_t_into(&r, &mut s);
        vector::axpy(-cfg.alpha, &x, &mut s);

        let gamma_new = vector::dot(&s, &s);
        if let Some(t) = ctl.telemetry {
            // the gradient norm is the only convergence quantity CGLS
            // tracks, so it fills both telemetry columns (pure read)
            t.iteration(iter + 1, gamma_new.sqrt(), gamma_new.sqrt());
        }
        if !gamma_new.is_finite() {
            // poisoned gradient: report it (gradient_norm = NaN/∞) instead
            // of iterating on garbage — the NaN would fail every further
            // convergence test and run to max_iter
            gamma = gamma_new;
            break;
        }
        if gamma_new.sqrt() <= cfg.tol * gamma0.sqrt() {
            gamma = gamma_new;
            break;
        }
        let beta = gamma_new / gamma;
        for (pi, si) in p.iter_mut().zip(&s) {
            *pi = si + beta * *pi;
        }
        gamma = gamma_new;
        // periodic checkpoint after the full iteration has landed
        if ctl.checkpoint_every > 0 && (iter + 1) % ctl.checkpoint_every == 0 {
            if let Some(cb) = ctl.on_checkpoint {
                cb(&snapshot(iter + 1, &x, &r, &p, gamma));
            }
        }
    }

    // a poisoned iterate must never be returned under a finite (stale)
    // gradient norm: downstream certificates key off gradient_norm
    if gamma.is_finite() && !x.iter().all(|t| t.is_finite()) {
        gamma = f64::NAN;
    }

    CglsResult {
        x,
        iterations,
        gradient_norm: gamma.sqrt(),
        interrupted,
        checkpoint: interrupted_ckpt,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lsqr::{lsqr, LsqrConfig};
    use srda_linalg::ops::{gram, matvec_t};
    use srda_linalg::{Cholesky, Mat};

    fn noise_mat(m: usize, n: usize) -> Mat {
        Mat::from_fn(m, n, |i, j| {
            let x = (i as f64 * 45.164 + j as f64 * 94.673).sin() * 43758.5453;
            x - x.floor() - 0.5
        })
    }

    fn ridge_oracle(a: &Mat, b: &[f64], alpha: f64) -> Vec<f64> {
        let mut g = gram(a);
        g.add_to_diag(alpha);
        let atb = matvec_t(a, b).unwrap();
        Cholesky::factor(&g).unwrap().solve(&atb).unwrap()
    }

    #[test]
    fn matches_direct_ridge() {
        let a = noise_mat(18, 7);
        let b: Vec<f64> = (0..18).map(|i| (i as f64 * 0.4).sin()).collect();
        let alpha = 0.9;
        let r = cgls(
            &a,
            &b,
            &CglsConfig {
                alpha,
                max_iter: 300,
                tol: 1e-14,
            },
        );
        let oracle = ridge_oracle(&a, &b, alpha);
        for (u, v) in r.x.iter().zip(&oracle) {
            assert!((u - v).abs() < 1e-8, "{u} vs {v}");
        }
    }

    #[test]
    fn agrees_with_lsqr() {
        let a = noise_mat(25, 12);
        let b: Vec<f64> = (0..25).map(|i| (i as f64 * 0.23).cos()).collect();
        let alpha = 0.3;
        let r1 = cgls(
            &a,
            &b,
            &CglsConfig {
                alpha,
                max_iter: 400,
                tol: 1e-14,
            },
        );
        let r2 = lsqr(
            &a,
            &b,
            &LsqrConfig {
                damp: alpha.sqrt(),
                max_iter: 400,
                tol: 1e-14,
            },
        );
        for (u, v) in r1.x.iter().zip(&r2.x) {
            assert!((u - v).abs() < 1e-7, "{u} vs {v}");
        }
    }

    #[test]
    fn zero_rhs() {
        let a = noise_mat(5, 4);
        let r = cgls(&a, &[0.0; 5], &CglsConfig::default());
        assert_eq!(r.iterations, 0);
        assert_eq!(r.x, vec![0.0; 4]);
    }

    #[test]
    fn unregularized_underdetermined_finds_a_solution() {
        let a = noise_mat(4, 10);
        let b = vec![1.0, -1.0, 2.0, 0.5];
        let r = cgls(
            &a,
            &b,
            &CglsConfig {
                alpha: 0.0,
                max_iter: 200,
                tol: 1e-13,
            },
        );
        // residual should be ~0 for a full-row-rank underdetermined system
        let ax = LinearOperator::apply(&a, &r.x);
        for (u, v) in ax.iter().zip(&b) {
            assert!((u - v).abs() < 1e-7);
        }
    }

    #[test]
    fn exact_arithmetic_terminates_in_n_iterations() {
        // CG theory: at most n iterations for an n-dim problem
        let a = noise_mat(12, 4);
        let b = vec![1.0; 12];
        let r = cgls(
            &a,
            &b,
            &CglsConfig {
                alpha: 0.1,
                max_iter: 100,
                tol: 1e-12,
            },
        );
        assert!(r.iterations <= 8, "took {} iterations", r.iterations);
    }

    #[test]
    fn nan_operator_stops_instead_of_spinning() {
        // NaN fails every comparison, so without explicit guards a
        // poisoned matvec would run to max_iter corrupting x
        let mut a = noise_mat(6, 3);
        a[(2, 1)] = f64::NAN;
        let r = cgls(
            &a,
            &[1.0; 6],
            &CglsConfig {
                alpha: 0.1,
                max_iter: 50,
                tol: 1e-12,
            },
        );
        assert!(
            r.iterations <= 1,
            "poisoned run must stop immediately, ran {}",
            r.iterations
        );
        // the poison is reported, never hidden behind a stale finite norm
        assert!(r.gradient_norm.is_nan());
        assert!(r.x.iter().all(|t| t.is_finite()));
    }

    #[test]
    #[should_panic(expected = "rhs length")]
    fn rhs_checked() {
        let a = noise_mat(4, 3);
        let _ = cgls(&a, &[1.0; 5], &CglsConfig::default());
    }

    #[test]
    fn governed_interrupt_then_resume_is_bitwise_identical() {
        use crate::governor::{RunBudget, RunGovernor};
        let a = noise_mat(22, 9);
        let b: Vec<f64> = (0..22).map(|i| (i as f64 * 0.31).sin()).collect();
        let cfg = CglsConfig {
            alpha: 0.2,
            max_iter: 30,
            tol: 0.0,
        };
        let full = cgls(&a, &b, &cfg);
        for k in [1usize, 4, 9] {
            let g = RunGovernor::with_budget(RunBudget::with_iter_cap(k));
            let partial = cgls_controlled(
                &a,
                &b,
                &cfg,
                &CglsControls {
                    governor: Some(&g),
                    ..Default::default()
                },
            );
            assert_eq!(partial.interrupted, Some(Interrupt::IterBudgetExhausted));
            assert_eq!(partial.iterations, k);
            let ckpt = partial
                .checkpoint
                .expect("interrupt must carry a checkpoint");
            // prove the serialized form, not just the in-memory state
            let ckpt = CglsCheckpoint::from_bytes(&ckpt.to_bytes()).unwrap();
            let resumed = cgls_controlled(
                &a,
                &b,
                &cfg,
                &CglsControls {
                    resume: Some(&ckpt),
                    ..Default::default()
                },
            );
            assert_eq!(resumed.iterations, full.iterations, "interrupt at {k}");
            assert_eq!(resumed.interrupted, None);
            for (u, v) in resumed.x.iter().zip(&full.x) {
                assert_eq!(u.to_bits(), v.to_bits(), "{u} vs {v}");
            }
            assert_eq!(
                resumed.gradient_norm.to_bits(),
                full.gradient_norm.to_bits()
            );
        }
    }

    #[test]
    fn periodic_checkpoints_resume_identically() {
        let a = noise_mat(15, 6);
        let b: Vec<f64> = (0..15).map(|i| (i as f64 * 0.7).cos()).collect();
        let cfg = CglsConfig {
            alpha: 0.5,
            max_iter: 10,
            tol: 0.0,
        };
        let captured = std::sync::Mutex::new(Vec::new());
        let on_ckpt = |c: &CglsCheckpoint| captured.lock().unwrap().push(c.clone());
        let full = cgls_controlled(
            &a,
            &b,
            &cfg,
            &CglsControls {
                checkpoint_every: 4,
                on_checkpoint: Some(&on_ckpt),
                ..Default::default()
            },
        );
        let captured = captured.into_inner().unwrap();
        assert!(!captured.is_empty());
        for ckpt in &captured {
            let resumed = cgls_controlled(
                &a,
                &b,
                &cfg,
                &CglsControls {
                    resume: Some(ckpt),
                    ..Default::default()
                },
            );
            assert_eq!(resumed.iterations, full.iterations);
            for (u, v) in resumed.x.iter().zip(&full.x) {
                assert_eq!(u.to_bits(), v.to_bits());
            }
        }
    }

    #[test]
    #[should_panic(expected = "cgls resume")]
    fn resume_against_different_problem_panics() {
        let a = noise_mat(8, 4);
        let b = vec![1.0; 8];
        let cfg = CglsConfig::default();
        let ckpt = CglsCheckpoint {
            fingerprint: ProblemFingerprint::new(8, 4, cfg.alpha, cfg.tol, cfg.max_iter, &[9.0; 8]),
            iteration: 1,
            x: vec![0.0; 4],
            r: vec![0.0; 8],
            p: vec![0.0; 4],
            gamma: 1.0,
            gamma0: 1.0,
        };
        let _ = cgls_controlled(
            &a,
            &b,
            &cfg,
            &CglsControls {
                resume: Some(&ckpt),
                ..Default::default()
            },
        );
    }
}
