//! The matrix-free operator interface and its implementations.
//!
//! LSQR touches the data only through `A·v` and `Aᵀ·u`. The paper leans on
//! this twice: it is why sparse data stays sparse (§III.C.2), and why even
//! out-of-core data "can still be applied with some reasonable disk I/O".
//! Everything the SRDA core needs from a data matrix is captured here.

use srda_linalg::{Executor, Mat};
use srda_sparse::CsrMatrix;

/// A linear operator `A : ℝⁿ → ℝᵐ` exposed through its two matrix-vector
/// products.
pub trait LinearOperator {
    /// Number of rows `m` (samples, in the SRDA convention).
    fn nrows(&self) -> usize;
    /// Number of columns `n` (features).
    fn ncols(&self) -> usize;
    /// `y = A·x` with `x.len() == ncols()`.
    fn apply(&self, x: &[f64]) -> Vec<f64>;
    /// `y = Aᵀ·x` with `x.len() == nrows()`.
    fn apply_t(&self, x: &[f64]) -> Vec<f64>;
    /// `y = A·x` into a caller-provided buffer (`y.len() == nrows()`).
    ///
    /// The default delegates to [`LinearOperator::apply`]; concrete
    /// operators override it to skip the per-call allocation — this is
    /// what the LSQR/CGLS inner loops call once per iteration.
    fn apply_into(&self, x: &[f64], y: &mut [f64]) {
        y.copy_from_slice(&self.apply(x));
    }
    /// `y = Aᵀ·x` into a caller-provided buffer (`y.len() == ncols()`).
    fn apply_t_into(&self, x: &[f64], y: &mut [f64]) {
        y.copy_from_slice(&self.apply_t(x));
    }
}

impl LinearOperator for Mat {
    fn nrows(&self) -> usize {
        Mat::nrows(self)
    }
    fn ncols(&self) -> usize {
        Mat::ncols(self)
    }
    fn apply(&self, x: &[f64]) -> Vec<f64> {
        srda_linalg::ops::matvec(self, x).expect("operator shape invariant")
    }
    fn apply_t(&self, x: &[f64]) -> Vec<f64> {
        srda_linalg::ops::matvec_t(self, x).expect("operator shape invariant")
    }
    fn apply_into(&self, x: &[f64], y: &mut [f64]) {
        srda_linalg::ops::matvec_into_exec(self, x, y, &Executor::serial())
            .expect("operator shape invariant");
    }
    fn apply_t_into(&self, x: &[f64], y: &mut [f64]) {
        srda_linalg::ops::matvec_t_into_exec(self, x, y, &Executor::serial())
            .expect("operator shape invariant");
    }
}

impl LinearOperator for CsrMatrix {
    fn nrows(&self) -> usize {
        CsrMatrix::nrows(self)
    }
    fn ncols(&self) -> usize {
        CsrMatrix::ncols(self)
    }
    fn apply(&self, x: &[f64]) -> Vec<f64> {
        self.matvec(x).expect("operator shape invariant")
    }
    fn apply_t(&self, x: &[f64]) -> Vec<f64> {
        self.matvec_t(x).expect("operator shape invariant")
    }
    fn apply_into(&self, x: &[f64], y: &mut [f64]) {
        self.matvec_into_exec(x, y, &Executor::serial())
            .expect("operator shape invariant");
    }
    fn apply_t_into(&self, x: &[f64], y: &mut [f64]) {
        self.matvec_t_into_exec(x, y, &Executor::serial())
            .expect("operator shape invariant");
    }
}

/// A dense matrix routed through a specific [`Executor`]: identical
/// numerics to the `Mat` operator impl on every backend, with the products
/// row-parallel under [`srda_linalg::Backend::Threaded`].
pub struct ExecDense<'a> {
    mat: &'a Mat,
    exec: Executor,
}

impl<'a> ExecDense<'a> {
    /// Wrap `mat` so its operator products run on `exec`.
    pub fn new(mat: &'a Mat, exec: Executor) -> Self {
        ExecDense { mat, exec }
    }
}

impl LinearOperator for ExecDense<'_> {
    fn nrows(&self) -> usize {
        self.mat.nrows()
    }
    fn ncols(&self) -> usize {
        self.mat.ncols()
    }
    fn apply(&self, x: &[f64]) -> Vec<f64> {
        srda_linalg::ops::matvec_exec(self.mat, x, &self.exec).expect("operator shape invariant")
    }
    fn apply_t(&self, x: &[f64]) -> Vec<f64> {
        srda_linalg::ops::matvec_t_exec(self.mat, x, &self.exec).expect("operator shape invariant")
    }
    fn apply_into(&self, x: &[f64], y: &mut [f64]) {
        srda_linalg::ops::matvec_into_exec(self.mat, x, y, &self.exec)
            .expect("operator shape invariant");
    }
    fn apply_t_into(&self, x: &[f64], y: &mut [f64]) {
        srda_linalg::ops::matvec_t_into_exec(self.mat, x, y, &self.exec)
            .expect("operator shape invariant");
    }
}

/// A CSR matrix routed through a specific [`Executor`]; see [`ExecDense`].
pub struct ExecCsr<'a> {
    csr: &'a CsrMatrix,
    exec: Executor,
}

impl<'a> ExecCsr<'a> {
    /// Wrap `csr` so its operator products run on `exec`.
    pub fn new(csr: &'a CsrMatrix, exec: Executor) -> Self {
        ExecCsr { csr, exec }
    }
}

impl LinearOperator for ExecCsr<'_> {
    fn nrows(&self) -> usize {
        self.csr.nrows()
    }
    fn ncols(&self) -> usize {
        self.csr.ncols()
    }
    fn apply(&self, x: &[f64]) -> Vec<f64> {
        self.csr
            .matvec_exec(x, &self.exec)
            .expect("operator shape invariant")
    }
    fn apply_t(&self, x: &[f64]) -> Vec<f64> {
        self.csr
            .matvec_t_exec(x, &self.exec)
            .expect("operator shape invariant")
    }
    fn apply_into(&self, x: &[f64], y: &mut [f64]) {
        self.csr
            .matvec_into_exec(x, y, &self.exec)
            .expect("operator shape invariant");
    }
    fn apply_t_into(&self, x: &[f64], y: &mut [f64]) {
        self.csr
            .matvec_t_into_exec(x, y, &self.exec)
            .expect("operator shape invariant");
    }
}

/// Out-of-core operator: the paper's "reasonable disk I/O" mode. Each
/// product is one sequential scan of the on-disk non-zeros; only the row
/// pointers stay resident.
///
/// An operator has no error channel, so a mid-solve disk failure is
/// signalled by returning an all-NaN product. [`crate::lsqr`] rejects
/// non-finite operator output and stops with
/// [`crate::StopReason::Diverged`], which the fit layer converts into a
/// proper error — the failure surfaces to the caller instead of aborting
/// the process or leaking NaN into a model.
impl LinearOperator for srda_sparse::DiskCsr {
    fn nrows(&self) -> usize {
        srda_sparse::DiskCsr::nrows(self)
    }
    fn ncols(&self) -> usize {
        srda_sparse::DiskCsr::ncols(self)
    }
    fn apply(&self, x: &[f64]) -> Vec<f64> {
        self.matvec(x)
            .unwrap_or_else(|_| vec![f64::NAN; srda_sparse::DiskCsr::nrows(self)])
    }
    fn apply_t(&self, x: &[f64]) -> Vec<f64> {
        self.matvec_t(x)
            .unwrap_or_else(|_| vec![f64::NAN; srda_sparse::DiskCsr::ncols(self)])
    }
}

/// Wraps an operator as `[A | 1]`: a virtual all-ones last column.
///
/// This is the paper's bias-absorption trick (§III.B) in matrix-free form:
/// the augmented solution vector is `[a; b]` with `b` the intercept, and no
/// augmented copy of the data is ever materialized.
pub struct AugmentedOp<'a, A: LinearOperator + ?Sized> {
    inner: &'a A,
}

impl<'a, A: LinearOperator + ?Sized> AugmentedOp<'a, A> {
    /// Wrap `inner` with a virtual constant-1 column appended.
    pub fn new(inner: &'a A) -> Self {
        AugmentedOp { inner }
    }
}

impl<A: LinearOperator + ?Sized> LinearOperator for AugmentedOp<'_, A> {
    fn nrows(&self) -> usize {
        self.inner.nrows()
    }
    fn ncols(&self) -> usize {
        self.inner.ncols() + 1
    }
    fn apply(&self, x: &[f64]) -> Vec<f64> {
        debug_assert_eq!(x.len(), self.ncols());
        let (head, bias) = x.split_at(x.len() - 1);
        let mut y = self.inner.apply(head);
        let b = bias[0];
        if b != 0.0 {
            for yi in &mut y {
                *yi += b;
            }
        }
        y
    }
    fn apply_t(&self, x: &[f64]) -> Vec<f64> {
        debug_assert_eq!(x.len(), self.nrows());
        let mut y = self.inner.apply_t(x);
        y.push(x.iter().sum());
        y
    }
    fn apply_into(&self, x: &[f64], y: &mut [f64]) {
        debug_assert_eq!(x.len(), self.ncols());
        let (head, bias) = x.split_at(x.len() - 1);
        self.inner.apply_into(head, y);
        let b = bias[0];
        if b != 0.0 {
            for yi in y.iter_mut() {
                *yi += b;
            }
        }
    }
    fn apply_t_into(&self, x: &[f64], y: &mut [f64]) {
        debug_assert_eq!(x.len(), self.nrows());
        debug_assert_eq!(y.len(), self.ncols());
        let (head, bias) = y.split_at_mut(self.inner.ncols());
        self.inner.apply_t_into(x, head);
        bias[0] = x.iter().sum();
    }
}

/// Wraps an operator as the implicitly centered matrix `X − 1·μᵀ`.
///
/// `(X − 1μᵀ)·v = X·v − (μᵀv)·1` and `(X − 1μᵀ)ᵀ·u = Xᵀ·u − (1ᵀu)·μ`, so
/// centering costs one extra rank-one correction per product and a sparse
/// `X` is never densified. This is the alternative to the bias trick that
/// DESIGN.md's ablation benches compare against.
pub struct CenteredOp<'a, A: LinearOperator + ?Sized> {
    inner: &'a A,
    mu: Vec<f64>,
}

impl<'a, A: LinearOperator + ?Sized> CenteredOp<'a, A> {
    /// Wrap `inner`, subtracting the row `mu` from every virtual row.
    /// Panics if `mu.len() != inner.ncols()`.
    pub fn new(inner: &'a A, mu: Vec<f64>) -> Self {
        assert_eq!(mu.len(), inner.ncols(), "mean length must match ncols");
        CenteredOp { inner, mu }
    }
}

impl<A: LinearOperator + ?Sized> LinearOperator for CenteredOp<'_, A> {
    fn nrows(&self) -> usize {
        self.inner.nrows()
    }
    fn ncols(&self) -> usize {
        self.inner.ncols()
    }
    fn apply(&self, x: &[f64]) -> Vec<f64> {
        let mut y = self.inner.apply(x);
        let shift = srda_linalg::vector::dot(&self.mu, x);
        for yi in &mut y {
            *yi -= shift;
        }
        y
    }
    fn apply_t(&self, x: &[f64]) -> Vec<f64> {
        let mut y = self.inner.apply_t(x);
        let s: f64 = x.iter().sum();
        srda_linalg::vector::axpy(-s, &self.mu, &mut y);
        y
    }
    fn apply_into(&self, x: &[f64], y: &mut [f64]) {
        self.inner.apply_into(x, y);
        let shift = srda_linalg::vector::dot(&self.mu, x);
        for yi in y.iter_mut() {
            *yi -= shift;
        }
    }
    fn apply_t_into(&self, x: &[f64], y: &mut [f64]) {
        self.inner.apply_t_into(x, y);
        let s: f64 = x.iter().sum();
        srda_linalg::vector::axpy(-s, &self.mu, y);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srda_sparse::CooBuilder;

    fn dense() -> Mat {
        Mat::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]).unwrap()
    }

    #[test]
    fn dense_operator_matches_kernels() {
        let a = dense();
        let y = LinearOperator::apply(&a, &[1.0, -1.0]);
        assert_eq!(y, vec![-1.0, -1.0, -1.0]);
        let yt = LinearOperator::apply_t(&a, &[1.0, 0.0, 1.0]);
        assert_eq!(yt, vec![6.0, 8.0]);
    }

    #[test]
    fn sparse_operator_matches_dense() {
        let d = dense();
        let mut b = CooBuilder::new(3, 2);
        for i in 0..3 {
            for j in 0..2 {
                b.push(i, j, d[(i, j)]).unwrap();
            }
        }
        let s = b.build();
        let x = [0.5, -2.0];
        assert_eq!(LinearOperator::apply(&s, &x), LinearOperator::apply(&d, &x));
        let u = [1.0, 2.0, 3.0];
        assert_eq!(
            LinearOperator::apply_t(&s, &u),
            LinearOperator::apply_t(&d, &u)
        );
    }

    #[test]
    fn augmented_matches_explicit_column() {
        let a = dense();
        let aug = AugmentedOp::new(&a);
        assert_eq!(aug.ncols(), 3);
        assert_eq!(aug.nrows(), 3);
        let explicit = a.append_constant_col(1.0);
        let x = [1.0, -0.5, 2.0];
        assert_eq!(aug.apply(&x), LinearOperator::apply(&explicit, &x));
        let u = [0.5, 1.5, -1.0];
        assert_eq!(aug.apply_t(&u), LinearOperator::apply_t(&explicit, &u));
    }

    #[test]
    fn augmented_zero_bias_shortcut() {
        let a = dense();
        let aug = AugmentedOp::new(&a);
        let x = [1.0, 1.0, 0.0];
        assert_eq!(aug.apply(&x), LinearOperator::apply(&a, &[1.0, 1.0]));
    }

    #[test]
    fn centered_matches_explicit_centering() {
        let a = dense();
        let mu = srda_linalg::stats::col_means(&a);
        let centered_explicit = srda_linalg::stats::center_rows(&a, &mu);
        let op = CenteredOp::new(&a, mu);
        let x = [2.0, -1.0];
        let y1 = op.apply(&x);
        let y2 = LinearOperator::apply(&centered_explicit, &x);
        for (u, v) in y1.iter().zip(&y2) {
            assert!((u - v).abs() < 1e-12);
        }
        let u = [1.0, -2.0, 0.5];
        let t1 = op.apply_t(&u);
        let t2 = LinearOperator::apply_t(&centered_explicit, &u);
        for (x1, x2) in t1.iter().zip(&t2) {
            assert!((x1 - x2).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "mean length")]
    fn centered_checks_mu_length() {
        let a = dense();
        let _ = CenteredOp::new(&a, vec![0.0; 5]);
    }

    #[test]
    fn apply_into_matches_apply_for_all_operators() {
        let a = dense();
        let mu = srda_linalg::stats::col_means(&a);
        let mut b = CooBuilder::new(3, 2);
        for i in 0..3 {
            for j in 0..2 {
                b.push(i, j, a[(i, j)]).unwrap();
            }
        }
        let s = b.build();
        let centered = CenteredOp::new(&a, mu);
        let aug = AugmentedOp::new(&a);
        let exec_d = ExecDense::new(&a, Executor::threaded(3));
        let exec_s = ExecCsr::new(&s, Executor::threaded(3));

        fn check<A: LinearOperator + ?Sized>(op: &A, label: &str) {
            let x: Vec<f64> = (0..op.ncols()).map(|j| j as f64 * 0.5 - 1.0).collect();
            let u: Vec<f64> = (0..op.nrows()).map(|i| 1.5 - i as f64).collect();
            let mut y = vec![f64::NAN; op.nrows()];
            op.apply_into(&x, &mut y);
            assert_eq!(y, op.apply(&x), "{label} apply_into");
            let mut yt = vec![f64::NAN; op.ncols()];
            op.apply_t_into(&u, &mut yt);
            assert_eq!(yt, op.apply_t(&u), "{label} apply_t_into");
        }
        check(&a, "dense");
        check(&s, "sparse");
        check(&centered, "centered");
        check(&aug, "augmented");
        check(&exec_d, "exec-dense");
        check(&exec_s, "exec-sparse");
    }

    #[test]
    fn exec_operators_match_plain_operators() {
        let a = dense();
        let x = [0.5, -2.0];
        let u = [1.0, 2.0, 3.0];
        for &t in &[1usize, 2, 8] {
            let op = ExecDense::new(&a, Executor::threaded(t));
            assert_eq!(op.apply(&x), LinearOperator::apply(&a, &x));
            assert_eq!(op.apply_t(&u), LinearOperator::apply_t(&a, &u));
        }
    }

    #[test]
    fn operators_compose() {
        // centered then augmented: the usual dense-SRDA configuration
        let a = dense();
        let mu = srda_linalg::stats::col_means(&a);
        let centered = CenteredOp::new(&a, mu.clone());
        let both = AugmentedOp::new(&centered);
        assert_eq!(both.ncols(), 3);
        let explicit = srda_linalg::stats::center_rows(&a, &mu).append_constant_col(1.0);
        let x = [1.0, 2.0, 3.0];
        let y1 = both.apply(&x);
        let y2 = LinearOperator::apply(&explicit, &x);
        for (u, v) in y1.iter().zip(&y2) {
            assert!((u - v).abs() < 1e-12);
        }
    }
}
