//! Serializable solver checkpoints: the full running state of an LSQR or
//! CGLS solve, CRC-guarded on disk, written with the same atomic-rename
//! discipline as `srda_sparse::DiskCsr`.
//!
//! ## Why the whole bidiagonalization state
//!
//! LSQR's iterate `x_k` alone is *not* enough to resume a run: restarting
//! from `x_k` (a warm start) builds a fresh Krylov space and follows a
//! different — if eventually convergent — trajectory. The governor's
//! contract is stronger: a resumed run must be **bitwise identical** to an
//! uninterrupted one. That requires every quantity the next iteration
//! reads: the Golub-Kahan vectors `u`, `v`, the search direction `w`, the
//! iterate `x`, the scalar recurrences (`alpha`, `phibar`, `rhobar`,
//! `anorm_sq`), the stopping-rule state (`b_norm`, `best_res`,
//! `no_improve`) and the residual trace. All of it is captured here, and
//! nothing else is needed.
//!
//! ## File format (`SRDACKP1`)
//!
//! ```text
//! magic      8 bytes  b"SRDACKP1"
//! kind       1 byte   1 = LSQR, 2 = CGLS
//! payload    ...      little-endian fields (see encode())
//! crc32      4 bytes  CRC-32/IEEE of magic+kind+payload
//! ```
//!
//! Floats are stored via `to_le_bytes` of their raw bits, so a round trip
//! is exact — including negative zeros and the signs the LSQR rotations
//! propagate through `phibar`/`rhobar`.

use srda_sparse::crc32::Crc32;
use std::io::Write;
use std::path::Path;

/// Magic prefix of every checkpoint file.
pub const CHECKPOINT_MAGIC: &[u8; 8] = b"SRDACKP1";

const KIND_LSQR: u8 = 1;
const KIND_CGLS: u8 = 2;

/// What went wrong reading or writing a checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// Filesystem-level failure (message carries the OS error).
    Io(String),
    /// The bytes are not a valid checkpoint: bad magic, truncation, or a
    /// CRC mismatch.
    Corrupt(String),
    /// The checkpoint is valid but belongs to a different problem
    /// (dimensions, config, or right-hand side differ).
    Mismatch(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(m) => write!(f, "checkpoint I/O error: {m}"),
            CheckpointError::Corrupt(m) => write!(f, "corrupt checkpoint: {m}"),
            CheckpointError::Mismatch(m) => write!(f, "checkpoint mismatch: {m}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Identity of the problem a checkpoint belongs to. Resuming against a
/// different operator shape, solver config, or right-hand side would
/// silently produce garbage; the fingerprint turns that into a typed
/// [`CheckpointError::Mismatch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProblemFingerprint {
    /// Operator rows.
    pub nrows: u64,
    /// Operator columns.
    pub ncols: u64,
    /// Raw bits of the damping parameter (bit-exact comparison).
    pub damp_bits: u64,
    /// Raw bits of the tolerance.
    pub tol_bits: u64,
    /// The iteration cap the run was started with.
    pub max_iter: u64,
    /// CRC-32 of the right-hand side bytes (little-endian f64s).
    pub rhs_crc: u32,
}

impl ProblemFingerprint {
    /// Fingerprint for a problem of shape `nrows × ncols` with the given
    /// solver knobs and right-hand side.
    pub fn new(
        nrows: usize,
        ncols: usize,
        damp: f64,
        tol: f64,
        max_iter: usize,
        b: &[f64],
    ) -> Self {
        let mut crc = Crc32::new();
        for v in b {
            crc.update(&v.to_le_bytes());
        }
        ProblemFingerprint {
            nrows: nrows as u64,
            ncols: ncols as u64,
            damp_bits: damp.to_bits(),
            tol_bits: tol.to_bits(),
            max_iter: max_iter as u64,
            rhs_crc: crc.finish(),
        }
    }

    /// Check this fingerprint against the problem about to be resumed.
    pub fn ensure_matches(&self, current: &ProblemFingerprint) -> Result<(), CheckpointError> {
        if self == current {
            return Ok(());
        }
        let what = if (self.nrows, self.ncols) != (current.nrows, current.ncols) {
            format!(
                "operator shape {}×{} differs from checkpointed {}×{}",
                current.nrows, current.ncols, self.nrows, self.ncols
            )
        } else if self.rhs_crc != current.rhs_crc {
            "right-hand side differs from the checkpointed run".to_string()
        } else {
            "solver configuration (damp/tol/max_iter) differs from the checkpointed run".to_string()
        };
        Err(CheckpointError::Mismatch(what))
    }
}

/// The complete mid-run state of an LSQR solve (see the module docs for
/// why every field is required).
#[derive(Debug, Clone, PartialEq)]
pub struct LsqrCheckpoint {
    /// Which problem this state belongs to.
    pub fingerprint: ProblemFingerprint,
    /// Iterations completed when the snapshot was taken.
    pub iteration: usize,
    /// Current iterate.
    pub x: Vec<f64>,
    /// Search direction.
    pub w: Vec<f64>,
    /// Left Golub-Kahan vector (length `nrows`).
    pub u: Vec<f64>,
    /// Right Golub-Kahan vector (length `ncols`).
    pub v: Vec<f64>,
    /// Bidiagonalization scalar α.
    pub alpha: f64,
    /// Rotated residual estimate φ̄ (sign-carrying).
    pub phibar: f64,
    /// Rotated diagonal ρ̄ (sign-carrying).
    pub rhobar: f64,
    /// Running ‖A‖² estimate for the second stopping rule.
    pub anorm_sq: f64,
    /// ‖b‖ at the start of the run.
    pub b_norm: f64,
    /// Best damped residual seen (stagnation detector).
    pub best_res: f64,
    /// Consecutive no-improvement iterations (stagnation detector).
    pub no_improve: usize,
    /// Damped-residual trace up to `iteration`.
    pub residual_trace: Vec<f64>,
}

/// The complete mid-run state of a CGLS solve.
#[derive(Debug, Clone, PartialEq)]
pub struct CglsCheckpoint {
    /// Which problem this state belongs to (damp_bits carries α's bits).
    pub fingerprint: ProblemFingerprint,
    /// Iterations completed when the snapshot was taken.
    pub iteration: usize,
    /// Current iterate.
    pub x: Vec<f64>,
    /// Current residual `b − A·x` (length `nrows`).
    pub r: Vec<f64>,
    /// Search direction (length `ncols`).
    pub p: Vec<f64>,
    /// Current `‖s‖²` recurrence value.
    pub gamma: f64,
    /// Initial `‖s‖²` (the relative stopping reference).
    pub gamma0: f64,
}

// ---------------------------------------------------------------------------
// binary encoding
// ---------------------------------------------------------------------------

struct Enc(Vec<u8>);

impl Enc {
    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn vec(&mut self, v: &[f64]) {
        self.u64(v.len() as u64);
        for x in v {
            self.f64(*x);
        }
    }
}

struct Dec<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        if self.pos + n > self.bytes.len() {
            return Err(CheckpointError::Corrupt(format!(
                "truncated: wanted {} bytes at offset {}, file has {}",
                n,
                self.pos,
                self.bytes.len()
            )));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u64(&mut self) -> Result<u64, CheckpointError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> Result<u32, CheckpointError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn f64(&mut self) -> Result<f64, CheckpointError> {
        Ok(f64::from_bits(self.u64()?))
    }
    fn usize(&mut self) -> Result<usize, CheckpointError> {
        let v = self.u64()?;
        usize::try_from(v)
            .map_err(|_| CheckpointError::Corrupt(format!("length {v} exceeds usize")))
    }
    fn vec(&mut self) -> Result<Vec<f64>, CheckpointError> {
        let n = self.usize()?;
        // guard against absurd lengths from corrupt (but CRC-colliding)
        // bytes before allocating
        if n.saturating_mul(8) > self.bytes.len() {
            return Err(CheckpointError::Corrupt(format!(
                "vector length {n} larger than the file itself"
            )));
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.f64()?);
        }
        Ok(out)
    }
}

fn enc_fingerprint(e: &mut Enc, fp: &ProblemFingerprint) {
    e.u64(fp.nrows);
    e.u64(fp.ncols);
    e.u64(fp.damp_bits);
    e.u64(fp.tol_bits);
    e.u64(fp.max_iter);
    e.u32(fp.rhs_crc);
}

fn dec_fingerprint(d: &mut Dec) -> Result<ProblemFingerprint, CheckpointError> {
    Ok(ProblemFingerprint {
        nrows: d.u64()?,
        ncols: d.u64()?,
        damp_bits: d.u64()?,
        tol_bits: d.u64()?,
        max_iter: d.u64()?,
        rhs_crc: d.u32()?,
    })
}

impl LsqrCheckpoint {
    /// Serialize to the `SRDACKP1` byte format (CRC appended).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut e = Enc(Vec::new());
        e.0.extend_from_slice(CHECKPOINT_MAGIC);
        e.0.push(KIND_LSQR);
        enc_fingerprint(&mut e, &self.fingerprint);
        e.u64(self.iteration as u64);
        e.vec(&self.x);
        e.vec(&self.w);
        e.vec(&self.u);
        e.vec(&self.v);
        e.f64(self.alpha);
        e.f64(self.phibar);
        e.f64(self.rhobar);
        e.f64(self.anorm_sq);
        e.f64(self.b_norm);
        e.f64(self.best_res);
        e.u64(self.no_improve as u64);
        e.vec(&self.residual_trace);
        seal(e)
    }

    /// Parse bytes produced by [`LsqrCheckpoint::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CheckpointError> {
        let mut d = open(bytes, KIND_LSQR, "LSQR")?;
        let ckpt = LsqrCheckpoint {
            fingerprint: dec_fingerprint(&mut d)?,
            iteration: d.usize()?,
            x: d.vec()?,
            w: d.vec()?,
            u: d.vec()?,
            v: d.vec()?,
            alpha: d.f64()?,
            phibar: d.f64()?,
            rhobar: d.f64()?,
            anorm_sq: d.f64()?,
            b_norm: d.f64()?,
            best_res: d.f64()?,
            no_improve: d.usize()?,
            residual_trace: d.vec()?,
        };
        d.done()?;
        Ok(ckpt)
    }

    /// Write atomically to `path` (tmp file + rename, like `DiskCsr`).
    pub fn write_atomic(&self, path: &Path) -> Result<(), CheckpointError> {
        write_atomic(path, &self.to_bytes())
    }

    /// Read and validate a checkpoint file.
    pub fn read(path: &Path) -> Result<Self, CheckpointError> {
        let bytes = std::fs::read(path)
            .map_err(|e| CheckpointError::Io(format!("{}: {e}", path.display())))?;
        Self::from_bytes(&bytes)
    }
}

impl CglsCheckpoint {
    /// Serialize to the `SRDACKP1` byte format (CRC appended).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut e = Enc(Vec::new());
        e.0.extend_from_slice(CHECKPOINT_MAGIC);
        e.0.push(KIND_CGLS);
        enc_fingerprint(&mut e, &self.fingerprint);
        e.u64(self.iteration as u64);
        e.vec(&self.x);
        e.vec(&self.r);
        e.vec(&self.p);
        e.f64(self.gamma);
        e.f64(self.gamma0);
        seal(e)
    }

    /// Parse bytes produced by [`CglsCheckpoint::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CheckpointError> {
        let mut d = open(bytes, KIND_CGLS, "CGLS")?;
        let ckpt = CglsCheckpoint {
            fingerprint: dec_fingerprint(&mut d)?,
            iteration: d.usize()?,
            x: d.vec()?,
            r: d.vec()?,
            p: d.vec()?,
            gamma: d.f64()?,
            gamma0: d.f64()?,
        };
        d.done()?;
        Ok(ckpt)
    }

    /// Write atomically to `path` (tmp file + rename, like `DiskCsr`).
    pub fn write_atomic(&self, path: &Path) -> Result<(), CheckpointError> {
        write_atomic(path, &self.to_bytes())
    }

    /// Read and validate a checkpoint file.
    pub fn read(path: &Path) -> Result<Self, CheckpointError> {
        let bytes = std::fs::read(path)
            .map_err(|e| CheckpointError::Io(format!("{}: {e}", path.display())))?;
        Self::from_bytes(&bytes)
    }
}

impl Dec<'_> {
    fn done(&self) -> Result<(), CheckpointError> {
        // `bytes` excludes the trailing CRC, so a clean parse consumes it
        // exactly; leftovers mean the writer and reader disagree
        if self.pos != self.bytes.len() {
            return Err(CheckpointError::Corrupt(format!(
                "{} trailing bytes after payload",
                self.bytes.len() - self.pos
            )));
        }
        Ok(())
    }
}

/// Append the CRC of everything encoded so far and return the bytes.
fn seal(e: Enc) -> Vec<u8> {
    let mut bytes = e.0;
    let mut crc = Crc32::new();
    crc.update(&bytes);
    bytes.extend_from_slice(&crc.finish().to_le_bytes());
    bytes
}

/// Validate magic, kind, and CRC; return a decoder over the payload.
fn open<'a>(bytes: &'a [u8], kind: u8, kind_name: &str) -> Result<Dec<'a>, CheckpointError> {
    let header = CHECKPOINT_MAGIC.len() + 1;
    if bytes.len() < header + 4 {
        return Err(CheckpointError::Corrupt(format!(
            "file too short ({} bytes) to be a checkpoint",
            bytes.len()
        )));
    }
    if &bytes[..CHECKPOINT_MAGIC.len()] != CHECKPOINT_MAGIC {
        return Err(CheckpointError::Corrupt("bad magic".to_string()));
    }
    let (payload, crc_bytes) = bytes.split_at(bytes.len() - 4);
    let stored = u32::from_le_bytes(crc_bytes.try_into().unwrap());
    let mut crc = Crc32::new();
    crc.update(payload);
    let computed = crc.finish();
    if stored != computed {
        return Err(CheckpointError::Corrupt(format!(
            "CRC mismatch: stored {stored:#010x}, computed {computed:#010x}"
        )));
    }
    let got_kind = bytes[CHECKPOINT_MAGIC.len()];
    if got_kind != kind {
        return Err(CheckpointError::Mismatch(format!(
            "checkpoint kind {got_kind} is not a {kind_name} checkpoint"
        )));
    }
    Ok(Dec {
        bytes: &payload[header..],
        pos: 0,
    })
}

/// Write `bytes` to `path` atomically: a uniquely-named tmp file in the
/// same directory, fsync, then rename over the target. Readers never see
/// a partial checkpoint.
fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), CheckpointError> {
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    let file_name = path
        .file_name()
        .ok_or_else(|| CheckpointError::Io(format!("{}: not a file path", path.display())))?;
    let tmp_name = format!(
        ".{}.tmp-{}",
        file_name.to_string_lossy(),
        std::process::id()
    );
    let tmp = match dir {
        Some(d) => d.join(&tmp_name),
        None => std::path::PathBuf::from(&tmp_name),
    };
    let io_err = |e: std::io::Error| CheckpointError::Io(format!("{}: {e}", tmp.display()));
    let result = (|| {
        let mut f = std::fs::File::create(&tmp).map_err(io_err)?;
        f.write_all(bytes).map_err(io_err)?;
        f.sync_all().map_err(io_err)?;
        drop(f);
        std::fs::rename(&tmp, path)
            .map_err(|e| CheckpointError::Io(format!("{}: {e}", path.display())))
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_fp() -> ProblemFingerprint {
        ProblemFingerprint::new(
            7,
            4,
            0.5f64.sqrt(),
            1e-10,
            20,
            &[1.0, -2.5, 0.0, 3.25, -0.0, 9.0, 1e-300],
        )
    }

    fn sample_lsqr() -> LsqrCheckpoint {
        LsqrCheckpoint {
            fingerprint: sample_fp(),
            iteration: 3,
            x: vec![1.5, -2.25, 0.0, -0.0],
            w: vec![0.125, 3.0, -1.0, 2.0],
            u: vec![0.1; 7],
            v: vec![-0.5, 0.25, 0.75, 1.0],
            alpha: 1.75,
            phibar: -0.001953125,
            rhobar: -2.5,
            anorm_sq: 42.0,
            b_norm: 9.5,
            best_res: 0.25,
            no_improve: 2,
            residual_trace: vec![3.0, 1.0, 0.25],
        }
    }

    #[test]
    fn lsqr_roundtrip_is_exact() {
        let ckpt = sample_lsqr();
        let back = LsqrCheckpoint::from_bytes(&ckpt.to_bytes()).unwrap();
        assert_eq!(back, ckpt);
        // sign of zero survives (PartialEq on f64 can't see it)
        assert_eq!(back.x[3].to_bits(), (-0.0f64).to_bits());
    }

    #[test]
    fn cgls_roundtrip_is_exact() {
        let ckpt = CglsCheckpoint {
            fingerprint: sample_fp(),
            iteration: 5,
            x: vec![1.0, 2.0, 3.0, 4.0],
            r: vec![0.5; 7],
            p: vec![-1.0, 0.0, 1.0, 2.0],
            gamma: 0.0625,
            gamma0: 17.0,
        };
        let back = CglsCheckpoint::from_bytes(&ckpt.to_bytes()).unwrap();
        assert_eq!(back, ckpt);
    }

    #[test]
    fn bit_flip_is_detected() {
        let mut bytes = sample_lsqr().to_bytes();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        match LsqrCheckpoint::from_bytes(&bytes) {
            Err(CheckpointError::Corrupt(_)) => {}
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn truncation_is_detected() {
        let bytes = sample_lsqr().to_bytes();
        for cut in [0, 5, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                LsqrCheckpoint::from_bytes(&bytes[..cut]).is_err(),
                "truncation at {cut} undetected"
            );
        }
    }

    #[test]
    fn wrong_kind_is_mismatch() {
        let bytes = sample_lsqr().to_bytes();
        match CglsCheckpoint::from_bytes(&bytes) {
            Err(CheckpointError::Mismatch(_)) => {}
            other => panic!("expected Mismatch, got {other:?}"),
        }
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = sample_lsqr().to_bytes();
        bytes[0] = b'X';
        assert!(matches!(
            LsqrCheckpoint::from_bytes(&bytes),
            Err(CheckpointError::Corrupt(_))
        ));
    }

    #[test]
    fn fingerprint_mismatch_reports_what_differs() {
        let fp = sample_fp();
        let mut other = fp;
        other.nrows = 99;
        let err = fp.ensure_matches(&other).unwrap_err();
        assert!(matches!(&err, CheckpointError::Mismatch(m) if m.contains("shape")));
        let mut other = fp;
        other.rhs_crc ^= 1;
        let err = fp.ensure_matches(&other).unwrap_err();
        assert!(matches!(&err, CheckpointError::Mismatch(m) if m.contains("right-hand side")));
        let mut other = fp;
        other.damp_bits ^= 1;
        let err = fp.ensure_matches(&other).unwrap_err();
        assert!(matches!(&err, CheckpointError::Mismatch(m) if m.contains("configuration")));
        assert!(fp.ensure_matches(&fp).is_ok());
    }

    #[test]
    fn atomic_write_then_read() {
        let dir = std::env::temp_dir().join(format!("srda-ckpt-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("solve.ckpt");
        let ckpt = sample_lsqr();
        ckpt.write_atomic(&path).unwrap();
        let back = LsqrCheckpoint::read(&path).unwrap();
        assert_eq!(back, ckpt);
        // overwrite in place (the rename path, not create)
        let mut ckpt2 = ckpt.clone();
        ckpt2.iteration = 9;
        ckpt2.write_atomic(&path).unwrap();
        assert_eq!(LsqrCheckpoint::read(&path).unwrap().iteration, 9);
        // no tmp litter
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains("tmp"))
            .collect();
        assert!(leftovers.is_empty(), "tmp files left behind: {leftovers:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn read_missing_file_is_io_error() {
        let path = Path::new("/nonexistent-dir-srda/x.ckpt");
        assert!(matches!(
            LsqrCheckpoint::read(path),
            Err(CheckpointError::Io(_))
        ));
    }
}
