//! Direct (factorization-based) ridge regression.
//!
//! Solves `min ‖X·w − y‖² + α‖w‖²` for one or many right-hand sides:
//!
//! * **primal** — Cholesky of `XᵀX + αI` (`n × n`); the textbook normal
//!   equations of the paper's Eqn 20. Best when `n ≤ m`.
//! * **dual** — Cholesky of `XXᵀ + αI` (`m × m`) and `w = Xᵀu` — the
//!   paper's Eqn 21 route for `n > m`. For `α > 0` the two are *exactly*
//!   equivalent via the push-through identity
//!   `(XᵀX + αI)⁻¹Xᵀ = Xᵀ(XXᵀ + αI)⁻¹`.
//! * **auto** — picks whichever Gram matrix is smaller, the choice the
//!   paper's cost analysis (§III.C.1) prescribes.
//!
//! The key amortization: the factorization is done **once** and reused for
//! all `c − 1` SRDA responses, so the per-response cost is only the
//! triangular solves.

use crate::certificate::{certify_spd_solve, SolveCertificate};
use srda_linalg::ops::{gram_exec, gram_t_exec, matmul_transa_exec};
use srda_linalg::{Cholesky, Executor, Mat, Result};

/// Which normal-equation form a [`RidgeSolver`] factored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RidgeForm {
    /// `XᵀX + αI` (`n × n`).
    Primal,
    /// `XXᵀ + αI` (`m × m`).
    Dual,
}

/// A factored ridge problem ready to solve for many right-hand sides.
#[derive(Debug, Clone)]
pub struct RidgeSolver {
    chol: Cholesky,
    /// The shifted Gram matrix that was factored (`XᵀX + αI` or
    /// `XXᵀ + αI`), retained so solutions can be certified and refined a
    /// posteriori against the exact system that was solved.
    gram: Mat,
    form: RidgeForm,
    alpha: f64,
    exec: Executor,
}

impl RidgeSolver {
    /// Factor the primal normal equations `XᵀX + αI`.
    pub fn primal(x: &Mat, alpha: f64) -> Result<Self> {
        Self::primal_exec(x, alpha, Executor::serial())
    }

    /// [`RidgeSolver::primal`] with an explicit execution backend; the
    /// Gram build and every later [`RidgeSolver::solve`] product run on
    /// `exec`.
    pub fn primal_exec(x: &Mat, alpha: f64, exec: Executor) -> Result<Self> {
        let mut g = gram_exec(x, &exec);
        g.add_to_diag(alpha);
        Ok(RidgeSolver {
            chol: Cholesky::factor(&g)?,
            gram: g,
            form: RidgeForm::Primal,
            alpha,
            exec,
        })
    }

    /// Factor the dual normal equations `XXᵀ + αI` (paper Eqn 21).
    pub fn dual(x: &Mat, alpha: f64) -> Result<Self> {
        Self::dual_exec(x, alpha, Executor::serial())
    }

    /// [`RidgeSolver::dual`] with an explicit execution backend.
    pub fn dual_exec(x: &Mat, alpha: f64, exec: Executor) -> Result<Self> {
        let mut k = gram_t_exec(x, &exec);
        k.add_to_diag(alpha);
        Ok(RidgeSolver {
            chol: Cholesky::factor(&k)?,
            gram: k,
            form: RidgeForm::Dual,
            alpha,
            exec,
        })
    }

    /// Factor whichever form is smaller (`n ≤ m` → primal, else dual).
    pub fn auto(x: &Mat, alpha: f64) -> Result<Self> {
        Self::auto_exec(x, alpha, Executor::serial())
    }

    /// [`RidgeSolver::auto`] with an explicit execution backend.
    pub fn auto_exec(x: &Mat, alpha: f64, exec: Executor) -> Result<Self> {
        if x.ncols() <= x.nrows() {
            Self::primal_exec(x, alpha, exec)
        } else {
            Self::dual_exec(x, alpha, exec)
        }
    }

    /// Which form was factored.
    pub fn form(&self) -> RidgeForm {
        self.form
    }

    /// The ridge parameter this solver was factored with.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Hager 1-norm condition estimate of the factored Gram matrix
    /// (`‖G‖₁·‖G⁻¹‖₁` with the inverse norm estimated by a few solves
    /// against the existing factor). Reliable enough to gate solution
    /// certification; see [`Cholesky::condition_estimate`].
    pub fn condition_estimate(&self) -> f64 {
        self.chol.condition_estimate()
    }

    /// The O(n) diagonal-ratio condition *lower bound* — a quick screen
    /// that can read arbitrarily low on matrices whose ill-conditioning
    /// lives off the diagonal; see [`Cholesky::condition_lower_bound`].
    pub fn condition_lower_bound(&self) -> f64 {
        self.chol.condition_lower_bound()
    }

    /// The shifted Gram matrix this solver factored.
    pub fn gram(&self) -> &Mat {
        &self.gram
    }

    /// The underlying Cholesky factor.
    pub fn cholesky(&self) -> &Cholesky {
        &self.chol
    }

    /// Solve for a matrix of responses `Y` (`m × k`, one column per
    /// right-hand side), returning the weights `W` (`n × k`).
    ///
    /// `x` must be the same matrix passed at factorization time (the
    /// factorization stores only the Gram matrix, so the data is needed
    /// again to form `XᵀY` / back-project the dual solution).
    pub fn solve(&self, x: &Mat, y: &Mat) -> Result<Mat> {
        match self.form {
            RidgeForm::Primal => {
                // W = (XᵀX + αI)⁻¹ Xᵀ Y
                let xty = matmul_transa_exec(x, y, &self.exec)?;
                self.chol.solve_mat(&xty)
            }
            RidgeForm::Dual => {
                // U = (XXᵀ + αI)⁻¹ Y ; W = Xᵀ U
                let u = self.chol.solve_mat(y)?;
                matmul_transa_exec(x, &u, &self.exec)
            }
        }
    }

    /// Solve for a single response vector.
    pub fn solve_vec(&self, x: &Mat, y: &[f64]) -> Result<Vec<f64>> {
        let ym = Mat::from_vec(y.len(), 1, y.to_vec())?;
        let w = self.solve(x, &ym)?;
        Ok(w.col(0))
    }

    /// [`RidgeSolver::solve`] plus a [`SolveCertificate`] per response
    /// column, with iterative refinement applied in place whenever a
    /// column's forward-error bound fails
    /// ([`crate::certificate::CERTIFY_BOUND`]).
    ///
    /// When every column certifies on the first try (the overwhelmingly
    /// common case), the returned weights are bitwise identical to
    /// [`RidgeSolver::solve`]. Certification happens on the factored
    /// system — `XᵀX + αI` in the primal, `XXᵀ + αI` in the dual (the
    /// dual certifies `u` before back-projecting `W = Xᵀu`).
    pub fn solve_certified(
        &self,
        x: &Mat,
        y: &Mat,
        max_refine_steps: usize,
    ) -> Result<(Mat, Vec<SolveCertificate>)> {
        // One Hager estimate per factorization, shared by all columns.
        let cond = self.chol.condition_estimate();
        match self.form {
            RidgeForm::Primal => {
                let xty = matmul_transa_exec(x, y, &self.exec)?;
                let mut w = self.chol.solve_mat(&xty)?;
                let mut certs = Vec::with_capacity(w.ncols());
                for j in 0..w.ncols() {
                    let mut col = w.col(j);
                    let rhs = xty.col(j);
                    let cert = certify_spd_solve(
                        &self.chol,
                        &self.gram,
                        cond,
                        &rhs,
                        &mut col,
                        max_refine_steps,
                    )?;
                    if cert.refinement_steps > 0 {
                        w.set_col(j, &col);
                    }
                    certs.push(cert);
                }
                Ok((w, certs))
            }
            RidgeForm::Dual => {
                let mut u = self.chol.solve_mat(y)?;
                let mut certs = Vec::with_capacity(u.ncols());
                for j in 0..u.ncols() {
                    let mut col = u.col(j);
                    let rhs = y.col(j);
                    let cert = certify_spd_solve(
                        &self.chol,
                        &self.gram,
                        cond,
                        &rhs,
                        &mut col,
                        max_refine_steps,
                    )?;
                    if cert.refinement_steps > 0 {
                        u.set_col(j, &col);
                    }
                    certs.push(cert);
                }
                let w = matmul_transa_exec(x, &u, &self.exec)?;
                Ok((w, certs))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srda_linalg::ops::{gram, matvec};

    fn noise_mat(m: usize, n: usize) -> Mat {
        Mat::from_fn(m, n, |i, j| {
            let x = (i as f64 * 91.17 + j as f64 * 13.73).sin() * 43758.5453;
            x - x.floor() - 0.5
        })
    }

    #[test]
    fn primal_solves_normal_equations() {
        let x = noise_mat(12, 5);
        let y: Vec<f64> = (0..12).map(|i| (i as f64 * 0.8).sin()).collect();
        let alpha = 0.4;
        let solver = RidgeSolver::primal(&x, alpha).unwrap();
        let w = solver.solve_vec(&x, &y).unwrap();
        // verify (XᵀX + αI)w = Xᵀy
        let mut g = gram(&x);
        g.add_to_diag(alpha);
        let lhs = matvec(&g, &w).unwrap();
        let rhs = srda_linalg::ops::matvec_t(&x, &y).unwrap();
        for (a, b) in lhs.iter().zip(&rhs) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn primal_and_dual_agree() {
        // the push-through identity must hold exactly for α > 0
        for (m, n) in [(12, 5), (5, 12), (8, 8)] {
            let x = noise_mat(m, n);
            let y = Mat::from_fn(m, 2, |i, j| ((i + j) as f64 * 0.37).cos());
            let alpha = 0.25;
            let wp = RidgeSolver::primal(&x, alpha)
                .unwrap()
                .solve(&x, &y)
                .unwrap();
            let wd = RidgeSolver::dual(&x, alpha).unwrap().solve(&x, &y).unwrap();
            assert!(
                wp.approx_eq(&wd, 1e-8),
                "primal/dual mismatch for {m}x{n}: {}",
                wp.sub(&wd).unwrap().max_abs()
            );
        }
    }

    #[test]
    fn auto_picks_smaller_side() {
        let tall = noise_mat(20, 5);
        assert_eq!(
            RidgeSolver::auto(&tall, 1.0).unwrap().form(),
            RidgeForm::Primal
        );
        let wide = noise_mat(5, 20);
        assert_eq!(
            RidgeSolver::auto(&wide, 1.0).unwrap().form(),
            RidgeForm::Dual
        );
    }

    #[test]
    fn multi_rhs_matches_single_rhs() {
        let x = noise_mat(10, 6);
        let y = Mat::from_fn(10, 3, |i, j| (i as f64 - j as f64) * 0.2);
        let solver = RidgeSolver::auto(&x, 0.5).unwrap();
        let w = solver.solve(&x, &y).unwrap();
        for j in 0..3 {
            let wj = solver.solve_vec(&x, &y.col(j)).unwrap();
            for (a, b) in w.col(j).iter().zip(&wj) {
                assert!((a - b).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn certified_solve_matches_plain_solve_on_clean_problems() {
        use crate::certificate::CertStatus;
        for (m, n) in [(12, 5), (5, 12)] {
            let x = noise_mat(m, n);
            let y = Mat::from_fn(m, 2, |i, j| ((i + j) as f64 * 0.37).cos());
            let solver = RidgeSolver::auto(&x, 0.25).unwrap();
            let w_plain = solver.solve(&x, &y).unwrap();
            let (w_cert, certs) = solver.solve_certified(&x, &y, 3).unwrap();
            assert_eq!(certs.len(), 2);
            for c in &certs {
                assert_eq!(c.certified, CertStatus::Certified);
                assert_eq!(c.refinement_steps, 0);
                assert!(c.cond_estimate >= 1.0);
            }
            // certified-clean ⇒ bitwise identical weights
            for i in 0..w_plain.nrows() {
                for j in 0..w_plain.ncols() {
                    assert_eq!(w_cert[(i, j)].to_bits(), w_plain[(i, j)].to_bits());
                }
            }
        }
    }

    #[test]
    fn alpha_zero_requires_full_rank_primal() {
        // full column rank: OK with α = 0
        let x = noise_mat(12, 4);
        assert!(RidgeSolver::primal(&x, 0.0).is_ok());
        // rank-deficient (an all-zero feature): fails without regularization
        let col = noise_mat(12, 1);
        let x_bad = col.hcat(&Mat::zeros(12, 1)).unwrap();
        assert!(RidgeSolver::primal(&x_bad, 0.0).is_err());
        // ...but succeeds with it
        assert!(RidgeSolver::primal(&x_bad, 1e-6).is_ok());
    }

    #[test]
    fn larger_alpha_shrinks_solution() {
        let x = noise_mat(15, 6);
        let y: Vec<f64> = (0..15).map(|i| (i as f64 * 0.29).sin()).collect();
        let norm = |alpha: f64| {
            let w = RidgeSolver::primal(&x, alpha)
                .unwrap()
                .solve_vec(&x, &y)
                .unwrap();
            srda_linalg::vector::norm2(&w)
        };
        let n_small = norm(1e-3);
        let n_mid = norm(1.0);
        let n_big = norm(100.0);
        assert!(
            n_small > n_mid && n_mid > n_big,
            "{n_small} {n_mid} {n_big}"
        );
    }

    #[test]
    fn dual_handles_high_dimensional_data() {
        // n ≫ m: the regime where the paper's Eqn 21 saves the day
        let x = noise_mat(6, 200);
        let y: Vec<f64> = (0..6).map(|i| i as f64).collect();
        let solver = RidgeSolver::dual(&x, 0.1).unwrap();
        let w = solver.solve_vec(&x, &y).unwrap();
        assert_eq!(w.len(), 200);
        // residual should be small: 6 equations, 200 unknowns, mild ridge
        let fit = matvec(&x, &w).unwrap();
        for (a, b) in fit.iter().zip(&y) {
            assert!((a - b).abs() < 0.3, "{a} vs {b}");
        }
    }
}
