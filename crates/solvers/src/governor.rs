//! Run governance: wall-clock budgets, iteration budgets, and cooperative
//! cancellation for iterative fits.
//!
//! SRDA's training loop is `c − 1` LSQR solves of up to `max_iter`
//! iterations each — exactly the kind of long-running, interruptible work
//! that production deployments need to bound. A [`RunGovernor`] is a cheap
//! shareable handle (an `Arc` over two atomics and a start timestamp) that
//! every iterative hot loop consults once per iteration via
//! [`RunGovernor::tick`]:
//!
//! * **Deadline / wall budget** — [`RunBudget::deadline`] or
//!   [`RunBudget::max_wall`] bound the total wall-clock time of the run.
//! * **Iteration budget** — [`RunBudget::iter_cap`] bounds the *total*
//!   iterations across every solve sharing the governor (all `c − 1`
//!   responses of a fit draw from one pool), which makes interruption
//!   deterministic in tests and reproducible in CI.
//! * **Cancellation** — a [`CancelToken`] can be cloned into another
//!   thread (e.g. a signal handler) and flipped to stop the run at the
//!   next iteration boundary.
//!
//! Hitting any of these is **not an error**: solvers stop with
//! `StopReason::Interrupted` carrying the [`Interrupt`] reason and their
//! last consistent state, so callers can checkpoint and resume (see
//! [`crate::checkpoint`]).

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a governed run was interrupted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Interrupt {
    /// The shared [`CancelToken`] was flipped.
    Cancelled,
    /// The wall-clock deadline ([`RunBudget::deadline`] or
    /// [`RunBudget::max_wall`]) passed.
    DeadlineExceeded,
    /// The total iteration budget ([`RunBudget::iter_cap`]) was spent.
    IterBudgetExhausted,
}

impl std::fmt::Display for Interrupt {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Interrupt::Cancelled => write!(f, "cancelled"),
            Interrupt::DeadlineExceeded => write!(f, "wall-clock budget exceeded"),
            Interrupt::IterBudgetExhausted => write!(f, "iteration budget exhausted"),
        }
    }
}

/// A shareable cancellation flag (an `AtomicBool` behind an `Arc`).
///
/// Clone it freely; all clones observe the same flag. Flipping it stops
/// every governed loop holding a [`RunGovernor`] built from this token at
/// its next iteration boundary.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Request cancellation. Idempotent; takes effect at the next
    /// iteration boundary of every governed loop sharing this token.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Has cancellation been requested?
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// Resource limits for a governed run. The default is unbounded.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunBudget {
    /// Absolute wall-clock deadline.
    pub deadline: Option<Instant>,
    /// Relative wall-clock budget, measured from [`RunGovernor`]
    /// construction (combined with `deadline` by taking the earlier).
    pub max_wall: Option<Duration>,
    /// Total iteration budget across every solve sharing the governor.
    pub iter_cap: Option<usize>,
}

impl RunBudget {
    /// An unbounded budget (never interrupts).
    pub fn unbounded() -> Self {
        Self::default()
    }

    /// Budget bounded only by wall-clock time from now.
    pub fn with_max_wall(wall: Duration) -> Self {
        RunBudget {
            max_wall: Some(wall),
            ..Self::default()
        }
    }

    /// Budget bounded only by a total iteration count.
    pub fn with_iter_cap(cap: usize) -> Self {
        RunBudget {
            iter_cap: Some(cap),
            ..Self::default()
        }
    }
}

#[derive(Debug)]
struct GovernorInner {
    /// Effective absolute deadline (min of `deadline` and
    /// `start + max_wall`), resolved at construction.
    deadline: Option<Instant>,
    iter_cap: Option<usize>,
    cancel: CancelToken,
    /// Iterations consumed so far across every solve sharing this
    /// governor.
    iters: AtomicUsize,
    start: Instant,
}

/// A cheap shareable run-governance handle (see the module docs).
///
/// Cloning shares the underlying state: the iteration pool, deadline, and
/// cancel flag are common to all clones, so a governor threaded through a
/// fit config governs the whole fit no matter how many solves it spawns.
#[derive(Debug, Clone)]
pub struct RunGovernor(Arc<GovernorInner>);

impl Default for RunGovernor {
    fn default() -> Self {
        RunGovernor::unbounded()
    }
}

impl RunGovernor {
    /// Build a governor enforcing `budget`, cancellable via `cancel`.
    /// The wall clock starts now.
    pub fn new(budget: RunBudget, cancel: CancelToken) -> Self {
        let start = Instant::now();
        let wall_deadline = budget.max_wall.map(|w| start + w);
        let deadline = match (budget.deadline, wall_deadline) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        RunGovernor(Arc::new(GovernorInner {
            deadline,
            iter_cap: budget.iter_cap,
            cancel,
            iters: AtomicUsize::new(0),
            start,
        }))
    }

    /// A governor that never interrupts (the default for every fit
    /// config). `tick` still counts iterations, so diagnostics stay
    /// uniform.
    pub fn unbounded() -> Self {
        RunGovernor::new(RunBudget::unbounded(), CancelToken::new())
    }

    /// Convenience: enforce only `budget` with a private cancel token.
    pub fn with_budget(budget: RunBudget) -> Self {
        RunGovernor::new(budget, CancelToken::new())
    }

    /// The cancel token shared by this governor (clone it into whatever
    /// needs to stop the run).
    pub fn cancel_token(&self) -> CancelToken {
        self.0.cancel.clone()
    }

    /// Iterations consumed so far across every governed solve.
    pub fn iterations_consumed(&self) -> usize {
        self.0.iters.load(Ordering::Relaxed)
    }

    /// Wall-clock time elapsed since the governor was built.
    pub fn elapsed(&self) -> Duration {
        self.0.start.elapsed()
    }

    /// Check budgets *without* consuming an iteration — for coarse-grained
    /// sites (stage boundaries of direct solvers, the factor ladder, the
    /// per-response loop) where no iteration is about to run.
    pub fn probe(&self) -> Option<Interrupt> {
        if self.0.cancel.is_cancelled() {
            return Some(Interrupt::Cancelled);
        }
        if let Some(d) = self.0.deadline {
            if Instant::now() >= d {
                return Some(Interrupt::DeadlineExceeded);
            }
        }
        if let Some(cap) = self.0.iter_cap {
            if self.0.iters.load(Ordering::Relaxed) >= cap {
                return Some(Interrupt::IterBudgetExhausted);
            }
        }
        None
    }

    /// Consume one iteration from the shared pool and check every budget.
    /// Called at the **top** of each solver iteration; `Some(reason)`
    /// means the iteration must not run and the solver should stop with
    /// its current (consistent) state.
    pub fn tick(&self) -> Option<Interrupt> {
        if self.0.cancel.is_cancelled() {
            return Some(Interrupt::Cancelled);
        }
        if let Some(d) = self.0.deadline {
            if Instant::now() >= d {
                return Some(Interrupt::DeadlineExceeded);
            }
        }
        if let Some(cap) = self.0.iter_cap {
            // fetch_add so concurrent response solves draw from one pool;
            // the slot is only "kept" when it was still under the cap
            if self.0.iters.fetch_add(1, Ordering::Relaxed) >= cap {
                return Some(Interrupt::IterBudgetExhausted);
            }
        } else {
            self.0.iters.fetch_add(1, Ordering::Relaxed);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_never_interrupts() {
        let g = RunGovernor::unbounded();
        for _ in 0..1000 {
            assert_eq!(g.tick(), None);
        }
        assert_eq!(g.probe(), None);
        assert_eq!(g.iterations_consumed(), 1000);
    }

    #[test]
    fn iter_cap_interrupts_after_exactly_cap_ticks() {
        let g = RunGovernor::with_budget(RunBudget::with_iter_cap(3));
        assert_eq!(g.tick(), None);
        assert_eq!(g.tick(), None);
        assert_eq!(g.tick(), None);
        assert_eq!(g.tick(), Some(Interrupt::IterBudgetExhausted));
        assert_eq!(g.probe(), Some(Interrupt::IterBudgetExhausted));
    }

    #[test]
    fn clones_share_the_iteration_pool() {
        let g = RunGovernor::with_budget(RunBudget::with_iter_cap(2));
        let g2 = g.clone();
        assert_eq!(g.tick(), None);
        assert_eq!(g2.tick(), None);
        assert_eq!(g.tick(), Some(Interrupt::IterBudgetExhausted));
        assert_eq!(g2.tick(), Some(Interrupt::IterBudgetExhausted));
    }

    #[test]
    fn cancel_token_stops_all_holders() {
        let token = CancelToken::new();
        let g = RunGovernor::new(RunBudget::unbounded(), token.clone());
        assert_eq!(g.tick(), None);
        token.cancel();
        assert!(token.is_cancelled());
        assert_eq!(g.tick(), Some(Interrupt::Cancelled));
        assert_eq!(g.probe(), Some(Interrupt::Cancelled));
    }

    #[test]
    fn elapsed_deadline_interrupts_immediately() {
        let g = RunGovernor::with_budget(RunBudget::with_max_wall(Duration::ZERO));
        assert_eq!(g.tick(), Some(Interrupt::DeadlineExceeded));
    }

    #[test]
    fn absolute_deadline_and_max_wall_combine_to_the_earlier() {
        let long = Instant::now() + Duration::from_secs(3600);
        let g = RunGovernor::with_budget(RunBudget {
            deadline: Some(long),
            max_wall: Some(Duration::ZERO),
            iter_cap: None,
        });
        assert_eq!(g.probe(), Some(Interrupt::DeadlineExceeded));
    }

    #[test]
    fn probe_does_not_consume_iterations() {
        let g = RunGovernor::with_budget(RunBudget::with_iter_cap(1));
        assert_eq!(g.probe(), None);
        assert_eq!(g.probe(), None);
        assert_eq!(g.iterations_consumed(), 0);
        assert_eq!(g.tick(), None);
        assert_eq!(g.probe(), Some(Interrupt::IterBudgetExhausted));
    }

    #[test]
    fn display_names_every_reason() {
        assert_eq!(Interrupt::Cancelled.to_string(), "cancelled");
        assert!(Interrupt::DeadlineExceeded.to_string().contains("wall"));
        assert!(Interrupt::IterBudgetExhausted
            .to_string()
            .contains("iteration"));
    }
}
