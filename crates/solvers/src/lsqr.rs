//! LSQR: iterative damped least squares (Paige & Saunders, ACM TOMS 1982).
//!
//! Solves `min ‖A·x − b‖² + damp²·‖x‖²` using only the products `A·v` and
//! `Aᵀ·u` — one of each per iteration, which on sparse data costs `O(nnz)`.
//! With `k` iterations and `c − 1` response vectors this is exactly the
//! paper's `O(kc·ms)` training cost, the headline "linear time" result.
//! The paper runs a fixed 15–20 iterations; [`LsqrConfig`] supports both a
//! hard iteration cap and standard residual-based stopping rules.

use crate::checkpoint::{LsqrCheckpoint, ProblemFingerprint};
use crate::governor::{Interrupt, RunGovernor};
use crate::operator::LinearOperator;
use srda_linalg::vector;
use srda_obs::SolverTrace;

/// Configuration for an LSQR run.
///
/// ## Contract
///
/// `damp` and `tol` must be **finite and non-negative**. Both [`lsqr`] and
/// [`lsqr_warm`] validate this at entry and panic on violation — a
/// negative or NaN knob is a programming error in the caller, exactly like
/// a mismatched right-hand-side length, and silently accepting it
/// previously produced NaN-filled "solutions" with no diagnostic.
#[derive(Debug, Clone)]
pub struct LsqrConfig {
    /// Regularization: the solver minimizes `‖Ax − b‖² + damp²‖x‖²`.
    /// For SRDA's ridge parameter `α`, pass `damp = √α`.
    /// Must be finite and `>= 0`.
    pub damp: f64,
    /// Hard iteration cap. The paper: "In our experiments, 20 iterations
    /// are enough"; their 20Newsgroups runs use 15.
    pub max_iter: usize,
    /// Relative residual tolerance (`atol`/`btol` of the reference
    /// implementation, collapsed to one knob). Set to 0 to always run
    /// `max_iter` iterations. Must be finite and `>= 0`.
    pub tol: f64,
}

impl Default for LsqrConfig {
    fn default() -> Self {
        LsqrConfig {
            damp: 0.0,
            max_iter: 20,
            tol: 1e-10,
        }
    }
}

impl LsqrConfig {
    /// Enforce the documented contract; called by [`lsqr`]/[`lsqr_warm`].
    fn validate(&self) {
        assert!(
            self.damp.is_finite() && self.damp >= 0.0,
            "LsqrConfig.damp must be finite and non-negative, got {}",
            self.damp
        );
        assert!(
            self.tol.is_finite() && self.tol >= 0.0,
            "LsqrConfig.tol must be finite and non-negative, got {}",
            self.tol
        );
    }
}

/// Iterations of no relative residual improvement tolerated before
/// declaring [`StopReason::Stagnated`] (only when `tol > 0`; `tol = 0`
/// means "run exactly `max_iter` iterations", which stagnation detection
/// must not override).
const STAGNATION_WINDOW: usize = 8;
/// Relative residual improvement below which an iteration counts as "no
/// progress" for stagnation purposes.
const STAGNATION_RTOL: f64 = 1e-12;

/// Why LSQR stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// `x = 0` was already the exact solution (`b = 0` or `Aᵀb = 0`).
    TrivialSolution,
    /// The residual tolerance was met.
    Converged,
    /// The iteration cap was hit.
    MaxIterations,
    /// A non-finite quantity appeared — in the right-hand side, in an
    /// operator product, or in the bidiagonalization recurrences. The
    /// returned `x` is the last finite iterate (possibly all zeros); it is
    /// **never** NaN-contaminated.
    Diverged,
    /// The damped residual made no relative progress for
    /// [`STAGNATION_WINDOW`] consecutive iterations (detected only when
    /// `tol > 0`): the iteration is wedged at its attainable floor and
    /// further matvecs are wasted work.
    Stagnated,
    /// The run's [`RunGovernor`] interrupted the solve (budget spent or
    /// cancellation requested) before it converged. The returned `x` is
    /// the last completed iterate and
    /// [`LsqrResult::checkpoint`] carries the full resumable state.
    /// **Not a failure**: resuming replays to a bitwise-identical
    /// trajectory.
    Interrupted(Interrupt),
}

/// The outcome of an LSQR run.
#[derive(Debug, Clone)]
pub struct LsqrResult {
    /// The computed solution.
    pub x: Vec<f64>,
    /// Iterations actually performed.
    pub iterations: usize,
    /// Final estimate of `‖[r; damp·x]‖` (the damped residual norm).
    pub residual_norm: f64,
    /// Stopping cause.
    pub stop: StopReason,
    /// Damped-residual-norm trace, one entry per iteration (used by the
    /// `repro_lsqr_convergence` experiment to verify the "~20 iterations"
    /// claim). On a resumed run this is the *full* trace, pre-interrupt
    /// iterations included.
    pub residual_trace: Vec<f64>,
    /// The resumable solver state, populated only when the run stopped
    /// with [`StopReason::Interrupted`] under a governor. Feed it back via
    /// [`SolveControls::resume`] to continue bitwise-identically.
    pub checkpoint: Option<Box<LsqrCheckpoint>>,
}

/// Governance hooks for a controlled LSQR run ([`lsqr_controlled`]).
/// The default is a plain ungoverned solve — [`lsqr`] is exactly
/// `lsqr_controlled(a, b, cfg, &SolveControls::default())`, and the
/// trajectory is bit-for-bit unchanged by governance: the governor and
/// checkpoint hooks only *observe* state between iterations, never
/// perturb the float sequence.
#[derive(Clone, Copy, Default)]
pub struct SolveControls<'a> {
    /// Budget/cancellation authority, consulted at the top of every
    /// iteration. `None` means never interrupt.
    pub governor: Option<&'a RunGovernor>,
    /// Resume from a previously captured state instead of a cold start.
    /// The checkpoint's fingerprint must match this problem (shape,
    /// `damp`/`tol`/`max_iter` bits, and right-hand side CRC) — a
    /// mismatch is a caller bug and panics; validate first with
    /// [`ProblemFingerprint::ensure_matches`] where a typed error is
    /// needed.
    pub resume: Option<&'a LsqrCheckpoint>,
    /// Emit a checkpoint every N completed iterations (0 = never).
    pub checkpoint_every: usize,
    /// Where periodic checkpoints go (e.g. an atomic file write). Called
    /// synchronously between iterations.
    pub on_checkpoint: Option<&'a (dyn Fn(&LsqrCheckpoint) + Sync)>,
    /// Telemetry channel for the per-iteration trajectory (damped residual,
    /// `‖Aᵀr‖` estimate, governor checks). Records only quantities the
    /// loop already computes, so a traced run is bitwise identical to an
    /// untraced one.
    pub telemetry: Option<&'a SolverTrace>,
}

impl std::fmt::Debug for SolveControls<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SolveControls")
            .field("governor", &self.governor.is_some())
            .field("resume", &self.resume.map(|c| c.iteration))
            .field("checkpoint_every", &self.checkpoint_every)
            .field("on_checkpoint", &self.on_checkpoint.is_some())
            .field("telemetry", &self.telemetry.is_some())
            .finish()
    }
}

/// Run LSQR on `min ‖A·x − b‖² + damp²‖x‖²`.
///
/// ```
/// use srda_linalg::Mat;
/// use srda_solvers::lsqr::{lsqr, LsqrConfig};
///
/// // consistent 2×2 system: x = [1, 2]
/// let a = Mat::from_rows(&[vec![2.0, 0.0], vec![0.0, 3.0]]).unwrap();
/// let r = lsqr(&a, &[2.0, 6.0], &LsqrConfig::default());
/// assert!((r.x[0] - 1.0).abs() < 1e-8);
/// assert!((r.x[1] - 2.0).abs() < 1e-8);
/// ```
pub fn lsqr<A: LinearOperator + ?Sized>(a: &A, b: &[f64], cfg: &LsqrConfig) -> LsqrResult {
    lsqr_controlled(a, b, cfg, &SolveControls::default())
}

/// Capture the end-of-iteration state as a resumable checkpoint. Every
/// field the next iteration reads is here; `beta` is not, because each
/// iteration recomputes it from scratch before first use.
#[allow(clippy::too_many_arguments)]
fn snapshot(
    fingerprint: ProblemFingerprint,
    iteration: usize,
    x: &[f64],
    w: &[f64],
    u: &[f64],
    v: &[f64],
    alpha: f64,
    phibar: f64,
    rhobar: f64,
    anorm_sq: f64,
    b_norm: f64,
    best_res: f64,
    no_improve: usize,
    trace: &[f64],
) -> LsqrCheckpoint {
    LsqrCheckpoint {
        fingerprint,
        iteration,
        x: x.to_vec(),
        w: w.to_vec(),
        u: u.to_vec(),
        v: v.to_vec(),
        alpha,
        phibar,
        rhobar,
        anorm_sq,
        b_norm,
        best_res,
        no_improve,
        residual_trace: trace.to_vec(),
    }
}

/// [`lsqr`] with run governance: budget/cancellation checks at every
/// iteration boundary, periodic checkpoint emission, and resume from a
/// prior [`LsqrCheckpoint`].
///
/// ## Determinism contract
///
/// Governance never changes the float sequence. For any interrupt point
/// `k`, running to `k`, checkpointing, and resuming to completion yields
/// the same `x` **bit for bit** as the uninterrupted run — the checkpoint
/// captures the complete iteration state, floats round-trip exactly, and
/// the loop body is untouched. This is asserted by the
/// `resume_*_bitwise_identical` tests below and relied on by
/// `SrdaModel`'s fit resume.
pub fn lsqr_controlled<A: LinearOperator + ?Sized>(
    a: &A,
    b: &[f64],
    cfg: &LsqrConfig,
    ctl: &SolveControls,
) -> LsqrResult {
    assert_eq!(b.len(), a.nrows(), "rhs length must equal operator rows");
    cfg.validate();
    if let Some(t) = ctl.telemetry {
        t.set_solver("lsqr", cfg.damp);
    }
    let n = a.ncols();
    let mut x = vec![0.0; n];

    let diverged = |x: Vec<f64>, iterations: usize, trace: Vec<f64>| LsqrResult {
        x,
        iterations,
        residual_norm: f64::INFINITY,
        stop: StopReason::Diverged,
        residual_trace: trace,
        checkpoint: None,
    };

    // reject a poisoned right-hand side before any work: a NaN here would
    // otherwise propagate through every recurrence below
    if !b.iter().all(|v| v.is_finite()) {
        return diverged(x, 0, vec![]);
    }

    // the fingerprint (an O(m) CRC of b) is only needed when state may
    // cross a run boundary: resuming, emitting checkpoints, or running
    // under a governor that could interrupt
    let fingerprint = if ctl.resume.is_some()
        || ctl.governor.is_some()
        || (ctl.checkpoint_every > 0 && ctl.on_checkpoint.is_some())
    {
        Some(ProblemFingerprint::new(
            a.nrows(),
            n,
            cfg.damp,
            cfg.tol,
            cfg.max_iter,
            b,
        ))
    } else {
        None
    };

    let mut u;
    let mut v;
    let mut w;
    let mut alpha;
    let mut phibar;
    let mut rhobar;
    let b_norm;
    let mut anorm_sq;
    let mut trace;
    let mut best_res;
    let mut no_improve;
    let start_iter;

    if let Some(ckpt) = ctl.resume {
        if let Err(e) = ckpt.fingerprint.ensure_matches(
            fingerprint
                .as_ref()
                .expect("fingerprint computed for resume"),
        ) {
            panic!("lsqr resume: {e}");
        }
        assert_eq!(ckpt.u.len(), a.nrows(), "checkpoint u length");
        assert_eq!(ckpt.v.len(), n, "checkpoint v length");
        assert_eq!(ckpt.w.len(), n, "checkpoint w length");
        assert_eq!(ckpt.x.len(), n, "checkpoint x length");
        u = ckpt.u.clone();
        v = ckpt.v.clone();
        w = ckpt.w.clone();
        x = ckpt.x.clone();
        alpha = ckpt.alpha;
        phibar = ckpt.phibar;
        rhobar = ckpt.rhobar;
        anorm_sq = ckpt.anorm_sq;
        b_norm = ckpt.b_norm;
        best_res = ckpt.best_res;
        no_improve = ckpt.no_improve;
        trace = ckpt.residual_trace.clone();
        start_iter = ckpt.iteration;
    } else {
        // Golub-Kahan bidiagonalization initialization
        u = b.to_vec();
        let beta = vector::norm2_robust(&u);
        if beta == 0.0 {
            return LsqrResult {
                x,
                iterations: 0,
                residual_norm: 0.0,
                stop: StopReason::TrivialSolution,
                residual_trace: vec![],
                checkpoint: None,
            };
        }
        if !beta.is_finite() {
            // finite entries but overflowing norm: treat as breakdown
            return diverged(x, 0, vec![]);
        }
        vector::scale(1.0 / beta, &mut u);

        v = a.apply_t(&u);
        // check the raw operator output so a poisoned matvec surfaces as a
        // breakdown before the NaN reaches the iteration state
        // (norm2_robust would also flag it, but this check is earlier and
        // pinpoints the operator, not the norm)
        if !v.iter().all(|t| t.is_finite()) {
            return diverged(x, 0, vec![]);
        }
        alpha = vector::norm2_robust(&v);
        if !alpha.is_finite() {
            // finite entries but overflowing norm: treat as breakdown
            return diverged(x, 0, vec![]);
        }
        if alpha == 0.0 {
            // b is orthogonal to the range of A: x = 0 is optimal
            return LsqrResult {
                x,
                iterations: 0,
                residual_norm: beta,
                stop: StopReason::TrivialSolution,
                residual_trace: vec![],
                checkpoint: None,
            };
        }
        vector::scale(1.0 / alpha, &mut v);

        w = v.clone();
        phibar = beta;
        rhobar = alpha;
        b_norm = beta;
        // running Frobenius-norm estimate of the damped bidiagonal (Paige &
        // Saunders' ANORM), for the ‖Aᵀr‖-based stopping rule
        anorm_sq = alpha * alpha;
        trace = Vec::with_capacity(cfg.max_iter);
        // stagnation tracking (active only when tol > 0)
        best_res = f64::INFINITY;
        no_improve = 0usize;
        start_iter = 0;
    }

    let mut beta;
    let mut stop = StopReason::MaxIterations;
    let mut iterations = start_iter;
    let mut interrupted_ckpt: Option<Box<LsqrCheckpoint>> = None;
    // product buffers reused across iterations (apply_into avoids one
    // allocation per matvec — measurable on the k·c small-product regime
    // of SRDA's response loop)
    let mut av = vec![0.0; a.nrows()];
    let mut atu = vec![0.0; n];

    for iter in start_iter..cfg.max_iter {
        // governance first: the state here is exactly the end-of-previous-
        // iteration state, so the snapshot taken on interrupt resumes at
        // `iter` with nothing lost and nothing repeated
        #[cfg_attr(not(feature = "failpoints"), allow(unused_mut))]
        let mut interrupt = ctl.governor.and_then(|g| {
            if let Some(t) = ctl.telemetry {
                t.governor_check();
            }
            g.tick()
        });
        #[cfg(feature = "failpoints")]
        if interrupt.is_none() && srda_linalg::failpoint::should_fail("lsqr.interrupt") {
            // deterministic kill switch for resume tests: behaves exactly
            // like an external cancellation landing at this boundary
            interrupt = Some(Interrupt::Cancelled);
        }
        if let Some(reason) = interrupt {
            stop = StopReason::Interrupted(reason);
            iterations = iter;
            if let Some(fp) = fingerprint {
                interrupted_ckpt = Some(Box::new(snapshot(
                    fp, iter, &x, &w, &u, &v, alpha, phibar, rhobar, anorm_sq, b_norm, best_res,
                    no_improve, &trace,
                )));
            }
            break;
        }
        #[cfg(feature = "failpoints")]
        if srda_linalg::failpoint::should_fail("lsqr.breakdown") {
            // simulate a non-finite operator product surfacing here
            stop = StopReason::Diverged;
            iterations = iter;
            break;
        }
        iterations = iter + 1;

        // continue the bidiagonalization: β·u = A·v − α·u
        a.apply_into(&v, &mut av);
        if !av.iter().all(|t| t.is_finite()) {
            // a bad matvec (NaN/∞ from the operator) — stop before the
            // poison reaches x. Checked on the raw product so the
            // breakdown is attributed to the operator; norm2_robust below
            // is the backstop for overflow in the recombination.
            stop = StopReason::Diverged;
            iterations = iter;
            break;
        }
        for (ui, avi) in u.iter_mut().zip(&av) {
            *ui = avi - alpha * *ui;
        }
        beta = vector::norm2_robust(&u);
        if !beta.is_finite() {
            // finite entries but overflowing norm: treat as breakdown
            stop = StopReason::Diverged;
            iterations = iter;
            break;
        }
        if beta > 0.0 {
            vector::scale(1.0 / beta, &mut u);
        }
        // α·v = Aᵀ·u − β·v
        a.apply_t_into(&u, &mut atu);
        if !atu.iter().all(|t| t.is_finite()) {
            stop = StopReason::Diverged;
            iterations = iter;
            break;
        }
        for (vi, atui) in v.iter_mut().zip(&atu) {
            *vi = atui - beta * *vi;
        }
        alpha = vector::norm2_robust(&v);
        if !alpha.is_finite() {
            stop = StopReason::Diverged;
            iterations = iter;
            break;
        }
        if alpha > 0.0 {
            vector::scale(1.0 / alpha, &mut v);
        }

        // eliminate the damping term with a first rotation
        let rhobar1 = rhobar.hypot(cfg.damp);
        if rhobar1 == 0.0 {
            // total breakdown: the bidiagonalization has terminated and
            // there is no damping — x is already the exact LS solution
            stop = StopReason::Converged;
            iterations = iter;
            break;
        }
        let c1 = rhobar / rhobar1;
        let s1 = cfg.damp / rhobar1;
        let psi = s1 * phibar;
        phibar *= c1;

        // eliminate the subdiagonal with a second rotation
        let rho = rhobar1.hypot(beta);
        let c = rhobar1 / rho;
        let s = beta / rho;
        let theta = s * alpha;
        rhobar = -c * alpha;
        let phi = c * phibar;
        phibar *= s;

        // update x and the search direction w — but never with non-finite
        // step coefficients (overflowing recurrences surface here)
        let t1 = phi / rho;
        let t2 = -theta / rho;
        if !t1.is_finite() || !t2.is_finite() {
            stop = StopReason::Diverged;
            iterations = iter;
            break;
        }
        for i in 0..n {
            x[i] += t1 * w[i];
            w[i] = v[i] + t2 * w[i];
        }

        // ‖[r; damp·x]‖ ≈ √(φ̄² + ψ²) accumulated; the ψ terms are
        // orthogonal between iterations, so track their running square sum.
        let damped_res = (phibar * phibar + psi * psi).sqrt();
        trace.push(damped_res);
        if let Some(t) = ctl.telemetry {
            // pure reads of already-computed state; `alpha * (c * phibar).abs()`
            // is exactly the `arnorm` the second stopping rule derives below,
            // so recording cannot perturb the float sequence
            t.iteration(iter + 1, damped_res, alpha * (c * phibar).abs());
        }

        // phibar carries a sign (the rotations propagate the sign of
        // rhobar); only its magnitude estimates the residual norm.
        if cfg.tol > 0.0 && phibar.abs() <= cfg.tol * b_norm {
            stop = StopReason::Converged;
            break;
        }
        // second Paige-Saunders rule, decisive for inconsistent systems:
        // ‖Aᵀr̄‖ = α·|c·φ̄| must vanish at the LS solution even though the
        // residual itself does not
        anorm_sq += alpha * alpha + beta * beta + cfg.damp * cfg.damp;
        let arnorm = alpha * (c * phibar).abs();
        if cfg.tol > 0.0 && arnorm <= cfg.tol * anorm_sq.sqrt() * damped_res.max(f64::MIN_POSITIVE)
        {
            stop = StopReason::Converged;
            break;
        }
        if alpha == 0.0 || beta == 0.0 {
            // bidiagonalization breakdown: the Krylov space is exhausted,
            // so the current x is the exact (damped) LS solution
            stop = StopReason::Converged;
            break;
        }
        // stagnation: the residual floor has been reached but neither
        // tolerance rule fires (e.g. tol below the attainable accuracy);
        // cut the run instead of burning matvecs to no effect
        if cfg.tol > 0.0 {
            if damped_res < best_res * (1.0 - STAGNATION_RTOL) {
                best_res = damped_res;
                no_improve = 0;
            } else {
                no_improve += 1;
                if no_improve >= STAGNATION_WINDOW {
                    stop = StopReason::Stagnated;
                    break;
                }
            }
        }
        // periodic checkpoint, after every recurrence of this iteration
        // has landed — the snapshot resumes at `iter + 1`
        if ctl.checkpoint_every > 0 && (iter + 1) % ctl.checkpoint_every == 0 {
            if let (Some(fp), Some(cb)) = (fingerprint, ctl.on_checkpoint) {
                cb(&snapshot(
                    fp,
                    iter + 1,
                    &x,
                    &w,
                    &u,
                    &v,
                    alpha,
                    phibar,
                    rhobar,
                    anorm_sq,
                    b_norm,
                    best_res,
                    no_improve,
                    &trace,
                ));
            }
        }
    }

    // belt and braces: whatever path got here, a non-finite x never leaves
    // this function (the checks above should make this unreachable)
    if !x.iter().all(|v| v.is_finite()) {
        x = vec![0.0; n];
        stop = StopReason::Diverged;
    }
    LsqrResult {
        residual_norm: if stop == StopReason::Diverged {
            f64::INFINITY
        } else {
            *trace.last().unwrap_or(&phibar.abs())
        },
        x,
        iterations,
        stop,
        residual_trace: trace,
        checkpoint: interrupted_ckpt,
    }
}

/// Internal operator `[A; damp·I]` used by the warm-start path: stacking
/// the ridge term as explicit rows turns the damped problem into a plain
/// least-squares problem whose right-hand side can carry an `x₀` offset.
struct DampedStackOp<'a, A: LinearOperator + ?Sized> {
    inner: &'a A,
    damp: f64,
}

impl<A: LinearOperator + ?Sized> LinearOperator for DampedStackOp<'_, A> {
    fn nrows(&self) -> usize {
        self.inner.nrows() + self.inner.ncols()
    }
    fn ncols(&self) -> usize {
        self.inner.ncols()
    }
    fn apply(&self, x: &[f64]) -> Vec<f64> {
        let mut y = self.inner.apply(x);
        y.extend(x.iter().map(|v| self.damp * v));
        y
    }
    fn apply_t(&self, x: &[f64]) -> Vec<f64> {
        let (top, bottom) = x.split_at(self.inner.nrows());
        let mut y = self.inner.apply_t(top);
        for (yi, bi) in y.iter_mut().zip(bottom) {
            *yi += self.damp * bi;
        }
        y
    }
    fn apply_into(&self, x: &[f64], y: &mut [f64]) {
        let (top, bottom) = y.split_at_mut(self.inner.nrows());
        self.inner.apply_into(x, top);
        for (bi, xi) in bottom.iter_mut().zip(x) {
            *bi = self.damp * xi;
        }
    }
    fn apply_t_into(&self, x: &[f64], y: &mut [f64]) {
        let (top, bottom) = x.split_at(self.inner.nrows());
        self.inner.apply_t_into(top, y);
        for (yi, bi) in y.iter_mut().zip(bottom) {
            *yi += self.damp * bi;
        }
    }
}

/// Warm-started damped LSQR: solve `min ‖A·x − b‖² + damp²·‖x‖²` starting
/// from `x0` (e.g. the solution of a closely related earlier problem —
/// incremental retraining after appending samples). Internally solves the
/// equivalent stacked least-squares problem for the correction `d`:
///
/// ```text
/// min ‖ [A; damp·I]·d − [b − A·x0; −damp·x0] ‖²,   x = x0 + d
/// ```
///
/// With a good `x0` the correction is small and LSQR needs far fewer
/// iterations than a cold start for the same residual.
///
/// A non-finite `x0` or `b` is rejected up front with
/// [`StopReason::Diverged`] and `x = 0` — warm-starting from a poisoned
/// previous model must not smuggle its NaNs into the new one. `cfg` obeys
/// the [`LsqrConfig`] contract (finite, non-negative `damp`/`tol`),
/// enforced by panic. `damp = 0` is a fully supported configuration: the
/// stacked rows vanish and the solve degenerates to plain warm-started
/// least squares.
pub fn lsqr_warm<A: LinearOperator + ?Sized>(
    a: &A,
    b: &[f64],
    x0: &[f64],
    cfg: &LsqrConfig,
) -> LsqrResult {
    lsqr_warm_governed(a, b, x0, cfg, None)
}

/// [`lsqr_warm`] under a [`RunGovernor`]: the inner stacked solve checks
/// the budget at every iteration boundary, exactly like
/// [`lsqr_controlled`]. Warm starts are **not checkpointable** — the
/// internal correction problem's state is meaningless outside this call,
/// so the result's `checkpoint` is always `None`; interrupted incremental
/// refits simply rerun from their (still valid) `x0`.
pub fn lsqr_warm_governed<A: LinearOperator + ?Sized>(
    a: &A,
    b: &[f64],
    x0: &[f64],
    cfg: &LsqrConfig,
    governor: Option<&RunGovernor>,
) -> LsqrResult {
    assert_eq!(b.len(), a.nrows(), "rhs length must equal operator rows");
    assert_eq!(x0.len(), a.ncols(), "x0 length must equal operator cols");
    cfg.validate();
    if !x0.iter().all(|v| v.is_finite()) || !b.iter().all(|v| v.is_finite()) {
        return LsqrResult {
            x: vec![0.0; a.ncols()],
            iterations: 0,
            residual_norm: f64::INFINITY,
            stop: StopReason::Diverged,
            residual_trace: vec![],
            checkpoint: None,
        };
    }
    let stacked = DampedStackOp {
        inner: a,
        damp: cfg.damp,
    };
    let ax0 = a.apply(x0);
    let mut rhs: Vec<f64> = b.iter().zip(&ax0).map(|(bi, ai)| bi - ai).collect();
    rhs.extend(x0.iter().map(|v| -cfg.damp * v));
    let inner_cfg = LsqrConfig {
        damp: 0.0, // damping is inside the stacked operator now
        ..cfg.clone()
    };
    let ctl = SolveControls {
        governor,
        ..SolveControls::default()
    };
    let mut result = lsqr_controlled(&stacked, &rhs, &inner_cfg, &ctl);
    for (xi, x0i) in result.x.iter_mut().zip(x0) {
        *xi += x0i;
    }
    // the inner checkpoint describes the stacked correction problem, not
    // (A, b): never leak it to callers
    result.checkpoint = None;
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use srda_linalg::ops::{gram, matvec, matvec_t};
    use srda_linalg::{Cholesky, Mat};

    fn noise_mat(m: usize, n: usize) -> Mat {
        Mat::from_fn(m, n, |i, j| {
            let x = (i as f64 * 12.9898 + j as f64 * 78.233).sin() * 43758.5453;
            x - x.floor() - 0.5
        })
    }

    fn ridge_oracle(a: &Mat, b: &[f64], alpha: f64) -> Vec<f64> {
        let mut g = gram(a);
        g.add_to_diag(alpha);
        let atb = matvec_t(a, b).unwrap();
        Cholesky::factor(&g).unwrap().solve(&atb).unwrap()
    }

    #[test]
    fn solves_consistent_square_system() {
        let a = noise_mat(6, 6);
        let x_true: Vec<f64> = (0..6).map(|i| i as f64 - 2.5).collect();
        let b = matvec(&a, &x_true).unwrap();
        let r = lsqr(
            &a,
            &b,
            &LsqrConfig {
                damp: 0.0,
                max_iter: 200,
                tol: 1e-14,
            },
        );
        for (u, v) in r.x.iter().zip(&x_true) {
            assert!((u - v).abs() < 1e-6, "{u} vs {v}");
        }
    }

    #[test]
    fn huge_but_finite_rhs_does_not_overflow_the_norms() {
        // entries near √(f64::MAX): dot(b, b) overflows to ∞ but the
        // scaled norm2_robust stays finite, so the solve proceeds instead
        // of reporting a spurious breakdown
        let a = noise_mat(8, 3);
        let big = f64::MAX.sqrt() * 0.5;
        let b = vec![big; 8];
        let r = lsqr(
            &a,
            &b,
            &LsqrConfig {
                damp: 0.1,
                max_iter: 60,
                tol: 1e-10,
            },
        );
        assert!(
            !matches!(r.stop, StopReason::Diverged),
            "stop = {:?}",
            r.stop
        );
        assert!(r.x.iter().all(|t| t.is_finite()));
        assert!(r.residual_norm.is_finite());
    }

    #[test]
    fn overdetermined_matches_normal_equations() {
        let a = noise_mat(20, 5);
        let b: Vec<f64> = (0..20).map(|i| (i as f64 * 0.3).sin()).collect();
        let r = lsqr(
            &a,
            &b,
            &LsqrConfig {
                damp: 0.0,
                max_iter: 100,
                tol: 1e-14,
            },
        );
        let oracle = ridge_oracle(&a, &b, 0.0);
        for (u, v) in r.x.iter().zip(&oracle) {
            assert!((u - v).abs() < 1e-8, "{u} vs {v}");
        }
    }

    #[test]
    fn damped_solution_matches_ridge_oracle() {
        let alpha: f64 = 0.7;
        let a = noise_mat(15, 8);
        let b: Vec<f64> = (0..15).map(|i| (i as f64 * 0.9).cos()).collect();
        let r = lsqr(
            &a,
            &b,
            &LsqrConfig {
                damp: alpha.sqrt(),
                max_iter: 200,
                tol: 1e-14,
            },
        );
        let oracle = ridge_oracle(&a, &b, alpha);
        for (u, v) in r.x.iter().zip(&oracle) {
            assert!((u - v).abs() < 1e-8, "{u} vs {v}");
        }
    }

    #[test]
    fn underdetermined_with_damping() {
        // n > m: exactly SRDA's hard case; ridge makes it well-posed
        let alpha: f64 = 0.5;
        let a = noise_mat(6, 20);
        let b: Vec<f64> = (0..6).map(|i| 1.0 + i as f64).collect();
        let r = lsqr(
            &a,
            &b,
            &LsqrConfig {
                damp: alpha.sqrt(),
                max_iter: 300,
                tol: 1e-14,
            },
        );
        let oracle = ridge_oracle(&a, &b, alpha);
        for (u, v) in r.x.iter().zip(&oracle) {
            assert!((u - v).abs() < 1e-8, "{u} vs {v}");
        }
    }

    #[test]
    fn zero_rhs_is_trivial() {
        let a = noise_mat(5, 3);
        let r = lsqr(&a, &[0.0; 5], &LsqrConfig::default());
        assert_eq!(r.stop, StopReason::TrivialSolution);
        assert_eq!(r.x, vec![0.0; 3]);
    }

    #[test]
    fn rhs_orthogonal_to_range_is_trivial() {
        // A has only a first column; b orthogonal to it
        let a = Mat::from_vec(2, 1, vec![1.0, 0.0]).unwrap();
        let r = lsqr(&a, &[0.0, 5.0], &LsqrConfig::default());
        assert_eq!(r.stop, StopReason::TrivialSolution);
        assert_eq!(r.x, vec![0.0]);
        assert!((r.residual_norm - 5.0).abs() < 1e-14);
    }

    #[test]
    fn max_iter_respected() {
        let a = noise_mat(30, 25);
        let b = vec![1.0; 30];
        let r = lsqr(
            &a,
            &b,
            &LsqrConfig {
                damp: 0.0,
                max_iter: 3,
                tol: 0.0,
            },
        );
        assert_eq!(r.iterations, 3);
        assert_eq!(r.stop, StopReason::MaxIterations);
        assert_eq!(r.residual_trace.len(), 3);
    }

    #[test]
    fn residual_trace_is_monotone_nonincreasing() {
        let a = noise_mat(25, 10);
        let b: Vec<f64> = (0..25).map(|i| (i as f64).sin()).collect();
        let r = lsqr(
            &a,
            &b,
            &LsqrConfig {
                damp: 0.1,
                max_iter: 30,
                tol: 0.0,
            },
        );
        for w in r.residual_trace.windows(2) {
            assert!(w[1] <= w[0] + 1e-12, "residual increased: {w:?}");
        }
    }

    #[test]
    fn converges_quickly_on_well_conditioned_problems() {
        // the paper's claim: ~20 iterations suffice in practice
        let a = noise_mat(60, 30);
        let b: Vec<f64> = (0..60).map(|i| (i as f64 * 0.17).sin()).collect();
        let r = lsqr(
            &a,
            &b,
            &LsqrConfig {
                damp: 1.0,
                max_iter: 20,
                tol: 0.0,
            },
        );
        let oracle = ridge_oracle(&a, &b, 1.0);
        let mut err = 0.0f64;
        let mut norm = 0.0f64;
        for (u, v) in r.x.iter().zip(&oracle) {
            err += (u - v) * (u - v);
            norm += v * v;
        }
        assert!(
            err.sqrt() / norm.sqrt() < 1e-4,
            "relative error {} too large after 20 iterations",
            err.sqrt() / norm.sqrt()
        );
    }

    #[test]
    fn works_through_sparse_operator() {
        let d = noise_mat(12, 7);
        let s = srda_sparse::CsrMatrix::from_dense(&d, 0.2); // thin it out
        let ds = s.to_dense();
        let b: Vec<f64> = (0..12).map(|i| (i as f64 * 0.51).cos()).collect();
        let cfg = LsqrConfig {
            damp: 0.3,
            max_iter: 200,
            tol: 1e-14,
        };
        let r_sparse = lsqr(&s, &b, &cfg);
        let r_dense = lsqr(&ds, &b, &cfg);
        for (u, v) in r_sparse.x.iter().zip(&r_dense.x) {
            assert!((u - v).abs() < 1e-10);
        }
    }

    #[test]
    #[should_panic(expected = "rhs length")]
    fn rhs_length_checked() {
        let a = noise_mat(4, 3);
        let _ = lsqr(&a, &[1.0; 3], &LsqrConfig::default());
    }

    #[test]
    fn warm_start_matches_cold_solution() {
        let alpha: f64 = 0.6;
        let a = noise_mat(16, 7);
        let b: Vec<f64> = (0..16).map(|i| (i as f64 * 0.53).sin()).collect();
        let cfg = LsqrConfig {
            damp: alpha.sqrt(),
            max_iter: 400,
            tol: 1e-13,
        };
        let cold = lsqr(&a, &b, &cfg);
        // warm start from an arbitrary point still converges to the same
        // unique ridge solution
        let x0: Vec<f64> = (0..7).map(|i| (i as f64) - 3.0).collect();
        let warm = lsqr_warm(&a, &b, &x0, &cfg);
        for (u, v) in warm.x.iter().zip(&cold.x) {
            assert!((u - v).abs() < 1e-7, "{u} vs {v}");
        }
    }

    #[test]
    fn warm_start_from_exact_solution_converges_instantly() {
        let alpha: f64 = 0.4;
        let a = noise_mat(12, 5);
        let b: Vec<f64> = (0..12).map(|i| (i as f64 * 0.71).cos()).collect();
        let oracle = ridge_oracle(&a, &b, alpha);
        let cfg = LsqrConfig {
            damp: alpha.sqrt(),
            max_iter: 100,
            tol: 1e-10,
        };
        let warm = lsqr_warm(&a, &b, &oracle, &cfg);
        assert!(
            warm.iterations <= 3,
            "took {} iterations from the exact solution",
            warm.iterations
        );
        for (u, v) in warm.x.iter().zip(&oracle) {
            assert!((u - v).abs() < 1e-7);
        }
    }

    #[test]
    fn warm_start_near_solution_needs_fewer_iterations() {
        let alpha: f64 = 0.5;
        let a = noise_mat(40, 20);
        let b: Vec<f64> = (0..40).map(|i| (i as f64 * 0.37).sin()).collect();
        let oracle = ridge_oracle(&a, &b, alpha);
        // perturb the oracle slightly: the "previous model" after a small
        // data update
        let x0: Vec<f64> = oracle.iter().map(|v| v * 1.02 + 1e-3).collect();
        let cfg = LsqrConfig {
            damp: alpha.sqrt(),
            max_iter: 200,
            tol: 1e-8,
        };
        let cold = lsqr(&a, &b, &cfg);
        let warm = lsqr_warm(&a, &b, &x0, &cfg);
        assert!(
            warm.iterations < cold.iterations,
            "warm {} vs cold {}",
            warm.iterations,
            cold.iterations
        );
    }

    #[test]
    #[should_panic(expected = "x0 length")]
    fn warm_start_x0_length_checked() {
        let a = noise_mat(4, 3);
        let _ = lsqr_warm(&a, &[1.0; 4], &[0.0; 2], &LsqrConfig::default());
    }

    #[test]
    #[should_panic(expected = "damp must be finite and non-negative")]
    fn negative_damp_rejected() {
        let a = noise_mat(4, 3);
        let _ = lsqr(
            &a,
            &[1.0; 4],
            &LsqrConfig {
                damp: -0.5,
                ..LsqrConfig::default()
            },
        );
    }

    #[test]
    #[should_panic(expected = "tol must be finite and non-negative")]
    fn nan_tol_rejected() {
        let a = noise_mat(4, 3);
        let _ = lsqr(
            &a,
            &[1.0; 4],
            &LsqrConfig {
                tol: f64::NAN,
                ..LsqrConfig::default()
            },
        );
    }

    #[test]
    #[should_panic(expected = "damp must be finite and non-negative")]
    fn warm_start_validates_config_too() {
        let a = noise_mat(4, 3);
        let _ = lsqr_warm(
            &a,
            &[1.0; 4],
            &[0.0; 3],
            &LsqrConfig {
                damp: f64::INFINITY,
                ..LsqrConfig::default()
            },
        );
    }

    #[test]
    fn non_finite_rhs_flags_diverged_with_zero_x() {
        let a = noise_mat(5, 3);
        let mut b = vec![1.0; 5];
        b[2] = f64::NAN;
        let r = lsqr(&a, &b, &LsqrConfig::default());
        assert_eq!(r.stop, StopReason::Diverged);
        assert_eq!(r.iterations, 0);
        assert_eq!(r.x, vec![0.0; 3]);
        let mut b2 = vec![1.0; 5];
        b2[0] = f64::INFINITY;
        let r2 = lsqr(&a, &b2, &LsqrConfig::default());
        assert_eq!(r2.stop, StopReason::Diverged);
    }

    /// An operator whose forward product emits NaN — the "bad matvec"
    /// scenario (e.g. corrupted data read mid-solve).
    struct PoisonOp {
        m: usize,
        n: usize,
    }

    impl crate::operator::LinearOperator for PoisonOp {
        fn nrows(&self) -> usize {
            self.m
        }
        fn ncols(&self) -> usize {
            self.n
        }
        fn apply(&self, _x: &[f64]) -> Vec<f64> {
            vec![f64::NAN; self.m]
        }
        fn apply_t(&self, x: &[f64]) -> Vec<f64> {
            vec![x.iter().sum(); self.n]
        }
    }

    #[test]
    fn nan_matvec_flags_diverged_and_never_emits_nan_x() {
        let op = PoisonOp { m: 4, n: 3 };
        let r = lsqr(&op, &[1.0; 4], &LsqrConfig::default());
        assert_eq!(r.stop, StopReason::Diverged);
        assert!(
            r.x.iter().all(|v| v.is_finite()),
            "x contaminated: {:?}",
            r.x
        );
        assert!(r.residual_norm.is_infinite());
    }

    #[test]
    fn warm_start_with_damp_zero_matches_ls_oracle() {
        // damp = 0: the stacked ridge rows vanish; plain warm-started LS
        let a = noise_mat(20, 5);
        let b: Vec<f64> = (0..20).map(|i| (i as f64 * 0.43).sin()).collect();
        let x0: Vec<f64> = (0..5).map(|i| 0.3 * i as f64 - 1.0).collect();
        let cfg = LsqrConfig {
            damp: 0.0,
            max_iter: 300,
            tol: 1e-14,
        };
        let r = lsqr_warm(&a, &b, &x0, &cfg);
        assert!(r.x.iter().all(|v| v.is_finite()));
        let oracle = ridge_oracle(&a, &b, 0.0);
        for (u, v) in r.x.iter().zip(&oracle) {
            assert!((u - v).abs() < 1e-7, "{u} vs {v}");
        }
    }

    #[test]
    fn warm_start_rejects_non_finite_x0() {
        let a = noise_mat(6, 4);
        let b = vec![1.0; 6];
        let mut x0 = vec![0.0; 4];
        x0[1] = f64::NAN;
        let r = lsqr_warm(&a, &b, &x0, &LsqrConfig::default());
        assert_eq!(r.stop, StopReason::Diverged);
        assert_eq!(r.iterations, 0);
        assert!(
            r.x.iter().all(|v| v.is_finite()),
            "x contaminated: {:?}",
            r.x
        );
    }

    #[test]
    fn stagnation_detected_when_tol_is_unattainable() {
        // inconsistent overdetermined system with damping: the damped
        // residual has a strictly positive floor, and tol = 1e-300 can
        // never be met — without stagnation detection this would burn all
        // 500 iterations at the floor
        let a = noise_mat(20, 5);
        let b: Vec<f64> = (0..20).map(|i| (i as f64 * 0.77).cos()).collect();
        let r = lsqr(
            &a,
            &b,
            &LsqrConfig {
                damp: 0.3,
                max_iter: 500,
                tol: 1e-300,
            },
        );
        assert_eq!(r.stop, StopReason::Stagnated, "stopped as {:?}", r.stop);
        assert!(r.iterations < 100, "ran {} iterations", r.iterations);
        // the iterate at the floor is still the correct damped solution
        let oracle = ridge_oracle(&a, &b, 0.09);
        for (u, v) in r.x.iter().zip(&oracle) {
            assert!((u - v).abs() < 1e-6, "{u} vs {v}");
        }
    }

    #[test]
    fn tol_zero_disables_stagnation_detection() {
        // the paper's fixed-iteration mode must run exactly max_iter even
        // when the residual is flat
        let a = noise_mat(20, 5);
        let b: Vec<f64> = (0..20).map(|i| (i as f64 * 0.77).cos()).collect();
        let r = lsqr(
            &a,
            &b,
            &LsqrConfig {
                damp: 0.3,
                max_iter: 60,
                tol: 0.0,
            },
        );
        assert_eq!(r.iterations, 60);
        assert_eq!(r.stop, StopReason::MaxIterations);
    }

    fn assert_bitwise_eq(a: &[f64], b: &[f64]) {
        assert_eq!(a.len(), b.len());
        for (i, (u, v)) in a.iter().zip(b).enumerate() {
            assert_eq!(u.to_bits(), v.to_bits(), "entry {i}: {u} vs {v}");
        }
    }

    #[test]
    fn governed_interrupt_then_resume_is_bitwise_identical() {
        use crate::governor::{RunBudget, RunGovernor};
        let alpha: f64 = 0.3;
        let a = noise_mat(30, 12);
        let b: Vec<f64> = (0..30).map(|i| (i as f64 * 0.29).sin()).collect();
        let cfg = LsqrConfig {
            damp: alpha.sqrt(),
            max_iter: 40,
            tol: 0.0,
        };
        let full = lsqr(&a, &b, &cfg);
        assert_eq!(full.stop, StopReason::MaxIterations);
        for k in [1usize, 3, 7, 20, 39] {
            let g = RunGovernor::with_budget(RunBudget::with_iter_cap(k));
            let ctl = SolveControls {
                governor: Some(&g),
                ..Default::default()
            };
            let partial = lsqr_controlled(&a, &b, &cfg, &ctl);
            assert_eq!(
                partial.stop,
                StopReason::Interrupted(Interrupt::IterBudgetExhausted)
            );
            assert_eq!(partial.iterations, k);
            assert_eq!(partial.residual_trace.len(), k);
            let ckpt = partial
                .checkpoint
                .expect("interrupt must carry a checkpoint");
            // round-trip through the on-disk byte format to prove the
            // serialized state, not just the in-memory one, is exact
            let ckpt = LsqrCheckpoint::from_bytes(&ckpt.to_bytes()).unwrap();
            let resume_ctl = SolveControls {
                resume: Some(&ckpt),
                ..Default::default()
            };
            let resumed = lsqr_controlled(&a, &b, &cfg, &resume_ctl);
            assert_eq!(resumed.stop, full.stop, "interrupt at {k}");
            assert_eq!(resumed.iterations, full.iterations);
            assert_bitwise_eq(&resumed.x, &full.x);
            assert_bitwise_eq(&resumed.residual_trace, &full.residual_trace);
        }
    }

    #[test]
    fn resume_with_convergence_rules_active_is_bitwise_identical() {
        use crate::governor::{RunBudget, RunGovernor};
        let a = noise_mat(25, 10);
        let b: Vec<f64> = (0..25).map(|i| (i as f64 * 0.41).cos()).collect();
        let cfg = LsqrConfig {
            damp: 0.5,
            max_iter: 200,
            tol: 1e-12,
        };
        let full = lsqr(&a, &b, &cfg);
        assert_eq!(full.stop, StopReason::Converged);
        let k = full.iterations / 2;
        let g = RunGovernor::with_budget(RunBudget::with_iter_cap(k));
        let partial = lsqr_controlled(
            &a,
            &b,
            &cfg,
            &SolveControls {
                governor: Some(&g),
                ..Default::default()
            },
        );
        let ckpt = partial.checkpoint.unwrap();
        let resumed = lsqr_controlled(
            &a,
            &b,
            &cfg,
            &SolveControls {
                resume: Some(&ckpt),
                ..Default::default()
            },
        );
        assert_eq!(resumed.stop, StopReason::Converged);
        assert_eq!(resumed.iterations, full.iterations);
        assert_bitwise_eq(&resumed.x, &full.x);
    }

    #[test]
    fn periodic_checkpoints_are_emitted_and_each_resumes_identically() {
        let a = noise_mat(20, 8);
        let b: Vec<f64> = (0..20).map(|i| (i as f64 * 0.61).sin()).collect();
        let cfg = LsqrConfig {
            damp: 0.2,
            max_iter: 12,
            tol: 0.0,
        };
        let captured = std::sync::Mutex::new(Vec::new());
        let on_ckpt = |c: &LsqrCheckpoint| captured.lock().unwrap().push(c.clone());
        let full = lsqr_controlled(
            &a,
            &b,
            &cfg,
            &SolveControls {
                checkpoint_every: 3,
                on_checkpoint: Some(&on_ckpt),
                ..Default::default()
            },
        );
        let captured = captured.into_inner().unwrap();
        assert_eq!(
            captured.iter().map(|c| c.iteration).collect::<Vec<_>>(),
            vec![3, 6, 9, 12]
        );
        for ckpt in &captured {
            let resumed = lsqr_controlled(
                &a,
                &b,
                &cfg,
                &SolveControls {
                    resume: Some(ckpt),
                    ..Default::default()
                },
            );
            assert_eq!(resumed.iterations, full.iterations);
            assert_bitwise_eq(&resumed.x, &full.x);
        }
    }

    #[test]
    fn resume_past_max_iter_returns_checkpoint_state() {
        let a = noise_mat(10, 5);
        let b = vec![1.0; 10];
        let cfg = LsqrConfig {
            damp: 0.1,
            max_iter: 6,
            tol: 0.0,
        };
        // a periodic checkpoint lands exactly on the final iteration, so
        // resuming from it has nothing left to do
        let captured = std::sync::Mutex::new(Vec::new());
        let on_ckpt = |c: &LsqrCheckpoint| captured.lock().unwrap().push(c.clone());
        let full = lsqr_controlled(
            &a,
            &b,
            &cfg,
            &SolveControls {
                checkpoint_every: 6,
                on_checkpoint: Some(&on_ckpt),
                ..Default::default()
            },
        );
        assert_eq!(full.iterations, 6);
        let ckpt = captured.into_inner().unwrap().pop().unwrap();
        assert_eq!(ckpt.iteration, 6);
        let resumed = lsqr_controlled(
            &a,
            &b,
            &cfg,
            &SolveControls {
                resume: Some(&ckpt),
                ..Default::default()
            },
        );
        assert_eq!(resumed.iterations, 6);
        assert_eq!(resumed.stop, StopReason::MaxIterations);
        assert_bitwise_eq(&resumed.x, &ckpt.x);
    }

    #[test]
    #[should_panic(expected = "lsqr resume")]
    fn resume_against_different_rhs_panics() {
        let a = noise_mat(10, 5);
        let b = vec![1.0; 10];
        let cfg = LsqrConfig::default();
        let ckpt = LsqrCheckpoint {
            fingerprint: ProblemFingerprint::new(
                10,
                5,
                cfg.damp,
                cfg.tol,
                cfg.max_iter,
                &[2.0; 10],
            ),
            iteration: 1,
            x: vec![0.0; 5],
            w: vec![0.0; 5],
            u: vec![0.0; 10],
            v: vec![0.0; 5],
            alpha: 1.0,
            phibar: 1.0,
            rhobar: 1.0,
            anorm_sq: 1.0,
            b_norm: 1.0,
            best_res: f64::INFINITY,
            no_improve: 0,
            residual_trace: vec![1.0],
        };
        let _ = lsqr_controlled(
            &a,
            &b,
            &cfg,
            &SolveControls {
                resume: Some(&ckpt),
                ..Default::default()
            },
        );
    }

    #[test]
    fn governed_warm_start_interrupts_without_checkpoint() {
        use crate::governor::{RunBudget, RunGovernor};
        let a = noise_mat(16, 7);
        let b: Vec<f64> = (0..16).map(|i| (i as f64 * 0.53).sin()).collect();
        let x0 = vec![0.1; 7];
        let cfg = LsqrConfig {
            damp: 0.3,
            max_iter: 50,
            tol: 0.0,
        };
        let g = RunGovernor::with_budget(RunBudget::with_iter_cap(4));
        let r = lsqr_warm_governed(&a, &b, &x0, &cfg, Some(&g));
        assert_eq!(
            r.stop,
            StopReason::Interrupted(Interrupt::IterBudgetExhausted)
        );
        assert!(
            r.checkpoint.is_none(),
            "warm starts must not leak stacked-problem checkpoints"
        );
        assert!(r.x.iter().all(|v| v.is_finite()));
    }

    #[cfg(feature = "failpoints")]
    #[test]
    fn interrupt_failpoint_kills_at_iteration_k_and_resume_matches() {
        srda_linalg::failpoint::reset();
        let a = noise_mat(24, 9);
        let b: Vec<f64> = (0..24).map(|i| (i as f64 * 0.37).cos()).collect();
        let cfg = LsqrConfig {
            damp: 0.4,
            max_iter: 30,
            tol: 0.0,
        };
        let full = lsqr(&a, &b, &cfg);
        // let k iterations pass, then fire: the kill lands at the top of
        // iteration k, after k completed iterations
        let k = 5;
        srda_linalg::failpoint::arm_after("lsqr.interrupt", k, 1);
        // a governor must be present for the solve to compute the
        // fingerprint a checkpoint needs — an unbounded one never
        // interrupts on its own, so the failpoint is the only kill source
        let g = crate::governor::RunGovernor::unbounded();
        let partial = lsqr_controlled(
            &a,
            &b,
            &cfg,
            &SolveControls {
                governor: Some(&g),
                ..Default::default()
            },
        );
        srda_linalg::failpoint::reset();
        assert_eq!(partial.stop, StopReason::Interrupted(Interrupt::Cancelled));
        assert_eq!(partial.iterations, k);
        let ckpt = partial.checkpoint.unwrap();
        assert_eq!(ckpt.iteration, k);
        let resumed = lsqr_controlled(
            &a,
            &b,
            &cfg,
            &SolveControls {
                resume: Some(&ckpt),
                ..Default::default()
            },
        );
        assert_eq!(resumed.iterations, full.iterations);
        assert_bitwise_eq(&resumed.x, &full.x);
    }

    #[cfg(feature = "failpoints")]
    #[test]
    fn breakdown_failpoint_forces_diverged() {
        srda_linalg::failpoint::reset();
        let a = noise_mat(10, 4);
        let b = vec![1.0; 10];
        srda_linalg::failpoint::arm("lsqr.breakdown", 1);
        let r = lsqr(&a, &b, &LsqrConfig::default());
        assert_eq!(r.stop, StopReason::Diverged);
        assert!(r.x.iter().all(|v| v.is_finite()));
        assert_eq!(srda_linalg::failpoint::fired("lsqr.breakdown"), 1);
        srda_linalg::failpoint::reset();
        // and with nothing armed the same problem solves normally
        let r2 = lsqr(&a, &b, &LsqrConfig::default());
        assert_ne!(r2.stop, StopReason::Diverged);
    }
}
