//! Fault-tolerant ridge solving: a direct solve with a bounded recovery
//! chain behind it.
//!
//! SRDA's per-response systems are usually benign, but real corpora
//! produce rank-deficient Gram matrices (duplicate documents, empty
//! feature columns, `α = 0` runs) and a failed factorization used to
//! abort the whole fit. [`RobustRidge`] instead walks a fixed escalation
//! ladder:
//!
//! 1. **Direct** — factor the configured normal-equation form
//!    ([`RidgeSolver::auto`]) and solve. This is the paper's fast path
//!    and the only step that runs when nothing goes wrong.
//! 2. **Jittered retries** — on a retryable breakdown
//!    ([`LinalgError::NotPositiveDefinite`], [`LinalgError::Singular`],
//!    [`LinalgError::NonFinite`], or a non-finite solution), re-factor
//!    with extra diagonal loading, escalating by
//!    [`RobustConfig::jitter_factor`] (default ×10) for at most
//!    [`RobustConfig::max_jitter_retries`] attempts (default 3).
//! 3. **LSQR fallback** — if every factorization fails, solve each
//!    response column iteratively with damped [`lsqr`] (`damp = √α`),
//!    which never forms the Gram matrix and tolerates rank deficiency
//!    (it returns the minimum-norm least-squares solution).
//!
//! The ladder is **certificate-driven**, not just error-driven: a direct
//! solve that returns finite numbers must still pass its
//! [`SolveCertificate`] (forward-error bound
//! `cond × backward_error ≤` [`crate::certificate::CERTIFY_BOUND`],
//! with iterative refinement attempted first). A solution that stays
//! [`Suspect`](crate::certificate::CertStatus::Suspect) is treated as a
//! retryable breakdown ([`LinalgError::CertificationFailed`]) and
//! escalated exactly like a failed factorization — extra diagonal
//! loading lowers κ, which is what shrinks the failed bound.
//!
//! Every step taken is recorded in a [`RobustSolveReport`] so callers —
//! and ultimately `FitReport` in `srda-core` — can surface what happened
//! instead of silently returning a subtly different model. The chain is
//! *bounded*: it never loops, and non-retryable errors (shape mismatches,
//! invalid dimensions) propagate immediately.

use crate::certificate::{certify_operator, SolveCertificate};
use crate::governor::{Interrupt, RunGovernor};
use crate::lsqr::{lsqr_controlled, LsqrConfig, SolveControls, StopReason};
use crate::operator::ExecDense;
use crate::ridge::{RidgeForm, RidgeSolver};
use srda_linalg::{Executor, LinalgError, Mat, Result};

/// Knobs for the [`RobustRidge`] recovery chain.
#[derive(Debug, Clone)]
pub struct RobustConfig {
    /// Maximum number of jittered re-factorizations before falling back
    /// to LSQR (step 2 of the ladder). `0` disables jitter retries.
    pub max_jitter_retries: usize,
    /// Multiplicative escalation between consecutive jitter attempts.
    pub jitter_factor: f64,
    /// Iteration budget for the LSQR fallback (step 3).
    pub fallback_max_iter: usize,
    /// Convergence tolerance for the LSQR fallback.
    pub fallback_tol: f64,
    /// Iterative-refinement step budget used when a direct solution's
    /// certificate fails its forward-error bound (see
    /// [`crate::certificate`]). `0` disables refinement, making any
    /// bound failure escalate immediately.
    pub max_refine_steps: usize,
}

impl Default for RobustConfig {
    fn default() -> Self {
        RobustConfig {
            max_jitter_retries: 3,
            jitter_factor: 10.0,
            fallback_max_iter: 500,
            fallback_tol: 1e-10,
            max_refine_steps: 3,
        }
    }
}

/// Which rung of the escalation ladder produced the returned weights.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SolverUsed {
    /// The plain direct solve succeeded — no recovery needed.
    Direct,
    /// A direct solve succeeded after adding `jitter` to the Gram
    /// diagonal (on top of the requested `α`).
    DirectJittered {
        /// Extra diagonal loading that made the factorization succeed.
        jitter: f64,
    },
    /// All factorizations failed; the damped LSQR fallback produced the
    /// weights.
    LsqrFallback,
}

/// One recovery step taken during a [`RobustRidge::solve`] call.
#[derive(Debug, Clone, PartialEq)]
pub enum RecoveryAction {
    /// A re-factorization with `jitter` extra diagonal loading was
    /// attempted (successfully or not — see the paired warning).
    JitterRetry {
        /// Extra diagonal loading used for this attempt.
        jitter: f64,
    },
    /// The damped LSQR fallback was engaged.
    LsqrFallback,
}

/// What happened during a [`RobustRidge::solve`] call.
#[derive(Debug, Clone)]
pub struct RobustSolveReport {
    /// The ladder rung that produced the returned weights.
    pub solver: SolverUsed,
    /// Recovery steps taken, in order. Empty on the happy path.
    pub actions: Vec<RecoveryAction>,
    /// Human-readable descriptions of every breakdown and recovery.
    /// Empty on the happy path.
    pub warnings: Vec<String>,
    /// Condition-number estimate of the successfully factored Gram
    /// matrix ([`RidgeSolver::condition_estimate`]); `None` when the
    /// LSQR fallback produced the weights.
    pub condition_estimate: Option<f64>,
    /// Normal-equation form that was factored; `None` for the LSQR
    /// fallback.
    pub form: Option<RidgeForm>,
    /// One [`SolveCertificate`] per response column of the returned
    /// weights (direct path: Rigal–Gaches backward error against the
    /// factored system; fallback path: post-hoc operator certificate).
    /// Empty only when the solve was interrupted before completing.
    pub certificates: Vec<SolveCertificate>,
}

impl RobustSolveReport {
    /// `true` when the plain direct solve succeeded with no recovery.
    pub fn clean(&self) -> bool {
        self.solver == SolverUsed::Direct && self.warnings.is_empty()
    }
}

/// A ridge solver with the bounded fallback chain described in the
/// module docs.
#[derive(Debug, Clone, Default)]
pub struct RobustRidge {
    cfg: RobustConfig,
    exec: Executor,
}

/// Is this an error the jitter/fallback ladder can plausibly fix with
/// more diagonal loading? Certification failures are retryable: extra
/// diagonal loading lowers κ, which is exactly what shrinks the failed
/// forward-error bound.
pub fn retryable(e: &LinalgError) -> bool {
    matches!(
        e,
        LinalgError::NotPositiveDefinite { .. }
            | LinalgError::Singular { .. }
            | LinalgError::NonFinite { .. }
            | LinalgError::CertificationFailed { .. }
    )
}

/// Outcome of one [`factor_ladder`] walk: the surviving attempt (if any)
/// plus the paper trail accumulated along the way.
#[derive(Debug, Clone)]
pub struct LadderOutcome<T> {
    /// The successful attempt's value and the extra diagonal loading that
    /// made it succeed (`0.0` for the plain direct attempt); `None` when
    /// every attempt broke down retryably.
    pub value: Option<(T, f64)>,
    /// One [`RecoveryAction::JitterRetry`] per jittered attempt, in order.
    pub actions: Vec<RecoveryAction>,
    /// Human-readable breakdown/recovery descriptions, in order.
    pub warnings: Vec<String>,
    /// `Some(reason)` when a [`RunGovernor`] stopped the ladder between
    /// attempts (see [`factor_ladder_governed`]); `value` is `None` in
    /// that case.
    pub interrupted: Option<Interrupt>,
}

/// Walk the direct → escalating-jitter factorization ladder shared by
/// [`RobustRidge::solve`] (dense data) and srda-core's sparse dual path,
/// so both produce byte-identical diagnostics.
///
/// `attempt` receives the **total** extra diagonal loading to apply:
/// `0.0` for the direct try, then `base_jitter * jitter_factor^(k−1)` for
/// retry `k ∈ 1..=max_retries`. Retryable breakdowns (see [`retryable`])
/// are recorded and escalated; any other error propagates immediately.
pub fn factor_ladder<T>(
    alpha: f64,
    base_jitter: f64,
    max_retries: usize,
    jitter_factor: f64,
    what: &str,
    attempt: impl FnMut(f64) -> Result<T>,
) -> Result<LadderOutcome<T>> {
    factor_ladder_governed(
        alpha,
        base_jitter,
        max_retries,
        jitter_factor,
        what,
        None,
        attempt,
    )
}

/// [`factor_ladder`] under a [`RunGovernor`]: each factorization attempt
/// is an O(n³) stage, so the budget is probed (without consuming an
/// iteration) before every attempt. An interrupt ends the walk with
/// [`LadderOutcome::interrupted`] set and no value — callers surface the
/// partial state rather than starting another expensive attempt.
pub fn factor_ladder_governed<T>(
    alpha: f64,
    base_jitter: f64,
    max_retries: usize,
    jitter_factor: f64,
    what: &str,
    governor: Option<&RunGovernor>,
    mut attempt: impl FnMut(f64) -> Result<T>,
) -> Result<LadderOutcome<T>> {
    let mut out = LadderOutcome {
        value: None,
        actions: Vec::new(),
        warnings: Vec::new(),
        interrupted: None,
    };
    if let Some(reason) = governor.and_then(|g| g.probe()) {
        out.interrupted = Some(reason);
        return Ok(out);
    }
    match attempt(0.0) {
        Ok(v) => {
            out.value = Some((v, 0.0));
            return Ok(out);
        }
        Err(e) if retryable(&e) => out
            .warnings
            .push(format!("{what} failed (α = {alpha:e}): {e}")),
        Err(e) => return Err(e),
    }
    for retry in 1..=max_retries {
        if let Some(reason) = governor.and_then(|g| g.probe()) {
            out.interrupted = Some(reason);
            out.warnings.push(format!(
                "recovery ladder stopped before retry {retry}: {reason}"
            ));
            return Ok(out);
        }
        let jitter = base_jitter * jitter_factor.powi(retry as i32 - 1);
        out.actions.push(RecoveryAction::JitterRetry { jitter });
        match attempt(jitter) {
            Ok(v) => {
                out.warnings.push(format!(
                    "recovered with diagonal jitter {jitter:e} on retry {retry}"
                ));
                out.value = Some((v, jitter));
                return Ok(out);
            }
            Err(e) if retryable(&e) => out.warnings.push(format!(
                "jitter retry {retry} (jitter {jitter:e}) failed: {e}"
            )),
            Err(e) => return Err(e),
        }
    }
    Ok(out)
}

impl RobustRidge {
    /// Build a chain with the given configuration.
    pub fn new(cfg: RobustConfig) -> Self {
        Self::with_executor(cfg, Executor::serial())
    }

    /// Build a chain whose direct solves and LSQR fallback products run
    /// on the given execution backend.
    pub fn with_executor(cfg: RobustConfig, exec: Executor) -> Self {
        RobustRidge { cfg, exec }
    }

    /// Factor `x` with ridge `alpha_eff`, solve for all responses with
    /// per-column certification (refining in place when a bound fails),
    /// and verify the result is finite. Any retryable breakdown — a
    /// factorization error, a non-finite solution, or a certificate that
    /// stays [`Suspect`](crate::certificate::CertStatus::Suspect) after
    /// refinement — comes back as `Err` so the ladder escalates.
    fn try_direct(
        &self,
        x: &Mat,
        y: &Mat,
        alpha_eff: f64,
    ) -> Result<(Mat, RidgeForm, f64, Vec<SolveCertificate>)> {
        let solver = RidgeSolver::auto_exec(x, alpha_eff, self.exec)?;
        let (w, certs) = solver.solve_certified(x, y, self.cfg.max_refine_steps)?;
        if !w.as_slice().iter().all(|v| v.is_finite()) {
            return Err(LinalgError::NonFinite {
                context: "ridge solution",
            });
        }
        if let Some(bad) = certs.iter().find(|c| c.is_suspect()) {
            return Err(LinalgError::CertificationFailed {
                error_bound: bad.error_bound(),
            });
        }
        // every certificate of one factorization shares the same Hager κ
        let cond = certs.first().map_or(1.0, |c| c.cond_estimate);
        Ok((w, solver.form(), cond, certs))
    }

    /// Jitter schedule: the extra diagonal loading for retry `attempt`
    /// (1-based). Scales with `α` when one was requested, otherwise with
    /// the squared magnitude of the data so the loading is meaningful
    /// relative to the Gram diagonal.
    fn jitter_for(&self, x: &Mat, alpha: f64, attempt: usize) -> f64 {
        let base = if alpha > 0.0 {
            alpha * self.cfg.jitter_factor
        } else {
            let scale = x.max_abs().powi(2).max(1.0);
            1e-10 * scale
        };
        base * self.cfg.jitter_factor.powi(attempt as i32 - 1)
    }

    /// Solve `min ‖X·W − Y‖² + α‖W‖²` for all columns of `y`, walking
    /// the recovery ladder as needed.
    ///
    /// Returns the weights (`n × k`) plus a [`RobustSolveReport`]
    /// recording every recovery taken. `Err` is returned only when the
    /// final LSQR fallback itself diverges (or for non-retryable errors
    /// such as shape mismatches, which indicate caller bugs rather than
    /// numerical breakdown).
    pub fn solve(&self, x: &Mat, y: &Mat, alpha: f64) -> Result<(Mat, RobustSolveReport)> {
        match self.solve_governed(x, y, alpha, None)? {
            RobustOutcome::Solved(w, report) => Ok((w, report)),
            // an absent governor never interrupts
            RobustOutcome::Interrupted { .. } => unreachable!("ungoverned solve interrupted"),
        }
    }

    /// [`RobustRidge::solve`] under a [`RunGovernor`]: the budget is
    /// probed before each factorization attempt (via
    /// [`factor_ladder_governed`]) and ticked inside every LSQR fallback
    /// iteration. Interruption is a typed outcome, not an error — the
    /// report still carries everything that happened up to the stop.
    pub fn solve_governed(
        &self,
        x: &Mat,
        y: &Mat,
        alpha: f64,
        governor: Option<&RunGovernor>,
    ) -> Result<RobustOutcome> {
        let mut report = RobustSolveReport {
            solver: SolverUsed::Direct,
            actions: Vec::new(),
            warnings: Vec::new(),
            condition_estimate: None,
            form: None,
            certificates: Vec::new(),
        };

        // Rungs 1 + 2: the shared direct → escalating-jitter ladder
        // (also used by srda-core's sparse dual path).
        let rec = self.exec.recorder();
        let ladder_span = srda_obs::span!(rec, "ridge/ladder");
        let outcome = factor_ladder_governed(
            alpha,
            self.jitter_for(x, alpha, 1),
            self.cfg.max_jitter_retries,
            self.cfg.jitter_factor,
            "direct solve",
            governor,
            |jitter| self.try_direct(x, y, alpha + jitter),
        )?;
        ladder_span.finish();
        // one direct attempt plus one per recorded jitter retry
        rec.add("ladder.attempts", 1 + outcome.actions.len() as u64);
        report.actions = outcome.actions;
        report.warnings = outcome.warnings;
        if let Some(reason) = outcome.interrupted {
            return Ok(RobustOutcome::Interrupted { reason, report });
        }
        if let Some(((w, form, cond, certs), jitter)) = outcome.value {
            if jitter > 0.0 {
                report.solver = SolverUsed::DirectJittered { jitter };
            }
            report.condition_estimate = Some(cond);
            report.form = Some(form);
            report.certificates = certs;
            return Ok(RobustOutcome::Solved(w, report));
        }

        // Rung 3: damped LSQR, one response column at a time. Never
        // forms the Gram matrix, so the breakdowns above cannot recur;
        // rank deficiency yields the minimum-norm solution.
        report.actions.push(RecoveryAction::LsqrFallback);
        report.solver = SolverUsed::LsqrFallback;
        rec.add("ladder.lsqr_fallback", 1);
        let cfg = LsqrConfig {
            damp: alpha.sqrt(),
            max_iter: self.cfg.fallback_max_iter,
            tol: self.cfg.fallback_tol,
        };
        let op = ExecDense::new(x, self.exec);
        let mut w = Mat::zeros(x.ncols(), y.ncols());
        for j in 0..y.ncols() {
            let _span = srda_obs::span!(rec, "ridge/fallback/response[{j}]/lsqr");
            let trace = rec.solver_trace(format!("ridge/fallback/response[{j}]/lsqr"));
            if let Some(t) = &trace {
                t.set_backend(self.exec.backend_name());
            }
            let ctl = SolveControls {
                governor,
                telemetry: trace.as_ref(),
                ..SolveControls::default()
            };
            let r = lsqr_controlled(&op, &y.col(j), &cfg, &ctl);
            match r.stop {
                StopReason::Diverged => {
                    return Err(LinalgError::NonFinite {
                        context: "robust ridge: LSQR fallback diverged",
                    });
                }
                StopReason::MaxIterations => {
                    report.warnings.push(format!(
                        "LSQR fallback hit the {} iteration budget on response {j} \
                         (residual {:.3e})",
                        self.cfg.fallback_max_iter, r.residual_norm
                    ));
                }
                StopReason::Interrupted(reason) => {
                    report.warnings.push(format!(
                        "LSQR fallback interrupted on response {j} after {} iterations: {reason}",
                        r.iterations
                    ));
                    return Ok(RobustOutcome::Interrupted { reason, report });
                }
                _ => {}
            }
            // Post-hoc certificate from the final iterate: deterministic in
            // r.x, so serial/threaded runs certify identically.
            let cert = certify_operator(&op, &y.col(j), &r.x, cfg.damp);
            if cert.is_suspect() {
                report.warnings.push(format!(
                    "LSQR fallback solution for response {j} failed certification \
                     (relative NE residual {:.3e})",
                    cert.backward_error
                ));
            }
            report.certificates.push(cert);
            w.set_col(j, &r.x);
        }
        report
            .warnings
            .push("all factorizations failed; weights computed by damped LSQR".to_string());
        Ok(RobustOutcome::Solved(w, report))
    }
}

/// Outcome of a governed [`RobustRidge::solve_governed`] call.
#[derive(Debug, Clone)]
pub enum RobustOutcome {
    /// The solve ran to completion (possibly via recovery rungs).
    Solved(Mat, RobustSolveReport),
    /// A [`RunGovernor`] stopped the solve; the report records how far it
    /// got. Direct solves have no resumable state — rerun when budget
    /// allows.
    Interrupted {
        /// Why the governor stopped the solve.
        reason: Interrupt,
        /// Ladder progress up to the interruption.
        report: RobustSolveReport,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noise_mat(m: usize, n: usize) -> Mat {
        Mat::from_fn(m, n, |i, j| {
            let x = (i as f64 * 91.17 + j as f64 * 13.73).sin() * 43758.5453;
            x - x.floor() - 0.5
        })
    }

    fn ridge_oracle(x: &Mat, y: &Mat, alpha: f64) -> Mat {
        RidgeSolver::auto(x, alpha).unwrap().solve(x, y).unwrap()
    }

    #[test]
    fn clean_problem_takes_the_direct_path() {
        let x = noise_mat(15, 6);
        let y = Mat::from_fn(15, 2, |i, j| ((i + 2 * j) as f64 * 0.31).sin());
        let (w, rep) = RobustRidge::default().solve(&x, &y, 0.5).unwrap();
        assert!(rep.clean());
        assert_eq!(rep.solver, SolverUsed::Direct);
        assert!(rep.actions.is_empty());
        assert_eq!(rep.form, Some(RidgeForm::Primal));
        assert!(rep.condition_estimate.unwrap() >= 1.0);
        assert!(w.approx_eq(&ridge_oracle(&x, &y, 0.5), 1e-12));
    }

    #[test]
    fn clean_path_attaches_certified_certificates() {
        use crate::certificate::{CertStatus, CERTIFY_BOUND};
        let x = noise_mat(15, 6);
        let y = Mat::from_fn(15, 2, |i, j| ((i + 2 * j) as f64 * 0.31).sin());
        let (_, rep) = RobustRidge::default().solve(&x, &y, 0.5).unwrap();
        assert!(rep.clean());
        assert_eq!(rep.certificates.len(), 2);
        for c in &rep.certificates {
            assert_eq!(c.certified, CertStatus::Certified);
            assert_eq!(c.refinement_steps, 0);
            assert!(c.error_bound() <= CERTIFY_BOUND);
            assert_eq!(c.cond_estimate, rep.condition_estimate.unwrap());
        }
    }

    #[test]
    fn graded_spectrum_escalates_on_certification_not_breakdown() {
        // Columns scaled by 10⁻ʲ make κ(XᵀX) ≈ 10¹⁴·O(10): the Cholesky
        // factorization *succeeds* (graded matrices factor fine), but the
        // forward-error bound κ·η fails, so the ladder must escalate via
        // CertificationFailed and land on a jittered, certified solve.
        let m = 16;
        let n = 8;
        let x = Mat::from_fn(m, n, |i, j| {
            let t = (i as f64 * 91.17 + j as f64 * 13.73).sin() * 43758.5453;
            (t - t.floor() - 0.5) * 10f64.powi(-(j as i32))
        });
        let y = Mat::from_fn(m, 1, |i, _| ((i as f64) * 0.4).cos());
        // the un-certified direct factorization itself does not break down
        assert!(RidgeSolver::primal(&x, 0.0).is_ok());
        let (w, rep) = RobustRidge::default().solve(&x, &y, 0.0).unwrap();
        assert!(!rep.clean());
        assert!(
            matches!(rep.solver, SolverUsed::DirectJittered { .. }),
            "expected jitter escalation, got {:?}",
            rep.solver
        );
        assert!(rep
            .warnings
            .iter()
            .any(|w| w.contains("failed certification")));
        assert!(!rep.certificates.is_empty());
        assert!(rep.certificates.iter().all(|c| !c.is_suspect()));
        assert!(w.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn rank_deficient_alpha_zero_recovers_instead_of_erroring() {
        // an all-zero feature column with α = 0: the plain direct solve
        // fails (see ridge::tests::alpha_zero_requires_full_rank_primal),
        // but the chain must produce finite weights plus a warning
        let col = noise_mat(12, 1);
        let x = col.hcat(&Mat::zeros(12, 1)).unwrap();
        let y = Mat::from_fn(12, 1, |i, _| (i as f64 * 0.4).cos());
        assert!(RidgeSolver::primal(&x, 0.0).is_err());
        let (w, rep) = RobustRidge::default().solve(&x, &y, 0.0).unwrap();
        assert!(!rep.clean());
        assert_ne!(rep.solver, SolverUsed::Direct);
        assert!(!rep.warnings.is_empty());
        assert!(w.as_slice().iter().all(|v| v.is_finite()));
        // the recovered solution still fits the well-posed part: compare
        // against the tiny-ridge oracle on the nonzero column
        let oracle = ridge_oracle(&x, &y, 1e-8);
        assert!((w.as_slice()[0] - oracle.as_slice()[0]).abs() < 1e-3);
    }

    #[test]
    fn jitter_schedule_escalates_by_the_configured_factor() {
        let x = noise_mat(4, 4);
        let chain = RobustRidge::default();
        let j1 = chain.jitter_for(&x, 0.01, 1);
        let j2 = chain.jitter_for(&x, 0.01, 2);
        let j3 = chain.jitter_for(&x, 0.01, 3);
        assert!((j1 - 0.1).abs() < 1e-15);
        assert!((j2 / j1 - 10.0).abs() < 1e-9);
        assert!((j3 / j2 - 10.0).abs() < 1e-9);
        // α = 0 uses a data-scaled base instead
        assert!(chain.jitter_for(&x, 0.0, 1) > 0.0);
    }

    #[test]
    fn ladder_escalates_and_records_schedule() {
        let mut calls = Vec::new();
        let out = factor_ladder(0.5, 2.0, 3, 10.0, "unit factor", |j| {
            calls.push(j);
            if j < 100.0 {
                Err(LinalgError::Singular { pivot: 0 })
            } else {
                Ok(j)
            }
        })
        .unwrap();
        // total jitter per attempt: direct, then base · factor^(k−1)
        assert_eq!(calls, vec![0.0, 2.0, 20.0, 200.0]);
        assert_eq!(out.value, Some((200.0, 200.0)));
        assert_eq!(out.actions.len(), 3);
        assert_eq!(out.warnings.len(), 4); // direct fail + 2 retry fails + recovery
        assert!(out.warnings[0].starts_with("unit factor failed (α = 5e-1)"));
        assert!(out.warnings.last().unwrap().contains("on retry 3"));
    }

    #[test]
    fn ladder_exhaustion_returns_no_value() {
        let out = factor_ladder(1.0, 10.0, 2, 10.0, "unit factor", |_| {
            Err::<(), _>(LinalgError::Singular { pivot: 1 })
        })
        .unwrap();
        assert!(out.value.is_none());
        assert_eq!(out.actions.len(), 2);
        assert_eq!(out.warnings.len(), 3);
    }

    #[test]
    fn ladder_propagates_non_retryable_errors() {
        let err = factor_ladder(1.0, 10.0, 3, 10.0, "unit factor", |_| {
            Err::<(), _>(LinalgError::ShapeMismatch {
                op: "unit",
                lhs: (1, 1),
                rhs: (2, 2),
            })
        })
        .unwrap_err();
        assert!(matches!(err, LinalgError::ShapeMismatch { .. }));
    }

    #[test]
    fn threaded_executor_matches_serial_bitwise() {
        let x = noise_mat(40, 17);
        let y = Mat::from_fn(40, 3, |i, j| ((i + 3 * j) as f64 * 0.21).sin());
        let (ws, _) = RobustRidge::default().solve(&x, &y, 0.3).unwrap();
        for t in [2, 4, 9] {
            let exec = Executor::threaded(t);
            let (wt, rep) = RobustRidge::with_executor(RobustConfig::default(), exec)
                .solve(&x, &y, 0.3)
                .unwrap();
            assert!(rep.clean());
            assert!(ws.approx_eq(&wt, 0.0), "threads = {t}");
        }
    }

    #[test]
    fn non_retryable_errors_propagate() {
        let x = noise_mat(10, 4);
        let y_bad = Mat::from_fn(9, 1, |i, _| i as f64); // wrong row count
        let err = RobustRidge::default().solve(&x, &y_bad, 0.1).unwrap_err();
        assert!(matches!(err, LinalgError::ShapeMismatch { .. }));
    }

    #[test]
    fn governed_solve_with_spent_budget_interrupts_before_factoring() {
        use crate::governor::{RunBudget, RunGovernor};
        let x = noise_mat(10, 4);
        let y = Mat::from_fn(10, 1, |i, _| i as f64 * 0.1);
        let g = RunGovernor::with_budget(RunBudget::with_max_wall(std::time::Duration::ZERO));
        let out = RobustRidge::default()
            .solve_governed(&x, &y, 0.5, Some(&g))
            .unwrap();
        match out {
            RobustOutcome::Interrupted { reason, report } => {
                assert_eq!(reason, Interrupt::DeadlineExceeded);
                assert!(report.actions.is_empty());
            }
            RobustOutcome::Solved(..) => panic!("expected interruption"),
        }
    }

    #[test]
    fn governed_solve_with_headroom_completes_normally() {
        use crate::governor::RunGovernor;
        let x = noise_mat(15, 6);
        let y = Mat::from_fn(15, 2, |i, j| ((i + 2 * j) as f64 * 0.31).sin());
        let g = RunGovernor::unbounded();
        let out = RobustRidge::default()
            .solve_governed(&x, &y, 0.5, Some(&g))
            .unwrap();
        match out {
            RobustOutcome::Solved(w, rep) => {
                assert!(rep.clean());
                assert!(w.approx_eq(&ridge_oracle(&x, &y, 0.5), 1e-12));
            }
            RobustOutcome::Interrupted { .. } => panic!("unbounded governor interrupted"),
        }
    }

    #[test]
    fn governed_ladder_stops_between_retries() {
        use crate::governor::{CancelToken, RunBudget, RunGovernor};
        let token = CancelToken::new();
        let g = RunGovernor::new(RunBudget::unbounded(), token.clone());
        let mut calls = 0usize;
        let out = factor_ladder_governed(0.5, 2.0, 3, 10.0, "unit factor", Some(&g), |_| {
            calls += 1;
            // cancel lands while the first attempt is "running"
            token.cancel();
            Err::<(), _>(LinalgError::Singular { pivot: 0 })
        })
        .unwrap();
        assert_eq!(calls, 1, "no retry after cancellation");
        assert_eq!(out.interrupted, Some(Interrupt::Cancelled));
        assert!(out.value.is_none());
        assert!(out
            .warnings
            .iter()
            .any(|w| w.contains("stopped before retry")));
    }

    #[cfg(feature = "failpoints")]
    mod failpoints {
        use super::*;
        use srda_linalg::failpoint;

        #[test]
        fn forced_singular_recovers_via_jitter_retry() {
            failpoint::reset();
            let x = noise_mat(15, 6);
            let y = Mat::from_fn(15, 2, |i, j| ((i + j) as f64 * 0.23).sin());
            // fail the first factorization only: retry 1 succeeds
            failpoint::arm("cholesky.singular", 1);
            let (w, rep) = RobustRidge::default().solve(&x, &y, 0.5).unwrap();
            failpoint::reset();
            assert!(matches!(rep.solver, SolverUsed::DirectJittered { .. }));
            assert_eq!(rep.actions.len(), 1);
            assert!(matches!(rep.actions[0], RecoveryAction::JitterRetry { .. }));
            assert_eq!(rep.warnings.len(), 2); // failure + recovery
            assert!(w.as_slice().iter().all(|v| v.is_finite()));
            // jittered α = 0.5 + 5.0: must match that oracle exactly
            assert!(w.approx_eq(&ridge_oracle(&x, &y, 5.5), 1e-10));
        }

        #[test]
        fn inflated_condition_estimate_escalates_the_ladder() {
            failpoint::reset();
            let x = noise_mat(15, 6);
            let y = Mat::from_fn(15, 2, |i, j| ((i + j) as f64 * 0.23).sin());
            // Poison only the first factorization's Hager estimate: the
            // direct solve succeeds numerically but fails certification,
            // and retry 1 (clean estimate) must certify.
            failpoint::arm("cond.inflate", 1);
            let (w, rep) = RobustRidge::default().solve(&x, &y, 0.5).unwrap();
            let fired = failpoint::fired("cond.inflate");
            failpoint::reset();
            assert_eq!(fired, 1);
            assert!(matches!(rep.solver, SolverUsed::DirectJittered { .. }));
            assert_eq!(rep.actions.len(), 1);
            assert!(rep.warnings[0].contains("failed certification"));
            assert!(rep.certificates.iter().all(|c| !c.is_suspect()));
            // jittered α = 0.5 + 5.0, same rung as a forced factor failure
            assert!(w.approx_eq(&ridge_oracle(&x, &y, 5.5), 1e-10));
        }

        #[test]
        fn exhausted_retries_fall_back_to_lsqr() {
            failpoint::reset();
            let x = noise_mat(15, 6);
            let y = Mat::from_fn(15, 2, |i, j| ((i + j) as f64 * 0.23).sin());
            // direct + all 3 jitter retries fail
            failpoint::arm("cholesky.singular", 4);
            let (w, rep) = RobustRidge::default().solve(&x, &y, 0.5).unwrap();
            failpoint::reset();
            assert_eq!(rep.solver, SolverUsed::LsqrFallback);
            assert_eq!(rep.actions.len(), 4);
            assert_eq!(*rep.actions.last().unwrap(), RecoveryAction::LsqrFallback);
            assert!(rep.condition_estimate.is_none());
            // LSQR solves the *un-jittered* problem: compare to the α = 0.5 oracle
            assert!(
                w.approx_eq(&ridge_oracle(&x, &y, 0.5), 1e-6),
                "fallback drifted: {:e}",
                w.sub(&ridge_oracle(&x, &y, 0.5)).unwrap().max_abs()
            );
        }
    }
}
