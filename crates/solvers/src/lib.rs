//! # srda-solvers
//!
//! Regularized least-squares machinery for the SRDA reproduction.
//!
//! SRDA reduces LDA to `c − 1` ridge-regression problems
//! `min ‖Xᵀa − ȳ‖² + α‖a‖²` (paper Eqn 14/19). This crate provides every
//! way the paper solves them:
//!
//! * [`operator::LinearOperator`] — the minimal matrix-free interface
//!   (`A·v` and `Aᵀ·v`) that iterative solvers need. Implemented for dense
//!   [`srda_linalg::Mat`], sparse [`srda_sparse::CsrMatrix`], and two
//!   wrappers: [`operator::AugmentedOp`] (appends the implicit bias column
//!   of the paper's §III.B trick without copying the data) and
//!   [`operator::CenteredOp`] (applies `X − 1μᵀ` implicitly, never
//!   densifying a sparse matrix).
//! * [`lsqr`] — the LSQR algorithm of Paige & Saunders (ACM TOMS 1982)
//!   with damping `√α`, the paper's linear-time engine (§III.C.2).
//! * [`cgls`] — conjugate-gradient on the regularized normal equations,
//!   a second iterative engine used for cross-checks and ablations.
//! * [`ridge`] — direct solvers: primal normal equations
//!   `(XᵀX + αI)a = Xᵀȳ` via Cholesky, and the dual form
//!   `(XXᵀ + αI)u = ȳ, a = Xᵀu` (paper Eqn 21) that is cheaper when
//!   `n > m`. An `auto` entry point picks the smaller system.
//! * [`robust`] — a fault-tolerant wrapper around the direct solvers:
//!   on `Singular`/non-finite breakdown *or a failed solution
//!   certificate* it retries with bounded escalating diagonal jitter and
//!   finally falls back to damped LSQR, reporting every recovery step it
//!   took.
//! * [`certificate`] — machine-checkable [`SolveCertificate`]s: a
//!   backward error × condition estimate forward-error bound for direct
//!   solves (with iterative refinement as the repair step) and a
//!   post-hoc normal-equation-residual certificate for matrix-free
//!   solves.
//! * [`governor`] — wall-clock/iteration budgets and cooperative
//!   cancellation ([`RunGovernor`]/[`CancelToken`]), checked inside every
//!   iterative loop and before every expensive factorization attempt.
//! * [`checkpoint`] — CRC-guarded, atomically-written solver state
//!   ([`LsqrCheckpoint`]/`CglsCheckpoint`) that resumes an interrupted
//!   solve to a bitwise-identical trajectory.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod certificate;
pub mod cgls;
pub mod checkpoint;
pub mod governor;
pub mod lsqr;
pub mod operator;
pub mod ridge;
pub mod robust;

pub use certificate::{
    certify_operator, certify_spd_solve, worst_backward_error, CertStatus, SolveCertificate,
    CERTIFY_BOUND, CERTIFY_RESIDUAL,
};
pub use checkpoint::{CglsCheckpoint, CheckpointError, LsqrCheckpoint, ProblemFingerprint};
pub use governor::{CancelToken, Interrupt, RunBudget, RunGovernor};
pub use lsqr::{
    lsqr, lsqr_controlled, lsqr_warm, lsqr_warm_governed, LsqrConfig, LsqrResult, SolveControls,
    StopReason,
};
pub use operator::{AugmentedOp, CenteredOp, ExecCsr, ExecDense, LinearOperator};
pub use ridge::{RidgeForm, RidgeSolver};
pub use robust::{
    factor_ladder, factor_ladder_governed, LadderOutcome, RecoveryAction, RobustConfig,
    RobustOutcome, RobustRidge, RobustSolveReport, SolverUsed,
};
