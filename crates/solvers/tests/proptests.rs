//! Property-based tests: every solver in this crate answers the same
//! question — `argmin ‖Ax − b‖² + α‖x‖²` — so on random well-posed inputs
//! they must all agree with the Cholesky oracle and with each other.

use proptest::prelude::*;
use srda_linalg::ops::{gram, matvec_t};
use srda_linalg::{Cholesky, Mat};
use srda_solvers::cgls::{cgls, CglsConfig};
use srda_solvers::lsqr::{lsqr, LsqrConfig};
use srda_solvers::ridge::RidgeSolver;
use srda_solvers::{AugmentedOp, CenteredOp, LinearOperator};

fn problem_strategy() -> impl Strategy<Value = (Mat, Vec<f64>, f64)> {
    (2usize..12, 2usize..12, 0.05f64..4.0).prop_flat_map(|(m, n, alpha)| {
        let mat = proptest::collection::vec(-3.0f64..3.0, m * n)
            .prop_map(move |d| Mat::from_vec(m, n, d).unwrap());
        let rhs = proptest::collection::vec(-3.0f64..3.0, m);
        (mat, rhs, Just(alpha))
    })
}

fn oracle(a: &Mat, b: &[f64], alpha: f64) -> Vec<f64> {
    let mut g = gram(a);
    g.add_to_diag(alpha);
    let atb = matvec_t(a, b).unwrap();
    Cholesky::factor(&g).unwrap().solve(&atb).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn lsqr_matches_cholesky_oracle((a, b, alpha) in problem_strategy()) {
        let r = lsqr(&a, &b, &LsqrConfig { damp: alpha.sqrt(), max_iter: 500, tol: 0.0 });
        let want = oracle(&a, &b, alpha);
        let scale = srda_linalg::vector::norm2(&want).max(1.0);
        for (u, v) in r.x.iter().zip(&want) {
            prop_assert!((u - v).abs() < 1e-6 * scale, "{u} vs {v}");
        }
    }

    #[test]
    fn cgls_matches_cholesky_oracle((a, b, alpha) in problem_strategy()) {
        let r = cgls(&a, &b, &CglsConfig { alpha, max_iter: 500, tol: 1e-14 });
        let want = oracle(&a, &b, alpha);
        let scale = srda_linalg::vector::norm2(&want).max(1.0);
        for (u, v) in r.x.iter().zip(&want) {
            prop_assert!((u - v).abs() < 1e-6 * scale, "{u} vs {v}");
        }
    }

    #[test]
    fn primal_dual_equivalence((a, b, alpha) in problem_strategy()) {
        let y = Mat::from_vec(b.len(), 1, b.clone()).unwrap();
        let wp = RidgeSolver::primal(&a, alpha).unwrap().solve(&a, &y).unwrap();
        let wd = RidgeSolver::dual(&a, alpha).unwrap().solve(&a, &y).unwrap();
        prop_assert!(
            wp.approx_eq(&wd, 1e-6 * wp.max_abs().max(1.0)),
            "max diff {}", wp.sub(&wd).unwrap().max_abs()
        );
    }

    #[test]
    fn augmented_operator_equals_explicit_column((a, b, _alpha) in problem_strategy()) {
        let aug = AugmentedOp::new(&a);
        let explicit = a.append_constant_col(1.0);
        let x: Vec<f64> = (0..aug.ncols()).map(|i| (i as f64 * 0.83).sin()).collect();
        let y1 = aug.apply(&x);
        let y2 = LinearOperator::apply(&explicit, &x);
        for (u, v) in y1.iter().zip(&y2) {
            prop_assert!((u - v).abs() < 1e-10);
        }
        let t1 = aug.apply_t(&b);
        let t2 = LinearOperator::apply_t(&explicit, &b);
        for (u, v) in t1.iter().zip(&t2) {
            prop_assert!((u - v).abs() < 1e-10);
        }
    }

    #[test]
    fn centered_operator_equals_explicit_centering((a, b, _alpha) in problem_strategy()) {
        let mu = srda_linalg::stats::col_means(&a);
        let centered = srda_linalg::stats::center_rows(&a, &mu);
        let op = CenteredOp::new(&a, mu);
        let x: Vec<f64> = (0..a.ncols()).map(|i| (i as f64 * 0.59).cos()).collect();
        let y1 = op.apply(&x);
        let y2 = LinearOperator::apply(&centered, &x);
        for (u, v) in y1.iter().zip(&y2) {
            prop_assert!((u - v).abs() < 1e-9);
        }
        let t1 = op.apply_t(&b);
        let t2 = LinearOperator::apply_t(&centered, &b);
        for (u, v) in t1.iter().zip(&t2) {
            prop_assert!((u - v).abs() < 1e-9);
        }
    }

    #[test]
    fn warm_start_converges_to_same_ridge_solution((a, b, alpha) in problem_strategy()) {
        let cfg = LsqrConfig { damp: alpha.sqrt(), max_iter: 600, tol: 1e-13 };
        let cold = lsqr(&a, &b, &cfg);
        // arbitrary warm start — unique ridge minimum means same answer
        let x0: Vec<f64> = (0..a.ncols()).map(|i| (i as f64 * 0.77).sin() * 2.0).collect();
        let warm = srda_solvers::lsqr::lsqr_warm(&a, &b, &x0, &cfg);
        let scale = srda_linalg::vector::norm2(&cold.x).max(1.0);
        for (u, v) in warm.x.iter().zip(&cold.x) {
            prop_assert!((u - v).abs() < 1e-5 * scale, "{u} vs {v}");
        }
    }

    #[test]
    fn lsqr_through_sparse_equals_dense((a, b, alpha) in problem_strategy()) {
        let s = srda_sparse::CsrMatrix::from_dense(&a, 0.5); // sparsify
        let ds = s.to_dense();
        let cfg = LsqrConfig { damp: alpha.sqrt(), max_iter: 300, tol: 0.0 };
        let r1 = lsqr(&s, &b, &cfg);
        let r2 = lsqr(&ds, &b, &cfg);
        for (u, v) in r1.x.iter().zip(&r2.x) {
            prop_assert!((u - v).abs() < 1e-8);
        }
    }
}
