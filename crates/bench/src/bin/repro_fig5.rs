//! Reproduces **Figure 5** (a–h): SRDA's test error as a function of the
//! regularization parameter, plotted as α/(1+α) ∈ [0, 1], against the
//! constant LDA and IDR/QR reference lines.
//!
//! Paper panels: PIE (10, 30 train), Isolet (50, 90), MNIST (30, 100),
//! 20Newsgroups (5%, 10%). The paper's conclusion — SRDA beats both
//! references over a broad range of α, so parameter selection "is not a
//! very crucial problem" — should be visible as a wide flat valley.

use srda::{SrdaConfig, SrdaSolver};
use srda_bench::driver::{env_scale, env_splits};
use srda_bench::report::render_table;
use srda_data::{per_class_split, ratio_split};
use srda_eval::{run_dense, run_sparse, Aggregate, Algo};

fn alpha_axis() -> Vec<f64> {
    // α/(1+α) ∈ {0.1, …, 0.9}  ⇒  α = r/(1−r)
    (1..=9)
        .map(|i| {
            let r = i as f64 / 10.0;
            r / (1.0 - r)
        })
        .collect()
}

fn dense_panel(name: &str, data: &srda_data::DenseDataset, l: usize, splits: usize) {
    let alphas = alpha_axis();
    let mut rows = Vec::new();

    // reference lines: LDA and IDR/QR at their default settings
    let ref_err = |algo: &Algo| {
        let vals: Vec<f64> = (0..splits)
            .filter_map(|s| {
                let sp = per_class_split(&data.labels, l, s as u64);
                let tr = data.select(&sp.train);
                let te = data.select(&sp.test);
                run_dense(
                    algo,
                    &tr.x,
                    &tr.labels,
                    &te.x,
                    &te.labels,
                    data.n_classes,
                    None,
                )
                .error_rate
            })
            .collect();
        Aggregate::from_values(&vals).mean * 100.0
    };
    let lda_err = ref_err(&Algo::Lda);
    let idr_err = ref_err(&Algo::IdrQr { lambda: 1.0 });

    for &alpha in &alphas {
        let cfg = SrdaConfig {
            alpha,
            solver: SrdaSolver::NormalEquations,
            memory_budget_bytes: None,
            parallel_responses: false,
            ..SrdaConfig::default()
        };
        let vals: Vec<f64> = (0..splits)
            .filter_map(|s| {
                let sp = per_class_split(&data.labels, l, s as u64);
                let tr = data.select(&sp.train);
                let te = data.select(&sp.test);
                run_dense(
                    &Algo::Srda(cfg.clone()),
                    &tr.x,
                    &tr.labels,
                    &te.x,
                    &te.labels,
                    data.n_classes,
                    None,
                )
                .error_rate
            })
            .collect();
        let agg = Aggregate::from_values(&vals);
        rows.push(vec![
            format!("{:.1}", alpha / (1.0 + alpha)),
            format!("{:.2}", agg.mean * 100.0),
            format!("{lda_err:.2}"),
            format!("{idr_err:.2}"),
        ]);
    }
    println!(
        "{}",
        render_table(
            &format!("Fig 5 panel [{name}, {l} train/class] (error %)"),
            &["a/(1+a)", "SRDA", "LDA", "IDR/QR"],
            &rows
        )
    );
}

fn sparse_panel(name: &str, data: &srda_data::SparseDataset, frac: f64, splits: usize) {
    let alphas = alpha_axis();
    let mut rows = Vec::new();
    for &alpha in &alphas {
        let cfg = SrdaConfig {
            alpha,
            solver: SrdaSolver::Lsqr {
                max_iter: 15,
                tol: 0.0,
            },
            memory_budget_bytes: None,
            parallel_responses: false,
            ..SrdaConfig::default()
        };
        let vals: Vec<f64> = (0..splits)
            .filter_map(|s| {
                let sp = ratio_split(&data.labels, frac, s as u64);
                let tr = data.select(&sp.train);
                let te = data.select(&sp.test);
                run_sparse(
                    &Algo::Srda(cfg.clone()),
                    &tr.x,
                    &tr.labels,
                    &te.x,
                    &te.labels,
                    data.n_classes,
                    None,
                )
                .error_rate
            })
            .collect();
        let agg = Aggregate::from_values(&vals);
        rows.push(vec![
            format!("{:.1}", alpha / (1.0 + alpha)),
            format!("{:.2}", agg.mean * 100.0),
        ]);
    }
    println!(
        "{}",
        render_table(
            &format!("Fig 5 panel [{name}, {:.0}% train] (error %)", frac * 100.0),
            &["a/(1+a)", "SRDA"],
            &rows
        )
    );
}

fn main() {
    let scale = env_scale();
    let splits = env_splits();

    let pie = srda_data::pie_like(scale, 42);
    let pie_per = pie.x.nrows() / pie.n_classes;
    for l in [10, 30] {
        let l = ((l as f64 * scale).round() as usize).clamp(2, pie_per.saturating_sub(2));
        dense_panel("PIE-like", &pie, l, splits);
    }

    let isolet = srda_data::isolet_like(scale, 42);
    let iso_per = isolet.x.nrows() / isolet.n_classes;
    for l in [50, 90] {
        let l = ((l as f64 * scale).round() as usize).clamp(2, iso_per.saturating_sub(2));
        dense_panel("Isolet-like", &isolet, l, splits);
    }

    let mnist = srda_data::mnist_like(scale, 42);
    let mn_per = mnist.x.nrows() / mnist.n_classes;
    for l in [30, 100] {
        let l = ((l as f64 * scale).round() as usize).clamp(2, mn_per.saturating_sub(2));
        dense_panel("MNIST-like", &mnist, l, splits);
    }

    let news = srda_data::newsgroups_like(scale, 42);
    for frac in [0.05, 0.10] {
        sparse_panel("20NG-like", &news, frac, splits);
    }
}
