//! Ablation studies for the design choices DESIGN.md §8 calls out:
//!
//! 1. **Ridge solver crossover** — primal vs dual normal equations vs
//!    LSQR across aspect ratios `n/m` (the paper's §III.C.1 prescription:
//!    factor whichever Gram matrix is smaller).
//! 2. **SVD method inside LDA** — the paper's cross-product trick vs
//!    one-sided Jacobi: time and accuracy on a graded spectrum.
//! 3. **Centering strategy for sparse data** — §III.B bias trick vs
//!    implicit centering operator vs explicit centering (which densifies):
//!    time and memory footprint.
//! 4. **Warm-started incremental refit** vs cold retraining after a
//!    10% data increment.

use srda::{Srda, SrdaConfig, SrdaSolver};
use srda_bench::report::render_table;
use srda_linalg::{Mat, Svd};
use srda_solvers::lsqr::{lsqr, LsqrConfig};
use srda_solvers::ridge::RidgeSolver;
use srda_solvers::{AugmentedOp, CenteredOp};
use std::time::Instant;

fn noise(m: usize, n: usize, seed: u64) -> Mat {
    Mat::from_fn(m, n, |i, j| {
        let x = (i as f64 * 12.9898 + j as f64 * 78.233 + seed as f64).sin() * 43758.5453;
        x - x.floor() - 0.5
    })
}

fn time_it(f: impl FnOnce()) -> f64 {
    let t = Instant::now();
    f();
    t.elapsed().as_secs_f64()
}

fn ablation_solver_crossover() {
    println!("Ablation 1 — ridge solver crossover (9 responses, alpha = 1)\n");
    let mut rows = Vec::new();
    for &(m, n) in &[(1200usize, 300usize), (600, 600), (300, 1200)] {
        let x = noise(m, n, 1);
        let y = Mat::from_fn(m, 9, |i, j| ((i + j) as f64 * 0.37).sin());
        let t_primal = time_it(|| {
            let s = RidgeSolver::primal(&x, 1.0).unwrap();
            s.solve(&x, &y).unwrap();
        });
        let t_dual = time_it(|| {
            let s = RidgeSolver::dual(&x, 1.0).unwrap();
            s.solve(&x, &y).unwrap();
        });
        let t_lsqr = time_it(|| {
            let cfg = LsqrConfig {
                damp: 1.0,
                max_iter: 20,
                tol: 0.0,
            };
            for j in 0..9 {
                lsqr(&x, &y.col(j), &cfg);
            }
        });
        let auto = RidgeSolver::auto(&x, 1.0).unwrap();
        rows.push(vec![
            format!("{m}x{n}"),
            format!("{t_primal:.3}"),
            format!("{t_dual:.3}"),
            format!("{t_lsqr:.3}"),
            format!("{:?}", auto.form()),
        ]);
    }
    println!(
        "{}",
        render_table(
            "seconds per solver",
            &["shape", "primal", "dual", "lsqr20", "auto picks"],
            &rows
        )
    );
    println!("expected: primal wins when n < m, dual when n > m — auto agrees.\n");
}

fn ablation_svd_methods() {
    println!("Ablation 2 — SVD method (graded spectrum sigma_i = 2^-i)\n");
    // matrix with known singular values 1, 1/2, ..., 2^-11
    let n = 12;
    let sv: Vec<f64> = (0..n).map(|i| 0.5f64.powi(i as i32)).collect();
    let raw = noise(40, n, 3);
    let q = srda_linalg::Qr::factor(&raw).unwrap().q_thin();
    let raw2 = noise(n, n, 4);
    let q2 = srda_linalg::Qr::factor(&raw2).unwrap().q_thin();
    let mut mid = q2.clone();
    srda_linalg::ops::scale_cols(&mut mid, &sv);
    let a =
        srda_linalg::ops::matmul_transb(&srda_linalg::ops::matmul(&q, &mid).unwrap(), &q2).unwrap();

    let mut rows = Vec::new();
    for (name, svd) in [
        ("cross-product", Svd::cross_product(&a, 1e-14).unwrap()),
        ("jacobi", Svd::jacobi(&a, 1e-14).unwrap()),
    ] {
        // worst relative error among recovered singular values
        let mut worst: f64 = 0.0;
        for (got, want) in svd.s.iter().zip(&sv) {
            worst = worst.max((got - want).abs() / want);
        }
        rows.push(vec![
            name.to_string(),
            format!("{}", svd.rank()),
            format!("{worst:.2e}"),
        ]);
    }
    println!(
        "{}",
        render_table(
            "accuracy on tiny singular values",
            &["method", "rank kept", "worst rel err"],
            &rows
        )
    );
    println!("expected: jacobi accurate to ~1e-15 throughout; cross-product\nloses the trailing values to the squared condition number.\n");

    // timing at LDA-realistic shape
    let big = noise(600, 200, 5);
    let t_cp = time_it(|| {
        Svd::cross_product(&big, 1e-10).unwrap();
    });
    let t_j = time_it(|| {
        Svd::jacobi(&big, 1e-10).unwrap();
    });
    println!("timing 600x200: cross-product {t_cp:.3}s, jacobi {t_j:.3}s (paper uses cross-product for speed)\n");
}

fn ablation_centering() {
    println!("Ablation 3 — centering strategy for sparse data (20 LSQR iters x 19 responses)\n");
    let data = srda_data::newsgroups_like(0.15, 7);
    let x = &data.x;
    let index = srda::ClassIndex::new(&data.labels).unwrap();
    let ybar = srda::responses::generate(&index);
    let cfg = LsqrConfig {
        damp: 1.0,
        max_iter: 20,
        tol: 0.0,
    };

    let t_bias = time_it(|| {
        let op = AugmentedOp::new(x);
        for j in 0..ybar.ncols() {
            lsqr(&op, &ybar.col(j), &cfg);
        }
    });
    let t_implicit = time_it(|| {
        let mu = x.col_means();
        let op = CenteredOp::new(x, mu);
        for j in 0..ybar.ncols() {
            lsqr(&op, &ybar.col(j), &cfg);
        }
    });
    let (t_explicit, explicit_bytes) = {
        let t = Instant::now();
        let dense = x.to_dense(); // centering densifies
        let centered =
            srda_linalg::stats::center_rows(&dense, &srda_linalg::stats::col_means(&dense));
        for j in 0..ybar.ncols() {
            lsqr(&centered, &ybar.col(j), &cfg);
        }
        (t.elapsed().as_secs_f64(), centered.memory_bytes())
    };
    let rows = vec![
        vec![
            "bias trick (paper III.B)".into(),
            format!("{t_bias:.3}"),
            format!("{:.1}", x.memory_bytes() as f64 / 1048576.0),
        ],
        vec![
            "implicit centering op".into(),
            format!("{t_implicit:.3}"),
            format!("{:.1}", x.memory_bytes() as f64 / 1048576.0),
        ],
        vec![
            "explicit centering".into(),
            format!("{t_explicit:.3}"),
            format!("{:.1}", explicit_bytes as f64 / 1048576.0),
        ],
    ];
    println!(
        "{}",
        render_table(
            &format!(
                "{} docs x {} terms, s̄ = {:.0}",
                x.nrows(),
                x.ncols(),
                x.avg_row_nnz()
            ),
            &["strategy", "seconds", "working set MB"],
            &rows
        )
    );
    println!("expected: explicit centering pays the dense-matrix price the paper warns about.\n");
}

fn ablation_warm_start() {
    println!("Ablation 4 — incremental refit: warm vs cold after +10% data\n");
    let data = srda_data::newsgroups_like(0.1, 9);
    // 90% base / 100% updated
    let split = srda_data::ratio_split(&data.labels, 0.9, 0);
    let base = data.select(&split.train);
    let srda = Srda::new(SrdaConfig::default());
    let prev = Srda::new(SrdaConfig {
        solver: SrdaSolver::Lsqr {
            max_iter: 200,
            tol: 1e-8,
        },
        ..SrdaConfig::default()
    })
    .fit_sparse(&base.x, &base.labels)
    .unwrap();

    let t_warm = Instant::now();
    let warm = srda
        .fit_sparse_incremental(&data.x, &data.labels, &prev, 200, 1e-8)
        .unwrap();
    let t_warm = t_warm.elapsed().as_secs_f64();

    let t_cold = Instant::now();
    let cold = Srda::new(SrdaConfig {
        solver: SrdaSolver::Lsqr {
            max_iter: 200,
            tol: 1e-8,
        },
        ..SrdaConfig::default()
    })
    .fit_sparse(&data.x, &data.labels)
    .unwrap();
    let t_cold = t_cold.elapsed().as_secs_f64();

    println!(
        "warm: {} LSQR iterations, {t_warm:.3}s | cold: {} iterations, {t_cold:.3}s",
        warm.lsqr_iterations(),
        cold.lsqr_iterations()
    );
    let wd = warm
        .embedding()
        .weights()
        .sub(cold.embedding().weights())
        .unwrap()
        .max_abs();
    println!("max weight difference warm vs cold: {wd:.2e}\n");
}

fn main() {
    ablation_solver_crossover();
    ablation_svd_methods();
    ablation_centering();
    ablation_warm_start();
}
