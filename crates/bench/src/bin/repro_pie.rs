//! Reproduces **Tables III & IV and Figure 1** of the paper: classification
//! error and training time on the PIE-like face dataset as functions of the
//! number of labeled samples per class.
//!
//! Paper protocol: 68 classes, 1024 features, l ∈ {10,20,30,40,50,60}
//! training images per class, 20 random splits.
//! Honours `SRDA_REPRO_SCALE` / `SRDA_REPRO_SPLITS` (see `driver`).

use srda_bench::driver::{default_lineup, env_scale, env_splits, print_tables, sweep_dense};

fn main() {
    let scale = env_scale();
    let splits = env_splits();
    let data = srda_data::pie_like(scale, 42);
    println!(
        "PIE-like: m={} n={} c={} (scale {scale}, {splits} splits)\n",
        data.x.nrows(),
        data.x.ncols(),
        data.n_classes
    );

    // scale the per-class training sizes with the per-class budget so the
    // sweep shape survives downscaling (full scale: 10..60 of 170)
    let per_class = data.x.nrows() / data.n_classes;
    let axis: Vec<usize> = [10, 20, 30, 40, 50, 60]
        .iter()
        .map(|&l| ((l as f64 * scale).round() as usize).clamp(2, per_class.saturating_sub(2)))
        .collect();

    let algos = default_lineup();
    let cells = sweep_dense(&data, &axis, &algos, splits, None);
    let axis_str: Vec<String> = axis
        .iter()
        .map(|l| format!("{l}x{}", data.n_classes))
        .collect();
    print_tables(
        "PIE-like",
        "Table III / Fig 1(a)",
        "Table IV / Fig 1(b)",
        "TrainSize",
        &axis_str,
        &algos,
        &cells,
    );
}
