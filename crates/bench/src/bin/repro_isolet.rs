//! Reproduces **Tables V & VI and Figure 2**: error and training time on
//! the Isolet-like spoken-letter dataset, l ∈ {20,30,50,70,90,110} per
//! class over 20 random splits in the paper's protocol.

use srda_bench::driver::{default_lineup, env_scale, env_splits, print_tables, sweep_dense};

fn main() {
    let scale = env_scale();
    let splits = env_splits();
    let data = srda_data::isolet_like(scale, 42);
    println!(
        "Isolet-like: m={} n={} c={} (scale {scale}, {splits} splits)\n",
        data.x.nrows(),
        data.x.ncols(),
        data.n_classes
    );

    let per_class = data.x.nrows() / data.n_classes;
    let axis: Vec<usize> = [20, 30, 50, 70, 90, 110]
        .iter()
        .map(|&l| ((l as f64 * scale).round() as usize).clamp(2, per_class.saturating_sub(2)))
        .collect();

    let algos = default_lineup();
    let cells = sweep_dense(&data, &axis, &algos, splits, None);
    let axis_str: Vec<String> = axis
        .iter()
        .map(|l| format!("{l}x{}", data.n_classes))
        .collect();
    print_tables(
        "Isolet-like",
        "Table V / Fig 2(a)",
        "Table VI / Fig 2(b)",
        "TrainSize",
        &axis_str,
        &algos,
        &cells,
    );
}
