//! Development utility: sweeps generator parameters and prints the error
//! rates of the four algorithms at a small and a large training size, so
//! the synthetic datasets can be calibrated to the paper's error bands.
//! Not part of the reproduction itself, but kept in-tree so the
//! calibration is repeatable.

use srda_data::model::{generate, GaussianSpec};
use srda_data::{per_class_split, DenseDataset};
use srda_eval::{run_dense, Algo};

fn eval(spec: &GaussianSpec, l: usize, name: &'static str) -> Vec<f64> {
    let (x, labels) = generate(spec, 42);
    let data = DenseDataset {
        x,
        labels,
        n_classes: spec.n_classes,
        name,
    };
    let algos = [
        Algo::Lda,
        Algo::Rlda { alpha: 1.0 },
        Algo::Srda(srda::SrdaConfig::default()),
        Algo::IdrQr { lambda: 1.0 },
    ];
    algos
        .iter()
        .map(|algo| {
            let mut errs = Vec::new();
            for s in 0..2 {
                let sp = per_class_split(&data.labels, l, s);
                let tr = data.select(&sp.train);
                let te = data.select(&sp.test);
                if let Some(e) = run_dense(
                    algo,
                    &tr.x,
                    &tr.labels,
                    &te.x,
                    &te.labels,
                    data.n_classes,
                    None,
                )
                .error_rate
                {
                    errs.push(e);
                }
            }
            100.0 * errs.iter().sum::<f64>() / errs.len().max(1) as f64
        })
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    // usage: tune_datasets <signal> <factor_scale> <overlap> <noise> [c n q d per]
    let f = |i: usize, d: f64| args.get(i).and_then(|s| s.parse().ok()).unwrap_or(d);
    let u = |i: usize, d: usize| args.get(i).and_then(|s| s.parse().ok()).unwrap_or(d);
    let spec = GaussianSpec {
        n_classes: u(5, 10),
        n_features: u(6, 784),
        samples_per_class: u(9, 120),
        class_rank: u(8, 9),
        signal: f(1, 1.0),
        n_factors: u(7, 8),
        factor_scale: f(2, 0.55),
        factor_class_overlap: f(3, 0.8),
        noise_scale: f(4, 0.5),
        class_noise: f(10, 0.0),
    };
    println!("{spec:?}");
    for l in [10usize, 30, 100] {
        let l = l.min(spec.samples_per_class - 5);
        let e = eval(&spec, l, "tune");
        println!(
            "l={l:3}  LDA {:5.1}  RLDA {:5.1}  SRDA {:5.1}  IDR/QR {:5.1}",
            e[0], e[1], e[2], e[3]
        );
    }
}
