//! Reproduces **Tables IX & X and Figure 4**: error and training time on
//! the 20Newsgroups-like sparse text corpus, with 5%–50% of each class used
//! for training.
//!
//! This is the experiment where the paper's memory argument bites: LDA,
//! RLDA, and IDR/QR need the dense centered matrix (and singular factors),
//! which blows past the machine's memory as the training set grows — the
//! paper's 2 GB machine produced the dashes in Tables IX/X. We model the
//! same wall with an explicit byte budget (`SRDA_REPRO_MEMBUDGET_MB`,
//! default scaled to the dataset so the larger ratios trip it), while
//! SRDA+LSQR streams over the sparse non-zeros and never comes close.

use srda::SrdaConfig;
use srda_bench::driver::{env_scale, env_splits, print_tables, sweep_sparse};
use srda_eval::Algo;

fn main() {
    let scale = env_scale();
    let splits = env_splits();
    let data = srda_data::newsgroups_like(scale, 42);
    println!(
        "20Newsgroups-like: m={} n={} c={} nnz={} (s̄={:.1} nnz/doc, scale {scale}, {splits} splits)\n",
        data.x.nrows(),
        data.x.ncols(),
        data.n_classes,
        data.x.nnz(),
        data.x.avg_row_nnz(),
    );

    // Budget: generous enough for the smallest training ratios, tripped by
    // the larger ones — the paper's Tables IX/X shape. Default: the dense
    // form of 25% of the corpus.
    let default_budget = data.x.nrows() / 4 * data.x.ncols() * 8;
    let budget: usize = std::env::var("SRDA_REPRO_MEMBUDGET_MB")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .map(|mb| mb * 1024 * 1024)
        .unwrap_or(default_budget);
    println!("memory budget: {:.1} MB\n", budget as f64 / 1048576.0);

    let ratios = [0.05, 0.10, 0.20, 0.30, 0.40, 0.50];
    let algos = vec![
        Algo::Lda,
        Algo::Rlda { alpha: 1.0 },
        Algo::Srda(SrdaConfig::lsqr_default()), // paper: LSQR, 15 iterations
        Algo::IdrQr { lambda: 1.0 },
    ];
    let cells = sweep_sparse(&data, &ratios, &algos, splits, Some(budget));
    let axis_str: Vec<String> = ratios
        .iter()
        .map(|r| format!("{:.0}%", r * 100.0))
        .collect();
    print_tables(
        "20NG-like",
        "Table IX / Fig 4(a)",
        "Table X / Fig 4(b)",
        "TrainRatio",
        &axis_str,
        &algos,
        &cells,
    );
    println!(
        "-- entries marked -- were skipped by the memory budget, as in the paper's Tables IX/X."
    );
}
