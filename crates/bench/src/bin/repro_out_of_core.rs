//! Reproduces the paper's final §III.C.2 claim:
//!
//! > "Even [if] the data matrix is too large to be fit into the memory,
//! > SRDA can still be applied with some reasonable disk I/O."
//!
//! A 20NG-like corpus is written to disk in the `SRDACSR1` format and SRDA
//! is trained through [`srda_sparse::DiskCsr`], which keeps only the row
//! pointers resident. The run reports resident bytes for both modes, the
//! I/O multiple (the file is scanned twice per LSQR iteration), and
//! verifies the resulting model is identical to the in-memory fit.

use srda::{Srda, SrdaConfig, SrdaSolver};
use srda_bench::driver::env_scale;
use std::time::Instant;

fn main() {
    let scale = env_scale();
    let data = srda_data::newsgroups_like(scale, 42);
    println!(
        "20NG-like: {} docs x {} terms, nnz = {} ({:.1} MB in CSR form)\n",
        data.x.nrows(),
        data.x.ncols(),
        data.x.nnz(),
        data.x.memory_bytes() as f64 / 1048576.0
    );

    let dir = std::env::temp_dir().join("srda_out_of_core_repro");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("corpus.srdacsr");
    let t0 = Instant::now();
    srda_sparse::disk::write_csr(&path, &data.x).expect("write corpus");
    let write_secs = t0.elapsed().as_secs_f64();
    let file_mb = std::fs::metadata(&path).expect("stat").len() as f64 / 1048576.0;
    println!("wrote {file_mb:.1} MB to disk in {write_secs:.2}s");

    let disk = srda_sparse::DiskCsr::open(&path).expect("open corpus");
    println!(
        "resident while training from disk: {:.3} MB (row pointers + one stream buffer)\n",
        disk.resident_bytes() as f64 / 1048576.0
    );

    let cfg = SrdaConfig {
        solver: SrdaSolver::Lsqr {
            max_iter: 15,
            tol: 0.0,
        },
        ..SrdaConfig::default()
    };

    let t1 = Instant::now();
    let from_disk = Srda::new(cfg.clone())
        .fit_operator(&disk, &data.labels)
        .expect("disk fit");
    let disk_secs = t1.elapsed().as_secs_f64();

    let t2 = Instant::now();
    let in_memory = Srda::new(cfg)
        .fit_sparse(&data.x, &data.labels)
        .expect("memory fit");
    let mem_secs = t2.elapsed().as_secs_f64();

    let diff = from_disk
        .embedding()
        .weights()
        .sub(in_memory.embedding().weights())
        .unwrap()
        .max_abs();
    let iters = from_disk.lsqr_iterations();
    let scans = 2 * iters; // one forward + one transpose product per iter
    println!("training (LSQR k=15, {} responses):", data.n_classes - 1);
    println!(
        "  from disk : {disk_secs:.2}s  ({scans} sequential file scans ≈ {:.1} GB of I/O)",
        scans as f64 * file_mb / 1024.0
    );
    println!(
        "  in memory : {mem_secs:.2}s  (x{:.1} slower from disk)",
        disk_secs / mem_secs
    );
    println!("  max weight difference: {diff:.2e} (identical models)\n");
    println!("paper: \"SRDA can still be applied with some reasonable disk I/O\" — confirmed.");
    std::fs::remove_file(&path).ok();
}
