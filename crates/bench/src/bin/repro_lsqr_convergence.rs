//! Reproduces the paper's §III.C.2 claim that "LSQR converges very fast;
//! in our experiments, 20 iterations are enough", and its choice of 15
//! iterations for the 20Newsgroups runs.
//!
//! Two views:
//! 1. the damped-residual trace of a single SRDA response solve, iteration
//!    by iteration (should flatten well before iteration 20);
//! 2. the end-to-end test error of SRDA(LSQR, k) as k grows (should match
//!    the normal-equations error by k ≈ 15–20).

use srda::{Srda, SrdaConfig, SrdaSolver};
use srda_bench::driver::{env_scale, env_splits};
use srda_bench::report::render_table;
use srda_data::per_class_split;
use srda_eval::{run_dense, Aggregate, Algo};
use srda_solvers::lsqr::{lsqr, LsqrConfig};
use srda_solvers::AugmentedOp;

fn main() {
    let scale = env_scale();
    let splits = env_splits();
    let data = srda_data::mnist_like(scale, 42);
    let per = data.x.nrows() / data.n_classes;
    let l = ((50.0 * scale).round() as usize).clamp(5, per.saturating_sub(2));
    println!("MNIST-like, l = {l}/class, {splits} splits (scale {scale})\n");

    // Part 1: residual trace of the first response problem
    let split = per_class_split(&data.labels, l, 0);
    let tr = data.select(&split.train);
    let index = srda::ClassIndex::new(&tr.labels).unwrap();
    let ybar = srda::responses::generate(&index);
    let op = AugmentedOp::new(&tr.x);
    let result = lsqr(
        &op,
        &ybar.col(0),
        &LsqrConfig {
            damp: 1.0, // α = 1
            max_iter: 40,
            tol: 0.0,
        },
    );
    let rows: Vec<Vec<String>> = result
        .residual_trace
        .iter()
        .enumerate()
        .filter(|(i, _)| *i < 5 || (i + 1) % 5 == 0)
        .map(|(i, r)| vec![format!("{}", i + 1), format!("{r:.6}")])
        .collect();
    println!(
        "{}",
        render_table(
            "LSQR damped-residual trace (first SRDA response)",
            &["iter", "residual"],
            &rows
        )
    );

    // Part 2: end-to-end error as a function of the iteration budget
    let ne_err: Vec<f64> = (0..splits)
        .filter_map(|s| {
            let sp = per_class_split(&data.labels, l, s as u64);
            let tr = data.select(&sp.train);
            let te = data.select(&sp.test);
            run_dense(
                &Algo::Srda(SrdaConfig::default()),
                &tr.x,
                &tr.labels,
                &te.x,
                &te.labels,
                data.n_classes,
                None,
            )
            .error_rate
        })
        .collect();
    let ne = Aggregate::from_values(&ne_err);

    let mut rows2 = Vec::new();
    for k in [1usize, 2, 5, 10, 15, 20, 30] {
        let errs: Vec<f64> = (0..splits)
            .filter_map(|s| {
                let sp = per_class_split(&data.labels, l, s as u64);
                let tr = data.select(&sp.train);
                let te = data.select(&sp.test);
                run_dense(
                    &Algo::Srda(SrdaConfig {
                        solver: SrdaSolver::Lsqr {
                            max_iter: k,
                            tol: 0.0,
                        },
                        ..SrdaConfig::default()
                    }),
                    &tr.x,
                    &tr.labels,
                    &te.x,
                    &te.labels,
                    data.n_classes,
                    None,
                )
                .error_rate
            })
            .collect();
        let agg = Aggregate::from_values(&errs);
        rows2.push(vec![
            format!("{k}"),
            format!("{:.2}", agg.mean * 100.0),
            format!("{:.2}", ne.mean * 100.0),
        ]);
    }
    println!(
        "{}",
        render_table(
            "SRDA error vs LSQR iteration budget (NE = exact solve reference)",
            &["k", "SRDA-LSQR err %", "SRDA-NE err %"],
            &rows2
        )
    );
    println!(
        "paper: \"LSQR converges very fast … 20 iterations are enough\"; 20NG runs use k = 15."
    );

    let _ = Srda::default_dense(); // keep the convenience constructor exercised
}
