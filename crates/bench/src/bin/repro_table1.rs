//! Reproduces **Table I**: the computational-complexity comparison of LDA
//! and SRDA — empirically, using the workspace's flam counters, rather than
//! by restating the formulas.
//!
//! * Part 1 measures flam for LDA, SRDA (normal equations), and SRDA
//!   (LSQR, dense) on a grid of (m, n) and compares the LDA/SRDA-NE ratio
//!   with the paper's prediction (maximum speedup ≈ 9 at m = n).
//! * Part 2 fits log-log scaling exponents: SRDA-LSQR must be linear in m
//!   and in n (exponent ≈ 1), LDA super-quadratic in t = min(m, n).
//! * Part 3 repeats the m-sweep on sparse data with fixed row density,
//!   demonstrating the `O(kcms)` claim — flam per sample is constant.

#![allow(clippy::needless_range_loop)]

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use srda::{Lda, Srda, SrdaConfig, SrdaSolver};
use srda_bench::report::render_table;
use srda_linalg::{flam, Mat};
use srda_sparse::CooBuilder;

const C: usize = 10; // classes

fn labels(m: usize) -> Vec<usize> {
    (0..m).map(|i| i % C).collect()
}

fn dense_data(m: usize, n: usize, seed: u64) -> Mat {
    let mut rng = SmallRng::seed_from_u64(seed);
    let y = labels(m);
    Mat::from_fn(m, n, |i, j| {
        let class_sig = if j % C == y[i] { 1.0 } else { 0.0 };
        class_sig + rng.gen::<f64>() * 0.5
    })
}

fn measure_dense(m: usize, n: usize) -> (u64, u64, u64) {
    let x = dense_data(m, n, (m * 31 + n) as u64);
    let y = labels(m);
    let (_, lda_flam) = flam::measure(|| {
        Lda::default().fit_dense(&x, &y).unwrap();
    });
    let (_, ne_flam) = flam::measure(|| {
        Srda::new(SrdaConfig::default()).fit_dense(&x, &y).unwrap();
    });
    let (_, lsqr_flam) = flam::measure(|| {
        Srda::new(SrdaConfig {
            solver: SrdaSolver::Lsqr {
                max_iter: 20,
                tol: 0.0,
            },
            ..SrdaConfig::default()
        })
        .fit_dense(&x, &y)
        .unwrap();
    });
    (lda_flam, ne_flam, lsqr_flam)
}

/// Least-squares slope of log(y) against log(x).
fn loglog_slope(xs: &[f64], ys: &[f64]) -> f64 {
    let n = xs.len() as f64;
    let lx: Vec<f64> = xs.iter().map(|v| v.ln()).collect();
    let ly: Vec<f64> = ys.iter().map(|v| v.ln()).collect();
    let mx = lx.iter().sum::<f64>() / n;
    let my = ly.iter().sum::<f64>() / n;
    let cov: f64 = lx.iter().zip(&ly).map(|(a, b)| (a - mx) * (b - my)).sum();
    let var: f64 = lx.iter().map(|a| (a - mx) * (a - mx)).sum();
    cov / var
}

fn main() {
    // Part 1: flam grid
    println!("Part 1 — measured flam (c = {C}, LSQR k = 20)\n");
    let mut rows = Vec::new();
    for (m, n) in [(200, 200), (400, 400), (400, 200), (200, 400), (600, 300)] {
        let (lda, ne, lsqr) = measure_dense(m, n);
        rows.push(vec![
            format!("{m}"),
            format!("{n}"),
            format!("{:.2e}", lda as f64),
            format!("{:.2e}", ne as f64),
            format!("{:.2e}", lsqr as f64),
            format!("{:.1}", lda as f64 / ne as f64),
        ]);
    }
    println!(
        "{}",
        render_table(
            "Table I (empirical): operation counts",
            &["m", "n", "LDA", "SRDA-NE", "SRDA-LSQR", "LDA/NE"],
            &rows
        )
    );
    println!("paper: SRDA-NE is always faster than LDA; max speedup ≈ 9 at m = n.\n");

    // Part 2: scaling exponents
    println!("Part 2 — log-log scaling exponents\n");
    let ms = [150.0, 300.0, 600.0, 1200.0];
    let mut lda_f = Vec::new();
    let mut lsqr_f = Vec::new();
    for &m in &ms {
        let (l, _, q) = measure_dense(m as usize, 200);
        lda_f.push(l as f64);
        lsqr_f.push(q as f64);
    }
    println!(
        "vary m (n = 200): LDA exponent {:.2}, SRDA-LSQR exponent {:.2} (paper: LSQR linear in m)",
        loglog_slope(&ms, &lda_f),
        loglog_slope(&ms, &lsqr_f)
    );
    let ns = [150.0, 300.0, 600.0, 1200.0];
    let mut lda_fn = Vec::new();
    let mut lsqr_fn = Vec::new();
    for &n in &ns {
        let (l, _, q) = measure_dense(200, n as usize);
        lda_fn.push(l as f64);
        lsqr_fn.push(q as f64);
    }
    println!(
        "vary n (m = 200): LDA exponent {:.2}, SRDA-LSQR exponent {:.2} (paper: LSQR linear in n)\n",
        loglog_slope(&ns, &lda_fn),
        loglog_slope(&ns, &lsqr_fn)
    );

    // Part 3: sparse linear-time claim — constant flam per sample at fixed s
    println!("Part 3 — sparse SRDA-LSQR, fixed s = 60 nnz/row, n = 20000\n");
    let mut rows3 = Vec::new();
    let mut ms3 = Vec::new();
    let mut fs3 = Vec::new();
    for m in [500usize, 1000, 2000, 4000] {
        let n = 20_000;
        let s = 60;
        let mut rng = SmallRng::seed_from_u64(m as u64);
        let y = labels(m);
        let mut b = CooBuilder::with_capacity(m, n, m * s);
        for i in 0..m {
            for _ in 0..s {
                let class_band = y[i] * (n / C);
                let j = if rng.gen::<f64>() < 0.4 {
                    class_band + rng.gen_range(0..n / C)
                } else {
                    rng.gen_range(0..n)
                };
                b.push(i, j, rng.gen::<f64>()).unwrap();
            }
        }
        let x = b.build();
        let (_, used) = flam::measure(|| {
            Srda::new(SrdaConfig::lsqr_default())
                .fit_sparse(&x, &y)
                .unwrap();
        });
        rows3.push(vec![
            format!("{m}"),
            format!("{:.2e}", used as f64),
            format!("{:.0}", used as f64 / m as f64),
        ]);
        ms3.push(m as f64);
        fs3.push(used as f64);
    }
    println!(
        "{}",
        render_table("sparse SRDA-LSQR flam", &["m", "flam", "flam/m"], &rows3)
    );
    // LSQR has a fixed per-iteration O(n) term (the 3n + 5m work vector
    // updates) that dominates at small m; the marginal slope between the
    // two largest m isolates the per-sample behaviour.
    let tail = loglog_slope(&ms3[ms3.len() - 2..], &fs3[fs3.len() - 2..]);
    println!(
        "scaling exponent in m: {:.2} overall, {:.2} marginal (paper: linear ⇒ 1.0)",
        loglog_slope(&ms3, &fs3),
        tail
    );
}
