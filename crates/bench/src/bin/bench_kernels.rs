//! Execution-backend microbenchmark: naive loops vs the blocked serial
//! backend vs the threaded backend, on paper-shaped workloads.
//!
//! Emits `BENCH_kernels.json` (path overridable as the first argument)
//! with per-kernel wall times and speedups, plus a determinism check
//! (the threaded backend must be bitwise-identical to serial).
//!
//! Knobs:
//! * `SRDA_BENCH_THREADS` — thread count for the threaded variant
//!   (default 4; on a single-core container the threaded numbers
//!   honestly show the scheduling overhead instead of a speedup).
//! * `SRDA_BENCH_SCALE` — scale factor in `(0, 1]` for the workload
//!   shapes (default 1.0), so CI smoke runs can finish quickly.

use srda::Recorder;
use srda_linalg::ops::{gram_exec, matmul_exec};
use srda_linalg::{ExecPolicy, Executor, Mat};
use srda_sparse::CsrMatrix;
use std::time::Instant;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn env_f64(key: &str, default: f64) -> f64 {
    std::env::var(key)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// Deterministic pseudo-random value in [-0.5, 0.5).
fn noise(seed: usize) -> f64 {
    let x = (seed as f64 * 12.9898).sin() * 43758.5453;
    x - x.floor() - 0.5
}

fn dense(m: usize, n: usize, seed: usize) -> Mat {
    let mut a = Mat::zeros(m, n);
    for i in 0..m {
        for j in 0..n {
            a[(i, j)] = noise(seed + i * n + j);
        }
    }
    a
}

/// CSR matrix with roughly `per_row` nonzeros per row.
fn sparse(m: usize, n: usize, per_row: usize, seed: usize) -> CsrMatrix {
    let mut indptr = Vec::with_capacity(m + 1);
    let mut indices = Vec::new();
    let mut data = Vec::new();
    indptr.push(0);
    for i in 0..m {
        let mut cols: Vec<usize> = (0..per_row)
            .map(|k| {
                let u = noise(seed + i * per_row + k) + 0.5;
                ((u * n as f64) as usize).min(n - 1)
            })
            .collect();
        cols.sort_unstable();
        cols.dedup();
        for &j in &cols {
            indices.push(j);
            data.push(noise(seed + 31 * (i + j)) + 1.0);
        }
        indptr.push(indices.len());
    }
    CsrMatrix::from_raw_parts(m, n, indptr, indices, data).unwrap()
}

/// Best-of-`reps` wall time of `f`, in seconds.
fn time_best<R>(reps: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    let mut best = f64::INFINITY;
    let mut out = f();
    for _ in 0..reps {
        let t = Instant::now();
        out = f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    (best, out)
}

struct Row {
    kernel: &'static str,
    shape: String,
    naive: f64,
    serial: f64,
    threaded: f64,
    identical: bool,
}

fn naive_gram(a: &Mat) -> Mat {
    let (m, n) = a.shape();
    let mut g = Mat::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            let mut s = 0.0;
            for r in 0..m {
                s += a[(r, i)] * a[(r, j)];
            }
            g[(i, j)] = s;
        }
    }
    g
}

fn naive_matmul(a: &Mat, b: &Mat) -> Mat {
    let (m, k) = a.shape();
    let n = b.ncols();
    let mut c = Mat::zeros(m, n);
    for i in 0..m {
        for j in 0..n {
            let mut s = 0.0;
            for p in 0..k {
                s += a[(i, p)] * b[(p, j)];
            }
            c[(i, j)] = s;
        }
    }
    c
}

fn naive_csr_matvec(a: &CsrMatrix, x: &[f64]) -> Vec<f64> {
    (0..a.nrows())
        .map(|i| a.row_entries(i).map(|(j, v)| v * x[j]).sum())
        .collect()
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_kernels.json".to_string());
    let threads = env_usize("SRDA_BENCH_THREADS", 4);
    let scale = env_f64("SRDA_BENCH_SCALE", 1.0).clamp(0.01, 1.0);
    let sc = |d: usize| ((d as f64 * scale) as usize).max(8);
    let serial = Executor::serial();
    let par = Executor::threaded(threads);
    let reps = 3;

    let mut rows: Vec<Row> = Vec::new();

    // dense Gram AᵀA: the normal-equations hot spot (Eqn 20)
    {
        let (m, n) = (sc(1000), sc(500));
        let a = dense(m, n, 1);
        let (t_naive, g0) = time_best(reps, || naive_gram(&a));
        let (t_serial, g1) = time_best(reps, || gram_exec(&a, &serial));
        let (t_par, g2) = time_best(reps, || gram_exec(&a, &par));
        rows.push(Row {
            kernel: "dense_gram",
            shape: format!("{m}x{n}"),
            naive: t_naive,
            serial: t_serial,
            threaded: t_par,
            identical: g1.as_slice() == g2.as_slice() && g0.shape() == g1.shape(),
        });
    }

    // dense GEMM: embedding back-projection W = V·Q
    {
        let (m, k, n) = (sc(800), sc(400), sc(200));
        let a = dense(m, k, 2);
        let b = dense(k, n, 3);
        let (t_naive, c0) = time_best(reps, || naive_matmul(&a, &b));
        let (t_serial, c1) = time_best(reps, || matmul_exec(&a, &b, &serial).unwrap());
        let (t_par, c2) = time_best(reps, || matmul_exec(&a, &b, &par).unwrap());
        rows.push(Row {
            kernel: "dense_gemm",
            shape: format!("{m}x{k}x{n}"),
            naive: t_naive,
            serial: t_serial,
            threaded: t_par,
            identical: c1.as_slice() == c2.as_slice() && c0.shape() == c1.shape(),
        });
    }

    // sparse mat-vec: the LSQR inner loop on 20NG-shaped data (§III.C.2)
    {
        let (m, n, per_row) = (sc(20_000), sc(40_000), 60);
        let a = sparse(m, n, per_row, 4);
        let x: Vec<f64> = (0..n).map(|j| noise(7 + j)).collect();
        let (t_naive, y0) = time_best(reps, || naive_csr_matvec(&a, &x));
        let (t_serial, y1) = time_best(reps, || a.matvec_exec(&x, &serial).unwrap());
        let (t_par, y2) = time_best(reps, || a.matvec_exec(&x, &par).unwrap());
        rows.push(Row {
            kernel: "csr_matvec",
            shape: format!("{m}x{n} nnz={}", a.nnz()),
            naive: t_naive,
            serial: t_serial,
            threaded: t_par,
            identical: y1 == y2 && y0.len() == y1.len(),
        });
    }

    // sparse dual Gram XXᵀ: the n > m dual path (Eqn 21)
    {
        let (m, n, per_row) = (sc(1_500), sc(40_000), 60);
        let a = sparse(m, n, per_row, 5);
        let budget = usize::MAX;
        let (t_serial, g1) = time_best(reps, || {
            a.gram_t_dense_checked_exec(budget, &serial).unwrap()
        });
        let (t_par, g2) = time_best(reps, || a.gram_t_dense_checked_exec(budget, &par).unwrap());
        rows.push(Row {
            kernel: "csr_gram_t",
            shape: format!("{m}x{n} nnz={}", a.nnz()),
            naive: t_serial, // no separate naive variant: serial IS the baseline
            serial: t_serial,
            threaded: t_par,
            identical: g1.as_slice() == g2.as_slice(),
        });
    }

    // recorder overhead: the same kernel through a disabled-recorder
    // executor vs an enabled one. Best-of-reps on a mid-size Gram; the
    // disabled path must be a near-no-op (the <2% CI gate lives in
    // scripts/ci.sh). Deliberately NOT scaled by SRDA_BENCH_SCALE: a
    // micro-sized Gram turns the comparison into timer noise, and the
    // fixed shape costs only ~0.2s.
    let (ov_disabled, ov_enabled, obs_json) = {
        let a = dense(700, 350, 9);
        let off = Executor::with_recorder(ExecPolicy::serial(), Recorder::disabled());
        let rec = Recorder::new_enabled();
        let on = Executor::with_recorder(ExecPolicy::serial(), rec);
        let (t_off, _) = time_best(reps * 2, || gram_exec(&a, &off));
        let (t_on, _) = time_best(reps * 2, || {
            let _span = rec.span("bench/gram");
            gram_exec(&a, &on)
        });
        (t_off, t_on, rec.snapshot().to_json())
    };

    // hand-formatted JSON: the serde_json stub used for offline checks
    // cannot serialize at runtime, and the format here is trivial
    let mut json = String::from("{\n");
    json.push_str(&format!("  \"threads\": {threads},\n"));
    json.push_str(&format!("  \"scale\": {scale},\n"));
    json.push_str(&format!(
        "  \"hardware_threads\": {},\n",
        std::thread::available_parallelism().map_or(1, |p| p.get())
    ));
    json.push_str("  \"kernels\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"kernel\": \"{}\", \"shape\": \"{}\", \"naive_s\": {:.6}, \
             \"blocked_serial_s\": {:.6}, \"threaded_s\": {:.6}, \
             \"speedup_blocked_vs_naive\": {:.3}, \"speedup_threaded_vs_serial\": {:.3}, \
             \"bitwise_identical\": {}}}{}\n",
            r.kernel,
            r.shape,
            r.naive,
            r.serial,
            r.threaded,
            r.naive / r.serial.max(1e-12),
            r.serial / r.threaded.max(1e-12),
            r.identical,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"recorder_overhead\": {{\"disabled_s\": {:.6}, \"enabled_s\": {:.6}, \
         \"rel_delta\": {:.4}}},\n",
        ov_disabled,
        ov_enabled,
        (ov_enabled - ov_disabled) / ov_disabled.max(1e-12)
    ));
    // the same srda-obs-v1 schema the CLI's --metrics-out emits, from the
    // recorder the enabled-overhead pass ran under
    json.push_str("  \"obs\": ");
    json.push_str(obs_json.trim_end());
    json.push_str("\n}\n");

    std::fs::write(&out_path, &json).expect("write benchmark JSON");

    println!("wrote {out_path}");
    println!(
        "{:<12} {:>22} {:>10} {:>10} {:>10} {:>9}",
        "kernel", "shape", "naive(s)", "serial(s)", "par(s)", "bitwise"
    );
    for r in &rows {
        println!(
            "{:<12} {:>22} {:>10.4} {:>10.4} {:>10.4} {:>9}",
            r.kernel, r.shape, r.naive, r.serial, r.threaded, r.identical
        );
    }
    println!(
        "recorder overhead: disabled {:.4}s, enabled {:.4}s ({:+.2}%)",
        ov_disabled,
        ov_enabled,
        (ov_enabled - ov_disabled) / ov_disabled.max(1e-12) * 100.0
    );
    if rows.iter().any(|r| !r.identical) {
        eprintln!("error: threaded backend diverged from serial");
        std::process::exit(1);
    }
}
