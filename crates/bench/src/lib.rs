//! # srda-bench
//!
//! Benchmark harness reproducing every table and figure of the paper.
//! The reproduction binaries live in `src/bin/` (one per experiment, see
//! DESIGN.md's experiment index); Criterion microbenchmarks live in
//! `benches/`. Shared table-formatting helpers are in [`report`].

#![forbid(unsafe_code)]

pub mod driver;
pub mod report;
