//! Shared experiment driver for the reproduction binaries.
//!
//! Each binary regenerates one of the paper's tables/figures by sweeping a
//! training-set-size axis, averaging over random splits, and printing an
//! error-rate table and a training-time table (the paper's paired tables,
//! e.g. III+IV, and the corresponding figure's series).
//!
//! ## Scaling knobs
//!
//! Full-paper shapes (11560×1024 PIE, 18941×26214 20NG, 20 splits) take
//! hours on the all-Rust single-threaded substrate, so the binaries default
//! to a reduced-but-shape-preserving configuration and honour two
//! environment variables:
//!
//! * `SRDA_REPRO_SCALE` — dataset scale in `(0, 1]` (default 0.3),
//! * `SRDA_REPRO_SPLITS` — random splits per configuration (default 3;
//!   the paper uses 20).
//!
//! Run with `SRDA_REPRO_SCALE=1 SRDA_REPRO_SPLITS=20` for the paper's
//! exact protocol.

use crate::report::{mean_std, render_table, secs};
use srda_data::{per_class_split, ratio_split, DenseDataset, SparseDataset};
use srda_eval::{run_dense, run_sparse, Aggregate, Algo, RunOutcome};

/// Read the dataset scale knob.
pub fn env_scale() -> f64 {
    std::env::var("SRDA_REPRO_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.3)
}

/// Read the splits knob.
pub fn env_splits() -> usize {
    std::env::var("SRDA_REPRO_SPLITS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(3)
}

/// The default algorithm lineup of the paper's §IV.B.
pub fn default_lineup() -> Vec<Algo> {
    vec![
        Algo::Lda,
        Algo::Rlda { alpha: 1.0 },
        Algo::Srda(srda::SrdaConfig::default()),
        Algo::IdrQr { lambda: 1.0 },
    ]
}

/// Aggregated outcome of one (algorithm, axis point) cell.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Error-rate aggregate over splits (`None` if every split skipped).
    pub error: Option<Aggregate>,
    /// Mean training seconds over splits.
    pub time: Option<Aggregate>,
    /// Mean training flam over splits.
    pub flam: Option<f64>,
    /// Skip reason, if skipped.
    pub skipped: Option<String>,
}

fn aggregate(outcomes: &[RunOutcome]) -> Cell {
    let errs: Vec<f64> = outcomes.iter().filter_map(|o| o.error_rate).collect();
    if errs.is_empty() {
        return Cell {
            error: None,
            time: None,
            flam: None,
            skipped: outcomes
                .iter()
                .find_map(|o| o.skipped.clone())
                .or_else(|| Some("skipped".into())),
        };
    }
    let times: Vec<f64> = outcomes.iter().filter_map(|o| o.train_secs).collect();
    let flams: Vec<f64> = outcomes
        .iter()
        .filter_map(|o| o.train_flam.map(|f| f as f64))
        .collect();
    Cell {
        error: Some(Aggregate::from_values(&errs)),
        time: Some(Aggregate::from_values(&times)),
        flam: Some(flams.iter().sum::<f64>() / flams.len() as f64),
        skipped: None,
    }
}

/// Sweep `l` (train samples per class) over a dense dataset; returns one
/// row of cells per axis point, one cell per algorithm.
pub fn sweep_dense(
    data: &DenseDataset,
    axis: &[usize],
    algos: &[Algo],
    n_splits: usize,
    memory_budget: Option<usize>,
) -> Vec<Vec<Cell>> {
    let mut rows = Vec::new();
    for &l in axis {
        let mut row = Vec::new();
        for algo in algos {
            let mut outcomes = Vec::new();
            for split_id in 0..n_splits {
                let split = per_class_split(&data.labels, l, split_id as u64);
                let tr = data.select(&split.train);
                let te = data.select(&split.test);
                outcomes.push(run_dense(
                    algo,
                    &tr.x,
                    &tr.labels,
                    &te.x,
                    &te.labels,
                    data.n_classes,
                    memory_budget,
                ));
            }
            row.push(aggregate(&outcomes));
        }
        rows.push(row);
    }
    rows
}

/// Sweep a training *ratio* over a sparse dataset.
pub fn sweep_sparse(
    data: &SparseDataset,
    ratios: &[f64],
    algos: &[Algo],
    n_splits: usize,
    memory_budget: Option<usize>,
) -> Vec<Vec<Cell>> {
    let mut rows = Vec::new();
    for &frac in ratios {
        let mut row = Vec::new();
        for algo in algos {
            let mut outcomes = Vec::new();
            for split_id in 0..n_splits {
                let split = ratio_split(&data.labels, frac, split_id as u64);
                let tr = data.select(&split.train);
                let te = data.select(&split.test);
                outcomes.push(run_sparse(
                    algo,
                    &tr.x,
                    &tr.labels,
                    &te.x,
                    &te.labels,
                    data.n_classes,
                    memory_budget,
                ));
            }
            row.push(aggregate(&outcomes));
        }
        rows.push(row);
    }
    rows
}

/// Print the paired error/time tables for one sweep, paper-style.
pub fn print_tables(
    dataset_name: &str,
    error_title: &str,
    time_title: &str,
    axis_label: &str,
    axis: &[String],
    algos: &[Algo],
    cells: &[Vec<Cell>],
) {
    let mut header: Vec<&str> = vec![axis_label];
    let names: Vec<String> = algos.iter().map(|a| a.name().to_string()).collect();
    for n in &names {
        header.push(n);
    }

    let err_rows: Vec<Vec<String>> = axis
        .iter()
        .zip(cells)
        .map(|(a, row)| {
            let mut r = vec![a.clone()];
            for cell in row {
                r.push(match &cell.error {
                    Some(agg) => mean_std(agg.mean * 100.0, agg.std * 100.0),
                    None => "--".into(),
                });
            }
            r
        })
        .collect();
    println!(
        "{}",
        render_table(
            &format!("{error_title} [{dataset_name}] (error %, mean±std)"),
            &header,
            &err_rows
        )
    );

    let time_rows: Vec<Vec<String>> = axis
        .iter()
        .zip(cells)
        .map(|(a, row)| {
            let mut r = vec![a.clone()];
            for cell in row {
                r.push(match &cell.time {
                    Some(agg) => secs(agg.mean),
                    None => "--".into(),
                });
            }
            r
        })
        .collect();
    println!(
        "{}",
        render_table(
            &format!("{time_title} [{dataset_name}] (training seconds)"),
            &header,
            &time_rows
        )
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_defaults() {
        // (may be overridden in the environment; just check parsing logic)
        std::env::remove_var("SRDA_REPRO_SCALE");
        std::env::remove_var("SRDA_REPRO_SPLITS");
        assert!((env_scale() - 0.3).abs() < 1e-12);
        assert_eq!(env_splits(), 3);
    }

    #[test]
    fn lineup_has_four_algorithms() {
        let names: Vec<&str> = default_lineup().iter().map(|a| a.name()).collect();
        assert_eq!(names, vec!["LDA", "RLDA", "SRDA", "IDR/QR"]);
    }

    #[test]
    fn dense_sweep_produces_full_grid() {
        let data = srda_data::mnist_like(0.04, 1);
        let cells = sweep_dense(&data, &[5, 10], &default_lineup(), 2, None);
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[0].len(), 4);
        for row in &cells {
            for cell in row {
                assert!(cell.error.is_some(), "unexpected skip: {:?}", cell.skipped);
                assert_eq!(cell.error.as_ref().unwrap().count, 2);
            }
        }
    }

    #[test]
    fn sparse_sweep_skips_densifying_algos_under_budget() {
        let data = srda_data::newsgroups_like(0.02, 2);
        let budget = Some(data.x.memory_bytes());
        let algos = vec![Algo::Lda, Algo::Srda(srda::SrdaConfig::lsqr_default())];
        let cells = sweep_sparse(&data, &[0.1], &algos, 1, budget);
        assert!(cells[0][0].skipped.is_some(), "LDA should be skipped");
        assert!(cells[0][1].error.is_some(), "SRDA should run");
    }
}
