//! Plain-text table rendering shared by the reproduction binaries.

/// Render an aligned text table: a header row plus data rows.
pub fn render_table(title: &str, header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let head: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&head, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Format `mean ± std` like the paper's tables (one decimal place).
pub fn mean_std(mean: f64, std: f64) -> String {
    format!("{mean:.1}±{std:.1}")
}

/// Format a time in seconds with millisecond resolution.
pub fn secs(t: f64) -> String {
    format!("{t:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let s = render_table(
            "T",
            &["a", "bbbb"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        assert!(s.contains("T\n"));
        assert!(s.lines().count() >= 4);
        // all data lines have equal width
        let lines: Vec<&str> = s.lines().skip(1).collect();
        assert_eq!(lines[0].len(), lines[2].len());
    }

    #[test]
    fn formats() {
        assert_eq!(mean_std(19.05, 1.24), "19.1±1.2");
        assert_eq!(secs(0.2349), "0.235");
    }
}
