//! Sparse-kernel benchmarks: the two `O(nnz)` products LSQR lives on, and
//! the cost of construction/transposition.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use srda_sparse::{CooBuilder, CsrMatrix};
use std::hint::black_box;

fn random_csr(m: usize, n: usize, nnz_per_row: usize, seed: u64) -> CsrMatrix {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = CooBuilder::with_capacity(m, n, m * nnz_per_row);
    for i in 0..m {
        for _ in 0..nnz_per_row {
            b.push(i, rng.gen_range(0..n), rng.gen::<f64>()).unwrap();
        }
    }
    b.build()
}

fn bench_matvec(c: &mut Criterion) {
    let mut group = c.benchmark_group("sparse_matvec");
    for &m in &[1_000usize, 10_000] {
        let a = random_csr(m, 20_000, 80, 7);
        let x: Vec<f64> = (0..20_000).map(|i| (i as f64 * 0.11).sin()).collect();
        let xt: Vec<f64> = (0..m).map(|i| (i as f64 * 0.13).cos()).collect();
        group.bench_with_input(BenchmarkId::new("forward", m), &a, |b, a| {
            b.iter(|| a.matvec(black_box(&x)).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("transpose", m), &a, |b, a| {
            b.iter(|| a.matvec_t(black_box(&xt)).unwrap())
        });
    }
    group.finish();
}

fn bench_structure_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("sparse_structure");
    group.sample_size(10);
    let a = random_csr(5_000, 20_000, 80, 11);
    group.bench_function("transpose", |b| b.iter(|| black_box(&a).transpose()));
    let idx: Vec<usize> = (0..5_000).step_by(2).collect();
    group.bench_function("select_rows", |b| {
        b.iter(|| black_box(&a).select_rows(black_box(&idx)))
    });
    group.bench_function("append_bias_col", |b| {
        b.iter(|| black_box(&a).append_constant_col(1.0))
    });
    group.finish();
}

criterion_group!(benches, bench_matvec, bench_structure_ops);
criterion_main!(benches);
