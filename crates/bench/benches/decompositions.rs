//! Factorization benchmarks, including the DESIGN.md ablation:
//! cross-product SVD (the paper's choice inside LDA) vs one-sided Jacobi.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use srda_linalg::{Cholesky, Mat, Qr, Svd, SymmetricEigen};
use std::hint::black_box;

fn noise(m: usize, n: usize) -> Mat {
    Mat::from_fn(m, n, |i, j| {
        let x = (i as f64 * 45.164 + j as f64 * 94.673).sin() * 43758.5453;
        x - x.floor() - 0.5
    })
}

fn spd(n: usize) -> Mat {
    let a = noise(n + 8, n);
    let mut g = srda_linalg::ops::gram(&a);
    g.add_to_diag(1.0);
    g
}

fn bench_cholesky(c: &mut Criterion) {
    let mut group = c.benchmark_group("cholesky");
    group.sample_size(10);
    for &n in &[64usize, 256] {
        let a = spd(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &a, |b, a| {
            b.iter(|| Cholesky::factor(black_box(a)).unwrap())
        });
    }
    group.finish();
}

fn bench_qr(c: &mut Criterion) {
    let mut group = c.benchmark_group("qr");
    group.sample_size(10);
    for &(m, n) in &[(256usize, 64usize), (512, 128)] {
        let a = noise(m, n);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{m}x{n}")),
            &a,
            |b, a| b.iter(|| Qr::factor(black_box(a)).unwrap()),
        );
    }
    group.finish();
}

fn bench_symmetric_eigen(c: &mut Criterion) {
    let mut group = c.benchmark_group("symmetric_eigen");
    group.sample_size(10);
    for &n in &[64usize, 128] {
        let a = spd(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &a, |b, a| {
            b.iter(|| SymmetricEigen::factor(black_box(a)).unwrap())
        });
    }
    group.finish();
}

/// Ablation: the paper's cross-product SVD vs high-accuracy Jacobi.
fn bench_svd_methods(c: &mut Criterion) {
    let mut group = c.benchmark_group("svd_ablation");
    group.sample_size(10);
    let a = noise(192, 48);
    group.bench_function("cross_product", |b| {
        b.iter(|| Svd::cross_product(black_box(&a), 1e-10).unwrap())
    });
    group.bench_function("jacobi", |b| {
        b.iter(|| Svd::jacobi(black_box(&a), 1e-10).unwrap())
    });
    group.finish();
}

/// Matrix-free top-k extraction vs the dense eigensolver — the trade the
/// spectral-regression step makes on large graphs.
fn bench_topk_vs_dense(c: &mut Criterion) {
    let mut group = c.benchmark_group("topk_vs_dense_eigen");
    group.sample_size(10);
    let n = 256;
    let a = spd(n);
    group.bench_function("dense_full", |b| {
        b.iter(|| SymmetricEigen::factor(black_box(&a)).unwrap())
    });
    group.bench_function("power_top4", |b| {
        b.iter(|| {
            srda_linalg::power::top_k_symmetric(
                n,
                4,
                |v| srda_linalg::ops::matvec(black_box(&a), v).unwrap(),
                &srda_linalg::power::PowerConfig::default(),
            )
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_cholesky,
    bench_qr,
    bench_symmetric_eigen,
    bench_svd_methods,
    bench_topk_vs_dense
);
criterion_main!(benches);
