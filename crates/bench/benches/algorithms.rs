//! End-to-end training-time benchmarks of the four algorithms (the
//! statistical counterpart of the reproduction binaries' wall-clock
//! columns), plus the bias-trick-vs-explicit-centering ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use srda::{IdrQr, IdrQrConfig, Lda, LdaConfig, Rlda, RldaConfig, Srda, SrdaConfig, SrdaSolver};
use srda_solvers::lsqr::{lsqr, LsqrConfig};
use srda_solvers::{AugmentedOp, CenteredOp};
use std::hint::black_box;

fn dataset(l: usize) -> (srda_linalg::Mat, Vec<usize>) {
    let data = srda_data::mnist_like(0.2, 3);
    let split = srda_data::per_class_split(&data.labels, l, 0);
    let tr = data.select(&split.train);
    (tr.x, tr.labels)
}

fn bench_fit(c: &mut Criterion) {
    let mut group = c.benchmark_group("fit_mnist_like");
    group.sample_size(10);
    for &l in &[20usize, 40] {
        let (x, y) = dataset(l);
        let label = format!("l{l}");
        group.bench_with_input(BenchmarkId::new("lda", &label), &x, |b, x| {
            b.iter(|| {
                Lda::new(LdaConfig::default())
                    .fit_dense(black_box(x), &y)
                    .unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("rlda", &label), &x, |b, x| {
            b.iter(|| {
                Rlda::new(RldaConfig::default())
                    .fit_dense(black_box(x), &y)
                    .unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("srda_ne", &label), &x, |b, x| {
            b.iter(|| {
                Srda::new(SrdaConfig::default())
                    .fit_dense(black_box(x), &y)
                    .unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("srda_lsqr20", &label), &x, |b, x| {
            b.iter(|| {
                Srda::new(SrdaConfig {
                    solver: SrdaSolver::Lsqr {
                        max_iter: 20,
                        tol: 0.0,
                    },
                    ..SrdaConfig::default()
                })
                .fit_dense(black_box(x), &y)
                .unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("idr_qr", &label), &x, |b, x| {
            b.iter(|| {
                IdrQr::new(IdrQrConfig::default())
                    .fit_dense(black_box(x), &y)
                    .unwrap()
            })
        });
    }
    group.finish();
}

/// Ablation: §III.B's bias-absorption trick vs implicit centering, as the
/// per-iteration operator inside LSQR.
fn bench_centering_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("centering_ablation");
    group.sample_size(10);
    let (x, y) = dataset(40);
    let index = srda::ClassIndex::new(&y).unwrap();
    let ybar = srda::responses::generate(&index);
    let cfg = LsqrConfig {
        damp: 1.0,
        max_iter: 20,
        tol: 0.0,
    };
    group.bench_function("bias_trick", |b| {
        b.iter(|| {
            let op = AugmentedOp::new(black_box(&x));
            for j in 0..ybar.ncols() {
                lsqr(&op, &ybar.col(j), &cfg);
            }
        })
    });
    group.bench_function("implicit_centering", |b| {
        b.iter(|| {
            let mu = srda_linalg::stats::col_means(black_box(&x));
            let op = CenteredOp::new(&x, mu);
            for j in 0..ybar.ncols() {
                lsqr(&op, &ybar.col(j), &cfg);
            }
        })
    });
    group.bench_function("explicit_centering", |b| {
        b.iter(|| {
            let (xc, _) = srda_linalg::stats::centered(black_box(&x));
            for j in 0..ybar.ncols() {
                lsqr(&xc, &ybar.col(j), &cfg);
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fit, bench_centering_ablation);
criterion_main!(benches);
