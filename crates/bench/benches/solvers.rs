//! Solver ablation (DESIGN.md §8): primal vs dual normal equations vs
//! LSQR vs CGLS on the same ridge problem, across the `n/m` aspect ratios
//! where the paper's §III.C.1 analysis predicts the crossover.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use srda_linalg::Mat;
use srda_solvers::cgls::{cgls, CglsConfig};
use srda_solvers::lsqr::{lsqr, LsqrConfig};
use srda_solvers::ridge::RidgeSolver;
use std::hint::black_box;

fn noise(m: usize, n: usize) -> Mat {
    Mat::from_fn(m, n, |i, j| {
        let x = (i as f64 * 91.17 + j as f64 * 13.73).sin() * 43758.5453;
        x - x.floor() - 0.5
    })
}

fn bench_ridge_forms(c: &mut Criterion) {
    let mut group = c.benchmark_group("ridge_solvers");
    group.sample_size(10);
    // tall (m > n), square, wide (n > m): the dual should win only when wide
    for &(m, n) in &[(600usize, 150usize), (300, 300), (150, 600)] {
        let x = noise(m, n);
        let y = Mat::from_fn(m, 9, |i, j| ((i + j) as f64 * 0.37).sin());
        let label = format!("{m}x{n}");
        group.bench_with_input(BenchmarkId::new("primal", &label), &x, |b, x| {
            b.iter(|| {
                let s = RidgeSolver::primal(black_box(x), 1.0).unwrap();
                s.solve(x, &y).unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("dual", &label), &x, |b, x| {
            b.iter(|| {
                let s = RidgeSolver::dual(black_box(x), 1.0).unwrap();
                s.solve(x, &y).unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("lsqr20x9", &label), &x, |b, x| {
            b.iter(|| {
                let cfg = LsqrConfig {
                    damp: 1.0,
                    max_iter: 20,
                    tol: 0.0,
                };
                for j in 0..9 {
                    lsqr(black_box(x), &y.col(j), &cfg);
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("cgls20x9", &label), &x, |b, x| {
            b.iter(|| {
                let cfg = CglsConfig {
                    alpha: 1.0,
                    max_iter: 20,
                    tol: 0.0,
                };
                for j in 0..9 {
                    cgls(black_box(x), &y.col(j), &cfg);
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ridge_forms);
criterion_main!(benches);
