//! Microbenchmarks of the dense kernels every algorithm is built from:
//! general product, Gram matrices, matrix-vector products.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use srda_linalg::ops;
use srda_linalg::Mat;
use std::hint::black_box;

fn noise(m: usize, n: usize) -> Mat {
    Mat::from_fn(m, n, |i, j| {
        let x = (i as f64 * 12.9898 + j as f64 * 78.233).sin() * 43758.5453;
        x - x.floor() - 0.5
    })
}

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    group.sample_size(10);
    for &n in &[64usize, 128, 256] {
        let a = noise(n, n);
        let b = noise(n, n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bch, _| {
            bch.iter(|| ops::matmul(black_box(&a), black_box(&b)).unwrap());
        });
    }
    group.finish();
}

fn bench_gram(c: &mut Criterion) {
    let mut group = c.benchmark_group("gram");
    group.sample_size(10);
    for &(m, n) in &[(512usize, 128usize), (128, 512)] {
        let a = noise(m, n);
        group.bench_with_input(BenchmarkId::new("ata", format!("{m}x{n}")), &a, |bch, a| {
            bch.iter(|| ops::gram(black_box(a)))
        });
        group.bench_with_input(BenchmarkId::new("aat", format!("{m}x{n}")), &a, |bch, a| {
            bch.iter(|| ops::gram_t(black_box(a)))
        });
    }
    group.finish();
}

fn bench_matvec(c: &mut Criterion) {
    let mut group = c.benchmark_group("matvec");
    let a = noise(1024, 1024);
    let x: Vec<f64> = (0..1024).map(|i| (i as f64 * 0.37).sin()).collect();
    group.bench_function("forward", |b| {
        b.iter(|| ops::matvec(black_box(&a), black_box(&x)).unwrap())
    });
    group.bench_function("transpose", |b| {
        b.iter(|| ops::matvec_t(black_box(&a), black_box(&x)).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_matmul, bench_gram, bench_matvec);
criterion_main!(benches);
