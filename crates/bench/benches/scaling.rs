//! The linear-time claim as a statistical benchmark: SRDA+LSQR training
//! time on sparse data must grow linearly with the number of documents
//! (fixed density) and with the number of non-zeros per document (fixed
//! document count). Criterion's per-size estimates make the trend visible
//! in `bench_output.txt`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use srda::{Srda, SrdaConfig};
use srda_sparse::{CooBuilder, CsrMatrix};
use std::hint::black_box;

fn text_like(m: usize, n: usize, s: usize, c: usize, seed: u64) -> (CsrMatrix, Vec<usize>) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let labels: Vec<usize> = (0..m).map(|i| i % c).collect();
    let mut b = CooBuilder::with_capacity(m, n, m * s);
    for i in 0..m {
        let band = labels[i] * (n / c);
        for _ in 0..s {
            let j = if rng.gen::<f64>() < 0.4 {
                band + rng.gen_range(0..n / c)
            } else {
                rng.gen_range(0..n)
            };
            b.push(i, j, rng.gen::<f64>()).unwrap();
        }
    }
    let mut x = b.build();
    x.normalize_rows_l2();
    (x, labels)
}

fn bench_scale_m(c: &mut Criterion) {
    let mut group = c.benchmark_group("srda_lsqr_scale_m");
    group.sample_size(10);
    for &m in &[1_000usize, 2_000, 4_000] {
        let (x, y) = text_like(m, 20_000, 60, 10, m as u64);
        group.throughput(Throughput::Elements(m as u64));
        group.bench_with_input(BenchmarkId::from_parameter(m), &x, |b, x| {
            b.iter(|| {
                Srda::new(SrdaConfig::lsqr_default())
                    .fit_sparse(black_box(x), &y)
                    .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_scale_density(c: &mut Criterion) {
    let mut group = c.benchmark_group("srda_lsqr_scale_s");
    group.sample_size(10);
    for &s in &[30usize, 60, 120] {
        let (x, y) = text_like(2_000, 20_000, s, 10, s as u64);
        group.throughput(Throughput::Elements(x.nnz() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(s), &x, |b, x| {
            b.iter(|| {
                Srda::new(SrdaConfig::lsqr_default())
                    .fit_sparse(black_box(x), &y)
                    .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scale_m, bench_scale_density);
criterion_main!(benches);
