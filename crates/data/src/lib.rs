//! # srda-data
//!
//! Synthetic dataset generators for the SRDA reproduction.
//!
//! The paper evaluates on four corpora (PIE faces, Isolet spoken letters,
//! MNIST digits, 20Newsgroups text) that are unavailable in this offline
//! environment. Per DESIGN.md's substitution policy, this crate generates
//! synthetic stand-ins that match the **shape statistics that the paper's
//! claims actually depend on**: the sample/feature/class counts, the dense
//! vs sparse storage, the value range, the per-class sample budget, and —
//! statistically — the small-sample overfitting regime (`m − c ≪ n`) that
//! separates regularized from unregularized discriminant analysis.
//!
//! * [`model`] — a latent-factor Gaussian class model for the dense,
//!   image-like corpora: class centroids plus *shared* within-class
//!   variation factors (the analogue of illumination/pose/style) plus
//!   white noise, affinely mapped into `[0, 1]` like pixel values.
//! * [`text`] — a Zipf background + per-class topic multinomial model for
//!   the sparse corpus, L2-normalized term-frequency rows like the paper's
//!   20Newsgroups preprocessing.
//! * [`datasets`] — the four named generators with the paper's exact
//!   dimensions.
//! * [`split`] — seeded stratified train/test splitting (`l` samples per
//!   class, or a global ratio), matching the paper's protocol of 20 random
//!   splits per configuration.
//! * [`sanitize`] — degenerate-data quarantine: NaN/Inf cells, duplicate
//!   rows, too-small classes, and constant features are detected and
//!   repaired (or rejected) before they reach a fit.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod datasets;
pub mod idx;
pub mod ingest;
pub mod model;
pub mod sanitize;
pub mod split;
pub mod text;

pub use datasets::{isolet_like, mnist_like, newsgroups_like, pie_like};
pub use sanitize::{
    sanitize_dense, sanitize_sparse, NonFinitePolicy, SanitizeConfig, SanitizeError,
    SanitizeReport, SanitizedDense, SanitizedSparse,
};
pub use split::{per_class_split, ratio_split, Split};

use srda_linalg::Mat;
use srda_sparse::CsrMatrix;

/// A dense labeled dataset (samples as rows).
#[derive(Debug, Clone)]
pub struct DenseDataset {
    /// Sample matrix, `m × n`.
    pub x: Mat,
    /// One label in `0..n_classes` per row.
    pub labels: Vec<usize>,
    /// Number of classes.
    pub n_classes: usize,
    /// Human-readable name ("pie-like", ...).
    pub name: &'static str,
}

/// A sparse labeled dataset (samples as rows).
#[derive(Debug, Clone)]
pub struct SparseDataset {
    /// Sample matrix, `m × n`, CSR.
    pub x: CsrMatrix,
    /// One label in `0..n_classes` per row.
    pub labels: Vec<usize>,
    /// Number of classes.
    pub n_classes: usize,
    /// Human-readable name.
    pub name: &'static str,
}

impl DenseDataset {
    /// Restrict to the given rows.
    pub fn select(&self, idx: &[usize]) -> DenseDataset {
        DenseDataset {
            x: self.x.select_rows(idx),
            labels: idx.iter().map(|&i| self.labels[i]).collect(),
            n_classes: self.n_classes,
            name: self.name,
        }
    }
}

impl SparseDataset {
    /// Restrict to the given rows.
    pub fn select(&self, idx: &[usize]) -> SparseDataset {
        SparseDataset {
            x: self.x.select_rows(idx),
            labels: idx.iter().map(|&i| self.labels[i]).collect(),
            n_classes: self.n_classes,
            name: self.name,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_select_keeps_labels_aligned() {
        let x = Mat::from_fn(4, 2, |i, j| (i * 2 + j) as f64);
        let d = DenseDataset {
            x,
            labels: vec![0, 1, 0, 1],
            n_classes: 2,
            name: "t",
        };
        let s = d.select(&[3, 0]);
        assert_eq!(s.labels, vec![1, 0]);
        assert_eq!(s.x.row(0), &[6.0, 7.0]);
    }

    #[test]
    fn sparse_select_keeps_labels_aligned() {
        let x = CsrMatrix::from_dense(&Mat::from_fn(3, 2, |i, _| i as f64), 0.0);
        let d = SparseDataset {
            x,
            labels: vec![0, 1, 2],
            n_classes: 3,
            name: "t",
        };
        let s = d.select(&[2, 1]);
        assert_eq!(s.labels, vec![2, 1]);
        assert_eq!(s.x.nrows(), 2);
    }
}
