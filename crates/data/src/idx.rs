//! Reader for the IDX binary format (the container MNIST ships in:
//! `train-images-idx3-ubyte` etc.), so the real corpus can be dropped in
//! for the synthetic one when it is available.
//!
//! Format (big-endian): magic `[0, 0, type, ndim]`, then `ndim` u32
//! dimension sizes, then the payload in row-major order. We support the
//! two type codes MNIST uses: `0x08` (unsigned byte) for both images and
//! labels.

use srda_linalg::Mat;

/// Errors from IDX parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IdxError {
    /// The buffer ended before the declared contents.
    Truncated {
        /// Bytes needed.
        needed: usize,
        /// Bytes present.
        got: usize,
    },
    /// Bad magic prefix or unsupported type code.
    BadMagic {
        /// The four magic bytes found.
        magic: [u8; 4],
    },
    /// Dimension count outside the supported 1–3 range.
    UnsupportedRank {
        /// The declared rank.
        rank: u8,
    },
}

impl std::fmt::Display for IdxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IdxError::Truncated { needed, got } => {
                write!(f, "idx data truncated: need {needed} bytes, have {got}")
            }
            IdxError::BadMagic { magic } => write!(f, "bad idx magic {magic:?}"),
            IdxError::UnsupportedRank { rank } => write!(f, "unsupported idx rank {rank}"),
        }
    }
}

impl std::error::Error for IdxError {}

fn read_u32(bytes: &[u8], at: usize) -> Result<u32, IdxError> {
    if at + 4 > bytes.len() {
        return Err(IdxError::Truncated {
            needed: at + 4,
            got: bytes.len(),
        });
    }
    Ok(u32::from_be_bytes([
        bytes[at],
        bytes[at + 1],
        bytes[at + 2],
        bytes[at + 3],
    ]))
}

/// A decoded IDX tensor of unsigned bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IdxTensor {
    /// Dimension sizes (1–3 dims).
    pub shape: Vec<usize>,
    /// Row-major payload.
    pub data: Vec<u8>,
}

/// Decode an IDX byte buffer.
pub fn parse_idx(bytes: &[u8]) -> Result<IdxTensor, IdxError> {
    if bytes.len() < 4 {
        return Err(IdxError::Truncated {
            needed: 4,
            got: bytes.len(),
        });
    }
    let magic = [bytes[0], bytes[1], bytes[2], bytes[3]];
    if magic[0] != 0 || magic[1] != 0 || magic[2] != 0x08 {
        return Err(IdxError::BadMagic { magic });
    }
    let rank = magic[3];
    if !(1..=3).contains(&rank) {
        return Err(IdxError::UnsupportedRank { rank });
    }
    let mut shape = Vec::with_capacity(rank as usize);
    let mut off = 4;
    for _ in 0..rank {
        shape.push(read_u32(bytes, off)? as usize);
        off += 4;
    }
    let total: usize = shape.iter().product();
    if bytes.len() < off + total {
        return Err(IdxError::Truncated {
            needed: off + total,
            got: bytes.len(),
        });
    }
    Ok(IdxTensor {
        shape,
        data: bytes[off..off + total].to_vec(),
    })
}

/// Interpret an IDX image tensor (`N × H × W` or `N × D`) as an `N × D`
/// matrix of `[0, 1]` values (bytes divided by 255 — the paper's pixel
/// scaling).
pub fn images_to_mat(t: &IdxTensor) -> Mat {
    let (n, d) = match t.shape.len() {
        1 => (t.shape[0], 1),
        2 => (t.shape[0], t.shape[1]),
        _ => (t.shape[0], t.shape[1] * t.shape[2]),
    };
    Mat::from_fn(n, d, |i, j| t.data[i * d + j] as f64 / 255.0)
}

/// Interpret an IDX label vector as `usize` labels.
pub fn labels_to_vec(t: &IdxTensor) -> Vec<usize> {
    t.data.iter().map(|&b| b as usize).collect()
}

/// Encode a tensor back to IDX bytes (used by tests and by anyone
/// exporting data for other MNIST-consuming tools).
pub fn encode_idx(t: &IdxTensor) -> Vec<u8> {
    let mut out = vec![0u8, 0, 0x08, t.shape.len() as u8];
    for &d in &t.shape {
        out.extend_from_slice(&(d as u32).to_be_bytes());
    }
    out.extend_from_slice(&t.data);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn image_fixture() -> IdxTensor {
        IdxTensor {
            shape: vec![2, 2, 3],
            data: vec![0, 51, 102, 153, 204, 255, 10, 20, 30, 40, 50, 60],
        }
    }

    #[test]
    fn roundtrip() {
        let t = image_fixture();
        let bytes = encode_idx(&t);
        let back = parse_idx(&bytes).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn labels_roundtrip() {
        let t = IdxTensor {
            shape: vec![4],
            data: vec![3, 1, 4, 1],
        };
        let back = parse_idx(&encode_idx(&t)).unwrap();
        assert_eq!(labels_to_vec(&back), vec![3, 1, 4, 1]);
    }

    #[test]
    fn images_scale_to_unit_interval() {
        let m = images_to_mat(&image_fixture());
        assert_eq!(m.shape(), (2, 6));
        assert_eq!(m[(0, 0)], 0.0);
        assert_eq!(m[(0, 5)], 1.0);
        assert!((m[(0, 1)] - 0.2).abs() < 1e-12);
    }

    #[test]
    fn truncation_detected() {
        let t = image_fixture();
        let mut bytes = encode_idx(&t);
        bytes.truncate(bytes.len() - 1);
        assert!(matches!(parse_idx(&bytes), Err(IdxError::Truncated { .. })));
        assert!(matches!(
            parse_idx(&[0, 0]),
            Err(IdxError::Truncated { .. })
        ));
        // truncated mid-header
        assert!(matches!(
            parse_idx(&[0, 0, 0x08, 2, 0, 0]),
            Err(IdxError::Truncated { .. })
        ));
    }

    #[test]
    fn bad_magic_detected() {
        assert!(matches!(
            parse_idx(&[1, 0, 0x08, 1, 0, 0, 0, 0]),
            Err(IdxError::BadMagic { .. })
        ));
        // wrong type code (0x0D = float)
        assert!(matches!(
            parse_idx(&[0, 0, 0x0D, 1, 0, 0, 0, 0]),
            Err(IdxError::BadMagic { .. })
        ));
    }

    #[test]
    fn unsupported_rank() {
        assert!(matches!(
            parse_idx(&[0, 0, 0x08, 4]),
            Err(IdxError::UnsupportedRank { rank: 4 })
        ));
        assert!(matches!(
            parse_idx(&[0, 0, 0x08, 0]),
            Err(IdxError::UnsupportedRank { rank: 0 })
        ));
    }

    #[test]
    fn mnist_like_header_shape() {
        // a tensor with MNIST's exact header layout (tiny payload)
        let t = IdxTensor {
            shape: vec![1, 28, 28],
            data: vec![128; 784],
        };
        let bytes = encode_idx(&t);
        assert_eq!(&bytes[..4], &[0, 0, 8, 3]);
        let m = images_to_mat(&parse_idx(&bytes).unwrap());
        assert_eq!(m.shape(), (1, 784));
    }

    #[test]
    fn display_messages() {
        let e = IdxError::Truncated { needed: 9, got: 3 };
        assert!(e.to_string().contains("9"));
        let b = IdxError::BadMagic {
            magic: [9, 9, 9, 9],
        };
        assert!(b.to_string().contains("magic"));
    }
}
