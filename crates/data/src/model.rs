//! Latent-factor Gaussian class model for dense, image-like data.
//!
//! Each sample of class `k` is
//!
//! ```text
//! x = signal·B·z_k  +  Σ_f w_f·factor_scale·e_f  +  noise_scale·ε
//! ```
//!
//! where
//!
//! * `B` (`n × class_rank`, unit columns) spans a low-dimensional **class
//!   subspace** and `z_k` places centroid `k` in it — real image classes
//!   differ along few directions, not all `n` pixels;
//! * the `e_f` are `n_factors` shared within-class variation directions
//!   (illumination / pose / style). Crucially, a fraction
//!   `factor_class_overlap` of each factor lies *inside* the class
//!   subspace, so within-class variation interferes with the class signal
//!   — this is what discriminant analysis must suppress, and what makes
//!   its small-sample estimation genuinely hard;
//! * `ε` is white noise.
//!
//! Finally all features are affinely mapped into `[0, 1]` like pixel
//! values.
//!
//! Why this preserves the paper's phenomena: the Bayes error is nonzero
//! (classes overlap along the contaminated subspace directions), accuracy
//! improves with the per-class training budget (centroid and scatter
//! estimates sharpen), and with few samples and large `n` the empirical
//! within-class scatter is singular, so unregularized LDA overfits — the
//! exact regime of the paper's Tables III–VIII.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use srda_linalg::Mat;

/// Parameters of the latent-factor Gaussian generator.
#[derive(Debug, Clone)]
pub struct GaussianSpec {
    /// Number of classes `c`.
    pub n_classes: usize,
    /// Feature dimension `n`.
    pub n_features: usize,
    /// Samples generated per class.
    pub samples_per_class: usize,
    /// Dimension of the class subspace (defaults near `c − 1`).
    pub class_rank: usize,
    /// Scale of the class signal (inter-centroid distance ≈ `√2·signal`).
    pub signal: f64,
    /// Number of shared within-class variation factors `q`.
    pub n_factors: usize,
    /// Scale of one factor's displacement.
    pub factor_scale: f64,
    /// Fraction (0..1) of each factor lying inside the class subspace.
    pub factor_class_overlap: f64,
    /// White-noise standard deviation per feature.
    pub noise_scale: f64,
    /// Standard deviation of isotropic noise *inside* the class subspace,
    /// per subspace direction. This is the irreducible (Bayes) confusion:
    /// it is white within the very subspace carrying the class signal, so
    /// no linear method can project it away — it sets the error floor
    /// every algorithm converges to as the training budget grows, like
    /// the plateaus in the paper's Figures 1–3.
    pub class_noise: f64,
}

/// Standard-normal sampler (Box-Muller; `rand`'s distributions crate is
/// not on the approved dependency list, so we roll the classic transform).
pub fn normal(rng: &mut SmallRng) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        let u2: f64 = rng.gen::<f64>();
        if u1 > f64::MIN_POSITIVE {
            return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        }
    }
}

fn unit_vector(n: usize, rng: &mut SmallRng) -> Vec<f64> {
    let mut v: Vec<f64> = (0..n).map(|_| normal(rng)).collect();
    srda_linalg::vector::normalize(&mut v);
    v
}

/// Generate `(x, labels)` from the spec, deterministically from `seed`.
/// Rows are grouped by class (class 0 first); shuffling is the splitters'
/// job, so a given seed always produces the same population.
pub fn generate(spec: &GaussianSpec, seed: u64) -> (Mat, Vec<usize>) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let (c, n, per) = (spec.n_classes, spec.n_features, spec.samples_per_class);
    let (q, d) = (spec.n_factors, spec.class_rank.max(1));

    // class subspace basis B: d unit columns (near-orthogonal for d ≪ n)
    let b: Vec<Vec<f64>> = (0..d).map(|_| unit_vector(n, &mut rng)).collect();

    // centroids μ_k = signal · B z_k with ‖z_k‖ ≈ 1
    let mut centroids = Mat::zeros(c, n);
    for k in 0..c {
        let z: Vec<f64> = (0..d)
            .map(|_| normal(&mut rng) / (d as f64).sqrt())
            .collect();
        for (j, bj) in b.iter().enumerate() {
            srda_linalg::vector::axpy(spec.signal * z[j], bj, centroids.row_mut(k));
        }
    }

    // factor directions e_f = ov·B u_f + √(1−ov²)·g_f
    let ov = spec.factor_class_overlap.clamp(0.0, 1.0);
    let ortho = (1.0 - ov * ov).sqrt();
    let mut factors = Mat::zeros(q, n);
    for f in 0..q {
        let u: Vec<f64> = {
            let mut v: Vec<f64> = (0..d).map(|_| normal(&mut rng)).collect();
            srda_linalg::vector::normalize(&mut v);
            v
        };
        for (j, bj) in b.iter().enumerate() {
            srda_linalg::vector::axpy(ov * u[j], bj, factors.row_mut(f));
        }
        let g = unit_vector(n, &mut rng);
        srda_linalg::vector::axpy(ortho, &g, factors.row_mut(f));
    }

    let m = c * per;
    let mut x = Mat::zeros(m, n);
    let mut labels = Vec::with_capacity(m);
    let mut row_idx = 0;
    for k in 0..c {
        for _ in 0..per {
            labels.push(k);
            x.row_mut(row_idx).copy_from_slice(centroids.row(k));
            for f in 0..q {
                let w = spec.factor_scale * normal(&mut rng);
                srda_linalg::vector::axpy(w, factors.row(f), x.row_mut(row_idx));
            }
            if spec.class_noise > 0.0 {
                for bj in &b {
                    let xi = spec.class_noise * normal(&mut rng);
                    srda_linalg::vector::axpy(xi, bj, x.row_mut(row_idx));
                }
            }
            if spec.noise_scale > 0.0 {
                for v in x.row_mut(row_idx) {
                    *v += spec.noise_scale * normal(&mut rng);
                }
            }
            row_idx += 1;
        }
    }

    // affine map to [0, 1] like pixel values
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &v in x.as_slice() {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    if hi > lo {
        let inv = 1.0 / (hi - lo);
        for v in x.as_mut_slice() {
            *v = (*v - lo) * inv;
        }
    }

    (x, labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> GaussianSpec {
        GaussianSpec {
            n_classes: 4,
            n_features: 20,
            samples_per_class: 15,
            class_rank: 3,
            signal: 1.0,
            n_factors: 3,
            factor_scale: 0.2,
            factor_class_overlap: 0.5,
            noise_scale: 0.05,
            class_noise: 0.0,
        }
    }

    #[test]
    fn shapes_and_labels() {
        let (x, labels) = generate(&small_spec(), 7);
        assert_eq!(x.shape(), (60, 20));
        assert_eq!(labels.len(), 60);
        for k in 0..4 {
            assert_eq!(labels.iter().filter(|&&l| l == k).count(), 15);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let (x1, l1) = generate(&small_spec(), 42);
        let (x2, l2) = generate(&small_spec(), 42);
        assert!(x1.approx_eq(&x2, 0.0));
        assert_eq!(l1, l2);
        let (x3, _) = generate(&small_spec(), 43);
        assert!(!x1.approx_eq(&x3, 1e-6));
    }

    #[test]
    fn values_in_unit_interval() {
        let (x, _) = generate(&small_spec(), 1);
        for &v in x.as_slice() {
            assert!((0.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn classes_are_separated() {
        let (x, labels) = generate(&small_spec(), 3);
        let (cent, _) = srda_linalg::stats::class_means(&x, &labels, 4).unwrap();
        let mut within = 0.0;
        for (i, &k) in labels.iter().enumerate() {
            within += srda_linalg::vector::dist2_sq(x.row(i), cent.row(k)).sqrt();
        }
        within /= labels.len() as f64;
        let mut between = 0.0;
        let mut cnt = 0;
        for a in 0..4 {
            for b in (a + 1)..4 {
                between += srda_linalg::vector::dist2_sq(cent.row(a), cent.row(b)).sqrt();
                cnt += 1;
            }
        }
        between /= cnt as f64;
        assert!(
            between > 0.5 * within,
            "classes degenerate: between {between}, within {within}"
        );
    }

    #[test]
    fn normal_sampler_moments() {
        let mut rng = SmallRng::seed_from_u64(9);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn within_class_variation_is_shared_low_rank() {
        // with noise ≈ 0, centered class data lives in a q-dim subspace
        let spec = GaussianSpec {
            noise_scale: 0.0,
            ..small_spec()
        };
        let (x, labels) = generate(&spec, 5);
        let idx: Vec<usize> = labels
            .iter()
            .enumerate()
            .filter(|(_, &l)| l == 0)
            .map(|(i, _)| i)
            .collect();
        let sub = x.select_rows(&idx);
        let (centered, _) = srda_linalg::stats::centered(&sub);
        // tolerance above the cross-product method's √ε noise floor
        let svd = srda_linalg::Svd::cross_product(&centered, 1e-6).unwrap();
        assert!(
            svd.rank() <= spec.n_factors,
            "rank {} exceeds factor count {}",
            svd.rank(),
            spec.n_factors
        );
    }

    #[test]
    fn factor_overlap_contaminates_class_subspace() {
        // with full overlap, factors lie inside span(B): centered data of
        // one class projected on the orthogonal complement of B is ~noise
        let spec = GaussianSpec {
            factor_class_overlap: 1.0,
            noise_scale: 0.0,
            samples_per_class: 30,
            ..small_spec()
        };
        let (x, labels) = generate(&spec, 8);
        // class-0 deviations
        let idx: Vec<usize> = labels
            .iter()
            .enumerate()
            .filter(|(_, &l)| l == 0)
            .map(|(i, _)| i)
            .collect();
        let sub = x.select_rows(&idx);
        let (centered, _) = srda_linalg::stats::centered(&sub);
        // centered rows must have rank ≤ class_rank (factors ⊂ span(B))
        let svd = srda_linalg::Svd::cross_product(&centered, 1e-6).unwrap();
        assert!(svd.rank() <= spec.class_rank);
    }

    #[test]
    fn zero_overlap_keeps_factors_out_of_class_subspace() {
        // with zero overlap and zero noise, factor directions are (nearly)
        // orthogonal to the class subspace
        let spec = GaussianSpec {
            factor_class_overlap: 0.0,
            noise_scale: 0.0,
            n_features: 400, // random unit vectors are near-orthogonal
            ..small_spec()
        };
        let (x, labels) = generate(&spec, 4);
        let (cent, _) = srda_linalg::stats::class_means(&x, &labels, 4).unwrap();
        // inter-centroid direction
        let mut diff: Vec<f64> = cent
            .row(0)
            .iter()
            .zip(cent.row(1))
            .map(|(a, b)| a - b)
            .collect();
        srda_linalg::vector::normalize(&mut diff);
        // within-class deviations projected on it are small
        let idx: Vec<usize> = (0..labels.len()).filter(|&i| labels[i] == 0).collect();
        let sub = x.select_rows(&idx);
        let (centered, _) = srda_linalg::stats::centered(&sub);
        let mut max_proj = 0.0f64;
        let mut max_norm = 0.0f64;
        for i in 0..centered.nrows() {
            max_proj = max_proj.max(srda_linalg::vector::dot(centered.row(i), &diff).abs());
            max_norm = max_norm.max(srda_linalg::vector::norm2(centered.row(i)));
        }
        assert!(
            max_proj < 0.35 * max_norm,
            "projection {max_proj} vs norm {max_norm}"
        );
    }
}
