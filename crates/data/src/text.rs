//! Zipf/topic multinomial model for sparse, text-like data.
//!
//! Documents are bags of terms. Terms are drawn from a mixture of a shared
//! Zipf-distributed background vocabulary and a per-class topic (a Zipf
//! distribution over a class-specific permuted subset of the vocabulary).
//! Term counts become term-frequency vectors normalized to unit L2 norm —
//! exactly the paper's 20Newsgroups preprocessing ("each document is then
//! represented as a term-frequency vector and normalized to 1").
//!
//! The resulting matrix is as sparse as real text (the paper's `s`, the
//! average number of distinct terms per document, is a direct input), so
//! SRDA-with-LSQR gets the `O(kcms)` behaviour the paper measures, while
//! any algorithm that centers the matrix densifies 26k-dimensional rows
//! and hits the memory wall.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use srda_sparse::{CooBuilder, CsrMatrix};

/// Parameters of the sparse text generator.
#[derive(Debug, Clone)]
pub struct TextSpec {
    /// Number of classes (newsgroups).
    pub n_classes: usize,
    /// Vocabulary size (feature dimension).
    pub vocab_size: usize,
    /// Documents generated per class.
    pub docs_per_class: usize,
    /// Mean number of term draws per document (document length).
    pub mean_doc_len: usize,
    /// Zipf exponent of the background distribution (≈ 1.1 for text).
    pub zipf_exponent: f64,
    /// Number of topic terms per class.
    pub topic_terms: usize,
    /// Probability that a term draw comes from the class topic rather than
    /// the background (controls class separability / error-rate level).
    pub topic_weight: f64,
    /// Probability that a document is *off-topic*: its topic draws come
    /// from a uniformly random class's topic while it keeps its own label.
    /// Models cross-posts/quotes in real newsgroups; sets the irreducible
    /// error floor (the paper's ~11% at 50% training data) and punishes
    /// unregularized methods that chase these outliers.
    pub doc_confusion: f64,
}

impl Default for TextSpec {
    fn default() -> Self {
        TextSpec {
            n_classes: 20,
            vocab_size: 26_214,
            docs_per_class: 947,
            mean_doc_len: 120,
            zipf_exponent: 1.1,
            topic_terms: 400,
            topic_weight: 0.18,
            doc_confusion: 0.15,
        }
    }
}

/// A cumulative distribution table for fast categorical sampling.
struct Cdf {
    cum: Vec<f64>,
}

impl Cdf {
    fn zipf(n: usize, exponent: f64) -> Cdf {
        let mut cum = Vec::with_capacity(n);
        let mut total = 0.0;
        for r in 1..=n {
            total += 1.0 / (r as f64).powf(exponent);
            cum.push(total);
        }
        let inv = 1.0 / total;
        for v in &mut cum {
            *v *= inv;
        }
        Cdf { cum }
    }

    fn sample(&self, rng: &mut SmallRng) -> usize {
        let u: f64 = rng.gen();
        // first index with cum >= u
        match self
            .cum
            .binary_search_by(|probe| probe.partial_cmp(&u).unwrap())
        {
            Ok(i) => i,
            Err(i) => i.min(self.cum.len() - 1),
        }
    }
}

/// Generate `(x, labels)`: an L2-normalized term-frequency CSR matrix with
/// rows grouped by class, deterministic in `seed`.
pub fn generate(spec: &TextSpec, seed: u64) -> (CsrMatrix, Vec<usize>) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let v = spec.vocab_size;
    let background = Cdf::zipf(v, spec.zipf_exponent);
    // topic rank distribution: Zipf over the class's topic terms
    let topic_cdf = Cdf::zipf(spec.topic_terms, 1.0);

    // per-class topic terms: a deterministic pseudo-random slice of the
    // mid-frequency vocabulary (avoiding the handful of stop-word-like
    // top-ranked terms that every class shares)
    let topic_start = 50.min(v.saturating_sub(spec.topic_terms));
    let mut class_terms: Vec<Vec<usize>> = Vec::with_capacity(spec.n_classes);
    for _ in 0..spec.n_classes {
        let mut terms = Vec::with_capacity(spec.topic_terms);
        for _ in 0..spec.topic_terms {
            // rejection-free: any mid-band term; collisions across classes
            // are fine (real newsgroups share vocabulary too)
            let t = topic_start + rng.gen_range(0..v - topic_start);
            terms.push(t);
        }
        class_terms.push(terms);
    }

    let m = spec.n_classes * spec.docs_per_class;
    let mut builder = CooBuilder::with_capacity(m, v, m * spec.mean_doc_len / 2);
    let mut labels = Vec::with_capacity(m);
    let mut row = 0usize;
    for k in 0..spec.n_classes {
        for _ in 0..spec.docs_per_class {
            labels.push(k);
            // off-topic documents draw their topical terms from another
            // class while keeping label k
            let topic_class = if rng.gen::<f64>() < spec.doc_confusion {
                rng.gen_range(0..spec.n_classes)
            } else {
                k
            };
            // document length: heavy-tailed around the mean (many short
            // documents, a few long ones), at least 5 terms
            let u: f64 = rng.gen();
            let len_jitter = 0.15 + 2.0 * u * u;
            let len = ((spec.mean_doc_len as f64 * len_jitter) as usize).max(5);
            for _ in 0..len {
                let term = if rng.gen::<f64>() < spec.topic_weight {
                    class_terms[topic_class][topic_cdf.sample(&mut rng)]
                } else {
                    background.sample(&mut rng)
                };
                builder
                    .push(row, term, 1.0)
                    .expect("term index within vocabulary");
            }
            row += 1;
        }
    }

    let mut x = builder.build();
    x.normalize_rows_l2();
    (x, labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> TextSpec {
        TextSpec {
            n_classes: 4,
            vocab_size: 2000,
            docs_per_class: 40,
            mean_doc_len: 60,
            zipf_exponent: 1.1,
            topic_terms: 80,
            topic_weight: 0.4,
            doc_confusion: 0.0,
        }
    }

    #[test]
    fn shapes_and_sparsity() {
        let (x, labels) = generate(&small_spec(), 11);
        assert_eq!(x.shape(), (160, 2000));
        assert_eq!(labels.len(), 160);
        // sparse: far fewer nnz than dense entries
        assert!(x.density() < 0.1, "density {}", x.density());
        // every doc has at least one term
        for i in 0..160 {
            assert!(x.row_nnz(i) > 0);
        }
    }

    #[test]
    fn rows_are_unit_normalized() {
        let (x, _) = generate(&small_spec(), 3);
        for i in 0..x.nrows() {
            let norm_sq: f64 = x.row_entries(i).map(|(_, v)| v * v).sum();
            assert!((norm_sq - 1.0).abs() < 1e-10);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let (x1, l1) = generate(&small_spec(), 5);
        let (x2, l2) = generate(&small_spec(), 5);
        assert_eq!(x1, x2);
        assert_eq!(l1, l2);
        let (x3, _) = generate(&small_spec(), 6);
        assert_ne!(x1, x3);
    }

    #[test]
    fn zipf_head_is_heavier_than_tail() {
        let (x, _) = generate(&small_spec(), 9);
        // column sums: first-ranked background terms appear far more often
        let mu = x.col_means();
        let head: f64 = mu[..20].iter().sum();
        let tail: f64 = mu[1000..1020].iter().sum();
        assert!(head > 5.0 * tail, "head {head}, tail {tail}");
    }

    #[test]
    fn classes_are_separable_by_centroid() {
        // nearest class-centroid (cosine) on the training rows should beat
        // chance by a wide margin — the data carries class signal
        let (x, labels) = generate(&small_spec(), 13);
        let c = 4;
        let n = x.ncols();
        let mut centroids = vec![vec![0.0; n]; c];
        let mut counts = vec![0usize; c];
        for i in 0..x.nrows() {
            counts[labels[i]] += 1;
            for (j, v) in x.row_entries(i) {
                centroids[labels[i]][j] += v;
            }
        }
        for (cv, &cnt) in centroids.iter_mut().zip(&counts) {
            for v in cv.iter_mut() {
                *v /= cnt as f64;
            }
        }
        let mut correct = 0;
        for i in 0..x.nrows() {
            let mut best = (f64::NEG_INFINITY, 0);
            for (k, cv) in centroids.iter().enumerate() {
                let dot: f64 = x.row_entries(i).map(|(j, v)| v * cv[j]).sum();
                if dot > best.0 {
                    best = (dot, k);
                }
            }
            if best.1 == labels[i] {
                correct += 1;
            }
        }
        let acc = correct as f64 / x.nrows() as f64;
        assert!(acc > 0.6, "centroid accuracy only {acc}");
    }

    #[test]
    fn cdf_sampling_is_in_range_and_biased_to_head() {
        let cdf = Cdf::zipf(100, 1.2);
        let mut rng = SmallRng::seed_from_u64(2);
        let mut head = 0;
        for _ in 0..1000 {
            let s = cdf.sample(&mut rng);
            assert!(s < 100);
            if s < 10 {
                head += 1;
            }
        }
        assert!(head > 400, "only {head} of 1000 draws in the top 10 ranks");
    }
}
