//! Seeded stratified train/test splitting — the paper's protocol.
//!
//! Every experiment in the paper is "averaged over 20 random splits" where
//! a split selects `l` training samples per class (dense corpora) or a
//! percentage per class (20Newsgroups) and tests on the rest. These
//! helpers produce exactly that, deterministically per seed.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A train/test partition by row index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Split {
    /// Training row indices (class-grouped, shuffled within class).
    pub train: Vec<usize>,
    /// Test row indices (the complement).
    pub test: Vec<usize>,
}

/// Fisher-Yates shuffle with our own RNG plumbing.
fn shuffle(v: &mut [usize], rng: &mut SmallRng) {
    for i in (1..v.len()).rev() {
        let j = rng.gen_range(0..=i);
        v.swap(i, j);
    }
}

fn class_buckets(labels: &[usize]) -> Vec<Vec<usize>> {
    let c = labels.iter().max().map_or(0, |&m| m + 1);
    let mut buckets = vec![Vec::new(); c];
    for (i, &k) in labels.iter().enumerate() {
        buckets[k].push(i);
    }
    buckets
}

/// Select `l` training samples from every class (all remaining samples go
/// to the test set). Classes with fewer than `l` samples contribute all of
/// them to training (and none to test).
///
/// ```
/// use srda_data::per_class_split;
///
/// let labels = [0, 0, 0, 1, 1, 1];
/// let split = per_class_split(&labels, 2, 42);
/// assert_eq!(split.train.len(), 4); // 2 per class
/// assert_eq!(split.test.len(), 2);
/// ```
pub fn per_class_split(labels: &[usize], l: usize, seed: u64) -> Split {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut train = Vec::new();
    let mut test = Vec::new();
    for mut bucket in class_buckets(labels) {
        shuffle(&mut bucket, &mut rng);
        let take = l.min(bucket.len());
        train.extend_from_slice(&bucket[..take]);
        test.extend_from_slice(&bucket[take..]);
    }
    Split { train, test }
}

/// Select a fraction `frac ∈ (0, 1)` of every class for training (at least
/// one sample per class).
pub fn ratio_split(labels: &[usize], frac: f64, seed: u64) -> Split {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut train = Vec::new();
    let mut test = Vec::new();
    for mut bucket in class_buckets(labels) {
        shuffle(&mut bucket, &mut rng);
        let take = ((bucket.len() as f64 * frac).round() as usize).clamp(1, bucket.len());
        train.extend_from_slice(&bucket[..take]);
        test.extend_from_slice(&bucket[take..]);
    }
    Split { train, test }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels() -> Vec<usize> {
        // 3 classes with 10, 8, 12 samples
        let mut l = vec![0; 10];
        l.extend(vec![1; 8]);
        l.extend(vec![2; 12]);
        l
    }

    #[test]
    fn per_class_counts() {
        let s = per_class_split(&labels(), 5, 1);
        assert_eq!(s.train.len(), 15);
        assert_eq!(s.test.len(), 30 - 15);
        // 5 of each class in train
        let lab = labels();
        for k in 0..3 {
            assert_eq!(s.train.iter().filter(|&&i| lab[i] == k).count(), 5);
        }
    }

    #[test]
    fn partition_is_disjoint_and_complete() {
        let s = per_class_split(&labels(), 4, 7);
        let mut all: Vec<usize> = s.train.iter().chain(&s.test).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..30).collect::<Vec<_>>());
    }

    #[test]
    fn deterministic_per_seed_and_varies_across_seeds() {
        let a = per_class_split(&labels(), 5, 3);
        let b = per_class_split(&labels(), 5, 3);
        assert_eq!(a, b);
        let c = per_class_split(&labels(), 5, 4);
        assert_ne!(a.train, c.train);
    }

    #[test]
    fn oversized_l_takes_everything() {
        let s = per_class_split(&labels(), 100, 1);
        assert_eq!(s.train.len(), 30);
        assert!(s.test.is_empty());
    }

    #[test]
    fn ratio_split_proportions() {
        let s = ratio_split(&labels(), 0.5, 2);
        let lab = labels();
        assert_eq!(s.train.iter().filter(|&&i| lab[i] == 0).count(), 5);
        assert_eq!(s.train.iter().filter(|&&i| lab[i] == 1).count(), 4);
        assert_eq!(s.train.iter().filter(|&&i| lab[i] == 2).count(), 6);
    }

    #[test]
    fn ratio_split_keeps_at_least_one_per_class() {
        let s = ratio_split(&labels(), 0.01, 2);
        let lab = labels();
        for k in 0..3 {
            assert!(s.train.iter().any(|&i| lab[i] == k));
        }
    }

    #[test]
    fn different_l_nested_behaviour() {
        // same seed: the first l indices per class are a prefix, so train
        // sets grow monotonically with l
        let small = per_class_split(&labels(), 2, 9);
        let large = per_class_split(&labels(), 4, 9);
        for i in &small.train {
            assert!(large.train.contains(i));
        }
    }
}
