//! The four named generators, dimensioned exactly like the paper's
//! Table II:
//!
//! | dataset | size (m) | dim (n) | classes (c) |
//! |---|---|---|---|
//! | PIE | 11560 | 1024 | 68 |
//! | Isolet | 6237 | 617 | 26 |
//! | MNIST | 4000 | 784 | 10 |
//! | 20Newsgroups | 18941 | 26214 | 20 |
//!
//! Each generator takes a `scale ∈ (0, 1]` knob that shrinks the sample
//! count (and for 20NG the vocabulary) proportionally, so tests and quick
//! examples can run on small instances while the benchmark binaries use
//! `scale = 1.0` for the paper's full shapes.

use crate::model::{generate as gen_dense, GaussianSpec};
use crate::text::{generate as gen_text, TextSpec};
use crate::{DenseDataset, SparseDataset};

fn scaled(v: usize, scale: f64, min: usize) -> usize {
    ((v as f64 * scale).round() as usize).max(min)
}

/// PIE-like faces: 68 subjects, 32×32 = 1024 pixels, 170 images each.
/// Within-class variation is dominated by a few shared factors
/// (illumination/pose), mirrored by `n_factors = 12`.
pub fn pie_like(scale: f64, seed: u64) -> DenseDataset {
    let spec = GaussianSpec {
        n_classes: 68,
        n_features: 1024,
        samples_per_class: scaled(170, scale, 12),
        class_rank: 40,
        signal: 1.0,
        n_factors: 34,
        factor_scale: 0.8,
        factor_class_overlap: 0.85,
        noise_scale: 0.05,
        class_noise: 0.15,
    };
    let (x, labels) = gen_dense(&spec, seed ^ 0x5049_4500);
    DenseDataset {
        x,
        labels,
        n_classes: 68,
        name: "pie-like",
    }
}

/// Isolet-like spoken letters: 26 classes, 617 acoustic features,
/// 240 utterances per class (120 train-pool + 120 test-pool in the paper;
/// we generate one pool and split per experiment).
pub fn isolet_like(scale: f64, seed: u64) -> DenseDataset {
    let spec = GaussianSpec {
        n_classes: 26,
        n_features: 617,
        samples_per_class: scaled(240, scale, 12),
        class_rank: 20,
        signal: 1.0,
        n_factors: 10,
        factor_scale: 1.2,
        factor_class_overlap: 0.85,
        noise_scale: 0.05,
        class_noise: 0.20,
    };
    let (x, labels) = gen_dense(&spec, seed ^ 0x49534f00);
    DenseDataset {
        x,
        labels,
        n_classes: 26,
        name: "isolet-like",
    }
}

/// MNIST-like digits: 10 classes, 28×28 = 784 pixels, 400 images per class
/// (2000 train-pool + 2000 test-pool in the paper's subset).
pub fn mnist_like(scale: f64, seed: u64) -> DenseDataset {
    let spec = GaussianSpec {
        n_classes: 10,
        n_features: 784,
        samples_per_class: scaled(400, scale, 12),
        class_rank: 9,
        signal: 1.0,
        n_factors: 8,
        factor_scale: 0.6,
        factor_class_overlap: 0.85,
        noise_scale: 0.05,
        class_noise: 0.30,
    };
    let (x, labels) = gen_dense(&spec, seed ^ 0x4d4e_5300);
    DenseDataset {
        x,
        labels,
        n_classes: 10,
        name: "mnist-like",
    }
}

/// 20Newsgroups-like text: 20 classes, 26214 stemmed terms, ~947 documents
/// per class, L2-normalized term-frequency rows, sparse.
pub fn newsgroups_like(scale: f64, seed: u64) -> SparseDataset {
    let spec = TextSpec {
        n_classes: 20,
        vocab_size: scaled(26_214, scale.max(0.05), 500),
        docs_per_class: scaled(947, scale, 10),
        mean_doc_len: 120,
        zipf_exponent: 1.1,
        topic_terms: scaled(400, scale.max(0.2), 30),
        topic_weight: 0.18,
        doc_confusion: 0.15,
    };
    let (x, labels) = gen_text(&spec, seed ^ 0x4e47_3230);
    SparseDataset {
        x,
        labels,
        n_classes: 20,
        name: "newsgroups-like",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pie_shape_at_small_scale() {
        let d = pie_like(0.1, 1);
        assert_eq!(d.n_classes, 68);
        assert_eq!(d.x.ncols(), 1024);
        assert_eq!(d.x.nrows(), 68 * 17);
        assert_eq!(d.labels.len(), d.x.nrows());
    }

    #[test]
    fn isolet_shape_at_small_scale() {
        let d = isolet_like(0.1, 1);
        assert_eq!(d.x.ncols(), 617);
        assert_eq!(d.x.nrows(), 26 * 24);
    }

    #[test]
    fn mnist_shape_at_small_scale() {
        let d = mnist_like(0.1, 1);
        assert_eq!(d.x.ncols(), 784);
        assert_eq!(d.x.nrows(), 10 * 40);
    }

    #[test]
    fn newsgroups_shape_at_small_scale() {
        let d = newsgroups_like(0.05, 1);
        assert_eq!(d.n_classes, 20);
        assert_eq!(d.x.nrows(), 20 * scaled(947, 0.05, 10));
        assert!(d.x.density() < 0.2);
    }

    #[test]
    fn full_scale_matches_paper_table_ii() {
        // shape-only check; generation at full scale is exercised by the
        // benchmark binaries
        assert_eq!(scaled(170, 1.0, 12), 170); // PIE per-class
        assert_eq!(68 * 170, 11_560); // PIE size
        assert_eq!(scaled(947, 1.0, 10) * 20, 18_940); // 20NG size (±1: the
                                                       // real corpus is 18941 after dedup; ours is exactly balanced)
        assert_eq!(scaled(26_214, 1.0, 500), 26_214);
    }

    #[test]
    fn generators_are_seed_deterministic() {
        let a = mnist_like(0.05, 7);
        let b = mnist_like(0.05, 7);
        assert!(a.x.approx_eq(&b.x, 0.0));
        let c = mnist_like(0.05, 8);
        assert!(!a.x.approx_eq(&c.x, 1e-9));
    }

    #[test]
    fn distinct_datasets_have_distinct_names() {
        let names = [
            pie_like(0.05, 1).name,
            isolet_like(0.05, 1).name,
            mnist_like(0.05, 1).name,
            newsgroups_like(0.05, 1).name,
        ];
        for i in 0..4 {
            for j in (i + 1)..4 {
                assert_ne!(names[i], names[j]);
            }
        }
    }
}
