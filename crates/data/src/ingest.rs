//! Ingestion of real data: tokenized text → sparse term-frequency
//! matrices, with the vocabulary handling (document-frequency pruning,
//! stable term ids) the paper's 20Newsgroups preprocessing implies
//! ("26,214 distinct terms after stemming and stop word removal ... each
//! document is then represented as a term-frequency vector and normalized
//! to 1").
//!
//! This crate ships synthetic generators for the benchmarks, but a
//! downstream user has real documents; this module turns them into
//! exactly the input `srda::Srda::fit_sparse` wants.

use srda_sparse::{CooBuilder, CsrMatrix};
use std::collections::HashMap;

/// A frozen term → column-index mapping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Vocabulary {
    terms: Vec<String>,
    index: HashMap<String, usize>,
}

impl Vocabulary {
    /// Number of terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Column index of `term`, if in-vocabulary.
    pub fn id(&self, term: &str) -> Option<usize> {
        self.index.get(term).copied()
    }

    /// The term at column `id`, or `None` when `id` is out of range
    /// (e.g. an index from a different vocabulary).
    pub fn term(&self, id: usize) -> Option<&str> {
        self.terms.get(id).map(String::as_str)
    }
}

/// Options for vocabulary construction.
#[derive(Debug, Clone)]
pub struct VocabularyOptions {
    /// Drop terms appearing in fewer than this many documents.
    pub min_doc_freq: usize,
    /// Drop terms appearing in more than this fraction of documents
    /// (cheap stop-word removal).
    pub max_doc_fraction: f64,
}

impl Default for VocabularyOptions {
    fn default() -> Self {
        VocabularyOptions {
            min_doc_freq: 2,
            max_doc_fraction: 0.5,
        }
    }
}

/// Lowercase alphanumeric tokenizer: splits on any non-alphanumeric byte,
/// drops tokens shorter than 2 characters.
pub fn tokenize(text: &str) -> Vec<String> {
    text.split(|ch: char| !ch.is_alphanumeric())
        .filter(|t| t.len() >= 2)
        .map(|t| t.to_lowercase())
        .collect()
}

/// Build a vocabulary from tokenized documents with document-frequency
/// pruning. Term ids are assigned in lexicographic order (stable across
/// runs and platforms).
pub fn build_vocabulary(docs: &[Vec<String>], opts: &VocabularyOptions) -> Vocabulary {
    let mut doc_freq: HashMap<&str, usize> = HashMap::new();
    for doc in docs {
        let mut seen: Vec<&str> = doc.iter().map(|s| s.as_str()).collect();
        seen.sort_unstable();
        seen.dedup();
        for t in seen {
            *doc_freq.entry(t).or_insert(0) += 1;
        }
    }
    let max_df = (docs.len() as f64 * opts.max_doc_fraction).ceil() as usize;
    let mut terms: Vec<String> = doc_freq
        .into_iter()
        .filter(|&(_, df)| df >= opts.min_doc_freq && df <= max_df)
        .map(|(t, _)| t.to_string())
        .collect();
    terms.sort_unstable();
    let index = terms
        .iter()
        .enumerate()
        .map(|(i, t)| (t.clone(), i))
        .collect();
    Vocabulary { terms, index }
}

/// Vectorize tokenized documents against a vocabulary: raw term counts,
/// optionally L2-normalized (the paper's preprocessing). Out-of-vocabulary
/// tokens are ignored.
pub fn vectorize(docs: &[Vec<String>], vocab: &Vocabulary, l2_normalize: bool) -> CsrMatrix {
    let mut b = CooBuilder::new(docs.len(), vocab.len().max(1));
    for (row, doc) in docs.iter().enumerate() {
        for tok in doc {
            if let Some(id) = vocab.id(tok) {
                b.push(row, id, 1.0).expect("id within vocabulary");
            }
        }
    }
    let mut x = b.build();
    if l2_normalize {
        x.normalize_rows_l2();
    }
    x
}

/// One-call pipeline: raw strings → `(matrix, vocabulary)`.
pub fn ingest_corpus(
    texts: &[&str],
    opts: &VocabularyOptions,
    l2_normalize: bool,
) -> (CsrMatrix, Vocabulary) {
    let docs: Vec<Vec<String>> = texts.iter().map(|t| tokenize(t)).collect();
    let vocab = build_vocabulary(&docs, opts);
    let x = vectorize(&docs, &vocab, l2_normalize);
    (x, vocab)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizer_basics() {
        assert_eq!(
            tokenize("Hello, world! x R2-D2"),
            vec!["hello", "world", "r2", "d2"]
        );
        assert!(tokenize("a . ! ").is_empty());
    }

    fn corpus() -> Vec<&'static str> {
        vec![
            "the cat sat on the mat",
            "the dog sat on the log",
            "cat and dog are friends",
            "quantum chromodynamics", // rare terms → pruned at min_df 2
        ]
    }

    #[test]
    fn vocabulary_prunes_by_doc_frequency() {
        let docs: Vec<Vec<String>> = corpus().iter().map(|t| tokenize(t)).collect();
        let vocab = build_vocabulary(
            &docs,
            &VocabularyOptions {
                min_doc_freq: 2,
                max_doc_fraction: 1.0,
            },
        );
        // "quantum"/"chromodynamics" appear once → dropped
        assert!(vocab.id("quantum").is_none());
        assert!(vocab.id("cat").is_some());
        assert!(vocab.id("sat").is_some());
    }

    #[test]
    fn vocabulary_drops_stopword_like_terms() {
        // "the" in 3 of 4 docs; "cat" in 2; "quantum" in 1
        let texts = [
            "the cat sat on the mat",
            "the dog sat on the log",
            "the cat and dog are friends",
            "quantum chromodynamics",
        ];
        let docs: Vec<Vec<String>> = texts.iter().map(|t| tokenize(t)).collect();
        let tight = build_vocabulary(
            &docs,
            &VocabularyOptions {
                min_doc_freq: 1,
                max_doc_fraction: 0.5, // max_df = 2 → "the" (df 3) dropped
            },
        );
        assert!(tight.id("the").is_none());
        assert!(tight.id("cat").is_some());
        assert!(tight.id("quantum").is_some());
    }

    #[test]
    fn term_ids_are_lexicographic_and_stable() {
        let docs: Vec<Vec<String>> = corpus().iter().map(|t| tokenize(t)).collect();
        let opts = VocabularyOptions {
            min_doc_freq: 1,
            max_doc_fraction: 1.0,
        };
        let v1 = build_vocabulary(&docs, &opts);
        let v2 = build_vocabulary(&docs, &opts);
        assert_eq!(v1, v2);
        for i in 1..v1.len() {
            assert!(v1.term(i - 1).unwrap() < v1.term(i).unwrap());
        }
        assert_eq!(v1.id(v1.term(3).unwrap()), Some(3));
        // out-of-range ids are None, not a panic
        assert_eq!(v1.term(v1.len()), None);
    }

    #[test]
    fn vectorize_counts_and_normalizes() {
        let docs = vec![tokenize("cat cat dog"), tokenize("dog")];
        let vocab = build_vocabulary(
            &docs,
            &VocabularyOptions {
                min_doc_freq: 1,
                max_doc_fraction: 1.0,
            },
        );
        let raw = vectorize(&docs, &vocab, false);
        let cat = vocab.id("cat").unwrap();
        let dog = vocab.id("dog").unwrap();
        assert_eq!(raw.get(0, cat), 2.0);
        assert_eq!(raw.get(0, dog), 1.0);
        assert_eq!(raw.get(1, dog), 1.0);

        let norm = vectorize(&docs, &vocab, true);
        let n0: f64 = norm.row_entries(0).map(|(_, v)| v * v).sum();
        assert!((n0 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn out_of_vocabulary_tokens_ignored() {
        let train_docs = vec![tokenize("alpha beta"), tokenize("alpha gamma")];
        let vocab = build_vocabulary(
            &train_docs,
            &VocabularyOptions {
                min_doc_freq: 1,
                max_doc_fraction: 1.0,
            },
        );
        let test_docs = vec![tokenize("alpha delta epsilon")];
        let x = vectorize(&test_docs, &vocab, false);
        assert_eq!(x.row_nnz(0), 1); // only "alpha" is known
    }

    #[test]
    fn end_to_end_ingest_trains_a_model() {
        // two "topics" with distinct vocabulary, enough docs to survive
        // pruning; SRDA should separate them
        let texts: Vec<String> = (0..20)
            .map(|i| {
                if i % 2 == 0 {
                    format!("rust compiler borrow checker lifetimes v{i}")
                } else {
                    format!("violin sonata orchestra concerto strings v{i}")
                }
            })
            .collect();
        let refs: Vec<&str> = texts.iter().map(|s| s.as_str()).collect();
        let (x, vocab) = ingest_corpus(&refs, &VocabularyOptions::default(), true);
        assert!(vocab.len() >= 8);
        let labels: Vec<usize> = (0..20).map(|i| i % 2).collect();
        let model = srda::Srda::new(srda::SrdaConfig::lsqr_default())
            .fit_sparse(&x, &labels)
            .unwrap();
        let z = model.embedding().transform_sparse(&x).unwrap();
        // same-class docs embed on the same side
        let side = |i: usize| z[(i, 0)] > 0.0;
        for i in (2..20).step_by(2) {
            assert_eq!(side(i), side(0));
        }
        for i in (3..20).step_by(2) {
            assert_eq!(side(i), side(1));
        }
        assert_ne!(side(0), side(1));
    }

    #[test]
    fn empty_corpus() {
        let (x, vocab) = ingest_corpus(&[], &VocabularyOptions::default(), true);
        assert_eq!(x.nrows(), 0);
        assert!(vocab.is_empty());
    }
}
