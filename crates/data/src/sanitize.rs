//! Degenerate-data quarantine: a pre-fit `sanitize` pass that detects
//! and (per policy) repairs the input pathologies that otherwise surface
//! deep inside a fit as cryptic numerical failures — NaN/Inf cells,
//! exact duplicate rows, classes too small to estimate, and constant
//! features.
//!
//! The pass runs its checks in a fixed order chosen so that the output
//! is a **fixed point**: sanitizing an already-sanitized dataset changes
//! nothing (verified by the property tests in
//! `tests/sanitize_proptests.rs`).
//!
//! 1. **Non-finite cells** — reject, quarantine the row, or impute.
//! 2. **Duplicate rows** — later exact (bitwise) copies of an earlier
//!    row with the same label are dropped. Duplicates carry no
//!    information and bias the class statistics toward the copied point.
//! 3. **Small classes** — classes left with fewer than
//!    [`SanitizeConfig::min_class_size`] rows are dropped and the
//!    surviving labels are remapped to a dense `0..c'` range (every
//!    discriminant fit in `srda` requires dense labels).
//! 4. **Constant features** — columns with a single value across all
//!    surviving rows are dropped. SRDA's bias-augmentation (§III.B of
//!    the paper) already spans the constant direction, so these columns
//!    are pure redundancy that inflates the Gram condition number.
//!
//! Later steps cannot re-introduce earlier pathologies: dropping rows
//! cannot create non-finite cells, dropping a constant column cannot
//! make two rows collide (rows cannot differ *only* in a column where
//! every row holds the same value), and the small-class check runs after
//! every row drop that could shrink a class.

use srda_linalg::Mat;
use srda_sparse::CsrMatrix;
use std::collections::HashMap;

/// What to do with a NaN/±Inf cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NonFinitePolicy {
    /// Fail fast with [`SanitizeError::NonFinite`] naming the first
    /// offending cell (the default — data corruption should be loud).
    #[default]
    Reject,
    /// Quarantine (drop) every row containing a non-finite cell and
    /// record it in the report.
    QuarantineRow,
    /// Repair in place: dense cells become the column mean over the
    /// finite cells of that column (0 when none exist); sparse cells
    /// become 0, the natural "absent" value for sparse data.
    Impute,
}

/// Configuration for the quarantine pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SanitizeConfig {
    /// Policy for NaN/±Inf cells.
    pub non_finite: NonFinitePolicy,
    /// Drop later bitwise-identical copies of (row, label) pairs.
    pub drop_duplicate_rows: bool,
    /// Minimum surviving rows a class needs to be kept; smaller classes
    /// are quarantined wholesale. `0` and `1` both keep singletons.
    pub min_class_size: usize,
    /// Drop columns that hold one single value across surviving rows.
    pub drop_constant_features: bool,
}

impl Default for SanitizeConfig {
    fn default() -> Self {
        SanitizeConfig {
            non_finite: NonFinitePolicy::Reject,
            drop_duplicate_rows: true,
            min_class_size: 1,
            drop_constant_features: true,
        }
    }
}

/// Errors from the quarantine pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SanitizeError {
    /// A non-finite cell under [`NonFinitePolicy::Reject`].
    NonFinite {
        /// Row of the first offending cell.
        row: usize,
        /// Column of the first offending cell.
        col: usize,
    },
    /// `labels.len() != x.nrows()`.
    LabelLength {
        /// Rows in the data.
        rows: usize,
        /// Labels supplied.
        labels: usize,
    },
}

impl std::fmt::Display for SanitizeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SanitizeError::NonFinite { row, col } => {
                write!(f, "non-finite value at row {row}, column {col}")
            }
            SanitizeError::LabelLength { rows, labels } => {
                write!(f, "label length mismatch: {rows} rows, {labels} labels")
            }
        }
    }
}

impl std::error::Error for SanitizeError {}

/// What the quarantine pass found and did. All row/column indices refer
/// to the **original** input.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SanitizeReport {
    /// Rows quarantined for non-finite cells
    /// ([`NonFinitePolicy::QuarantineRow`]).
    pub non_finite_rows: Vec<usize>,
    /// Cells repaired under [`NonFinitePolicy::Impute`].
    pub imputed_cells: usize,
    /// Rows dropped as later duplicates of an earlier (row, label) pair.
    pub duplicate_rows: Vec<usize>,
    /// Rows dropped because their class fell under the size floor.
    pub small_class_rows: Vec<usize>,
    /// Original class ids dropped by the size floor.
    pub dropped_classes: Vec<usize>,
    /// Original column indices dropped as constant.
    pub constant_features: Vec<usize>,
    /// Human-readable notes (e.g. "fewer than two classes remain").
    pub warnings: Vec<String>,
}

impl SanitizeReport {
    /// `true` when the pass changed nothing: the input was already clean.
    pub fn is_noop(&self) -> bool {
        self.non_finite_rows.is_empty()
            && self.imputed_cells == 0
            && self.duplicate_rows.is_empty()
            && self.small_class_rows.is_empty()
            && self.dropped_classes.is_empty()
            && self.constant_features.is_empty()
    }
}

/// A sanitized dense dataset plus the bookkeeping to map back.
#[derive(Debug, Clone)]
pub struct SanitizedDense {
    /// The surviving data, `kept_rows.len() × kept_cols.len()`.
    pub x: Mat,
    /// Remapped labels, dense in `0..label_map-survivor-count`.
    pub labels: Vec<usize>,
    /// Original index of each surviving row, ascending.
    pub kept_rows: Vec<usize>,
    /// Original index of each surviving column, ascending.
    pub kept_cols: Vec<usize>,
    /// `label_map[old_class]` = new class id, `None` if dropped.
    pub label_map: Vec<Option<usize>>,
    /// What was found and done.
    pub report: SanitizeReport,
}

/// A sanitized sparse dataset plus the bookkeeping to map back.
#[derive(Debug, Clone)]
pub struct SanitizedSparse {
    /// The surviving data, CSR.
    pub x: CsrMatrix,
    /// Remapped labels.
    pub labels: Vec<usize>,
    /// Original index of each surviving row, ascending.
    pub kept_rows: Vec<usize>,
    /// Original index of each surviving column, ascending.
    pub kept_cols: Vec<usize>,
    /// `label_map[old_class]` = new class id, `None` if dropped.
    pub label_map: Vec<Option<usize>>,
    /// What was found and done.
    pub report: SanitizeReport,
}

/// Shared row/label bookkeeping over an abstract row accessor. `key(i)`
/// must return a canonical bitwise key for row `i` (dense: all cells;
/// sparse: the nonzero pattern), rows being compared post-imputation.
struct RowPass {
    kept: Vec<usize>,
    report: SanitizeReport,
}

fn quarantine_rows(
    nrows: usize,
    labels: &[usize],
    cfg: &SanitizeConfig,
    mut non_finite_row: impl FnMut(usize) -> bool,
    mut key: impl FnMut(usize) -> Vec<u64>,
) -> RowPass {
    let mut report = SanitizeReport::default();
    let mut kept: Vec<usize> = Vec::with_capacity(nrows);

    // step 1 (quarantine flavor): drop rows with non-finite cells
    for i in 0..nrows {
        if cfg.non_finite == NonFinitePolicy::QuarantineRow && non_finite_row(i) {
            report.non_finite_rows.push(i);
        } else {
            kept.push(i);
        }
    }

    // step 2: drop later bitwise duplicates of the same (row, label)
    if cfg.drop_duplicate_rows {
        let mut seen: HashMap<(Vec<u64>, usize), usize> = HashMap::new();
        let mut uniq = Vec::with_capacity(kept.len());
        for &i in &kept {
            match seen.entry((key(i), labels[i])) {
                std::collections::hash_map::Entry::Occupied(_) => report.duplicate_rows.push(i),
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(i);
                    uniq.push(i);
                }
            }
        }
        kept = uniq;
    }

    // step 3: drop classes under the size floor
    let n_classes = labels.iter().copied().max().map_or(0, |m| m + 1);
    if cfg.min_class_size > 1 {
        let mut counts = vec![0usize; n_classes];
        for &i in &kept {
            counts[labels[i]] += 1;
        }
        let drop: Vec<bool> = counts
            .iter()
            .map(|&c| c > 0 && c < cfg.min_class_size)
            .collect();
        for (k, &d) in drop.iter().enumerate() {
            if d {
                report.dropped_classes.push(k);
            }
        }
        if !report.dropped_classes.is_empty() {
            let mut survivors = Vec::with_capacity(kept.len());
            for &i in &kept {
                if drop[labels[i]] {
                    report.small_class_rows.push(i);
                } else {
                    survivors.push(i);
                }
            }
            kept = survivors;
        }
    }

    let classes_left = {
        let mut present = vec![false; n_classes];
        for &i in &kept {
            present[labels[i]] = true;
        }
        present.iter().filter(|&&p| p).count()
    };
    if classes_left < 2 {
        report.warnings.push(format!(
            "{classes_left} class(es) remain after quarantine; discriminant fits need at least 2"
        ));
    }
    if kept.is_empty() {
        report
            .warnings
            .push("no rows survive quarantine".to_string());
    }

    RowPass { kept, report }
}

/// Remap surviving labels to a dense `0..c'` range.
fn remap_labels(kept: &[usize], labels: &[usize]) -> (Vec<usize>, Vec<Option<usize>>) {
    let n_classes = labels.iter().copied().max().map_or(0, |m| m + 1);
    let mut present = vec![false; n_classes];
    for &i in kept {
        present[labels[i]] = true;
    }
    let mut map = vec![None; n_classes];
    let mut next = 0usize;
    for (k, &p) in present.iter().enumerate() {
        if p {
            map[k] = Some(next);
            next += 1;
        }
    }
    let new_labels = kept.iter().map(|&i| map[labels[i]].unwrap()).collect();
    (new_labels, map)
}

/// Run the quarantine pass on a dense dataset. See the module docs for
/// the check order and the fixed-point guarantee.
pub fn sanitize_dense(
    x: &Mat,
    labels: &[usize],
    cfg: &SanitizeConfig,
) -> Result<SanitizedDense, SanitizeError> {
    let (m, n) = x.shape();
    if labels.len() != m {
        return Err(SanitizeError::LabelLength {
            rows: m,
            labels: labels.len(),
        });
    }

    // step 1, reject/impute flavors (quarantine happens in the row pass)
    let mut data = x.clone();
    let mut imputed = 0usize;
    match cfg.non_finite {
        NonFinitePolicy::Reject => {
            for i in 0..m {
                for (j, v) in data.row(i).iter().enumerate() {
                    if !v.is_finite() {
                        return Err(SanitizeError::NonFinite { row: i, col: j });
                    }
                }
            }
        }
        NonFinitePolicy::Impute => {
            for j in 0..n {
                let (mut sum, mut cnt, mut bad) = (0.0f64, 0usize, false);
                for i in 0..m {
                    let v = data[(i, j)];
                    if v.is_finite() {
                        sum += v;
                        cnt += 1;
                    } else {
                        bad = true;
                    }
                }
                if bad {
                    let fill = if cnt > 0 { sum / cnt as f64 } else { 0.0 };
                    for i in 0..m {
                        if !data[(i, j)].is_finite() {
                            data[(i, j)] = fill;
                            imputed += 1;
                        }
                    }
                }
            }
        }
        NonFinitePolicy::QuarantineRow => {}
    }

    let pass = quarantine_rows(
        m,
        labels,
        cfg,
        |i| data.row(i).iter().any(|v| !v.is_finite()),
        |i| data.row(i).iter().map(|v| v.to_bits()).collect(),
    );
    let RowPass { kept, mut report } = pass;
    report.imputed_cells = imputed;

    // step 4: constant columns over the surviving rows
    let kept_cols: Vec<usize> = if cfg.drop_constant_features && !kept.is_empty() {
        (0..n)
            .filter(|&j| {
                let first = data[(kept[0], j)];
                let constant = kept.iter().all(|&i| data[(i, j)] == first);
                if constant {
                    report.constant_features.push(j);
                }
                !constant
            })
            .collect()
    } else {
        (0..n).collect()
    };
    if kept_cols.is_empty() && !kept.is_empty() {
        report
            .warnings
            .push("no informative features survive quarantine".to_string());
    }

    let mut out = Mat::zeros(kept.len(), kept_cols.len());
    for (r, &i) in kept.iter().enumerate() {
        for (c, &j) in kept_cols.iter().enumerate() {
            out[(r, c)] = data[(i, j)];
        }
    }
    let (new_labels, label_map) = remap_labels(&kept, labels);
    Ok(SanitizedDense {
        x: out,
        labels: new_labels,
        kept_rows: kept,
        kept_cols,
        label_map,
        report,
    })
}

/// Run the quarantine pass on a sparse dataset. Imputation replaces
/// non-finite stored cells with 0 (they simply leave the pattern);
/// constant-feature detection accounts for implicit zeros.
pub fn sanitize_sparse(
    x: &CsrMatrix,
    labels: &[usize],
    cfg: &SanitizeConfig,
) -> Result<SanitizedSparse, SanitizeError> {
    let (m, n) = x.shape();
    if labels.len() != m {
        return Err(SanitizeError::LabelLength {
            rows: m,
            labels: labels.len(),
        });
    }

    // materialize the (possibly imputed) pattern once: per row, the
    // surviving (col, value) pairs with value != 0
    let mut rows_nz: Vec<Vec<(usize, f64)>> = Vec::with_capacity(m);
    let mut imputed = 0usize;
    for i in 0..m {
        let mut row = Vec::with_capacity(x.row_nnz(i));
        for (j, v) in x.row_entries(i) {
            if v.is_finite() {
                if v != 0.0 {
                    row.push((j, v));
                }
            } else {
                match cfg.non_finite {
                    NonFinitePolicy::Reject => {
                        return Err(SanitizeError::NonFinite { row: i, col: j })
                    }
                    NonFinitePolicy::Impute => imputed += 1, // becomes 0
                    NonFinitePolicy::QuarantineRow => row.push((j, v)),
                }
            }
        }
        rows_nz.push(row);
    }

    let pass = quarantine_rows(
        m,
        labels,
        cfg,
        |i| rows_nz[i].iter().any(|(_, v)| !v.is_finite()),
        |i| {
            rows_nz[i]
                .iter()
                .flat_map(|&(j, v)| [j as u64, v.to_bits()])
                .collect()
        },
    );
    let RowPass { kept, mut report } = pass;
    report.imputed_cells = imputed;

    // step 4: constant columns over surviving rows, implicit zeros
    // included — a column is constant iff every surviving row holds one
    // common value (nnz == kept.len() and all equal) or no value at all
    let kept_cols: Vec<usize> = if cfg.drop_constant_features && !kept.is_empty() {
        let mut nnz = vec![0usize; n];
        let mut first = vec![0.0f64; n];
        let mut uniform = vec![true; n];
        for &i in &kept {
            for &(j, v) in &rows_nz[i] {
                if nnz[j] == 0 {
                    first[j] = v;
                } else if v != first[j] {
                    uniform[j] = false;
                }
                nnz[j] += 1;
            }
        }
        (0..n)
            .filter(|&j| {
                let constant = nnz[j] == 0 || (uniform[j] && nnz[j] == kept.len());
                if constant {
                    report.constant_features.push(j);
                }
                !constant
            })
            .collect()
    } else {
        (0..n).collect()
    };
    if kept_cols.is_empty() && !kept.is_empty() {
        report
            .warnings
            .push("no informative features survive quarantine".to_string());
    }

    // rebuild the CSR with remapped column indices
    let mut col_map = vec![usize::MAX; n];
    for (c, &j) in kept_cols.iter().enumerate() {
        col_map[j] = c;
    }
    let mut indptr = Vec::with_capacity(kept.len() + 1);
    let mut indices = Vec::new();
    let mut values = Vec::new();
    indptr.push(0);
    for &i in &kept {
        for &(j, v) in &rows_nz[i] {
            if col_map[j] != usize::MAX {
                indices.push(col_map[j]);
                values.push(v);
            }
        }
        indptr.push(indices.len());
    }
    let out = CsrMatrix::from_raw_parts(kept.len(), kept_cols.len(), indptr, indices, values)
        .expect("sanitize preserves CSR invariants");

    let (new_labels, label_map) = remap_labels(&kept, labels);
    Ok(SanitizedSparse {
        x: out,
        labels: new_labels,
        kept_rows: kept,
        kept_cols,
        label_map,
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drop_policy() -> SanitizeConfig {
        SanitizeConfig {
            non_finite: NonFinitePolicy::QuarantineRow,
            min_class_size: 2,
            ..SanitizeConfig::default()
        }
    }

    fn toy() -> (Mat, Vec<usize>) {
        // rows: 0/3 clean class 0, 1 non-finite, 2 dup of 0, 4/5 clean
        // class 1, 6 singleton class 2; col 2 is constant. Inf rather
        // than NaN so `CsrMatrix::from_dense` keeps the cell stored.
        let x = Mat::from_rows(&[
            vec![1.0, 2.0, 7.0],
            vec![f64::INFINITY, 2.0, 7.0],
            vec![1.0, 2.0, 7.0],
            vec![1.5, 2.5, 7.0],
            vec![3.0, 4.0, 7.0],
            vec![3.5, 4.5, 7.0],
            vec![5.0, 6.0, 7.0],
        ])
        .unwrap();
        (x, vec![0, 0, 0, 0, 1, 1, 2])
    }

    #[test]
    fn reject_policy_names_the_cell() {
        let (x, y) = toy();
        let err = sanitize_dense(&x, &y, &SanitizeConfig::default());
        assert!(
            matches!(err, Err(SanitizeError::NonFinite { row: 1, col: 0 })),
            "{err:?}"
        );
    }

    #[test]
    fn quarantine_drops_and_remaps() {
        let (x, y) = toy();
        let s = sanitize_dense(&x, &y, &drop_policy()).unwrap();
        assert_eq!(s.report.non_finite_rows, vec![1]);
        assert_eq!(s.report.duplicate_rows, vec![2]);
        assert_eq!(s.report.small_class_rows, vec![6]);
        assert_eq!(s.report.dropped_classes, vec![2]);
        assert_eq!(s.report.constant_features, vec![2]);
        assert_eq!(s.kept_rows, vec![0, 3, 4, 5]);
        assert_eq!(s.kept_cols, vec![0, 1]);
        assert_eq!(s.labels, vec![0, 0, 1, 1]);
        assert_eq!(s.label_map, vec![Some(0), Some(1), None]);
        assert_eq!(s.x.shape(), (4, 2));
        assert_eq!(s.x.row(0), &[1.0, 2.0]);
        assert_eq!(s.x.row(2), &[3.0, 4.0]);
        assert!(!s.report.is_noop());
    }

    #[test]
    fn impute_fills_with_column_mean() {
        let (x, y) = toy();
        let cfg = SanitizeConfig {
            non_finite: NonFinitePolicy::Impute,
            drop_duplicate_rows: false,
            drop_constant_features: false,
            min_class_size: 1,
        };
        let s = sanitize_dense(&x, &y, &cfg).unwrap();
        assert_eq!(s.report.imputed_cells, 1);
        // finite col-0 cells: 1, 1, 1.5, 3, 3.5, 5 → mean 2.5
        assert_eq!(s.x[(1, 0)], 2.5);
        assert_eq!(s.kept_rows.len(), 7);
    }

    #[test]
    fn clean_input_is_a_noop() {
        let x = Mat::from_rows(&[
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![2.0, 3.0],
            vec![3.0, 2.0],
        ])
        .unwrap();
        let y = vec![0, 1, 0, 1];
        let s = sanitize_dense(&x, &y, &drop_policy()).unwrap();
        assert!(s.report.is_noop(), "{:?}", s.report);
        assert_eq!(s.x.as_slice(), x.as_slice());
        assert_eq!(s.labels, y);
    }

    #[test]
    fn sparse_matches_dense_semantics() {
        let (xd, y) = toy();
        let xs = CsrMatrix::from_dense(&xd, 0.0);
        let sd = sanitize_dense(&xd, &y, &drop_policy()).unwrap();
        let ss = sanitize_sparse(&xs, &y, &drop_policy()).unwrap();
        assert_eq!(sd.kept_rows, ss.kept_rows);
        assert_eq!(sd.kept_cols, ss.kept_cols);
        assert_eq!(sd.labels, ss.labels);
        assert_eq!(sd.report, ss.report);
        assert!(sd.x.approx_eq(&ss.x.to_dense(), 0.0));
    }

    #[test]
    fn sparse_implicit_zero_columns_are_constant() {
        // col 1 never stored → all-zero → constant
        let xd = Mat::from_rows(&[vec![1.0, 0.0], vec![2.0, 0.0]]).unwrap();
        let xs = CsrMatrix::from_dense(&xd, 0.0);
        let cfg = SanitizeConfig {
            min_class_size: 1,
            ..drop_policy()
        };
        let s = sanitize_sparse(&xs, &[0, 1], &cfg).unwrap();
        assert_eq!(s.report.constant_features, vec![1]);
        assert_eq!(s.x.shape(), (2, 1));
    }

    #[test]
    fn all_duplicate_rows_leave_one_survivor_per_class() {
        let x = Mat::from_rows(&vec![vec![1.0, 5.0]; 6]).unwrap();
        let y = vec![0, 0, 0, 1, 1, 1];
        let cfg = SanitizeConfig {
            drop_constant_features: false,
            ..drop_policy()
        };
        let s = sanitize_dense(&x, &y, &cfg).unwrap();
        // one survivor per (row, label) key; classes then fall under the
        // size-2 floor and are quarantined wholesale
        assert_eq!(s.report.duplicate_rows.len(), 4);
        assert_eq!(s.report.dropped_classes, vec![0, 1]);
        assert!(s.kept_rows.is_empty());
        assert!(!s.report.warnings.is_empty());
    }

    #[test]
    fn zero_feature_input_is_handled() {
        let x = Mat::zeros(3, 0);
        let s = sanitize_dense(&x, &[0, 1, 0], &drop_policy());
        // all rows are bitwise-equal empty rows → duplicates collapse
        let s = s.unwrap();
        assert_eq!(s.x.ncols(), 0);
        assert!(s.report.duplicate_rows.contains(&2));
    }

    #[test]
    fn label_length_mismatch_is_typed() {
        let x = Mat::zeros(2, 2);
        let err = sanitize_dense(&x, &[0], &SanitizeConfig::default());
        assert!(
            matches!(err, Err(SanitizeError::LabelLength { rows: 2, labels: 1 })),
            "{err:?}"
        );
    }
}
