//! Property-based tests of the quarantine pass: idempotence (sanitize is
//! a fixed point), degenerate-shape handling, and dense/sparse agreement.

use proptest::prelude::*;
use srda_data::sanitize::{sanitize_dense, sanitize_sparse, NonFinitePolicy, SanitizeConfig};
use srda_linalg::Mat;
use srda_sparse::CsrMatrix;

fn drop_all() -> SanitizeConfig {
    SanitizeConfig {
        non_finite: NonFinitePolicy::QuarantineRow,
        drop_duplicate_rows: true,
        min_class_size: 2,
        drop_constant_features: true,
    }
}

/// Strategy: a messy dataset — finite values on a coarse grid (so exact
/// duplicates actually occur), a sprinkle of NaN/Inf cells, clumped
/// labels (so both small and healthy classes occur).
fn messy_dataset() -> impl Strategy<Value = (Mat, Vec<usize>)> {
    (2usize..10, 1usize..6, 2usize..5).prop_flat_map(|(m, n, c)| {
        let cell = prop_oneof![
            4 => (-2i8..3).prop_map(|v| v as f64),
            1 => Just(f64::NAN),
            1 => Just(f64::INFINITY),
        ];
        (
            proptest::collection::vec(cell, m * n),
            proptest::collection::vec(0..c, m),
            Just((m, n)),
        )
            .prop_map(|(d, l, (m, n))| (Mat::from_vec(m, n, d).unwrap(), l))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sanitize_is_idempotent((x, y) in messy_dataset()) {
        let cfg = drop_all();
        let first = sanitize_dense(&x, &y, &cfg).unwrap();
        let second = sanitize_dense(&first.x, &first.labels, &cfg).unwrap();
        prop_assert!(
            second.report.is_noop(),
            "second pass must change nothing: {:?}",
            second.report
        );
        prop_assert_eq!(second.x.as_slice(), first.x.as_slice());
        prop_assert_eq!(second.labels, first.labels);
    }

    #[test]
    fn survivors_are_actually_clean((x, y) in messy_dataset()) {
        let s = sanitize_dense(&x, &y, &drop_all()).unwrap();
        // no non-finite cells survive
        prop_assert!(s.x.as_slice().iter().all(|v| v.is_finite()));
        // labels are dense 0..c'
        if let Some(&max) = s.labels.iter().max() {
            for k in 0..=max {
                prop_assert!(s.labels.contains(&k), "label gap at {k}");
            }
        }
        // every surviving class satisfies the size floor
        let mut counts = std::collections::HashMap::new();
        for &l in &s.labels {
            *counts.entry(l).or_insert(0usize) += 1;
        }
        for (&l, &cnt) in &counts {
            prop_assert!(cnt >= 2, "class {l} has {cnt} rows");
        }
        // no surviving duplicate (row, label) pairs
        let mut seen = std::collections::HashSet::new();
        for (i, &l) in s.labels.iter().enumerate() {
            let key: (Vec<u64>, usize) =
                (s.x.row(i).iter().map(|v| v.to_bits()).collect(), l);
            prop_assert!(seen.insert(key), "duplicate survived at row {i}");
        }
        // bookkeeping is consistent
        prop_assert_eq!(s.kept_rows.len(), s.x.nrows());
        prop_assert_eq!(s.kept_cols.len(), s.x.ncols());
        prop_assert_eq!(s.labels.len(), s.x.nrows());
    }

    #[test]
    fn imputation_never_drops_rows((x, y) in messy_dataset()) {
        let cfg = SanitizeConfig {
            non_finite: NonFinitePolicy::Impute,
            drop_duplicate_rows: false,
            min_class_size: 1,
            drop_constant_features: false,
        };
        let s = sanitize_dense(&x, &y, &cfg).unwrap();
        prop_assert_eq!(s.x.nrows(), x.nrows());
        prop_assert_eq!(s.x.ncols(), x.ncols());
        prop_assert!(s.x.as_slice().iter().all(|v| v.is_finite()));
        let non_finite = x.as_slice().iter().filter(|v| !v.is_finite()).count();
        prop_assert_eq!(s.report.imputed_cells, non_finite);
    }

    #[test]
    fn sparse_and_dense_agree_on_finite_data((x, y) in messy_dataset()) {
        // replace non-finite cells with a sentinel so the CSR conversion
        // (which drops NaN) cannot diverge from the dense path
        let mut xf = x.clone();
        for i in 0..xf.nrows() {
            for j in 0..xf.ncols() {
                if !xf[(i, j)].is_finite() {
                    xf[(i, j)] = 9.0;
                }
            }
        }
        let xs = CsrMatrix::from_dense(&xf, 0.0);
        let sd = sanitize_dense(&xf, &y, &drop_all()).unwrap();
        let ss = sanitize_sparse(&xs, &y, &drop_all()).unwrap();
        prop_assert_eq!(&sd.kept_rows, &ss.kept_rows);
        prop_assert_eq!(&sd.kept_cols, &ss.kept_cols);
        prop_assert_eq!(&sd.labels, &ss.labels);
        prop_assert_eq!(&sd.report, &ss.report);
        prop_assert!(sd.x.approx_eq(&ss.x.to_dense(), 0.0));
    }
}

#[test]
fn zero_feature_matrix_survives() {
    let x = Mat::zeros(4, 0);
    let s = sanitize_dense(&x, &[0, 0, 1, 1], &drop_all()).unwrap();
    // all rows are identical empty rows → one survivor per class, which
    // then falls under the size-2 floor
    assert!(s.x.nrows() == 0);
    assert_eq!(s.x.ncols(), 0);
    assert!(!s.report.warnings.is_empty());
}

#[test]
fn singleton_classes_are_quarantined() {
    let x = Mat::from_rows(&[
        vec![0.0, 1.0],
        vec![0.5, 1.5],
        vec![9.0, 3.0],
        vec![1.0, 0.0],
        vec![1.5, 0.5],
    ])
    .unwrap();
    let y = vec![0, 0, 1, 2, 2];
    let s = sanitize_dense(&x, &y, &drop_all()).unwrap();
    assert_eq!(s.report.dropped_classes, vec![1]);
    assert_eq!(s.report.small_class_rows, vec![2]);
    assert_eq!(s.labels, vec![0, 0, 1, 1]);
    assert_eq!(s.label_map, vec![Some(0), None, Some(1)]);
}

#[test]
fn all_duplicate_dataset_collapses() {
    let x = Mat::from_rows(&vec![vec![2.0, 3.0]; 8]).unwrap();
    let y = vec![0; 8];
    let cfg = SanitizeConfig {
        min_class_size: 1,
        drop_constant_features: false,
        ..drop_all()
    };
    let s = sanitize_dense(&x, &y, &cfg).unwrap();
    assert_eq!(s.x.nrows(), 1);
    assert_eq!(s.report.duplicate_rows.len(), 7);
    // one class left → warned, not erred
    assert!(s.report.warnings.iter().any(|w| w.contains("class")));
}
