//! Property-based tests: CSR kernels must agree with their dense oracles on
//! arbitrary sparsity patterns.

use proptest::prelude::*;
use srda_sparse::{io, CooBuilder, CsrMatrix};

/// Strategy: random triplets in a bounded shape, possibly with duplicates.
fn coo_strategy() -> impl Strategy<Value = (usize, usize, Vec<(usize, usize, f64)>)> {
    (1usize..10, 1usize..10).prop_flat_map(|(m, n)| {
        let triplet = (0..m, 0..n, -5.0f64..5.0);
        proptest::collection::vec(triplet, 0..30).prop_map(move |ts| (m, n, ts))
    })
}

fn build(m: usize, n: usize, ts: &[(usize, usize, f64)]) -> CsrMatrix {
    let mut b = CooBuilder::new(m, n);
    for &(r, c, v) in ts {
        b.push(r, c, v).unwrap();
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn dense_roundtrip((m, n, ts) in coo_strategy()) {
        let s = build(m, n, &ts);
        let d = s.to_dense();
        let s2 = CsrMatrix::from_dense(&d, 0.0);
        prop_assert_eq!(&s, &s2);
    }

    #[test]
    fn matvec_agrees_with_dense((m, n, ts) in coo_strategy(), seed in 0u64..100) {
        let s = build(m, n, &ts);
        let d = s.to_dense();
        let x: Vec<f64> = (0..n).map(|i| ((seed + i as u64) as f64 * 0.91).sin()).collect();
        let ys = s.matvec(&x).unwrap();
        let yd = srda_linalg::ops::matvec(&d, &x).unwrap();
        for (a, b) in ys.iter().zip(&yd) {
            prop_assert!((a - b).abs() < 1e-10);
        }
        let xt: Vec<f64> = (0..m).map(|i| ((seed + i as u64) as f64 * 0.37).cos()).collect();
        let yst = s.matvec_t(&xt).unwrap();
        let ydt = srda_linalg::ops::matvec_t(&d, &xt).unwrap();
        for (a, b) in yst.iter().zip(&ydt) {
            prop_assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn exec_backends_match_serial_bitwise((m, n, ts) in coo_strategy(), threads in 2usize..12) {
        // threaded CSR kernels must be bit-identical to serial — same
        // per-row summation order, rows merely partitioned across threads
        // (threads > nrows is common here and must degrade gracefully)
        let s = build(m, n, &ts);
        let ser = srda_linalg::Executor::serial();
        let par = srda_linalg::Executor::threaded(threads);
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.91).sin()).collect();
        prop_assert_eq!(s.matvec_exec(&x, &ser).unwrap(), s.matvec_exec(&x, &par).unwrap());
        let xt: Vec<f64> = (0..m).map(|i| (i as f64 * 0.37).cos()).collect();
        prop_assert_eq!(s.matvec_t_exec(&xt, &ser).unwrap(), s.matvec_t_exec(&xt, &par).unwrap());
        let b = srda_linalg::Mat::from_vec(n, 2, (0..2 * n).map(|k| (k as f64 * 0.11).sin()).collect()).unwrap();
        prop_assert!(s.matmul_dense_exec(&b, &ser).unwrap()
            .approx_eq(&s.matmul_dense_exec(&b, &par).unwrap(), 0.0));
        let g_ser = s.gram_t_dense_checked_exec(usize::MAX, &ser).unwrap();
        let g_par = s.gram_t_dense_checked_exec(usize::MAX, &par).unwrap();
        prop_assert!(g_ser.approx_eq(&g_par, 0.0));
    }

    #[test]
    fn transpose_is_involution_and_matches_dense((m, n, ts) in coo_strategy()) {
        let s = build(m, n, &ts);
        let t = s.transpose();
        prop_assert_eq!(t.shape(), (n, m));
        prop_assert_eq!(&t.transpose(), &s);
        prop_assert!(t.to_dense().approx_eq(&s.to_dense().transpose(), 0.0));
    }

    #[test]
    fn select_rows_matches_dense((m, n, ts) in coo_strategy()) {
        let s = build(m, n, &ts);
        let idx: Vec<usize> = (0..m).rev().step_by(2).collect();
        let sub = s.select_rows(&idx);
        let dense_sub = s.to_dense().select_rows(&idx);
        prop_assert!(sub.to_dense().approx_eq(&dense_sub, 0.0));
    }

    #[test]
    fn io_roundtrip((m, n, ts) in coo_strategy()) {
        let s = build(m, n, &ts);
        let labels: Vec<usize> = (0..m).map(|i| i % 3).collect();
        let data = io::LabeledSparse { x: s, labels };
        let text = io::write(&data);
        let back = io::parse(&text, n).unwrap();
        prop_assert_eq!(back, data);
    }

    #[test]
    fn nnz_bounds((m, n, ts) in coo_strategy()) {
        let s = build(m, n, &ts);
        prop_assert!(s.nnz() <= ts.len());
        prop_assert!(s.nnz() <= m * n);
        prop_assert!(s.density() <= 1.0);
    }

    #[test]
    fn normalize_rows_gives_unit_norms((m, n, ts) in coo_strategy()) {
        let mut s = build(m, n, &ts);
        s.normalize_rows_l2();
        for i in 0..m {
            let norm_sq: f64 = s.row_entries(i).map(|(_, v)| v * v).sum();
            if s.row_nnz(i) > 0 {
                prop_assert!((norm_sq.sqrt() - 1.0).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn append_constant_col_preserves_matvec((m, n, ts) in coo_strategy()) {
        let s = build(m, n, &ts);
        let aug = s.append_constant_col(1.0);
        // multiplying by [x; 0] must equal the original matvec
        let x: Vec<f64> = (0..n).map(|i| i as f64 - 1.0).collect();
        let mut x_aug = x.clone();
        x_aug.push(0.0);
        prop_assert_eq!(aug.matvec(&x_aug).unwrap(), s.matvec(&x).unwrap());
        // and the last column contributes the constant
        let mut bias_only = vec![0.0; n];
        bias_only.push(2.0);
        prop_assert_eq!(aug.matvec(&bias_only).unwrap(), vec![2.0; m]);
    }
}
