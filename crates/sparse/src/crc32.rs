//! CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) for on-disk
//! integrity checking — table-driven, no external dependencies.
//!
//! [`DiskCsr`](crate::DiskCsr) stores a checksum of the row pointers and
//! non-zero entries so that bit rot, partial writes, and casual tampering
//! are detected at open time instead of surfacing as silently-wrong
//! matrix-vector products mid-solve.

/// The byte-at-a-time lookup table for the reflected IEEE polynomial.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Incremental CRC-32 state, for checksumming streamed data.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Fresh state (equivalent to having hashed zero bytes).
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Fold `bytes` into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut crc = self.state;
        for &b in bytes {
            crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
        }
        self.state = crc;
    }

    /// The checksum of everything folded in so far.
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// One-shot CRC-32 of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_test_vectors() {
        // the canonical check value for CRC-32/IEEE
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn incremental_matches_one_shot() {
        let data = b"spectral regression discriminant analysis";
        for split in 0..data.len() {
            let mut c = Crc32::new();
            c.update(&data[..split]);
            c.update(&data[split..]);
            assert_eq!(c.finish(), crc32(data));
        }
    }

    #[test]
    fn detects_single_bit_flips() {
        let mut data = (0u16..512).map(|i| (i % 251) as u8).collect::<Vec<_>>();
        let original = crc32(&data);
        for byte in [0usize, 100, 511] {
            for bit in 0..8 {
                data[byte] ^= 1 << bit;
                assert_ne!(crc32(&data), original, "flip at {byte}:{bit} undetected");
                data[byte] ^= 1 << bit;
            }
        }
        assert_eq!(crc32(&data), original);
    }
}
