//! Out-of-core CSR storage — the paper's closing §III.C.2 claim made
//! concrete:
//!
//! > "Even [if] the data matrix is too large to be fit into the memory,
//! > SRDA can still be applied with some reasonable disk I/O. This is
//! > because in each iteration of LSQR, we only need to calculate two
//! > matrix-vector products in the form of Xu and Xᵀv, which can be easily
//! > implemented with X ... stored on the disk."
//!
//! [`DiskCsr`] keeps only the row-pointer array in memory (`8·(m+1)`
//! bytes) and streams the non-zeros from disk for every product — one
//! sequential pass per `matvec`/`matvec_t`, which is exactly the access
//! pattern LSQR needs.
//!
//! ## File format (`SRDACSR2`, little-endian)
//!
//! ```text
//! magic    8 bytes  "SRDACSR2"
//! rows     u64
//! cols     u64
//! nnz      u64
//! crc32    u32      CRC-32/IEEE of indptr ++ entries (see crate::crc32)
//! reserved u32      zero
//! indptr   (rows+1) × u64
//! entries  nnz × (u64 col, f64 value)   — interleaved, row-major
//! ```
//!
//! Interleaving the column/value pairs keeps both products a single
//! forward scan (no second seek stream).
//!
//! ## Integrity guarantees
//!
//! Training jobs can run for hours against one of these files, so
//! [`DiskCsr::open`] refuses anything it cannot fully trust rather than
//! letting corruption surface as silently-wrong products mid-solve:
//!
//! * the declared shape must match the file size **exactly** (catches
//!   truncated and over-long files before any data is read);
//! * row pointers must start at 0, be monotone non-decreasing, and end at
//!   `nnz`;
//! * every column index must be `< cols`;
//! * the CRC-32 over row pointers and entries must match the header.
//!
//! The column and CRC checks cost one extra sequential pass at open time —
//! the same I/O as a single LSQR iteration — and nothing afterwards.

use crate::crc32::Crc32;
use crate::csr::CsrMatrix;
use bytes::{Buf, BufMut};
use parking_lot::Mutex;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 8] = b"SRDACSR2";
/// Fixed-size header: magic + rows + cols + nnz + crc32 + reserved.
const HEADER_BYTES: u64 = 8 + 8 + 8 + 8 + 4 + 4;
/// Offset of the crc32 field within the header.
const CRC_OFFSET: u64 = 32;
/// Stream buffer size for the non-zero scan.
const CHUNK_ENTRIES: usize = 4096;
const ENTRY_BYTES: usize = 16; // u64 + f64

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Serialize a [`CsrMatrix`] into the on-disk format.
///
/// The checksum field is back-patched after the entries are streamed out,
/// so the write is one sequential pass plus one 4-byte seek.
pub fn write_csr(path: &Path, m: &CsrMatrix) -> io::Result<()> {
    let mut crc = Crc32::new();
    let mut header = Vec::with_capacity(HEADER_BYTES as usize);
    header.put_slice(MAGIC);
    header.put_u64_le(m.nrows() as u64);
    header.put_u64_le(m.ncols() as u64);
    header.put_u64_le(m.nnz() as u64);
    header.put_u32_le(0); // crc placeholder, patched below
    header.put_u32_le(0); // reserved
                          // rebuild indptr from row_nnz (the CSR internals stay private)
    let mut indptr = Vec::with_capacity(8 * (m.nrows() + 1));
    let mut acc = 0u64;
    indptr.put_u64_le(0);
    for i in 0..m.nrows() {
        acc += m.row_nnz(i) as u64;
        indptr.put_u64_le(acc);
    }
    crc.update(&indptr);
    let mut f = BufWriter::new(File::create(path)?);
    f.write_all(&header)?;
    f.write_all(&indptr)?;
    let mut buf = Vec::with_capacity(CHUNK_ENTRIES * ENTRY_BYTES);
    for i in 0..m.nrows() {
        for (j, v) in m.row_entries(i) {
            buf.put_u64_le(j as u64);
            buf.put_f64_le(v);
            if buf.len() >= CHUNK_ENTRIES * ENTRY_BYTES {
                crc.update(&buf);
                f.write_all(&buf)?;
                buf.clear();
            }
        }
    }
    crc.update(&buf);
    f.write_all(&buf)?;
    // patch the checksum into the header
    f.seek(SeekFrom::Start(CRC_OFFSET))?;
    f.write_all(&crc.finish().to_le_bytes())?;
    f.flush()
}

/// A sparse matrix resident on disk; only the row pointers live in memory.
pub struct DiskCsr {
    path: PathBuf,
    rows: usize,
    cols: usize,
    nnz: usize,
    indptr: Vec<u64>,
    data_offset: u64,
    /// Shared reader, re-wound for every product (the products are
    /// sequential scans, so one buffered handle suffices).
    reader: Mutex<BufReader<File>>,
}

impl std::fmt::Debug for DiskCsr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DiskCsr")
            .field("path", &self.path)
            .field("rows", &self.rows)
            .field("cols", &self.cols)
            .field("nnz", &self.nnz)
            .finish()
    }
}

impl DiskCsr {
    /// Open a file written by [`write_csr`], loading only the header and
    /// row pointers, and fully validating the file (see the module docs
    /// for the guarantee list). The validation scan is one sequential
    /// pass over the non-zeros; afterwards products trust the file.
    pub fn open(path: &Path) -> io::Result<DiskCsr> {
        let file = File::open(path)?;
        let file_len = file.metadata()?.len();
        let mut f = BufReader::new(file);
        let mut magic = [0u8; 8];
        f.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(bad("not an SRDACSR2 file"));
        }
        let mut head = [0u8; 32];
        f.read_exact(&mut head)?;
        let mut hb = &head[..];
        let rows = hb.get_u64_le();
        let cols = hb.get_u64_le();
        let nnz = hb.get_u64_le();
        let stored_crc = hb.get_u32_le();

        // shape sanity *before* trusting any derived size: all arithmetic
        // checked so a corrupt header cannot overflow into a bogus match
        let indptr_bytes_len = rows
            .checked_add(1)
            .and_then(|n| n.checked_mul(8))
            .ok_or_else(|| bad("header row count overflows"))?;
        let entry_bytes_len = nnz
            .checked_mul(ENTRY_BYTES as u64)
            .ok_or_else(|| bad("header nnz overflows"))?;
        let expected_len = HEADER_BYTES
            .checked_add(indptr_bytes_len)
            .and_then(|n| n.checked_add(entry_bytes_len))
            .ok_or_else(|| bad("header sizes overflow"))?;
        if file_len < expected_len {
            return Err(bad(format!(
                "truncated file: header declares {expected_len} bytes, found {file_len}"
            )));
        }
        if file_len > expected_len {
            return Err(bad(format!(
                "trailing bytes: header declares {expected_len} bytes, found {file_len}"
            )));
        }
        let rows = rows as usize;
        let cols = cols as usize;
        let nnz = nnz as usize;

        let mut crc = Crc32::new();
        let mut indptr_bytes = vec![0u8; indptr_bytes_len as usize];
        f.read_exact(&mut indptr_bytes)?;
        crc.update(&indptr_bytes);
        let mut ib = &indptr_bytes[..];
        let indptr: Vec<u64> = (0..=rows).map(|_| ib.get_u64_le()).collect();
        if indptr[0] != 0 {
            return Err(bad("row pointers must start at 0"));
        }
        if indptr.windows(2).any(|w| w[1] < w[0]) {
            return Err(bad("row pointers are not monotone non-decreasing"));
        }
        if indptr[rows] as usize != nnz {
            return Err(bad("row pointers inconsistent with nnz"));
        }

        // validation pass over the entries: checksum + column bounds
        let mut buf = vec![0u8; CHUNK_ENTRIES * ENTRY_BYTES];
        let mut remaining = nnz;
        while remaining > 0 {
            let take = remaining.min(CHUNK_ENTRIES);
            let bytes = take * ENTRY_BYTES;
            f.read_exact(&mut buf[..bytes])?;
            crc.update(&buf[..bytes]);
            let mut b = &buf[..bytes];
            for _ in 0..take {
                let col = b.get_u64_le();
                let _val = b.get_f64_le();
                if col as usize >= cols {
                    return Err(bad(format!(
                        "column index {col} out of bounds for {cols} columns"
                    )));
                }
            }
            remaining -= take;
        }
        let computed = crc.finish();
        if computed != stored_crc {
            return Err(bad(format!(
                "checksum mismatch: header says {stored_crc:#010x}, data hashes to {computed:#010x}"
            )));
        }

        let data_offset = HEADER_BYTES + indptr_bytes_len;
        Ok(DiskCsr {
            path: path.to_path_buf(),
            rows,
            cols,
            nnz,
            indptr,
            data_offset,
            reader: Mutex::new(f),
        })
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.cols
    }

    /// Stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// The file backing this matrix.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Bytes of RAM this handle keeps resident (row pointers + buffer).
    pub fn resident_bytes(&self) -> usize {
        self.indptr.len() * 8 + CHUNK_ENTRIES * ENTRY_BYTES
    }

    /// Stream all non-zeros in row-major order, invoking
    /// `visit(row, col, value)` — the primitive both products build on.
    fn scan(&self, mut visit: impl FnMut(usize, usize, f64)) -> io::Result<()> {
        #[cfg(feature = "failpoints")]
        if srda_linalg::failpoint::should_fail("diskcsr.read") {
            return Err(io::Error::new(
                io::ErrorKind::Other,
                "injected I/O failure (failpoint diskcsr.read)",
            ));
        }
        let mut reader = self.reader.lock();
        reader.seek(SeekFrom::Start(self.data_offset))?;
        let mut row = 0usize;
        let mut seen_in_row = 0u64;
        let mut row_len = self.indptr[1] - self.indptr[0];
        let mut remaining = self.nnz;
        let mut buf = vec![0u8; CHUNK_ENTRIES * ENTRY_BYTES];
        while remaining > 0 {
            let take = remaining.min(CHUNK_ENTRIES);
            let bytes = take * ENTRY_BYTES;
            reader.read_exact(&mut buf[..bytes])?;
            let mut b = &buf[..bytes];
            for _ in 0..take {
                // advance to the row owning this entry
                while seen_in_row == row_len {
                    row += 1;
                    seen_in_row = 0;
                    row_len = self.indptr[row + 1] - self.indptr[row];
                }
                let col = b.get_u64_le() as usize;
                let val = b.get_f64_le();
                visit(row, col, val);
                seen_in_row += 1;
            }
            remaining -= take;
        }
        Ok(())
    }

    /// `y = A·x`, one sequential pass over the file.
    pub fn matvec(&self, x: &[f64]) -> io::Result<Vec<f64>> {
        assert_eq!(x.len(), self.cols, "matvec length mismatch");
        let mut y = vec![0.0; self.rows];
        self.scan(|r, c, v| y[r] += v * x[c])?;
        Ok(y)
    }

    /// `y = Aᵀ·x`, one sequential pass over the file.
    pub fn matvec_t(&self, x: &[f64]) -> io::Result<Vec<f64>> {
        assert_eq!(x.len(), self.rows, "matvec_t length mismatch");
        let mut y = vec![0.0; self.cols];
        self.scan(|r, c, v| y[c] += v * x[r])?;
        Ok(y)
    }

    /// Load the whole matrix back into memory (tests / small files).
    pub fn to_csr(&self) -> io::Result<CsrMatrix> {
        let mut b = crate::CooBuilder::with_capacity(self.rows, self.cols, self.nnz);
        let mut err = None;
        self.scan(|r, c, v| {
            if err.is_none() {
                if let Err(e) = b.push(r, c, v) {
                    err = Some(e);
                }
            }
        })?;
        if err.is_some() {
            return Err(bad("entry out of declared bounds"));
        }
        Ok(b.build())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CooBuilder;

    fn sample(rows: usize, cols: usize, seed: u64) -> CsrMatrix {
        let mut b = CooBuilder::new(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                let h = ((i * 31 + j * 17) as f64 * 12.9898 + seed as f64).sin() * 43758.5453;
                let v = h - h.floor() - 0.5;
                if v > 0.1 {
                    b.push(i, j, v).unwrap();
                }
            }
        }
        b.build()
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("srda_diskcsr_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn roundtrip_through_disk() {
        let m = sample(23, 17, 1);
        let path = tmp("roundtrip.bin");
        write_csr(&path, &m).unwrap();
        let disk = DiskCsr::open(&path).unwrap();
        assert_eq!(disk.nrows(), 23);
        assert_eq!(disk.ncols(), 17);
        assert_eq!(disk.nnz(), m.nnz());
        assert_eq!(disk.to_csr().unwrap(), m);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn matvec_matches_in_memory() {
        let m = sample(40, 25, 2);
        let path = tmp("matvec.bin");
        write_csr(&path, &m).unwrap();
        let disk = DiskCsr::open(&path).unwrap();
        let x: Vec<f64> = (0..25).map(|i| (i as f64 * 0.31).sin()).collect();
        assert_eq!(disk.matvec(&x).unwrap(), m.matvec(&x).unwrap());
        let xt: Vec<f64> = (0..40).map(|i| (i as f64 * 0.17).cos()).collect();
        assert_eq!(disk.matvec_t(&xt).unwrap(), m.matvec_t(&xt).unwrap());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn repeated_products_rewind_correctly() {
        let m = sample(12, 9, 3);
        let path = tmp("rewind.bin");
        write_csr(&path, &m).unwrap();
        let disk = DiskCsr::open(&path).unwrap();
        let x = vec![1.0; 9];
        let first = disk.matvec(&x).unwrap();
        for _ in 0..3 {
            assert_eq!(disk.matvec(&x).unwrap(), first);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn handles_empty_rows_and_empty_matrix() {
        let mut b = CooBuilder::new(5, 4);
        b.push(2, 1, 7.0).unwrap();
        let m = b.build();
        let path = tmp("sparse_rows.bin");
        write_csr(&path, &m).unwrap();
        let disk = DiskCsr::open(&path).unwrap();
        assert_eq!(disk.to_csr().unwrap(), m);

        let empty = CsrMatrix::zeros(3, 3);
        let path2 = tmp("empty.bin");
        write_csr(&path2, &empty).unwrap();
        let disk2 = DiskCsr::open(&path2).unwrap();
        assert_eq!(disk2.matvec(&[1.0; 3]).unwrap(), vec![0.0; 3]);
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&path2).ok();
    }

    #[test]
    fn rejects_foreign_files() {
        let path = tmp("garbage.bin");
        std::fs::write(&path, b"definitely not a matrix").unwrap();
        assert!(DiskCsr::open(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_truncated_file() {
        let m = sample(20, 15, 5);
        let path = tmp("truncated.bin");
        write_csr(&path, &m).unwrap();
        let full = std::fs::read(&path).unwrap();
        // chop entries off the tail: every prefix must be rejected
        for keep in [full.len() - 1, full.len() - ENTRY_BYTES, full.len() / 2] {
            std::fs::write(&path, &full[..keep]).unwrap();
            let err = DiskCsr::open(&path).unwrap_err();
            assert!(
                err.to_string().contains("truncated"),
                "unexpected error for keep={keep}: {err}"
            );
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_trailing_bytes() {
        let m = sample(8, 6, 6);
        let path = tmp("trailing.bin");
        write_csr(&path, &m).unwrap();
        let mut full = std::fs::read(&path).unwrap();
        full.extend_from_slice(&[0u8; 7]);
        std::fs::write(&path, &full).unwrap();
        let err = DiskCsr::open(&path).unwrap_err();
        assert!(err.to_string().contains("trailing"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_corrupted_header() {
        let m = sample(10, 10, 7);
        let path = tmp("badheader.bin");
        write_csr(&path, &m).unwrap();
        let full = std::fs::read(&path).unwrap();
        // corrupt the nnz field (offset 24): size check must catch it
        let mut bad_nnz = full.clone();
        bad_nnz[24] ^= 0xFF;
        std::fs::write(&path, &bad_nnz).unwrap();
        assert!(DiskCsr::open(&path).is_err());
        // nnz = u64::MAX: the checked size arithmetic must not overflow
        let mut huge_nnz = full.clone();
        huge_nnz[24..32].copy_from_slice(&u64::MAX.to_le_bytes());
        std::fs::write(&path, &huge_nnz).unwrap();
        assert!(DiskCsr::open(&path).is_err());
        // rows = u64::MAX likewise
        let mut huge_rows = full;
        huge_rows[8..16].copy_from_slice(&u64::MAX.to_le_bytes());
        std::fs::write(&path, &huge_rows).unwrap();
        assert!(DiskCsr::open(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_flipped_data_bit() {
        let m = sample(15, 12, 8);
        let path = tmp("bitflip.bin");
        write_csr(&path, &m).unwrap();
        let full = std::fs::read(&path).unwrap();
        // flip one bit in the last value byte: only the CRC can catch this
        let mut flipped = full;
        let last = flipped.len() - 1;
        flipped[last] ^= 0x01;
        std::fs::write(&path, &flipped).unwrap();
        let err = DiskCsr::open(&path).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_non_monotone_indptr() {
        let m = sample(6, 5, 9);
        let path = tmp("badindptr.bin");
        write_csr(&path, &m).unwrap();
        let mut full = std::fs::read(&path).unwrap();
        // indptr starts at byte 40; make the second pointer huge
        full[48..56].copy_from_slice(&u64::MAX.to_le_bytes());
        std::fs::write(&path, &full).unwrap();
        let err = DiskCsr::open(&path).unwrap_err();
        assert!(
            err.to_string().contains("monotone") || err.to_string().contains("nnz"),
            "{err}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_out_of_bounds_column() {
        let mut b = CooBuilder::new(2, 3);
        b.push(0, 0, 1.0).unwrap();
        b.push(1, 2, 2.0).unwrap();
        let m = b.build();
        let path = tmp("badcol.bin");
        write_csr(&path, &m).unwrap();
        let mut full = std::fs::read(&path).unwrap();
        // first entry's column index lives right after indptr (40 + 3*8)
        let col_off = 40 + 3 * 8;
        full[col_off..col_off + 8].copy_from_slice(&99u64.to_le_bytes());
        // keep the CRC honest so the column check is what fires
        let mut crc = Crc32::new();
        crc.update(&full[40..]);
        full[32..36].copy_from_slice(&crc.finish().to_le_bytes());
        std::fs::write(&path, &full).unwrap();
        let err = DiskCsr::open(&path).unwrap_err();
        assert!(err.to_string().contains("out of bounds"), "{err}");
        std::fs::remove_file(&path).ok();
    }
}
