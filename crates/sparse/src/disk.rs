//! Out-of-core CSR storage — the paper's closing §III.C.2 claim made
//! concrete:
//!
//! > "Even [if] the data matrix is too large to be fit into the memory,
//! > SRDA can still be applied with some reasonable disk I/O. This is
//! > because in each iteration of LSQR, we only need to calculate two
//! > matrix-vector products in the form of Xu and Xᵀv, which can be easily
//! > implemented with X ... stored on the disk."
//!
//! [`DiskCsr`] keeps only the row-pointer array in memory (`8·(m+1)`
//! bytes) and streams the non-zeros from disk for every product — one
//! sequential pass per `matvec`/`matvec_t`, which is exactly the access
//! pattern LSQR needs.
//!
//! ## File format (`SRDACSR1`, little-endian)
//!
//! ```text
//! magic   8 bytes  "SRDACSR1"
//! rows    u64
//! cols    u64
//! nnz     u64
//! indptr  (rows+1) × u64
//! entries nnz × (u64 col, f64 value)   — interleaved, row-major
//! ```
//!
//! Interleaving the column/value pairs keeps both products a single
//! forward scan (no second seek stream).

use crate::csr::CsrMatrix;
use bytes::{Buf, BufMut};
use parking_lot::Mutex;
use std::fs::File;
use std::io::{self, BufReader, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 8] = b"SRDACSR1";
/// Stream buffer size for the non-zero scan.
const CHUNK_ENTRIES: usize = 4096;
const ENTRY_BYTES: usize = 16; // u64 + f64

/// Serialize a [`CsrMatrix`] into the on-disk format.
pub fn write_csr(path: &Path, m: &CsrMatrix) -> io::Result<()> {
    let mut header = Vec::with_capacity(32 + 8 * (m.nrows() + 1));
    header.put_slice(MAGIC);
    header.put_u64_le(m.nrows() as u64);
    header.put_u64_le(m.ncols() as u64);
    header.put_u64_le(m.nnz() as u64);
    // rebuild indptr from row_nnz (the CSR internals stay private)
    let mut acc = 0u64;
    header.put_u64_le(0);
    for i in 0..m.nrows() {
        acc += m.row_nnz(i) as u64;
        header.put_u64_le(acc);
    }
    let mut f = std::io::BufWriter::new(File::create(path)?);
    f.write_all(&header)?;
    let mut buf = Vec::with_capacity(CHUNK_ENTRIES * ENTRY_BYTES);
    for i in 0..m.nrows() {
        for (j, v) in m.row_entries(i) {
            buf.put_u64_le(j as u64);
            buf.put_f64_le(v);
            if buf.len() >= CHUNK_ENTRIES * ENTRY_BYTES {
                f.write_all(&buf)?;
                buf.clear();
            }
        }
    }
    f.write_all(&buf)?;
    f.flush()
}

/// A sparse matrix resident on disk; only the row pointers live in memory.
pub struct DiskCsr {
    path: PathBuf,
    rows: usize,
    cols: usize,
    nnz: usize,
    indptr: Vec<u64>,
    data_offset: u64,
    /// Shared reader, re-wound for every product (the products are
    /// sequential scans, so one buffered handle suffices).
    reader: Mutex<BufReader<File>>,
}

impl std::fmt::Debug for DiskCsr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DiskCsr")
            .field("path", &self.path)
            .field("rows", &self.rows)
            .field("cols", &self.cols)
            .field("nnz", &self.nnz)
            .finish()
    }
}

impl DiskCsr {
    /// Open a file written by [`write_csr`], loading only the header and
    /// row pointers.
    pub fn open(path: &Path) -> io::Result<DiskCsr> {
        let mut f = BufReader::new(File::open(path)?);
        let mut magic = [0u8; 8];
        f.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "not an SRDACSR1 file",
            ));
        }
        let mut head = [0u8; 24];
        f.read_exact(&mut head)?;
        let mut hb = &head[..];
        let rows = hb.get_u64_le() as usize;
        let cols = hb.get_u64_le() as usize;
        let nnz = hb.get_u64_le() as usize;
        let mut indptr_bytes = vec![0u8; 8 * (rows + 1)];
        f.read_exact(&mut indptr_bytes)?;
        let mut ib = &indptr_bytes[..];
        let indptr: Vec<u64> = (0..=rows).map(|_| ib.get_u64_le()).collect();
        if indptr[rows] as usize != nnz {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "row pointers inconsistent with nnz",
            ));
        }
        let data_offset = 32 + 8 * (rows as u64 + 1);
        Ok(DiskCsr {
            path: path.to_path_buf(),
            rows,
            cols,
            nnz,
            indptr,
            data_offset,
            reader: Mutex::new(f),
        })
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.cols
    }

    /// Stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// The file backing this matrix.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Bytes of RAM this handle keeps resident (row pointers + buffer).
    pub fn resident_bytes(&self) -> usize {
        self.indptr.len() * 8 + CHUNK_ENTRIES * ENTRY_BYTES
    }

    /// Stream all non-zeros in row-major order, invoking
    /// `visit(row, col, value)` — the primitive both products build on.
    fn scan(&self, mut visit: impl FnMut(usize, usize, f64)) -> io::Result<()> {
        let mut reader = self.reader.lock();
        reader.seek(SeekFrom::Start(self.data_offset))?;
        let mut row = 0usize;
        let mut seen_in_row = 0u64;
        let mut row_len = self.indptr[1] - self.indptr[0];
        let mut remaining = self.nnz;
        let mut buf = vec![0u8; CHUNK_ENTRIES * ENTRY_BYTES];
        while remaining > 0 {
            let take = remaining.min(CHUNK_ENTRIES);
            let bytes = take * ENTRY_BYTES;
            reader.read_exact(&mut buf[..bytes])?;
            let mut b = &buf[..bytes];
            for _ in 0..take {
                // advance to the row owning this entry
                while seen_in_row == row_len {
                    row += 1;
                    seen_in_row = 0;
                    row_len = self.indptr[row + 1] - self.indptr[row];
                }
                let col = b.get_u64_le() as usize;
                let val = b.get_f64_le();
                visit(row, col, val);
                seen_in_row += 1;
            }
            remaining -= take;
        }
        Ok(())
    }

    /// `y = A·x`, one sequential pass over the file.
    pub fn matvec(&self, x: &[f64]) -> io::Result<Vec<f64>> {
        assert_eq!(x.len(), self.cols, "matvec length mismatch");
        let mut y = vec![0.0; self.rows];
        self.scan(|r, c, v| y[r] += v * x[c])?;
        Ok(y)
    }

    /// `y = Aᵀ·x`, one sequential pass over the file.
    pub fn matvec_t(&self, x: &[f64]) -> io::Result<Vec<f64>> {
        assert_eq!(x.len(), self.rows, "matvec_t length mismatch");
        let mut y = vec![0.0; self.cols];
        self.scan(|r, c, v| y[c] += v * x[r])?;
        Ok(y)
    }

    /// Load the whole matrix back into memory (tests / small files).
    pub fn to_csr(&self) -> io::Result<CsrMatrix> {
        let mut b = crate::CooBuilder::with_capacity(self.rows, self.cols, self.nnz);
        let mut err = None;
        self.scan(|r, c, v| {
            if err.is_none() {
                if let Err(e) = b.push(r, c, v) {
                    err = Some(e);
                }
            }
        })?;
        if err.is_some() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "entry out of declared bounds",
            ));
        }
        Ok(b.build())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CooBuilder;

    fn sample(rows: usize, cols: usize, seed: u64) -> CsrMatrix {
        let mut b = CooBuilder::new(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                let h = ((i * 31 + j * 17) as f64 * 12.9898 + seed as f64).sin() * 43758.5453;
                let v = h - h.floor() - 0.5;
                if v > 0.1 {
                    b.push(i, j, v).unwrap();
                }
            }
        }
        b.build()
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("srda_diskcsr_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn roundtrip_through_disk() {
        let m = sample(23, 17, 1);
        let path = tmp("roundtrip.bin");
        write_csr(&path, &m).unwrap();
        let disk = DiskCsr::open(&path).unwrap();
        assert_eq!(disk.nrows(), 23);
        assert_eq!(disk.ncols(), 17);
        assert_eq!(disk.nnz(), m.nnz());
        assert_eq!(disk.to_csr().unwrap(), m);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn matvec_matches_in_memory() {
        let m = sample(40, 25, 2);
        let path = tmp("matvec.bin");
        write_csr(&path, &m).unwrap();
        let disk = DiskCsr::open(&path).unwrap();
        let x: Vec<f64> = (0..25).map(|i| (i as f64 * 0.31).sin()).collect();
        assert_eq!(disk.matvec(&x).unwrap(), m.matvec(&x).unwrap());
        let xt: Vec<f64> = (0..40).map(|i| (i as f64 * 0.17).cos()).collect();
        assert_eq!(disk.matvec_t(&xt).unwrap(), m.matvec_t(&xt).unwrap());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn repeated_products_rewind_correctly() {
        let m = sample(12, 9, 3);
        let path = tmp("rewind.bin");
        write_csr(&path, &m).unwrap();
        let disk = DiskCsr::open(&path).unwrap();
        let x = vec![1.0; 9];
        let first = disk.matvec(&x).unwrap();
        for _ in 0..3 {
            assert_eq!(disk.matvec(&x).unwrap(), first);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn handles_empty_rows_and_empty_matrix() {
        let mut b = CooBuilder::new(5, 4);
        b.push(2, 1, 7.0).unwrap();
        let m = b.build();
        let path = tmp("sparse_rows.bin");
        write_csr(&path, &m).unwrap();
        let disk = DiskCsr::open(&path).unwrap();
        assert_eq!(disk.to_csr().unwrap(), m);

        let empty = CsrMatrix::zeros(3, 3);
        let path2 = tmp("empty.bin");
        write_csr(&path2, &empty).unwrap();
        let disk2 = DiskCsr::open(&path2).unwrap();
        assert_eq!(disk2.matvec(&[1.0; 3]).unwrap(), vec![0.0; 3]);
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&path2).ok();
    }

    #[test]
    fn rejects_foreign_files() {
        let path = tmp("garbage.bin");
        std::fs::write(&path, b"definitely not a matrix").unwrap();
        assert!(DiskCsr::open(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resident_memory_is_small() {
        let m = sample(200, 100, 4);
        let path = tmp("resident.bin");
        write_csr(&path, &m).unwrap();
        let disk = DiskCsr::open(&path).unwrap();
        // resident set ~ indptr + one chunk buffer, far below the nnz data
        assert!(disk.resident_bytes() < m.memory_bytes() + 70_000);
        assert!(disk.resident_bytes() < 8 * 201 + 4096 * 16 + 1);
        std::fs::remove_file(&path).ok();
    }
}
