//! # srda-sparse
//!
//! Sparse-matrix substrate for the SRDA reproduction.
//!
//! The paper's headline result — discriminant analysis in time *linear* in
//! the number of samples and features — holds only because LSQR touches the
//! data exclusively through the two products `X·v` and `Xᵀ·v`, both of which
//! cost `O(nnz)` on a sparse matrix. This crate provides exactly that:
//!
//! * [`CooBuilder`] — a triplet accumulator for incremental construction
//!   (duplicate entries are summed, matching the usual COO semantics).
//! * [`CsrMatrix`] — compressed sparse row storage with `O(nnz)` mat-vec
//!   in both orientations, row slicing (for train/test splits), density
//!   statistics (the paper's `s` = average non-zeros per sample), and
//!   dense conversion.
//! * [`io`] — a plain-text interchange format (`label idx:val idx:val ...`,
//!   the LIBSVM convention) so sparse experiments can be serialized and
//!   inspected.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coo;
pub mod crc32;
pub mod csr;
pub mod disk;
pub mod io;

pub use coo::CooBuilder;
pub use csr::{CsrMatrix, GramBudgetExceeded};
pub use disk::DiskCsr;

/// Errors produced by sparse-matrix construction and kernels.
#[derive(Debug, Clone, PartialEq)]
pub enum SparseError {
    /// An index was outside the declared matrix shape.
    IndexOutOfBounds {
        /// The offending (row, col).
        index: (usize, usize),
        /// The declared shape.
        shape: (usize, usize),
    },
    /// Operand shapes are incompatible.
    ShapeMismatch {
        /// Operation name.
        op: &'static str,
        /// Left shape.
        lhs: (usize, usize),
        /// Right shape (vectors reported as `(len, 1)`).
        rhs: (usize, usize),
    },
    /// Malformed text input when parsing the interchange format.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// Internal structural invariant violated (row pointers not monotone,
    /// column indices unsorted, ...). Indicates a construction bug.
    InvalidStructure {
        /// Description of the violated invariant.
        context: &'static str,
    },
}

impl std::fmt::Display for SparseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SparseError::IndexOutOfBounds { index, shape } => write!(
                f,
                "index ({}, {}) out of bounds for {}x{} matrix",
                index.0, index.1, shape.0, shape.1
            ),
            SparseError::ShapeMismatch { op, lhs, rhs } => write!(
                f,
                "shape mismatch in {op}: {}x{} vs {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            SparseError::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
            SparseError::InvalidStructure { context } => {
                write!(f, "invalid sparse structure: {context}")
            }
        }
    }
}

impl std::error::Error for SparseError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, SparseError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        let e = SparseError::IndexOutOfBounds {
            index: (5, 6),
            shape: (2, 3),
        };
        assert!(e.to_string().contains("(5, 6)"));
        let p = SparseError::Parse {
            line: 3,
            message: "bad token".into(),
        };
        assert!(p.to_string().contains("line 3"));
    }
}
