//! Triplet (COO) accumulation, the ergonomic way to build a sparse matrix.

use crate::csr::CsrMatrix;
use crate::{Result, SparseError};

/// An append-only triplet builder. Duplicate `(row, col)` entries are summed
/// when converting to CSR, and explicit zeros are dropped.
///
/// ```
/// use srda_sparse::CooBuilder;
///
/// let mut b = CooBuilder::new(2, 3);
/// b.push(0, 1, 2.0).unwrap();
/// b.push(1, 2, 3.0).unwrap();
/// b.push(0, 1, 0.5).unwrap(); // summed with the first entry
/// let m = b.build();
/// assert_eq!(m.get(0, 1), 2.5);
/// assert_eq!(m.nnz(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct CooBuilder {
    rows: usize,
    cols: usize,
    entries: Vec<(usize, usize, f64)>,
}

impl CooBuilder {
    /// Create a builder for a `rows × cols` matrix.
    pub fn new(rows: usize, cols: usize) -> Self {
        CooBuilder {
            rows,
            cols,
            entries: Vec::new(),
        }
    }

    /// Create a builder with pre-reserved capacity for `nnz` entries.
    pub fn with_capacity(rows: usize, cols: usize, nnz: usize) -> Self {
        CooBuilder {
            rows,
            cols,
            entries: Vec::with_capacity(nnz),
        }
    }

    /// Append one entry; bounds-checked against the declared shape.
    pub fn push(&mut self, row: usize, col: usize, value: f64) -> Result<()> {
        if row >= self.rows || col >= self.cols {
            return Err(SparseError::IndexOutOfBounds {
                index: (row, col),
                shape: (self.rows, self.cols),
            });
        }
        self.entries.push((row, col, value));
        Ok(())
    }

    /// Number of accumulated triplets (before dedup).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no triplets have been pushed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Declared shape.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Sort, merge duplicates, drop zeros, and produce the CSR matrix.
    pub fn build(mut self) -> CsrMatrix {
        self.entries.sort_unstable_by_key(|a| (a.0, a.1));

        let mut indptr = Vec::with_capacity(self.rows + 1);
        let mut indices = Vec::with_capacity(self.entries.len());
        let mut values = Vec::with_capacity(self.entries.len());
        indptr.push(0);

        let mut current_row = 0usize;
        let mut i = 0;
        while i < self.entries.len() {
            let (r, c, mut v) = self.entries[i];
            i += 1;
            // merge duplicates
            while i < self.entries.len() && self.entries[i].0 == r && self.entries[i].1 == c {
                v += self.entries[i].2;
                i += 1;
            }
            if v == 0.0 {
                continue;
            }
            while current_row < r {
                indptr.push(indices.len());
                current_row += 1;
            }
            indices.push(c);
            values.push(v);
        }
        while current_row < self.rows {
            indptr.push(indices.len());
            current_row += 1;
        }

        CsrMatrix::from_raw_parts(self.rows, self.cols, indptr, indices, values)
            .expect("CooBuilder produced structurally valid CSR")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_sorted_csr() {
        let mut b = CooBuilder::new(3, 3);
        // pushed out of order on purpose
        b.push(2, 0, 5.0).unwrap();
        b.push(0, 2, 1.0).unwrap();
        b.push(0, 0, 2.0).unwrap();
        let m = b.build();
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.get(0, 0), 2.0);
        assert_eq!(m.get(0, 2), 1.0);
        assert_eq!(m.get(2, 0), 5.0);
        assert_eq!(m.get(1, 1), 0.0);
    }

    #[test]
    fn duplicates_sum() {
        let mut b = CooBuilder::new(1, 2);
        b.push(0, 1, 1.5).unwrap();
        b.push(0, 1, 2.5).unwrap();
        let m = b.build();
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.get(0, 1), 4.0);
    }

    #[test]
    fn cancelling_duplicates_are_dropped() {
        let mut b = CooBuilder::new(1, 1);
        b.push(0, 0, 1.0).unwrap();
        b.push(0, 0, -1.0).unwrap();
        let m = b.build();
        assert_eq!(m.nnz(), 0);
    }

    #[test]
    fn explicit_zeros_dropped() {
        let mut b = CooBuilder::new(2, 2);
        b.push(0, 0, 0.0).unwrap();
        b.push(1, 1, 3.0).unwrap();
        let m = b.build();
        assert_eq!(m.nnz(), 1);
    }

    #[test]
    fn bounds_checked() {
        let mut b = CooBuilder::new(2, 2);
        assert!(b.push(2, 0, 1.0).is_err());
        assert!(b.push(0, 2, 1.0).is_err());
        assert!(b.push(1, 1, 1.0).is_ok());
    }

    #[test]
    fn empty_build() {
        let m = CooBuilder::new(4, 5).build();
        assert_eq!(m.shape(), (4, 5));
        assert_eq!(m.nnz(), 0);
    }

    #[test]
    fn trailing_empty_rows() {
        let mut b = CooBuilder::new(5, 2);
        b.push(1, 0, 1.0).unwrap();
        let m = b.build();
        assert_eq!(m.shape(), (5, 2));
        assert_eq!(m.row_nnz(4), 0);
        assert_eq!(m.row_nnz(1), 1);
    }
}
