//! Compressed sparse row storage and the `O(nnz)` kernels SRDA relies on.

use crate::{Result, SparseError};
use srda_kernels::sparse::CsrView;
use srda_kernels::Executor;
use srda_linalg::{flam, Mat};

/// Why a budgeted densification (e.g. [`CsrMatrix::gram_t_dense_checked`])
/// declined: the dense output would need more bytes than the budget allows.
///
/// Carried as an error value (rather than a bare `None`) so fit pipelines
/// can surface the exact numbers in their reports when they fall back to an
/// iterative solver — the paper's "LDA cannot be applied due to the memory
/// limit" dashes, made auditable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GramBudgetExceeded {
    /// Bytes the dense output would occupy (`u128`: cannot overflow even
    /// for absurd shapes).
    pub needed_bytes: u128,
    /// The configured budget in bytes.
    pub budget_bytes: usize,
}

impl std::fmt::Display for GramBudgetExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "dense Gram matrix needs {} bytes but the memory budget is {} bytes",
            self.needed_bytes, self.budget_bytes
        )
    }
}

impl std::error::Error for GramBudgetExceeded {}

/// A compressed-sparse-row matrix of `f64`.
///
/// Invariants (checked by [`CsrMatrix::from_raw_parts`]):
/// * `indptr.len() == nrows + 1`, `indptr[0] == 0`, monotone non-decreasing,
///   `indptr[nrows] == indices.len() == values.len()`;
/// * within each row, column indices are strictly increasing and `< ncols`.
///
/// The paper's LSQR path needs only [`CsrMatrix::matvec`] and
/// [`CsrMatrix::matvec_t`], each one pass over the non-zeros — that is the
/// entire reason SRDA trains in linear time on text data.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    indptr: Vec<usize>,
    indices: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Construct from raw CSR arrays, validating every structural invariant.
    pub fn from_raw_parts(
        rows: usize,
        cols: usize,
        indptr: Vec<usize>,
        indices: Vec<usize>,
        values: Vec<f64>,
    ) -> Result<Self> {
        if indptr.len() != rows + 1 {
            return Err(SparseError::InvalidStructure {
                context: "indptr length must be nrows + 1",
            });
        }
        if indptr[0] != 0 || *indptr.last().unwrap() != indices.len() {
            return Err(SparseError::InvalidStructure {
                context: "indptr must start at 0 and end at nnz",
            });
        }
        if indices.len() != values.len() {
            return Err(SparseError::InvalidStructure {
                context: "indices and values must have equal length",
            });
        }
        for w in indptr.windows(2) {
            if w[0] > w[1] {
                return Err(SparseError::InvalidStructure {
                    context: "indptr must be monotone non-decreasing",
                });
            }
        }
        for r in 0..rows {
            let row = &indices[indptr[r]..indptr[r + 1]];
            for (k, &c) in row.iter().enumerate() {
                if c >= cols {
                    return Err(SparseError::InvalidStructure {
                        context: "column index out of bounds",
                    });
                }
                if k > 0 && row[k - 1] >= c {
                    return Err(SparseError::InvalidStructure {
                        context: "column indices must be strictly increasing within a row",
                    });
                }
            }
        }
        Ok(CsrMatrix {
            rows,
            cols,
            indptr,
            indices,
            values,
        })
    }

    /// An empty (all-zero) matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        CsrMatrix {
            rows,
            cols,
            indptr: vec![0; rows + 1],
            indices: vec![],
            values: vec![],
        }
    }

    /// Convert a dense matrix, dropping entries with `|x| <= threshold`.
    pub fn from_dense(a: &Mat, threshold: f64) -> Self {
        let (m, n) = a.shape();
        let mut indptr = Vec::with_capacity(m + 1);
        let mut indices = Vec::new();
        let mut values = Vec::new();
        indptr.push(0);
        for i in 0..m {
            for (j, &v) in a.row(i).iter().enumerate() {
                if v.abs() > threshold {
                    indices.push(j);
                    values.push(v);
                }
            }
            indptr.push(indices.len());
        }
        CsrMatrix {
            rows: m,
            cols: n,
            indptr,
            indices,
            values,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of stored non-zeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Non-zeros in row `i`.
    #[inline]
    pub fn row_nnz(&self, i: usize) -> usize {
        self.indptr[i + 1] - self.indptr[i]
    }

    /// Average non-zeros per row — the paper's `s` parameter in the
    /// `O(kcms)` sparse-SRDA cost.
    pub fn avg_row_nnz(&self) -> f64 {
        if self.rows == 0 {
            0.0
        } else {
            self.nnz() as f64 / self.rows as f64
        }
    }

    /// Fill fraction `nnz / (rows·cols)`.
    pub fn density(&self) -> f64 {
        if self.rows == 0 || self.cols == 0 {
            0.0
        } else {
            self.nnz() as f64 / (self.rows as f64 * self.cols as f64)
        }
    }

    /// The `(column, value)` pairs of row `i`.
    pub fn row_entries(&self, i: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let span = self.indptr[i]..self.indptr[i + 1];
        self.indices[span.clone()]
            .iter()
            .copied()
            .zip(self.values[span].iter().copied())
    }

    /// Value at `(i, j)` (binary search within the row; 0.0 if absent).
    pub fn get(&self, i: usize, j: usize) -> f64 {
        let row = &self.indices[self.indptr[i]..self.indptr[i + 1]];
        match row.binary_search(&j) {
            Ok(k) => self.values[self.indptr[i] + k],
            Err(_) => 0.0,
        }
    }

    /// Borrowed raw-slice view for the `srda-kernels` layer.
    fn view(&self) -> CsrView<'_> {
        CsrView {
            rows: self.rows,
            cols: self.cols,
            indptr: &self.indptr,
            indices: &self.indices,
            values: &self.values,
        }
    }

    /// `y = A·x` in one pass over the non-zeros.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>> {
        self.matvec_exec(x, &Executor::serial())
    }

    /// `y = A·x` on the given executor (row-parallel under the threaded
    /// backend; results are identical on every backend).
    pub fn matvec_exec(&self, x: &[f64], exec: &Executor) -> Result<Vec<f64>> {
        if x.len() != self.cols {
            return Err(SparseError::ShapeMismatch {
                op: "matvec",
                lhs: self.shape(),
                rhs: (x.len(), 1),
            });
        }
        flam::add(self.nnz() as u64);
        let mut y = vec![0.0; self.rows];
        srda_kernels::sparse::csr_matvec(exec, self.view(), x, &mut y);
        Ok(y)
    }

    /// `y = A·x` into a caller-provided buffer (no allocation) on the
    /// given executor. `y.len()` must equal `nrows()`.
    pub fn matvec_into_exec(&self, x: &[f64], y: &mut [f64], exec: &Executor) -> Result<()> {
        if x.len() != self.cols || y.len() != self.rows {
            return Err(SparseError::ShapeMismatch {
                op: "matvec_into",
                lhs: self.shape(),
                rhs: (x.len(), 1),
            });
        }
        flam::add(self.nnz() as u64);
        srda_kernels::sparse::csr_matvec(exec, self.view(), x, y);
        Ok(())
    }

    /// `y = Aᵀ·x` in one pass over the non-zeros (scatter form; no
    /// transposed copy is materialized).
    pub fn matvec_t(&self, x: &[f64]) -> Result<Vec<f64>> {
        self.matvec_t_exec(x, &Executor::serial())
    }

    /// `y = Aᵀ·x` into a caller-provided buffer (no allocation) on the
    /// given executor. `y.len()` must equal `ncols()`.
    pub fn matvec_t_into_exec(&self, x: &[f64], y: &mut [f64], exec: &Executor) -> Result<()> {
        if x.len() != self.rows || y.len() != self.cols {
            return Err(SparseError::ShapeMismatch {
                op: "matvec_t_into",
                lhs: self.shape(),
                rhs: (x.len(), 1),
            });
        }
        flam::add(self.nnz() as u64);
        srda_kernels::sparse::csr_matvec_t(exec, self.view(), x, y);
        Ok(())
    }

    /// `y = Aᵀ·x` on the given executor. Executed as a deterministic block
    /// reduction (fixed block size shared with the dense kernel), so the
    /// result is identical for every backend and thread count.
    pub fn matvec_t_exec(&self, x: &[f64], exec: &Executor) -> Result<Vec<f64>> {
        if x.len() != self.rows {
            return Err(SparseError::ShapeMismatch {
                op: "matvec_t",
                lhs: self.shape(),
                rhs: (x.len(), 1),
            });
        }
        flam::add(self.nnz() as u64);
        let mut y = vec![0.0; self.cols];
        srda_kernels::sparse::csr_matvec_t(exec, self.view(), x, &mut y);
        Ok(y)
    }

    /// Dense `m × p` product `A·B` (used when projecting sparse data through
    /// a learned dense embedding; cost `O(nnz · p)`).
    pub fn matmul_dense(&self, b: &Mat) -> Result<Mat> {
        self.matmul_dense_exec(b, &Executor::serial())
    }

    /// Dense product `A·B` on the given executor (row-parallel).
    pub fn matmul_dense_exec(&self, b: &Mat, exec: &Executor) -> Result<Mat> {
        if self.cols != b.nrows() {
            return Err(SparseError::ShapeMismatch {
                op: "matmul_dense",
                lhs: self.shape(),
                rhs: b.shape(),
            });
        }
        let p = b.ncols();
        flam::add((self.nnz() * p) as u64);
        let mut out = Mat::zeros(self.rows, p);
        srda_kernels::sparse::csr_matmul_dense(
            exec,
            self.view(),
            b.as_slice(),
            p,
            out.as_mut_slice(),
        );
        Ok(out)
    }

    /// Extract the sub-matrix of the given rows (in order). `O(output nnz)`.
    pub fn select_rows(&self, idx: &[usize]) -> CsrMatrix {
        let mut indptr = Vec::with_capacity(idx.len() + 1);
        let mut indices = Vec::new();
        let mut values = Vec::new();
        indptr.push(0);
        for &i in idx {
            let span = self.indptr[i]..self.indptr[i + 1];
            indices.extend_from_slice(&self.indices[span.clone()]);
            values.extend_from_slice(&self.values[span]);
            indptr.push(indices.len());
        }
        CsrMatrix {
            rows: idx.len(),
            cols: self.cols,
            indptr,
            indices,
            values,
        }
    }

    /// Append a constant column (value `v`) — the paper's bias-absorption
    /// trick for sparse data: one extra non-zero per row instead of a dense
    /// centered matrix.
    pub fn append_constant_col(&self, v: f64) -> CsrMatrix {
        let mut indptr = Vec::with_capacity(self.rows + 1);
        let mut indices = Vec::with_capacity(self.nnz() + self.rows);
        let mut values = Vec::with_capacity(self.nnz() + self.rows);
        indptr.push(0);
        for i in 0..self.rows {
            let span = self.indptr[i]..self.indptr[i + 1];
            indices.extend_from_slice(&self.indices[span.clone()]);
            values.extend_from_slice(&self.values[span]);
            if v != 0.0 {
                indices.push(self.cols);
                values.push(v);
            }
            indptr.push(indices.len());
        }
        CsrMatrix {
            rows: self.rows,
            cols: self.cols + 1,
            indptr,
            indices,
            values,
        }
    }

    /// Transposed copy, still in CSR (i.e. CSR of `Aᵀ`). `O(nnz + cols)`.
    pub fn transpose(&self) -> CsrMatrix {
        // counting sort by column
        let mut counts = vec![0usize; self.cols + 1];
        for &c in &self.indices {
            counts[c + 1] += 1;
        }
        for j in 0..self.cols {
            counts[j + 1] += counts[j];
        }
        let indptr = counts.clone();
        let mut indices = vec![0usize; self.nnz()];
        let mut values = vec![0.0; self.nnz()];
        let mut next = counts;
        for i in 0..self.rows {
            for k in self.indptr[i]..self.indptr[i + 1] {
                let c = self.indices[k];
                let pos = next[c];
                next[c] += 1;
                indices[pos] = i;
                values[pos] = self.values[k];
            }
        }
        CsrMatrix {
            rows: self.cols,
            cols: self.rows,
            indptr,
            indices,
            values,
        }
    }

    /// Materialize as a dense matrix. Refuses (returns `None`) if the dense
    /// form would exceed `budget_bytes` — this guard is how the benchmark
    /// harness reproduces the paper's "LDA can not be applied as the size of
    /// training set increases due to the memory limit" entries.
    pub fn to_dense_bounded(&self, budget_bytes: usize) -> Option<Mat> {
        let need = self.rows.checked_mul(self.cols)?.checked_mul(8)?;
        if need > budget_bytes {
            return None;
        }
        let mut out = Mat::zeros(self.rows, self.cols);
        for i in 0..self.rows {
            let row = out.row_mut(i);
            for k in self.indptr[i]..self.indptr[i + 1] {
                row[self.indices[k]] = self.values[k];
            }
        }
        Some(out)
    }

    /// Materialize as a dense matrix with no budget check.
    pub fn to_dense(&self) -> Mat {
        self.to_dense_bounded(usize::MAX)
            .expect("unbounded to_dense cannot fail")
    }

    /// Normalize every row to unit L2 norm in place (zero rows untouched) —
    /// the preprocessing the paper applies to 20Newsgroups term-frequency
    /// vectors.
    pub fn normalize_rows_l2(&mut self) {
        for i in 0..self.rows {
            let span = self.indptr[i]..self.indptr[i + 1];
            let norm = self.values[span.clone()]
                .iter()
                .map(|v| v * v)
                .sum::<f64>()
                .sqrt();
            if norm > 0.0 {
                for v in &mut self.values[span] {
                    *v /= norm;
                }
            }
        }
    }

    /// Column means (`1/m · Σ rows`) without densifying.
    pub fn col_means(&self) -> Vec<f64> {
        let mut mu = vec![0.0; self.cols];
        for (k, &c) in self.indices.iter().enumerate() {
            mu[c] += self.values[k];
        }
        if self.rows > 0 {
            let inv = 1.0 / self.rows as f64;
            for v in &mut mu {
                *v *= inv;
            }
        }
        mu
    }

    /// Dense outer Gram matrix `A·Aᵀ` (`m × m`), computed by merging sorted
    /// row index lists — `O(m² · s)` with `s` the average row nnz, never
    /// densifying `A`. Returns `None` if the `m × m` output would exceed
    /// `budget_bytes` (the Tables IX/X memory guard). Prefer
    /// [`CsrMatrix::gram_t_dense_checked`], which reports the decline
    /// reason instead of swallowing it.
    pub fn gram_t_dense_bounded(&self, budget_bytes: usize) -> Option<Mat> {
        self.gram_t_dense_checked(budget_bytes).ok()
    }

    /// Like [`CsrMatrix::gram_t_dense_bounded`], but a decline carries the
    /// exact needed-vs-budget byte counts for fit-report surfacing.
    pub fn gram_t_dense_checked(
        &self,
        budget_bytes: usize,
    ) -> std::result::Result<Mat, GramBudgetExceeded> {
        self.gram_t_dense_checked_exec(budget_bytes, &Executor::serial())
    }

    /// Budgeted dense outer Gram on the given executor: the upper triangle
    /// of row dots is row-block-parallel under the threaded backend, with
    /// identical numerics on every backend.
    pub fn gram_t_dense_checked_exec(
        &self,
        budget_bytes: usize,
        exec: &Executor,
    ) -> std::result::Result<Mat, GramBudgetExceeded> {
        let need = self.rows as u128 * self.rows as u128 * 8;
        if need > budget_bytes as u128 {
            return Err(GramBudgetExceeded {
                needed_bytes: need,
                budget_bytes,
            });
        }
        flam::add((self.rows * self.nnz().max(1)) as u64 / 2);
        let mut g = Mat::zeros(self.rows, self.rows);
        srda_kernels::sparse::csr_gram_t(exec, self.view(), g.as_mut_slice());
        Ok(g)
    }

    /// Estimated memory footprint in bytes of the CSR arrays.
    pub fn memory_bytes(&self) -> usize {
        self.indptr.len() * std::mem::size_of::<usize>()
            + self.indices.len() * std::mem::size_of::<usize>()
            + self.values.len() * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooBuilder;

    fn sample() -> CsrMatrix {
        // [1 0 2]
        // [0 0 0]
        // [3 4 0]
        let mut b = CooBuilder::new(3, 3);
        b.push(0, 0, 1.0).unwrap();
        b.push(0, 2, 2.0).unwrap();
        b.push(2, 0, 3.0).unwrap();
        b.push(2, 1, 4.0).unwrap();
        b.build()
    }

    #[test]
    fn raw_parts_validation() {
        assert!(CsrMatrix::from_raw_parts(2, 2, vec![0, 1, 1], vec![0], vec![1.0]).is_ok());
        // bad indptr length
        assert!(CsrMatrix::from_raw_parts(2, 2, vec![0, 1], vec![0], vec![1.0]).is_err());
        // indptr not ending at nnz
        assert!(CsrMatrix::from_raw_parts(2, 2, vec![0, 1, 2], vec![0], vec![1.0]).is_err());
        // decreasing indptr
        assert!(CsrMatrix::from_raw_parts(2, 2, vec![0, 1, 0], vec![0], vec![1.0]).is_err());
        // column out of range
        assert!(CsrMatrix::from_raw_parts(1, 2, vec![0, 1], vec![5], vec![1.0]).is_err());
        // unsorted columns within a row
        assert!(CsrMatrix::from_raw_parts(1, 3, vec![0, 2], vec![2, 0], vec![1.0, 1.0]).is_err());
        // duplicate column within a row
        assert!(CsrMatrix::from_raw_parts(1, 3, vec![0, 2], vec![1, 1], vec![1.0, 1.0]).is_err());
    }

    #[test]
    fn matvec_matches_dense() {
        let a = sample();
        let d = a.to_dense();
        let x = [1.0, -1.0, 2.0];
        let ys = a.matvec(&x).unwrap();
        let yd = srda_linalg::ops::matvec(&d, &x).unwrap();
        assert_eq!(ys, yd);
    }

    #[test]
    fn matvec_t_matches_dense() {
        let a = sample();
        let d = a.to_dense();
        let x = [1.0, 2.0, -1.0];
        let ys = a.matvec_t(&x).unwrap();
        let yd = srda_linalg::ops::matvec_t(&d, &x).unwrap();
        assert_eq!(ys, yd);
    }

    #[test]
    fn matvec_shape_checks() {
        let a = sample();
        assert!(a.matvec(&[1.0]).is_err());
        assert!(a.matvec_t(&[1.0]).is_err());
    }

    #[test]
    fn matmul_dense_matches() {
        let a = sample();
        let b = Mat::from_fn(3, 2, |i, j| (i + j) as f64);
        let prod = a.matmul_dense(&b).unwrap();
        let expect = srda_linalg::ops::matmul(&a.to_dense(), &b).unwrap();
        assert!(prod.approx_eq(&expect, 1e-14));
        assert!(a.matmul_dense(&Mat::zeros(2, 2)).is_err());
    }

    #[test]
    fn get_and_row_entries() {
        let a = sample();
        assert_eq!(a.get(0, 0), 1.0);
        assert_eq!(a.get(0, 1), 0.0);
        assert_eq!(a.get(2, 1), 4.0);
        let entries: Vec<_> = a.row_entries(2).collect();
        assert_eq!(entries, vec![(0, 3.0), (1, 4.0)]);
        assert_eq!(a.row_entries(1).count(), 0);
    }

    #[test]
    fn stats() {
        let a = sample();
        assert_eq!(a.nnz(), 4);
        assert!((a.avg_row_nnz() - 4.0 / 3.0).abs() < 1e-15);
        assert!((a.density() - 4.0 / 9.0).abs() < 1e-15);
        assert_eq!(a.row_nnz(1), 0);
    }

    #[test]
    fn select_rows_subset() {
        let a = sample();
        let s = a.select_rows(&[2, 0]);
        assert_eq!(s.shape(), (2, 3));
        assert_eq!(s.get(0, 1), 4.0);
        assert_eq!(s.get(1, 2), 2.0);
        assert_eq!(s.nnz(), 4);
    }

    #[test]
    fn append_constant_col_adds_one_nnz_per_row() {
        let a = sample();
        let aug = a.append_constant_col(1.0);
        assert_eq!(aug.shape(), (3, 4));
        assert_eq!(aug.nnz(), a.nnz() + 3);
        for i in 0..3 {
            assert_eq!(aug.get(i, 3), 1.0);
        }
        // zero constant appends nothing
        let aug0 = a.append_constant_col(0.0);
        assert_eq!(aug0.nnz(), a.nnz());
        assert_eq!(aug0.ncols(), 4);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = sample();
        let t = a.transpose();
        assert_eq!(t.shape(), (3, 3));
        assert_eq!(t.get(0, 2), 3.0);
        assert_eq!(t.get(2, 0), 2.0);
        let tt = t.transpose();
        assert_eq!(tt, a);
        // transpose matches dense transpose
        assert!(t.to_dense().approx_eq(&a.to_dense().transpose(), 0.0));
    }

    #[test]
    fn dense_roundtrip() {
        let d = Mat::from_fn(4, 5, |i, j| {
            if (i + j) % 3 == 0 {
                (i * j) as f64
            } else {
                0.0
            }
        });
        let s = CsrMatrix::from_dense(&d, 0.0);
        assert!(s.to_dense().approx_eq(&d, 0.0));
    }

    #[test]
    fn gram_t_matches_dense_oracle() {
        let a = sample();
        let g = a.gram_t_dense_bounded(usize::MAX).unwrap();
        let expect = srda_linalg::ops::gram_t(&a.to_dense());
        assert!(g.approx_eq(&expect, 1e-14));
        // budget guard
        assert!(a.gram_t_dense_bounded(8).is_none());
    }

    #[test]
    fn gram_t_checked_reports_decline_reason() {
        let a = sample(); // 3x3 -> dense Gram needs 3*3*8 = 72 bytes
        let err = a.gram_t_dense_checked(8).unwrap_err();
        assert_eq!(err.needed_bytes, 72);
        assert_eq!(err.budget_bytes, 8);
        let msg = err.to_string();
        assert!(msg.contains("72 bytes") && msg.contains("8 bytes"), "{msg}");
        assert!(a.gram_t_dense_checked(72).is_ok());
    }

    #[test]
    fn exec_products_match_serial_bitwise() {
        // Large enough to straddle block boundaries; thread counts beyond
        // the row count must also agree exactly.
        let d = Mat::from_fn(130, 37, |i, j| {
            if (i * 13 + j * 7) % 3 == 0 {
                ((i * 5 + j) % 17) as f64 - 8.0
            } else {
                0.0
            }
        });
        let a = CsrMatrix::from_dense(&d, 0.0);
        let x: Vec<f64> = (0..37).map(|j| j as f64 * 0.5 - 9.0).collect();
        let xt: Vec<f64> = (0..130)
            .map(|i| if i % 4 == 0 { 0.0 } else { i as f64 * 0.01 })
            .collect();
        let b = Mat::from_fn(37, 6, |i, j| (i as f64 - j as f64) * 0.25);
        let serial = srda_kernels::Executor::serial();
        for &t in &[2usize, 4, 512] {
            let exec = srda_kernels::Executor::threaded(t);
            assert_eq!(
                a.matvec_exec(&x, &exec).unwrap(),
                a.matvec_exec(&x, &serial).unwrap()
            );
            assert_eq!(
                a.matvec_t_exec(&xt, &exec).unwrap(),
                a.matvec_t_exec(&xt, &serial).unwrap()
            );
            assert!(a
                .matmul_dense_exec(&b, &exec)
                .unwrap()
                .approx_eq(&a.matmul_dense_exec(&b, &serial).unwrap(), 0.0));
            assert!(a
                .gram_t_dense_checked_exec(usize::MAX, &exec)
                .unwrap()
                .approx_eq(
                    &a.gram_t_dense_checked_exec(usize::MAX, &serial).unwrap(),
                    0.0
                ));
        }
    }

    #[test]
    fn memory_guard_refuses_large_densification() {
        let a = sample();
        assert!(a.to_dense_bounded(8).is_none()); // 3*3*8 = 72 bytes needed
        assert!(a.to_dense_bounded(72).is_some());
    }

    #[test]
    fn row_normalization() {
        let mut a = sample();
        a.normalize_rows_l2();
        let n0 = (a.get(0, 0).powi(2) + a.get(0, 2).powi(2)).sqrt();
        assert!((n0 - 1.0).abs() < 1e-14);
        // empty row untouched
        assert_eq!(a.row_nnz(1), 0);
    }

    #[test]
    fn col_means_match_dense() {
        let a = sample();
        let mu = a.col_means();
        let dense_mu = srda_linalg::stats::col_means(&a.to_dense());
        assert_eq!(mu, dense_mu);
    }

    #[test]
    fn zeros_constructor() {
        let z = CsrMatrix::zeros(3, 4);
        assert_eq!(z.nnz(), 0);
        assert_eq!(z.matvec(&[1.0; 4]).unwrap(), vec![0.0; 3]);
    }

    #[cfg(feature = "serde")]
    #[test]
    fn serde_roundtrip() {
        let a = sample();
        let json = serde_json::to_string(&a).unwrap();
        let back: CsrMatrix = serde_json::from_str(&json).unwrap();
        assert_eq!(a, back);
    }
}
