//! Text interchange for labeled sparse datasets (LIBSVM convention).
//!
//! One sample per line: `label idx:val idx:val ...`, with 0-based feature
//! indices in strictly increasing order. Lines starting with `#` and blank
//! lines are ignored.

use crate::csr::CsrMatrix;
use crate::{CooBuilder, Result, SparseError};

/// A labeled sparse dataset as read from / written to the text format.
#[derive(Debug, Clone, PartialEq)]
pub struct LabeledSparse {
    /// The sample matrix (samples as rows).
    pub x: CsrMatrix,
    /// One class label per row.
    pub labels: Vec<usize>,
}

/// Parse the text format. `n_features` fixes the column count (indices must
/// be `< n_features`).
pub fn parse(text: &str, n_features: usize) -> Result<LabeledSparse> {
    let mut labels = Vec::new();
    let mut triplets: Vec<(usize, usize, f64)> = Vec::new();
    let mut row = 0usize;

    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let label_tok = parts.next().expect("non-empty line has a token");
        let label: usize = label_tok.parse().map_err(|_| SparseError::Parse {
            line: lineno + 1,
            message: format!("bad label {label_tok:?}"),
        })?;
        labels.push(label);

        let mut prev: Option<usize> = None;
        for tok in parts {
            let (idx_s, val_s) = tok.split_once(':').ok_or_else(|| SparseError::Parse {
                line: lineno + 1,
                message: format!("expected idx:val, got {tok:?}"),
            })?;
            let idx: usize = idx_s.parse().map_err(|_| SparseError::Parse {
                line: lineno + 1,
                message: format!("bad index {idx_s:?}"),
            })?;
            let val: f64 = val_s.parse().map_err(|_| SparseError::Parse {
                line: lineno + 1,
                message: format!("bad value {val_s:?}"),
            })?;
            if idx >= n_features {
                return Err(SparseError::Parse {
                    line: lineno + 1,
                    message: format!("index {idx} >= n_features {n_features}"),
                });
            }
            if let Some(p) = prev {
                if idx <= p {
                    return Err(SparseError::Parse {
                        line: lineno + 1,
                        message: format!("indices not strictly increasing at {idx}"),
                    });
                }
            }
            prev = Some(idx);
            triplets.push((row, idx, val));
        }
        row += 1;
    }

    let mut b = CooBuilder::with_capacity(row, n_features, triplets.len());
    for (r, c, v) in triplets {
        b.push(r, c, v)?;
    }
    Ok(LabeledSparse {
        x: b.build(),
        labels,
    })
}

/// Serialize to the text format.
pub fn write(data: &LabeledSparse) -> String {
    let mut out = String::new();
    for i in 0..data.x.nrows() {
        out.push_str(&data.labels[i].to_string());
        for (j, v) in data.x.row_entries(i) {
            out.push_str(&format!(" {j}:{v}"));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_basic() {
        let text = "0 0:1.5 3:2\n1 1:-0.5\n";
        let d = parse(text, 4).unwrap();
        assert_eq!(d.labels, vec![0, 1]);
        assert_eq!(d.x.shape(), (2, 4));
        assert_eq!(d.x.get(0, 3), 2.0);
        assert_eq!(d.x.get(1, 1), -0.5);
    }

    #[test]
    fn skips_comments_and_blanks() {
        let text = "# header\n\n0 0:1\n   \n1 1:2\n";
        let d = parse(text, 2).unwrap();
        assert_eq!(d.labels.len(), 2);
    }

    #[test]
    fn empty_rows_allowed() {
        let d = parse("2\n3 0:1\n", 1).unwrap();
        assert_eq!(d.labels, vec![2, 3]);
        assert_eq!(d.x.row_nnz(0), 0);
    }

    #[test]
    fn roundtrip() {
        let text = "0 0:1.5 3:2\n1 1:-0.5\n5\n";
        let d = parse(text, 4).unwrap();
        let again = parse(&write(&d), 4).unwrap();
        assert_eq!(d, again);
    }

    #[test]
    fn rejects_bad_label() {
        assert!(matches!(
            parse("x 0:1\n", 2),
            Err(SparseError::Parse { line: 1, .. })
        ));
    }

    #[test]
    fn rejects_bad_pair() {
        assert!(parse("0 0=1\n", 2).is_err());
        assert!(parse("0 0:abc\n", 2).is_err());
        assert!(parse("0 zz:1\n", 2).is_err());
    }

    #[test]
    fn rejects_out_of_range_index() {
        let err = parse("0 5:1\n", 3);
        assert!(err.is_err());
    }

    #[test]
    fn rejects_unsorted_indices() {
        assert!(parse("0 2:1 1:1\n", 4).is_err());
        assert!(parse("0 1:1 1:2\n", 4).is_err());
    }

    #[test]
    fn error_reports_correct_line() {
        let err = parse("0 0:1\n1 bad\n", 2).unwrap_err();
        match err {
            SparseError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }
}
