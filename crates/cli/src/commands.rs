//! The four subcommands. Each takes parsed args and writes its report to
//! the returned `String` (printing is `main`'s job — keeps them testable).

use crate::args::ParsedArgs;
use crate::model_file::{SavedModel, FORMAT_VERSION};
use crate::{CliError, Result};
use srda::{Srda, SrdaConfig, SrdaSolver};
use srda_eval::ConfusionMatrix;
use srda_sparse::io::LabeledSparse;
use std::path::Path;

fn load_data(path: &str, n_features: Option<usize>) -> Result<LabeledSparse> {
    let text = std::fs::read_to_string(path)?;
    // when --features is omitted, infer from the file
    let n = match n_features {
        Some(n) => n,
        None => infer_features(&text)?,
    };
    Ok(srda_sparse::io::parse(&text, n)?)
}

fn infer_features(text: &str) -> Result<usize> {
    let mut max_idx = 0usize;
    for line in text.lines() {
        for tok in line.split_whitespace().skip(1) {
            if let Some((idx, _)) = tok.split_once(':') {
                if let Ok(i) = idx.parse::<usize>() {
                    max_idx = max_idx.max(i + 1);
                }
            }
        }
    }
    if max_idx == 0 {
        return Err(CliError::new("could not infer --features from the data"));
    }
    Ok(max_idx)
}

/// `srda train`.
pub fn train(args: &ParsedArgs) -> Result<String> {
    args.ensure_only(&["data", "features", "model", "alpha", "solver", "iters", "threads"])?;
    let data_path = args.required("data")?;
    let model_path = args.required("model")?.to_string();
    let n_features = args.optional("features").map(|_| args.parse_required("features")).transpose()?;
    let alpha: f64 = args.parse_or("alpha", 1.0)?;
    let iters: usize = args.parse_or("iters", 15)?;
    // --threads N picks the execution backend for the hot kernels;
    // omitted, it defers to SRDA_THREADS (srda::ExecPolicy::from_env)
    let exec = match args.optional("threads") {
        None => srda::ExecPolicy::from_env(),
        Some(_) => {
            let n: usize = args.parse_required("threads")?;
            if n == 0 {
                return Err(CliError::new("--threads must be >= 1"));
            }
            srda::ExecPolicy::threaded(n)
        }
    };
    let solver = match args.optional("solver").unwrap_or("lsqr") {
        "ne" => SrdaSolver::NormalEquations,
        "lsqr" => SrdaSolver::Lsqr {
            max_iter: iters,
            tol: 0.0,
        },
        other => return Err(CliError::new(format!("unknown --solver {other:?}"))),
    };

    let data = load_data(data_path, n_features)?;
    let n_classes = data
        .labels
        .iter()
        .max()
        .map(|&m| m + 1)
        .ok_or_else(|| CliError::new("empty data file"))?;

    let start = std::time::Instant::now();
    let model = Srda::new(SrdaConfig {
        alpha,
        solver,
        exec,
        ..SrdaConfig::default()
    })
    .fit_sparse(&data.x, &data.labels)?;
    let secs = start.elapsed().as_secs_f64();

    // centroids in embedded space, for data-free prediction later
    let z = model.embedding().transform_sparse(&data.x)?;
    let (centroids, _) = srda_linalg::stats::class_means(&z, &data.labels, n_classes)
        .map_err(srda::SrdaError::from)?;

    let saved = SavedModel {
        version: FORMAT_VERSION,
        n_classes,
        alpha,
        embedding: model.embedding().clone(),
        centroids,
    };
    saved.save(Path::new(&model_path))?;

    let mut out = format!(
        "trained on {} samples x {} features ({} classes) in {:.3}s\n\
         embedding: {} -> {} dims; model written to {}",
        data.x.nrows(),
        data.x.ncols(),
        n_classes,
        secs,
        data.x.ncols(),
        saved.embedding.n_components(),
        model_path
    );
    // surface the fit's robustness ledger: a degraded fit (jittered
    // ridge, LSQR fallback, stagnation) must be visible, not silent
    let report = model.fit_report();
    if !report.clean() {
        for w in &report.warnings {
            out.push_str(&format!("\nwarning: {w}"));
        }
    }
    Ok(out)
}

/// `srda eval`.
pub fn eval(args: &ParsedArgs) -> Result<String> {
    args.ensure_only(&["data", "features", "model"])?;
    let model = SavedModel::load(Path::new(args.required("model")?))?;
    let data = load_data(args.required("data")?, Some(model.embedding.n_features()))?;
    let z = model.embedding.transform_sparse(&data.x)?;
    let pred = model.predict_embedded(&z);
    let cm = ConfusionMatrix::from_predictions(&pred, &data.labels, model.n_classes);
    let mut out = format!(
        "samples: {}\nerror rate: {:.2}%\naccuracy: {:.2}%\nmacro F1: {:.3}\n",
        data.x.nrows(),
        cm.error_rate() * 100.0,
        cm.accuracy() * 100.0,
        cm.macro_f1()
    );
    if let Some((t, p, n)) = cm.worst_confusion() {
        out.push_str(&format!("worst confusion: true {t} -> predicted {p} ({n}x)\n"));
    }
    Ok(out)
}

/// `srda transform`.
pub fn transform(args: &ParsedArgs) -> Result<String> {
    args.ensure_only(&["data", "features", "model", "out"])?;
    let model = SavedModel::load(Path::new(args.required("model")?))?;
    let data = load_data(args.required("data")?, Some(model.embedding.n_features()))?;
    let z = model.embedding.transform_sparse(&data.x)?;

    let mut csv = String::new();
    for i in 0..z.nrows() {
        let row: Vec<String> = z.row(i).iter().map(|v| format!("{v}")).collect();
        csv.push_str(&row.join(","));
        csv.push('\n');
    }
    match args.optional("out") {
        Some(path) => {
            std::fs::write(path, &csv)?;
            Ok(format!(
                "embedded {} samples into {} dims -> {path}",
                z.nrows(),
                z.ncols()
            ))
        }
        None => Ok(csv),
    }
}

/// `srda generate`.
pub fn generate(args: &ParsedArgs) -> Result<String> {
    args.ensure_only(&["dataset", "scale", "seed", "out"])?;
    let name = args.required("dataset")?;
    let scale: f64 = args.parse_or("scale", 0.1)?;
    let seed: u64 = args.parse_or("seed", 42)?;
    let out = args.required("out")?.to_string();

    let labeled = match name {
        "news" => {
            let d = srda_data::newsgroups_like(scale, seed);
            LabeledSparse {
                x: d.x,
                labels: d.labels,
            }
        }
        "pie" | "isolet" | "mnist" => {
            let d = match name {
                "pie" => srda_data::pie_like(scale, seed),
                "isolet" => srda_data::isolet_like(scale, seed),
                _ => srda_data::mnist_like(scale, seed),
            };
            LabeledSparse {
                x: srda_sparse::CsrMatrix::from_dense(&d.x, 0.0),
                labels: d.labels,
            }
        }
        other => {
            return Err(CliError::new(format!(
                "unknown --dataset {other:?} (pie|isolet|mnist|news)"
            )))
        }
    };
    let text = srda_sparse::io::write(&labeled);
    std::fs::write(&out, text)?;
    Ok(format!(
        "wrote {} samples x {} features to {out}",
        labeled.x.nrows(),
        labeled.x.ncols()
    ))
}

/// `srda tune`: cross-validated grid search over α.
pub fn tune(args: &ParsedArgs) -> Result<String> {
    args.ensure_only(&["data", "features", "folds", "iters", "grid", "seed"])?;
    let n_features = args
        .optional("features")
        .map(|_| args.parse_required("features"))
        .transpose()?;
    let data = load_data(args.required("data")?, n_features)?;
    let folds: usize = args.parse_or("folds", 5)?;
    let iters: usize = args.parse_or("iters", 15)?;
    let seed: u64 = args.parse_or("seed", 0)?;
    let grid: Vec<f64> = match args.optional("grid") {
        None => vec![0.01, 0.1, 1.0, 10.0, 100.0],
        Some(s) => s
            .split(',')
            .map(|t| {
                t.trim()
                    .parse()
                    .map_err(|_| CliError::new(format!("bad --grid entry {t:?}")))
            })
            .collect::<Result<Vec<f64>>>()?,
    };
    if grid.is_empty() {
        return Err(CliError::new("--grid must contain at least one alpha"));
    }
    let (alpha, err) = srda_eval::select_alpha_sparse(
        &data.x,
        &data.labels,
        &grid,
        iters,
        folds,
        seed,
    );
    Ok(format!(
        "grid {grid:?} over {folds}-fold CV (LSQR k = {iters})\n\
         best alpha = {alpha} with CV error {:.2}%",
        err * 100.0
    ))
}

/// Dispatch a parsed command line.
pub fn run(args: &ParsedArgs) -> Result<String> {
    match args.command.as_str() {
        "train" => train(args),
        "eval" => eval(args),
        "transform" => transform(args),
        "generate" => generate(args),
        "tune" => tune(args),
        other => Err(CliError::new(format!(
            "unknown command {other:?}\n{}",
            crate::args::usage()
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("srda_cli_{tag}"));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn sv(parts: &[&str]) -> crate::args::ParsedArgs {
        parse(&parts.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn full_workflow_generate_train_eval_transform() {
        let dir = tmpdir("workflow");
        let data = dir.join("data.svm");
        let model = dir.join("model.json");
        let emb = dir.join("z.csv");

        let msg = run(&sv(&[
            "generate",
            "--dataset",
            "news",
            "--scale",
            "0.02",
            "--seed",
            "3",
            "--out",
            data.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(msg.contains("wrote"));

        let msg = run(&sv(&[
            "train",
            "--data",
            data.to_str().unwrap(),
            "--model",
            model.to_str().unwrap(),
            "--solver",
            "lsqr",
            "--iters",
            "10",
        ]))
        .unwrap();
        assert!(msg.contains("trained"), "{msg}");

        let msg = run(&sv(&[
            "eval",
            "--data",
            data.to_str().unwrap(),
            "--model",
            model.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(msg.contains("error rate"), "{msg}");

        let msg = run(&sv(&[
            "transform",
            "--data",
            data.to_str().unwrap(),
            "--model",
            model.to_str().unwrap(),
            "--out",
            emb.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(msg.contains("embedded"), "{msg}");
        let csv = std::fs::read_to_string(&emb).unwrap();
        // 20 balanced classes -> row count is a positive multiple of 20
        let rows = csv.lines().count();
        assert!(rows > 0 && rows % 20 == 0, "rows = {rows}");
        // c − 1 = 19 embedded dimensions per row
        assert_eq!(csv.lines().next().unwrap().split(',').count(), 19);

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn train_with_normal_equations_on_dense_generated() {
        let dir = tmpdir("ne");
        let data = dir.join("mnist.svm");
        let model = dir.join("m.json");
        run(&sv(&[
            "generate",
            "--dataset",
            "mnist",
            "--scale",
            "0.03",
            "--out",
            data.to_str().unwrap(),
        ]))
        .unwrap();
        let msg = run(&sv(&[
            "train",
            "--data",
            data.to_str().unwrap(),
            "--model",
            model.to_str().unwrap(),
            "--solver",
            "ne",
            "--alpha",
            "0.5",
        ]))
        .unwrap();
        assert!(msg.contains("784 -> 9 dims"), "{msg}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn train_threads_flag_matches_serial_and_rejects_zero() {
        let dir = tmpdir("threads");
        let data = dir.join("data.svm");
        run(&sv(&[
            "generate",
            "--dataset",
            "news",
            "--scale",
            "0.02",
            "--seed",
            "7",
            "--out",
            data.to_str().unwrap(),
        ]))
        .unwrap();
        let model_for = |tag: &str, threads: &str| {
            let model = dir.join(format!("m_{tag}.json"));
            run(&sv(&[
                "train",
                "--data",
                data.to_str().unwrap(),
                "--model",
                model.to_str().unwrap(),
                "--solver",
                "ne",
                "--threads",
                threads,
            ]))
            .unwrap();
            std::fs::read_to_string(&model).unwrap()
        };
        // the threaded backend must be bitwise-identical to serial, so the
        // serialized models (full float formatting) must match exactly
        assert_eq!(model_for("serial", "1"), model_for("par", "3"));

        let err = run(&sv(&[
            "train",
            "--data",
            data.to_str().unwrap(),
            "--model",
            dir.join("m0.json").to_str().unwrap(),
            "--threads",
            "0",
        ]))
        .unwrap_err();
        assert!(err.message.contains("--threads"), "{}", err.message);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unknown_command_and_flags() {
        assert!(run(&sv(&["frobnicate"])).is_err());
        let dir = tmpdir("badflag");
        let out = dir.join("x.svm");
        assert!(run(&sv(&[
            "generate",
            "--dataset",
            "news",
            "--bogus",
            "1",
            "--out",
            out.to_str().unwrap()
        ]))
        .is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unknown_dataset_and_solver() {
        let dir = tmpdir("unknowns");
        let out = dir.join("x.svm");
        assert!(run(&sv(&[
            "generate",
            "--dataset",
            "cifar",
            "--out",
            out.to_str().unwrap()
        ]))
        .is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn infer_features_from_file() {
        assert_eq!(infer_features("0 3:1 7:2\n1 5:1\n").unwrap(), 8);
        assert!(infer_features("0\n1\n").is_err());
    }

    #[test]
    fn tune_picks_an_alpha_from_the_grid() {
        let dir = tmpdir("tune");
        let data = dir.join("t.svm");
        run(&sv(&[
            "generate",
            "--dataset",
            "news",
            "--scale",
            "0.02",
            "--out",
            data.to_str().unwrap(),
        ]))
        .unwrap();
        let msg = run(&sv(&[
            "tune",
            "--data",
            data.to_str().unwrap(),
            "--folds",
            "3",
            "--iters",
            "8",
            "--grid",
            "0.5,2.0",
        ]))
        .unwrap();
        assert!(msg.contains("best alpha"), "{msg}");
        assert!(msg.contains("0.5") || msg.contains("2"), "{msg}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tune_rejects_bad_grid() {
        let dir = tmpdir("tunebad");
        let data = dir.join("t.svm");
        run(&sv(&[
            "generate",
            "--dataset",
            "news",
            "--scale",
            "0.02",
            "--out",
            data.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(run(&sv(&[
            "tune",
            "--data",
            data.to_str().unwrap(),
            "--grid",
            "1.0,zebra",
        ]))
        .is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
