//! The four subcommands. Each takes parsed args and writes its report to
//! the returned `String` (printing is `main`'s job — keeps them testable).

use crate::args::ParsedArgs;
use crate::model_file::{SavedModel, FORMAT_VERSION};
use crate::{CliError, Result, EXIT_INTERRUPTED, EXIT_SUSPECT};
use srda::{
    CheckpointPolicy, FitCheckpoint, FitOutcome, QuarantineSummary, Recorder, RunBudget,
    RunGovernor, Srda, SrdaConfig, SrdaSolver,
};
use srda_data::sanitize::{sanitize_sparse, NonFinitePolicy, SanitizeConfig, SanitizeReport};
use srda_eval::ConfusionMatrix;
use srda_sparse::io::LabeledSparse;
use std::path::{Path, PathBuf};
use std::time::Duration;

fn load_data(path: &str, n_features: Option<usize>) -> Result<LabeledSparse> {
    let text = std::fs::read_to_string(path)?;
    // when --features is omitted, infer from the file
    let n = match n_features {
        Some(n) => n,
        None => infer_features(&text)?,
    };
    Ok(srda_sparse::io::parse(&text, n)?)
}

fn infer_features(text: &str) -> Result<usize> {
    let mut max_idx = 0usize;
    for line in text.lines() {
        for tok in line.split_whitespace().skip(1) {
            if let Some((idx, _)) = tok.split_once(':') {
                if let Ok(i) = idx.parse::<usize>() {
                    max_idx = max_idx.max(i + 1);
                }
            }
        }
    }
    if max_idx == 0 {
        return Err(CliError::new("could not infer --features from the data"));
    }
    Ok(max_idx)
}

/// Parse `--threads` into an execution policy (defers to `SRDA_THREADS`
/// when omitted).
fn exec_policy(args: &ParsedArgs) -> Result<srda::ExecPolicy> {
    match args.optional("threads") {
        None => Ok(srda::ExecPolicy::from_env()),
        Some(_) => {
            let n: usize = args.parse_required("threads")?;
            if n == 0 {
                return Err(CliError::new("--threads must be >= 1"));
            }
            Ok(srda::ExecPolicy::threaded(n))
        }
    }
}

/// Parse the governor (`--time-budget SECS`, `--iter-budget N`) and
/// checkpoint (`--checkpoint-dir DIR`, `--checkpoint-every N`) flags
/// shared by `train` and `resume`.
fn governance(args: &ParsedArgs) -> Result<(Option<RunGovernor>, Option<CheckpointPolicy>)> {
    let max_wall = match args.optional("time-budget") {
        None => None,
        Some(_) => {
            let secs: f64 = args.parse_required("time-budget")?;
            if !(secs > 0.0) {
                return Err(CliError::new("--time-budget must be > 0 seconds"));
            }
            Some(Duration::from_secs_f64(secs))
        }
    };
    let iter_cap = args
        .optional("iter-budget")
        .map(|_| args.parse_required::<usize>("iter-budget"))
        .transpose()?;
    let governor = if max_wall.is_some() || iter_cap.is_some() {
        Some(RunGovernor::with_budget(RunBudget {
            deadline: None,
            max_wall,
            iter_cap,
        }))
    } else {
        None
    };
    let checkpoint = args
        .optional("checkpoint-dir")
        .map(|d| -> Result<CheckpointPolicy> {
            Ok(CheckpointPolicy {
                dir: PathBuf::from(d),
                every: args.parse_or("checkpoint-every", 25)?,
            })
        })
        .transpose()?;
    if checkpoint.is_none() && args.optional("checkpoint-every").is_some() {
        return Err(CliError::new("--checkpoint-every needs --checkpoint-dir"));
    }
    Ok((governor, checkpoint))
}

/// Observability settings shared by `train` and `resume`
/// (`--trace`, `--trace-format`, `--metrics-out`).
struct ObsSettings {
    /// Recorder the fit writes into; enabled when any obs flag (or
    /// `SRDA_TRACE`) asks for it, the inert handle otherwise.
    recorder: Recorder,
    /// Print the trace to stderr after the fit.
    trace: bool,
    /// `--trace-format flame` folds the span log into flamegraph stacks;
    /// the default (`json`) prints the srda-obs-v1 report.
    flame: bool,
    /// Write the srda-obs-v1 JSON report here.
    metrics_out: Option<PathBuf>,
}

fn obs_settings(args: &ParsedArgs) -> Result<ObsSettings> {
    let trace: bool = args.parse_or("trace", false)?;
    let metrics_out = args.optional("metrics-out").map(PathBuf::from);
    let flame = match args.optional("trace-format") {
        None | Some("json") => false,
        Some("flame") => true,
        Some(other) => {
            return Err(CliError::new(format!(
                "unknown --trace-format {other:?} (json|flame)"
            )))
        }
    };
    let recorder = if trace || metrics_out.is_some() {
        Recorder::new_enabled()
    } else {
        Recorder::from_env()
    };
    Ok(ObsSettings {
        recorder,
        trace,
        flame,
        metrics_out,
    })
}

/// Emit whatever the recorder collected: the `--metrics-out` file and/or
/// the stderr trace. Returns a one-line summary for the command output
/// (empty when nothing was recorded).
fn emit_observability(obs: &ObsSettings) -> Result<String> {
    if !obs.recorder.is_enabled() {
        return Ok(String::new());
    }
    let report = obs.recorder.snapshot();
    let mut summary = String::new();
    if let Some(cov) = report.span_coverage("fit") {
        summary.push_str(&format!(
            "\ntrace: {} spans, {} solver trace(s); children cover {:.1}% of fit wall time",
            report.spans.len(),
            report.traces.len(),
            cov * 100.0
        ));
    }
    if let Some(path) = &obs.metrics_out {
        std::fs::write(path, report.to_json())?;
        summary.push_str(&format!("\nmetrics written to {}", path.display()));
    }
    if obs.trace {
        if obs.flame {
            eprint!("{}", report.to_flame());
        } else {
            eprint!("{}", report.to_json());
        }
    }
    Ok(summary)
}

/// Run the `--sanitize` quarantine pass, returning the (possibly
/// repaired) data plus its summary and human-readable notes.
fn sanitize_pass(
    mode: &str,
    data: LabeledSparse,
) -> Result<(LabeledSparse, Option<QuarantineSummary>, Vec<String>)> {
    let non_finite = match mode {
        "off" => return Ok((data, None, Vec::new())),
        "reject" => NonFinitePolicy::Reject,
        "drop" => NonFinitePolicy::QuarantineRow,
        "impute" => NonFinitePolicy::Impute,
        other => {
            return Err(CliError::new(format!(
                "unknown --sanitize {other:?} (off|reject|drop|impute)"
            )))
        }
    };
    let cfg = SanitizeConfig {
        non_finite,
        drop_duplicate_rows: true,
        min_class_size: 2,
        drop_constant_features: true,
    };
    let s = sanitize_sparse(&data.x, &data.labels, &cfg)
        .map_err(|e| CliError::new(format!("sanitize: {e}")))?;
    let notes = sanitize_notes(&s.report);
    let summary = QuarantineSummary {
        non_finite_rows: s.report.non_finite_rows.len(),
        imputed_cells: s.report.imputed_cells,
        duplicate_rows: s.report.duplicate_rows.len(),
        small_class_rows: s.report.small_class_rows.len(),
        dropped_classes: s.report.dropped_classes.len(),
        constant_features: s.report.constant_features.len(),
    };
    Ok((
        LabeledSparse {
            x: s.x,
            labels: s.labels,
        },
        Some(summary),
        notes,
    ))
}

/// Human-readable lines for everything a quarantine pass did.
fn sanitize_notes(r: &SanitizeReport) -> Vec<String> {
    let mut notes = Vec::new();
    let mut count = |n: usize, what: &str| {
        if n > 0 {
            notes.push(format!("quarantine: {n} {what}"));
        }
    };
    count(r.non_finite_rows.len(), "row(s) dropped for NaN/Inf cells");
    count(r.imputed_cells, "non-finite cell(s) imputed");
    count(r.duplicate_rows.len(), "duplicate row(s) dropped");
    count(
        r.small_class_rows.len(),
        "row(s) dropped from under-sized classes",
    );
    count(r.dropped_classes.len(), "class(es) dropped");
    count(r.constant_features.len(), "constant feature(s) dropped");
    notes.extend(r.warnings.iter().map(|w| format!("quarantine: {w}")));
    notes
}

/// `srda train`.
pub fn train(args: &ParsedArgs) -> Result<String> {
    args.ensure_only(&[
        "data",
        "features",
        "model",
        "alpha",
        "solver",
        "iters",
        "threads",
        "time-budget",
        "iter-budget",
        "checkpoint-dir",
        "checkpoint-every",
        "strict",
        "sanitize",
        "certify",
        "trace",
        "trace-format",
        "metrics-out",
    ])?;
    let data_path = args.required("data")?;
    let model_path = args.required("model")?.to_string();
    let n_features = args
        .optional("features")
        .map(|_| args.parse_required("features"))
        .transpose()?;
    let alpha: f64 = args.parse_or("alpha", 1.0)?;
    let iters: usize = args.parse_or("iters", 15)?;
    let strict: bool = args.parse_or("strict", false)?;
    let certify: bool = args.parse_or("certify", false)?;
    let exec = exec_policy(args)?;
    let (governor, checkpoint) = governance(args)?;
    let obs = obs_settings(args)?;
    let solver = match args.optional("solver").unwrap_or("lsqr") {
        "ne" => SrdaSolver::NormalEquations,
        "lsqr" => SrdaSolver::Lsqr {
            max_iter: iters,
            tol: 0.0,
        },
        other => return Err(CliError::new(format!("unknown --solver {other:?}"))),
    };

    let data = load_data(data_path, n_features)?;
    let (data, quarantine, notes) =
        sanitize_pass(args.optional("sanitize").unwrap_or("off"), data)?;
    for note in &notes {
        eprintln!("warning: {note}");
    }

    let config = SrdaConfig {
        alpha,
        solver,
        exec,
        governor,
        checkpoint,
        recorder: obs.recorder,
        ..SrdaConfig::default()
    };
    fit_and_save(config, data, &model_path, quarantine, notes, strict, certify, &obs)
}

/// `srda resume`: continue an interrupted LSQR fit from its checkpoint.
/// The solver configuration (α, iteration cap, tolerance) is read back
/// from the checkpoint's fingerprint, so only the data and destination
/// need to be re-specified.
pub fn resume(args: &ParsedArgs) -> Result<String> {
    args.ensure_only(&[
        "data",
        "features",
        "model",
        "checkpoint",
        "threads",
        "time-budget",
        "iter-budget",
        "checkpoint-dir",
        "checkpoint-every",
        "strict",
        "trace",
        "trace-format",
        "metrics-out",
    ])?;
    let data_path = args.required("data")?;
    let model_path = args.required("model")?.to_string();
    let ckpt_path = PathBuf::from(args.required("checkpoint")?);
    let n_features = args
        .optional("features")
        .map(|_| args.parse_required("features"))
        .transpose()?;
    let strict: bool = args.parse_or("strict", false)?;
    let exec = exec_policy(args)?;
    let (governor, mut checkpoint) = governance(args)?;
    let obs = obs_settings(args)?;

    let ckpt =
        FitCheckpoint::read(&ckpt_path).map_err(|e| CliError::new(format!("checkpoint: {e}")))?;
    let fp = &ckpt.fingerprint;
    // keep refreshing the same checkpoint file by default, so a resumed
    // run that is itself interrupted stays resumable
    if checkpoint.is_none() {
        checkpoint = ckpt_path.parent().map(|dir| CheckpointPolicy {
            dir: dir.to_path_buf(),
            every: 25,
        });
    }

    let data = load_data(data_path, n_features)?;
    let config = SrdaConfig {
        alpha: fp.alpha(),
        solver: SrdaSolver::Lsqr {
            max_iter: fp.max_iter as usize,
            tol: fp.tol(),
        },
        exec,
        governor,
        checkpoint,
        resume_from: Some(ckpt_path),
        recorder: obs.recorder,
        ..SrdaConfig::default()
    };
    fit_and_save(config, data, &model_path, None, Vec::new(), strict, false, &obs)
}

/// Shared tail of `train` and `resume`: fit, handle interrupts, save the
/// model, and render/emit the robustness ledger.
#[allow(clippy::too_many_arguments)] // private plumbing for two call sites
fn fit_and_save(
    config: SrdaConfig,
    data: LabeledSparse,
    model_path: &str,
    quarantine: Option<QuarantineSummary>,
    mut warned: Vec<String>,
    strict: bool,
    certify: bool,
    obs: &ObsSettings,
) -> Result<String> {
    let n_classes = data
        .labels
        .iter()
        .max()
        .map(|&m| m + 1)
        .ok_or_else(|| CliError::new("empty data file"))?;
    let alpha = config.alpha;

    let start = std::time::Instant::now();
    let outcome = Srda::new(config).fit_sparse_outcome(&data.x, &data.labels)?;
    let secs = start.elapsed().as_secs_f64();

    // observability comes out even when the fit was interrupted: a
    // budget-stopped run's partial telemetry is exactly what you want
    // when diagnosing why the budget ran out
    let obs_summary = emit_observability(obs)?;

    let mut model = match outcome {
        FitOutcome::Complete(m) => m,
        FitOutcome::Interrupted(i) => {
            for w in &i.report.warnings {
                eprintln!("warning: {w}");
            }
            let mut msg = format!(
                "fit interrupted ({}) after {}/{} responses, {} iterations, {:.3}s",
                i.reason, i.responses_completed, i.total_responses, i.iterations, secs
            );
            match &i.checkpoint {
                Some(p) => msg.push_str(&format!(
                    "\nresumable checkpoint written to {}\ncontinue with: srda resume --checkpoint {} --data <FILE> --model <OUT>",
                    p.display(),
                    p.display()
                )),
                None => msg.push_str("\nno checkpoint written (use --checkpoint-dir to make interrupted runs resumable)"),
            }
            return Err(CliError::with_code(msg, EXIT_INTERRUPTED));
        }
    };
    if let Some(q) = quarantine {
        model.attach_quarantine(q);
    }

    // centroids in embedded space, for data-free prediction later
    let z = model.embedding().transform_sparse(&data.x)?;
    let (centroids, _) = srda_linalg::stats::class_means(&z, &data.labels, n_classes)
        .map_err(srda::SrdaError::from)?;

    let saved = SavedModel {
        version: FORMAT_VERSION,
        n_classes,
        alpha,
        embedding: model.embedding().clone(),
        centroids,
    };
    saved.save(Path::new(model_path))?;

    let out = format!(
        "trained on {} samples x {} features ({} classes) in {:.3}s\n\
         embedding: {} -> {} dims; model written to {}{}",
        data.x.nrows(),
        data.x.ncols(),
        n_classes,
        secs,
        data.x.ncols(),
        saved.embedding.n_components(),
        model_path,
        obs_summary
    );
    // surface the fit's robustness ledger on stderr: a degraded fit
    // (jittered ridge, LSQR fallback, quarantined data) must be
    // visible, not silent — and fatal under --strict
    let report = model.fit_report();
    if !report.clean() {
        for w in &report.warnings {
            eprintln!("warning: {w}");
            warned.push(w.clone());
        }
        for r in &report.recoveries {
            eprintln!("warning: recovery taken: {r:?}");
            warned.push(format!("recovery taken: {r:?}"));
        }
        if strict {
            return Err(CliError::new(format!(
                "--strict: fit completed but is not clean ({} warning(s); model written to {})",
                warned.len().max(1),
                model_path
            )));
        }
    }
    // --certify: print the per-response solution certificates and fail
    // with EXIT_SUSPECT when any solution missed its forward-error bound
    // even after refinement and ladder escalation
    if certify {
        let certs = &report.certificates;
        for (j, c) in certs.iter().enumerate() {
            eprintln!(
                "certify: response {j}: backward error {:.3e}, cond estimate {:.3e}, \
                 {} refinement step(s), verdict {:?}",
                c.backward_error, c.cond_estimate, c.refinement_steps, c.certified
            );
        }
        let suspect = certs.iter().filter(|c| c.is_suspect()).count();
        match report.worst_backward_error {
            Some(worst) => eprintln!(
                "certify: {} response(s), worst backward error {worst:.3e}, {suspect} suspect",
                certs.len()
            ),
            None => eprintln!("certify: fit recorded no solution certificates"),
        }
        if suspect > 0 {
            return Err(CliError::with_code(
                format!(
                    "--certify: {suspect} of {} solution(s) are Suspect \
                     (worst backward error {:.3e}); model written to {model_path}",
                    certs.len(),
                    report.worst_backward_error.unwrap_or(f64::NAN)
                ),
                EXIT_SUSPECT,
            ));
        }
    }
    Ok(out)
}

/// `srda eval`.
pub fn eval(args: &ParsedArgs) -> Result<String> {
    args.ensure_only(&["data", "features", "model"])?;
    let model = SavedModel::load(Path::new(args.required("model")?))?;
    let data = load_data(args.required("data")?, Some(model.embedding.n_features()))?;
    let z = model.embedding.transform_sparse(&data.x)?;
    let pred = model.predict_embedded(&z);
    let cm = ConfusionMatrix::from_predictions(&pred, &data.labels, model.n_classes);
    let mut out = format!(
        "samples: {}\nerror rate: {:.2}%\naccuracy: {:.2}%\nmacro F1: {:.3}\n",
        data.x.nrows(),
        cm.error_rate() * 100.0,
        cm.accuracy() * 100.0,
        cm.macro_f1()
    );
    if let Some((t, p, n)) = cm.worst_confusion() {
        out.push_str(&format!(
            "worst confusion: true {t} -> predicted {p} ({n}x)\n"
        ));
    }
    Ok(out)
}

/// `srda transform`.
pub fn transform(args: &ParsedArgs) -> Result<String> {
    args.ensure_only(&["data", "features", "model", "out"])?;
    let model = SavedModel::load(Path::new(args.required("model")?))?;
    let data = load_data(args.required("data")?, Some(model.embedding.n_features()))?;
    let z = model.embedding.transform_sparse(&data.x)?;

    let mut csv = String::new();
    for i in 0..z.nrows() {
        let row: Vec<String> = z.row(i).iter().map(|v| format!("{v}")).collect();
        csv.push_str(&row.join(","));
        csv.push('\n');
    }
    match args.optional("out") {
        Some(path) => {
            std::fs::write(path, &csv)?;
            Ok(format!(
                "embedded {} samples into {} dims -> {path}",
                z.nrows(),
                z.ncols()
            ))
        }
        None => Ok(csv),
    }
}

/// `srda generate`.
pub fn generate(args: &ParsedArgs) -> Result<String> {
    args.ensure_only(&["dataset", "scale", "seed", "out"])?;
    let name = args.required("dataset")?;
    let scale: f64 = args.parse_or("scale", 0.1)?;
    let seed: u64 = args.parse_or("seed", 42)?;
    let out = args.required("out")?.to_string();

    let labeled = match name {
        "news" => {
            let d = srda_data::newsgroups_like(scale, seed);
            LabeledSparse {
                x: d.x,
                labels: d.labels,
            }
        }
        "pie" | "isolet" | "mnist" => {
            let d = match name {
                "pie" => srda_data::pie_like(scale, seed),
                "isolet" => srda_data::isolet_like(scale, seed),
                _ => srda_data::mnist_like(scale, seed),
            };
            LabeledSparse {
                x: srda_sparse::CsrMatrix::from_dense(&d.x, 0.0),
                labels: d.labels,
            }
        }
        other => {
            return Err(CliError::new(format!(
                "unknown --dataset {other:?} (pie|isolet|mnist|news)"
            )))
        }
    };
    let text = srda_sparse::io::write(&labeled);
    std::fs::write(&out, text)?;
    Ok(format!(
        "wrote {} samples x {} features to {out}",
        labeled.x.nrows(),
        labeled.x.ncols()
    ))
}

/// `srda tune`: cross-validated grid search over α.
pub fn tune(args: &ParsedArgs) -> Result<String> {
    args.ensure_only(&["data", "features", "folds", "iters", "grid", "seed"])?;
    let n_features = args
        .optional("features")
        .map(|_| args.parse_required("features"))
        .transpose()?;
    let data = load_data(args.required("data")?, n_features)?;
    let folds: usize = args.parse_or("folds", 5)?;
    let iters: usize = args.parse_or("iters", 15)?;
    let seed: u64 = args.parse_or("seed", 0)?;
    let grid: Vec<f64> = match args.optional("grid") {
        None => vec![0.01, 0.1, 1.0, 10.0, 100.0],
        Some(s) => s
            .split(',')
            .map(|t| {
                t.trim()
                    .parse()
                    .map_err(|_| CliError::new(format!("bad --grid entry {t:?}")))
            })
            .collect::<Result<Vec<f64>>>()?,
    };
    if grid.is_empty() {
        return Err(CliError::new("--grid must contain at least one alpha"));
    }
    let (alpha, err) =
        srda_eval::select_alpha_sparse(&data.x, &data.labels, &grid, iters, folds, seed);
    Ok(format!(
        "grid {grid:?} over {folds}-fold CV (LSQR k = {iters})\n\
         best alpha = {alpha} with CV error {:.2}%",
        err * 100.0
    ))
}

/// Dispatch a parsed command line.
pub fn run(args: &ParsedArgs) -> Result<String> {
    match args.command.as_str() {
        "train" => train(args),
        "resume" => resume(args),
        "eval" => eval(args),
        "transform" => transform(args),
        "generate" => generate(args),
        "tune" => tune(args),
        other => Err(CliError::new(format!(
            "unknown command {other:?}\n{}",
            crate::args::usage()
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("srda_cli_{tag}"));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn sv(parts: &[&str]) -> crate::args::ParsedArgs {
        parse(&parts.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn full_workflow_generate_train_eval_transform() {
        let dir = tmpdir("workflow");
        let data = dir.join("data.svm");
        let model = dir.join("model.json");
        let emb = dir.join("z.csv");

        let msg = run(&sv(&[
            "generate",
            "--dataset",
            "news",
            "--scale",
            "0.02",
            "--seed",
            "3",
            "--out",
            data.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(msg.contains("wrote"));

        let msg = run(&sv(&[
            "train",
            "--data",
            data.to_str().unwrap(),
            "--model",
            model.to_str().unwrap(),
            "--solver",
            "lsqr",
            "--iters",
            "10",
        ]))
        .unwrap();
        assert!(msg.contains("trained"), "{msg}");

        let msg = run(&sv(&[
            "eval",
            "--data",
            data.to_str().unwrap(),
            "--model",
            model.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(msg.contains("error rate"), "{msg}");

        let msg = run(&sv(&[
            "transform",
            "--data",
            data.to_str().unwrap(),
            "--model",
            model.to_str().unwrap(),
            "--out",
            emb.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(msg.contains("embedded"), "{msg}");
        let csv = std::fs::read_to_string(&emb).unwrap();
        // 20 balanced classes -> row count is a positive multiple of 20
        let rows = csv.lines().count();
        assert!(rows > 0 && rows % 20 == 0, "rows = {rows}");
        // c − 1 = 19 embedded dimensions per row
        assert_eq!(csv.lines().next().unwrap().split(',').count(), 19);

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn train_with_normal_equations_on_dense_generated() {
        let dir = tmpdir("ne");
        let data = dir.join("mnist.svm");
        let model = dir.join("m.json");
        run(&sv(&[
            "generate",
            "--dataset",
            "mnist",
            "--scale",
            "0.03",
            "--out",
            data.to_str().unwrap(),
        ]))
        .unwrap();
        let msg = run(&sv(&[
            "train",
            "--data",
            data.to_str().unwrap(),
            "--model",
            model.to_str().unwrap(),
            "--solver",
            "ne",
            "--alpha",
            "0.5",
        ]))
        .unwrap();
        assert!(msg.contains("784 -> 9 dims"), "{msg}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn train_threads_flag_matches_serial_and_rejects_zero() {
        let dir = tmpdir("threads");
        let data = dir.join("data.svm");
        run(&sv(&[
            "generate",
            "--dataset",
            "news",
            "--scale",
            "0.02",
            "--seed",
            "7",
            "--out",
            data.to_str().unwrap(),
        ]))
        .unwrap();
        let model_for = |tag: &str, threads: &str| {
            let model = dir.join(format!("m_{tag}.json"));
            run(&sv(&[
                "train",
                "--data",
                data.to_str().unwrap(),
                "--model",
                model.to_str().unwrap(),
                "--solver",
                "ne",
                "--threads",
                threads,
            ]))
            .unwrap();
            std::fs::read_to_string(&model).unwrap()
        };
        // the threaded backend must be bitwise-identical to serial, so the
        // serialized models (full float formatting) must match exactly
        assert_eq!(model_for("serial", "1"), model_for("par", "3"));

        let err = run(&sv(&[
            "train",
            "--data",
            data.to_str().unwrap(),
            "--model",
            dir.join("m0.json").to_str().unwrap(),
            "--threads",
            "0",
        ]))
        .unwrap_err();
        assert!(err.message.contains("--threads"), "{}", err.message);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unknown_command_and_flags() {
        assert!(run(&sv(&["frobnicate"])).is_err());
        let dir = tmpdir("badflag");
        let out = dir.join("x.svm");
        assert!(run(&sv(&[
            "generate",
            "--dataset",
            "news",
            "--bogus",
            "1",
            "--out",
            out.to_str().unwrap()
        ]))
        .is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unknown_dataset_and_solver() {
        let dir = tmpdir("unknowns");
        let out = dir.join("x.svm");
        assert!(run(&sv(&[
            "generate",
            "--dataset",
            "cifar",
            "--out",
            out.to_str().unwrap()
        ]))
        .is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn infer_features_from_file() {
        assert_eq!(infer_features("0 3:1 7:2\n1 5:1\n").unwrap(), 8);
        assert!(infer_features("0\n1\n").is_err());
    }

    #[test]
    fn interrupted_train_exits_3_and_resume_matches_baseline() {
        let dir = tmpdir("resume");
        let data = dir.join("data.svm");
        run(&sv(&[
            "generate",
            "--dataset",
            "news",
            "--scale",
            "0.02",
            "--seed",
            "11",
            "--out",
            data.to_str().unwrap(),
        ]))
        .unwrap();

        // uninterrupted baseline
        let baseline = dir.join("baseline.json");
        run(&sv(&[
            "train",
            "--data",
            data.to_str().unwrap(),
            "--model",
            baseline.to_str().unwrap(),
            "--solver",
            "lsqr",
            "--iters",
            "8",
        ]))
        .unwrap();

        // budget-limited run: must stop with the resume exit code and
        // leave a checkpoint behind
        let model = dir.join("resumed.json");
        let ckpt_dir = dir.join("ckpt");
        let err = run(&sv(&[
            "train",
            "--data",
            data.to_str().unwrap(),
            "--model",
            model.to_str().unwrap(),
            "--solver",
            "lsqr",
            "--iters",
            "8",
            "--iter-budget",
            "20",
            "--checkpoint-dir",
            ckpt_dir.to_str().unwrap(),
        ]))
        .unwrap_err();
        assert_eq!(err.code, EXIT_INTERRUPTED, "{}", err.message);
        assert!(err.message.contains("srda resume"), "{}", err.message);
        let ckpt = ckpt_dir.join(srda::FIT_CHECKPOINT_FILE);
        assert!(ckpt.exists());
        assert!(!model.exists(), "an interrupted run must not write a model");

        // resume to completion: the serialized models (full float
        // formatting) must match the uninterrupted baseline exactly
        let msg = run(&sv(&[
            "resume",
            "--data",
            data.to_str().unwrap(),
            "--checkpoint",
            ckpt.to_str().unwrap(),
            "--model",
            model.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(msg.contains("trained"), "{msg}");
        assert_eq!(
            std::fs::read_to_string(&baseline).unwrap(),
            std::fs::read_to_string(&model).unwrap(),
            "resumed model must be bitwise identical to the baseline"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sanitize_and_strict_flags() {
        let dir = tmpdir("sanitize");
        let data = dir.join("dirty.svm");
        // row 2 duplicates row 1; class 2 is a singleton; feature 3 is
        // constant over surviving rows
        std::fs::write(
            &data,
            "0 0:1 3:5\n0 0:1 3:5\n0 0:2 3:5\n1 1:1 3:5\n1 1:2 3:5\n2 2:9 3:5\n",
        )
        .unwrap();
        let model = dir.join("m.json");

        // strict + quarantined data → the model is written but the run
        // fails loudly
        let err = run(&sv(&[
            "train",
            "--data",
            data.to_str().unwrap(),
            "--model",
            model.to_str().unwrap(),
            "--solver",
            "ne",
            "--sanitize",
            "drop",
            "--strict",
            "true",
        ]))
        .unwrap_err();
        assert!(err.message.contains("--strict"), "{}", err.message);
        assert!(model.exists());

        // same run without --strict succeeds
        let msg = run(&sv(&[
            "train",
            "--data",
            data.to_str().unwrap(),
            "--model",
            model.to_str().unwrap(),
            "--solver",
            "ne",
            "--sanitize",
            "drop",
        ]))
        .unwrap();
        // 6 rows → dup + singleton-class row quarantined → 4 survive
        assert!(msg.contains("trained on 4 samples"), "{msg}");

        // bad mode is a parse-style failure
        assert!(run(&sv(&[
            "train",
            "--data",
            data.to_str().unwrap(),
            "--model",
            model.to_str().unwrap(),
            "--sanitize",
            "zebra",
        ]))
        .is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn train_trace_and_metrics_out() {
        let dir = tmpdir("obs");
        let data = dir.join("data.svm");
        run(&sv(&[
            "generate",
            "--dataset",
            "news",
            "--scale",
            "0.02",
            "--seed",
            "5",
            "--out",
            data.to_str().unwrap(),
        ]))
        .unwrap();
        let model = dir.join("m.json");
        let metrics = dir.join("metrics.json");
        let msg = run(&sv(&[
            "train",
            "--data",
            data.to_str().unwrap(),
            "--model",
            model.to_str().unwrap(),
            "--solver",
            "lsqr",
            "--iters",
            "6",
            "--metrics-out",
            metrics.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(msg.contains("metrics written"), "{msg}");
        assert!(msg.contains("of fit wall time"), "{msg}");
        let json = std::fs::read_to_string(&metrics).unwrap();
        assert!(json.contains("\"schema\": \"srda-obs-v1\""));
        assert!(json.contains("fit/response[0]/lsqr"), "span tree missing");
        assert!(json.contains("\"solver\": \"lsqr\""), "telemetry missing");
        // 6 LSQR iterations per response, recorded per iteration
        assert!(json.contains("\"iter\": 6"), "iteration records missing");

        // a traced model must be bitwise identical to an untraced one
        let plain = dir.join("plain.json");
        run(&sv(&[
            "train",
            "--data",
            data.to_str().unwrap(),
            "--model",
            plain.to_str().unwrap(),
            "--solver",
            "lsqr",
            "--iters",
            "6",
        ]))
        .unwrap();
        assert_eq!(
            std::fs::read_to_string(&model).unwrap(),
            std::fs::read_to_string(&plain).unwrap(),
            "tracing must not perturb the fit"
        );

        // bad format is rejected
        assert!(run(&sv(&[
            "train",
            "--data",
            data.to_str().unwrap(),
            "--model",
            model.to_str().unwrap(),
            "--trace",
            "--trace-format",
            "zebra",
        ]))
        .is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn certify_passes_direct_path_and_flags_budget_limited_lsqr() {
        let dir = tmpdir("certify");
        let data = dir.join("data.svm");
        run(&sv(&[
            "generate",
            "--dataset",
            "news",
            "--scale",
            "0.02",
            "--seed",
            "9",
            "--out",
            data.to_str().unwrap(),
        ]))
        .unwrap();
        let model = dir.join("m.json");

        // well-conditioned Gram, direct solver: every certificate is
        // Certified, so --certify changes nothing about the exit
        let msg = run(&sv(&[
            "train",
            "--data",
            data.to_str().unwrap(),
            "--model",
            model.to_str().unwrap(),
            "--solver",
            "ne",
            "--certify",
        ]))
        .unwrap();
        assert!(msg.contains("trained"), "{msg}");

        // one LSQR iteration cannot drive the normal-equation residual
        // below the certification threshold: the certificates come back
        // Suspect and --certify turns that into exit 4 (the model file
        // is still written)
        let err = run(&sv(&[
            "train",
            "--data",
            data.to_str().unwrap(),
            "--model",
            model.to_str().unwrap(),
            "--solver",
            "lsqr",
            "--iters",
            "1",
            "--certify",
        ]))
        .unwrap_err();
        assert_eq!(err.code, EXIT_SUSPECT, "{}", err.message);
        assert!(err.message.contains("Suspect"), "{}", err.message);
        assert!(err.message.contains("model written"), "{}", err.message);
        assert!(model.exists());

        // without --certify the same budget-limited run succeeds: the
        // certificates still ride in the report, they just don't gate
        run(&sv(&[
            "train",
            "--data",
            data.to_str().unwrap(),
            "--model",
            model.to_str().unwrap(),
            "--solver",
            "lsqr",
            "--iters",
            "1",
        ]))
        .unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn governance_flag_validation() {
        let p = |extra: &[&str]| {
            let mut v = vec!["train", "--data", "x.svm", "--model", "m.json"];
            v.extend_from_slice(extra);
            sv(&v)
        };
        assert!(train(&p(&["--time-budget", "0"])).is_err());
        assert!(train(&p(&["--time-budget", "-1"])).is_err());
        assert!(train(&p(&["--checkpoint-every", "5"])).is_err()); // needs dir
        assert!(train(&p(&["--strict", "zebra"])).is_err());
    }

    #[test]
    fn tune_picks_an_alpha_from_the_grid() {
        let dir = tmpdir("tune");
        let data = dir.join("t.svm");
        run(&sv(&[
            "generate",
            "--dataset",
            "news",
            "--scale",
            "0.02",
            "--out",
            data.to_str().unwrap(),
        ]))
        .unwrap();
        let msg = run(&sv(&[
            "tune",
            "--data",
            data.to_str().unwrap(),
            "--folds",
            "3",
            "--iters",
            "8",
            "--grid",
            "0.5,2.0",
        ]))
        .unwrap();
        assert!(msg.contains("best alpha"), "{msg}");
        assert!(msg.contains("0.5") || msg.contains("2"), "{msg}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tune_rejects_bad_grid() {
        let dir = tmpdir("tunebad");
        let data = dir.join("t.svm");
        run(&sv(&[
            "generate",
            "--dataset",
            "news",
            "--scale",
            "0.02",
            "--out",
            data.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(run(&sv(&[
            "tune",
            "--data",
            data.to_str().unwrap(),
            "--grid",
            "1.0,zebra",
        ]))
        .is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
