//! On-disk model format: the trained embedding plus the metadata needed to
//! evaluate it, as JSON.

use crate::Result;
use srda::Embedding;
use std::path::Path;

/// A persisted SRDA model.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SavedModel {
    /// Format version for forward compatibility.
    pub version: u32,
    /// Number of classes at training time.
    pub n_classes: usize,
    /// Ridge parameter used.
    pub alpha: f64,
    /// The affine embedding.
    pub embedding: Embedding,
    /// Per-class centroids in embedded space (for nearest-centroid
    /// prediction without the training data), `n_classes × n_components`.
    pub centroids: srda_linalg::Mat,
}

/// Current format version.
pub const FORMAT_VERSION: u32 = 1;

impl SavedModel {
    /// Serialize to a JSON file atomically: the bytes go to a temporary
    /// file in the same directory, which is then renamed over the
    /// target. A crash or full disk mid-write can never leave a
    /// truncated model where a good one was expected.
    pub fn save(&self, path: &Path) -> Result<()> {
        let json = serde_json::to_vec_pretty(self)?;
        let file_name = path.file_name().ok_or_else(|| {
            crate::CliError::new(format!("invalid model path: {}", path.display()))
        })?;
        let dir = match path.parent() {
            Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
            _ => std::path::PathBuf::from("."),
        };
        let mut tmp_name = file_name.to_os_string();
        tmp_name.push(format!(".tmp.{}", std::process::id()));
        let tmp = dir.join(tmp_name);
        if let Err(e) = std::fs::write(&tmp, &json).and_then(|_| std::fs::rename(&tmp, path)) {
            std::fs::remove_file(&tmp).ok();
            return Err(e.into());
        }
        Ok(())
    }

    /// Load from a JSON file, validating version, shapes, and
    /// finiteness — a bit-rotted or hand-edited model file is rejected
    /// here rather than producing NaN predictions downstream.
    pub fn load(path: &Path) -> Result<Self> {
        let bytes = std::fs::read(path)?;
        let model: SavedModel = serde_json::from_slice(&bytes)?;
        if model.version != FORMAT_VERSION {
            return Err(crate::CliError::new(format!(
                "unsupported model version {} (expected {FORMAT_VERSION})",
                model.version
            )));
        }
        model.validate()?;
        Ok(model)
    }

    /// Structural and numerical sanity checks shared by [`Self::load`].
    fn validate(&self) -> Result<()> {
        let bad = |what: &str| Err(crate::CliError::new(format!("corrupt model file: {what}")));
        if !self.alpha.is_finite() || self.alpha < 0.0 {
            return bad("alpha is not finite and non-negative");
        }
        if self.centroids.nrows() != self.n_classes {
            return bad("centroid count does not match n_classes");
        }
        if self.centroids.ncols() != self.embedding.n_components() {
            return bad("centroid dimension does not match the embedding");
        }
        if !self
            .embedding
            .weights()
            .as_slice()
            .iter()
            .all(|v| v.is_finite())
        {
            return bad("embedding weights contain non-finite values");
        }
        if !self.embedding.bias().iter().all(|v| v.is_finite()) {
            return bad("embedding bias contains non-finite values");
        }
        if !self.centroids.as_slice().iter().all(|v| v.is_finite()) {
            return bad("centroids contain non-finite values");
        }
        Ok(())
    }

    /// Predict labels for embedded rows via nearest centroid.
    pub fn predict_embedded(&self, z: &srda_linalg::Mat) -> Vec<usize> {
        (0..z.nrows())
            .map(|i| {
                let mut best = (f64::INFINITY, 0usize);
                for k in 0..self.centroids.nrows() {
                    let d = srda_linalg::vector::dist2_sq(z.row(i), self.centroids.row(k));
                    if d < best.0 {
                        best = (d, k);
                    }
                }
                best.1
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srda_linalg::Mat;

    fn toy_model() -> SavedModel {
        SavedModel {
            version: FORMAT_VERSION,
            n_classes: 2,
            alpha: 1.0,
            embedding: Embedding::new(Mat::identity(2), vec![0.0, 0.0]).unwrap(),
            centroids: Mat::from_rows(&[vec![0.0, 0.0], vec![5.0, 5.0]]).unwrap(),
        }
    }

    #[test]
    fn save_load_roundtrip() {
        let dir = std::env::temp_dir().join("srda_cli_model_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.json");
        let m = toy_model();
        m.save(&path).unwrap();
        let back = SavedModel::load(&path).unwrap();
        assert_eq!(m, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn version_check() {
        let dir = std::env::temp_dir().join("srda_cli_model_test2");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.json");
        let mut m = toy_model();
        m.version = 99;
        std::fs::write(&path, serde_json::to_vec(&m).unwrap()).unwrap();
        assert!(SavedModel::load(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn nearest_centroid_prediction() {
        let m = toy_model();
        let z = Mat::from_rows(&[vec![0.4, 0.4], vec![4.6, 4.9]]).unwrap();
        assert_eq!(m.predict_embedded(&z), vec![0, 1]);
    }

    #[test]
    fn missing_file_errors() {
        assert!(SavedModel::load(Path::new("/nonexistent/model.json")).is_err());
    }

    #[test]
    fn save_leaves_no_temp_file_and_overwrites_atomically() {
        let dir = std::env::temp_dir().join("srda_cli_model_test3");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.json");
        let m = toy_model();
        m.save(&path).unwrap();
        m.save(&path).unwrap(); // overwrite in place
        assert_eq!(SavedModel::load(&path).unwrap(), m);
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(
            leftovers.is_empty(),
            "temp files left behind: {leftovers:?}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_rejects_mismatched_centroid_shape() {
        let dir = std::env::temp_dir().join("srda_cli_model_test4");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.json");
        let mut m = toy_model();
        m.n_classes = 3; // but only 2 centroid rows
        std::fs::write(&path, serde_json::to_vec(&m).unwrap()).unwrap();
        let err = SavedModel::load(&path).unwrap_err();
        assert!(err.message.contains("centroid count"), "{}", err.message);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_rejects_non_finite_values() {
        let dir = std::env::temp_dir().join("srda_cli_model_test5");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.json");
        // serde_json cannot emit NaN, so build the corrupt file textually:
        // 1e999 overflows to infinity on parse
        let json = serde_json::to_string(&toy_model())
            .unwrap()
            .replace("\"alpha\":1.0", "\"alpha\":1e999");
        assert!(json.contains("1e999"), "fixture lost its corruption");
        std::fs::write(&path, json).unwrap();
        let err = SavedModel::load(&path).unwrap_err();
        assert!(err.message.contains("alpha"), "{}", err.message);
        std::fs::remove_file(&path).ok();
    }
}
