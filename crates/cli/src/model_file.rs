//! On-disk model format: the trained embedding plus the metadata needed to
//! evaluate it, as JSON.

use crate::Result;
use srda::Embedding;
use std::path::Path;

/// A persisted SRDA model.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SavedModel {
    /// Format version for forward compatibility.
    pub version: u32,
    /// Number of classes at training time.
    pub n_classes: usize,
    /// Ridge parameter used.
    pub alpha: f64,
    /// The affine embedding.
    pub embedding: Embedding,
    /// Per-class centroids in embedded space (for nearest-centroid
    /// prediction without the training data), `n_classes × n_components`.
    pub centroids: srda_linalg::Mat,
}

/// Current format version.
pub const FORMAT_VERSION: u32 = 1;

impl SavedModel {
    /// Serialize to a JSON file.
    pub fn save(&self, path: &Path) -> Result<()> {
        let json = serde_json::to_vec_pretty(self)?;
        std::fs::write(path, json)?;
        Ok(())
    }

    /// Load from a JSON file.
    pub fn load(path: &Path) -> Result<Self> {
        let bytes = std::fs::read(path)?;
        let model: SavedModel = serde_json::from_slice(&bytes)?;
        if model.version != FORMAT_VERSION {
            return Err(crate::CliError::new(format!(
                "unsupported model version {} (expected {FORMAT_VERSION})",
                model.version
            )));
        }
        Ok(model)
    }

    /// Predict labels for embedded rows via nearest centroid.
    pub fn predict_embedded(&self, z: &srda_linalg::Mat) -> Vec<usize> {
        (0..z.nrows())
            .map(|i| {
                let mut best = (f64::INFINITY, 0usize);
                for k in 0..self.centroids.nrows() {
                    let d = srda_linalg::vector::dist2_sq(z.row(i), self.centroids.row(k));
                    if d < best.0 {
                        best = (d, k);
                    }
                }
                best.1
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srda_linalg::Mat;

    fn toy_model() -> SavedModel {
        SavedModel {
            version: FORMAT_VERSION,
            n_classes: 2,
            alpha: 1.0,
            embedding: Embedding::new(Mat::identity(2), vec![0.0, 0.0]).unwrap(),
            centroids: Mat::from_rows(&[vec![0.0, 0.0], vec![5.0, 5.0]]).unwrap(),
        }
    }

    #[test]
    fn save_load_roundtrip() {
        let dir = std::env::temp_dir().join("srda_cli_model_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.json");
        let m = toy_model();
        m.save(&path).unwrap();
        let back = SavedModel::load(&path).unwrap();
        assert_eq!(m, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn version_check() {
        let dir = std::env::temp_dir().join("srda_cli_model_test2");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.json");
        let mut m = toy_model();
        m.version = 99;
        std::fs::write(&path, serde_json::to_vec(&m).unwrap()).unwrap();
        assert!(SavedModel::load(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn nearest_centroid_prediction() {
        let m = toy_model();
        let z = Mat::from_rows(&[vec![0.4, 0.4], vec![4.6, 4.9]]).unwrap();
        assert_eq!(m.predict_embedded(&z), vec![0, 1]);
    }

    #[test]
    fn missing_file_errors() {
        assert!(SavedModel::load(Path::new("/nonexistent/model.json")).is_err());
    }
}
