//! # srda-cli
//!
//! Library backing the `srda` command-line tool: argument parsing,
//! model persistence, and the four subcommands (`train`, `eval`,
//! `transform`, `generate`). Kept as a library so every piece is unit
//! testable; `main.rs` is a thin shell.
//!
//! ```text
//! srda train    --data train.svm --features 26214 --model model.json \
//!               [--alpha 1.0] [--solver ne|lsqr] [--iters 15]
//! srda eval     --data test.svm --model model.json
//! srda transform --data x.svm --model model.json [--out embedded.csv]
//! srda generate --dataset pie|isolet|mnist|news --scale 0.1 --seed 42 \
//!               --out data.svm
//! ```
//!
//! Data files use the LIBSVM convention (`label idx:val ...`, 0-based
//! indices) via [`srda_sparse::io`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod commands;
pub mod model_file;

/// Exit code for ordinary command failures.
pub const EXIT_FAILURE: i32 = 1;
/// Exit code for argument-parse errors.
pub const EXIT_USAGE: i32 = 2;
/// Exit code for a budget-interrupted fit: not a failure — the partial
/// state was checkpointed (when `--checkpoint-dir` was given) and the
/// run can be continued with `srda resume`.
pub const EXIT_INTERRUPTED: i32 = 3;
/// Exit code for a `--certify` run whose fit produced at least one
/// `Suspect` solution certificate: the model file is still written, but
/// a solution failed its forward-error bound even after iterative
/// refinement and ladder escalation.
pub const EXIT_SUSPECT: i32 = 4;

/// CLI error type: a message destined for stderr plus an exit code.
#[derive(Debug)]
pub struct CliError {
    /// Message printed to stderr.
    pub message: String,
    /// Process exit code (`EXIT_FAILURE` unless stated otherwise).
    pub code: i32,
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for CliError {}

impl CliError {
    /// Build from anything printable, with the generic failure code.
    pub fn new(message: impl Into<String>) -> Self {
        CliError {
            message: message.into(),
            code: EXIT_FAILURE,
        }
    }

    /// Build with an explicit exit code.
    pub fn with_code(message: impl Into<String>, code: i32) -> Self {
        CliError {
            message: message.into(),
            code,
        }
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::new(format!("io error: {e}"))
    }
}

impl From<serde_json::Error> for CliError {
    fn from(e: serde_json::Error) -> Self {
        CliError::new(format!("model file error: {e}"))
    }
}

impl From<srda::SrdaError> for CliError {
    fn from(e: srda::SrdaError) -> Self {
        CliError::new(format!("training error: {e}"))
    }
}

impl From<srda_sparse::SparseError> for CliError {
    fn from(e: srda_sparse::SparseError) -> Self {
        CliError::new(format!("data error: {e}"))
    }
}

/// Result alias for CLI operations.
pub type Result<T> = std::result::Result<T, CliError>;
