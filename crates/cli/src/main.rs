//! The `srda` binary: parse, dispatch, print.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match srda_cli::args::parse(&args) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(srda_cli::EXIT_USAGE);
        }
    };
    match srda_cli::commands::run(&parsed) {
        Ok(report) => println!("{report}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(e.code);
        }
    }
}
