//! Hand-rolled `--flag value` argument parsing (no external CLI crate is
//! on the approved dependency list, and the grammar is tiny).

use crate::{CliError, Result};
use std::collections::BTreeMap;

/// Parsed command line: a subcommand plus `--key value` options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedArgs {
    /// The subcommand (first positional argument).
    pub command: String,
    options: BTreeMap<String, String>,
}

/// Flags that may appear without a value (stored as `"true"`); everything
/// else keeps the strict `--key value` grammar.
const BOOLEAN_FLAGS: &[&str] = &["trace", "certify"];

/// Parse `args` (excluding the program name).
pub fn parse(args: &[String]) -> Result<ParsedArgs> {
    let mut it = args.iter().peekable();
    let command = it.next().ok_or_else(|| CliError::new(usage()))?.to_string();
    if command == "--help" || command == "-h" || command == "help" {
        return Err(CliError::new(usage()));
    }
    let mut options = BTreeMap::new();
    while let Some(flag) = it.next() {
        let key = flag
            .strip_prefix("--")
            .ok_or_else(|| CliError::new(format!("expected --flag, got {flag:?}\n{}", usage())))?;
        // (explicit match: `Option::is_none_or` postdates the 1.75 MSRV)
        let next_is_flag = match it.peek() {
            None => true,
            Some(next) => next.starts_with("--"),
        };
        let value = if BOOLEAN_FLAGS.contains(&key) && next_is_flag {
            "true".to_string()
        } else {
            it.next()
                .ok_or_else(|| CliError::new(format!("flag --{key} needs a value")))?
                .to_string()
        };
        if options.insert(key.to_string(), value).is_some() {
            return Err(CliError::new(format!("duplicate flag --{key}")));
        }
    }
    Ok(ParsedArgs { command, options })
}

impl ParsedArgs {
    /// Required string option.
    pub fn required(&self, key: &str) -> Result<&str> {
        self.options
            .get(key)
            .map(|s| s.as_str())
            .ok_or_else(|| CliError::new(format!("missing required flag --{key}")))
    }

    /// Optional string option.
    pub fn optional(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(|s| s.as_str())
    }

    /// Optional typed option with default.
    pub fn parse_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T> {
        match self.options.get(key) {
            None => Ok(default),
            Some(s) => s
                .parse()
                .map_err(|_| CliError::new(format!("bad value for --{key}: {s:?}"))),
        }
    }

    /// Required typed option.
    pub fn parse_required<T: std::str::FromStr>(&self, key: &str) -> Result<T> {
        let s = self.required(key)?;
        s.parse()
            .map_err(|_| CliError::new(format!("bad value for --{key}: {s:?}")))
    }

    /// Reject unknown flags (call after reading everything you accept).
    pub fn ensure_only(&self, allowed: &[&str]) -> Result<()> {
        for key in self.options.keys() {
            if !allowed.contains(&key.as_str()) {
                return Err(CliError::new(format!(
                    "unknown flag --{key} for command {:?}",
                    self.command
                )));
            }
        }
        Ok(())
    }
}

/// The usage banner.
pub fn usage() -> String {
    "srda — Spectral Regression Discriminant Analysis (ICDE 2008 reproduction)

USAGE:
  srda train     --data FILE --features N --model OUT.json
                 [--alpha 1.0] [--solver ne|lsqr] [--iters 15]
                 [--threads N]   (default: SRDA_THREADS, else serial)
                 [--time-budget SECS] [--iter-budget N]
                 [--checkpoint-dir DIR] [--checkpoint-every 25]
                 [--sanitize off|reject|drop|impute] [--strict true]
                 [--trace] [--trace-format json|flame] [--certify]
                 [--metrics-out FILE.json]
  srda resume    --data FILE --checkpoint FILE.ckpt --model OUT.json
                 [--threads N] [--time-budget SECS] [--iter-budget N]
                 [--trace] [--trace-format json|flame]
                 [--metrics-out FILE.json]
  srda eval      --data FILE --model MODEL.json
  srda transform --data FILE --model MODEL.json [--out FILE.csv]
  srda generate  --dataset pie|isolet|mnist|news --out FILE
                 [--scale 0.1] [--seed 42]
  srda tune      --data FILE [--grid 0.01,0.1,1,10,100]
                 [--folds 5] [--iters 15] [--seed 0]

Budgets: when --time-budget or --iter-budget runs out mid-fit, the run
stops with exit code 3; with --checkpoint-dir set, a resumable
checkpoint (srda-fit.ckpt) is written, and `srda resume` continues it
to a bitwise-identical model. --sanitize quarantines degenerate input
(NaN/Inf cells, duplicate rows, under-sized classes, constant
features); --strict true fails the run when the fit ledger is not
clean.

Certification: --certify prints the fit's per-response solution
certificates to stderr (backward error, condition estimate,
refinement steps, verdict) and fails the run (exit 4) when any
solution is Suspect — i.e. it failed its forward-error bound even
after iterative refinement and ladder escalation.

Observability: --trace prints the fit's span tree / telemetry to
stderr (--trace-format json is the srda-obs-v1 report, flame is
folded stacks for flamegraph.pl); --metrics-out FILE writes the
srda-obs-v1 JSON report (spans, counters, gauges, histograms,
per-iteration solver traces) regardless of --trace. Tracing never
perturbs the fit: traced and untraced runs are bitwise identical.

Data files use the LIBSVM text format with 0-based feature indices:
  <label> <idx>:<val> <idx>:<val> ...
"
    .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_command_and_flags() {
        let p = parse(&sv(&["train", "--data", "x.svm", "--alpha", "0.5"])).unwrap();
        assert_eq!(p.command, "train");
        assert_eq!(p.required("data").unwrap(), "x.svm");
        assert_eq!(p.parse_or("alpha", 1.0).unwrap(), 0.5);
        assert_eq!(p.parse_or("iters", 15usize).unwrap(), 15);
    }

    #[test]
    fn missing_command_is_usage() {
        assert!(parse(&[]).is_err());
    }

    #[test]
    fn help_prints_usage() {
        let err = parse(&sv(&["--help"])).unwrap_err();
        assert!(err.message.contains("USAGE"));
    }

    #[test]
    fn rejects_bare_values() {
        assert!(parse(&sv(&["train", "oops"])).is_err());
    }

    #[test]
    fn boolean_flag_without_value() {
        // bare --trace mid-args and at the end both read as "true"
        let p = parse(&sv(&["train", "--trace", "--data", "x.svm"])).unwrap();
        assert_eq!(p.optional("trace"), Some("true"));
        assert_eq!(p.required("data").unwrap(), "x.svm");
        let p = parse(&sv(&["train", "--data", "x.svm", "--trace"])).unwrap();
        assert!(p.parse_or("trace", false).unwrap());
        // an explicit value still works
        let p = parse(&sv(&["train", "--trace", "false"])).unwrap();
        assert!(!p.parse_or("trace", true).unwrap());
    }

    #[test]
    fn rejects_missing_value() {
        assert!(parse(&sv(&["train", "--data"])).is_err());
    }

    #[test]
    fn rejects_duplicates() {
        assert!(parse(&sv(&["train", "--a", "1", "--a", "2"])).is_err());
    }

    #[test]
    fn required_and_typed_errors() {
        let p = parse(&sv(&["eval", "--alpha", "zebra"])).unwrap();
        assert!(p.required("data").is_err());
        assert!(p.parse_or("alpha", 1.0f64).is_err());
        assert!(p.parse_required::<f64>("alpha").is_err());
    }

    #[test]
    fn ensure_only_flags() {
        let p = parse(&sv(&["train", "--data", "x", "--bogus", "1"])).unwrap();
        assert!(p.ensure_only(&["data"]).is_err());
        assert!(p.ensure_only(&["data", "bogus"]).is_ok());
    }
}
