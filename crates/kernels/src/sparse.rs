//! Blocked CSR kernels over raw index/value slices.
//!
//! `srda-sparse` owns the validated `CsrMatrix` type; this module only sees
//! the raw triple (`indptr`, `indices`, `values`) through a borrowed
//! [`CsrView`], so the kernels stay dependency-free while the structural
//! invariants (sorted, in-bounds column indices) are enforced upstream.

use crate::Executor;

/// Borrowed view of a CSR matrix.
#[derive(Debug, Clone, Copy)]
pub struct CsrView<'a> {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    /// Row pointers, length `rows + 1`.
    pub indptr: &'a [usize],
    /// Column indices, sorted strictly increasing within each row.
    pub indices: &'a [usize],
    /// Non-zero values, parallel to `indices`.
    pub values: &'a [f64],
}

/// `y = A·x`: row-parallel gather, one pass over the non-zeros.
///
/// Per-row accumulation order is the stored (ascending-column) order, same
/// as the historical serial loop, so results are backend-invariant.
pub fn csr_matvec(exec: &Executor, a: CsrView<'_>, x: &[f64], y: &mut [f64]) {
    exec.note_kernel("kernel.csr.matvec");
    debug_assert_eq!(x.len(), a.cols);
    debug_assert_eq!(y.len(), a.rows);
    debug_assert_eq!(a.indptr.len(), a.rows + 1);
    exec.for_each_row_block(y, 1, |first, block| {
        for (off, yv) in block.iter_mut().enumerate() {
            let i = first + off;
            let mut acc = 0.0;
            for k in a.indptr[i]..a.indptr[i + 1] {
                acc += a.values[k] * x[a.indices[k]];
            }
            *yv = acc;
        }
    });
}

/// `y = Aᵀ·x`: scatter form, executed as a deterministic block reduction.
///
/// Rows are grouped into fixed blocks of [`crate::REDUCE_BLOCK_ROWS`]
/// (shared with the dense `matvec_t`, so sparse-vs-dense equality tests
/// stay exact) and per-block partials are summed in ascending block order
/// on every backend. Rows with `x[i] == 0.0` are skipped.
pub fn csr_matvec_t(exec: &Executor, a: CsrView<'_>, x: &[f64], y: &mut [f64]) {
    exec.note_kernel("kernel.csr.matvec_t");
    debug_assert_eq!(x.len(), a.rows);
    debug_assert_eq!(y.len(), a.cols);
    debug_assert_eq!(a.indptr.len(), a.rows + 1);
    y.fill(0.0);
    exec.reduce_row_blocks(a.rows, y, |start, len, partial| {
        for (i, &xi) in x.iter().enumerate().take(start + len).skip(start) {
            if xi == 0.0 {
                continue;
            }
            for k in a.indptr[i]..a.indptr[i + 1] {
                partial[a.indices[k]] += a.values[k] * xi;
            }
        }
    });
}

/// Dense product `C = A·B` with `A` sparse (`m × n`) and `B` dense row-major
/// (`n × p`); row-parallel over `C`.
pub fn csr_matmul_dense(exec: &Executor, a: CsrView<'_>, b: &[f64], p: usize, c: &mut [f64]) {
    exec.note_kernel("kernel.csr.matmul_dense");
    debug_assert_eq!(b.len(), a.cols * p);
    debug_assert_eq!(c.len(), a.rows * p);
    exec.for_each_row_block(c, p.max(1), |first, block| {
        block.fill(0.0);
        for (off, crow) in block.chunks_mut(p.max(1)).enumerate() {
            let i = first + off;
            for k in a.indptr[i]..a.indptr[i + 1] {
                let v = a.values[k];
                let brow = &b[a.indices[k] * p..(a.indices[k] + 1) * p];
                for (cv, &bv) in crow.iter_mut().zip(brow) {
                    *cv += v * bv;
                }
            }
        }
    });
}

/// Dense outer Gram `G = A·Aᵀ` (`m × m`) by sorted-merge row dots,
/// row-block-parallel over the upper triangle (mirrored afterwards).
///
/// Each `g[i][j]` is a single-accumulator merge of the two sorted index
/// lists — identical numerics to the historical serial merge.
pub fn csr_gram_t(exec: &Executor, a: CsrView<'_>, g: &mut [f64]) {
    exec.note_kernel("kernel.csr.gram_t");
    let m = a.rows;
    debug_assert_eq!(g.len(), m * m);
    exec.for_each_row_block(g, m.max(1), |first, block| {
        for (off, grow) in block.chunks_mut(m.max(1)).enumerate() {
            let i = first + off;
            for (j, gv) in grow.iter_mut().enumerate().skip(i) {
                let (mut p, endp) = (a.indptr[i], a.indptr[i + 1]);
                let (mut q, endq) = (a.indptr[j], a.indptr[j + 1]);
                let mut acc = 0.0;
                while p < endp && q < endq {
                    match a.indices[p].cmp(&a.indices[q]) {
                        std::cmp::Ordering::Less => p += 1,
                        std::cmp::Ordering::Greater => q += 1,
                        std::cmp::Ordering::Equal => {
                            acc += a.values[p] * a.values[q];
                            p += 1;
                            q += 1;
                        }
                    }
                }
                *gv = acc;
            }
        }
    });
    for i in 1..m {
        for j in 0..i {
            g[i * m + j] = g[j * m + i];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Random-ish CSR plus its dense image, for oracle checks.
    fn sample(rows: usize, cols: usize, seed: u64) -> (Vec<usize>, Vec<usize>, Vec<f64>, Vec<f64>) {
        let mut state = seed.wrapping_mul(0x2545_f491_4f6c_dd1d).max(1);
        let mut indptr = vec![0usize];
        let mut indices = Vec::new();
        let mut values = Vec::new();
        let mut dense = vec![0.0; rows * cols];
        for i in 0..rows {
            for j in 0..cols {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                if state % 3 == 0 {
                    let v = (state % 100) as f64 / 10.0 - 5.0;
                    indices.push(j);
                    values.push(v);
                    dense[i * cols + j] = v;
                }
            }
            indptr.push(indices.len());
        }
        (indptr, indices, values, dense)
    }

    #[test]
    fn csr_matvec_pair_matches_dense_kernels() {
        for &rows in &[5usize, 1024, 1500] {
            let cols = 13;
            let (indptr, indices, values, dense) = sample(rows, cols, rows as u64);
            let view = CsrView {
                rows,
                cols,
                indptr: &indptr,
                indices: &indices,
                values: &values,
            };
            let x: Vec<f64> = (0..cols).map(|j| j as f64 - 4.0).collect();
            let xt: Vec<f64> = (0..rows)
                .map(|i| if i % 7 == 0 { 0.0 } else { i as f64 * 0.01 })
                .collect();
            for &t in &[1usize, 2, 4, 4096] {
                let exec = Executor::threaded(t);
                let mut y = vec![0.0; rows];
                csr_matvec(&exec, view, &x, &mut y);
                let mut yd = vec![0.0; rows];
                crate::dense::matvec(&Executor::serial(), &dense, rows, cols, &x, &mut yd);
                assert_eq!(y, yd, "matvec rows={rows} t={t}");

                let mut yt = vec![0.0; cols];
                csr_matvec_t(&exec, view, &xt, &mut yt);
                let mut ytd = vec![0.0; cols];
                crate::dense::matvec_t(&Executor::serial(), &dense, rows, cols, &xt, &mut ytd);
                assert_eq!(yt, ytd, "matvec_t rows={rows} t={t}");
            }
        }
    }

    #[test]
    fn csr_gram_t_and_matmul_dense_match_oracles() {
        let (rows, cols, p) = (17, 11, 5);
        let (indptr, indices, values, dense) = sample(rows, cols, 42);
        let view = CsrView {
            rows,
            cols,
            indptr: &indptr,
            indices: &indices,
            values: &values,
        };
        let b: Vec<f64> = (0..cols * p).map(|i| (i as f64 * 0.3).cos()).collect();
        let serial = {
            let mut g = vec![0.0; rows * rows];
            csr_gram_t(&Executor::serial(), view, &mut g);
            let mut c = vec![0.0; rows * p];
            csr_matmul_dense(&Executor::serial(), view, &b, p, &mut c);
            (g, c)
        };
        // oracle: dense gram_t
        for i in 0..rows {
            for j in 0..rows {
                let mut acc = 0.0;
                for k in 0..cols {
                    acc += dense[i * cols + k] * dense[j * cols + k];
                }
                assert!((serial.0[i * rows + j] - acc).abs() <= 1e-10);
            }
        }
        for &t in &[2usize, 3, 64] {
            let exec = Executor::threaded(t);
            let mut g = vec![0.0; rows * rows];
            csr_gram_t(&exec, view, &mut g);
            assert_eq!(g, serial.0, "gram_t t={t}");
            let mut c = vec![0.0; rows * p];
            csr_matmul_dense(&exec, view, &b, p, &mut c);
            assert_eq!(c, serial.1, "matmul_dense t={t}");
        }
    }
}
