//! Blocked dense kernels over row-major `&[f64]` slices.
//!
//! Conventions: a matrix argument is a slice of length `rows * cols` in
//! row-major order, with the dimensions passed explicitly. Output slices
//! must be sized by the caller and are fully overwritten (they do not need
//! to be zeroed unless documented otherwise).
//!
//! Per-element summation order is pinned down in each kernel's docs; it is
//! identical across backends and matches the historical serial loops in
//! `srda_linalg::ops`, which is what makes the executor refactor invisible
//! to existing bit-level regression tests.

use crate::Executor;

/// Column-tile width for the `p` (inner/shared) dimension of [`gemm`].
/// Per-element addition order stays `p`-ascending for every tile size, so
/// this is purely a cache-locality knob.
const GEMM_P_TILE: usize = 64;

/// `c = a * b` where `a` is `m x k`, `b` is `k x n`, `c` is `m x n`.
///
/// Row-parallel over `c` with a tiled sweep of the shared dimension.
/// Each `c[i][j]` accumulates `a[i][p] * b[p][j]` for `p` ascending,
/// skipping `a[i][p] == 0.0` — the exact order of the classic ikj loop.
/// `c` need not be zeroed.
pub fn gemm(exec: &Executor, a: &[f64], m: usize, k: usize, b: &[f64], n: usize, c: &mut [f64]) {
    exec.note_kernel("kernel.dense.gemm");
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    exec.for_each_row_block(c, n.max(1), |first, block| {
        block.fill(0.0);
        let mut pt = 0;
        while pt < k {
            let pe = (pt + GEMM_P_TILE).min(k);
            for (r, crow) in block.chunks_mut(n.max(1)).enumerate() {
                let arow = &a[(first + r) * k..(first + r + 1) * k];
                for (p, &aip) in arow.iter().enumerate().take(pe).skip(pt) {
                    if aip == 0.0 {
                        continue;
                    }
                    let brow = &b[p * n..(p + 1) * n];
                    for (cv, &bv) in crow.iter_mut().zip(brow) {
                        *cv += aip * bv;
                    }
                }
            }
            pt = pe;
        }
    });
}

/// `c = a^T * b` where `a` is `m x k`, `b` is `m x n`, `c` is `k x n`.
///
/// Row-parallel over `c` (i.e. over columns of `a`); each chunk sweeps the
/// shared `m` dimension once. `c[i][j]` accumulates `a[r][i] * b[r][j]`
/// for `r` ascending, skipping `a[r][i] == 0.0` — matching the historical
/// outer-product loop.
pub fn gemm_transa(
    exec: &Executor,
    a: &[f64],
    m: usize,
    k: usize,
    b: &[f64],
    n: usize,
    c: &mut [f64],
) {
    exec.note_kernel("kernel.dense.gemm_transa");
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), m * n);
    debug_assert_eq!(c.len(), k * n);
    exec.for_each_row_block(c, n.max(1), |first, block| {
        block.fill(0.0);
        for r in 0..m {
            let arow = &a[r * k..(r + 1) * k];
            let brow = &b[r * n..(r + 1) * n];
            for (off, crow) in block.chunks_mut(n.max(1)).enumerate() {
                let ari = arow[first + off];
                if ari == 0.0 {
                    continue;
                }
                for (cv, &bv) in crow.iter_mut().zip(brow) {
                    *cv += ari * bv;
                }
            }
        }
    });
}

/// `c = a * b^T` where `a` is `m x k`, `b` is `n x k`, `c` is `m x n`.
///
/// Row-parallel over `c`; each element is a single-accumulator dot product
/// over `p` ascending, matching the historical row-dot loop.
pub fn gemm_transb(
    exec: &Executor,
    a: &[f64],
    m: usize,
    k: usize,
    b: &[f64],
    n: usize,
    c: &mut [f64],
) {
    exec.note_kernel("kernel.dense.gemm_transb");
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(c.len(), m * n);
    exec.for_each_row_block(c, n.max(1), |first, block| {
        for (off, crow) in block.chunks_mut(n.max(1)).enumerate() {
            let arow = &a[(first + off) * k..(first + off + 1) * k];
            for (j, cv) in crow.iter_mut().enumerate() {
                let brow = &b[j * k..(j + 1) * k];
                let mut acc = 0.0;
                for (&av, &bv) in arow.iter().zip(brow) {
                    acc += av * bv;
                }
                *cv = acc;
            }
        }
    });
}

/// Gram matrix `g = a^T * a` where `a` is `m x n`, `g` is `n x n`.
///
/// The upper triangle is computed row-block-parallel: each block of `g`
/// rows sweeps all `m` data rows once, so the working set per sweep is
/// `block_rows * n` output values (the cache-blocking win over the naive
/// whole-triangle sweep). `g[i][j]` (`j >= i`) accumulates
/// `a[r][i] * a[r][j]` for `r` ascending, skipping `a[r][i] == 0.0` —
/// the historical order. The lower triangle is mirrored afterwards.
pub fn gram(exec: &Executor, a: &[f64], m: usize, n: usize, g: &mut [f64]) {
    exec.note_kernel("kernel.dense.gram");
    debug_assert_eq!(a.len(), m * n);
    debug_assert_eq!(g.len(), n * n);
    exec.for_each_row_block(g, n.max(1), |first, block| {
        block.fill(0.0);
        for r in 0..m {
            let arow = &a[r * n..(r + 1) * n];
            for (off, grow) in block.chunks_mut(n.max(1)).enumerate() {
                let i = first + off;
                let ari = arow[i];
                if ari == 0.0 {
                    continue;
                }
                for (gv, &av) in grow[i..].iter_mut().zip(&arow[i..]) {
                    *gv += ari * av;
                }
            }
        }
    });
    mirror_upper(g, n);
}

/// Outer Gram matrix `g = a * a^T` where `a` is `m x n`, `g` is `m x m`.
///
/// Row-block-parallel over the upper triangle; each element is a
/// single-accumulator dot product of two data rows (the historical
/// order). The lower triangle is mirrored afterwards.
pub fn gram_t(exec: &Executor, a: &[f64], m: usize, n: usize, g: &mut [f64]) {
    exec.note_kernel("kernel.dense.gram_t");
    debug_assert_eq!(a.len(), m * n);
    debug_assert_eq!(g.len(), m * m);
    exec.for_each_row_block(g, m.max(1), |first, block| {
        for (off, grow) in block.chunks_mut(m.max(1)).enumerate() {
            let i = first + off;
            let arow = &a[i * n..(i + 1) * n];
            for (j, gv) in grow.iter_mut().enumerate().skip(i) {
                let brow = &a[j * n..(j + 1) * n];
                let mut acc = 0.0;
                for (&av, &bv) in arow.iter().zip(brow) {
                    acc += av * bv;
                }
                *gv = acc;
            }
        }
    });
    mirror_upper(g, m);
}

/// `y = a * x` where `a` is `m x n`; row-parallel single-accumulator dots.
pub fn matvec(exec: &Executor, a: &[f64], m: usize, n: usize, x: &[f64], y: &mut [f64]) {
    exec.note_kernel("kernel.dense.matvec");
    debug_assert_eq!(a.len(), m * n);
    debug_assert_eq!(x.len(), n);
    debug_assert_eq!(y.len(), m);
    exec.for_each_row_block(y, 1, |first, block| {
        for (off, yv) in block.iter_mut().enumerate() {
            let arow = &a[(first + off) * n..(first + off + 1) * n];
            let mut acc = 0.0;
            for (&av, &xv) in arow.iter().zip(x) {
                acc += av * xv;
            }
            *yv = acc;
        }
    });
}

/// `y = a^T * x` where `a` is `m x n`.
///
/// This is a reduction over the `m` data rows, executed via
/// [`Executor::reduce_row_blocks`]: rows are grouped into fixed blocks of
/// [`crate::REDUCE_BLOCK_ROWS`] whose partials are summed in ascending
/// block order on every backend. Rows with `x[i] == 0.0` are skipped, as
/// in the historical scatter loop.
pub fn matvec_t(exec: &Executor, a: &[f64], m: usize, n: usize, x: &[f64], y: &mut [f64]) {
    exec.note_kernel("kernel.dense.matvec_t");
    debug_assert_eq!(a.len(), m * n);
    debug_assert_eq!(x.len(), m);
    debug_assert_eq!(y.len(), n);
    y.fill(0.0);
    exec.reduce_row_blocks(m, y, |start, len, partial| {
        for i in start..start + len {
            let xi = x[i];
            if xi == 0.0 {
                continue;
            }
            let arow = &a[i * n..(i + 1) * n];
            for (pv, &av) in partial.iter_mut().zip(arow) {
                *pv += xi * av;
            }
        }
    });
}

/// Copy the upper triangle of an `n x n` row-major matrix into the lower.
fn mirror_upper(g: &mut [f64], n: usize) {
    for i in 1..n {
        for j in 0..i {
            g[i * n + j] = g[j * n + i];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_gemm(a: &[f64], m: usize, k: usize, b: &[f64], n: usize) -> Vec<f64> {
        let mut c = vec![0.0; m * n];
        for i in 0..m {
            for p in 0..k {
                for j in 0..n {
                    c[i * n + j] += a[i * k + p] * b[p * n + j];
                }
            }
        }
        c
    }

    fn mat(m: usize, n: usize, seed: u64) -> Vec<f64> {
        // Deterministic pseudo-random fill with some exact zeros so the
        // zero-skip paths are exercised.
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).max(1);
        (0..m * n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                let v = (state % 2000) as f64 / 100.0 - 10.0;
                if state % 11 == 0 {
                    0.0
                } else {
                    v
                }
            })
            .collect()
    }

    fn assert_close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() <= tol, "index {i}: {x} vs {y}");
        }
    }

    #[test]
    fn gemm_matches_naive_and_is_backend_invariant() {
        for &(m, k, n) in &[(1, 1, 1), (3, 5, 2), (17, 9, 13), (70, 65, 67)] {
            let a = mat(m, k, 1);
            let b = mat(k, n, 2);
            let naive = naive_gemm(&a, m, k, &b, n);
            let mut serial = vec![0.0; m * n];
            gemm(&Executor::serial(), &a, m, k, &b, n, &mut serial);
            assert_close(&serial, &naive, 1e-12);
            for &t in &[2usize, 4, 100] {
                let mut th = vec![0.0; m * n];
                gemm(&Executor::threaded(t), &a, m, k, &b, n, &mut th);
                assert_eq!(serial, th, "m={m} k={k} n={n} t={t}");
            }
        }
    }

    #[test]
    fn transposed_products_match_naive() {
        let (m, k, n) = (23, 11, 17);
        let a = mat(m, k, 3);
        let b = mat(m, n, 4);
        let mut c = vec![0.0; k * n];
        gemm_transa(&Executor::threaded(3), &a, m, k, &b, n, &mut c);
        let mut naive = vec![0.0; k * n];
        for r in 0..m {
            for i in 0..k {
                for j in 0..n {
                    naive[i * n + j] += a[r * k + i] * b[r * n + j];
                }
            }
        }
        assert_close(&c, &naive, 1e-12);

        let bt = mat(n, k, 5);
        let mut c2 = vec![0.0; m * n];
        gemm_transb(&Executor::threaded(3), &a, m, k, &bt, n, &mut c2);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for p in 0..k {
                    acc += a[i * k + p] * bt[j * k + p];
                }
                assert!((c2[i * n + j] - acc).abs() <= 1e-12);
            }
        }
    }

    #[test]
    fn gram_kernels_match_naive_and_are_symmetric() {
        let (m, n) = (29, 21);
        let a = mat(m, n, 6);
        let mut g = vec![0.0; n * n];
        gram(&Executor::threaded(4), &a, m, n, &mut g);
        for i in 0..n {
            for j in 0..n {
                let mut acc = 0.0;
                for r in 0..m {
                    acc += a[r * n + i] * a[r * n + j];
                }
                assert!((g[i * n + j] - acc).abs() <= 1e-10, "({i},{j})");
                assert_eq!(g[i * n + j], g[j * n + i]);
            }
        }
        let mut gt = vec![0.0; m * m];
        gram_t(&Executor::threaded(4), &a, m, n, &mut gt);
        for i in 0..m {
            for j in 0..m {
                let mut acc = 0.0;
                for p in 0..n {
                    acc += a[i * n + p] * a[j * n + p];
                }
                assert!((gt[i * m + j] - acc).abs() <= 1e-10, "({i},{j})");
                assert_eq!(gt[i * m + j], gt[j * m + i]);
            }
        }
    }

    #[test]
    fn matvec_pair_matches_naive_across_reduce_blocks() {
        // m spans one and several REDUCE_BLOCK_ROWS blocks.
        for &m in &[7usize, 1024, 1025, 2600] {
            let n = 19;
            let a = mat(m, n, 7);
            let x = mat(n, 1, 8);
            let xt = mat(m, 1, 9);
            let mut y = vec![0.0; m];
            matvec(&Executor::threaded(4), &a, m, n, &x, &mut y);
            for i in 0..m {
                let mut acc = 0.0;
                for j in 0..n {
                    acc += a[i * n + j] * x[j];
                }
                assert!((y[i] - acc).abs() <= 1e-9 * acc.abs().max(1.0));
            }
            let mut yt_serial = vec![0.0; n];
            matvec_t(&Executor::serial(), &a, m, n, &xt, &mut yt_serial);
            let mut naive = vec![0.0; n];
            for i in 0..m {
                for j in 0..n {
                    naive[j] += xt[i] * a[i * n + j];
                }
            }
            assert_close(&yt_serial, &naive, 1e-7);
            for &t in &[2usize, 3, 8, 5000] {
                let mut yt = vec![0.0; n];
                matvec_t(&Executor::threaded(t), &a, m, n, &xt, &mut yt);
                assert_eq!(yt_serial, yt, "m={m} t={t}");
            }
        }
    }
}
