//! Execution backend for the SRDA reproduction.
//!
//! Every hot kernel in the workspace — dense GEMM/Gram products in
//! `srda-linalg`, CSR products in `srda-sparse`, and the operator loops in
//! `srda-solvers` — routes through this crate. It provides a single
//! [`Executor`] abstraction with two backends:
//!
//! * [`Backend::Serial`] — single-threaded, cache-blocked loops.
//! * [`Backend::Threaded`] — the same blocked loops fanned out over
//!   `std::thread::scope` with the output partitioned into disjoint
//!   row blocks (no locks, no unsafe).
//!
//! Determinism contract: for a fixed input, every kernel in this crate
//! produces results that are equal for any backend and any thread count.
//! Row-partitioned kernels get this for free (each output element is
//! computed by exactly one chunk, in the same per-element summation order
//! as the serial loop). Reduction kernels (`matvec_t` and its CSR twin)
//! accumulate per-block partials over a *fixed* block size
//! ([`REDUCE_BLOCK_ROWS`], independent of the thread count) and sum the
//! partials in ascending block order, so the floating-point addition
//! sequence is identical on every backend.
//!
//! The crate is deliberately dependency-free and slice-based (row-major
//! `&[f64]` plus explicit dimensions; raw CSR triples) so that both
//! `srda-linalg` and `srda-sparse` can sit on top of it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dense;
pub mod sparse;

pub use srda_obs::Recorder;

/// Which execution strategy an [`Executor`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Single-threaded blocked loops.
    Serial,
    /// `std::thread::scope` fan-out over disjoint row blocks.
    Threaded,
}

/// Fixed row-block size for reduction kernels (`matvec_t` and the CSR
/// equivalent). This is a *determinism* constant, not a tuning knob: the
/// partial-sum grouping must not depend on the thread count or the policy
/// block size, otherwise `Serial` and `Threaded` results would diverge in
/// the last bits. Inputs with at most this many rows take the single-block
/// path, which is bit-identical to the historical serial scatter loop.
pub const REDUCE_BLOCK_ROWS: usize = 1024;

/// Execution policy threaded through `SrdaConfig` and the CLI.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecPolicy {
    /// Backend selection.
    pub backend: Backend,
    /// Worker threads used by [`Backend::Threaded`]; ignored by `Serial`.
    pub n_threads: usize,
    /// Row-block granularity for cache blocking in the partitioned
    /// kernels (Gram sweeps, GEMM row tiles). Purely a performance knob:
    /// results are identical for every positive value.
    pub block_size: usize,
}

impl Default for ExecPolicy {
    fn default() -> Self {
        Self {
            backend: Backend::Serial,
            n_threads: 1,
            block_size: 64,
        }
    }
}

impl ExecPolicy {
    /// Serial policy (the default).
    pub fn serial() -> Self {
        Self::default()
    }

    /// Threaded policy with `n_threads` workers (clamped to at least 1).
    pub fn threaded(n_threads: usize) -> Self {
        let n = n_threads.max(1);
        Self {
            backend: if n > 1 {
                Backend::Threaded
            } else {
                Backend::Serial
            },
            n_threads: n,
            ..Self::default()
        }
    }

    /// Build a policy from the `SRDA_THREADS` environment variable.
    ///
    /// Unset, unparsable, `0`, or `1` all mean serial; `N > 1` selects the
    /// threaded backend with `N` workers. Because every kernel is
    /// deterministic across backends, flipping this variable never changes
    /// numerical results — only wall-clock time.
    pub fn from_env() -> Self {
        match std::env::var("SRDA_THREADS") {
            Ok(v) => match v.trim().parse::<usize>() {
                Ok(n) if n > 1 => Self::threaded(n),
                _ => Self::serial(),
            },
            Err(_) => Self::serial(),
        }
    }
}

/// Executes kernels according to an [`ExecPolicy`].
///
/// `Executor` is `Copy` and cheap to pass by reference; it owns no threads
/// (workers are scoped per call via `std::thread::scope`). It also carries
/// the observability [`Recorder`] handle — disabled by default, in which
/// case every instrumentation point in the kernels is a single branch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Executor {
    policy: ExecPolicy,
    recorder: Recorder,
}

impl Executor {
    /// Executor for the given policy, with recording disabled.
    pub fn new(policy: ExecPolicy) -> Self {
        Self {
            policy,
            recorder: Recorder::disabled(),
        }
    }

    /// Executor for the given policy that reports kernel-call counters to
    /// `recorder`.
    pub fn with_recorder(policy: ExecPolicy, recorder: Recorder) -> Self {
        Self { policy, recorder }
    }

    /// Single-threaded executor (compatibility surface for the old
    /// free-function kernels).
    pub fn serial() -> Self {
        Self::new(ExecPolicy::serial())
    }

    /// Threaded executor with `n_threads` workers.
    pub fn threaded(n_threads: usize) -> Self {
        Self::new(ExecPolicy::threaded(n_threads))
    }

    /// Executor configured from the environment: policy from `SRDA_THREADS`
    /// (see [`ExecPolicy::from_env`]) and recorder from `SRDA_TRACE`
    /// (see [`Recorder::from_env`]).
    pub fn from_env() -> Self {
        Self::with_recorder(ExecPolicy::from_env(), Recorder::from_env())
    }

    /// The policy this executor runs under.
    pub fn policy(&self) -> ExecPolicy {
        self.policy
    }

    /// The observability handle this executor reports to.
    pub fn recorder(&self) -> Recorder {
        self.recorder
    }

    /// Short backend name for telemetry (`"serial"` / `"threaded"`).
    pub fn backend_name(&self) -> &'static str {
        match self.policy.backend {
            Backend::Serial => "serial",
            Backend::Threaded => "threaded",
        }
    }

    /// Bump the kernel-call counter `name` by one. A single branch when
    /// recording is disabled; kernels call this once per entry, so the
    /// enabled cost (a map lookup) is amortized over a blocked sweep.
    #[inline]
    pub(crate) fn note_kernel(&self, name: &str) {
        self.recorder.add(name, 1);
    }

    /// Effective worker count: 1 for `Serial`, `n_threads` for `Threaded`.
    pub fn threads(&self) -> usize {
        match self.policy.backend {
            Backend::Serial => 1,
            Backend::Threaded => self.policy.n_threads.max(1),
        }
    }

    /// Row-block granularity (always at least 1).
    pub fn block_rows(&self) -> usize {
        self.policy.block_size.max(1)
    }

    /// Partition `out` (row-major, `row_width` values per row) into
    /// contiguous blocks of at most [`Self::block_rows`] rows and invoke
    /// `f(first_row, block)` on each. Blocks are distributed contiguously
    /// over the worker threads; since each output row belongs to exactly
    /// one block, the result is independent of the thread count.
    pub fn for_each_row_block<F>(&self, out: &mut [f64], row_width: usize, f: F)
    where
        F: Fn(usize, &mut [f64]) + Sync,
    {
        if out.is_empty() || row_width == 0 {
            return;
        }
        debug_assert_eq!(out.len() % row_width, 0);
        let rows = out.len() / row_width;
        let bs = self.block_rows();
        let n_blocks = rows.div_ceil(bs);
        let t = self.threads().min(n_blocks);
        if t <= 1 {
            let mut row0 = 0;
            for block in out.chunks_mut(bs * row_width) {
                f(row0, block);
                row0 += block.len() / row_width;
            }
            return;
        }
        let base = n_blocks / t;
        let rem = n_blocks % t;
        std::thread::scope(|s| {
            let mut rest = out;
            let mut row0 = 0;
            for k in 0..t {
                let nb = base + usize::from(k < rem);
                let rows_here = (nb * bs).min(rows - row0);
                let (span, tail) = rest.split_at_mut(rows_here * row_width);
                rest = tail;
                let fref = &f;
                let first = row0;
                s.spawn(move || {
                    let mut r0 = first;
                    for block in span.chunks_mut(bs * row_width) {
                        fref(r0, block);
                        r0 += block.len() / row_width;
                    }
                });
                row0 += rows_here;
            }
        });
    }

    /// Deterministic block reduction over `n_rows` input rows.
    ///
    /// `f(start_row, len, partial)` must *accumulate* the contribution of
    /// input rows `start_row..start_row + len` into `partial` (provided
    /// zeroed). `out` must be zeroed by the caller.
    ///
    /// Rows are grouped into fixed blocks of [`REDUCE_BLOCK_ROWS`] and the
    /// per-block partials are summed into `out` in ascending block order —
    /// on *every* backend — so the floating-point result is identical for
    /// any thread count. With a single block (the common case for
    /// paper-sized row counts on the transpose-apply path), `f` writes
    /// straight into `out`, which reproduces the historical serial scatter
    /// loop bit-for-bit.
    pub fn reduce_row_blocks<F>(&self, n_rows: usize, out: &mut [f64], f: F)
    where
        F: Fn(usize, usize, &mut [f64]) + Sync,
    {
        if n_rows == 0 || out.is_empty() {
            return;
        }
        let n_blocks = n_rows.div_ceil(REDUCE_BLOCK_ROWS);
        if n_blocks == 1 {
            f(0, n_rows, out);
            return;
        }
        let t = self.threads().min(n_blocks);
        if t <= 1 {
            // Same partial-then-add sequence as the threaded path so the
            // two backends agree bit-for-bit.
            let mut partial = vec![0.0; out.len()];
            for b in 0..n_blocks {
                let start = b * REDUCE_BLOCK_ROWS;
                let len = REDUCE_BLOCK_ROWS.min(n_rows - start);
                partial.fill(0.0);
                f(start, len, &mut partial);
                for (o, p) in out.iter_mut().zip(&partial) {
                    *o += *p;
                }
            }
            return;
        }
        let mut partials: Vec<Vec<f64>> = Vec::new();
        partials.resize_with(n_blocks, || vec![0.0; out.len()]);
        let base = n_blocks / t;
        let rem = n_blocks % t;
        std::thread::scope(|s| {
            let mut rest: &mut [Vec<f64>] = &mut partials;
            let mut b0 = 0;
            for k in 0..t {
                let nb = base + usize::from(k < rem);
                let (span, tail) = rest.split_at_mut(nb);
                rest = tail;
                let fref = &f;
                let first = b0;
                s.spawn(move || {
                    for (off, partial) in span.iter_mut().enumerate() {
                        let b = first + off;
                        let start = b * REDUCE_BLOCK_ROWS;
                        let len = REDUCE_BLOCK_ROWS.min(n_rows - start);
                        fref(start, len, partial);
                    }
                });
                b0 += nb;
            }
        });
        for partial in &partials {
            for (o, p) in out.iter_mut().zip(partial) {
                *o += *p;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_from_threads() {
        assert_eq!(ExecPolicy::threaded(0).backend, Backend::Serial);
        assert_eq!(ExecPolicy::threaded(1).backend, Backend::Serial);
        let p = ExecPolicy::threaded(4);
        assert_eq!(p.backend, Backend::Threaded);
        assert_eq!(p.n_threads, 4);
    }

    #[test]
    fn row_blocks_cover_every_row_once() {
        for &threads in &[1usize, 2, 3, 8, 33] {
            for &rows in &[1usize, 2, 7, 64, 65, 200] {
                let mut out = vec![0.0; rows * 3];
                let exec = Executor::threaded(threads);
                exec.for_each_row_block(&mut out, 3, |first, block| {
                    for (r, row) in block.chunks_mut(3).enumerate() {
                        for v in row.iter_mut() {
                            *v += (first + r) as f64 + 1.0;
                        }
                    }
                });
                for (i, row) in out.chunks(3).enumerate() {
                    assert!(row.iter().all(|&v| v == i as f64 + 1.0), "row {i}");
                }
            }
        }
    }

    #[test]
    fn reduce_blocks_deterministic_across_backends() {
        // 2500 rows -> 3 fixed blocks; contributions chosen so naive
        // accumulation order differs across groupings in the last bits.
        let n_rows = 2500;
        let contrib: Vec<f64> = (0..n_rows)
            .map(|i| (i as f64 * 0.37).sin() * 1e8 + 1e-8 * i as f64)
            .collect();
        let run = |exec: Executor| {
            let mut out = vec![0.0; 4];
            exec.reduce_row_blocks(n_rows, &mut out, |start, len, partial| {
                for i in start..start + len {
                    for (j, p) in partial.iter_mut().enumerate() {
                        *p += contrib[i] * (j as f64 + 1.0);
                    }
                }
            });
            out
        };
        let serial = run(Executor::serial());
        for &t in &[2usize, 3, 4, 16, 5000] {
            assert_eq!(serial, run(Executor::threaded(t)), "t = {t}");
        }
    }

    #[test]
    fn reduce_single_block_matches_direct_accumulation() {
        let n_rows = 100; // < REDUCE_BLOCK_ROWS: single block, direct write
        let mut direct = vec![0.0; 2];
        for i in 0..n_rows {
            direct[0] += i as f64 * 0.1;
            direct[1] += i as f64 * 0.2;
        }
        let mut out = vec![0.0; 2];
        Executor::threaded(8).reduce_row_blocks(n_rows, &mut out, |start, len, partial| {
            for i in start..start + len {
                partial[0] += i as f64 * 0.1;
                partial[1] += i as f64 * 0.2;
            }
        });
        assert_eq!(direct, out);
    }
}
