//! Classification metrics beyond the error rate: confusion matrix and
//! per-class precision/recall/F1 with macro averages.

/// A `c × c` confusion matrix: `counts[t][p]` is the number of samples of
/// true class `t` predicted as class `p`.
///
/// ```
/// use srda_eval::ConfusionMatrix;
///
/// let cm = ConfusionMatrix::from_predictions(&[0, 1, 1], &[0, 1, 0], 2);
/// assert_eq!(cm.count(0, 1), 1);          // one class-0 sample predicted 1
/// assert!((cm.accuracy() - 2.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    counts: Vec<Vec<usize>>,
}

impl ConfusionMatrix {
    /// Build from parallel prediction/truth slices.
    pub fn from_predictions(pred: &[usize], truth: &[usize], n_classes: usize) -> Self {
        assert_eq!(pred.len(), truth.len());
        let mut counts = vec![vec![0usize; n_classes]; n_classes];
        for (&p, &t) in pred.iter().zip(truth) {
            counts[t][p] += 1;
        }
        ConfusionMatrix { counts }
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.counts.len()
    }

    /// Raw count of true class `t` predicted as `p`.
    pub fn count(&self, t: usize, p: usize) -> usize {
        self.counts[t][p]
    }

    /// Total number of samples.
    pub fn total(&self) -> usize {
        self.counts.iter().flatten().sum()
    }

    /// Overall accuracy.
    pub fn accuracy(&self) -> f64 {
        let correct: usize = (0..self.n_classes()).map(|k| self.counts[k][k]).sum();
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            correct as f64 / total as f64
        }
    }

    /// Overall error rate (`1 − accuracy`).
    pub fn error_rate(&self) -> f64 {
        1.0 - self.accuracy()
    }

    /// Precision of class `k`: TP / (TP + FP). 0 when the class is never
    /// predicted.
    pub fn precision(&self, k: usize) -> f64 {
        let tp = self.counts[k][k];
        let predicted: usize = (0..self.n_classes()).map(|t| self.counts[t][k]).sum();
        if predicted == 0 {
            0.0
        } else {
            tp as f64 / predicted as f64
        }
    }

    /// Recall of class `k`: TP / (TP + FN). 0 when the class has no
    /// samples.
    pub fn recall(&self, k: usize) -> f64 {
        let tp = self.counts[k][k];
        let actual: usize = self.counts[k].iter().sum();
        if actual == 0 {
            0.0
        } else {
            tp as f64 / actual as f64
        }
    }

    /// F1 of class `k` (harmonic mean of precision and recall).
    pub fn f1(&self, k: usize) -> f64 {
        let p = self.precision(k);
        let r = self.recall(k);
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Unweighted mean F1 over classes.
    pub fn macro_f1(&self) -> f64 {
        let c = self.n_classes();
        (0..c).map(|k| self.f1(k)).sum::<f64>() / c as f64
    }

    /// The most-confused ordered pair `(true, predicted)` among off-
    /// diagonal entries, or `None` if there are no mistakes.
    pub fn worst_confusion(&self) -> Option<(usize, usize, usize)> {
        let mut best: Option<(usize, usize, usize)> = None;
        for t in 0..self.n_classes() {
            for p in 0..self.n_classes() {
                if t != p
                    && self.counts[t][p] > 0
                    && best.is_none_or(|(_, _, n)| self.counts[t][p] > n)
                {
                    best = Some((t, p, self.counts[t][p]));
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cm() -> ConfusionMatrix {
        // truth:      0 0 0 1 1 2
        // predicted:  0 0 1 1 1 0
        ConfusionMatrix::from_predictions(&[0, 0, 1, 1, 1, 0], &[0, 0, 0, 1, 1, 2], 3)
    }

    #[test]
    fn counts_and_totals() {
        let m = cm();
        assert_eq!(m.count(0, 0), 2);
        assert_eq!(m.count(0, 1), 1);
        assert_eq!(m.count(2, 0), 1);
        assert_eq!(m.total(), 6);
    }

    #[test]
    fn accuracy_and_error() {
        let m = cm();
        assert!((m.accuracy() - 4.0 / 6.0).abs() < 1e-15);
        assert!((m.error_rate() - 2.0 / 6.0).abs() < 1e-15);
    }

    #[test]
    fn precision_recall_f1() {
        let m = cm();
        // class 0: TP=2, predicted-as-0 = 3, actual = 3
        assert!((m.precision(0) - 2.0 / 3.0).abs() < 1e-15);
        assert!((m.recall(0) - 2.0 / 3.0).abs() < 1e-15);
        assert!((m.f1(0) - 2.0 / 3.0).abs() < 1e-15);
        // class 2: never predicted
        assert_eq!(m.precision(2), 0.0);
        assert_eq!(m.recall(2), 0.0);
        assert_eq!(m.f1(2), 0.0);
    }

    #[test]
    fn macro_f1_averages() {
        let m = cm();
        let expect = (m.f1(0) + m.f1(1) + m.f1(2)) / 3.0;
        assert!((m.macro_f1() - expect).abs() < 1e-15);
    }

    #[test]
    fn worst_confusion_found() {
        let m = cm();
        let (t, p, n) = m.worst_confusion().unwrap();
        assert!(n == 1);
        assert!(t != p);
    }

    #[test]
    fn perfect_predictions() {
        let m = ConfusionMatrix::from_predictions(&[0, 1, 2], &[0, 1, 2], 3);
        assert_eq!(m.accuracy(), 1.0);
        assert_eq!(m.worst_confusion(), None);
        assert_eq!(m.macro_f1(), 1.0);
    }

    #[test]
    fn empty_input() {
        let m = ConfusionMatrix::from_predictions(&[], &[], 2);
        assert_eq!(m.accuracy(), 0.0);
        assert_eq!(m.total(), 0);
    }
}
