//! Classifiers applied in the embedded (discriminant) space.
//!
//! The paper evaluates every dimensionality-reduction method by the error
//! rate of a simple classifier on the embedded data. We provide the two
//! standard choices: nearest class centroid (what discriminant analysis
//! optimizes for — same-class training points collapse toward their
//! centroid) and k-nearest-neighbours as a cross-check.

use srda_linalg::{vector, Mat};

/// A nearest-class-centroid classifier in embedded space.
#[derive(Debug, Clone)]
pub struct NearestCentroid {
    centroids: Mat,
}

impl NearestCentroid {
    /// Fit from embedded training data (`z`: samples as rows) and labels.
    pub fn fit(z: &Mat, labels: &[usize], n_classes: usize) -> Self {
        let (centroids, _) =
            srda_linalg::stats::class_means(z, labels, n_classes).expect("valid labels");
        NearestCentroid { centroids }
    }

    /// Predict the class of one embedded sample.
    pub fn predict_row(&self, z: &[f64]) -> usize {
        let mut best = (f64::INFINITY, 0usize);
        for k in 0..self.centroids.nrows() {
            let d = vector::dist2_sq(z, self.centroids.row(k));
            if d < best.0 {
                best = (d, k);
            }
        }
        best.1
    }

    /// Predict a batch (rows of `z`).
    pub fn predict(&self, z: &Mat) -> Vec<usize> {
        (0..z.nrows()).map(|i| self.predict_row(z.row(i))).collect()
    }

    /// The per-class centroids (`n_classes × dims`).
    pub fn centroids(&self) -> &Mat {
        &self.centroids
    }
}

/// Fraction of misclassified test samples under nearest-centroid.
pub fn nearest_centroid_error_rate(
    z_train: &Mat,
    y_train: &[usize],
    z_test: &Mat,
    y_test: &[usize],
    n_classes: usize,
) -> f64 {
    let clf = NearestCentroid::fit(z_train, y_train, n_classes);
    let pred = clf.predict(z_test);
    error_rate(&pred, y_test)
}

/// Fraction of misclassified test samples under k-NN (Euclidean, majority
/// vote, ties broken toward the nearest member).
pub fn knn_error_rate(
    z_train: &Mat,
    y_train: &[usize],
    z_test: &Mat,
    y_test: &[usize],
    n_classes: usize,
    k: usize,
) -> f64 {
    let k = k.max(1).min(z_train.nrows());
    let mut wrong = 0usize;
    for t in 0..z_test.nrows() {
        // collect the k smallest distances (simple selection; k is tiny)
        let mut dists: Vec<(f64, usize)> = (0..z_train.nrows())
            .map(|i| (vector::dist2_sq(z_test.row(t), z_train.row(i)), y_train[i]))
            .collect();
        dists.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        let mut votes = vec![0usize; n_classes];
        for &(_, lbl) in dists.iter().take(k) {
            votes[lbl] += 1;
        }
        // majority, ties toward the single nearest neighbour's class
        let max_votes = *votes.iter().max().unwrap();
        let nearest = dists[0].1;
        let pred = if votes[nearest] == max_votes {
            nearest
        } else {
            votes.iter().position(|&v| v == max_votes).unwrap()
        };
        if pred != y_test[t] {
            wrong += 1;
        }
    }
    wrong as f64 / z_test.nrows().max(1) as f64
}

/// Fraction of mismatches between predictions and ground truth.
pub fn error_rate(pred: &[usize], truth: &[usize]) -> f64 {
    debug_assert_eq!(pred.len(), truth.len());
    if pred.is_empty() {
        return 0.0;
    }
    let wrong = pred.iter().zip(truth).filter(|(p, t)| p != t).count();
    wrong as f64 / pred.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn embedded() -> (Mat, Vec<usize>) {
        // two tight clusters on a line
        let z = Mat::from_rows(&[
            vec![0.0],
            vec![0.1],
            vec![-0.1],
            vec![5.0],
            vec![5.1],
            vec![4.9],
        ])
        .unwrap();
        (z, vec![0, 0, 0, 1, 1, 1])
    }

    #[test]
    fn centroid_classifier_perfect_on_separated_data() {
        let (z, y) = embedded();
        let clf = NearestCentroid::fit(&z, &y, 2);
        assert_eq!(clf.predict(&z), y);
        assert_eq!(clf.predict_row(&[0.4]), 0);
        assert_eq!(clf.predict_row(&[4.0]), 1);
    }

    #[test]
    fn centroids_are_class_means() {
        let (z, y) = embedded();
        let clf = NearestCentroid::fit(&z, &y, 2);
        assert!((clf.centroids()[(0, 0)] - 0.0).abs() < 1e-12);
        assert!((clf.centroids()[(1, 0)] - 5.0).abs() < 1e-12);
    }

    #[test]
    fn error_rate_counts_mismatches() {
        assert_eq!(error_rate(&[0, 1, 1, 0], &[0, 1, 0, 0]), 0.25);
        assert_eq!(error_rate(&[], &[]), 0.0);
    }

    #[test]
    fn nearest_centroid_error_end_to_end() {
        let (z, y) = embedded();
        let z_test = Mat::from_rows(&[vec![0.2], vec![4.8], vec![2.4]]).unwrap();
        let y_test = vec![0, 1, 0]; // midpoint 2.4 is nearer to centroid 0
        let e = nearest_centroid_error_rate(&z, &y, &z_test, &y_test, 2);
        assert_eq!(e, 0.0);
        let y_bad = vec![1, 0, 1];
        let e_bad = nearest_centroid_error_rate(&z, &y, &z_test, &y_bad, 2);
        assert_eq!(e_bad, 1.0);
    }

    #[test]
    fn knn_matches_intuition() {
        let (z, y) = embedded();
        let z_test = Mat::from_rows(&[vec![0.05], vec![5.05]]).unwrap();
        let e = knn_error_rate(&z, &y, &z_test, &[0, 1], 2, 3);
        assert_eq!(e, 0.0);
    }

    #[test]
    fn knn_k1_is_nearest_neighbour() {
        let z_train = Mat::from_rows(&[vec![0.0], vec![10.0]]).unwrap();
        let y_train = vec![0, 1];
        let z_test = Mat::from_rows(&[vec![4.0], vec![6.0]]).unwrap();
        let e = knn_error_rate(&z_train, &y_train, &z_test, &[0, 1], 2, 1);
        assert_eq!(e, 0.0);
    }

    #[test]
    fn knn_k_larger_than_train_is_clamped() {
        let (z, y) = embedded();
        let e = knn_error_rate(&z, &y, &z, &y, 2, 100);
        // with k = all samples and balanced classes, ties go to nearest
        assert!(e <= 0.5);
    }
}
