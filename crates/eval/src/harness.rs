//! The per-split experiment runner: fit one algorithm, time it, count its
//! flam, and score it with the nearest-centroid classifier.
//!
//! The runner also owns the **memory-budget policy** that reproduces the
//! paper's Tables IX/X: algorithms that must densify or center a large
//! sparse matrix are *skipped* (with a reason) instead of run, exactly as
//! the paper's 2 GB machine could not run LDA/RLDA/IDR-QR on the larger
//! 20Newsgroups training sets.

use crate::classify::nearest_centroid_error_rate;
use srda::{IdrQr, IdrQrConfig, Lda, LdaConfig, Rlda, RldaConfig, Srda, SrdaConfig, SrdaError};
use srda_linalg::{flam, Mat};
use srda_sparse::CsrMatrix;
use std::time::Instant;

/// Which algorithm to run (mirrors the paper's §IV.B list).
#[derive(Debug, Clone)]
pub enum Algo {
    /// Classical LDA with SVD stabilization (§II-A).
    Lda,
    /// Regularized LDA with Tikhonov parameter `alpha`.
    Rlda {
        /// The regularization parameter.
        alpha: f64,
    },
    /// SRDA with the given configuration.
    Srda(SrdaConfig),
    /// IDR/QR with regularizer `lambda`.
    IdrQr {
        /// The regularization parameter.
        lambda: f64,
    },
}

impl Algo {
    /// Display name matching the paper's table headers.
    pub fn name(&self) -> &'static str {
        match self {
            Algo::Lda => "LDA",
            Algo::Rlda { .. } => "RLDA",
            Algo::Srda(_) => "SRDA",
            Algo::IdrQr { .. } => "IDR/QR",
        }
    }
}

/// Outcome of one (algorithm, split) run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Test error rate in `[0, 1]`; `None` when skipped.
    pub error_rate: Option<f64>,
    /// Training wall-time in seconds; `None` when skipped.
    pub train_secs: Option<f64>,
    /// flam consumed during training; `None` when skipped.
    pub train_flam: Option<u64>,
    /// Why the run was skipped (memory budget), if it was.
    pub skipped: Option<String>,
}

impl RunOutcome {
    fn skipped(reason: String) -> Self {
        RunOutcome {
            error_rate: None,
            train_secs: None,
            train_flam: None,
            skipped: Some(reason),
        }
    }
}

/// Run one algorithm on a dense train/test split.
pub fn run_dense(
    algo: &Algo,
    x_train: &Mat,
    y_train: &[usize],
    x_test: &Mat,
    y_test: &[usize],
    n_classes: usize,
    memory_budget_bytes: Option<usize>,
) -> RunOutcome {
    let start = Instant::now();
    // a private sink, not the global counter, so concurrently-running
    // splits (e.g. parallel test binaries) cannot pollute each other
    let (fitted, used_flam) = flam::measure(|| match algo {
        Algo::Lda => Lda::new(LdaConfig {
            memory_budget_bytes,
            ..LdaConfig::default()
        })
        .fit_dense(x_train, y_train),
        Algo::Rlda { alpha } => Rlda::new(RldaConfig {
            alpha: *alpha,
            memory_budget_bytes,
            ..RldaConfig::default()
        })
        .fit_dense(x_train, y_train),
        Algo::Srda(cfg) => {
            let mut cfg = cfg.clone();
            cfg.memory_budget_bytes = memory_budget_bytes;
            Srda::new(cfg)
                .fit_dense(x_train, y_train)
                .map(|m| m.embedding().clone())
        }
        Algo::IdrQr { lambda } => IdrQr::new(IdrQrConfig {
            lambda: *lambda,
            memory_budget_bytes,
            ..IdrQrConfig::default()
        })
        .fit_dense(x_train, y_train),
    });
    let secs = start.elapsed().as_secs_f64();

    let emb = match fitted {
        Ok(e) => e,
        Err(SrdaError::MemoryBudgetExceeded { .. }) => {
            return RunOutcome::skipped("memory budget".into())
        }
        // a governed arm whose budget ran out is a skip, not a failure:
        // the comparison tables must distinguish "too slow for the
        // budget" (the paper's dashes) from a numerical breakdown
        Err(SrdaError::Interrupted { reason, .. }) => {
            return RunOutcome::skipped(format!("interrupted: {reason}"))
        }
        Err(e) => return RunOutcome::skipped(format!("failed: {e}")),
    };

    let z_train = emb.transform_dense(x_train).expect("train transform");
    let z_test = emb.transform_dense(x_test).expect("test transform");
    let err = nearest_centroid_error_rate(&z_train, y_train, &z_test, y_test, n_classes);
    RunOutcome {
        error_rate: Some(err),
        train_secs: Some(secs),
        train_flam: Some(used_flam),
        skipped: None,
    }
}

/// Run one algorithm on a sparse train/test split.
///
/// SRDA consumes the CSR matrices directly. LDA, RLDA, and IDR/QR need a
/// dense matrix, so the training data is densified **through the memory
/// budget**; if it doesn't fit, the run is skipped — the Tables IX/X
/// behaviour.
pub fn run_sparse(
    algo: &Algo,
    x_train: &CsrMatrix,
    y_train: &[usize],
    x_test: &CsrMatrix,
    y_test: &[usize],
    n_classes: usize,
    memory_budget_bytes: Option<usize>,
) -> RunOutcome {
    if let Algo::Srda(cfg) = algo {
        let start = Instant::now();
        let mut cfg = cfg.clone();
        cfg.memory_budget_bytes = memory_budget_bytes;
        let (fitted, used_flam) = flam::measure(|| Srda::new(cfg).fit_sparse(x_train, y_train));
        let secs = start.elapsed().as_secs_f64();
        let model = match fitted {
            Ok(m) => m,
            Err(SrdaError::MemoryBudgetExceeded { .. }) => {
                return RunOutcome::skipped("memory budget".into())
            }
            Err(SrdaError::Interrupted { reason, .. }) => {
                return RunOutcome::skipped(format!("interrupted: {reason}"))
            }
            Err(e) => return RunOutcome::skipped(format!("failed: {e}")),
        };
        let z_train = model
            .embedding()
            .transform_sparse(x_train)
            .expect("train transform");
        let z_test = model
            .embedding()
            .transform_sparse(x_test)
            .expect("test transform");
        let err = nearest_centroid_error_rate(&z_train, y_train, &z_test, y_test, n_classes);
        return RunOutcome {
            error_rate: Some(err),
            train_secs: Some(secs),
            train_flam: Some(used_flam),
            skipped: None,
        };
    }

    // eigen-based baselines must densify the training data first
    let budget = memory_budget_bytes.unwrap_or(usize::MAX);
    let Some(dense_train) = x_train.to_dense_bounded(budget) else {
        return RunOutcome::skipped("memory budget (densification)".into());
    };
    // the classifier also needs the embedded test set; transform_sparse
    // avoids densifying the (larger) test matrix
    let start = Instant::now();
    let (fitted, used_flam) = flam::measure(|| match algo {
        Algo::Lda => Lda::new(LdaConfig {
            memory_budget_bytes,
            ..LdaConfig::default()
        })
        .fit_dense(&dense_train, y_train),
        Algo::Rlda { alpha } => Rlda::new(RldaConfig {
            alpha: *alpha,
            memory_budget_bytes,
            ..RldaConfig::default()
        })
        .fit_dense(&dense_train, y_train),
        Algo::IdrQr { lambda } => IdrQr::new(IdrQrConfig {
            lambda: *lambda,
            memory_budget_bytes,
            ..IdrQrConfig::default()
        })
        .fit_dense(&dense_train, y_train),
        Algo::Srda(_) => unreachable!("handled above"),
    });
    let secs = start.elapsed().as_secs_f64();
    let emb = match fitted {
        Ok(e) => e,
        Err(SrdaError::MemoryBudgetExceeded { .. }) => {
            return RunOutcome::skipped("memory budget".into())
        }
        Err(SrdaError::Interrupted { reason, .. }) => {
            return RunOutcome::skipped(format!("interrupted: {reason}"))
        }
        Err(e) => return RunOutcome::skipped(format!("failed: {e}")),
    };
    let z_train = emb.transform_dense(&dense_train).expect("train transform");
    let z_test = emb.transform_sparse(x_test).expect("test transform");
    let err = nearest_centroid_error_rate(&z_train, y_train, &z_test, y_test, n_classes);
    RunOutcome {
        error_rate: Some(err),
        train_secs: Some(secs),
        train_flam: Some(used_flam),
        skipped: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srda_data::{mnist_like, per_class_split};

    fn dense_setup() -> (Mat, Vec<usize>, Mat, Vec<usize>, usize) {
        let d = mnist_like(0.05, 3);
        let split = per_class_split(&d.labels, 10, 1);
        let tr = d.select(&split.train);
        let te = d.select(&split.test);
        (tr.x, tr.labels, te.x, te.labels, d.n_classes)
    }

    #[test]
    fn all_algorithms_run_on_dense_data() {
        let (xtr, ytr, xte, yte, c) = dense_setup();
        for algo in [
            Algo::Lda,
            Algo::Rlda { alpha: 1.0 },
            Algo::Srda(SrdaConfig::default()),
            Algo::IdrQr { lambda: 1.0 },
        ] {
            let out = run_dense(&algo, &xtr, &ytr, &xte, &yte, c, None);
            assert!(
                out.skipped.is_none(),
                "{} skipped: {:?}",
                algo.name(),
                out.skipped
            );
            let err = out.error_rate.unwrap();
            assert!((0.0..=1.0).contains(&err));
            assert!(out.train_secs.unwrap() >= 0.0);
            assert!(out.train_flam.unwrap() > 0);
        }
    }

    #[test]
    fn regularized_methods_beat_chance_comfortably() {
        let (xtr, ytr, xte, yte, c) = dense_setup();
        let chance = 1.0 - 1.0 / c as f64;
        for algo in [Algo::Rlda { alpha: 1.0 }, Algo::Srda(SrdaConfig::default())] {
            let out = run_dense(&algo, &xtr, &ytr, &xte, &yte, c, None);
            let err = out.error_rate.unwrap();
            assert!(
                err < 0.5 * chance,
                "{} error {err} vs chance {chance}",
                algo.name()
            );
        }
    }

    #[test]
    fn memory_budget_skips_eigen_methods() {
        let (xtr, ytr, xte, yte, c) = dense_setup();
        let out = run_dense(&Algo::Lda, &xtr, &ytr, &xte, &yte, c, Some(1024));
        assert!(out.skipped.is_some());
        assert!(out.error_rate.is_none());
    }

    #[test]
    fn sparse_runner_srda_vs_densifying_baseline() {
        let d = srda_data::newsgroups_like(0.02, 5);
        let split = per_class_split(&d.labels, 8, 2);
        let tr = d.select(&split.train);
        let te = d.select(&split.test);
        let srda_out = run_sparse(
            &Algo::Srda(SrdaConfig::lsqr_default()),
            &tr.x,
            &tr.labels,
            &te.x,
            &te.labels,
            d.n_classes,
            None,
        );
        assert!(srda_out.skipped.is_none(), "{:?}", srda_out.skipped);
        assert!(srda_out.error_rate.unwrap() < 0.9);

        // a tight budget skips the densifying baseline but not SRDA+LSQR
        let tight = Some(tr.x.memory_bytes()); // CSR fits; dense won't
        let lda_out = run_sparse(
            &Algo::Lda,
            &tr.x,
            &tr.labels,
            &te.x,
            &te.labels,
            d.n_classes,
            tight,
        );
        assert!(lda_out.skipped.is_some());
        let srda_tight = run_sparse(
            &Algo::Srda(SrdaConfig::lsqr_default()),
            &tr.x,
            &tr.labels,
            &te.x,
            &te.labels,
            d.n_classes,
            tight,
        );
        assert!(srda_tight.skipped.is_none());
    }

    #[test]
    fn algo_names() {
        assert_eq!(Algo::Lda.name(), "LDA");
        assert_eq!(Algo::Rlda { alpha: 1.0 }.name(), "RLDA");
        assert_eq!(Algo::Srda(SrdaConfig::default()).name(), "SRDA");
        assert_eq!(Algo::IdrQr { lambda: 1.0 }.name(), "IDR/QR");
    }
}
