//! Stratified k-fold cross-validation — the standard way a downstream
//! user would pick SRDA's `α` (the paper's Fig 5 sweeps the parameter
//! against the *test* set; a real deployment cross-validates instead).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Stratified k-fold assignment: returns `folds[i] ∈ 0..k` per sample,
/// with each class spread as evenly as possible across folds.
pub fn stratified_folds(labels: &[usize], k: usize, seed: u64) -> Vec<usize> {
    assert!(k >= 2, "need at least 2 folds");
    let mut rng = SmallRng::seed_from_u64(seed);
    let c = labels.iter().max().map_or(0, |&m| m + 1);
    let mut buckets = vec![Vec::new(); c];
    for (i, &l) in labels.iter().enumerate() {
        buckets[l].push(i);
    }
    let mut folds = vec![0usize; labels.len()];
    for bucket in &mut buckets {
        // shuffle within the class, then deal round-robin
        for i in (1..bucket.len()).rev() {
            let j = rng.gen_range(0..=i);
            bucket.swap(i, j);
        }
        for (pos, &i) in bucket.iter().enumerate() {
            folds[i] = pos % k;
        }
    }
    folds
}

/// The train/validation index pair of one fold.
pub fn fold_split(folds: &[usize], fold: usize) -> (Vec<usize>, Vec<usize>) {
    let mut train = Vec::new();
    let mut val = Vec::new();
    for (i, &f) in folds.iter().enumerate() {
        if f == fold {
            val.push(i);
        } else {
            train.push(i);
        }
    }
    (train, val)
}

/// Cross-validate a scoring closure over k folds: `score(train_idx,
/// val_idx)` returns a per-fold score (e.g. validation error); the mean is
/// returned.
pub fn cross_validate(
    labels: &[usize],
    k: usize,
    seed: u64,
    mut score: impl FnMut(&[usize], &[usize]) -> f64,
) -> f64 {
    let folds = stratified_folds(labels, k, seed);
    let mut total = 0.0;
    for fold in 0..k {
        let (train, val) = fold_split(&folds, fold);
        total += score(&train, &val);
    }
    total / k as f64
}

/// Grid-search SRDA's `α` by k-fold cross-validated error; returns the
/// winning `(alpha, cv_error)`.
pub fn select_alpha_dense(
    x: &srda_linalg::Mat,
    labels: &[usize],
    alphas: &[f64],
    k: usize,
    seed: u64,
) -> (f64, f64) {
    use srda::{Srda, SrdaConfig};
    let n_classes = labels.iter().max().unwrap() + 1;
    let mut best = (alphas[0], f64::INFINITY);
    for &alpha in alphas {
        let err = cross_validate(labels, k, seed, |train_idx, val_idx| {
            let xt = x.select_rows(train_idx);
            let yt: Vec<usize> = train_idx.iter().map(|&i| labels[i]).collect();
            let xv = x.select_rows(val_idx);
            let yv: Vec<usize> = val_idx.iter().map(|&i| labels[i]).collect();
            let model = Srda::new(SrdaConfig {
                alpha,
                ..SrdaConfig::default()
            })
            .fit_dense(&xt, &yt)
            .expect("cv fit");
            let zt = model.embedding().transform_dense(&xt).unwrap();
            let zv = model.embedding().transform_dense(&xv).unwrap();
            crate::classify::nearest_centroid_error_rate(&zt, &yt, &zv, &yv, n_classes)
        });
        if err < best.1 {
            best = (alpha, err);
        }
    }
    best
}

/// Grid-search SRDA's `α` on sparse data (LSQR solver) by k-fold
/// cross-validated error; returns the winning `(alpha, cv_error)`.
pub fn select_alpha_sparse(
    x: &srda_sparse::CsrMatrix,
    labels: &[usize],
    alphas: &[f64],
    lsqr_iterations: usize,
    k: usize,
    seed: u64,
) -> (f64, f64) {
    use srda::{Srda, SrdaConfig, SrdaSolver};
    let n_classes = labels.iter().max().unwrap() + 1;
    let mut best = (alphas[0], f64::INFINITY);
    for &alpha in alphas {
        let err = cross_validate(labels, k, seed, |train_idx, val_idx| {
            let xt = x.select_rows(train_idx);
            let yt: Vec<usize> = train_idx.iter().map(|&i| labels[i]).collect();
            let xv = x.select_rows(val_idx);
            let yv: Vec<usize> = val_idx.iter().map(|&i| labels[i]).collect();
            let model = Srda::new(SrdaConfig {
                alpha,
                solver: SrdaSolver::Lsqr {
                    max_iter: lsqr_iterations,
                    tol: 0.0,
                },
                ..SrdaConfig::default()
            })
            .fit_sparse(&xt, &yt)
            .expect("cv fit");
            let zt = model.embedding().transform_sparse(&xt).unwrap();
            let zv = model.embedding().transform_sparse(&xv).unwrap();
            crate::classify::nearest_centroid_error_rate(&zt, &yt, &zv, &yv, n_classes)
        });
        if err < best.1 {
            best = (alpha, err);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels() -> Vec<usize> {
        let mut l = vec![0; 12];
        l.extend(vec![1; 12]);
        l.extend(vec![2; 12]);
        l
    }

    #[test]
    fn folds_are_stratified() {
        let l = labels();
        let folds = stratified_folds(&l, 4, 1);
        for fold in 0..4 {
            for class in 0..3 {
                let count = l
                    .iter()
                    .zip(&folds)
                    .filter(|&(&lab, &f)| lab == class && f == fold)
                    .count();
                assert_eq!(count, 3, "class {class} fold {fold}");
            }
        }
    }

    #[test]
    fn fold_split_partitions() {
        let folds = stratified_folds(&labels(), 3, 2);
        let (train, val) = fold_split(&folds, 0);
        assert_eq!(train.len() + val.len(), 36);
        let mut all: Vec<usize> = train.iter().chain(&val).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..36).collect::<Vec<_>>());
    }

    #[test]
    fn deterministic_per_seed() {
        let l = labels();
        assert_eq!(stratified_folds(&l, 3, 9), stratified_folds(&l, 3, 9));
        assert_ne!(stratified_folds(&l, 3, 9), stratified_folds(&l, 3, 10));
    }

    #[test]
    fn cross_validate_averages() {
        let l = labels();
        // scoring function returns the fold's validation fraction
        let avg = cross_validate(&l, 4, 1, |_, val| val.len() as f64);
        assert!((avg - 9.0).abs() < 1e-12);
    }

    #[test]
    fn alpha_selection_runs_and_picks_from_grid() {
        let data = srda_data::mnist_like(0.04, 2);
        let grid = [0.1, 1.0, 10.0];
        let (alpha, err) = select_alpha_dense(&data.x, &data.labels, &grid, 3, 5);
        assert!(grid.contains(&alpha));
        assert!((0.0..=1.0).contains(&err));
    }

    #[test]
    #[should_panic(expected = "at least 2 folds")]
    fn rejects_single_fold() {
        stratified_folds(&labels(), 1, 0);
    }

    #[test]
    fn sparse_alpha_selection_runs_and_picks_from_grid() {
        let data = srda_data::newsgroups_like(0.02, 6);
        let grid = [0.1, 1.0];
        let (alpha, err) = select_alpha_sparse(&data.x, &data.labels, &grid, 10, 3, 4);
        assert!(grid.contains(&alpha));
        assert!((0.0..=1.0).contains(&err));
    }
}
