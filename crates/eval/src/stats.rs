//! Aggregation of per-split results into `mean ± std`, the form every
//! table in the paper reports.

/// Mean and (sample) standard deviation of a set of observations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Aggregate {
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (divisor `n − 1`; 0 for fewer than two
    /// observations).
    pub std: f64,
    /// Number of observations aggregated.
    pub count: usize,
}

impl Aggregate {
    /// Aggregate a slice of observations.
    pub fn from_values(values: &[f64]) -> Aggregate {
        let n = values.len();
        if n == 0 {
            return Aggregate {
                mean: 0.0,
                std: 0.0,
                count: 0,
            };
        }
        let mean = values.iter().sum::<f64>() / n as f64;
        let std = if n < 2 {
            0.0
        } else {
            let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (n - 1) as f64;
            var.sqrt()
        };
        Aggregate {
            mean,
            std,
            count: n,
        }
    }

    /// Render as the paper's `mean±std` percentage (inputs are fractions).
    pub fn as_percent(&self) -> String {
        format!("{:.1}±{:.1}", self.mean * 100.0, self.std * 100.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        let a = Aggregate::from_values(&[1.0, 2.0, 3.0]);
        assert!((a.mean - 2.0).abs() < 1e-15);
        assert!((a.std - 1.0).abs() < 1e-12);
        assert_eq!(a.count, 3);
    }

    #[test]
    fn degenerate_cases() {
        let empty = Aggregate::from_values(&[]);
        assert_eq!(empty.mean, 0.0);
        assert_eq!(empty.count, 0);
        let single = Aggregate::from_values(&[5.0]);
        assert_eq!(single.mean, 5.0);
        assert_eq!(single.std, 0.0);
    }

    #[test]
    fn percent_rendering() {
        let a = Aggregate::from_values(&[0.19, 0.21]);
        assert_eq!(a.as_percent(), "20.0±1.4");
    }

    #[test]
    fn constant_values_have_zero_std() {
        let a = Aggregate::from_values(&[0.5; 10]);
        assert_eq!(a.std, 0.0);
    }
}
