//! # srda-eval
//!
//! Evaluation harness for the SRDA reproduction: classification on learned
//! embeddings, error-rate aggregation over random splits, and a runner that
//! measures training wall-time and flam per algorithm — everything the
//! reproduction binaries need to print the paper's tables.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![allow(clippy::needless_range_loop)]

pub mod classify;
pub mod cv;
pub mod harness;
pub mod metrics;
pub mod stats;

pub use classify::{knn_error_rate, nearest_centroid_error_rate, NearestCentroid};
pub use cv::{cross_validate, select_alpha_dense, select_alpha_sparse, stratified_folds};
pub use harness::{run_dense, run_sparse, Algo, RunOutcome};
pub use metrics::ConfusionMatrix;
pub use stats::Aggregate;
