//! Standard arithmetic operator impls for [`Mat`] references.
//!
//! These are ergonomic sugar over the checked methods in
//! [`crate::matrix`]/[`crate::ops`]; because Rust operators cannot return
//! `Result`, shape mismatches **panic** here (with the underlying error's
//! message). Library code on fallible paths should keep calling the
//! checked APIs; quick scripts and tests get `&a * &b`.

use crate::matrix::Mat;
use crate::ops;
use std::ops::{Add, Mul, Neg, Sub};

impl Add for &Mat {
    type Output = Mat;
    fn add(self, rhs: &Mat) -> Mat {
        Mat::add(self, rhs).expect("matrix addition shape mismatch")
    }
}

impl Sub for &Mat {
    type Output = Mat;
    fn sub(self, rhs: &Mat) -> Mat {
        Mat::sub(self, rhs).expect("matrix subtraction shape mismatch")
    }
}

impl Mul for &Mat {
    type Output = Mat;
    fn mul(self, rhs: &Mat) -> Mat {
        ops::matmul(self, rhs).expect("matrix product shape mismatch")
    }
}

impl Mul<f64> for &Mat {
    type Output = Mat;
    fn mul(self, rhs: f64) -> Mat {
        self.scaled(rhs)
    }
}

impl Mul<&Mat> for f64 {
    type Output = Mat;
    fn mul(self, rhs: &Mat) -> Mat {
        rhs.scaled(self)
    }
}

impl Neg for &Mat {
    type Output = Mat;
    fn neg(self) -> Mat {
        self.scaled(-1.0)
    }
}

/// Matrix–vector product sugar: `&a * &x[..]`.
impl Mul<&[f64]> for &Mat {
    type Output = Vec<f64>;
    fn mul(self, rhs: &[f64]) -> Vec<f64> {
        ops::matvec(self, rhs).expect("matrix-vector shape mismatch")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a() -> Mat {
        Mat::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap()
    }

    #[test]
    fn add_sub_neg() {
        let m = a();
        let s = &m + &m;
        assert_eq!(s[(1, 1)], 8.0);
        let d = &s - &m;
        assert!(d.approx_eq(&m, 0.0));
        let n = -&m;
        assert_eq!(n[(0, 0)], -1.0);
    }

    #[test]
    fn matmul_operator() {
        let m = a();
        let p = &m * &Mat::identity(2);
        assert!(p.approx_eq(&m, 0.0));
        let sq = &m * &m;
        assert_eq!(sq[(0, 0)], 7.0); // 1·1 + 2·3
    }

    #[test]
    fn scalar_multiplication_both_sides() {
        let m = a();
        assert!((&m * 2.0).approx_eq(&(2.0 * &m), 0.0));
        assert_eq!((&m * 2.0)[(1, 0)], 6.0);
    }

    #[test]
    fn matvec_operator() {
        let m = a();
        let y = &m * &[1.0, -1.0][..];
        assert_eq!(y, vec![-1.0, -1.0]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn mismatched_add_panics() {
        let _ = &a() + &Mat::zeros(3, 3);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn mismatched_mul_panics() {
        let _ = &a() * &Mat::zeros(3, 3);
    }
}
