//! LU factorization with partial pivoting.
//!
//! Not on SRDA's critical path (the paper's systems are all symmetric
//! positive definite or least-squares), but the workspace needs a general
//! square solver as a test oracle and for the occasional non-symmetric
//! system in the evaluation harness.

use crate::error::LinalgError;
use crate::matrix::Mat;
use crate::{flam, Result};

/// An LU factorization `P·A = L·U` with partial (row) pivoting.
///
/// `L` and `U` are packed into a single matrix: the unit diagonal of `L` is
/// implicit.
#[derive(Debug, Clone)]
pub struct Lu {
    lu: Mat,
    /// Row permutation: `perm[i]` is the original index of pivoted row `i`.
    perm: Vec<usize>,
    /// Sign of the permutation (+1/-1), for determinants.
    sign: f64,
}

impl Lu {
    /// Factor a square matrix. Fails on exact singularity.
    pub fn factor(a: &Mat) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare {
                rows: a.nrows(),
                cols: a.ncols(),
            });
        }
        let n = a.nrows();
        flam::add((n * n * n / 3) as u64);
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut sign = 1.0;

        for k in 0..n {
            // pivot: largest |entry| in column k at or below the diagonal
            let mut p = k;
            let mut pmax = lu[(k, k)].abs();
            for i in (k + 1)..n {
                let v = lu[(i, k)].abs();
                if v > pmax {
                    pmax = v;
                    p = i;
                }
            }
            if pmax == 0.0 {
                return Err(LinalgError::Singular { pivot: k });
            }
            if p != k {
                perm.swap(p, k);
                sign = -sign;
                // swap rows p and k
                for j in 0..n {
                    let tmp = lu[(k, j)];
                    lu[(k, j)] = lu[(p, j)];
                    lu[(p, j)] = tmp;
                }
            }
            let pivot = lu[(k, k)];
            for i in (k + 1)..n {
                let factor = lu[(i, k)] / pivot;
                lu[(i, k)] = factor;
                if factor != 0.0 {
                    for j in (k + 1)..n {
                        let delta = factor * lu[(k, j)];
                        lu[(i, j)] -= delta;
                    }
                }
            }
        }
        Ok(Lu { lu, perm, sign })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.lu.nrows()
    }

    /// Solve `A·x = b`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "lu solve",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        flam::add((n * n) as u64);
        // apply permutation
        let mut x: Vec<f64> = self.perm.iter().map(|&i| b[i]).collect();
        // forward substitution with unit lower triangle
        for i in 0..n {
            let row = self.lu.row(i);
            let mut acc = x[i];
            for j in 0..i {
                acc -= row[j] * x[j];
            }
            x[i] = acc;
        }
        // back substitution with upper triangle
        for i in (0..n).rev() {
            let row = self.lu.row(i);
            let mut acc = x[i];
            for j in (i + 1)..n {
                acc -= row[j] * x[j];
            }
            x[i] = acc / row[i];
        }
        Ok(x)
    }

    /// Solve for a matrix of right-hand sides (columns of `b`).
    pub fn solve_mat(&self, b: &Mat) -> Result<Mat> {
        if b.nrows() != self.dim() {
            return Err(LinalgError::ShapeMismatch {
                op: "lu solve_mat",
                lhs: (self.dim(), self.dim()),
                rhs: b.shape(),
            });
        }
        let mut out = Mat::zeros(b.nrows(), b.ncols());
        for j in 0..b.ncols() {
            let x = self.solve(&b.col(j))?;
            out.set_col(j, &x);
        }
        Ok(out)
    }

    /// Determinant of the original matrix.
    pub fn det(&self) -> f64 {
        self.sign * self.lu.diag().iter().product::<f64>()
    }

    /// Explicit inverse (prefer `solve` in production code; this exists for
    /// tests and small reduced systems).
    pub fn inverse(&self) -> Result<Mat> {
        self.solve_mat(&Mat::identity(self.dim()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{matmul, matvec};

    fn test_mat() -> Mat {
        Mat::from_rows(&[
            vec![2.0, 1.0, 1.0],
            vec![4.0, -6.0, 0.0],
            vec![-2.0, 7.0, 2.0],
        ])
        .unwrap()
    }

    #[test]
    fn solve_roundtrip() {
        let a = test_mat();
        let lu = Lu::factor(&a).unwrap();
        let x_true = [1.0, -2.0, 3.0];
        let b = matvec(&a, &x_true).unwrap();
        let x = lu.solve(&b).unwrap();
        for (u, v) in x.iter().zip(&x_true) {
            assert!((u - v).abs() < 1e-12);
        }
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Mat::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap();
        let lu = Lu::factor(&a).unwrap();
        let x = lu.solve(&[2.0, 3.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-14);
        assert!((x[1] - 2.0).abs() < 1e-14);
    }

    #[test]
    fn det_known_values() {
        let a = test_mat(); // det = 2*(-12-0) -1*(8-0) +1*(28-12) = -24-8+16 = -16
        let lu = Lu::factor(&a).unwrap();
        assert!((lu.det() - (-16.0)).abs() < 1e-10);
        let id = Lu::factor(&Mat::identity(5)).unwrap();
        assert!((id.det() - 1.0).abs() < 1e-14);
    }

    #[test]
    fn det_sign_tracks_permutation() {
        let a = Mat::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap();
        let lu = Lu::factor(&a).unwrap();
        assert!((lu.det() + 1.0).abs() < 1e-14);
    }

    #[test]
    fn inverse_times_a_is_identity() {
        let a = test_mat();
        let inv = Lu::factor(&a).unwrap().inverse().unwrap();
        let prod = matmul(&a, &inv).unwrap();
        assert!(prod.approx_eq(&Mat::identity(3), 1e-11));
    }

    #[test]
    fn singular_detected() {
        let a = Mat::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]).unwrap();
        assert!(matches!(Lu::factor(&a), Err(LinalgError::Singular { .. })));
    }

    #[test]
    fn non_square_rejected() {
        assert!(Lu::factor(&Mat::zeros(2, 3)).is_err());
    }

    #[test]
    fn solve_mat_multiple_rhs() {
        let a = test_mat();
        let lu = Lu::factor(&a).unwrap();
        let b = Mat::from_fn(3, 2, |i, j| (i + j) as f64 + 1.0);
        let x = lu.solve_mat(&b).unwrap();
        let recon = matmul(&a, &x).unwrap();
        assert!(recon.approx_eq(&b, 1e-11));
    }

    #[test]
    fn rhs_length_checked() {
        let lu = Lu::factor(&Mat::identity(3)).unwrap();
        assert!(lu.solve(&[1.0, 2.0]).is_err());
    }
}
