//! Symmetric eigendecomposition.
//!
//! Householder tridiagonalization ([`crate::tridiagonal`]) followed by the
//! implicit-shift QL iteration with Wilkinson-style shifts. This is the
//! `O(n³)` dense eigensolver whose cost the paper's Table I charges to
//! classical LDA (`9/2·t³` flam for an eigendecomposition with vectors); the
//! whole point of SRDA is to *avoid* calling this on anything larger than a
//! `c × c` matrix.

use crate::error::LinalgError;
use crate::matrix::Mat;
use crate::tridiagonal::tridiagonalize;
use crate::{flam, Result};

/// Eigendecomposition `A = V·diag(λ)·Vᵀ` of a symmetric matrix, with
/// eigenvalues sorted in **descending** order and eigenvectors as the
/// corresponding **columns** of `V`.
#[derive(Debug, Clone)]
pub struct SymmetricEigen {
    /// Eigenvalues, descending.
    pub values: Vec<f64>,
    /// Orthonormal eigenvectors; column `k` pairs with `values[k]`.
    pub vectors: Mat,
}

impl SymmetricEigen {
    /// Compute the full eigendecomposition of a symmetric matrix (only the
    /// lower triangle is read).
    pub fn factor(a: &Mat) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare {
                rows: a.nrows(),
                cols: a.ncols(),
            });
        }
        let n = a.nrows();
        // Paper's accounting: symmetric eig with vectors ≈ 9/2 n³ flam.
        // tridiagonalize() already charges 4/3 n³; charge the remainder here.
        flam::add((9 * n * n * n / 2).saturating_sub(4 * n * n * n / 3) as u64);

        let tri = tridiagonalize(a)?;
        let mut d = tri.d;
        let mut e = tri.e;
        let mut z = tri.q;
        ql_implicit(&mut d, &mut e, &mut z)?;

        // sort descending, permuting columns of z
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&i, &j| d[j].partial_cmp(&d[i]).unwrap());
        let values: Vec<f64> = order.iter().map(|&i| d[i]).collect();
        let vectors = z.select_cols(&order);
        Ok(SymmetricEigen { values, vectors })
    }

    /// Number of eigenvalues exceeding `tol · max|λ|` in magnitude.
    pub fn rank(&self, tol: f64) -> usize {
        let max = self.values.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        if max == 0.0 {
            return 0;
        }
        self.values.iter().filter(|v| v.abs() > tol * max).count()
    }

    /// The eigenvector paired with `values[k]`, as an owned vector.
    pub fn vector(&self, k: usize) -> Vec<f64> {
        self.vectors.col(k)
    }
}

/// Implicit-shift QL iteration on a tridiagonal matrix, rotating the columns
/// of `z` along. On return `d` holds eigenvalues (unsorted), `z`'s columns
/// the corresponding eigenvectors.
fn ql_implicit(d: &mut [f64], e: &mut [f64], z: &mut Mat) -> Result<()> {
    let n = d.len();
    if n == 0 {
        return Ok(());
    }
    // shift off-diagonal storage down by one (e[l] couples d[l], d[l+1])
    for i in 1..n {
        e[i - 1] = e[i];
    }
    e[n - 1] = 0.0;

    const MAX_ITER: usize = 50;
    for l in 0..n {
        let mut iter = 0;
        loop {
            // locate a negligible off-diagonal element
            let mut m = l;
            while m + 1 < n {
                let dd = d[m].abs() + d[m + 1].abs();
                if e[m].abs() <= f64::EPSILON * dd {
                    break;
                }
                m += 1;
            }
            if m == l {
                break;
            }
            iter += 1;
            if iter > MAX_ITER {
                return Err(LinalgError::NoConvergence {
                    algorithm: "symmetric QL",
                    iterations: MAX_ITER,
                });
            }
            // Wilkinson-style shift from the leading 2x2
            let mut g = (d[l + 1] - d[l]) / (2.0 * e[l]);
            let mut r = g.hypot(1.0);
            let denom = g + if g >= 0.0 { r.abs() } else { -r.abs() };
            g = d[m] - d[l] + e[l] / denom;
            let (mut s, mut c) = (1.0, 1.0);
            let mut p = 0.0;
            let mut i = m;
            let mut underflow = false;
            while i > l {
                i -= 1;
                let f = s * e[i];
                let b = c * e[i];
                r = f.hypot(g);
                e[i + 1] = r;
                if r == 0.0 {
                    // deflate: rotation underflow
                    d[i + 1] -= p;
                    e[m] = 0.0;
                    underflow = true;
                    break;
                }
                s = f / r;
                c = g / r;
                g = d[i + 1] - p;
                r = (d[i] - g) * s + 2.0 * c * b;
                p = s * r;
                d[i + 1] = g + p;
                g = c * r - b;
                // rotate eigenvector columns i and i+1
                for k in 0..n {
                    let f2 = z[(k, i + 1)];
                    z[(k, i + 1)] = s * z[(k, i)] + c * f2;
                    z[(k, i)] = c * z[(k, i)] - s * f2;
                }
            }
            if underflow {
                continue;
            }
            d[l] -= p;
            e[l] = g;
            e[m] = 0.0;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{matmul, matmul_transa, matmul_transb, matvec};

    fn sym_from_spectrum(eigs: &[f64], seed: u64) -> Mat {
        // Build a random-ish orthogonal basis via QR of a deterministic
        // matrix, then conjugate the diagonal spectrum.
        let n = eigs.len();
        let raw = Mat::from_fn(n, n, |i, j| {
            let v = (seed as f64 + (i * 31 + j * 17) as f64).sin();
            v + if i == j { 2.0 } else { 0.0 }
        });
        let q = crate::qr::Qr::factor(&raw).unwrap().q_thin();
        let qd = matmul(&q, &Mat::from_diag(eigs)).unwrap();
        let mut a = matmul_transb(&qd, &q).unwrap();
        a.symmetrize();
        a
    }

    #[test]
    fn recovers_known_spectrum() {
        let eigs = [5.0, 3.0, 1.0, -2.0, -4.0];
        let a = sym_from_spectrum(&eigs, 3);
        let eg = SymmetricEigen::factor(&a).unwrap();
        let mut expect = eigs.to_vec();
        expect.sort_by(|x, y| y.partial_cmp(x).unwrap());
        for (got, want) in eg.values.iter().zip(&expect) {
            assert!((got - want).abs() < 1e-9, "{got} vs {want}");
        }
    }

    #[test]
    fn eigenvectors_satisfy_av_lambda_v() {
        let a = sym_from_spectrum(&[4.0, 2.0, 1.0, 0.5], 7);
        let eg = SymmetricEigen::factor(&a).unwrap();
        for k in 0..4 {
            let v = eg.vector(k);
            let av = matvec(&a, &v).unwrap();
            for i in 0..4 {
                assert!((av[i] - eg.values[k] * v[i]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn vectors_are_orthonormal() {
        let a = sym_from_spectrum(&[9.0, 5.0, 2.0, 1.0, 0.1, -3.0], 11);
        let eg = SymmetricEigen::factor(&a).unwrap();
        let vtv = matmul_transa(&eg.vectors, &eg.vectors).unwrap();
        assert!(vtv.approx_eq(&Mat::identity(6), 1e-11));
    }

    #[test]
    fn reconstruction() {
        let a = sym_from_spectrum(&[6.0, 3.0, 3.0, 1.0], 19);
        let eg = SymmetricEigen::factor(&a).unwrap();
        let vd = matmul(&eg.vectors, &Mat::from_diag(&eg.values)).unwrap();
        let recon = matmul_transb(&vd, &eg.vectors).unwrap();
        assert!(recon.approx_eq(&a, 1e-9));
    }

    #[test]
    fn repeated_eigenvalues() {
        // A = 2I has λ = 2 with multiplicity n
        let a = Mat::identity(5).scaled(2.0);
        let eg = SymmetricEigen::factor(&a).unwrap();
        for v in &eg.values {
            assert!((v - 2.0).abs() < 1e-12);
        }
        let vtv = matmul_transa(&eg.vectors, &eg.vectors).unwrap();
        assert!(vtv.approx_eq(&Mat::identity(5), 1e-12));
    }

    #[test]
    fn psd_gram_matrix_has_nonnegative_spectrum() {
        let x = Mat::from_fn(6, 4, |i, j| ((i + 2 * j) as f64 * 0.37).cos());
        let g = crate::ops::gram(&x);
        let eg = SymmetricEigen::factor(&g).unwrap();
        for v in &eg.values {
            assert!(*v > -1e-10, "negative eigenvalue {v} in PSD matrix");
        }
    }

    #[test]
    fn rank_counts_significant_eigenvalues() {
        // rank-2 Gram matrix from 2 independent rows
        let x = Mat::from_rows(&[vec![1.0, 0.0, 0.0], vec![0.0, 2.0, 0.0]]).unwrap();
        let g = crate::ops::gram(&x); // 3x3, rank 2
        let eg = SymmetricEigen::factor(&g).unwrap();
        assert_eq!(eg.rank(1e-10), 2);
    }

    #[test]
    fn tiny_sizes() {
        let e0 = SymmetricEigen::factor(&Mat::zeros(0, 0)).unwrap();
        assert!(e0.values.is_empty());
        let e1 = SymmetricEigen::factor(&Mat::from_diag(&[42.0])).unwrap();
        assert_eq!(e1.values, vec![42.0]);
        assert!((e1.vectors[(0, 0)].abs() - 1.0).abs() < 1e-15);

        let a2 = Mat::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]).unwrap();
        let e2 = SymmetricEigen::factor(&a2).unwrap();
        assert!((e2.values[0] - 3.0).abs() < 1e-12);
        assert!((e2.values[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn values_sorted_descending() {
        let a = sym_from_spectrum(&[1.0, 7.0, -2.0, 4.0], 23);
        let eg = SymmetricEigen::factor(&a).unwrap();
        for w in eg.values.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
    }

    #[test]
    fn non_square_rejected() {
        assert!(SymmetricEigen::factor(&Mat::zeros(3, 2)).is_err());
    }

    #[test]
    fn large_random_reconstruction() {
        let n = 40;
        let raw = Mat::from_fn(n, n, |i, j| ((i * 7 + j * 13) as f64 * 0.61).sin());
        let mut a = raw.add(&raw.transpose()).unwrap();
        a.scale_inplace(0.5);
        let eg = SymmetricEigen::factor(&a).unwrap();
        let vd = matmul(&eg.vectors, &Mat::from_diag(&eg.values)).unwrap();
        let recon = matmul_transb(&vd, &eg.vectors).unwrap();
        assert!(
            recon.approx_eq(&a, 1e-8),
            "max err {}",
            recon.sub(&a).unwrap().max_abs()
        );
    }
}
