//! The dense, row-major `f64` matrix type used throughout the workspace.

use crate::error::LinalgError;
use crate::Result;
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense matrix of `f64` in row-major order.
///
/// Row-major layout is chosen deliberately: the SRDA data convention in this
/// workspace stores **samples as rows**, so per-sample access (`row(i)`) is a
/// contiguous slice — the access pattern that dominates regression solvers
/// and Gram-matrix formation.
///
/// ```
/// use srda_linalg::Mat;
///
/// let a = Mat::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
/// assert_eq!(a[(1, 0)], 3.0);
/// assert_eq!(a.row(0), &[1.0, 2.0]);
/// ```
#[derive(Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Mat {
    /// Create a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Mat {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Create a `rows × cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Mat {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Create the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Mat::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Create a square matrix with `diag` on its diagonal.
    pub fn from_diag(diag: &[f64]) -> Self {
        let n = diag.len();
        let mut m = Mat::zeros(n, n);
        for (i, &d) in diag.iter().enumerate() {
            m.data[i * n + i] = d;
        }
        m
    }

    /// Build a matrix by evaluating `f(row, col)` at each entry.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Mat { rows, cols, data }
    }

    /// Build a matrix from a slice of equal-length row vectors.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self> {
        if rows.is_empty() {
            return Ok(Mat::zeros(0, 0));
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            if r.len() != cols {
                return Err(LinalgError::InvalidDimension {
                    context: "from_rows: rows have differing lengths",
                });
            }
            data.extend_from_slice(r);
        }
        Ok(Mat {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Build a matrix from a flat row-major vector.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinalgError::InvalidDimension {
                context: "from_vec: data length != rows * cols",
            });
        }
        Ok(Mat { rows, cols, data })
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// True if the matrix has zero entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// True if the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrow the underlying row-major storage.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrow the underlying row-major storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consume the matrix, returning its row-major storage.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Borrow row `i` as a contiguous slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        debug_assert!(i < self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrow row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        debug_assert!(i < self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copy column `j` into a new vector.
    pub fn col(&self, j: usize) -> Vec<f64> {
        debug_assert!(j < self.cols);
        (0..self.rows)
            .map(|i| self.data[i * self.cols + j])
            .collect()
    }

    /// Overwrite column `j` with the entries of `v`.
    pub fn set_col(&mut self, j: usize, v: &[f64]) {
        debug_assert_eq!(v.len(), self.rows);
        for (i, &x) in v.iter().enumerate() {
            self.data[i * self.cols + j] = x;
        }
    }

    /// Overwrite row `i` with the entries of `v`.
    pub fn set_row(&mut self, i: usize, v: &[f64]) {
        debug_assert_eq!(v.len(), self.cols);
        self.row_mut(i).copy_from_slice(v);
    }

    /// Iterate over rows as slices.
    pub fn rows_iter(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Return the transpose as a new matrix.
    pub fn transpose(&self) -> Mat {
        let mut t = Mat::zeros(self.cols, self.rows);
        // Blocked transpose for cache friendliness on large matrices.
        const B: usize = 32;
        for ib in (0..self.rows).step_by(B) {
            for jb in (0..self.cols).step_by(B) {
                for i in ib..(ib + B).min(self.rows) {
                    for j in jb..(jb + B).min(self.cols) {
                        t.data[j * self.rows + i] = self.data[i * self.cols + j];
                    }
                }
            }
        }
        t
    }

    /// Extract the sub-matrix of the given rows (in order).
    pub fn select_rows(&self, idx: &[usize]) -> Mat {
        let mut out = Mat::zeros(idx.len(), self.cols);
        for (k, &i) in idx.iter().enumerate() {
            out.row_mut(k).copy_from_slice(self.row(i));
        }
        out
    }

    /// Extract the sub-matrix of the given columns (in order).
    pub fn select_cols(&self, idx: &[usize]) -> Mat {
        let mut out = Mat::zeros(self.rows, idx.len());
        for i in 0..self.rows {
            let src = self.row(i);
            let dst = out.row_mut(i);
            for (k, &j) in idx.iter().enumerate() {
                dst[k] = src[j];
            }
        }
        out
    }

    /// Extract the contiguous block `[r0, r1) × [c0, c1)`.
    pub fn block(&self, r0: usize, r1: usize, c0: usize, c1: usize) -> Mat {
        debug_assert!(r0 <= r1 && r1 <= self.rows);
        debug_assert!(c0 <= c1 && c1 <= self.cols);
        let mut out = Mat::zeros(r1 - r0, c1 - c0);
        for i in r0..r1 {
            out.row_mut(i - r0).copy_from_slice(&self.row(i)[c0..c1]);
        }
        out
    }

    /// Horizontally concatenate `self` and `other` (`[self | other]`).
    pub fn hcat(&self, other: &Mat) -> Result<Mat> {
        if self.rows != other.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "hcat",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let mut out = Mat::zeros(self.rows, self.cols + other.cols);
        for i in 0..self.rows {
            out.row_mut(i)[..self.cols].copy_from_slice(self.row(i));
            out.row_mut(i)[self.cols..].copy_from_slice(other.row(i));
        }
        Ok(out)
    }

    /// Vertically concatenate `self` on top of `other`.
    pub fn vcat(&self, other: &Mat) -> Result<Mat> {
        if self.cols != other.cols {
            return Err(LinalgError::ShapeMismatch {
                op: "vcat",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let mut data = Vec::with_capacity((self.rows + other.rows) * self.cols);
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&other.data);
        Ok(Mat {
            rows: self.rows + other.rows,
            cols: self.cols,
            data,
        })
    }

    /// Append a constant column (the paper's §III.B bias-absorption trick:
    /// "append a new element 1 to each x").
    pub fn append_constant_col(&self, value: f64) -> Mat {
        let mut out = Mat::zeros(self.rows, self.cols + 1);
        for i in 0..self.rows {
            out.row_mut(i)[..self.cols].copy_from_slice(self.row(i));
            out.row_mut(i)[self.cols] = value;
        }
        out
    }

    /// Copy of the main diagonal.
    pub fn diag(&self) -> Vec<f64> {
        let n = self.rows.min(self.cols);
        (0..n).map(|i| self.data[i * self.cols + i]).collect()
    }

    /// Add `alpha` to each diagonal entry in place (ridge shift `A + αI`).
    pub fn add_to_diag(&mut self, alpha: f64) {
        let n = self.rows.min(self.cols);
        for i in 0..n {
            self.data[i * self.cols + i] += alpha;
        }
    }

    /// Multiply every entry by `s` in place.
    pub fn scale_inplace(&mut self, s: f64) {
        for x in &mut self.data {
            *x *= s;
        }
    }

    /// Return `self * s` as a new matrix.
    pub fn scaled(&self, s: f64) -> Mat {
        let mut m = self.clone();
        m.scale_inplace(s);
        m
    }

    /// Entry-wise sum `self + other`.
    pub fn add(&self, other: &Mat) -> Result<Mat> {
        self.zip_with(other, "add", |a, b| a + b)
    }

    /// Entry-wise difference `self - other`.
    pub fn sub(&self, other: &Mat) -> Result<Mat> {
        self.zip_with(other, "sub", |a, b| a - b)
    }

    fn zip_with(&self, other: &Mat, op: &'static str, f: impl Fn(f64, f64) -> f64) -> Result<Mat> {
        if self.shape() != other.shape() {
            return Err(LinalgError::ShapeMismatch {
                op,
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| f(a, b))
            .collect();
        Ok(Mat {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Frobenius norm `sqrt(Σ aᵢⱼ²)`.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Maximum absolute entry (`max |aᵢⱼ|`), 0 for an empty matrix.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |m, &x| m.max(x.abs()))
    }

    /// True if every entry is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// True if `|self - other|` is entry-wise within `tol`.
    pub fn approx_eq(&self, other: &Mat, tol: f64) -> bool {
        self.shape() == other.shape()
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(&a, &b)| (a - b).abs() <= tol)
    }

    /// Symmetrize in place: `A ← (A + Aᵀ)/2`. Cleans up rounding drift
    /// before handing a Gram matrix to the symmetric eigensolver.
    pub fn symmetrize(&mut self) {
        debug_assert!(self.is_square());
        let n = self.rows;
        for i in 0..n {
            for j in (i + 1)..n {
                let avg = 0.5 * (self.data[i * n + j] + self.data[j * n + i]);
                self.data[i * n + j] = avg;
                self.data[j * n + i] = avg;
            }
        }
    }

    /// Estimated memory footprint in bytes (used by the memory-budget guard
    /// that reproduces the paper's "can not be applied due to memory limit"
    /// entries in Tables IX/X).
    pub fn memory_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f64>()
    }
}

impl Index<(usize, usize)> for Mat {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Mat {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Mat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Mat {}x{} [", self.rows, self.cols)?;
        let max_show = 8;
        for i in 0..self.rows.min(max_show) {
            write!(f, "  [")?;
            for j in 0..self.cols.min(max_show) {
                write!(f, "{:10.4}", self[(i, j)])?;
                if j + 1 < self.cols.min(max_show) {
                    write!(f, ", ")?;
                }
            }
            if self.cols > max_show {
                write!(f, ", ...")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > max_show {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_shape_and_content() {
        let m = Mat::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn identity_diagonal() {
        let m = Mat::identity(4);
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(m[(i, j)], if i == j { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn from_rows_rejects_ragged() {
        let err = Mat::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
        assert!(err.is_err());
    }

    #[test]
    fn from_vec_checks_length() {
        assert!(Mat::from_vec(2, 2, vec![1.0; 3]).is_err());
        assert!(Mat::from_vec(2, 2, vec![1.0; 4]).is_ok());
    }

    #[test]
    fn indexing_row_major() {
        let m = Mat::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]).unwrap();
        assert_eq!(m[(0, 2)], 3.0);
        assert_eq!(m[(1, 0)], 4.0);
        assert_eq!(m.row(1), &[4., 5., 6.]);
        assert_eq!(m.col(1), vec![2., 5.]);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Mat::from_fn(5, 7, |i, j| (i * 7 + j) as f64);
        let t = m.transpose();
        assert_eq!(t.shape(), (7, 5));
        assert_eq!(t[(3, 2)], m[(2, 3)]);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn transpose_large_blocked() {
        let m = Mat::from_fn(67, 43, |i, j| (i as f64) * 1000.0 + j as f64);
        let t = m.transpose();
        for i in 0..67 {
            for j in 0..43 {
                assert_eq!(t[(j, i)], m[(i, j)]);
            }
        }
    }

    #[test]
    fn select_rows_and_cols() {
        let m = Mat::from_fn(4, 4, |i, j| (10 * i + j) as f64);
        let r = m.select_rows(&[2, 0]);
        assert_eq!(r.row(0), m.row(2));
        assert_eq!(r.row(1), m.row(0));
        let c = m.select_cols(&[3, 1]);
        assert_eq!(c.col(0), m.col(3));
        assert_eq!(c.col(1), m.col(1));
    }

    #[test]
    fn block_extraction() {
        let m = Mat::from_fn(5, 5, |i, j| (i * 5 + j) as f64);
        let b = m.block(1, 3, 2, 5);
        assert_eq!(b.shape(), (2, 3));
        assert_eq!(b[(0, 0)], m[(1, 2)]);
        assert_eq!(b[(1, 2)], m[(2, 4)]);
    }

    #[test]
    fn hcat_vcat() {
        let a = Mat::filled(2, 2, 1.0);
        let b = Mat::filled(2, 3, 2.0);
        let h = a.hcat(&b).unwrap();
        assert_eq!(h.shape(), (2, 5));
        assert_eq!(h[(0, 1)], 1.0);
        assert_eq!(h[(0, 4)], 2.0);

        let c = Mat::filled(3, 2, 4.0);
        let v = a.vcat(&c).unwrap();
        assert_eq!(v.shape(), (5, 2));
        assert_eq!(v[(4, 1)], 4.0);

        assert!(a.hcat(&c).is_err());
        assert!(a.vcat(&b).is_err());
    }

    #[test]
    fn append_constant_col_bias_trick() {
        let a = Mat::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let aug = a.append_constant_col(1.0);
        assert_eq!(aug.shape(), (2, 3));
        assert_eq!(aug.row(0), &[1.0, 2.0, 1.0]);
        assert_eq!(aug.row(1), &[3.0, 4.0, 1.0]);
    }

    #[test]
    fn diag_ops() {
        let mut m = Mat::from_diag(&[1.0, 2.0, 3.0]);
        assert_eq!(m.diag(), vec![1.0, 2.0, 3.0]);
        m.add_to_diag(0.5);
        assert_eq!(m.diag(), vec![1.5, 2.5, 3.5]);
        assert_eq!(m[(0, 1)], 0.0);
    }

    #[test]
    fn arithmetic() {
        let a = Mat::filled(2, 2, 3.0);
        let b = Mat::filled(2, 2, 1.0);
        assert_eq!(a.add(&b).unwrap(), Mat::filled(2, 2, 4.0));
        assert_eq!(a.sub(&b).unwrap(), Mat::filled(2, 2, 2.0));
        assert_eq!(a.scaled(2.0), Mat::filled(2, 2, 6.0));
        assert!(a.add(&Mat::zeros(3, 3)).is_err());
    }

    #[test]
    fn norms() {
        let m = Mat::from_rows(&[vec![3.0, 0.0], vec![0.0, -4.0]]).unwrap();
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-12);
        assert_eq!(m.max_abs(), 4.0);
    }

    #[test]
    fn symmetrize_averages() {
        let mut m = Mat::from_rows(&[vec![1.0, 2.0], vec![4.0, 5.0]]).unwrap();
        m.symmetrize();
        assert_eq!(m[(0, 1)], 3.0);
        assert_eq!(m[(1, 0)], 3.0);
        assert_eq!(m[(0, 0)], 1.0);
    }

    #[test]
    fn approx_eq_tolerance() {
        let a = Mat::filled(2, 2, 1.0);
        let mut b = a.clone();
        b[(0, 0)] = 1.0 + 1e-10;
        assert!(a.approx_eq(&b, 1e-9));
        assert!(!a.approx_eq(&b, 1e-12));
        assert!(!a.approx_eq(&Mat::zeros(2, 3), 1.0));
    }

    #[test]
    fn finite_detection() {
        let mut m = Mat::zeros(2, 2);
        assert!(m.is_finite());
        m[(1, 1)] = f64::NAN;
        assert!(!m.is_finite());
    }

    #[test]
    fn set_row_col() {
        let mut m = Mat::zeros(2, 3);
        m.set_row(1, &[1.0, 2.0, 3.0]);
        m.set_col(0, &[7.0, 8.0]);
        assert_eq!(m.row(1), &[8.0, 2.0, 3.0]);
        assert_eq!(m[(0, 0)], 7.0);
    }

    #[test]
    fn empty_matrix_behaviour() {
        let m = Mat::zeros(0, 0);
        assert!(m.is_empty());
        assert_eq!(m.frobenius_norm(), 0.0);
        assert_eq!(m.max_abs(), 0.0);
        let r = Mat::from_rows(&[]).unwrap();
        assert!(r.is_empty());
    }

    #[test]
    fn debug_format_does_not_panic() {
        let m = Mat::from_fn(10, 10, |i, j| (i + j) as f64);
        let s = format!("{m:?}");
        assert!(s.contains("Mat 10x10"));
        assert!(s.contains("..."));
    }

    #[cfg(feature = "serde")]
    #[test]
    fn serde_roundtrip() {
        let m = Mat::from_fn(3, 2, |i, j| i as f64 - j as f64);
        let json = serde_json::to_string(&m).unwrap();
        let back: Mat = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }
}
