//! Householder QR factorization.
//!
//! Used by the IDR/QR baseline (QR of the centered-centroid matrix is its
//! first and defining step) and as a robust least-squares oracle in tests.
//! The factorization is "thin": for an `m × n` input with `m ≥ n` it
//! produces `Q` (`m × n`, orthonormal columns) and `R` (`n × n`, upper
//! triangular) with `A = Q·R`.

use crate::error::LinalgError;
use crate::matrix::Mat;
use crate::{flam, Result};

/// A computed Householder QR factorization.
///
/// Internally stores the Householder vectors packed below the diagonal of a
/// working copy, LAPACK-style; `q_thin`/`apply_qt` materialize what callers
/// need.
#[derive(Debug, Clone)]
pub struct Qr {
    /// Packed factors: R on and above the diagonal, Householder vectors
    /// (with implicit unit leading entry) below.
    packed: Mat,
    /// Scalar `tau` of each reflector `H = I − τ·v·vᵀ`.
    taus: Vec<f64>,
}

impl Qr {
    /// Factor an `m × n` matrix with `m ≥ n`.
    pub fn factor(a: &Mat) -> Result<Self> {
        let (m, n) = a.shape();
        if m < n {
            return Err(LinalgError::InvalidDimension {
                context: "qr: requires nrows >= ncols (thin QR)",
            });
        }
        flam::add((m * n * n) as u64);
        let mut w = a.clone();
        let mut taus = Vec::with_capacity(n);

        for k in 0..n {
            // Build the reflector annihilating w[k+1.., k] below w[k, k].
            let mut norm_sq = 0.0;
            for i in k..m {
                let v = w[(i, k)];
                norm_sq += v * v;
            }
            let alpha = w[(k, k)];
            let norm = norm_sq.sqrt();
            if norm == 0.0 {
                // column already zero: identity reflector
                taus.push(0.0);
                continue;
            }
            // choose sign to avoid cancellation
            let beta = if alpha >= 0.0 { -norm } else { norm };
            let v0 = alpha - beta;
            let tau = -v0 / beta; // τ = (β − α)/β with the sign convention above
                                  // normalize so the leading entry of v is 1
            let inv_v0 = 1.0 / v0;
            for i in (k + 1)..m {
                w[(i, k)] *= inv_v0;
            }
            w[(k, k)] = beta;
            taus.push(tau);

            // apply H = I − τ v vᵀ to the trailing columns
            for j in (k + 1)..n {
                let mut dot = w[(k, j)];
                for i in (k + 1)..m {
                    dot += w[(i, k)] * w[(i, j)];
                }
                let t = tau * dot;
                w[(k, j)] -= t;
                for i in (k + 1)..m {
                    let vik = w[(i, k)];
                    w[(i, j)] -= t * vik;
                }
            }
        }
        Ok(Qr { packed: w, taus })
    }

    /// Rows of the factored matrix.
    pub fn nrows(&self) -> usize {
        self.packed.nrows()
    }

    /// Columns of the factored matrix.
    pub fn ncols(&self) -> usize {
        self.packed.ncols()
    }

    /// The `n × n` upper-triangular factor `R`.
    pub fn r(&self) -> Mat {
        let n = self.ncols();
        let mut r = Mat::zeros(n, n);
        for i in 0..n {
            for j in i..n {
                r[(i, j)] = self.packed[(i, j)];
            }
        }
        r
    }

    /// The thin orthonormal factor `Q` (`m × n`).
    pub fn q_thin(&self) -> Mat {
        let (m, n) = self.packed.shape();
        flam::add((m * n * n) as u64);
        // Start from the first n columns of I, apply reflectors in reverse.
        let mut q = Mat::zeros(m, n);
        for j in 0..n {
            q[(j, j)] = 1.0;
        }
        for k in (0..n).rev() {
            let tau = self.taus[k];
            if tau == 0.0 {
                continue;
            }
            for j in 0..n {
                let mut dot = q[(k, j)];
                for i in (k + 1)..m {
                    dot += self.packed[(i, k)] * q[(i, j)];
                }
                let t = tau * dot;
                q[(k, j)] -= t;
                for i in (k + 1)..m {
                    let vik = self.packed[(i, k)];
                    q[(i, j)] -= t * vik;
                }
            }
        }
        q
    }

    /// Apply `Qᵀ` to a vector of length `m`, in place.
    pub fn apply_qt(&self, b: &mut [f64]) -> Result<()> {
        let (m, n) = self.packed.shape();
        if b.len() != m {
            return Err(LinalgError::ShapeMismatch {
                op: "qr apply_qt",
                lhs: (m, n),
                rhs: (b.len(), 1),
            });
        }
        flam::add((2 * m * n) as u64);
        for k in 0..n {
            let tau = self.taus[k];
            if tau == 0.0 {
                continue;
            }
            let mut dot = b[k];
            for i in (k + 1)..m {
                dot += self.packed[(i, k)] * b[i];
            }
            let t = tau * dot;
            b[k] -= t;
            for i in (k + 1)..m {
                b[i] -= t * self.packed[(i, k)];
            }
        }
        Ok(())
    }

    /// Minimum-norm residual least-squares solve: `argmin ‖A·x − b‖₂` for a
    /// full-column-rank `A`.
    pub fn solve_least_squares(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.ncols();
        let mut work = b.to_vec();
        self.apply_qt(&mut work)?;
        let mut x = work[..n].to_vec();
        crate::triangular::solve_upper_inplace(&self.r(), &mut x)?;
        Ok(x)
    }

    /// Numerical rank of `R` with tolerance `tol` relative to the largest
    /// diagonal magnitude.
    pub fn rank(&self, tol: f64) -> usize {
        let diag = self.r().diag();
        let max = diag.iter().fold(0.0f64, |m, d| m.max(d.abs()));
        if max == 0.0 {
            return 0;
        }
        diag.iter().filter(|d| d.abs() > tol * max).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{matmul, matmul_transa, matvec};

    fn tall() -> Mat {
        Mat::from_fn(7, 4, |i, j| ((i * 5 + j * 3) % 11) as f64 - 4.0)
    }

    #[test]
    fn qr_reconstructs() {
        let a = tall();
        let qr = Qr::factor(&a).unwrap();
        let recon = matmul(&qr.q_thin(), &qr.r()).unwrap();
        assert!(recon.approx_eq(&a, 1e-10));
    }

    #[test]
    fn q_has_orthonormal_columns() {
        let qr = Qr::factor(&tall()).unwrap();
        let q = qr.q_thin();
        let qtq = matmul_transa(&q, &q).unwrap();
        assert!(qtq.approx_eq(&Mat::identity(4), 1e-12));
    }

    #[test]
    fn r_is_upper_triangular() {
        let qr = Qr::factor(&tall()).unwrap();
        let r = qr.r();
        for i in 0..4 {
            for j in 0..i {
                assert_eq!(r[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn square_factorization() {
        let a = Mat::from_rows(&[vec![4.0, 1.0], vec![3.0, 2.0]]).unwrap();
        let qr = Qr::factor(&a).unwrap();
        let recon = matmul(&qr.q_thin(), &qr.r()).unwrap();
        assert!(recon.approx_eq(&a, 1e-12));
    }

    #[test]
    fn wide_rejected() {
        assert!(Qr::factor(&Mat::zeros(2, 3)).is_err());
    }

    #[test]
    fn least_squares_exact_system() {
        let a = Mat::from_rows(&[vec![1.0, 0.0], vec![0.0, 2.0], vec![0.0, 0.0]]).unwrap();
        let qr = Qr::factor(&a).unwrap();
        let x = qr.solve_least_squares(&[3.0, 4.0, 100.0]).unwrap();
        // residual on the third row is unavoidable; x should fit first two
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn least_squares_matches_normal_equations() {
        let a = tall();
        let b: Vec<f64> = (0..7).map(|i| (i as f64 * 0.7).sin()).collect();
        let qr = Qr::factor(&a).unwrap();
        let x = qr.solve_least_squares(&b).unwrap();
        // normal equations oracle: AᵀA x = Aᵀ b
        let g = crate::ops::gram(&a);
        let atb = crate::ops::matvec_t(&a, &b).unwrap();
        let x2 = crate::lu::Lu::factor(&g).unwrap().solve(&atb).unwrap();
        for (u, v) in x.iter().zip(&x2) {
            assert!((u - v).abs() < 1e-8, "{u} vs {v}");
        }
    }

    #[test]
    fn apply_qt_preserves_norm() {
        let a = tall();
        let qr = Qr::factor(&a).unwrap();
        let b: Vec<f64> = (0..7).map(|i| (i as f64) - 3.0).collect();
        let norm_before = crate::vector::norm2(&b);
        let mut w = b.clone();
        qr.apply_qt(&mut w).unwrap();
        let norm_after = crate::vector::norm2(&w);
        assert!((norm_before - norm_after).abs() < 1e-12);
    }

    #[test]
    fn rank_detects_deficiency() {
        // third column = first + second
        let a = Mat::from_fn(6, 3, |i, j| match j {
            0 => i as f64,
            1 => (i * i) as f64 / 10.0,
            _ => i as f64 + (i * i) as f64 / 10.0,
        });
        let qr = Qr::factor(&a).unwrap();
        assert_eq!(qr.rank(1e-10), 2);
        let full = Qr::factor(&tall()).unwrap();
        assert_eq!(full.rank(1e-10), 4);
    }

    #[test]
    fn zero_column_handled() {
        let mut a = tall();
        for i in 0..7 {
            a[(i, 2)] = 0.0;
        }
        let qr = Qr::factor(&a).unwrap();
        let recon = matmul(&qr.q_thin(), &qr.r()).unwrap();
        assert!(recon.approx_eq(&a, 1e-10));
    }

    #[test]
    fn qt_then_solve_matches_matvec() {
        // checks consistency: A x = Q R x, so Qᵀ A x = R x
        let a = tall();
        let qr = Qr::factor(&a).unwrap();
        let x = [1.0, -1.0, 0.5, 2.0];
        let mut ax = matvec(&a, &x).unwrap();
        qr.apply_qt(&mut ax).unwrap();
        let rx = matvec(&qr.r(), &x).unwrap();
        for i in 0..4 {
            assert!((ax[i] - rx[i]).abs() < 1e-10);
        }
        for v in &ax[4..] {
            assert!(v.abs() < 1e-10);
        }
    }
}
