//! Matrix products and matrix-vector kernels.
//!
//! Since the execution-backend refactor these are thin shims over
//! [`srda_kernels`]: each product has an `*_exec` variant taking an
//! [`Executor`], and the historical free functions delegate to it with the
//! serial executor, so existing callers keep bit-identical results. The
//! kernels are blocked for cache locality and — under
//! [`srda_kernels::Backend::Threaded`] — row-partitioned across scoped
//! threads with a fixed deterministic reduction order, so the backend
//! choice never changes the numbers, only the wall-clock. `flam`
//! accounting stays here in the shims, unchanged from the serial era, so
//! operation counts measure *algorithm* cost, not backend shape.

use crate::error::LinalgError;
use crate::matrix::Mat;
use crate::{flam, Result};
use srda_kernels::{dense, Executor};

/// General product `C = A·B`.
pub fn matmul(a: &Mat, b: &Mat) -> Result<Mat> {
    matmul_exec(a, b, &Executor::serial())
}

/// General product `C = A·B` on the given executor.
pub fn matmul_exec(a: &Mat, b: &Mat, exec: &Executor) -> Result<Mat> {
    if a.ncols() != b.nrows() {
        return Err(LinalgError::ShapeMismatch {
            op: "matmul",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    let (m, k, n) = (a.nrows(), a.ncols(), b.ncols());
    flam::add((m * k * n) as u64);
    let mut c = Mat::zeros(m, n);
    dense::gemm(exec, a.as_slice(), m, k, b.as_slice(), n, c.as_mut_slice());
    Ok(c)
}

/// Product with the left operand transposed: `C = Aᵀ·B` without forming `Aᵀ`.
pub fn matmul_transa(a: &Mat, b: &Mat) -> Result<Mat> {
    matmul_transa_exec(a, b, &Executor::serial())
}

/// `C = Aᵀ·B` on the given executor.
pub fn matmul_transa_exec(a: &Mat, b: &Mat, exec: &Executor) -> Result<Mat> {
    if a.nrows() != b.nrows() {
        return Err(LinalgError::ShapeMismatch {
            op: "matmul_transa",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    let (m, k, n) = (a.nrows(), a.ncols(), b.ncols());
    flam::add((m * k * n) as u64);
    let mut c = Mat::zeros(k, n);
    dense::gemm_transa(exec, a.as_slice(), m, k, b.as_slice(), n, c.as_mut_slice());
    Ok(c)
}

/// Product with the right operand transposed: `C = A·Bᵀ` without forming `Bᵀ`.
pub fn matmul_transb(a: &Mat, b: &Mat) -> Result<Mat> {
    matmul_transb_exec(a, b, &Executor::serial())
}

/// `C = A·Bᵀ` on the given executor.
pub fn matmul_transb_exec(a: &Mat, b: &Mat, exec: &Executor) -> Result<Mat> {
    if a.ncols() != b.ncols() {
        return Err(LinalgError::ShapeMismatch {
            op: "matmul_transb",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    let (m, k, n) = (a.nrows(), a.ncols(), b.nrows());
    flam::add((m * k * n) as u64);
    let mut c = Mat::zeros(m, n);
    dense::gemm_transb(exec, a.as_slice(), m, k, b.as_slice(), n, c.as_mut_slice());
    Ok(c)
}

/// Gram matrix `AᵀA` (`ncols × ncols`), exploiting symmetry: only the upper
/// triangle is computed, then mirrored.
pub fn gram(a: &Mat) -> Mat {
    gram_exec(a, &Executor::serial())
}

/// Gram matrix `AᵀA` on the given executor.
pub fn gram_exec(a: &Mat, exec: &Executor) -> Mat {
    let (m, n) = a.shape();
    flam::add((m * n * (n + 1) / 2) as u64);
    let mut g = Mat::zeros(n, n);
    dense::gram(exec, a.as_slice(), m, n, g.as_mut_slice());
    g
}

/// Outer Gram matrix `AAᵀ` (`nrows × nrows`), exploiting symmetry.
pub fn gram_t(a: &Mat) -> Mat {
    gram_t_exec(a, &Executor::serial())
}

/// Outer Gram matrix `AAᵀ` on the given executor.
pub fn gram_t_exec(a: &Mat, exec: &Executor) -> Mat {
    let (m, n) = a.shape();
    flam::add((n * m * (m + 1) / 2) as u64);
    let mut g = Mat::zeros(m, m);
    dense::gram_t(exec, a.as_slice(), m, n, g.as_mut_slice());
    g
}

/// Matrix-vector product `y = A·x`.
pub fn matvec(a: &Mat, x: &[f64]) -> Result<Vec<f64>> {
    matvec_exec(a, x, &Executor::serial())
}

/// Matrix-vector product `y = A·x` on the given executor.
pub fn matvec_exec(a: &Mat, x: &[f64], exec: &Executor) -> Result<Vec<f64>> {
    if a.ncols() != x.len() {
        return Err(LinalgError::ShapeMismatch {
            op: "matvec",
            lhs: a.shape(),
            rhs: (x.len(), 1),
        });
    }
    flam::add((a.nrows() * a.ncols()) as u64);
    let mut y = vec![0.0; a.nrows()];
    dense::matvec(exec, a.as_slice(), a.nrows(), a.ncols(), x, &mut y);
    Ok(y)
}

/// Transposed matrix-vector product `y = Aᵀ·x`, computed without forming
/// `Aᵀ` (accumulates `y += xᵢ · rowᵢ(A)`).
pub fn matvec_t(a: &Mat, x: &[f64]) -> Result<Vec<f64>> {
    matvec_t_exec(a, x, &Executor::serial())
}

/// Transposed matrix-vector product `y = Aᵀ·x` on the given executor.
pub fn matvec_t_exec(a: &Mat, x: &[f64], exec: &Executor) -> Result<Vec<f64>> {
    if a.nrows() != x.len() {
        return Err(LinalgError::ShapeMismatch {
            op: "matvec_t",
            lhs: a.shape(),
            rhs: (x.len(), 1),
        });
    }
    flam::add((a.nrows() * a.ncols()) as u64);
    let mut y = vec![0.0; a.ncols()];
    dense::matvec_t(exec, a.as_slice(), a.nrows(), a.ncols(), x, &mut y);
    Ok(y)
}

/// `y = A·x` into a caller-provided buffer (no allocation) on the given
/// executor. `y.len()` must equal `a.nrows()`.
pub fn matvec_into_exec(a: &Mat, x: &[f64], y: &mut [f64], exec: &Executor) -> Result<()> {
    if a.ncols() != x.len() || a.nrows() != y.len() {
        return Err(LinalgError::ShapeMismatch {
            op: "matvec_into",
            lhs: a.shape(),
            rhs: (x.len(), 1),
        });
    }
    flam::add((a.nrows() * a.ncols()) as u64);
    dense::matvec(exec, a.as_slice(), a.nrows(), a.ncols(), x, y);
    Ok(())
}

/// `y = Aᵀ·x` into a caller-provided buffer (no allocation) on the given
/// executor. `y.len()` must equal `a.ncols()`.
pub fn matvec_t_into_exec(a: &Mat, x: &[f64], y: &mut [f64], exec: &Executor) -> Result<()> {
    if a.nrows() != x.len() || a.ncols() != y.len() {
        return Err(LinalgError::ShapeMismatch {
            op: "matvec_t_into",
            lhs: a.shape(),
            rhs: (x.len(), 1),
        });
    }
    flam::add((a.nrows() * a.ncols()) as u64);
    dense::matvec_t(exec, a.as_slice(), a.nrows(), a.ncols(), x, y);
    Ok(())
}

/// Scale the columns of `a` in place by `d`: `A ← A·diag(d)`.
pub fn scale_cols(a: &mut Mat, d: &[f64]) {
    debug_assert_eq!(a.ncols(), d.len());
    flam::add((a.nrows() * a.ncols()) as u64);
    for i in 0..a.nrows() {
        for (aij, &dj) in a.row_mut(i).iter_mut().zip(d) {
            *aij *= dj;
        }
    }
}

/// Scale the rows of `a` in place by `d`: `A ← diag(d)·A`.
pub fn scale_rows(a: &mut Mat, d: &[f64]) {
    debug_assert_eq!(a.nrows(), d.len());
    flam::add((a.nrows() * a.ncols()) as u64);
    for (i, &di) in d.iter().enumerate() {
        for aij in a.row_mut(i) {
            *aij *= di;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_a() -> Mat {
        Mat::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]).unwrap()
    }

    #[test]
    fn matmul_hand_checked() {
        let a = small_a(); // 3x2
        let b = Mat::from_rows(&[vec![7.0, 8.0, 9.0], vec![10.0, 11.0, 12.0]]).unwrap(); // 2x3
        let c = matmul(&a, &b).unwrap();
        let expect = Mat::from_rows(&[
            vec![27.0, 30.0, 33.0],
            vec![61.0, 68.0, 75.0],
            vec![95.0, 106.0, 117.0],
        ])
        .unwrap();
        assert!(c.approx_eq(&expect, 1e-12));
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = small_a();
        let c = matmul(&a, &Mat::identity(2)).unwrap();
        assert!(c.approx_eq(&a, 0.0));
        let c2 = matmul(&Mat::identity(3), &a).unwrap();
        assert!(c2.approx_eq(&a, 0.0));
    }

    #[test]
    fn matmul_shape_errors() {
        let a = small_a();
        assert!(matmul(&a, &a).is_err());
    }

    #[test]
    fn transa_matches_explicit_transpose() {
        let a = small_a();
        let b = Mat::from_fn(3, 4, |i, j| (i + 2 * j) as f64);
        let c1 = matmul_transa(&a, &b).unwrap();
        let c2 = matmul(&a.transpose(), &b).unwrap();
        assert!(c1.approx_eq(&c2, 1e-12));
    }

    #[test]
    fn transb_matches_explicit_transpose() {
        let a = small_a();
        let b = Mat::from_fn(5, 2, |i, j| (3 * i + j) as f64);
        let c1 = matmul_transb(&a, &b).unwrap();
        let c2 = matmul(&a, &b.transpose()).unwrap();
        assert!(c1.approx_eq(&c2, 1e-12));
    }

    #[test]
    fn gram_matches_ata() {
        let a = Mat::from_fn(6, 4, |i, j| ((i * 7 + j * 3) % 5) as f64 - 2.0);
        let g = gram(&a);
        let explicit = matmul_transa(&a, &a).unwrap();
        assert!(g.approx_eq(&explicit, 1e-12));
        // symmetry
        assert!(g.approx_eq(&g.transpose(), 0.0));
    }

    #[test]
    fn gram_t_matches_aat() {
        let a = Mat::from_fn(4, 6, |i, j| ((i * 5 + j) % 7) as f64 - 3.0);
        let g = gram_t(&a);
        let explicit = matmul_transb(&a, &a).unwrap();
        assert!(g.approx_eq(&explicit, 1e-12));
    }

    #[test]
    fn matvec_hand_checked() {
        let a = small_a();
        let y = matvec(&a, &[1.0, -1.0]).unwrap();
        assert_eq!(y, vec![-1.0, -1.0, -1.0]);
        assert!(matvec(&a, &[1.0]).is_err());
    }

    #[test]
    fn matvec_t_matches_transpose() {
        let a = small_a();
        let x = [1.0, 2.0, 3.0];
        let y1 = matvec_t(&a, &x).unwrap();
        let y2 = matvec(&a.transpose(), &x).unwrap();
        for (u, v) in y1.iter().zip(&y2) {
            assert!((u - v).abs() < 1e-12);
        }
        assert!(matvec_t(&a, &[1.0]).is_err());
    }

    #[test]
    fn scaling_rows_and_cols() {
        let mut a = Mat::filled(2, 3, 1.0);
        scale_cols(&mut a, &[1.0, 2.0, 3.0]);
        assert_eq!(a.row(0), &[1.0, 2.0, 3.0]);
        let mut b = Mat::filled(2, 3, 1.0);
        scale_rows(&mut b, &[2.0, 5.0]);
        assert_eq!(b.row(0), &[2.0, 2.0, 2.0]);
        assert_eq!(b.row(1), &[5.0, 5.0, 5.0]);
    }

    #[test]
    fn matmul_associativity_numerically() {
        let a = Mat::from_fn(3, 4, |i, j| (i as f64 + 1.0) * (j as f64 - 1.5));
        let b = Mat::from_fn(4, 2, |i, j| (i as f64 - 2.0) * (j as f64 + 0.5));
        let c = Mat::from_fn(2, 3, |i, j| 0.25 * (i + j) as f64);
        let left = matmul(&matmul(&a, &b).unwrap(), &c).unwrap();
        let right = matmul(&a, &matmul(&b, &c).unwrap()).unwrap();
        assert!(left.approx_eq(&right, 1e-10));
    }

    #[test]
    fn flam_counts_products() {
        let a = Mat::zeros(10, 20);
        let b = Mat::zeros(20, 30);
        let ((), used) = crate::flam::measure(|| {
            let _ = matmul(&a, &b).unwrap();
        });
        assert_eq!(used, 10 * 20 * 30);
    }

    #[test]
    fn exec_variants_match_serial_bitwise() {
        // Shapes straddling the block size (64) and thread counts larger
        // than the row count: every backend must agree exactly.
        let a = Mat::from_fn(67, 33, |i, j| ((i * 31 + j * 17) % 13) as f64 - 6.0);
        let b = Mat::from_fn(33, 70, |i, j| ((i * 5 + j * 11) % 9) as f64 - 4.0);
        let bt = Mat::from_fn(70, 33, |i, j| ((i * 3 + j * 7) % 11) as f64 - 5.0);
        let x: Vec<f64> = (0..33).map(|j| j as f64 * 0.25 - 4.0).collect();
        let xt: Vec<f64> = (0..67)
            .map(|i| if i % 5 == 0 { 0.0 } else { i as f64 * 0.125 })
            .collect();
        for &t in &[2usize, 3, 8, 1000] {
            let exec = Executor::threaded(t);
            assert!(matmul_exec(&a, &b, &exec)
                .unwrap()
                .approx_eq(&matmul(&a, &b).unwrap(), 0.0));
            assert!(matmul_transa_exec(&a, &a, &exec)
                .unwrap()
                .approx_eq(&matmul_transa(&a, &a).unwrap(), 0.0));
            assert!(matmul_transb_exec(&a, &bt, &exec)
                .unwrap()
                .approx_eq(&matmul_transb(&a, &bt).unwrap(), 0.0));
            assert!(gram_exec(&a, &exec).approx_eq(&gram(&a), 0.0));
            assert!(gram_t_exec(&a, &exec).approx_eq(&gram_t(&a), 0.0));
            assert_eq!(matvec_exec(&a, &x, &exec).unwrap(), matvec(&a, &x).unwrap());
            assert_eq!(
                matvec_t_exec(&a, &xt, &exec).unwrap(),
                matvec_t(&a, &xt).unwrap()
            );
        }
    }
}
