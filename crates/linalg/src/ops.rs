//! Matrix products and matrix-vector kernels.
//!
//! All kernels are single-threaded on purpose: the paper's timing
//! comparisons (Tables IV/VI/VIII/X) are between *algorithms*, and keeping
//! every algorithm on the same single-threaded substrate keeps those
//! comparisons fair. The loops are ordered for row-major storage (`ikj` for
//! general products, row-dot for `ABᵀ`) so the inner loop is always a
//! contiguous, autovectorizable sweep.

use crate::error::LinalgError;
use crate::matrix::Mat;
use crate::{flam, Result};

/// General product `C = A·B`.
pub fn matmul(a: &Mat, b: &Mat) -> Result<Mat> {
    if a.ncols() != b.nrows() {
        return Err(LinalgError::ShapeMismatch {
            op: "matmul",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    let (m, k, n) = (a.nrows(), a.ncols(), b.ncols());
    flam::add((m * k * n) as u64);
    let mut c = Mat::zeros(m, n);
    for i in 0..m {
        let arow = a.row(i);
        let crow = c.row_mut(i);
        for (p, &aip) in arow.iter().enumerate() {
            if aip == 0.0 {
                continue;
            }
            let brow = b.row(p);
            for (cij, &bpj) in crow.iter_mut().zip(brow) {
                *cij += aip * bpj;
            }
        }
    }
    Ok(c)
}

/// Product with the left operand transposed: `C = Aᵀ·B` without forming `Aᵀ`.
pub fn matmul_transa(a: &Mat, b: &Mat) -> Result<Mat> {
    if a.nrows() != b.nrows() {
        return Err(LinalgError::ShapeMismatch {
            op: "matmul_transa",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    let (m, k, n) = (a.nrows(), a.ncols(), b.ncols());
    flam::add((m * k * n) as u64);
    let mut c = Mat::zeros(k, n);
    // C += a_rowᵀ ⊗ b_row, accumulated row by row: outer-product update
    // keeps both reads contiguous.
    for r in 0..m {
        let arow = a.row(r);
        let brow = b.row(r);
        for (i, &ari) in arow.iter().enumerate() {
            if ari == 0.0 {
                continue;
            }
            let crow = c.row_mut(i);
            for (cij, &brj) in crow.iter_mut().zip(brow) {
                *cij += ari * brj;
            }
        }
    }
    Ok(c)
}

/// Product with the right operand transposed: `C = A·Bᵀ` without forming `Bᵀ`.
pub fn matmul_transb(a: &Mat, b: &Mat) -> Result<Mat> {
    if a.ncols() != b.ncols() {
        return Err(LinalgError::ShapeMismatch {
            op: "matmul_transb",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    let (m, k, n) = (a.nrows(), a.ncols(), b.nrows());
    flam::add((m * k * n) as u64);
    let mut c = Mat::zeros(m, n);
    for i in 0..m {
        let arow = a.row(i);
        let crow = c.row_mut(i);
        for (j, cij) in crow.iter_mut().enumerate() {
            let brow = b.row(j);
            let mut acc = 0.0;
            for (x, y) in arow.iter().zip(brow) {
                acc += x * y;
            }
            *cij = acc;
        }
    }
    Ok(c)
}

/// Gram matrix `AᵀA` (`ncols × ncols`), exploiting symmetry: only the upper
/// triangle is computed, then mirrored.
pub fn gram(a: &Mat) -> Mat {
    let (m, n) = a.shape();
    flam::add((m * n * (n + 1) / 2) as u64);
    let mut g = Mat::zeros(n, n);
    for r in 0..m {
        let row = a.row(r);
        for i in 0..n {
            let ari = row[i];
            if ari == 0.0 {
                continue;
            }
            let grow = g.row_mut(i);
            for j in i..n {
                grow[j] += ari * row[j];
            }
        }
    }
    for i in 0..n {
        for j in (i + 1)..n {
            g[(j, i)] = g[(i, j)];
        }
    }
    g
}

/// Outer Gram matrix `AAᵀ` (`nrows × nrows`), exploiting symmetry.
pub fn gram_t(a: &Mat) -> Mat {
    let (m, n) = a.shape();
    flam::add((n * m * (m + 1) / 2) as u64);
    let mut g = Mat::zeros(m, m);
    for i in 0..m {
        let ri = a.row(i);
        for j in i..m {
            let rj = a.row(j);
            let mut acc = 0.0;
            for (x, y) in ri.iter().zip(rj) {
                acc += x * y;
            }
            g[(i, j)] = acc;
        }
    }
    for i in 0..m {
        for j in (i + 1)..m {
            g[(j, i)] = g[(i, j)];
        }
    }
    g
}

/// Matrix-vector product `y = A·x`.
pub fn matvec(a: &Mat, x: &[f64]) -> Result<Vec<f64>> {
    if a.ncols() != x.len() {
        return Err(LinalgError::ShapeMismatch {
            op: "matvec",
            lhs: a.shape(),
            rhs: (x.len(), 1),
        });
    }
    flam::add((a.nrows() * a.ncols()) as u64);
    let mut y = Vec::with_capacity(a.nrows());
    for i in 0..a.nrows() {
        let mut acc = 0.0;
        for (aij, xj) in a.row(i).iter().zip(x) {
            acc += aij * xj;
        }
        y.push(acc);
    }
    Ok(y)
}

/// Transposed matrix-vector product `y = Aᵀ·x`, computed without forming
/// `Aᵀ` (accumulates `y += xᵢ · rowᵢ(A)`).
pub fn matvec_t(a: &Mat, x: &[f64]) -> Result<Vec<f64>> {
    if a.nrows() != x.len() {
        return Err(LinalgError::ShapeMismatch {
            op: "matvec_t",
            lhs: a.shape(),
            rhs: (x.len(), 1),
        });
    }
    flam::add((a.nrows() * a.ncols()) as u64);
    let mut y = vec![0.0; a.ncols()];
    for (i, &xi) in x.iter().enumerate() {
        if xi == 0.0 {
            continue;
        }
        for (yj, aij) in y.iter_mut().zip(a.row(i)) {
            *yj += xi * aij;
        }
    }
    Ok(y)
}

/// Scale the columns of `a` in place by `d`: `A ← A·diag(d)`.
pub fn scale_cols(a: &mut Mat, d: &[f64]) {
    debug_assert_eq!(a.ncols(), d.len());
    flam::add((a.nrows() * a.ncols()) as u64);
    for i in 0..a.nrows() {
        for (aij, &dj) in a.row_mut(i).iter_mut().zip(d) {
            *aij *= dj;
        }
    }
}

/// Scale the rows of `a` in place by `d`: `A ← diag(d)·A`.
pub fn scale_rows(a: &mut Mat, d: &[f64]) {
    debug_assert_eq!(a.nrows(), d.len());
    flam::add((a.nrows() * a.ncols()) as u64);
    for (i, &di) in d.iter().enumerate() {
        for aij in a.row_mut(i) {
            *aij *= di;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_a() -> Mat {
        Mat::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]).unwrap()
    }

    #[test]
    fn matmul_hand_checked() {
        let a = small_a(); // 3x2
        let b = Mat::from_rows(&[vec![7.0, 8.0, 9.0], vec![10.0, 11.0, 12.0]]).unwrap(); // 2x3
        let c = matmul(&a, &b).unwrap();
        let expect = Mat::from_rows(&[
            vec![27.0, 30.0, 33.0],
            vec![61.0, 68.0, 75.0],
            vec![95.0, 106.0, 117.0],
        ])
        .unwrap();
        assert!(c.approx_eq(&expect, 1e-12));
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = small_a();
        let c = matmul(&a, &Mat::identity(2)).unwrap();
        assert!(c.approx_eq(&a, 0.0));
        let c2 = matmul(&Mat::identity(3), &a).unwrap();
        assert!(c2.approx_eq(&a, 0.0));
    }

    #[test]
    fn matmul_shape_errors() {
        let a = small_a();
        assert!(matmul(&a, &a).is_err());
    }

    #[test]
    fn transa_matches_explicit_transpose() {
        let a = small_a();
        let b = Mat::from_fn(3, 4, |i, j| (i + 2 * j) as f64);
        let c1 = matmul_transa(&a, &b).unwrap();
        let c2 = matmul(&a.transpose(), &b).unwrap();
        assert!(c1.approx_eq(&c2, 1e-12));
    }

    #[test]
    fn transb_matches_explicit_transpose() {
        let a = small_a();
        let b = Mat::from_fn(5, 2, |i, j| (3 * i + j) as f64);
        let c1 = matmul_transb(&a, &b).unwrap();
        let c2 = matmul(&a, &b.transpose()).unwrap();
        assert!(c1.approx_eq(&c2, 1e-12));
    }

    #[test]
    fn gram_matches_ata() {
        let a = Mat::from_fn(6, 4, |i, j| ((i * 7 + j * 3) % 5) as f64 - 2.0);
        let g = gram(&a);
        let explicit = matmul_transa(&a, &a).unwrap();
        assert!(g.approx_eq(&explicit, 1e-12));
        // symmetry
        assert!(g.approx_eq(&g.transpose(), 0.0));
    }

    #[test]
    fn gram_t_matches_aat() {
        let a = Mat::from_fn(4, 6, |i, j| ((i * 5 + j) % 7) as f64 - 3.0);
        let g = gram_t(&a);
        let explicit = matmul_transb(&a, &a).unwrap();
        assert!(g.approx_eq(&explicit, 1e-12));
    }

    #[test]
    fn matvec_hand_checked() {
        let a = small_a();
        let y = matvec(&a, &[1.0, -1.0]).unwrap();
        assert_eq!(y, vec![-1.0, -1.0, -1.0]);
        assert!(matvec(&a, &[1.0]).is_err());
    }

    #[test]
    fn matvec_t_matches_transpose() {
        let a = small_a();
        let x = [1.0, 2.0, 3.0];
        let y1 = matvec_t(&a, &x).unwrap();
        let y2 = matvec(&a.transpose(), &x).unwrap();
        for (u, v) in y1.iter().zip(&y2) {
            assert!((u - v).abs() < 1e-12);
        }
        assert!(matvec_t(&a, &[1.0]).is_err());
    }

    #[test]
    fn scaling_rows_and_cols() {
        let mut a = Mat::filled(2, 3, 1.0);
        scale_cols(&mut a, &[1.0, 2.0, 3.0]);
        assert_eq!(a.row(0), &[1.0, 2.0, 3.0]);
        let mut b = Mat::filled(2, 3, 1.0);
        scale_rows(&mut b, &[2.0, 5.0]);
        assert_eq!(b.row(0), &[2.0, 2.0, 2.0]);
        assert_eq!(b.row(1), &[5.0, 5.0, 5.0]);
    }

    #[test]
    fn matmul_associativity_numerically() {
        let a = Mat::from_fn(3, 4, |i, j| (i as f64 + 1.0) * (j as f64 - 1.5));
        let b = Mat::from_fn(4, 2, |i, j| (i as f64 - 2.0) * (j as f64 + 0.5));
        let c = Mat::from_fn(2, 3, |i, j| 0.25 * (i + j) as f64);
        let left = matmul(&matmul(&a, &b).unwrap(), &c).unwrap();
        let right = matmul(&a, &matmul(&b, &c).unwrap()).unwrap();
        assert!(left.approx_eq(&right, 1e-10));
    }

    #[test]
    fn flam_counts_products() {
        let a = Mat::zeros(10, 20);
        let b = Mat::zeros(20, 30);
        let ((), used) = crate::flam::measure(|| {
            let _ = matmul(&a, &b).unwrap();
        });
        assert_eq!(used, 10 * 20 * 30);
    }
}
