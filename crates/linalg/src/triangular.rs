//! Triangular solves (forward and back substitution).
//!
//! Used by the Cholesky and LU solvers, and directly by SRDA's
//! normal-equations path: after one Cholesky factorization `XᵀX + αI = RᵀR`
//! the `c − 1` response systems are each solved with one forward and one
//! back substitution (the `cn²` term in the paper's cost analysis).

use crate::error::LinalgError;
use crate::matrix::Mat;
use crate::{flam, Result};

/// Solve `L·x = b` for lower-triangular `L` (entries above the diagonal are
/// ignored). `b` is overwritten with the solution.
pub fn solve_lower_inplace(l: &Mat, b: &mut [f64]) -> Result<()> {
    let n = check_square(l, b.len())?;
    flam::add((n * n / 2) as u64);
    for i in 0..n {
        let row = l.row(i);
        let mut acc = b[i];
        for j in 0..i {
            acc -= row[j] * b[j];
        }
        let d = row[i];
        if d == 0.0 {
            return Err(LinalgError::Singular { pivot: i });
        }
        b[i] = acc / d;
    }
    Ok(())
}

/// Solve `U·x = b` for upper-triangular `U` (entries below the diagonal are
/// ignored). `b` is overwritten with the solution.
pub fn solve_upper_inplace(u: &Mat, b: &mut [f64]) -> Result<()> {
    let n = check_square(u, b.len())?;
    flam::add((n * n / 2) as u64);
    for i in (0..n).rev() {
        let row = u.row(i);
        let mut acc = b[i];
        for j in (i + 1)..n {
            acc -= row[j] * b[j];
        }
        let d = row[i];
        if d == 0.0 {
            return Err(LinalgError::Singular { pivot: i });
        }
        b[i] = acc / d;
    }
    Ok(())
}

/// Solve `Lᵀ·x = b` where `L` is stored lower-triangular (avoids forming
/// the transpose; this is the second half of a Cholesky solve).
pub fn solve_lower_transpose_inplace(l: &Mat, b: &mut [f64]) -> Result<()> {
    let n = check_square(l, b.len())?;
    flam::add((n * n / 2) as u64);
    for i in (0..n).rev() {
        let d = l[(i, i)];
        if d == 0.0 {
            return Err(LinalgError::Singular { pivot: i });
        }
        b[i] /= d;
        let bi = b[i];
        // subtract column i of L (below the diagonal) scaled by x_i
        for j in 0..i {
            b[j] -= l[(i, j)] * bi;
        }
    }
    Ok(())
}

fn check_square(a: &Mat, blen: usize) -> Result<usize> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare {
            rows: a.nrows(),
            cols: a.ncols(),
        });
    }
    if a.nrows() != blen {
        return Err(LinalgError::ShapeMismatch {
            op: "triangular solve",
            lhs: a.shape(),
            rhs: (blen, 1),
        });
    }
    Ok(a.nrows())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::matvec;

    #[test]
    fn lower_solve_roundtrip() {
        let l = Mat::from_rows(&[
            vec![2.0, 0.0, 0.0],
            vec![1.0, 3.0, 0.0],
            vec![4.0, -1.0, 5.0],
        ])
        .unwrap();
        let x_true = [1.0, -2.0, 0.5];
        let mut b = matvec(&l, &x_true).unwrap();
        solve_lower_inplace(&l, &mut b).unwrap();
        for (a, e) in b.iter().zip(&x_true) {
            assert!((a - e).abs() < 1e-13);
        }
    }

    #[test]
    fn upper_solve_roundtrip() {
        let u = Mat::from_rows(&[
            vec![3.0, 1.0, -2.0],
            vec![0.0, 2.0, 4.0],
            vec![0.0, 0.0, -1.0],
        ])
        .unwrap();
        let x_true = [0.5, 2.0, -3.0];
        let mut b = matvec(&u, &x_true).unwrap();
        solve_upper_inplace(&u, &mut b).unwrap();
        for (a, e) in b.iter().zip(&x_true) {
            assert!((a - e).abs() < 1e-13);
        }
    }

    #[test]
    fn lower_transpose_solve_matches_explicit() {
        let l = Mat::from_rows(&[
            vec![2.0, 0.0, 0.0],
            vec![1.0, 3.0, 0.0],
            vec![4.0, -1.0, 5.0],
        ])
        .unwrap();
        let x_true = [1.0, 2.0, 3.0];
        let lt = l.transpose();
        let mut b1 = matvec(&lt, &x_true).unwrap();
        solve_lower_transpose_inplace(&l, &mut b1).unwrap();
        for (a, e) in b1.iter().zip(&x_true) {
            assert!((a - e).abs() < 1e-13);
        }
    }

    #[test]
    fn zero_pivot_is_singular() {
        let l = Mat::from_rows(&[vec![1.0, 0.0], vec![2.0, 0.0]]).unwrap();
        let mut b = vec![1.0, 1.0];
        assert!(matches!(
            solve_lower_inplace(&l, &mut b),
            Err(LinalgError::Singular { pivot: 1 })
        ));
    }

    #[test]
    fn shape_checks() {
        let l = Mat::identity(3);
        let mut short = vec![1.0, 2.0];
        assert!(solve_lower_inplace(&l, &mut short).is_err());
        let rect = Mat::zeros(2, 3);
        let mut b = vec![1.0, 2.0];
        assert!(solve_upper_inplace(&rect, &mut b).is_err());
    }
}
