//! Cholesky factorization of symmetric positive-definite matrices.
//!
//! This is the factorization behind SRDA's normal-equations solver: the
//! paper (§III.C.1) factors `XXᵀ + αI = RᵀR` once (`n³/6` flam) and then
//! back-solves for every response vector (`cn²` flam). We store the lower
//! factor `L` with `A = L·Lᵀ`, which is the same object transposed.

use crate::error::LinalgError;
use crate::matrix::Mat;
use crate::triangular;
use crate::{flam, Result};

/// A computed Cholesky factorization `A = L·Lᵀ`.
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Mat,
}

impl Cholesky {
    /// Factor a symmetric positive-definite matrix.
    ///
    /// Only the lower triangle of `a` is read; the strict upper triangle is
    /// ignored (callers may pass a matrix whose upper triangle is stale).
    /// Fails with [`LinalgError::NotPositiveDefinite`] if a pivot is
    /// non-positive — for SRDA this never happens when `α > 0` because the
    /// ridge shift makes the Gram matrix strictly positive definite.
    pub fn factor(a: &Mat) -> Result<Self> {
        #[cfg(feature = "failpoints")]
        if crate::failpoint::should_fail("cholesky.singular") {
            return Err(LinalgError::NotPositiveDefinite {
                pivot: 0,
                value: -1.0,
            });
        }
        if !a.is_square() {
            return Err(LinalgError::NotSquare {
                rows: a.nrows(),
                cols: a.ncols(),
            });
        }
        let n = a.nrows();
        flam::add((n * n * n / 6) as u64);
        let mut l = Mat::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                // dot of the already-computed prefixes of rows i and j
                let mut acc = a[(i, j)];
                let (ri, rj) = (l.row(i), l.row(j));
                for k in 0..j {
                    acc -= ri[k] * rj[k];
                }
                if i == j {
                    if acc <= 0.0 || !acc.is_finite() {
                        return Err(LinalgError::NotPositiveDefinite {
                            pivot: i,
                            value: acc,
                        });
                    }
                    l[(i, i)] = acc.sqrt();
                } else {
                    l[(i, j)] = acc / l[(j, j)];
                }
            }
        }
        Ok(Cholesky { l })
    }

    /// The lower-triangular factor `L`.
    pub fn l(&self) -> &Mat {
        &self.l
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.l.nrows()
    }

    /// Solve `A·x = b`, overwriting `b` with `x`.
    pub fn solve_inplace(&self, b: &mut [f64]) -> Result<()> {
        triangular::solve_lower_inplace(&self.l, b)?;
        triangular::solve_lower_transpose_inplace(&self.l, b)
    }

    /// Solve `A·x = b`, returning a fresh solution vector.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let mut x = b.to_vec();
        self.solve_inplace(&mut x)?;
        Ok(x)
    }

    /// Solve `A·X = B` for a matrix of right-hand sides (columns of `B`).
    /// This is SRDA's multi-response solve: one factorization amortized
    /// across `c − 1` systems.
    pub fn solve_mat(&self, b: &Mat) -> Result<Mat> {
        if b.nrows() != self.dim() {
            return Err(LinalgError::ShapeMismatch {
                op: "cholesky solve_mat",
                lhs: (self.dim(), self.dim()),
                rhs: b.shape(),
            });
        }
        let mut x = Mat::zeros(b.nrows(), b.ncols());
        let mut col = vec![0.0; b.nrows()];
        for j in 0..b.ncols() {
            for i in 0..b.nrows() {
                col[i] = b[(i, j)];
            }
            self.solve_inplace(&mut col)?;
            x.set_col(j, &col);
        }
        Ok(x)
    }

    /// log-determinant of `A` (`2·Σ log Lᵢᵢ`), handy for model-selection
    /// criteria.
    pub fn log_det(&self) -> f64 {
        self.l.diag().iter().map(|d| d.ln()).sum::<f64>() * 2.0
    }

    /// Cheap 2-norm condition-number estimate from the factor diagonal:
    /// `(max Lᵢᵢ / min Lᵢᵢ)²`. The diagonal of `L` brackets the singular
    /// values of `L` (`σ_min ≤ min Lᵢᵢ` need not hold in general, but for
    /// the diagonally-dominant Gram-plus-ridge matrices SRDA factors the
    /// ratio tracks `κ(A)` well within an order of magnitude), so this is
    /// the standard O(n) diagnostic for "how close to breakdown was this
    /// solve" without an extra factorization.
    pub fn condition_estimate(&self) -> f64 {
        let diag = self.l.diag();
        let mut lo = f64::INFINITY;
        let mut hi = 0.0f64;
        for d in diag {
            lo = lo.min(d);
            hi = hi.max(d);
        }
        if lo <= 0.0 || !lo.is_finite() {
            return f64::INFINITY;
        }
        let r = hi / lo;
        r * r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{gram, matmul, matmul_transb, matvec};

    fn spd(n: usize) -> Mat {
        // AᵀA + I is SPD for any A
        let a = Mat::from_fn(n + 2, n, |i, j| ((i * 13 + j * 7) % 11) as f64 / 11.0 - 0.4);
        let mut g = gram(&a);
        g.add_to_diag(1.0);
        g
    }

    #[test]
    fn factor_reconstructs() {
        let a = spd(8);
        let ch = Cholesky::factor(&a).unwrap();
        let recon = matmul_transb(ch.l(), ch.l()).unwrap();
        assert!(recon.approx_eq(&a, 1e-10));
    }

    #[test]
    fn l_is_lower_triangular() {
        let ch = Cholesky::factor(&spd(6)).unwrap();
        for i in 0..6 {
            for j in (i + 1)..6 {
                assert_eq!(ch.l()[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn solve_roundtrip() {
        let a = spd(10);
        let ch = Cholesky::factor(&a).unwrap();
        let x_true: Vec<f64> = (0..10).map(|i| (i as f64) - 4.5).collect();
        let b = matvec(&a, &x_true).unwrap();
        let x = ch.solve(&b).unwrap();
        for (u, v) in x.iter().zip(&x_true) {
            assert!((u - v).abs() < 1e-9);
        }
    }

    #[test]
    fn solve_mat_matches_columnwise() {
        let a = spd(7);
        let ch = Cholesky::factor(&a).unwrap();
        let b = Mat::from_fn(7, 3, |i, j| (i as f64 + 1.0) * (j as f64 - 1.0));
        let x = ch.solve_mat(&b).unwrap();
        let recon = matmul(&a, &x).unwrap();
        assert!(recon.approx_eq(&b, 1e-9));
    }

    #[test]
    fn rejects_indefinite() {
        let a = Mat::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0]]).unwrap(); // eigenvalues 3, -1
        assert!(matches!(
            Cholesky::factor(&a),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn rejects_non_square() {
        assert!(Cholesky::factor(&Mat::zeros(2, 3)).is_err());
    }

    #[test]
    fn ignores_upper_triangle() {
        let mut a = spd(5);
        let ch1 = Cholesky::factor(&a).unwrap();
        // poison the strict upper triangle
        for i in 0..5 {
            for j in (i + 1)..5 {
                a[(i, j)] = f64::NAN;
            }
        }
        let ch2 = Cholesky::factor(&a).unwrap();
        assert!(ch1.l().approx_eq(ch2.l(), 0.0));
    }

    #[test]
    fn log_det_of_identity_is_zero() {
        let ch = Cholesky::factor(&Mat::identity(4)).unwrap();
        assert!(ch.log_det().abs() < 1e-14);
    }

    #[test]
    fn log_det_of_diag() {
        let ch = Cholesky::factor(&Mat::from_diag(&[2.0, 3.0])).unwrap();
        assert!((ch.log_det() - 6.0f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn one_by_one() {
        let ch = Cholesky::factor(&Mat::from_diag(&[9.0])).unwrap();
        assert_eq!(ch.l()[(0, 0)], 3.0);
        assert_eq!(ch.solve(&[18.0]).unwrap(), vec![2.0]);
    }

    #[test]
    fn condition_estimate_tracks_diagonal_spread() {
        // identity: perfectly conditioned
        let ch = Cholesky::factor(&Mat::identity(5)).unwrap();
        assert!((ch.condition_estimate() - 1.0).abs() < 1e-14);
        // diag(100, 1): L = diag(10, 1), estimate = 100 = true κ
        let ch = Cholesky::factor(&Mat::from_diag(&[100.0, 1.0])).unwrap();
        assert!((ch.condition_estimate() - 100.0).abs() < 1e-10);
    }

    #[test]
    fn solve_mat_shape_check() {
        let ch = Cholesky::factor(&Mat::identity(3)).unwrap();
        assert!(ch.solve_mat(&Mat::zeros(4, 2)).is_err());
    }
}
