//! Cholesky factorization of symmetric positive-definite matrices.
//!
//! This is the factorization behind SRDA's normal-equations solver: the
//! paper (§III.C.1) factors `XXᵀ + αI = RᵀR` once (`n³/6` flam) and then
//! back-solves for every response vector (`cn²` flam). We store the lower
//! factor `L` with `A = L·Lᵀ`, which is the same object transposed.

use crate::error::LinalgError;
use crate::matrix::Mat;
use crate::triangular;
use crate::{flam, Result};

/// A computed Cholesky factorization `A = L·Lᵀ`.
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Mat,
    /// ‖A‖₁ of the factored matrix, captured at factor time (from the lower
    /// triangle plus symmetry) so the Hager condition estimate needs no
    /// access to `A` afterwards.
    norm1: f64,
}

impl Cholesky {
    /// Factor a symmetric positive-definite matrix.
    ///
    /// Only the lower triangle of `a` is read; the strict upper triangle is
    /// ignored (callers may pass a matrix whose upper triangle is stale).
    /// Fails with [`LinalgError::NotPositiveDefinite`] if a pivot is
    /// non-positive — for SRDA this never happens when `α > 0` because the
    /// ridge shift makes the Gram matrix strictly positive definite.
    pub fn factor(a: &Mat) -> Result<Self> {
        #[cfg(feature = "failpoints")]
        if crate::failpoint::should_fail("cholesky.singular") {
            return Err(LinalgError::NotPositiveDefinite {
                pivot: 0,
                value: -1.0,
            });
        }
        if !a.is_square() {
            return Err(LinalgError::NotSquare {
                rows: a.nrows(),
                cols: a.ncols(),
            });
        }
        let n = a.nrows();
        flam::add((n * n * n / 6) as u64);
        // ‖A‖₁ from the lower triangle + symmetry (the strict upper triangle
        // may be stale, so it must not be read): column j collects |a_ij| for
        // i ≥ j directly and |a_ij| for i < j via its mirror a_ji.
        let mut col_sums = vec![0.0f64; n];
        for i in 0..n {
            let row = a.row(i);
            for j in 0..=i {
                let v = row[j].abs();
                col_sums[j] += v;
                if i != j {
                    col_sums[i] += v;
                }
            }
        }
        let norm1 = col_sums.iter().fold(0.0f64, |m, &v| m.max(v));
        let mut l = Mat::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                // dot of the already-computed prefixes of rows i and j
                let mut acc = a[(i, j)];
                let (ri, rj) = (l.row(i), l.row(j));
                for k in 0..j {
                    acc -= ri[k] * rj[k];
                }
                if i == j {
                    if acc <= 0.0 || !acc.is_finite() {
                        return Err(LinalgError::NotPositiveDefinite {
                            pivot: i,
                            value: acc,
                        });
                    }
                    l[(i, i)] = acc.sqrt();
                } else {
                    l[(i, j)] = acc / l[(j, j)];
                }
            }
        }
        Ok(Cholesky { l, norm1 })
    }

    /// The lower-triangular factor `L`.
    pub fn l(&self) -> &Mat {
        &self.l
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.l.nrows()
    }

    /// Solve `A·x = b`, overwriting `b` with `x`.
    pub fn solve_inplace(&self, b: &mut [f64]) -> Result<()> {
        triangular::solve_lower_inplace(&self.l, b)?;
        triangular::solve_lower_transpose_inplace(&self.l, b)
    }

    /// Solve `A·x = b`, returning a fresh solution vector.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let mut x = b.to_vec();
        self.solve_inplace(&mut x)?;
        Ok(x)
    }

    /// Solve `A·X = B` for a matrix of right-hand sides (columns of `B`).
    /// This is SRDA's multi-response solve: one factorization amortized
    /// across `c − 1` systems.
    pub fn solve_mat(&self, b: &Mat) -> Result<Mat> {
        if b.nrows() != self.dim() {
            return Err(LinalgError::ShapeMismatch {
                op: "cholesky solve_mat",
                lhs: (self.dim(), self.dim()),
                rhs: b.shape(),
            });
        }
        let mut x = Mat::zeros(b.nrows(), b.ncols());
        let mut col = vec![0.0; b.nrows()];
        for j in 0..b.ncols() {
            for i in 0..b.nrows() {
                col[i] = b[(i, j)];
            }
            self.solve_inplace(&mut col)?;
            x.set_col(j, &col);
        }
        Ok(x)
    }

    /// log-determinant of `A` (`2·Σ log Lᵢᵢ`), handy for model-selection
    /// criteria.
    pub fn log_det(&self) -> f64 {
        self.l.diag().iter().map(|d| d.ln()).sum::<f64>() * 2.0
    }

    /// 1-norm condition-number estimate `κ₁(A) ≈ ‖A‖₁·‖A⁻¹‖₁` via Hager's
    /// algorithm (the LINPACK/LAPACK `gecon` scheme). `‖A‖₁` was captured at
    /// factor time; `‖A⁻¹‖₁` is estimated by maximizing `‖A⁻¹x‖₁` over the
    /// unit 1-norm ball with at most five solve-powered gradient steps
    /// (`A` is symmetric, so `A⁻ᵀ = A⁻¹` and one solve routine serves both
    /// directions). Cost is O(n²) per step against the O(n³/6) factorization.
    /// The estimate is a lower bound on κ₁ that is almost always within a
    /// small factor of it — reliable enough to gate solution certification,
    /// unlike the O(n) diagonal heuristic kept as
    /// [`condition_lower_bound`](Self::condition_lower_bound).
    pub fn condition_estimate(&self) -> f64 {
        let n = self.dim();
        if n == 0 {
            return 1.0;
        }
        // Hager: x starts at the barycenter e/n; each step solves y = A⁻¹x,
        // probes the subgradient via z = A⁻¹·sign(y), and restarts from the
        // coordinate vector where |z| peaks until no improvement is possible.
        let mut x = vec![1.0 / n as f64; n];
        let mut inv_est = 0.0f64;
        for _ in 0..5 {
            let mut y = x.clone();
            if self.solve_inplace(&mut y).is_err() {
                return f64::INFINITY;
            }
            let est: f64 = y.iter().map(|v| v.abs()).sum();
            if !est.is_finite() {
                return f64::INFINITY;
            }
            if est > inv_est {
                inv_est = est;
            }
            // ξ = sign(y) (sign(0) = +1), z = A⁻ᵀξ = A⁻¹ξ
            let mut z: Vec<f64> = y
                .iter()
                .map(|&v| if v < 0.0 { -1.0 } else { 1.0 })
                .collect();
            if self.solve_inplace(&mut z).is_err() {
                return f64::INFINITY;
            }
            let mut j = 0;
            let mut z_inf = 0.0f64;
            for (i, &v) in z.iter().enumerate() {
                if v.abs() > z_inf {
                    z_inf = v.abs();
                    j = i;
                }
            }
            let ztx: f64 = z.iter().zip(&x).map(|(a, b)| a * b).sum();
            if !z_inf.is_finite() {
                return f64::INFINITY;
            }
            if z_inf <= ztx {
                break;
            }
            x.iter_mut().for_each(|v| *v = 0.0);
            x[j] = 1.0;
        }
        let kappa = (self.norm1 * inv_est).max(1.0);
        #[cfg(feature = "failpoints")]
        if crate::failpoint::should_fail("cond.inflate") {
            // Simulate a catastrophically ill-conditioned matrix so the
            // certification layer sees an inflated error bound. The factor
            // dwarfs any honest κ of the small test fixtures, so even an
            // ε-level backward error fails the certification bound.
            return kappa * 1e14;
        }
        kappa
    }

    /// Cheap 2-norm condition-number *lower bound* from the factor diagonal:
    /// `(max Lᵢᵢ / min Lᵢᵢ)²`. O(n) and free of extra solves, but it only
    /// sees the diagonal of `L`: for matrices whose ill-conditioning lives in
    /// the off-diagonal coupling (e.g. the second-difference matrix, or any
    /// near-singular matrix with a flat diagonal) the ratio stays small while
    /// the true κ grows without bound — it *lies low*, never high. Use it as
    /// a quick screen; use [`condition_estimate`](Self::condition_estimate)
    /// (Hager) when the number gates a decision.
    pub fn condition_lower_bound(&self) -> f64 {
        let diag = self.l.diag();
        let mut lo = f64::INFINITY;
        let mut hi = 0.0f64;
        for d in diag {
            lo = lo.min(d);
            hi = hi.max(d);
        }
        if lo <= 0.0 || !lo.is_finite() {
            return f64::INFINITY;
        }
        let r = hi / lo;
        r * r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{gram, matmul, matmul_transb, matvec};

    fn spd(n: usize) -> Mat {
        // AᵀA + I is SPD for any A
        let a = Mat::from_fn(n + 2, n, |i, j| ((i * 13 + j * 7) % 11) as f64 / 11.0 - 0.4);
        let mut g = gram(&a);
        g.add_to_diag(1.0);
        g
    }

    #[test]
    fn factor_reconstructs() {
        let a = spd(8);
        let ch = Cholesky::factor(&a).unwrap();
        let recon = matmul_transb(ch.l(), ch.l()).unwrap();
        assert!(recon.approx_eq(&a, 1e-10));
    }

    #[test]
    fn l_is_lower_triangular() {
        let ch = Cholesky::factor(&spd(6)).unwrap();
        for i in 0..6 {
            for j in (i + 1)..6 {
                assert_eq!(ch.l()[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn solve_roundtrip() {
        let a = spd(10);
        let ch = Cholesky::factor(&a).unwrap();
        let x_true: Vec<f64> = (0..10).map(|i| (i as f64) - 4.5).collect();
        let b = matvec(&a, &x_true).unwrap();
        let x = ch.solve(&b).unwrap();
        for (u, v) in x.iter().zip(&x_true) {
            assert!((u - v).abs() < 1e-9);
        }
    }

    #[test]
    fn solve_mat_matches_columnwise() {
        let a = spd(7);
        let ch = Cholesky::factor(&a).unwrap();
        let b = Mat::from_fn(7, 3, |i, j| (i as f64 + 1.0) * (j as f64 - 1.0));
        let x = ch.solve_mat(&b).unwrap();
        let recon = matmul(&a, &x).unwrap();
        assert!(recon.approx_eq(&b, 1e-9));
    }

    #[test]
    fn rejects_indefinite() {
        let a = Mat::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0]]).unwrap(); // eigenvalues 3, -1
        assert!(matches!(
            Cholesky::factor(&a),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn rejects_non_square() {
        assert!(Cholesky::factor(&Mat::zeros(2, 3)).is_err());
    }

    #[test]
    fn ignores_upper_triangle() {
        let mut a = spd(5);
        let ch1 = Cholesky::factor(&a).unwrap();
        // poison the strict upper triangle
        for i in 0..5 {
            for j in (i + 1)..5 {
                a[(i, j)] = f64::NAN;
            }
        }
        let ch2 = Cholesky::factor(&a).unwrap();
        assert!(ch1.l().approx_eq(ch2.l(), 0.0));
    }

    #[test]
    fn log_det_of_identity_is_zero() {
        let ch = Cholesky::factor(&Mat::identity(4)).unwrap();
        assert!(ch.log_det().abs() < 1e-14);
    }

    #[test]
    fn log_det_of_diag() {
        let ch = Cholesky::factor(&Mat::from_diag(&[2.0, 3.0])).unwrap();
        assert!((ch.log_det() - 6.0f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn one_by_one() {
        let ch = Cholesky::factor(&Mat::from_diag(&[9.0])).unwrap();
        assert_eq!(ch.l()[(0, 0)], 3.0);
        assert_eq!(ch.solve(&[18.0]).unwrap(), vec![2.0]);
    }

    #[test]
    fn condition_estimate_tracks_diagonal_spread() {
        // identity: perfectly conditioned
        let ch = Cholesky::factor(&Mat::identity(5)).unwrap();
        assert!((ch.condition_estimate() - 1.0).abs() < 1e-14);
        // diag(100, 1): κ₁ = 100 exactly, and Hager is exact on diagonals
        let ch = Cholesky::factor(&Mat::from_diag(&[100.0, 1.0])).unwrap();
        assert!((ch.condition_estimate() - 100.0).abs() < 1e-10);
    }

    #[test]
    fn condition_lower_bound_matches_diag_ratio() {
        let ch = Cholesky::factor(&Mat::identity(5)).unwrap();
        assert!((ch.condition_lower_bound() - 1.0).abs() < 1e-14);
        // diag(100, 1): L = diag(10, 1), ratio² = 100
        let ch = Cholesky::factor(&Mat::from_diag(&[100.0, 1.0])).unwrap();
        assert!((ch.condition_lower_bound() - 100.0).abs() < 1e-10);
    }

    #[test]
    fn hager_sees_off_diagonal_ill_conditioning_the_diag_ratio_misses() {
        // Second-difference matrix tridiag(-1, 2, -1), n = 20: the true
        // κ₁ = ‖A‖₁·‖A⁻¹‖₁ = 4 · 55 = 220, but the Cholesky diagonal is
        // nearly flat (√2 decaying toward 1), so the diag-ratio bound
        // reports ~2. Hager must recover the real magnitude.
        let n = 20;
        let a = Mat::from_fn(n, n, |i, j| {
            if i == j {
                2.0
            } else if i.abs_diff(j) == 1 {
                -1.0
            } else {
                0.0
            }
        });
        let ch = Cholesky::factor(&a).unwrap();
        let lower = ch.condition_lower_bound();
        let hager = ch.condition_estimate();
        assert!(lower < 10.0, "diag ratio lies low: {lower}");
        assert!(hager > 50.0, "Hager should see the coupling: {hager}");
        assert!(hager <= 220.0 * (1.0 + 1e-10), "κ₁ estimate is a lower bound: {hager}");
    }

    #[test]
    fn condition_estimates_on_empty_and_scalar() {
        let ch = Cholesky::factor(&Mat::from_diag(&[4.0])).unwrap();
        assert!((ch.condition_estimate() - 1.0).abs() < 1e-14);
        assert!((ch.condition_lower_bound() - 1.0).abs() < 1e-14);
    }

    #[test]
    fn solve_mat_shape_check() {
        let ch = Cholesky::factor(&Mat::identity(3)).unwrap();
        assert!(ch.solve_mat(&Mat::zeros(4, 2)).is_err());
    }
}
