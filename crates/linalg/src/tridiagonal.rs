//! Householder reduction of a symmetric matrix to tridiagonal form.
//!
//! This is the first phase of the symmetric eigensolver (`A = Q·T·Qᵀ` with
//! `T` tridiagonal), following the classic `tred2` scheme (Householder
//! reflections applied two-sided, with the orthogonal transform accumulated
//! in place).

use crate::error::LinalgError;
use crate::matrix::Mat;
use crate::{flam, Result};

/// Result of a Householder tridiagonalization: `A = Q·T·Qᵀ` where `T` has
/// main diagonal `d` and sub/super-diagonal `e[1..]` (`e[0]` is unused and
/// set to zero).
#[derive(Debug, Clone)]
pub struct Tridiagonal {
    /// Main diagonal of `T` (length `n`).
    pub d: Vec<f64>,
    /// Off-diagonal of `T` (length `n`, `e[0] = 0`, `e[i] = T[i, i-1]`).
    pub e: Vec<f64>,
    /// Accumulated orthogonal transform (`n × n`).
    pub q: Mat,
}

/// Tridiagonalize a symmetric matrix. Only the lower triangle is read.
pub fn tridiagonalize(a: &Mat) -> Result<Tridiagonal> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare {
            rows: a.nrows(),
            cols: a.ncols(),
        });
    }
    let n = a.nrows();
    flam::add((4 * n * n * n / 3) as u64);
    let mut z = a.clone();
    // mirror lower triangle to upper so the algorithm can read either
    for i in 0..n {
        for j in (i + 1)..n {
            z[(i, j)] = z[(j, i)];
        }
    }
    let mut d = vec![0.0; n];
    let mut e = vec![0.0; n];
    if n == 0 {
        return Ok(Tridiagonal { d, e, q: z });
    }

    for i in (1..n).rev() {
        let l = i - 1;
        let mut h = 0.0;
        if l > 0 {
            let mut scale = 0.0;
            for k in 0..=l {
                scale += z[(i, k)].abs();
            }
            if scale == 0.0 {
                e[i] = z[(i, l)];
            } else {
                for k in 0..=l {
                    z[(i, k)] /= scale;
                    h += z[(i, k)] * z[(i, k)];
                }
                let f = z[(i, l)];
                let g = if f >= 0.0 { -h.sqrt() } else { h.sqrt() };
                e[i] = scale * g;
                h -= f * g;
                z[(i, l)] = f - g;
                let mut fsum = 0.0;
                for j in 0..=l {
                    z[(j, i)] = z[(i, j)] / h;
                    let mut g2 = 0.0;
                    for k in 0..=j {
                        g2 += z[(j, k)] * z[(i, k)];
                    }
                    for k in (j + 1)..=l {
                        g2 += z[(k, j)] * z[(i, k)];
                    }
                    e[j] = g2 / h;
                    fsum += e[j] * z[(i, j)];
                }
                let hh = fsum / (h + h);
                for j in 0..=l {
                    let f2 = z[(i, j)];
                    let g2 = e[j] - hh * f2;
                    e[j] = g2;
                    for k in 0..=j {
                        let delta = f2 * e[k] + g2 * z[(i, k)];
                        z[(j, k)] -= delta;
                    }
                }
            }
        } else {
            e[i] = z[(i, l)];
        }
        d[i] = h;
    }
    d[0] = 0.0;
    e[0] = 0.0;

    // accumulate the orthogonal transform
    for i in 0..n {
        if i > 0 && d[i] != 0.0 {
            let l = i - 1;
            for j in 0..=l {
                let mut g = 0.0;
                for k in 0..=l {
                    g += z[(i, k)] * z[(k, j)];
                }
                for k in 0..=l {
                    let zki = z[(k, i)];
                    z[(k, j)] -= g * zki;
                }
            }
        }
        d[i] = z[(i, i)];
        z[(i, i)] = 1.0;
        if i > 0 {
            let l = i - 1;
            for j in 0..=l {
                z[(j, i)] = 0.0;
                z[(i, j)] = 0.0;
            }
        }
    }

    Ok(Tridiagonal { d, e, q: z })
}

impl Tridiagonal {
    /// Rebuild the explicit tridiagonal matrix `T` (for tests).
    pub fn t_matrix(&self) -> Mat {
        let n = self.d.len();
        let mut t = Mat::zeros(n, n);
        for i in 0..n {
            t[(i, i)] = self.d[i];
            if i > 0 {
                t[(i, i - 1)] = self.e[i];
                t[(i - 1, i)] = self.e[i];
            }
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{matmul, matmul_transa, matmul_transb};

    fn sym(n: usize) -> Mat {
        let a = Mat::from_fn(n, n, |i, j| ((i * 3 + j * 5) % 7) as f64 - 3.0);
        let mut s = a.add(&a.transpose()).unwrap();
        s.scale_inplace(0.5);
        s
    }

    #[test]
    fn q_is_orthogonal() {
        let tri = tridiagonalize(&sym(8)).unwrap();
        let qtq = matmul_transa(&tri.q, &tri.q).unwrap();
        assert!(qtq.approx_eq(&Mat::identity(8), 1e-12));
    }

    #[test]
    fn reconstruction_q_t_qt() {
        let a = sym(8);
        let tri = tridiagonalize(&a).unwrap();
        let qt = matmul(&tri.q, &tri.t_matrix()).unwrap();
        let recon = matmul_transb(&qt, &tri.q).unwrap();
        assert!(recon.approx_eq(&a, 1e-10), "reconstruction failed");
    }

    #[test]
    fn already_tridiagonal_input() {
        let mut a = Mat::zeros(5, 5);
        for i in 0..5 {
            a[(i, i)] = (i + 1) as f64;
            if i > 0 {
                a[(i, i - 1)] = 0.5;
                a[(i - 1, i)] = 0.5;
            }
        }
        let tri = tridiagonalize(&a).unwrap();
        let qt = matmul(&tri.q, &tri.t_matrix()).unwrap();
        let recon = matmul_transb(&qt, &tri.q).unwrap();
        assert!(recon.approx_eq(&a, 1e-12));
    }

    #[test]
    fn diagonal_input_is_fixed_point() {
        let a = Mat::from_diag(&[3.0, 1.0, 4.0, 1.0, 5.0]);
        let tri = tridiagonalize(&a).unwrap();
        for i in 1..5 {
            assert!(tri.e[i].abs() < 1e-14);
        }
    }

    #[test]
    fn tiny_sizes() {
        let t0 = tridiagonalize(&Mat::zeros(0, 0)).unwrap();
        assert!(t0.d.is_empty());
        let t1 = tridiagonalize(&Mat::from_diag(&[7.0])).unwrap();
        assert_eq!(t1.d, vec![7.0]);
        let a2 = Mat::from_rows(&[vec![1.0, 2.0], vec![2.0, 3.0]]).unwrap();
        let t2 = tridiagonalize(&a2).unwrap();
        let qt = matmul(&t2.q, &t2.t_matrix()).unwrap();
        let recon = matmul_transb(&qt, &t2.q).unwrap();
        assert!(recon.approx_eq(&a2, 1e-13));
    }

    #[test]
    fn non_square_rejected() {
        assert!(tridiagonalize(&Mat::zeros(2, 3)).is_err());
    }

    #[test]
    fn reads_lower_triangle_only() {
        let mut a = sym(6);
        let t1 = tridiagonalize(&a).unwrap();
        for i in 0..6 {
            for j in (i + 1)..6 {
                a[(i, j)] = f64::NAN;
            }
        }
        let t2 = tridiagonalize(&a).unwrap();
        assert_eq!(t1.d, t2.d);
        assert_eq!(t1.e, t2.e);
    }
}
