//! Fixed-precision iterative refinement for Cholesky solves.
//!
//! The classic Wilkinson/Higham loop: given a factorization of `A` and a
//! computed solution `x₀` of `A·x = b`, repeat
//!
//! ```text
//!   r ← b − A·x        (residual in compensated arithmetic)
//!   d ← A⁻¹ r          (one cheap solve against the existing factor)
//!   x ← x + d
//! ```
//!
//! until the normwise relative backward error
//! `η(x) = ‖b − A·x‖∞ / (‖A‖∞·‖x‖∞ + ‖b‖∞)` reaches the working-precision
//! floor, the correction stops shrinking (stagnation), or the step budget
//! runs out. Each step costs one `O(n²)` residual plus one `O(n²)`
//! back-substitution against the already-computed factor — negligible next
//! to the `O(n³/6)` factorization — and in fixed precision it restores
//! backward stability even when the factorization itself was computed from
//! a worryingly conditioned matrix (Higham, *Accuracy and Stability of
//! Numerical Algorithms*, ch. 12).
//!
//! The residual is accumulated with an Ogita–Rump compensated dot
//! (`mul_add`-extracted product errors + Neumaier summation), giving close
//! to twice-working-precision residuals without any extended type.

use crate::cholesky::Cholesky;
use crate::error::LinalgError;
use crate::matrix::Mat;
use crate::{flam, Result};

/// Outcome of [`refine_solve`]: how many correction steps ran and the best
/// backward error achieved.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RefineReport {
    /// Number of correction steps applied (0 if `x` was already at the
    /// working-precision floor).
    pub steps: usize,
    /// Normwise relative backward error of the returned `x` (the best
    /// iterate seen, not necessarily the last).
    pub backward_error: f64,
    /// The backward error reached the working-precision target.
    pub converged: bool,
    /// The correction norm stopped contracting before the target was met
    /// (the textbook signal that refinement cannot help further — usually
    /// because `κ(A)·ε ≳ 1`).
    pub stagnated: bool,
}

/// Normwise relative backward error
/// `η(x) = ‖b − A·x‖∞ / (‖A‖∞·‖x‖∞ + ‖b‖∞)` of a candidate solution.
///
/// This is the Rigal–Gaches quantity: the size of the smallest relative
/// perturbation `(ΔA, Δb)` for which `x` solves `(A+ΔA)·x = b+Δb` exactly.
/// A backward-stable solve keeps it near machine epsilon regardless of
/// conditioning; values far above that mean the *solve itself* misbehaved.
/// Reads the full matrix `a` (both triangles must be valid).
pub fn backward_error(a: &Mat, b: &[f64], x: &[f64]) -> f64 {
    let n = a.nrows();
    let mut r = vec![0.0; n];
    residual_into(a, b, x, &mut r);
    eta(a_inf_norm(a), &r, b, x)
}

/// Refine a computed solution of `A·x = b` in place against an existing
/// Cholesky factor of `A` (or of a nearby matrix — refinement against a
/// jittered factor still contracts as long as the factor is a reasonable
/// preconditioner for `A`).
///
/// `a` must be the *full* symmetric matrix (both triangles valid), unlike
/// [`Cholesky::factor`] which reads only the lower triangle. On return `x`
/// holds the best iterate seen — the backward error of the output is never
/// worse than that of the input, even when refinement stagnates or
/// diverges (the loop tracks and restores the best candidate).
pub fn refine_solve(
    chol: &Cholesky,
    a: &Mat,
    b: &[f64],
    x: &mut [f64],
    max_steps: usize,
) -> Result<RefineReport> {
    let n = a.nrows();
    if !a.is_square() {
        return Err(LinalgError::NotSquare {
            rows: a.nrows(),
            cols: a.ncols(),
        });
    }
    if b.len() != n || x.len() != n || chol.dim() != n {
        return Err(LinalgError::ShapeMismatch {
            op: "refine_solve",
            lhs: (n, n),
            rhs: (b.len(), x.len()),
        });
    }
    let a_inf = a_inf_norm(a);
    let mut r = vec![0.0; n];
    residual_into(a, b, x, &mut r);
    let mut best_eta = eta(a_inf, &r, b, x);
    // Working-precision target: a backward-stable solve lands at O(n·ε).
    let target = (n as f64 * f64::EPSILON).max(4.0 * f64::EPSILON);
    if best_eta <= target {
        return Ok(RefineReport {
            steps: 0,
            backward_error: best_eta,
            converged: true,
            stagnated: false,
        });
    }
    #[cfg(feature = "failpoints")]
    if crate::failpoint::should_fail("refine.stagnate") {
        // Simulate refinement that cannot make progress: report immediate
        // stagnation so the certification layer must escalate instead.
        return Ok(RefineReport {
            steps: 0,
            backward_error: best_eta,
            converged: false,
            stagnated: true,
        });
    }
    let mut best_x = x.to_vec();
    let mut prev_d_inf = f64::INFINITY;
    let mut steps = 0;
    let mut converged = false;
    let mut stagnated = false;
    for _ in 0..max_steps {
        let mut d = r.clone();
        chol.solve_inplace(&mut d)?;
        let d_inf = d.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
        if !d_inf.is_finite() {
            stagnated = true;
            break;
        }
        for (xi, di) in x.iter_mut().zip(&d) {
            *xi += di;
        }
        steps += 1;
        residual_into(a, b, x, &mut r);
        let eta_now = eta(a_inf, &r, b, x);
        if eta_now < best_eta {
            best_eta = eta_now;
            best_x.copy_from_slice(x);
        }
        if eta_now <= target {
            converged = true;
            break;
        }
        // Correction norms of a working refinement contract by ~κ·ε per
        // step; a step shrinking by less than half signals stagnation.
        if d_inf >= 0.5 * prev_d_inf {
            stagnated = true;
            break;
        }
        prev_d_inf = d_inf;
    }
    x.copy_from_slice(&best_x);
    Ok(RefineReport {
        steps,
        backward_error: best_eta,
        converged,
        stagnated,
    })
}

/// `‖A‖∞` (max absolute row sum).
fn a_inf_norm(a: &Mat) -> f64 {
    let mut best = 0.0f64;
    for i in 0..a.nrows() {
        let s: f64 = a.row(i).iter().map(|v| v.abs()).sum();
        best = best.max(s);
    }
    best
}

/// `η = ‖r‖∞ / (‖A‖∞·‖x‖∞ + ‖b‖∞)`, with the 0/0 case defined as 0.
fn eta(a_inf: f64, r: &[f64], b: &[f64], x: &[f64]) -> f64 {
    let r_inf = r.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
    let x_inf = x.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
    let b_inf = b.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
    let denom = a_inf * x_inf + b_inf;
    if r_inf == 0.0 {
        0.0
    } else if denom == 0.0 || !r_inf.is_finite() {
        f64::INFINITY
    } else {
        r_inf / denom
    }
}

/// `r ← b − A·x` with an Ogita–Rump compensated accumulation: each product
/// contributes its `mul_add`-extracted rounding error, and the running sum
/// uses Neumaier's branch. Costs ~4× a naive residual but keeps ~2×
/// working precision, which is what makes fixed-precision refinement
/// converge.
fn residual_into(a: &Mat, b: &[f64], x: &[f64], r: &mut [f64]) {
    let n = a.nrows();
    flam::add((n * n) as u64);
    for i in 0..n {
        let row = a.row(i);
        let mut sum = b[i];
        let mut comp = 0.0f64;
        for (&aij, &xj) in row.iter().zip(x) {
            let p = -aij * xj;
            let e = (-aij).mul_add(xj, -p); // exact rounding error of p
            let s = sum + p;
            if sum.abs() >= p.abs() {
                comp += (sum - s) + p;
            } else {
                comp += (p - s) + sum;
            }
            sum = s;
            comp += e;
        }
        r[i] = sum + comp;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::matvec;

    /// Hilbert matrix: the canonical ill-conditioned SPD test case.
    fn hilbert(n: usize) -> Mat {
        Mat::from_fn(n, n, |i, j| 1.0 / (i as f64 + j as f64 + 1.0))
    }

    #[test]
    fn exact_solution_needs_no_steps() {
        let a = Mat::from_diag(&[2.0, 4.0]);
        let chol = Cholesky::factor(&a).unwrap();
        let mut x = vec![3.0, 0.5];
        let b = vec![6.0, 2.0];
        let rep = refine_solve(&chol, &a, &b, &mut x, 5).unwrap();
        assert_eq!(rep.steps, 0);
        assert!(rep.converged);
        assert_eq!(rep.backward_error, 0.0);
        assert_eq!(x, vec![3.0, 0.5]);
    }

    #[test]
    fn refinement_reduces_backward_error_on_hilbert() {
        let n = 10;
        let mut a = hilbert(n);
        a.add_to_diag(1e-10);
        let chol = Cholesky::factor(&a).unwrap();
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64) - 4.0).collect();
        let b = matvec(&a, &x_true).unwrap();
        // Deliberately perturb the solve so there is something to refine.
        let mut x = chol.solve(&b).unwrap();
        for v in x.iter_mut() {
            *v *= 1.0 + 1e-7;
        }
        let before = backward_error(&a, &b, &x);
        assert!(before > 1e-12, "perturbed start must be bad: {before:e}");
        let rep = refine_solve(&chol, &a, &b, &mut x, 5).unwrap();
        assert!(rep.steps >= 1);
        assert!(rep.backward_error < before);
        assert!(
            rep.backward_error <= 1e-12,
            "refined η = {:e}",
            rep.backward_error
        );
        // the report matches the returned iterate
        let after = backward_error(&a, &b, &x);
        assert!((after - rep.backward_error).abs() <= after.max(1e-300) * 1e-6 + 1e-18);
    }

    #[test]
    fn never_returns_a_worse_iterate() {
        // Extremely ill-conditioned: refinement may stagnate, but the
        // returned x must never have a larger backward error than the input.
        let n = 12;
        let mut a = hilbert(n);
        a.add_to_diag(1e-14);
        let chol = Cholesky::factor(&a).unwrap();
        let b: Vec<f64> = (0..n).map(|i| 1.0 / (i as f64 + 1.0)).collect();
        let mut x = chol.solve(&b).unwrap();
        let before = backward_error(&a, &b, &x);
        let rep = refine_solve(&chol, &a, &b, &mut x, 8).unwrap();
        let after = backward_error(&a, &b, &x);
        assert!(after <= before * (1.0 + 1e-12) + f64::EPSILON);
        assert!(rep.backward_error.is_finite());
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let a = Mat::from_diag(&[1.0, 2.0]);
        let chol = Cholesky::factor(&a).unwrap();
        let mut x = vec![0.0; 3];
        assert!(refine_solve(&chol, &a, &[1.0, 2.0], &mut x, 3).is_err());
    }

    #[test]
    fn zero_rhs_certifies_trivially() {
        let a = Mat::from_diag(&[1.0, 2.0]);
        let chol = Cholesky::factor(&a).unwrap();
        let mut x = vec![0.0, 0.0];
        let rep = refine_solve(&chol, &a, &[0.0, 0.0], &mut x, 3).unwrap();
        assert!(rep.converged);
        assert_eq!(rep.backward_error, 0.0);
    }

    #[cfg(feature = "failpoints")]
    #[test]
    fn stagnate_failpoint_reports_immediate_stagnation() {
        use crate::failpoint;
        let n = 10;
        let mut a = hilbert(n);
        a.add_to_diag(1e-10);
        let chol = Cholesky::factor(&a).unwrap();
        let b: Vec<f64> = vec![1.0; n];
        let mut x = chol.solve(&b).unwrap();
        for v in x.iter_mut() {
            *v *= 1.0 + 1e-6; // make the start bad enough to need refinement
        }
        failpoint::reset();
        failpoint::arm("refine.stagnate", 1);
        let rep = refine_solve(&chol, &a, &b, &mut x, 5).unwrap();
        failpoint::reset();
        assert_eq!(rep.steps, 0);
        assert!(rep.stagnated);
        assert!(!rep.converged);
    }
}
