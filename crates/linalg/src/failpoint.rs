//! Deterministic fault injection for robustness testing.
//!
//! Compiled only with the `failpoints` cargo feature; production builds
//! carry none of this code. A failpoint is a named site in a fallible
//! routine (e.g. `"cholesky.singular"`, `"diskcsr.read"`,
//! `"lsqr.breakdown"`, `"refine.stagnate"` — force iterative refinement to
//! report immediate stagnation — and `"cond.inflate"` — inflate the Hager
//! condition estimate so certification fails) that a test can *arm* to
//! fail a fixed number of times, letting recovery paths be driven without
//! contriving numerically pathological inputs.
//!
//! State is thread-local, so concurrently running tests cannot trip each
//! other's failpoints. The usual pattern:
//!
//! ```
//! use srda_linalg::failpoint;
//!
//! failpoint::arm("cholesky.singular", 2); // next two factorizations fail
//! // ... exercise the code under test ...
//! failpoint::reset();                     // leave nothing armed behind
//! assert_eq!(failpoint::hits("cholesky.singular"), 0);
//! ```

use std::cell::RefCell;
use std::collections::HashMap;

#[derive(Default, Clone, Copy)]
struct Armed {
    /// Evaluations to let pass (returning `false`) before firing.
    skip: usize,
    /// Forced failures remaining once `skip` is exhausted.
    times: usize,
}

#[derive(Default)]
struct State {
    /// Remaining forced failures per failpoint name.
    armed: HashMap<&'static str, Armed>,
    /// Total times each failpoint actually fired (for test assertions).
    fired: HashMap<&'static str, usize>,
}

thread_local! {
    static STATE: RefCell<State> = RefCell::new(State::default());
}

/// Arm `name` to fail on its next `times` evaluations (cumulative with any
/// previous arming).
pub fn arm(name: &'static str, times: usize) {
    STATE.with(|s| {
        s.borrow_mut()
            .armed
            .entry(name)
            .or_insert_with(Armed::default)
            .times += times;
    });
}

/// Arm `name` to let its next `skip` evaluations pass, then fail `times`
/// times — a deterministic "kill at iteration k" for loops that evaluate
/// the failpoint once per iteration (e.g. `"lsqr.interrupt"`). Replaces
/// any previous arming of `name`.
pub fn arm_after(name: &'static str, skip: usize, times: usize) {
    STATE.with(|s| {
        s.borrow_mut().armed.insert(name, Armed { skip, times });
    });
}

/// Disarm `name`, cancelling any remaining forced failures.
pub fn disarm(name: &'static str) {
    STATE.with(|s| {
        s.borrow_mut().armed.remove(name);
    });
}

/// Disarm every failpoint and clear the fire counters.
pub fn reset() {
    STATE.with(|s| {
        let mut st = s.borrow_mut();
        st.armed.clear();
        st.fired.clear();
    });
}

/// How many times `name` has fired since the last [`reset`].
pub fn fired(name: &'static str) -> usize {
    STATE.with(|s| s.borrow().fired.get(name).copied().unwrap_or(0))
}

/// Remaining forced failures armed for `name` (not counting any skip
/// prefix from [`arm_after`]).
pub fn hits(name: &'static str) -> usize {
    STATE.with(|s| s.borrow().armed.get(name).map(|a| a.times).unwrap_or(0))
}

/// Evaluate the failpoint: returns `true` (and consumes one armed failure)
/// when the calling site must fail now. Instrumented code calls this at the
/// top of the fallible operation.
pub fn should_fail(name: &'static str) -> bool {
    STATE.with(|s| {
        let mut st = s.borrow_mut();
        match st.armed.get_mut(name) {
            Some(a) if a.skip > 0 => {
                a.skip -= 1;
                false
            }
            Some(a) if a.times > 0 => {
                a.times -= 1;
                if a.times == 0 {
                    st.armed.remove(name);
                }
                *st.fired.entry(name).or_insert(0) += 1;
                true
            }
            _ => false,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_exactly_the_armed_count() {
        reset();
        arm("test.point", 2);
        assert!(should_fail("test.point"));
        assert!(should_fail("test.point"));
        assert!(!should_fail("test.point"));
        assert_eq!(fired("test.point"), 2);
        reset();
    }

    #[test]
    fn unarmed_points_never_fire() {
        reset();
        assert!(!should_fail("test.never"));
        assert_eq!(fired("test.never"), 0);
    }

    #[test]
    fn disarm_cancels_pending_failures() {
        reset();
        arm("test.cancel", 5);
        assert!(should_fail("test.cancel"));
        disarm("test.cancel");
        assert!(!should_fail("test.cancel"));
        assert_eq!(fired("test.cancel"), 1);
        reset();
    }

    #[test]
    fn arming_is_cumulative() {
        reset();
        arm("test.cumulative", 1);
        arm("test.cumulative", 1);
        assert_eq!(hits("test.cumulative"), 2);
        reset();
    }

    #[test]
    fn arm_after_skips_then_fires() {
        reset();
        arm_after("test.delayed", 3, 1);
        assert!(!should_fail("test.delayed"));
        assert!(!should_fail("test.delayed"));
        assert!(!should_fail("test.delayed"));
        assert!(should_fail("test.delayed"));
        assert!(!should_fail("test.delayed"));
        assert_eq!(fired("test.delayed"), 1);
        reset();
    }

    #[test]
    fn arm_after_zero_skip_behaves_like_arm() {
        reset();
        arm_after("test.delayed0", 0, 2);
        assert!(should_fail("test.delayed0"));
        assert!(should_fail("test.delayed0"));
        assert!(!should_fail("test.delayed0"));
        reset();
    }
}
