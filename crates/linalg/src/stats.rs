//! Data-matrix statistics: column means, centering, per-class aggregation.
//!
//! The workspace convention is **samples as rows**: an `m × n` data matrix
//! holds `m` samples with `n` features. Centering subtracts the global mean
//! row — the operation that turns the paper's `X` into `X̄` (and the
//! operation SRDA's bias-absorption trick exists to avoid on sparse data).

use crate::matrix::Mat;
use crate::{flam, Result};

/// Mean of each column (the global sample mean `μ` when rows are samples).
pub fn col_means(a: &Mat) -> Vec<f64> {
    let (m, n) = a.shape();
    flam::add((m * n) as u64);
    let mut mu = vec![0.0; n];
    for i in 0..m {
        for (s, &x) in mu.iter_mut().zip(a.row(i)) {
            *s += x;
        }
    }
    if m > 0 {
        let inv = 1.0 / m as f64;
        for s in &mut mu {
            *s *= inv;
        }
    }
    mu
}

/// Return a centered copy: each row has `mu` subtracted.
pub fn center_rows(a: &Mat, mu: &[f64]) -> Mat {
    let (m, n) = a.shape();
    debug_assert_eq!(n, mu.len());
    flam::add((m * n) as u64);
    let mut out = a.clone();
    for i in 0..m {
        for (x, &mj) in out.row_mut(i).iter_mut().zip(mu) {
            *x -= mj;
        }
    }
    out
}

/// Center a matrix by its own column means; returns `(centered, means)`.
pub fn centered(a: &Mat) -> (Mat, Vec<f64>) {
    let mu = col_means(a);
    (center_rows(a, &mu), mu)
}

/// Mean row of each class. `labels[i] ∈ 0..n_classes` assigns row `i`.
/// Returns an `n_classes × n` matrix of centroids plus per-class counts.
pub fn class_means(a: &Mat, labels: &[usize], n_classes: usize) -> Result<(Mat, Vec<usize>)> {
    let (m, n) = a.shape();
    debug_assert_eq!(labels.len(), m);
    flam::add((m * n) as u64);
    let mut centroids = Mat::zeros(n_classes, n);
    let mut counts = vec![0usize; n_classes];
    for (i, &k) in labels.iter().enumerate() {
        debug_assert!(k < n_classes, "label out of range");
        counts[k] += 1;
        for (c, &x) in centroids.row_mut(k).iter_mut().zip(a.row(i)) {
            *c += x;
        }
    }
    for (k, &cnt) in counts.iter().enumerate() {
        if cnt > 0 {
            let inv = 1.0 / cnt as f64;
            for c in centroids.row_mut(k) {
                *c *= inv;
            }
        }
    }
    Ok((centroids, counts))
}

/// Per-column standard deviation (population, i.e. divisor `m`).
pub fn col_stds(a: &Mat) -> Vec<f64> {
    let (m, n) = a.shape();
    if m == 0 {
        return vec![0.0; n];
    }
    let mu = col_means(a);
    flam::add((m * n) as u64);
    let mut var = vec![0.0; n];
    for i in 0..m {
        for ((v, &x), &mj) in var.iter_mut().zip(a.row(i)).zip(&mu) {
            let d = x - mj;
            *v += d * d;
        }
    }
    let inv = 1.0 / m as f64;
    var.iter().map(|v| (v * inv).sqrt()).collect()
}

/// Normalize every row to unit L2 norm (rows that are exactly zero are left
/// untouched). This is the normalization the paper applies to the
/// 20Newsgroups term-frequency vectors.
pub fn normalize_rows_l2(a: &mut Mat) {
    for i in 0..a.nrows() {
        crate::vector::normalize(a.row_mut(i));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data() -> Mat {
        Mat::from_rows(&[vec![1.0, 2.0], vec![3.0, 6.0], vec![5.0, 4.0]]).unwrap()
    }

    #[test]
    fn col_means_basic() {
        assert_eq!(col_means(&data()), vec![3.0, 4.0]);
        assert_eq!(col_means(&Mat::zeros(0, 3)), vec![0.0; 3]);
    }

    #[test]
    fn centering_zeroes_means() {
        let (c, mu) = centered(&data());
        assert_eq!(mu, vec![3.0, 4.0]);
        let new_mu = col_means(&c);
        for v in new_mu {
            assert!(v.abs() < 1e-14);
        }
        assert_eq!(c.row(0), &[-2.0, -2.0]);
    }

    #[test]
    fn class_means_two_classes() {
        let a = data();
        let (cent, counts) = class_means(&a, &[0, 1, 1], 2).unwrap();
        assert_eq!(counts, vec![1, 2]);
        assert_eq!(cent.row(0), &[1.0, 2.0]);
        assert_eq!(cent.row(1), &[4.0, 5.0]);
    }

    #[test]
    fn class_means_empty_class_is_zero() {
        let a = data();
        let (cent, counts) = class_means(&a, &[0, 0, 0], 2).unwrap();
        assert_eq!(counts, vec![3, 0]);
        assert_eq!(cent.row(1), &[0.0, 0.0]);
    }

    #[test]
    fn col_stds_basic() {
        let a = Mat::from_rows(&[vec![1.0], vec![3.0]]).unwrap();
        let s = col_stds(&a);
        assert!((s[0] - 1.0).abs() < 1e-14);
        assert_eq!(col_stds(&Mat::zeros(0, 2)), vec![0.0, 0.0]);
    }

    #[test]
    fn row_normalization() {
        let mut a = Mat::from_rows(&[vec![3.0, 4.0], vec![0.0, 0.0]]).unwrap();
        normalize_rows_l2(&mut a);
        assert!((crate::vector::norm2(a.row(0)) - 1.0).abs() < 1e-14);
        assert_eq!(a.row(1), &[0.0, 0.0]);
    }

    #[test]
    fn centering_is_idempotent() {
        let (c1, _) = centered(&data());
        let (c2, mu2) = centered(&c1);
        assert!(c1.approx_eq(&c2, 1e-14));
        for v in mu2 {
            assert!(v.abs() < 1e-14);
        }
    }
}
