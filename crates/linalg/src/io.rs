//! Plain-text CSV interchange for dense matrices — the lingua franca for
//! getting embeddings into plotting tools and labeled dense datasets out
//! of spreadsheets.

use crate::error::LinalgError;
use crate::matrix::Mat;
use crate::Result;

/// Serialize a matrix as CSV (one row per line, `sep`-separated, full
/// float precision).
pub fn write_csv(m: &Mat, sep: char) -> String {
    let mut out = String::new();
    for i in 0..m.nrows() {
        let mut first = true;
        for v in m.row(i) {
            if !first {
                out.push(sep);
            }
            first = false;
            out.push_str(&format!("{v}"));
        }
        out.push('\n');
    }
    out
}

/// Parse CSV into a matrix. Empty lines and lines starting with `#` are
/// skipped; all data rows must have the same number of fields.
pub fn read_csv(text: &str, sep: char) -> Result<Mat> {
    let mut rows: Vec<Vec<f64>> = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut row = Vec::new();
        for field in line.split(sep) {
            let v: f64 = field.trim().parse().map_err(|_| LinalgError::NonFinite {
                context: "read_csv: unparsable field",
            })?;
            row.push(v);
        }
        if let Some(first) = rows.first() {
            if row.len() != first.len() {
                let _ = lineno;
                return Err(LinalgError::InvalidDimension {
                    context: "read_csv: ragged rows",
                });
            }
        }
        rows.push(row);
    }
    Mat::from_rows(&rows)
}

/// Parse a labeled CSV where the **first column is an integer class label**
/// and the rest are features; returns `(features, labels)`.
pub fn read_labeled_csv(text: &str, sep: char) -> Result<(Mat, Vec<usize>)> {
    let full = read_csv(text, sep)?;
    if full.ncols() < 2 {
        return Err(LinalgError::InvalidDimension {
            context: "read_labeled_csv: need a label column plus features",
        });
    }
    let mut labels = Vec::with_capacity(full.nrows());
    for i in 0..full.nrows() {
        let l = full[(i, 0)];
        if l < 0.0 || l.fract() != 0.0 {
            return Err(LinalgError::NonFinite {
                context: "read_labeled_csv: label column must be non-negative integers",
            });
        }
        labels.push(l as usize);
    }
    let idx: Vec<usize> = (1..full.ncols()).collect();
    Ok((full.select_cols(&idx), labels))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let m = Mat::from_rows(&[vec![1.5, -2.0], vec![0.25, 1e-9]]).unwrap();
        let text = write_csv(&m, ',');
        let back = read_csv(&text, ',').unwrap();
        assert!(m.approx_eq(&back, 0.0));
    }

    #[test]
    fn skips_comments_and_blank_lines() {
        let m = read_csv("# header\n1,2\n\n3,4\n", ',').unwrap();
        assert_eq!(m.shape(), (2, 2));
        assert_eq!(m[(1, 0)], 3.0);
    }

    #[test]
    fn custom_separator() {
        let m = read_csv("1\t2\n3\t4\n", '\t').unwrap();
        assert_eq!(m[(0, 1)], 2.0);
    }

    #[test]
    fn rejects_ragged_and_garbage() {
        assert!(read_csv("1,2\n3\n", ',').is_err());
        assert!(read_csv("1,x\n", ',').is_err());
    }

    #[test]
    fn whitespace_tolerated() {
        let m = read_csv(" 1 , 2 \n", ',').unwrap();
        assert_eq!(m[(0, 1)], 2.0);
    }

    #[test]
    fn labeled_csv() {
        let (x, y) = read_labeled_csv("0,1.5,2.5\n1,3.0,4.0\n", ',').unwrap();
        assert_eq!(y, vec![0, 1]);
        assert_eq!(x.shape(), (2, 2));
        assert_eq!(x[(1, 1)], 4.0);
    }

    #[test]
    fn labeled_csv_rejects_bad_labels() {
        assert!(read_labeled_csv("0.5,1.0\n", ',').is_err());
        assert!(read_labeled_csv("-1,1.0\n", ',').is_err());
        assert!(read_labeled_csv("3\n", ',').is_err());
    }

    #[test]
    fn empty_input() {
        let m = read_csv("", ',').unwrap();
        assert!(m.is_empty());
    }
}
