//! Golub–Reinsch SVD: Householder bidiagonalization followed by
//! implicit-shift QR on the bidiagonal form.
//!
//! This is the classic `O(mn²)` production SVD (Golub & Van Loan §8.6;
//! the `svdcmp` lineage), completing the crate's trio of methods:
//!
//! | method | cost | small-σ accuracy |
//! |---|---|---|
//! | cross-product ([`crate::svd::Svd::cross_product`]) | fastest | ~√ε (condition squared) |
//! | **Golub–Reinsch** (this module) | `O(mn²)` | ~ε·σ₁ |
//! | one-sided Jacobi ([`crate::svd::Svd::jacobi`]) | slowest | ~ε·σᵢ (relative) |
//!
//! The paper's LDA uses the cross-product method for speed; this module is
//! the reference implementation the others are validated against at scale.

use crate::error::LinalgError;
use crate::matrix::Mat;
use crate::svd::Svd;
use crate::{flam, Result};

/// Compute a rank-truncated thin SVD by the Golub–Reinsch algorithm.
/// `tol` is the relative singular-value truncation threshold.
pub fn golub_reinsch_svd(a: &Mat, tol: f64) -> Result<Svd> {
    let (m, n) = a.shape();
    if m == 0 || n == 0 {
        return Ok(Svd {
            u: Mat::zeros(m, 0),
            s: vec![],
            v: Mat::zeros(n, 0),
        });
    }
    if m < n {
        // work on the transpose, swap factors back
        let t = golub_reinsch_svd(&a.transpose(), tol)?;
        return Ok(Svd {
            u: t.v,
            s: t.s,
            v: t.u,
        });
    }
    flam::add((2 * m * n * n + 2 * n * n * n) as u64);

    // working copies: `u` starts as A and is transformed into the left
    // factor; `w` holds singular values; `v` the right factor.
    let mut u = a.clone();
    let mut w = vec![0.0; n];
    let mut v = Mat::zeros(n, n);
    let mut rv1 = vec![0.0; n];

    let sign = |a: f64, b: f64| if b >= 0.0 { a.abs() } else { -a.abs() };

    // ---- Householder bidiagonalization -------------------------------
    let mut g = 0.0f64;
    let mut scale = 0.0f64;
    let mut anorm = 0.0f64;
    for i in 0..n {
        let l = i + 1;
        rv1[i] = scale * g;
        g = 0.0;
        scale = 0.0;
        if i < m {
            for k in i..m {
                scale += u[(k, i)].abs();
            }
            if scale != 0.0 {
                let mut s = 0.0;
                for k in i..m {
                    u[(k, i)] /= scale;
                    s += u[(k, i)] * u[(k, i)];
                }
                let f = u[(i, i)];
                g = -sign(s.sqrt(), f);
                let h = f * g - s;
                u[(i, i)] = f - g;
                for j in l..n {
                    let mut s2 = 0.0;
                    for k in i..m {
                        s2 += u[(k, i)] * u[(k, j)];
                    }
                    let f2 = s2 / h;
                    for k in i..m {
                        let uki = u[(k, i)];
                        u[(k, j)] += f2 * uki;
                    }
                }
                for k in i..m {
                    u[(k, i)] *= scale;
                }
            }
        }
        w[i] = scale * g;
        g = 0.0;
        scale = 0.0;
        if i < m && i != n - 1 {
            for k in l..n {
                scale += u[(i, k)].abs();
            }
            if scale != 0.0 {
                let mut s = 0.0;
                for k in l..n {
                    u[(i, k)] /= scale;
                    s += u[(i, k)] * u[(i, k)];
                }
                let f = u[(i, l)];
                g = -sign(s.sqrt(), f);
                let h = f * g - s;
                u[(i, l)] = f - g;
                for k in l..n {
                    rv1[k] = u[(i, k)] / h;
                }
                for j in l..m {
                    let mut s2 = 0.0;
                    for k in l..n {
                        s2 += u[(j, k)] * u[(i, k)];
                    }
                    for k in l..n {
                        let r = rv1[k];
                        u[(j, k)] += s2 * r;
                    }
                }
                for k in l..n {
                    u[(i, k)] *= scale;
                }
            }
        }
        anorm = anorm.max(w[i].abs() + rv1[i].abs());
    }

    // ---- accumulate right-hand transformations -----------------------
    {
        let mut l = n; // "previous l"
        for i in (0..n).rev() {
            if i < n - 1 {
                if g != 0.0 {
                    for j in l..n {
                        v[(j, i)] = (u[(i, j)] / u[(i, l)]) / g;
                    }
                    for j in l..n {
                        let mut s = 0.0;
                        for k in l..n {
                            s += u[(i, k)] * v[(k, j)];
                        }
                        for k in l..n {
                            let vki = v[(k, i)];
                            v[(k, j)] += s * vki;
                        }
                    }
                }
                for j in l..n {
                    v[(i, j)] = 0.0;
                    v[(j, i)] = 0.0;
                }
            }
            v[(i, i)] = 1.0;
            g = rv1[i];
            l = i;
        }
    }

    // ---- accumulate left-hand transformations ------------------------
    for i in (0..n.min(m)).rev() {
        let l = i + 1;
        let gi = w[i];
        for j in l..n {
            u[(i, j)] = 0.0;
        }
        if gi != 0.0 {
            let ginv = 1.0 / gi;
            for j in l..n {
                let mut s = 0.0;
                for k in l..m {
                    s += u[(k, i)] * u[(k, j)];
                }
                let f = (s / u[(i, i)]) * ginv;
                for k in i..m {
                    let uki = u[(k, i)];
                    u[(k, j)] += f * uki;
                }
            }
            for j in i..m {
                u[(j, i)] *= ginv;
            }
        } else {
            for j in i..m {
                u[(j, i)] = 0.0;
            }
        }
        u[(i, i)] += 1.0;
    }

    // ---- diagonalize the bidiagonal form -----------------------------
    const MAX_ITS: usize = 60;
    for k in (0..n).rev() {
        let mut its = 0;
        loop {
            its += 1;
            if its > MAX_ITS {
                return Err(LinalgError::NoConvergence {
                    algorithm: "golub-reinsch SVD",
                    iterations: MAX_ITS,
                });
            }
            // test for splitting
            let mut l = k;
            let mut flag = true;
            loop {
                if rv1[l].abs() + anorm == anorm {
                    flag = false;
                    break;
                }
                // l > 0 guaranteed here because rv1[0] is always 0
                if w[l - 1].abs() + anorm == anorm {
                    break;
                }
                l -= 1;
            }
            if flag {
                // cancel rv1[l] (l > 0)
                let nm = l - 1;
                let mut c = 0.0;
                let mut s = 1.0;
                for i in l..=k {
                    let f = s * rv1[i];
                    rv1[i] *= c;
                    if f.abs() + anorm == anorm {
                        break;
                    }
                    let g2 = w[i];
                    let h = f.hypot(g2);
                    w[i] = h;
                    let hinv = 1.0 / h;
                    c = g2 * hinv;
                    s = -f * hinv;
                    for j in 0..m {
                        let y = u[(j, nm)];
                        let z = u[(j, i)];
                        u[(j, nm)] = y * c + z * s;
                        u[(j, i)] = z * c - y * s;
                    }
                }
            }
            let z = w[k];
            if l == k {
                // converged; enforce non-negative singular value
                if z < 0.0 {
                    w[k] = -z;
                    for j in 0..n {
                        v[(j, k)] = -v[(j, k)];
                    }
                }
                break;
            }
            // shift from bottom 2x2 minor
            let x = w[l];
            let nm = k - 1;
            let y = w[nm];
            let g2 = rv1[nm];
            let h = rv1[k];
            let mut f = ((y - z) * (y + z) + (g2 - h) * (g2 + h)) / (2.0 * h * y);
            let g3 = f.hypot(1.0);
            f = ((x - z) * (x + z) + h * ((y / (f + sign(g3, f))) - h)) / x;
            // QR transformation
            let mut c = 1.0;
            let mut s = 1.0;
            let mut g4 = rv1[l + 1];
            let mut y2 = w[l + 1];
            let mut x2 = x;
            for j in l..=nm {
                let i = j + 1;
                let h2 = s * g4;
                let g5 = c * g4;
                let z2 = f.hypot(h2);
                rv1[j] = z2;
                c = f / z2;
                s = h2 / z2;
                f = x2 * c + g5 * s;
                let g6 = g5 * c - x2 * s;
                let h3 = y2 * s;
                y2 *= c;
                for jj in 0..n {
                    let xv = v[(jj, j)];
                    let zv = v[(jj, i)];
                    v[(jj, j)] = xv * c + zv * s;
                    v[(jj, i)] = zv * c - xv * s;
                }
                let z3 = f.hypot(h3);
                w[j] = z3;
                if z3 != 0.0 {
                    let zinv = 1.0 / z3;
                    c = f * zinv;
                    s = h3 * zinv;
                }
                f = c * g6 + s * y2;
                x2 = c * y2 - s * g6;
                if i <= nm {
                    g4 = rv1[i + 1];
                    y2 = w[i + 1];
                }
                for jj in 0..m {
                    let yv = u[(jj, j)];
                    let zv = u[(jj, i)];
                    u[(jj, j)] = yv * c + zv * s;
                    u[(jj, i)] = zv * c - yv * s;
                }
            }
            rv1[l] = 0.0;
            rv1[k] = f;
            w[k] = x2;
        }
    }

    // ---- sort descending, truncate ------------------------------------
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| w[j].partial_cmp(&w[i]).unwrap());
    let smax = w[order[0]].max(0.0);
    let keep: Vec<usize> = order
        .into_iter()
        .filter(|&i| w[i] > tol * smax && w[i] > 0.0)
        .collect();
    let s_out: Vec<f64> = keep.iter().map(|&i| w[i]).collect();
    let u_out = u.select_cols(&keep);
    let v_out = v.select_cols(&keep);
    Ok(Svd {
        u: u_out,
        s: s_out,
        v: v_out,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::matmul_transa;

    fn noise_mat(m: usize, n: usize, seed: u64) -> Mat {
        Mat::from_fn(m, n, |i, j| {
            let x =
                (i as f64 * 12.9898 + j as f64 * 78.233 + seed as f64 * 0.37).sin() * 43758.5453;
            x - x.floor() - 0.5
        })
    }

    fn check(a: &Mat, svd: &Svd, tol: f64) {
        let recon = svd.reconstruct().unwrap();
        assert!(
            recon.approx_eq(a, tol),
            "reconstruction error {}",
            recon.sub(a).unwrap().max_abs()
        );
        let r = svd.rank();
        assert!(matmul_transa(&svd.u, &svd.u)
            .unwrap()
            .approx_eq(&Mat::identity(r), 1e-9));
        assert!(matmul_transa(&svd.v, &svd.v)
            .unwrap()
            .approx_eq(&Mat::identity(r), 1e-9));
        for win in svd.s.windows(2) {
            assert!(win[0] >= win[1] - 1e-12);
        }
    }

    #[test]
    fn tall_and_wide_and_square() {
        for (m, n) in [(12, 5), (5, 12), (7, 7)] {
            let a = noise_mat(m, n, (m * 100 + n) as u64);
            let svd = golub_reinsch_svd(&a, 1e-12).unwrap();
            assert_eq!(svd.rank(), m.min(n));
            check(&a, &svd, 1e-9);
        }
    }

    #[test]
    fn agrees_with_jacobi() {
        let a = noise_mat(10, 6, 3);
        let gr = golub_reinsch_svd(&a, 1e-12).unwrap();
        let j = Svd::jacobi(&a, 1e-12).unwrap();
        assert_eq!(gr.rank(), j.rank());
        for (x, y) in gr.s.iter().zip(&j.s) {
            assert!((x - y).abs() < 1e-10 * j.s[0], "{x} vs {y}");
        }
    }

    #[test]
    fn graded_spectrum_is_recovered_accurately() {
        // σ spanning 12 orders of magnitude: the accuracy the cross-product
        // method cannot reach
        let d: Vec<f64> = (0..8).map(|i| 10f64.powi(-(i as i32) * 2)).collect();
        let a = Mat::from_diag(&d);
        let svd = golub_reinsch_svd(&a, 1e-18).unwrap();
        assert_eq!(svd.rank(), 8);
        for (got, want) in svd.s.iter().zip(&d) {
            assert!((got - want).abs() < 1e-10 * want, "{got} vs {want}");
        }
    }

    #[test]
    fn rank_deficient_truncation() {
        let base = noise_mat(9, 2, 5);
        let third: Vec<f64> = (0..9).map(|i| base[(i, 0)] - base[(i, 1)]).collect();
        let a = base.hcat(&Mat::from_vec(9, 1, third).unwrap()).unwrap();
        let svd = golub_reinsch_svd(&a, 1e-10).unwrap();
        assert_eq!(svd.rank(), 2);
        check(&a, &svd, 1e-9);
    }

    #[test]
    fn zero_and_empty() {
        let z = golub_reinsch_svd(&Mat::zeros(4, 3), 1e-10).unwrap();
        assert_eq!(z.rank(), 0);
        let e = golub_reinsch_svd(&Mat::zeros(0, 3), 1e-10).unwrap();
        assert_eq!(e.rank(), 0);
    }

    #[test]
    fn single_column_and_row() {
        let col = Mat::from_vec(5, 1, vec![3.0, 4.0, 0.0, 0.0, 0.0]).unwrap();
        let svd = golub_reinsch_svd(&col, 1e-12).unwrap();
        assert!((svd.s[0] - 5.0).abs() < 1e-12);
        let row = col.transpose();
        let svd2 = golub_reinsch_svd(&row, 1e-12).unwrap();
        assert!((svd2.s[0] - 5.0).abs() < 1e-12);
    }

    #[test]
    fn frobenius_identity() {
        let a = noise_mat(11, 7, 9);
        let svd = golub_reinsch_svd(&a, 1e-14).unwrap();
        let fro = a.frobenius_norm();
        let s_norm = svd.s.iter().map(|x| x * x).sum::<f64>().sqrt();
        assert!((fro - s_norm).abs() < 1e-10 * fro);
    }
}
