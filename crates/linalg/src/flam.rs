//! Global *flam* operation counters.
//!
//! The paper states every complexity result in *flam* — "a compound
//! operation consisting of one addition and one multiplication" (Stewart,
//! *Matrix Algorithms I*, 1998). To verify Table I empirically rather than
//! rhetorically, the hot kernels in this crate report their flam count to a
//! process-global atomic counter at kernel granularity (one atomic add per
//! kernel call, not per scalar operation, so the overhead is negligible).
//!
//! Typical use by the benchmark harness:
//!
//! ```
//! use srda_linalg::flam;
//!
//! flam::reset();
//! // ... run LDA or SRDA ...
//! let cost = flam::total();
//! assert_eq!(cost, 0); // nothing ran in this doctest
//! ```
//!
//! Counts are *approximate by design*: a kernel reports its leading-order
//! term (e.g. an `m×k · k×n` product reports `m·k·n`), matching how the
//! paper's formulas drop lower-order terms.

use std::sync::atomic::{AtomicU64, Ordering};

static FLAM_COUNT: AtomicU64 = AtomicU64::new(0);

/// Add `n` flam to the global counter.
#[inline]
pub fn add(n: u64) {
    FLAM_COUNT.fetch_add(n, Ordering::Relaxed);
}

/// Read the current global flam count.
#[inline]
pub fn total() -> u64 {
    FLAM_COUNT.load(Ordering::Relaxed)
}

/// Reset the global flam count to zero.
#[inline]
pub fn reset() {
    FLAM_COUNT.store(0, Ordering::Relaxed);
}

/// Run `f` and return `(result, flam consumed by f)`.
///
/// This resets the global counter, so it is intended for single-threaded
/// measurement harnesses, not for concurrent use.
pub fn measure<T>(f: impl FnOnce() -> T) -> (T, u64) {
    reset();
    let out = f();
    (out, total())
}

#[cfg(test)]
mod tests {
    use super::*;

    // Note: these tests share a global counter with the rest of the test
    // binary, so they only assert *relative* behaviour within `measure`,
    // which snapshots deterministically.

    #[test]
    fn measure_captures_adds() {
        let ((), used) = measure(|| {
            add(10);
            add(32);
        });
        assert_eq!(used, 42);
    }

    #[test]
    fn measure_returns_closure_output() {
        let (v, _) = measure(|| 7usize);
        assert_eq!(v, 7);
    }

    #[test]
    fn reset_zeroes() {
        add(5);
        reset();
        let ((), used) = measure(|| {});
        assert_eq!(used, 0);
    }
}
