//! *Flam* operation counters.
//!
//! The paper states every complexity result in *flam* — "a compound
//! operation consisting of one addition and one multiplication" (Stewart,
//! *Matrix Algorithms I*, 1998). To verify Table I empirically rather than
//! rhetorically, the hot kernels in this crate report their flam count at
//! kernel granularity (one report per kernel call, not per scalar
//! operation, so the overhead is negligible).
//!
//! Two accounting surfaces exist:
//!
//! * a process-global counter ([`total`] / [`reset`]), kept for quick
//!   whole-process readings, and
//! * a per-thread stack of *sinks* — plain `Arc<AtomicU64>` cells that
//!   [`add`] also feeds while installed on the calling thread. [`measure`]
//!   and [`scoped`] install a sink for the duration of a closure, which
//!   makes concurrent measurements race-free: each measurement only sees
//!   the flam reported on its own thread (plus any threads it explicitly
//!   forwarded its sinks to via [`current_sinks`] / [`with_sinks`]).
//!
//! The sink cells are deliberately untyped (`Arc<AtomicU64>`) so callers
//! can hand in a metrics-registry counter cell without this crate growing
//! a dependency on the observability layer.
//!
//! Typical use by a measurement harness:
//!
//! ```
//! use srda_linalg::flam;
//!
//! let ((), cost) = flam::measure(|| {
//!     // ... run LDA or SRDA ...
//! });
//! assert_eq!(cost, 0); // nothing ran in this doctest
//! ```
//!
//! Counts are *approximate by design*: a kernel reports its leading-order
//! term (e.g. an `m×k · k×n` product reports `m·k·n`), matching how the
//! paper's formulas drop lower-order terms.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

static FLAM_COUNT: AtomicU64 = AtomicU64::new(0);

/// Total sinks installed across all threads. Lets [`add`] skip the
/// thread-local lookup entirely when nothing is listening, keeping the
/// common path at two relaxed atomic operations.
static ACTIVE_SINKS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static SINKS: RefCell<Vec<Arc<AtomicU64>>> = const { RefCell::new(Vec::new()) };
}

/// Add `n` flam to the global counter and to every sink installed on the
/// calling thread.
#[inline]
pub fn add(n: u64) {
    FLAM_COUNT.fetch_add(n, Ordering::Relaxed);
    if ACTIVE_SINKS.load(Ordering::Relaxed) > 0 {
        SINKS.with(|s| {
            for sink in s.borrow().iter() {
                sink.fetch_add(n, Ordering::Relaxed);
            }
        });
    }
}

/// Read the current global flam count.
#[inline]
pub fn total() -> u64 {
    FLAM_COUNT.load(Ordering::Relaxed)
}

/// Reset the global flam count to zero. Sinks are unaffected.
#[inline]
pub fn reset() {
    FLAM_COUNT.store(0, Ordering::Relaxed);
}

/// Removes the sinks it installed even on unwind, so a panicking closure
/// cannot leave stale sinks double-counting later work on this thread.
struct SinkGuard {
    installed: usize,
}

impl Drop for SinkGuard {
    fn drop(&mut self) {
        SINKS.with(|s| {
            let mut v = s.borrow_mut();
            let keep = v.len() - self.installed;
            v.truncate(keep);
        });
        ACTIVE_SINKS.fetch_sub(self.installed, Ordering::Relaxed);
    }
}

fn install(sinks: &[Arc<AtomicU64>]) -> SinkGuard {
    SINKS.with(|s| s.borrow_mut().extend(sinks.iter().cloned()));
    ACTIVE_SINKS.fetch_add(sinks.len(), Ordering::Relaxed);
    SinkGuard {
        installed: sinks.len(),
    }
}

/// Run `f` with `sink` receiving every flam reported on this thread, on
/// top of any sinks already installed (nesting is cumulative: inner flam
/// also reaches outer sinks).
pub fn scoped<T>(sink: Arc<AtomicU64>, f: impl FnOnce() -> T) -> T {
    let _guard = install(std::slice::from_ref(&sink));
    f()
}

/// Run `f` and return `(result, flam reported by f on this thread)`.
///
/// Backed by a private sink rather than the global counter, so concurrent
/// measurements on different threads do not disturb each other and calls
/// nest correctly. Work `f` spawns onto *other* threads is not captured
/// unless those threads install this measurement's sinks via
/// [`current_sinks`] / [`with_sinks`].
pub fn measure<T>(f: impl FnOnce() -> T) -> (T, u64) {
    let sink = Arc::new(AtomicU64::new(0));
    let out = scoped(Arc::clone(&sink), f);
    (out, sink.load(Ordering::Relaxed))
}

/// Snapshot of the sinks installed on the calling thread, for forwarding
/// into worker threads (pair with [`with_sinks`] inside the worker).
pub fn current_sinks() -> Vec<Arc<AtomicU64>> {
    SINKS.with(|s| s.borrow().clone())
}

/// Run `f` with `sinks` installed on the calling thread — the receiving
/// half of [`current_sinks`], used by parallel drivers so flam reported on
/// worker threads still reaches the spawning measurement's sinks.
pub fn with_sinks<T>(sinks: Vec<Arc<AtomicU64>>, f: impl FnOnce() -> T) -> T {
    let _guard = install(&sinks);
    f()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_captures_adds() {
        let ((), used) = measure(|| {
            add(10);
            add(32);
        });
        assert_eq!(used, 42);
    }

    #[test]
    fn measure_returns_closure_output() {
        let (v, _) = measure(|| 7usize);
        assert_eq!(v, 7);
    }

    #[test]
    fn reset_zeroes() {
        add(5);
        reset();
        let ((), used) = measure(|| {});
        assert_eq!(used, 0);
    }

    #[test]
    fn measure_nests_cumulatively() {
        let ((inner_used,), outer_used) = measure(|| {
            add(1);
            let ((), inner) = measure(|| add(10));
            add(100);
            (inner,)
        });
        assert_eq!(inner_used, 10);
        assert_eq!(outer_used, 111);
    }

    #[test]
    fn concurrent_measures_do_not_cross_talk() {
        let handles: Vec<_> = (0..4u64)
            .map(|t| {
                std::thread::spawn(move || {
                    let ((), used) = measure(|| {
                        for _ in 0..1000 {
                            add(t + 1);
                        }
                    });
                    (t, used)
                })
            })
            .collect();
        for h in handles {
            let (t, used) = h.join().unwrap();
            assert_eq!(used, 1000 * (t + 1));
        }
    }

    #[test]
    fn sinks_forward_to_worker_threads() {
        let ((), used) = measure(|| {
            let sinks = current_sinks();
            std::thread::spawn(move || with_sinks(sinks, || add(25)))
                .join()
                .unwrap();
            add(5);
        });
        assert_eq!(used, 30);
    }

    #[test]
    fn scoped_feeds_external_cell() {
        let cell = Arc::new(AtomicU64::new(0));
        scoped(Arc::clone(&cell), || add(9));
        add(1); // after the scope: cell must not see this
        assert_eq!(cell.load(Ordering::Relaxed), 9);
    }

    #[test]
    fn panicking_scope_removes_its_sink() {
        let cell = Arc::new(AtomicU64::new(0));
        let cell2 = Arc::clone(&cell);
        let res = std::panic::catch_unwind(move || scoped(cell2, || panic!("boom")));
        assert!(res.is_err());
        add(3);
        assert_eq!(cell.load(Ordering::Relaxed), 0);
    }
}
