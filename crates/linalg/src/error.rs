//! Error type shared by all factorizations and solvers in this crate.

use std::fmt;

/// Errors produced by dense linear-algebra routines.
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// Operand shapes are incompatible for the requested operation.
    ShapeMismatch {
        /// Human-readable description of the operation that failed.
        op: &'static str,
        /// Shape of the left/first operand.
        lhs: (usize, usize),
        /// Shape of the right/second operand.
        rhs: (usize, usize),
    },
    /// A matrix that must be square is not.
    NotSquare {
        /// Rows of the offending matrix.
        rows: usize,
        /// Columns of the offending matrix.
        cols: usize,
    },
    /// Cholesky factorization hit a non-positive pivot: the input is not
    /// (numerically) positive definite.
    NotPositiveDefinite {
        /// Index of the failing pivot.
        pivot: usize,
        /// Value of the failing pivot.
        value: f64,
    },
    /// LU factorization or a triangular solve hit an exactly-zero pivot.
    Singular {
        /// Index of the zero pivot.
        pivot: usize,
    },
    /// An iterative routine exhausted its iteration budget before
    /// converging to the requested tolerance.
    NoConvergence {
        /// Name of the algorithm that failed to converge.
        algorithm: &'static str,
        /// Number of iterations performed.
        iterations: usize,
    },
    /// The input contained NaN or infinity where finite values are required.
    NonFinite {
        /// Description of where the non-finite value was found.
        context: &'static str,
    },
    /// A dimension argument was invalid (e.g. empty matrix where data is
    /// required, or a requested rank exceeding the matrix size).
    InvalidDimension {
        /// Description of the invalid argument.
        context: &'static str,
    },
    /// A solve completed without raising an error but failed its a
    /// posteriori quality certificate: the forward-error bound
    /// `cond_estimate × backward_error` stayed above the certification
    /// threshold even after iterative refinement. Retryable: recovery
    /// ladders treat this like a factorization failure and escalate.
    CertificationFailed {
        /// The forward-error bound that exceeded the threshold.
        error_bound: f64,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::ShapeMismatch { op, lhs, rhs } => write!(
                f,
                "shape mismatch in {op}: left is {}x{}, right is {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            LinalgError::NotSquare { rows, cols } => {
                write!(f, "matrix must be square, got {rows}x{cols}")
            }
            LinalgError::NotPositiveDefinite { pivot, value } => write!(
                f,
                "matrix is not positive definite: pivot {pivot} is {value:e}"
            ),
            LinalgError::Singular { pivot } => {
                write!(f, "matrix is singular: zero pivot at index {pivot}")
            }
            LinalgError::NoConvergence {
                algorithm,
                iterations,
            } => write!(
                f,
                "{algorithm} did not converge after {iterations} iterations"
            ),
            LinalgError::NonFinite { context } => {
                write!(f, "non-finite value encountered in {context}")
            }
            LinalgError::InvalidDimension { context } => {
                write!(f, "invalid dimension: {context}")
            }
            LinalgError::CertificationFailed { error_bound } => write!(
                f,
                "solution failed certification: error bound {error_bound:e} above threshold"
            ),
        }
    }
}

impl std::error::Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_shape_mismatch() {
        let e = LinalgError::ShapeMismatch {
            op: "matmul",
            lhs: (2, 3),
            rhs: (4, 5),
        };
        let s = e.to_string();
        assert!(s.contains("matmul"));
        assert!(s.contains("2x3"));
        assert!(s.contains("4x5"));
    }

    #[test]
    fn display_not_positive_definite() {
        let e = LinalgError::NotPositiveDefinite {
            pivot: 3,
            value: -1.0,
        };
        assert!(e.to_string().contains("positive definite"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_e: &dyn std::error::Error) {}
        takes_err(&LinalgError::Singular { pivot: 0 });
    }

    #[test]
    fn display_certification_failed_mentions_bound() {
        let e = LinalgError::CertificationFailed { error_bound: 1e-3 };
        let s = e.to_string();
        assert!(s.contains("certification"));
        assert!(s.contains("1e-3"));
    }

    #[test]
    fn display_no_convergence_mentions_algorithm() {
        let e = LinalgError::NoConvergence {
            algorithm: "ql",
            iterations: 30,
        };
        assert!(e.to_string().contains("ql"));
        assert!(e.to_string().contains("30"));
    }
}
