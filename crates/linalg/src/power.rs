//! Matrix-free top-k symmetric eigensolver (deflated power iteration).
//!
//! The dense eigensolver ([`crate::eigen`]) costs `O(m³)` — fine for the
//! `c × c` problems SRDA needs, but the *generalized* spectral-regression
//! step (an `m × m` graph affinity) only needs a handful of leading
//! eigenpairs. Power iteration with Gram-Schmidt deflation extracts them
//! touching the operator only through `v ↦ W·v`, i.e. `O(edges)` per
//! iteration — the same matrix-free philosophy as LSQR.
//!
//! Limitations (documented, standard for the method): convergence is
//! geometric in the eigenvalue gap, and eigenvalues must be non-negative
//! (true for the normalized affinities used here, whose spectrum lies in
//! `[−1, 1]` — callers shift by `+1` when negative eigenvalues are
//! possible).

use crate::{flam, vector};

/// Result of a top-k extraction.
#[derive(Debug, Clone)]
pub struct TopEigen {
    /// Eigenvalue estimates, descending.
    pub values: Vec<f64>,
    /// Corresponding orthonormal eigenvectors.
    pub vectors: Vec<Vec<f64>>,
    /// Iterations spent per eigenpair.
    pub iterations: Vec<usize>,
}

/// Configuration for [`top_k_symmetric`].
#[derive(Debug, Clone)]
pub struct PowerConfig {
    /// Relative convergence tolerance on the eigenpair residual
    /// (`‖Av − λv‖ ≤ tol·|λ|`).
    pub tol: f64,
    /// Iteration cap per eigenpair.
    pub max_iter: usize,
    /// Deterministic seed for the start vectors.
    pub seed: u64,
}

impl Default for PowerConfig {
    fn default() -> Self {
        PowerConfig {
            tol: 1e-9,
            max_iter: 2000,
            seed: 7,
        }
    }
}

/// Extract the `k` leading eigenpairs of a symmetric PSD operator given by
/// `apply: v ↦ A·v` on dimension `dim`.
pub fn top_k_symmetric(
    dim: usize,
    k: usize,
    apply: impl Fn(&[f64]) -> Vec<f64>,
    cfg: &PowerConfig,
) -> TopEigen {
    let k = k.min(dim);
    let mut values = Vec::with_capacity(k);
    let mut vectors: Vec<Vec<f64>> = Vec::with_capacity(k);
    let mut iterations = Vec::with_capacity(k);

    for pair in 0..k {
        // deterministic pseudo-random start, orthogonal to found vectors
        let mut v: Vec<f64> = (0..dim)
            .map(|i| {
                let x = ((i as f64 + 1.0) * 12.9898 + (pair as f64 + cfg.seed as f64) * 78.233)
                    .sin()
                    * 43758.5453;
                x - x.floor() - 0.5
            })
            .collect();
        deflate(&vectors, &mut v);
        if vector::normalize(&mut v) == 0.0 {
            break; // exhausted the space
        }

        let mut lambda = 0.0;
        let mut iters = cfg.max_iter;
        for it in 0..cfg.max_iter {
            let mut w = apply(&v);
            flam::add(dim as u64);
            deflate(&vectors, &mut w);
            let norm = vector::normalize(&mut w);
            if norm == 0.0 {
                // v is (numerically) in the kernel after deflation
                lambda = 0.0;
                iters = it + 1;
                break;
            }
            // eigenvalue estimate via the Rayleigh quotient of the new v
            let mut av = apply(&w);
            deflate(&vectors, &mut av);
            lambda = vector::dot(&w, &av);
            // residual-based stop: ‖Av − λv‖ ≤ tol·|λ| measures the actual
            // eigenpair error (a step-size criterion would plateau early)
            vector::axpy(-lambda, &w, &mut av);
            let residual = vector::norm2(&av);
            v = w;
            if residual <= cfg.tol * lambda.abs().max(f64::MIN_POSITIVE) {
                iters = it + 1;
                break;
            }
        }
        values.push(lambda);
        vectors.push(v);
        iterations.push(iters);
    }

    TopEigen {
        values,
        vectors,
        iterations,
    }
}

fn deflate(basis: &[Vec<f64>], v: &mut [f64]) {
    for b in basis {
        let proj = vector::dot(b, v);
        vector::axpy(-proj, b, v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Mat;
    use crate::ops::matvec;

    fn sym_psd_from_spectrum(eigs: &[f64]) -> Mat {
        let n = eigs.len();
        let raw = Mat::from_fn(n, n, |i, j| {
            ((i * 13 + j * 29) as f64 * 0.59).sin() + if i == j { 2.0 } else { 0.0 }
        });
        let q = crate::qr::Qr::factor(&raw).unwrap().q_thin();
        let qd = crate::ops::matmul(&q, &Mat::from_diag(eigs)).unwrap();
        let mut a = crate::ops::matmul_transb(&qd, &q).unwrap();
        a.symmetrize();
        a
    }

    #[test]
    fn finds_leading_eigenpairs() {
        let a = sym_psd_from_spectrum(&[10.0, 6.0, 3.0, 1.0, 0.5]);
        let top = top_k_symmetric(5, 3, |v| matvec(&a, v).unwrap(), &PowerConfig::default());
        assert_eq!(top.values.len(), 3);
        for (got, want) in top.values.iter().zip([10.0, 6.0, 3.0]) {
            assert!((got - want).abs() < 1e-6, "{got} vs {want}");
        }
        // residual check ‖Av − λv‖
        for (lam, v) in top.values.iter().zip(&top.vectors) {
            let av = matvec(&a, v).unwrap();
            for i in 0..5 {
                assert!((av[i] - lam * v[i]).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn vectors_are_orthonormal() {
        let a = sym_psd_from_spectrum(&[8.0, 4.0, 2.0, 1.0]);
        let top = top_k_symmetric(4, 4, |v| matvec(&a, v).unwrap(), &PowerConfig::default());
        for i in 0..4 {
            for j in 0..4 {
                let d = vector::dot(&top.vectors[i], &top.vectors[j]);
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((d - expect).abs() < 1e-7, "({i},{j}) -> {d}");
            }
        }
    }

    #[test]
    fn k_larger_than_dim_clamps() {
        let a = sym_psd_from_spectrum(&[3.0, 1.0]);
        let top = top_k_symmetric(2, 10, |v| matvec(&a, v).unwrap(), &PowerConfig::default());
        assert!(top.values.len() <= 2);
    }

    #[test]
    fn repeated_eigenvalues_are_handled() {
        // eigenvalue 5 with multiplicity 2: both pairs must be found and
        // stay orthonormal
        let a = sym_psd_from_spectrum(&[5.0, 5.0, 1.0]);
        let top = top_k_symmetric(3, 2, |v| matvec(&a, v).unwrap(), &PowerConfig::default());
        assert!((top.values[0] - 5.0).abs() < 1e-6);
        assert!((top.values[1] - 5.0).abs() < 1e-5);
        let d = vector::dot(&top.vectors[0], &top.vectors[1]);
        assert!(d.abs() < 1e-7);
    }

    #[test]
    fn matches_dense_eigensolver() {
        let a = sym_psd_from_spectrum(&[7.0, 5.0, 2.0, 1.5, 0.2, 0.1]);
        let dense = crate::SymmetricEigen::factor(&a).unwrap();
        let top = top_k_symmetric(6, 2, |v| matvec(&a, v).unwrap(), &PowerConfig::default());
        for j in 0..2 {
            assert!((top.values[j] - dense.values[j]).abs() < 1e-6);
            // same direction up to sign
            let dot = vector::dot(&top.vectors[j], &dense.vectors.col(j));
            assert!(
                dot.abs() > 1.0 - 1e-6,
                "direction {j}: |dot| = {}",
                dot.abs()
            );
        }
    }

    #[test]
    fn zero_operator() {
        let top = top_k_symmetric(4, 2, |v| vec![0.0; v.len()], &PowerConfig::default());
        for v in &top.values {
            assert_eq!(*v, 0.0);
        }
    }
}
