//! Singular value decomposition, two ways.
//!
//! * [`Svd::cross_product`] — the method the paper itself analyzes in §II-B:
//!   eigendecompose the *smaller* Gram matrix (`AAᵀ` if `m ≤ n`, else
//!   `AᵀA`) and recover the other singular-vector set via
//!   `V = Aᵀ·U·Σ⁻¹` / `U = A·V·Σ⁻¹`. This is what makes classical LDA cost
//!   `mnt + t³` flam, the baseline SRDA beats.
//! * [`Svd::jacobi`] — one-sided Jacobi. Slower but accurate to full working
//!   precision even for small singular values; used as a cross-check oracle
//!   in tests and available for callers who need the extra accuracy.
//!
//! Both return a rank-truncated thin SVD `A = U·diag(σ)·Vᵀ` with σ sorted
//! descending and σᵢ > tol·σ₁.

use crate::eigen::SymmetricEigen;
use crate::error::LinalgError;
use crate::matrix::Mat;
use crate::ops::{gram, gram_t, matmul, matmul_transa};
use crate::{flam, Result};

/// Default relative tolerance for rank truncation.
pub const DEFAULT_RANK_TOL: f64 = 1e-10;

/// A thin, rank-truncated SVD `A = U·diag(s)·Vᵀ`.
#[derive(Debug, Clone)]
pub struct Svd {
    /// Left singular vectors (`m × r`).
    pub u: Mat,
    /// Singular values, descending, all `> tol·s[0]`.
    pub s: Vec<f64>,
    /// Right singular vectors (`n × r`).
    pub v: Mat,
}

impl Svd {
    /// Numerical rank (number of retained singular values).
    pub fn rank(&self) -> usize {
        self.s.len()
    }

    /// Reconstruct `U·diag(s)·Vᵀ` (tests / diagnostics).
    pub fn reconstruct(&self) -> Result<Mat> {
        let mut us = self.u.clone();
        crate::ops::scale_cols(&mut us, &self.s);
        crate::ops::matmul_transb(&us, &self.v)
    }

    /// SVD via eigendecomposition of the smaller cross-product (Gram)
    /// matrix — "the most efficient SVD decomposition algorithm (i.e.
    /// cross-product)" per the paper, at the price of squaring the
    /// condition number. `tol` is the relative rank-truncation threshold
    /// on singular values (pass [`DEFAULT_RANK_TOL`] when unsure).
    pub fn cross_product(a: &Mat, tol: f64) -> Result<Self> {
        let (m, n) = a.shape();
        if m == 0 || n == 0 {
            return Ok(Svd {
                u: Mat::zeros(m, 0),
                s: vec![],
                v: Mat::zeros(n, 0),
            });
        }
        if m <= n {
            // eig of A·Aᵀ (m×m) gives U; V = Aᵀ·U·Σ⁻¹
            let g = gram_t(a);
            let eig = SymmetricEigen::factor(&g)?;
            let (s, keep) = sv_from_eigs(&eig.values, tol);
            let u = eig.vectors.select_cols(&keep);
            // V = Aᵀ U Σ⁻¹
            let mut v = matmul_transa(a, &u)?;
            let inv_s: Vec<f64> = s.iter().map(|x| 1.0 / x).collect();
            crate::ops::scale_cols(&mut v, &inv_s);
            flam::add((m * n * s.len()) as u64);
            Ok(Svd { u, s, v })
        } else {
            // eig of AᵀA (n×n) gives V; U = A·V·Σ⁻¹
            let g = gram(a);
            let eig = SymmetricEigen::factor(&g)?;
            let (s, keep) = sv_from_eigs(&eig.values, tol);
            let v = eig.vectors.select_cols(&keep);
            let mut u = matmul(a, &v)?;
            let inv_s: Vec<f64> = s.iter().map(|x| 1.0 / x).collect();
            crate::ops::scale_cols(&mut u, &inv_s);
            flam::add((m * n * s.len()) as u64);
            Ok(Svd { u, s, v })
        }
    }

    /// Golub–Reinsch SVD (Householder bidiagonalization + implicit-shift
    /// QR): the `O(mn²)` production method. See [`crate::golub_reinsch`]
    /// for the accuracy/cost positioning of the three methods.
    pub fn golub_reinsch(a: &Mat, tol: f64) -> Result<Self> {
        crate::golub_reinsch::golub_reinsch_svd(a, tol)
    }

    /// One-sided Jacobi SVD: iteratively orthogonalizes column pairs with
    /// plane rotations. Accurate for small singular values (no squaring of
    /// the condition number) but asymptotically slower than
    /// [`Svd::cross_product`].
    pub fn jacobi(a: &Mat, tol: f64) -> Result<Self> {
        let (m, n) = a.shape();
        if m == 0 || n == 0 {
            return Ok(Svd {
                u: Mat::zeros(m, 0),
                s: vec![],
                v: Mat::zeros(n, 0),
            });
        }
        if m < n {
            // work on the transpose and swap factors back
            let svd_t = Svd::jacobi(&a.transpose(), tol)?;
            return Ok(Svd {
                u: svd_t.v,
                s: svd_t.s,
                v: svd_t.u,
            });
        }

        // column-major working copies for contiguous column access
        let mut cols: Vec<Vec<f64>> = (0..n).map(|j| a.col(j)).collect();
        let mut vcols: Vec<Vec<f64>> = (0..n)
            .map(|j| {
                let mut e = vec![0.0; n];
                e[j] = 1.0;
                e
            })
            .collect();

        const MAX_SWEEPS: usize = 60;
        let eps = f64::EPSILON * (m as f64).sqrt();
        let mut converged = false;
        for _sweep in 0..MAX_SWEEPS {
            let mut off = 0.0f64;
            for p in 0..n {
                for q in (p + 1)..n {
                    let (mut app, mut aqq, mut apq) = (0.0, 0.0, 0.0);
                    for i in 0..m {
                        let (x, y) = (cols[p][i], cols[q][i]);
                        app += x * x;
                        aqq += y * y;
                        apq += x * y;
                    }
                    flam::add(3 * m as u64);
                    let denom = (app * aqq).sqrt();
                    if denom == 0.0 || apq.abs() <= eps * denom {
                        continue;
                    }
                    off = off.max(apq.abs() / denom);
                    // Jacobi rotation zeroing the (p,q) entry of the Gram
                    let zeta = (aqq - app) / (2.0 * apq);
                    let t = if zeta >= 0.0 {
                        1.0 / (zeta + (1.0 + zeta * zeta).sqrt())
                    } else {
                        -1.0 / (-zeta + (1.0 + zeta * zeta).sqrt())
                    };
                    let c = 1.0 / (1.0 + t * t).sqrt();
                    let s = c * t;
                    flam::add(2 * (m + n) as u64);
                    for i in 0..m {
                        let (x, y) = (cols[p][i], cols[q][i]);
                        cols[p][i] = c * x - s * y;
                        cols[q][i] = s * x + c * y;
                    }
                    for i in 0..n {
                        let (x, y) = (vcols[p][i], vcols[q][i]);
                        vcols[p][i] = c * x - s * y;
                        vcols[q][i] = s * x + c * y;
                    }
                }
            }
            if off <= eps {
                converged = true;
                break;
            }
        }
        if !converged {
            return Err(LinalgError::NoConvergence {
                algorithm: "one-sided Jacobi SVD",
                iterations: MAX_SWEEPS,
            });
        }

        // singular values = column norms; sort descending, truncate
        let mut order: Vec<(usize, f64)> = cols
            .iter()
            .enumerate()
            .map(|(j, c)| (j, crate::vector::norm2(c)))
            .collect();
        order.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        let smax = order.first().map(|x| x.1).unwrap_or(0.0);
        let kept: Vec<(usize, f64)> = order
            .into_iter()
            .filter(|(_, s)| *s > tol * smax && *s > 0.0)
            .collect();

        let r = kept.len();
        let mut u = Mat::zeros(m, r);
        let mut v = Mat::zeros(n, r);
        let mut s = Vec::with_capacity(r);
        for (k, &(j, sj)) in kept.iter().enumerate() {
            s.push(sj);
            let inv = 1.0 / sj;
            for i in 0..m {
                u[(i, k)] = cols[j][i] * inv;
            }
            for i in 0..n {
                v[(i, k)] = vcols[j][i];
            }
        }
        Ok(Svd { u, s, v })
    }
}

/// Convert descending eigenvalues of a Gram matrix to singular values,
/// returning the kept values and the indices to keep.
fn sv_from_eigs(eigs: &[f64], tol: f64) -> (Vec<f64>, Vec<usize>) {
    let max = eigs.first().copied().unwrap_or(0.0).max(0.0);
    let smax = max.sqrt();
    let mut s = Vec::new();
    let mut keep = Vec::new();
    for (i, &l) in eigs.iter().enumerate() {
        if l <= 0.0 {
            continue;
        }
        let sv = l.sqrt();
        if sv > tol * smax {
            s.push(sv);
            keep.push(i);
        }
    }
    (s, keep)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::matmul_transa;

    fn test_mat(m: usize, n: usize) -> Mat {
        // deterministic hash noise: full rank with probability ~1
        Mat::from_fn(m, n, |i, j| {
            let x = (i as f64 * 12.9898 + j as f64 * 78.233).sin() * 43758.5453;
            x - x.floor() - 0.5
        })
    }

    fn check_svd(a: &Mat, svd: &Svd, tol: f64) {
        // reconstruction
        let recon = svd.reconstruct().unwrap();
        assert!(
            recon.approx_eq(a, tol),
            "reconstruction error {}",
            recon.sub(a).unwrap().max_abs()
        );
        // orthonormal columns
        let r = svd.rank();
        let utu = matmul_transa(&svd.u, &svd.u).unwrap();
        assert!(utu.approx_eq(&Mat::identity(r), 1e-8));
        let vtv = matmul_transa(&svd.v, &svd.v).unwrap();
        assert!(vtv.approx_eq(&Mat::identity(r), 1e-8));
        // descending
        for w in svd.s.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
    }

    #[test]
    fn cross_product_tall() {
        let a = test_mat(10, 4);
        let svd = Svd::cross_product(&a, DEFAULT_RANK_TOL).unwrap();
        assert_eq!(svd.rank(), 4);
        check_svd(&a, &svd, 1e-9);
    }

    #[test]
    fn cross_product_wide() {
        let a = test_mat(4, 10);
        let svd = Svd::cross_product(&a, DEFAULT_RANK_TOL).unwrap();
        assert_eq!(svd.rank(), 4);
        check_svd(&a, &svd, 1e-9);
    }

    #[test]
    fn jacobi_tall_and_wide() {
        for (m, n) in [(9, 5), (5, 9)] {
            let a = test_mat(m, n);
            let svd = Svd::jacobi(&a, DEFAULT_RANK_TOL).unwrap();
            assert_eq!(svd.rank(), 5);
            check_svd(&a, &svd, 1e-10);
        }
    }

    #[test]
    fn methods_agree_on_singular_values() {
        let a = test_mat(8, 6);
        let s1 = Svd::cross_product(&a, DEFAULT_RANK_TOL).unwrap().s;
        let s2 = Svd::jacobi(&a, DEFAULT_RANK_TOL).unwrap().s;
        assert_eq!(s1.len(), s2.len());
        for (x, y) in s1.iter().zip(&s2) {
            assert!((x - y).abs() < 1e-8 * s1[0], "{x} vs {y}");
        }
    }

    #[test]
    fn rank_deficient_truncation() {
        // rank-2: third column is a combination of the first two
        let base = test_mat(8, 2);
        let third: Vec<f64> = (0..8).map(|i| base[(i, 0)] + 2.0 * base[(i, 1)]).collect();
        let a = base.hcat(&Mat::from_vec(8, 1, third).unwrap()).unwrap();
        for svd in [
            Svd::cross_product(&a, 1e-8).unwrap(),
            Svd::jacobi(&a, 1e-8).unwrap(),
        ] {
            assert_eq!(svd.rank(), 2);
            check_svd(&a, &svd, 1e-8);
        }
    }

    #[test]
    fn known_diagonal_case() {
        let a = Mat::from_diag(&[3.0, 0.0, 5.0]);
        let svd = Svd::cross_product(&a, 1e-12).unwrap();
        assert_eq!(svd.rank(), 2);
        assert!((svd.s[0] - 5.0).abs() < 1e-10);
        assert!((svd.s[1] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn empty_and_degenerate() {
        let svd = Svd::cross_product(&Mat::zeros(0, 3), 1e-10).unwrap();
        assert_eq!(svd.rank(), 0);
        let svd2 = Svd::jacobi(&Mat::zeros(3, 3), 1e-10).unwrap();
        assert_eq!(svd2.rank(), 0);
    }

    #[test]
    fn single_column() {
        let a = Mat::from_vec(4, 1, vec![3.0, 0.0, 4.0, 0.0]).unwrap();
        let svd = Svd::jacobi(&a, 1e-12).unwrap();
        assert_eq!(svd.rank(), 1);
        assert!((svd.s[0] - 5.0).abs() < 1e-12);
        check_svd(&a, &svd, 1e-12);
    }

    #[test]
    fn jacobi_more_accurate_on_tiny_singular_values() {
        // graded matrix with σ spanning many orders of magnitude
        let d = [1.0, 1e-3, 1e-6];
        let a = Mat::from_diag(&d);
        let j = Svd::jacobi(&a, 1e-12).unwrap();
        assert_eq!(j.rank(), 3);
        assert!((j.s[2] - 1e-6).abs() / 1e-6 < 1e-10);
    }

    #[test]
    fn svd_of_orthogonal_matrix_has_unit_singular_values() {
        let raw = test_mat(5, 5);
        let q = crate::qr::Qr::factor(&raw).unwrap().q_thin();
        let svd = Svd::jacobi(&q, 1e-12).unwrap();
        for s in &svd.s {
            assert!((s - 1.0).abs() < 1e-10);
        }
    }
}
