//! # srda-linalg
//!
//! Dense linear-algebra substrate for the SRDA reproduction
//! (Cai, He, Han, *Training Linear Discriminant Analysis in Linear Time*,
//! ICDE 2008).
//!
//! The paper's algorithms require a specific, fairly small set of dense
//! kernels and factorizations, all of which are implemented here from
//! scratch:
//!
//! * [`Mat`] — a row-major dense `f64` matrix with the usual algebra
//!   ([`ops`]: products, Gram matrices, norms) and data-science helpers
//!   ([`stats`]: column means, centering).
//! * [`qr`] — Householder QR (thin and full), used by the IDR/QR baseline
//!   and by least-squares solvers.
//! * [`eigen`] — symmetric eigendecomposition via Householder
//!   tridiagonalization + implicit-shift QL, the workhorse behind the
//!   paper's *cross-product* SVD.
//! * [`svd`] — singular value decomposition two ways: the cross-product
//!   method the paper analyzes in §II-B (eigendecompose the smaller Gram
//!   matrix, recover the other side) and one-sided Jacobi as a
//!   high-accuracy cross-check.
//! * [`cholesky`] — SPD factorization used to solve SRDA's regularized
//!   normal equations (Eqn 18/20 of the paper), with a Hager 1-norm
//!   condition estimator for solution certification.
//! * [`refine`] — fixed-precision iterative refinement (compensated
//!   residuals + correction solves against the existing factor), the
//!   backward-error repair step of the certified-solve pipeline.
//! * [`lu`] — LU with partial pivoting (general solves, test oracles).
//! * [`gram_schmidt`] — modified Gram-Schmidt with reorthogonalization,
//!   used verbatim by SRDA's response-generation step (§III.B step 1).
//! * [`flam`] — global operation counters measuring *flam* (one addition
//!   plus one multiplication, after Stewart), the unit the paper's Table I
//!   uses; lets the benchmark harness verify complexity claims empirically.
//!
//! All routines are pure Rust with no external BLAS/LAPACK dependency; the
//! hot kernels are written so LLVM can autovectorize them (contiguous
//! row-major inner loops, `chunks_exact`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// index-based loops are the clearest way to write the numeric kernels here
#![allow(clippy::needless_range_loop)]

pub mod cholesky;
pub mod eigen;
pub mod error;
#[cfg(feature = "failpoints")]
pub mod failpoint;
pub mod flam;
pub mod golub_reinsch;
pub mod gram_schmidt;
pub mod io;
pub mod lu;
pub mod matrix;
pub mod matrix_ops;
pub mod ops;
pub mod power;
pub mod qr;
pub mod refine;
pub mod stats;
pub mod svd;
pub mod triangular;
pub mod tridiagonal;
pub mod vector;

pub use cholesky::Cholesky;
pub use eigen::SymmetricEigen;
pub use error::LinalgError;
pub use lu::Lu;
pub use matrix::Mat;
pub use qr::Qr;
pub use svd::Svd;

// Execution backend: re-exported so downstream crates (solvers, core, cli)
// can name policies without depending on srda-kernels directly.
pub use srda_kernels::{Backend, ExecPolicy, Executor};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, LinalgError>;
