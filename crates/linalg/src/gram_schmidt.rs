//! Modified Gram-Schmidt orthogonalization with reorthogonalization.
//!
//! SRDA's response-generation step (§III.B step 1) is, verbatim: "Take the
//! ones vector as the first vector and use the Gram-Schmidt process to
//! orthogonalize" the class-indicator vectors. The paper charges this step
//! `mc²` flam. We implement *modified* Gram-Schmidt with one optional
//! reorthogonalization pass (the classic "twice is enough" rule), which
//! keeps the produced basis orthonormal to machine precision even for
//! nearly dependent inputs.

use crate::{flam, vector};

/// Outcome of orthogonalizing one vector against an existing orthonormal
/// basis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GsOutcome {
    /// The vector had a significant independent component and was added.
    Added,
    /// The vector was (numerically) inside the span and was rejected.
    Dependent,
}

/// Orthogonalize `v` in place against the orthonormal rows in `basis`,
/// then normalize. Returns [`GsOutcome::Dependent`] (leaving `v`
/// unspecified) if the residual norm falls below `tol` times the original
/// norm.
pub fn orthogonalize_against(basis: &[Vec<f64>], v: &mut [f64], tol: f64) -> GsOutcome {
    // norm2_robust: a NaN-poisoned input must not read as norm 0 and be
    // silently dropped as "dependent" (bit-identical to norm2 on finite
    // input).
    let orig = vector::norm2_robust(v);
    if orig == 0.0 {
        return GsOutcome::Dependent;
    }
    if !orig.is_finite() {
        return GsOutcome::Dependent;
    }
    flam::add((2 * basis.len() * v.len()) as u64);
    for _pass in 0..2 {
        for b in basis {
            let proj = vector::dot(b, v);
            vector::axpy(-proj, b, v);
        }
    }
    let after = vector::norm2_robust(v);
    if !after.is_finite() || after <= tol * orig {
        return GsOutcome::Dependent;
    }
    vector::scale(1.0 / after, v);
    GsOutcome::Added
}

/// Orthonormalize a set of vectors with modified Gram-Schmidt, dropping
/// numerically dependent ones. Returns the orthonormal basis (each of the
/// original length).
pub fn orthonormalize(vectors: &[Vec<f64>], tol: f64) -> Vec<Vec<f64>> {
    let mut basis: Vec<Vec<f64>> = Vec::with_capacity(vectors.len());
    for v in vectors {
        let mut w = v.clone();
        if orthogonalize_against(&basis, &mut w, tol) == GsOutcome::Added {
            basis.push(w);
        }
    }
    basis
}

#[cfg(test)]
mod tests {
    use super::*;

    fn is_orthonormal(basis: &[Vec<f64>], tol: f64) -> bool {
        for (i, a) in basis.iter().enumerate() {
            for (j, b) in basis.iter().enumerate() {
                let d = vector::dot(a, b);
                let expect = if i == j { 1.0 } else { 0.0 };
                if (d - expect).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    #[test]
    fn orthonormalizes_independent_set() {
        let vs = vec![
            vec![1.0, 1.0, 0.0],
            vec![1.0, 0.0, 1.0],
            vec![0.0, 1.0, 1.0],
        ];
        let basis = orthonormalize(&vs, 1e-12);
        assert_eq!(basis.len(), 3);
        assert!(is_orthonormal(&basis, 1e-12));
    }

    #[test]
    fn preserves_span_order() {
        // first basis vector must be parallel to the first input
        let vs = vec![vec![3.0, 0.0], vec![1.0, 1.0]];
        let basis = orthonormalize(&vs, 1e-12);
        assert!((basis[0][0].abs() - 1.0).abs() < 1e-14);
        assert!(basis[0][1].abs() < 1e-14);
    }

    #[test]
    fn drops_dependent_vectors() {
        let vs = vec![
            vec![1.0, 2.0, 3.0],
            vec![2.0, 4.0, 6.0], // parallel to the first
            vec![1.0, 0.0, 0.0],
        ];
        let basis = orthonormalize(&vs, 1e-10);
        assert_eq!(basis.len(), 2);
        assert!(is_orthonormal(&basis, 1e-12));
    }

    #[test]
    fn drops_zero_vector() {
        let vs = vec![vec![0.0, 0.0], vec![1.0, 0.0]];
        let basis = orthonormalize(&vs, 1e-10);
        assert_eq!(basis.len(), 1);
    }

    #[test]
    fn reorthogonalization_handles_near_dependence() {
        // nearly parallel vectors: naive single-pass MGS loses orthogonality
        let eps = 1e-10;
        let vs = vec![
            vec![1.0, eps, 0.0],
            vec![1.0, 0.0, eps],
            vec![0.0, 0.0, 1.0],
        ];
        let basis = orthonormalize(&vs, 1e-14);
        assert_eq!(basis.len(), 3);
        assert!(is_orthonormal(&basis, 1e-10));
    }

    #[test]
    fn orthogonalize_against_empty_basis_just_normalizes() {
        let mut v = vec![0.0, 3.0, 4.0];
        assert_eq!(orthogonalize_against(&[], &mut v, 1e-12), GsOutcome::Added);
        assert!((vector::norm2(&v) - 1.0).abs() < 1e-14);
    }

    #[test]
    fn non_finite_vectors_are_rejected_not_misclassified() {
        // A NaN-poisoned vector must read as Dependent (rejected), never as
        // a normalizable basis vector.
        let basis = vec![vec![1.0, 0.0, 0.0]];
        let mut v = vec![f64::NAN, 1.0, 0.0];
        assert_eq!(
            orthogonalize_against(&basis, &mut v, 1e-12),
            GsOutcome::Dependent
        );
        let mut v = vec![f64::INFINITY, 1.0, 0.0];
        assert_eq!(
            orthogonalize_against(&basis, &mut v, 1e-12),
            GsOutcome::Dependent
        );
    }

    #[test]
    fn class_indicator_scenario_from_paper() {
        // The exact SRDA use-case: ones vector first, then class indicators.
        // m = 6 samples, c = 3 classes of 2 samples each.
        let ones = vec![1.0; 6];
        let ind1 = vec![1.0, 1.0, 0.0, 0.0, 0.0, 0.0];
        let ind2 = vec![0.0, 0.0, 1.0, 1.0, 0.0, 0.0];
        let ind3 = vec![0.0, 0.0, 0.0, 0.0, 1.0, 1.0];
        let basis = orthonormalize(&[ones, ind1, ind2, ind3], 1e-10);
        // indicators sum to the ones vector → exactly one is dependent
        assert_eq!(basis.len(), 3);
        assert!(is_orthonormal(&basis, 1e-12));
        // all non-first vectors are orthogonal to ones ⇒ entries sum to 0
        for b in &basis[1..] {
            assert!(vector::sum(b).abs() < 1e-12);
        }
    }
}
