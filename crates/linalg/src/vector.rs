//! Vector kernels: dot products, norms, axpy-style updates.
//!
//! These are the innermost loops of every solver in the workspace (LSQR in
//! particular is built almost entirely from them), so they are written as
//! plain contiguous-slice loops that LLVM reliably autovectorizes. Each
//! kernel reports its leading-order cost to the [`crate::flam`] counter.

use crate::flam;

/// Dot product `xᵀy`. Panics in debug builds on length mismatch.
#[inline]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    flam::add(x.len() as u64);
    let mut acc = 0.0;
    for (a, b) in x.iter().zip(y) {
        acc += a * b;
    }
    acc
}

/// Euclidean norm `‖x‖₂`, computed with scaling to avoid overflow/underflow
/// for extreme magnitudes (the same guard LSQR's reference implementation
/// uses).
pub fn norm2(x: &[f64]) -> f64 {
    flam::add(x.len() as u64);
    let max = x.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
    if max == 0.0 || !max.is_finite() {
        return if max == 0.0 { 0.0 } else { f64::INFINITY };
    }
    let mut acc = 0.0;
    for &v in x {
        let s = v / max;
        acc += s * s;
    }
    max * acc.sqrt()
}

/// Euclidean norm with full non-finite propagation: any NaN entry yields
/// NaN and any ±∞ entry yields +∞, instead of the silent answers [`norm2`]
/// can produce (its overflow guard folds magnitudes with `f64::max`, which
/// *ignores* NaN — an all-NaN vector comes back as 0.0). On finite input
/// this delegates to [`norm2`] and is bit-for-bit identical to it, so it is
/// safe to substitute into solvers whose trajectories are locked by golden
/// tests.
///
/// Use this in iterative solvers and orthogonalization loops where a
/// poisoned vector must surface as a detectable non-finite norm rather
/// than a plausible-looking number.
pub fn norm2_robust(x: &[f64]) -> f64 {
    for &v in x {
        if v.is_nan() {
            return f64::NAN;
        }
    }
    norm2(x)
}

/// Sum of entries.
pub fn sum(x: &[f64]) -> f64 {
    flam::add(x.len() as u64);
    x.iter().sum()
}

/// Arithmetic mean (0 for an empty slice).
pub fn mean(x: &[f64]) -> f64 {
    if x.is_empty() {
        0.0
    } else {
        sum(x) / x.len() as f64
    }
}

/// `y ← y + a·x`.
#[inline]
pub fn axpy(a: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    flam::add(x.len() as u64);
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += a * xi;
    }
}

/// `x ← s·x`.
#[inline]
pub fn scale(s: f64, x: &mut [f64]) {
    flam::add(x.len() as u64);
    for xi in x {
        *xi *= s;
    }
}

/// Normalize `x` to unit Euclidean norm in place; returns the original norm.
/// Leaves a zero vector untouched and returns 0.
pub fn normalize(x: &mut [f64]) -> f64 {
    let n = norm2(x);
    if n > 0.0 {
        scale(1.0 / n, x);
    }
    n
}

/// Squared Euclidean distance `‖x − y‖₂²`.
pub fn dist2_sq(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    flam::add(x.len() as u64);
    let mut acc = 0.0;
    for (a, b) in x.iter().zip(y) {
        let d = a - b;
        acc += d * d;
    }
    acc
}

/// Index of the minimum entry (first on ties); `None` for an empty slice.
pub fn argmin(x: &[f64]) -> Option<usize> {
    if x.is_empty() {
        return None;
    }
    let mut best = 0;
    for (i, &v) in x.iter().enumerate().skip(1) {
        if v < x[best] {
            best = i;
        }
    }
    Some(best)
}

/// Index of the maximum entry (first on ties); `None` for an empty slice.
pub fn argmax(x: &[f64]) -> Option<usize> {
    if x.is_empty() {
        return None;
    }
    let mut best = 0;
    for (i, &v) in x.iter().enumerate().skip(1) {
        if v > x[best] {
            best = i;
        }
    }
    Some(best)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_basic() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    fn norm2_matches_pythagoras() {
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
        assert_eq!(norm2(&[]), 0.0);
        assert_eq!(norm2(&[0.0, 0.0]), 0.0);
    }

    #[test]
    fn norm2_no_overflow_for_huge_entries() {
        let big = 1e200;
        let n = norm2(&[big, big]);
        assert!((n - big * std::f64::consts::SQRT_2).abs() / n < 1e-14);
    }

    #[test]
    fn norm2_no_underflow_for_tiny_entries() {
        let tiny = 1e-200;
        let n = norm2(&[tiny, tiny]);
        assert!(n > 0.0);
        assert!((n - tiny * std::f64::consts::SQRT_2).abs() / n < 1e-14);
    }

    #[test]
    fn norm2_robust_bitwise_matches_norm2_on_finite_input() {
        let xs: Vec<Vec<f64>> = vec![
            vec![],
            vec![0.0, 0.0],
            vec![3.0, 4.0],
            vec![1e200, -1e200, 3.5],
            vec![1e-300, 2e-300],
        ];
        for x in &xs {
            assert_eq!(norm2_robust(x).to_bits(), norm2(x).to_bits());
        }
    }

    #[test]
    fn norm2_robust_survives_entries_near_sqrt_max() {
        // entries ~1.3e154: a naive sum-of-squares (dot(x, x)) overflows,
        // the scaled norm must not.
        let big = f64::MAX.sqrt() * 0.99;
        let x = vec![big, -big, big];
        assert!(dot(&x, &x).is_infinite(), "naive path should overflow");
        let n = norm2_robust(&x);
        assert!(n.is_finite());
        assert!((n - big * 3.0f64.sqrt()).abs() / n < 1e-14);
    }

    #[test]
    fn norm2_robust_propagates_non_finite() {
        // norm2's max-scan ignores NaN: an all-NaN vector reads as 0.0.
        assert_eq!(norm2(&[f64::NAN, f64::NAN]), 0.0);
        assert!(norm2_robust(&[f64::NAN, f64::NAN]).is_nan());
        assert!(norm2_robust(&[1.0, f64::NAN, 2.0]).is_nan());
        assert_eq!(norm2_robust(&[1.0, f64::INFINITY]), f64::INFINITY);
        assert_eq!(norm2_robust(&[f64::NEG_INFINITY, 2.0]), f64::INFINITY);
    }

    #[test]
    fn axpy_updates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, 4.0], &mut y);
        assert_eq!(y, vec![7.0, 9.0]);
    }

    #[test]
    fn scale_and_normalize() {
        let mut x = vec![3.0, 4.0];
        let n = normalize(&mut x);
        assert!((n - 5.0).abs() < 1e-15);
        assert!((norm2(&x) - 1.0).abs() < 1e-15);

        let mut z = vec![0.0, 0.0];
        assert_eq!(normalize(&mut z), 0.0);
        assert_eq!(z, vec![0.0, 0.0]);
    }

    #[test]
    fn distances() {
        assert_eq!(dist2_sq(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
    }

    #[test]
    fn arg_extrema() {
        assert_eq!(argmin(&[3.0, 1.0, 2.0]), Some(1));
        assert_eq!(argmax(&[3.0, 1.0, 3.5]), Some(2));
        assert_eq!(argmin(&[]), None);
        assert_eq!(argmax(&[]), None);
        // first wins on ties
        assert_eq!(argmin(&[1.0, 1.0]), Some(0));
    }

    #[test]
    fn mean_and_sum() {
        assert_eq!(sum(&[1.0, 2.0, 3.0]), 6.0);
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
    }
}
