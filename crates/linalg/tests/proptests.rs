//! Property-based tests for the dense linear-algebra substrate.
//!
//! These check algebraic identities on randomized inputs rather than
//! hand-picked cases: transpose involution, product/transpose interplay,
//! factorization reconstruction, solver correctness against residuals.

use proptest::prelude::*;
use srda_linalg::ops::{
    gram, gram_exec, gram_t_exec, matmul, matmul_exec, matmul_transa, matmul_transa_exec,
    matmul_transb, matmul_transb_exec, matvec, matvec_exec, matvec_t, matvec_t_exec,
};
use srda_linalg::{Cholesky, Executor, Lu, Mat, Qr, SymmetricEigen};

/// Strategy: a matrix with dimensions in `[1, max_dim]` and entries in
/// `[-10, 10]`.
fn mat_strategy(max_dim: usize) -> impl Strategy<Value = Mat> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(m, n)| {
        proptest::collection::vec(-10.0f64..10.0, m * n)
            .prop_map(move |data| Mat::from_vec(m, n, data).unwrap())
    })
}

/// Strategy: a square matrix of the given side.
fn square_strategy(max_dim: usize) -> impl Strategy<Value = Mat> {
    (1..=max_dim).prop_flat_map(|n| {
        proptest::collection::vec(-10.0f64..10.0, n * n)
            .prop_map(move |data| Mat::from_vec(n, n, data).unwrap())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn transpose_is_involution(a in mat_strategy(12)) {
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn transpose_swaps_entries(a in mat_strategy(10)) {
        let t = a.transpose();
        for i in 0..a.nrows() {
            for j in 0..a.ncols() {
                prop_assert_eq!(t[(j, i)], a[(i, j)]);
            }
        }
    }

    #[test]
    fn matmul_transpose_identity(a in mat_strategy(8), b in mat_strategy(8)) {
        // (A·B)ᵀ = Bᵀ·Aᵀ whenever shapes are compatible
        prop_assume!(a.ncols() == b.nrows());
        let ab_t = matmul(&a, &b).unwrap().transpose();
        let bt_at = matmul(&b.transpose(), &a.transpose()).unwrap();
        prop_assert!(ab_t.approx_eq(&bt_at, 1e-9));
    }

    #[test]
    fn trans_variants_consistent(a in mat_strategy(8)) {
        // AᵀA via three routes agree
        let g = gram(&a);
        let via_transa = matmul_transa(&a, &a).unwrap();
        let explicit = matmul(&a.transpose(), &a).unwrap();
        prop_assert!(g.approx_eq(&via_transa, 1e-9));
        prop_assert!(g.approx_eq(&explicit, 1e-9));
        // AAᵀ
        let via_transb = matmul_transb(&a, &a).unwrap();
        let explicit2 = matmul(&a, &a.transpose()).unwrap();
        prop_assert!(via_transb.approx_eq(&explicit2, 1e-9));
    }

    #[test]
    fn matvec_is_matmul_with_column(a in mat_strategy(10), seed in 0u64..1000) {
        let x: Vec<f64> = (0..a.ncols())
            .map(|i| ((seed + i as u64) as f64 * 0.7).sin())
            .collect();
        let y = matvec(&a, &x).unwrap();
        let xm = Mat::from_vec(x.len(), 1, x.clone()).unwrap();
        let ym = matmul(&a, &xm).unwrap();
        for i in 0..a.nrows() {
            prop_assert!((y[i] - ym[(i, 0)]).abs() < 1e-9);
        }
        // transpose route
        let yt = matvec_t(&a, &y).unwrap();
        let yt2 = matvec(&a.transpose(), &y).unwrap();
        for (u, v) in yt.iter().zip(&yt2) {
            prop_assert!((u - v).abs() < 1e-9);
        }
    }

    #[test]
    fn cholesky_solves_spd_systems(a in mat_strategy(8), shift in 0.5f64..5.0) {
        // G = AᵀA + shift·I is SPD
        let mut g = gram(&a);
        g.add_to_diag(shift);
        let ch = Cholesky::factor(&g).unwrap();
        let x_true: Vec<f64> = (0..g.nrows()).map(|i| (i as f64 * 0.3).cos()).collect();
        let b = matvec(&g, &x_true).unwrap();
        let x = ch.solve(&b).unwrap();
        for (u, v) in x.iter().zip(&x_true) {
            prop_assert!((u - v).abs() < 1e-6);
        }
    }

    #[test]
    fn lu_solve_has_small_residual(a in square_strategy(8)) {
        // skip (near-)singular draws
        let lu = match Lu::factor(&a) {
            Ok(l) => l,
            Err(_) => return Ok(()),
        };
        prop_assume!(lu.det().abs() > 1e-6);
        let b: Vec<f64> = (0..a.nrows()).map(|i| 1.0 + i as f64).collect();
        let x = lu.solve(&b).unwrap();
        let ax = matvec(&a, &x).unwrap();
        let scale = a.max_abs().max(1.0);
        for (u, v) in ax.iter().zip(&b) {
            prop_assert!((u - v).abs() < 1e-5 * scale * a.nrows() as f64);
        }
    }

    #[test]
    fn qr_reconstructs_and_q_orthonormal(a in mat_strategy(10)) {
        prop_assume!(a.nrows() >= a.ncols());
        let qr = Qr::factor(&a).unwrap();
        let q = qr.q_thin();
        let recon = matmul(&q, &qr.r()).unwrap();
        prop_assert!(recon.approx_eq(&a, 1e-8));
        let qtq = matmul_transa(&q, &q).unwrap();
        prop_assert!(qtq.approx_eq(&Mat::identity(a.ncols()), 1e-9));
    }

    #[test]
    fn symmetric_eigen_reconstructs(a in square_strategy(8)) {
        let mut s = a.add(&a.transpose()).unwrap();
        s.scale_inplace(0.5);
        let eg = SymmetricEigen::factor(&s).unwrap();
        let vd = matmul(&eg.vectors, &Mat::from_diag(&eg.values)).unwrap();
        let recon = matmul_transb(&vd, &eg.vectors).unwrap();
        prop_assert!(
            recon.approx_eq(&s, 1e-7 * s.max_abs().max(1.0)),
            "max err {}", recon.sub(&s).unwrap().max_abs()
        );
        // trace is preserved by similarity transforms
        let trace: f64 = s.diag().iter().sum();
        let eig_sum: f64 = eg.values.iter().sum();
        prop_assert!((trace - eig_sum).abs() < 1e-7 * trace.abs().max(1.0));
    }

    #[test]
    fn svd_reconstructs(a in mat_strategy(9)) {
        let svd = srda_linalg::Svd::jacobi(&a, 1e-12).unwrap();
        let recon = svd.reconstruct().unwrap();
        prop_assert!(recon.approx_eq(&a, 1e-8 * a.max_abs().max(1.0)));
        // Frobenius norm equals the l2 norm of the singular values
        let fro = a.frobenius_norm();
        let s_norm = svd.s.iter().map(|x| x * x).sum::<f64>().sqrt();
        prop_assert!((fro - s_norm).abs() < 1e-8 * fro.max(1.0));
    }

    #[test]
    fn gram_schmidt_output_is_orthonormal(a in mat_strategy(8)) {
        let rows: Vec<Vec<f64>> = (0..a.nrows()).map(|i| a.row(i).to_vec()).collect();
        let basis = srda_linalg::gram_schmidt::orthonormalize(&rows, 1e-10);
        for (i, u) in basis.iter().enumerate() {
            for (j, v) in basis.iter().enumerate() {
                let d = srda_linalg::vector::dot(u, v);
                let expect = if i == j { 1.0 } else { 0.0 };
                prop_assert!((d - expect).abs() < 1e-8);
            }
        }
        prop_assert!(basis.len() <= a.nrows().min(a.ncols()));
    }

    #[test]
    fn power_iteration_matches_dense_leading_pair(a in square_strategy(8)) {
        // build an SPD matrix so the power method's assumptions hold
        let mut g = gram(&a);
        g.add_to_diag(0.5);
        let dense = SymmetricEigen::factor(&g).unwrap();
        let top = srda_linalg::power::top_k_symmetric(
            g.nrows(),
            1,
            |v| matvec(&g, v).unwrap(),
            &srda_linalg::power::PowerConfig::default(),
        );
        prop_assume!(!top.values.is_empty());
        // leading eigenvalue agrees; direction agrees up to sign when the
        // gap is non-degenerate
        prop_assert!(
            (top.values[0] - dense.values[0]).abs() < 1e-6 * dense.values[0].max(1.0),
            "{} vs {}", top.values[0], dense.values[0]
        );
        if dense.values.len() > 1
            && dense.values[0] - dense.values[1] > 1e-3 * dense.values[0]
        {
            let dot = srda_linalg::vector::dot(&top.vectors[0], &dense.vectors.col(0));
            prop_assert!(dot.abs() > 1.0 - 1e-5, "|dot| = {}", dot.abs());
        }
    }

    #[test]
    fn three_svd_methods_agree(a in mat_strategy(9)) {
        let j = srda_linalg::Svd::jacobi(&a, 1e-11).unwrap();
        let g = srda_linalg::Svd::golub_reinsch(&a, 1e-11).unwrap();
        let c = srda_linalg::Svd::cross_product(&a, 1e-6).unwrap();
        // jacobi and golub-reinsch agree on every retained singular value
        prop_assert_eq!(j.rank(), g.rank());
        let smax = j.s.first().copied().unwrap_or(0.0).max(1e-300);
        for (x, y) in j.s.iter().zip(&g.s) {
            prop_assert!((x - y).abs() < 1e-8 * smax, "{} vs {}", x, y);
        }
        // cross-product agrees on the values above its √ε noise floor
        for (x, y) in c.s.iter().zip(&j.s) {
            if *y > 1e-5 * smax {
                prop_assert!((x - y).abs() < 1e-5 * smax, "{} vs {}", x, y);
            }
        }
        // all reconstruct
        for svd in [&j, &g] {
            let recon = svd.reconstruct().unwrap();
            prop_assert!(recon.approx_eq(&a, 1e-8 * a.max_abs().max(1.0)));
        }
    }

    #[test]
    fn exec_backends_match_serial_oracle_bitwise(
        a in mat_strategy(9),
        b in mat_strategy(9),
        threads in 2usize..9,
    ) {
        // every execution backend must produce bit-for-bit the serial
        // result: row partitioning keeps per-element summation order
        // identical, so `approx_eq(_, 0.0)` (exact equality) is the bar.
        // `threads` routinely exceeds nrows here — small matrices are the
        // interesting edge for the partitioner.
        let ser = Executor::serial();
        let par = Executor::threaded(threads);
        prop_assert!(gram_exec(&a, &ser).approx_eq(&gram_exec(&a, &par), 0.0));
        prop_assert!(gram_t_exec(&a, &ser).approx_eq(&gram_t_exec(&a, &par), 0.0));
        prop_assert!(matmul_transa_exec(&a, &a, &ser).unwrap()
            .approx_eq(&matmul_transa_exec(&a, &a, &par).unwrap(), 0.0));
        prop_assert!(matmul_transb_exec(&a, &a, &ser).unwrap()
            .approx_eq(&matmul_transb_exec(&a, &a, &par).unwrap(), 0.0));
        if a.ncols() == b.nrows() {
            prop_assert!(matmul_exec(&a, &b, &ser).unwrap()
                .approx_eq(&matmul_exec(&a, &b, &par).unwrap(), 0.0));
        }
        let x: Vec<f64> = (0..a.ncols()).map(|i| (i as f64 * 0.7).sin()).collect();
        prop_assert_eq!(
            matvec_exec(&a, &x, &ser).unwrap(),
            matvec_exec(&a, &x, &par).unwrap()
        );
        let z: Vec<f64> = (0..a.nrows()).map(|i| (i as f64 * 1.3).cos()).collect();
        prop_assert_eq!(
            matvec_t_exec(&a, &z, &ser).unwrap(),
            matvec_t_exec(&a, &z, &par).unwrap()
        );
    }

    #[test]
    fn exec_serial_matches_plain_ops(a in mat_strategy(9)) {
        // the blocked serial backend must agree with the naive reference
        // implementations up to floating-point reassociation
        let ser = Executor::serial();
        prop_assert!(gram_exec(&a, &ser).approx_eq(&gram(&a), 1e-9 * a.max_abs().max(1.0).powi(2) * a.nrows() as f64));
        let x: Vec<f64> = (0..a.ncols()).map(|i| (i as f64 * 0.7).sin()).collect();
        let y_exec = matvec_exec(&a, &x, &ser).unwrap();
        let y_ref = matvec(&a, &x).unwrap();
        for (u, v) in y_exec.iter().zip(&y_ref) {
            prop_assert!((u - v).abs() < 1e-9 * a.max_abs().max(1.0) * a.ncols() as f64);
        }
    }

    #[test]
    fn exec_block_edges_cover_non_divisible_shapes(
        m in 1usize..70,
        n in 1usize..6,
        threads in 1usize..9,
    ) {
        // row counts straddling block/thread-chunk boundaries (the chunk
        // size is ⌈m / threads⌉, so uneven trailing blocks are common):
        // the full output must be written, no row skipped or doubled
        let a = Mat::from_vec(m, n, (0..m * n).map(|k| k as f64 * 0.25 + 1.0).collect()).unwrap();
        let x: Vec<f64> = (0..n).map(|j| 1.0 + j as f64).collect();
        let ser = matvec_exec(&a, &x, &Executor::serial()).unwrap();
        let par = matvec_exec(&a, &x, &Executor::threaded(threads)).unwrap();
        prop_assert_eq!(&ser, &par);
        for (i, v) in ser.iter().enumerate() {
            let expect: f64 = (0..n).map(|j| a[(i, j)] * x[j]).sum();
            prop_assert!((v - expect).abs() < 1e-9 * expect.abs().max(1.0), "row {i}");
        }
    }

    #[test]
    fn csv_roundtrip_preserves_matrix(a in mat_strategy(10)) {
        let text = srda_linalg::io::write_csv(&a, ',');
        let back = srda_linalg::io::read_csv(&text, ',').unwrap();
        prop_assert!(a.approx_eq(&back, 0.0));
    }

    #[test]
    fn hcat_block_roundtrip(a in mat_strategy(8), b in mat_strategy(8)) {
        prop_assume!(a.nrows() == b.nrows());
        let h = a.hcat(&b).unwrap();
        let left = h.block(0, h.nrows(), 0, a.ncols());
        let right = h.block(0, h.nrows(), a.ncols(), h.ncols());
        prop_assert_eq!(left, a);
        prop_assert_eq!(right, b);
    }
}
