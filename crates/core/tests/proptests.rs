//! Property-based tests of the paper's invariants on randomized inputs.

use proptest::prelude::*;
use srda::{ClassIndex, Srda, SrdaConfig, SrdaSolver};
use srda_linalg::{vector, Mat};

/// Strategy: a random labeled dataset with every class non-empty.
fn dataset_strategy() -> impl Strategy<Value = (Mat, Vec<usize>)> {
    (2usize..5, 6usize..14, 2usize..8).prop_flat_map(|(c, m_extra, n)| {
        let m = c + m_extra; // at least one sample per class guaranteed below
        let data = proptest::collection::vec(-4.0f64..4.0, m * n);
        let labels = proptest::collection::vec(0..c, m);
        (data, labels, Just((m, n, c))).prop_map(|(d, mut l, (m, n, c))| {
            // force every class to appear
            for k in 0..c {
                l[k] = k;
            }
            (Mat::from_vec(m, n, d).unwrap(), l)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn responses_always_orthonormal_and_centered((_, y) in dataset_strategy()) {
        let index = ClassIndex::new(&y).unwrap();
        let r = srda::responses::generate(&index);
        prop_assert_eq!(r.ncols(), index.n_classes() - 1);
        for i in 0..r.ncols() {
            // unit norm, zero mean
            prop_assert!((vector::norm2(&r.col(i)) - 1.0).abs() < 1e-10);
            prop_assert!(vector::sum(&r.col(i)).abs() < 1e-10);
            for j in (i + 1)..r.ncols() {
                prop_assert!(vector::dot(&r.col(i), &r.col(j)).abs() < 1e-10);
            }
        }
        // constant within class
        for j in 0..r.ncols() {
            let col = r.col(j);
            for k in 0..index.n_classes() {
                let mem = index.members(k);
                for &i in mem {
                    prop_assert!((col[i] - col[mem[0]]).abs() < 1e-10);
                }
            }
        }
    }

    #[test]
    fn srda_is_invariant_to_sample_order((x, y) in dataset_strategy()) {
        let model1 = Srda::new(SrdaConfig::default()).fit_dense(&x, &y).unwrap();
        // reverse the samples
        let idx: Vec<usize> = (0..x.nrows()).rev().collect();
        let xr = x.select_rows(&idx);
        let yr: Vec<usize> = idx.iter().map(|&i| y[i]).collect();
        let model2 = Srda::new(SrdaConfig::default()).fit_dense(&xr, &yr).unwrap();
        // responses may flip sign/order under permutation, but the spanned
        // discriminant subspace is permutation-invariant: compare spans
        let w1 = model1.embedding().weights();
        let w2 = model2.embedding().weights();
        prop_assume!(w1.ncols() == w2.ncols());
        let cols: Vec<Vec<f64>> = (0..w2.ncols()).map(|j| w2.col(j)).collect();
        let basis = srda_linalg::gram_schmidt::orthonormalize(&cols, 1e-10);
        prop_assume!(basis.len() == w2.ncols());
        for j in 0..w1.ncols() {
            let mut a = w1.col(j);
            let norm = vector::normalize(&mut a);
            prop_assume!(norm > 1e-10);
            let proj: f64 = basis.iter().map(|b| vector::dot(b, &a).powi(2)).sum();
            prop_assert!(proj > 1.0 - 1e-6, "direction {} leaves the span: {}", j, proj);
        }
    }

    #[test]
    fn lsqr_converges_to_normal_equations((x, y) in dataset_strategy()) {
        let ne = Srda::new(SrdaConfig::default()).fit_dense(&x, &y).unwrap();
        let it = Srda::new(SrdaConfig {
            solver: SrdaSolver::Lsqr { max_iter: 600, tol: 0.0 },
            ..SrdaConfig::default()
        })
        .fit_dense(&x, &y)
        .unwrap();
        let w1 = ne.embedding().weights();
        let w2 = it.embedding().weights();
        prop_assert!(
            w1.approx_eq(w2, 1e-5 * w1.max_abs().max(1.0)),
            "max diff {}", w1.sub(w2).unwrap().max_abs()
        );
    }

    #[test]
    fn sparse_and_dense_fits_agree((x, y) in dataset_strategy()) {
        let xs = srda_sparse::CsrMatrix::from_dense(&x, 0.0);
        let md = Srda::new(SrdaConfig::default()).fit_dense(&x, &y).unwrap();
        let ms = Srda::new(SrdaConfig::default()).fit_sparse(&xs, &y).unwrap();
        let wd = md.embedding().weights();
        let ws = ms.embedding().weights();
        prop_assert!(
            wd.approx_eq(ws, 1e-6 * wd.max_abs().max(1.0)),
            "max diff {}", wd.sub(ws).unwrap().max_abs()
        );
    }

    #[test]
    fn embedding_dimension_is_c_minus_1((x, y) in dataset_strategy()) {
        let c = y.iter().max().unwrap() + 1;
        let model = Srda::new(SrdaConfig::default()).fit_dense(&x, &y).unwrap();
        prop_assert_eq!(model.embedding().n_components(), c - 1);
        prop_assert_eq!(model.embedding().n_features(), x.ncols());
        prop_assert!(model.embedding().weights().is_finite());
    }

    #[test]
    fn transform_is_affine((x, y) in dataset_strategy(), s in 0.5f64..2.0) {
        // f(a·u + (1−a)·v) = a·f(u) + (1−a)·f(v) for affine f
        let model = Srda::new(SrdaConfig::default()).fit_dense(&x, &y).unwrap();
        let emb = model.embedding();
        let u = x.row(0);
        let v = x.row(1);
        let a = s / 2.0;
        let mix: Vec<f64> = u.iter().zip(v).map(|(p, q)| a * p + (1.0 - a) * q).collect();
        let fu = emb.transform_row(u).unwrap();
        let fv = emb.transform_row(v).unwrap();
        let fmix = emb.transform_row(&mix).unwrap();
        for i in 0..fu.len() {
            let expect = a * fu[i] + (1.0 - a) * fv[i];
            prop_assert!((fmix[i] - expect).abs() < 1e-8 * expect.abs().max(1.0));
        }
    }

    #[test]
    fn heavier_regularization_never_grows_weights((x, y) in dataset_strategy()) {
        let norm = |alpha: f64| {
            Srda::new(SrdaConfig { alpha, ..SrdaConfig::default() })
                .fit_dense(&x, &y)
                .unwrap()
                .embedding()
                .weights()
                .frobenius_norm()
        };
        let n1 = norm(0.1);
        let n2 = norm(10.0);
        prop_assert!(n2 <= n1 + 1e-9, "{n2} > {n1}");
    }

    #[test]
    fn kernel_linear_gram_equals_xxt((x, _) in dataset_strategy()) {
        let k = srda::Kernel::Linear.gram(&x);
        let xxt = srda_linalg::ops::gram_t(&x);
        prop_assert!(k.approx_eq(&xxt, 1e-9));
    }

    #[test]
    fn class_graph_rows_sum_to_one((_, y) in dataset_strategy()) {
        let g = srda::AffinityGraph::supervised(&y);
        for d in g.degrees() {
            prop_assert!((d - 1.0).abs() < 1e-12);
        }
    }
}
