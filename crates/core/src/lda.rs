//! Classical LDA, solved exactly as the paper's §II-A prescribes.
//!
//! The generalized eigenproblem `S_b a = λ S_t a` is reduced through the
//! thin SVD of the centered data `X̄ = U Σ Vᵀ` (computed by the
//! cross-product method — "the most efficient SVD decomposition algorithm"
//! in the paper's words — which also resolves the singularity of `S_t` when
//! `n > m`). In the SVD basis the problem becomes an eigenproblem of
//! `H Hᵀ` where `H` is the tiny `r × c` matrix of (scaled) class sums of
//! singular-vector rows (Eqn 11); its eigenvectors are recovered from the
//! `c × c` problem `HᵀH`, and mapped back through `U Σ⁻¹`.
//!
//! Cost: `O(mnt + t³)` flam and `O(mn + mt + nt)` memory with
//! `t = min(m, n)` — the Table I row that SRDA beats.

use crate::labels::ClassIndex;
use crate::model::Embedding;
use crate::{Result, SrdaError};
use srda_linalg::ops::{matmul, matmul_exec, matvec_t_exec, scale_rows};
use srda_linalg::stats::centered;
use srda_linalg::svd::Svd;
use srda_linalg::{ExecPolicy, Executor, Mat, SymmetricEigen};
use srda_obs::Recorder;

/// Which SVD engine factors the centered data matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SvdMethod {
    /// Eigendecompose the smaller Gram matrix (the paper's choice —
    /// fastest, accuracy limited to ~√ε on relative singular values).
    #[default]
    CrossProduct,
    /// Golub–Reinsch bidiagonalization + QR (the production default in
    /// LAPACK-lineage libraries; ~ε·σ₁ accuracy).
    GolubReinsch,
    /// One-sided Jacobi (slowest, best relative accuracy on tiny values).
    Jacobi,
}

impl SvdMethod {
    /// Run the selected factorization.
    pub fn factor(self, a: &Mat, tol: f64) -> srda_linalg::Result<Svd> {
        match self {
            SvdMethod::CrossProduct => Svd::cross_product(a, tol),
            SvdMethod::GolubReinsch => Svd::golub_reinsch(a, tol),
            SvdMethod::Jacobi => Svd::jacobi(a, tol),
        }
    }
}

/// Configuration for classical [`Lda`].
#[derive(Debug, Clone)]
pub struct LdaConfig {
    /// Relative tolerance for discarding small singular values of the
    /// centered data (the SVD preprocessing that guarantees a stable
    /// solution).
    pub rank_tol: f64,
    /// SVD engine for the centered data (paper: cross-product).
    pub svd_method: SvdMethod,
    /// Relative tolerance for discarding near-zero eigenvalues of the
    /// reduced between-class problem (caps components at `c − 1`).
    pub eig_tol: f64,
    /// Optional memory budget in bytes; centering densifies the data, so
    /// on large sparse corpora this guard trips exactly where the paper's
    /// Tables IX/X report LDA "can not be applied".
    pub memory_budget_bytes: Option<usize>,
    /// Execution backend for the dense back-projection products
    /// (defaults to [`ExecPolicy::from_env`]).
    pub exec: ExecPolicy,
    /// Optional run governor, probed at the stage boundaries of the fit
    /// (before the SVD and before the back-projection). LDA's stages are
    /// not resumable, so an interrupt surfaces as
    /// [`SrdaError::Interrupted`] with no checkpoint.
    pub governor: Option<srda_solvers::RunGovernor>,
    /// Observability sink (spans + kernel-dispatch counters); defaults to
    /// [`Recorder::from_env`], so `SRDA_TRACE=1` instruments the fit.
    pub recorder: Recorder,
}

impl Default for LdaConfig {
    fn default() -> Self {
        LdaConfig {
            rank_tol: 1e-10,
            svd_method: SvdMethod::default(),
            eig_tol: 1e-9,
            memory_budget_bytes: None,
            exec: ExecPolicy::from_env(),
            governor: None,
            recorder: Recorder::from_env(),
        }
    }
}

/// Classical Linear Discriminant Analysis (SVD-stabilized).
#[derive(Debug, Clone, Default)]
pub struct Lda {
    config: LdaConfig,
}

impl Lda {
    /// Create an estimator with the given configuration.
    pub fn new(config: LdaConfig) -> Self {
        Lda { config }
    }

    /// Fit on dense data (samples as rows). Returns the embedding onto the
    /// discriminant directions (at most `c − 1` components).
    pub fn fit_dense(&self, x: &Mat, y: &[usize]) -> Result<Embedding> {
        let _fit_span = srda_obs::span!(self.config.recorder, "fit");
        if x.nrows() != y.len() {
            return Err(SrdaError::ShapeMismatch {
                op: "lda fit_dense",
                expected: x.nrows(),
                got: y.len(),
            });
        }
        let index = ClassIndex::new(y)?;
        let (m, n) = x.shape();

        // LDA's working set: the centered copy plus the smaller singular
        // factor — the `mn + mt + nt` of Table I. Budget-check the
        // dominant term.
        if let Some(budget) = self.config.memory_budget_bytes {
            let t = m.min(n);
            let needed = (m * n + m * t + n * t) * 8;
            if needed > budget {
                return Err(SrdaError::MemoryBudgetExceeded {
                    needed_bytes: needed,
                    budget_bytes: budget,
                    context: "LDA centered data + singular factors",
                });
            }
        }

        // Step 1 (§II-B): thin SVD of the centered data via cross-product.
        crate::error::check_governor(self.config.governor.as_ref())?;
        let (xc, mu) = centered(x);
        let svd = self.config.svd_method.factor(&xc, self.config.rank_tol)?;
        let r = svd.rank();
        if r == 0 {
            // all samples identical: no discriminant directions exist
            return Embedding::new(Mat::zeros(n, 0), vec![]);
        }

        // Step 2: the reduced between-class eigenproblem. H is r × c with
        // column k = (1/√m_k) Σ_{i ∈ class k} (row i of U).
        let h = class_sum_matrix(&svd.u, &index);

        // eig of HᵀH (c × c), recover eigenvectors of HHᵀ
        let (b, _lambdas) = recover_left_eigvecs(&h, self.config.eig_tol)?;

        // Step 3: map back, A = V Σ⁻¹ B (n × q).
        crate::error::check_governor(self.config.governor.as_ref())?;
        let exec = Executor::with_recorder(self.config.exec, self.config.recorder);
        let mut sb = b;
        let inv_s: Vec<f64> = svd.s.iter().map(|v| 1.0 / v).collect();
        scale_rows(&mut sb, &inv_s);
        let weights = matmul_exec(&svd.v, &sb, &exec)?;

        // center at transform time: f(x) = Wᵀ(x − μ)
        let bias: Vec<f64> = {
            let wmu = matvec_t_exec(&weights, &mu, &exec)?;
            wmu.iter().map(|v| -v).collect()
        };
        Embedding::new(weights, bias)
    }
}

/// `H` (Eqn 11): `r × c`, column `k` is the scaled class sum
/// `(1/√m_k) Σ_{i∈k} uᵢ` of rows of the left singular factor.
pub(crate) fn class_sum_matrix(u: &Mat, index: &ClassIndex) -> Mat {
    let r = u.ncols();
    let c = index.n_classes();
    let mut h = Mat::zeros(r, c);
    for k in 0..c {
        let scale = 1.0 / (index.counts()[k] as f64).sqrt();
        for &i in index.members(k) {
            let row = u.row(i);
            for (j, &v) in row.iter().enumerate() {
                h[(j, k)] += v * scale;
            }
        }
    }
    h
}

/// Given `H` (`r × c`), eigendecompose `HᵀH` (cheap) and recover the
/// eigenvectors of `HHᵀ` for eigenvalues above `tol · λ_max`:
/// `B = H P Λ^{-1/2}`. Returns `(B, λ)` with columns/entries sorted by
/// descending eigenvalue. This is the cross-product recovery trick the
/// paper describes right after Eqn 11.
pub(crate) fn recover_left_eigvecs(h: &Mat, tol: f64) -> Result<(Mat, Vec<f64>)> {
    let g = srda_linalg::ops::gram(h); // HᵀH, c × c
    let eig = SymmetricEigen::factor(&g)?;
    let lmax = eig.values.first().copied().unwrap_or(0.0).max(0.0);
    let keep: Vec<usize> = eig
        .values
        .iter()
        .enumerate()
        .filter(|(_, &l)| l > tol * lmax && l > 0.0)
        .map(|(i, _)| i)
        .collect();
    let p = eig.vectors.select_cols(&keep);
    let lambdas: Vec<f64> = keep.iter().map(|&i| eig.values[i]).collect();
    let mut b = matmul(h, &p)?;
    let inv_sqrt: Vec<f64> = lambdas.iter().map(|l| 1.0 / l.sqrt()).collect();
    srda_linalg::ops::scale_cols(&mut b, &inv_sqrt);
    Ok((b, lambdas))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs3(sep: f64) -> (Mat, Vec<usize>) {
        let centers = [[0.0, 0.0, 0.0], [sep, 0.0, sep], [0.0, sep, sep]];
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for (k, c) in centers.iter().enumerate() {
            for s in 0..8 {
                let noise = |d: usize| {
                    let x = ((k * 53 + s * 11 + d * 3) as f64 * 12.9898).sin() * 43758.5453;
                    (x - x.floor() - 0.5) * 0.4
                };
                rows.push((0..3).map(|d| c[d] + noise(d)).collect::<Vec<_>>());
                y.push(k);
            }
        }
        (Mat::from_rows(&rows).unwrap(), y)
    }

    #[test]
    fn produces_c_minus_1_components() {
        let (x, y) = blobs3(6.0);
        let emb = Lda::default().fit_dense(&x, &y).unwrap();
        assert_eq!(emb.n_components(), 2);
        assert_eq!(emb.n_features(), 3);
    }

    #[test]
    fn separates_classes() {
        let (x, y) = blobs3(8.0);
        let emb = Lda::default().fit_dense(&x, &y).unwrap();
        let z = emb.transform_dense(&x).unwrap();
        let (cent, _) = srda_linalg::stats::class_means(&z, &y, 3).unwrap();
        let mut min_between = f64::INFINITY;
        for a in 0..3 {
            for b in (a + 1)..3 {
                min_between =
                    min_between.min(srda_linalg::vector::dist2_sq(cent.row(a), cent.row(b)).sqrt());
            }
        }
        let mut max_within = 0.0f64;
        for (i, &k) in y.iter().enumerate() {
            max_within =
                max_within.max(srda_linalg::vector::dist2_sq(z.row(i), cent.row(k)).sqrt());
        }
        assert!(
            min_between > 2.0 * max_within,
            "between {min_between} within {max_within}"
        );
    }

    #[test]
    fn generalized_eigen_equation_holds() {
        // verify S_b a = λ S_t a for the returned directions
        let (x, y) = blobs3(5.0);
        let emb = Lda::default().fit_dense(&x, &y).unwrap();
        let (xc, _) = centered(&x);
        let st = srda_linalg::ops::gram(&xc);
        // S_b from class centroids
        let index = ClassIndex::new(&y).unwrap();
        let (cent, counts) = srda_linalg::stats::class_means(&x, &y, 3).unwrap();
        let mu = srda_linalg::stats::col_means(&x);
        let mut sb = Mat::zeros(3, 3);
        for k in 0..3 {
            let mut d = cent.row(k).to_vec();
            for (di, &mi) in d.iter_mut().zip(&mu) {
                *di -= mi;
            }
            for i in 0..3 {
                for j in 0..3 {
                    sb[(i, j)] += counts[k] as f64 * d[i] * d[j];
                }
            }
        }
        let _ = index;
        for q in 0..emb.n_components() {
            let a = emb.weights().col(q);
            let sba = srda_linalg::ops::matvec(&sb, &a).unwrap();
            let sta = srda_linalg::ops::matvec(&st, &a).unwrap();
            // λ = aᵀS_b a / aᵀS_t a
            let lambda = srda_linalg::vector::dot(&a, &sba) / srda_linalg::vector::dot(&a, &sta);
            for i in 0..3 {
                assert!(
                    (sba[i] - lambda * sta[i]).abs() < 1e-6 * sba[i].abs().max(1.0),
                    "component {q}: S_b a ≠ λ S_t a at {i}"
                );
            }
        }
    }

    #[test]
    fn training_bias_centers_embedding() {
        let (x, y) = blobs3(5.0);
        let emb = Lda::default().fit_dense(&x, &y).unwrap();
        let z = emb.transform_dense(&x).unwrap();
        // centered training data must embed with zero mean
        let zmu = srda_linalg::stats::col_means(&z);
        for v in zmu {
            assert!(v.abs() < 1e-8);
        }
    }

    #[test]
    fn degenerate_all_identical_samples() {
        let x = Mat::filled(6, 4, 2.5);
        let y = vec![0, 0, 0, 1, 1, 1];
        let emb = Lda::default().fit_dense(&x, &y).unwrap();
        assert_eq!(emb.n_components(), 0);
    }

    #[test]
    fn n_larger_than_m_singular_case() {
        // 6 samples in 50-D: S_t singular; SVD route must still work
        let x = Mat::from_fn(6, 50, |i, j| {
            let base = if i < 3 { 0.0 } else { 4.0 };
            let h = ((i * 7 + j * 3) as f64 * 78.233).sin() * 43758.5453;
            base + (h - h.floor() - 0.5)
        });
        let y = vec![0, 0, 0, 1, 1, 1];
        let emb = Lda::default().fit_dense(&x, &y).unwrap();
        assert_eq!(emb.n_components(), 1);
        let z = emb.transform_dense(&x).unwrap();
        // classes fully separated on the training set (guaranteed when
        // samples are linearly independent)
        let max0 = (0..3).map(|i| z[(i, 0)]).fold(f64::MIN, f64::max);
        let min1 = (3..6).map(|i| z[(i, 0)]).fold(f64::MAX, f64::min);
        let gap = (min1 - max0).abs();
        assert!(gap > 0.0);
    }

    #[test]
    fn svd_methods_give_same_discriminant_subspace() {
        let (x, y) = blobs3(5.0);
        let fit = |method: SvdMethod| {
            Lda::new(LdaConfig {
                svd_method: method,
                ..LdaConfig::default()
            })
            .fit_dense(&x, &y)
            .unwrap()
        };
        let base = fit(SvdMethod::CrossProduct);
        for method in [SvdMethod::GolubReinsch, SvdMethod::Jacobi] {
            let other = fit(method);
            assert_eq!(base.n_components(), other.n_components());
            let cols: Vec<Vec<f64>> = (0..other.n_components())
                .map(|j| other.weights().col(j))
                .collect();
            let basis = srda_linalg::gram_schmidt::orthonormalize(&cols, 1e-10);
            for j in 0..base.n_components() {
                let mut a = base.weights().col(j);
                srda_linalg::vector::normalize(&mut a);
                let proj: f64 = basis
                    .iter()
                    .map(|b| srda_linalg::vector::dot(b, &a).powi(2))
                    .sum();
                assert!(proj > 1.0 - 1e-6, "{method:?} direction {j}: {proj}");
            }
        }
    }

    #[test]
    fn memory_budget_guard() {
        let (x, y) = blobs3(5.0);
        let cfg = LdaConfig {
            memory_budget_bytes: Some(64),
            ..LdaConfig::default()
        };
        assert!(matches!(
            Lda::new(cfg).fit_dense(&x, &y),
            Err(SrdaError::MemoryBudgetExceeded { .. })
        ));
    }

    #[test]
    fn label_mismatch_rejected() {
        let (x, _) = blobs3(5.0);
        assert!(Lda::default().fit_dense(&x, &[0, 1]).is_err());
    }
}
