//! The common output of every discriminant algorithm: a linear embedding.

use crate::{Result, SrdaError};
use srda_linalg::Mat;
use srda_sparse::CsrMatrix;

/// An affine embedding `x ↦ Wᵀx + b` into the discriminant subspace.
///
/// `W` is `n_features × n_components` (the paper's transformation matrix
/// `A = [a₁, …]`); `b` is the per-component intercept. For SRDA the
/// intercept comes from the bias-absorption trick (§III.B); for the
/// eigen-based methods it is `−Wᵀμ` so that the embedding is centered the
/// same way the training data was.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Embedding {
    weights: Mat,
    bias: Vec<f64>,
}

impl Embedding {
    /// Build from a weight matrix (`n_features × n_components`) and a bias
    /// of length `n_components`.
    pub fn new(weights: Mat, bias: Vec<f64>) -> Result<Self> {
        if weights.ncols() != bias.len() {
            return Err(SrdaError::ShapeMismatch {
                op: "Embedding::new",
                expected: weights.ncols(),
                got: bias.len(),
            });
        }
        Ok(Embedding { weights, bias })
    }

    /// The weight matrix `W` (`n_features × n_components`).
    pub fn weights(&self) -> &Mat {
        &self.weights
    }

    /// The intercept vector `b`.
    pub fn bias(&self) -> &[f64] {
        &self.bias
    }

    /// Input dimensionality `n_features`.
    pub fn n_features(&self) -> usize {
        self.weights.nrows()
    }

    /// Output dimensionality (at most `c − 1`).
    pub fn n_components(&self) -> usize {
        self.weights.ncols()
    }

    /// Embed one sample. Rejects NaN/±Inf inputs with
    /// [`SrdaError::NonFiniteInput`] — an affine map can only turn them
    /// into garbage outputs.
    pub fn transform_row(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.n_features() {
            return Err(SrdaError::ShapeMismatch {
                op: "transform_row",
                expected: self.n_features(),
                got: x.len(),
            });
        }
        if !x.iter().all(|v| v.is_finite()) {
            return Err(SrdaError::NonFiniteInput {
                op: "transform_row",
                row: 0,
            });
        }
        let mut z = srda_linalg::ops::matvec_t(&self.weights, x)?;
        for (zi, bi) in z.iter_mut().zip(&self.bias) {
            *zi += bi;
        }
        Ok(z)
    }

    /// Embed a dense batch (samples as rows) → `m × n_components`.
    /// Rejects batches containing NaN/±Inf rows with
    /// [`SrdaError::NonFiniteInput`] naming the first offending row.
    pub fn transform_dense(&self, x: &Mat) -> Result<Mat> {
        if x.ncols() != self.n_features() {
            return Err(SrdaError::ShapeMismatch {
                op: "transform_dense",
                expected: self.n_features(),
                got: x.ncols(),
            });
        }
        for i in 0..x.nrows() {
            if !x.row(i).iter().all(|v| v.is_finite()) {
                return Err(SrdaError::NonFiniteInput {
                    op: "transform_dense",
                    row: i,
                });
            }
        }
        let mut z = srda_linalg::ops::matmul(x, &self.weights)?;
        for i in 0..z.nrows() {
            for (zij, bj) in z.row_mut(i).iter_mut().zip(&self.bias) {
                *zij += bj;
            }
        }
        Ok(z)
    }

    /// Embed a sparse batch without densifying the input —
    /// `O(nnz · n_components)`. Rejects batches containing NaN/±Inf
    /// entries with [`SrdaError::NonFiniteInput`] naming the first
    /// offending row.
    pub fn transform_sparse(&self, x: &CsrMatrix) -> Result<Mat> {
        if x.ncols() != self.n_features() {
            return Err(SrdaError::ShapeMismatch {
                op: "transform_sparse",
                expected: self.n_features(),
                got: x.ncols(),
            });
        }
        for i in 0..x.nrows() {
            if x.row_entries(i).any(|(_, v)| !v.is_finite()) {
                return Err(SrdaError::NonFiniteInput {
                    op: "transform_sparse",
                    row: i,
                });
            }
        }
        let mut z = x.matmul_dense(&self.weights)?;
        for i in 0..z.nrows() {
            for (zij, bj) in z.row_mut(i).iter_mut().zip(&self.bias) {
                *zij += bj;
            }
        }
        Ok(z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple() -> Embedding {
        // W = [[1, 0], [0, 2]], b = [10, 20]
        let w = Mat::from_rows(&[vec![1.0, 0.0], vec![0.0, 2.0]]).unwrap();
        Embedding::new(w, vec![10.0, 20.0]).unwrap()
    }

    #[test]
    fn dimensions() {
        let e = simple();
        assert_eq!(e.n_features(), 2);
        assert_eq!(e.n_components(), 2);
    }

    #[test]
    fn bias_length_checked() {
        let w = Mat::zeros(3, 2);
        assert!(Embedding::new(w, vec![0.0; 3]).is_err());
    }

    #[test]
    fn transform_row_affine() {
        let e = simple();
        let z = e.transform_row(&[3.0, 4.0]).unwrap();
        assert_eq!(z, vec![13.0, 28.0]);
        assert!(e.transform_row(&[1.0]).is_err());
    }

    #[test]
    fn dense_batch_matches_rowwise() {
        let e = simple();
        let x = Mat::from_rows(&[vec![1.0, 1.0], vec![-2.0, 0.5]]).unwrap();
        let z = e.transform_dense(&x).unwrap();
        for i in 0..2 {
            let zi = e.transform_row(x.row(i)).unwrap();
            assert_eq!(z.row(i), zi.as_slice());
        }
        assert!(e.transform_dense(&Mat::zeros(2, 3)).is_err());
    }

    #[test]
    fn sparse_matches_dense() {
        let e = simple();
        let xd = Mat::from_rows(&[vec![1.0, 0.0], vec![0.0, 3.0], vec![0.0, 0.0]]).unwrap();
        let xs = CsrMatrix::from_dense(&xd, 0.0);
        let zd = e.transform_dense(&xd).unwrap();
        let zs = e.transform_sparse(&xs).unwrap();
        assert!(zd.approx_eq(&zs, 1e-14));
        assert!(e.transform_sparse(&CsrMatrix::zeros(1, 5)).is_err());
    }

    #[test]
    fn non_finite_inputs_rejected_with_typed_error() {
        let e = simple();
        assert!(matches!(
            e.transform_row(&[f64::NAN, 1.0]),
            Err(SrdaError::NonFiniteInput {
                op: "transform_row",
                ..
            })
        ));
        let xd =
            Mat::from_rows(&[vec![1.0, 2.0], vec![3.0, f64::INFINITY], vec![0.0, 0.0]]).unwrap();
        assert!(matches!(
            e.transform_dense(&xd),
            Err(SrdaError::NonFiniteInput {
                op: "transform_dense",
                row: 1,
            })
        ));
        let mut dense = Mat::zeros(2, 2);
        dense[(1, 1)] = f64::NEG_INFINITY;
        let xs = CsrMatrix::from_dense(&dense, 0.0);
        assert!(matches!(
            e.transform_sparse(&xs),
            Err(SrdaError::NonFiniteInput {
                op: "transform_sparse",
                row: 1,
            })
        ));
    }

    #[cfg(feature = "serde")]
    #[test]
    fn serde_roundtrip() {
        let e = simple();
        let json = serde_json::to_string(&e).unwrap();
        let back: Embedding = serde_json::from_str(&json).unwrap();
        assert_eq!(e, back);
    }
}
