//! What happened during a fit — the robustness ledger.
//!
//! Every `Srda::fit_*` entry point records how each of the `c − 1`
//! response problems was actually solved, every recovery action the
//! fallback chain took (see `srda_solvers::robust`), and any warnings
//! raised along the way. The report travels with the returned
//! [`crate::SrdaModel`] (via `SrdaModel::fit_report`), so a fit that
//! silently degraded — jittered ridge, LSQR fallback, stagnated
//! iterations — is always distinguishable from a clean one.

pub use srda_solvers::robust::RecoveryAction;
use srda_solvers::robust::{RobustSolveReport, SolverUsed};
use srda_solvers::StopReason;

/// How one response (one column of `Ȳ`) was solved.
#[derive(Debug, Clone, PartialEq)]
pub enum ResponseSolver {
    /// Direct normal-equations solve, no recovery.
    Direct,
    /// Direct solve that needed `jitter` extra diagonal loading.
    DirectJittered {
        /// Extra diagonal loading added on top of the configured `α`.
        jitter: f64,
    },
    /// Damped LSQR engaged as a *fallback* after the direct solves
    /// failed.
    LsqrFallback,
    /// Damped LSQR as the *configured* solver.
    Lsqr {
        /// Iterations this response consumed.
        iterations: usize,
        /// Why the solve stopped.
        stop: StopReason,
    },
}

/// Diagnostics from one `Srda::fit_*` call.
#[derive(Debug, Clone, Default)]
pub struct FitReport {
    /// Human-readable descriptions of every breakdown, recovery, and
    /// anomaly. Empty for a clean fit.
    pub warnings: Vec<String>,
    /// Recovery actions the fallback chain took, in order. Empty for a
    /// clean fit.
    pub recoveries: Vec<RecoveryAction>,
    /// How each response problem was solved (length `c − 1`). For
    /// direct solves the factorization is shared, so all entries match.
    pub responses: Vec<ResponseSolver>,
    /// Condition-number estimate of the factored Gram matrix (squared
    /// ratio of extreme Cholesky diagonal entries); `None` when no
    /// factorization succeeded (pure LSQR fits and fallbacks).
    pub condition_estimate: Option<f64>,
}

impl FitReport {
    /// `true` when the fit needed no recovery and raised no warnings.
    pub fn clean(&self) -> bool {
        self.warnings.is_empty() && self.recoveries.is_empty()
    }

    /// Build a report from a [`RobustSolveReport`], fanning the single
    /// shared-factorization outcome out to all `k` responses.
    pub(crate) fn from_robust(rep: &RobustSolveReport, k: usize) -> FitReport {
        let per_response = match rep.solver {
            SolverUsed::Direct => ResponseSolver::Direct,
            SolverUsed::DirectJittered { jitter } => ResponseSolver::DirectJittered { jitter },
            SolverUsed::LsqrFallback => ResponseSolver::LsqrFallback,
        };
        FitReport {
            warnings: rep.warnings.clone(),
            recoveries: rep.actions.clone(),
            responses: vec![per_response; k],
            condition_estimate: rep.condition_estimate,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_report_is_clean() {
        let r = FitReport::default();
        assert!(r.clean());
        assert!(r.responses.is_empty());
        assert!(r.condition_estimate.is_none());
    }

    #[test]
    fn from_robust_fans_out_to_all_responses() {
        let rep = RobustSolveReport {
            solver: SolverUsed::DirectJittered { jitter: 0.5 },
            actions: vec![RecoveryAction::JitterRetry { jitter: 0.5 }],
            warnings: vec!["direct solve failed".into()],
            condition_estimate: Some(42.0),
            form: None,
        };
        let r = FitReport::from_robust(&rep, 3);
        assert!(!r.clean());
        assert_eq!(r.responses.len(), 3);
        assert!(r
            .responses
            .iter()
            .all(|s| *s == ResponseSolver::DirectJittered { jitter: 0.5 }));
        assert_eq!(r.condition_estimate, Some(42.0));
    }
}
