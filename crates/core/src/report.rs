//! What happened during a fit — the robustness ledger.
//!
//! Every `Srda::fit_*` entry point records how each of the `c − 1`
//! response problems was actually solved, every recovery action the
//! fallback chain took (see `srda_solvers::robust`), and any warnings
//! raised along the way. The report travels with the returned
//! [`crate::SrdaModel`] (via `SrdaModel::fit_report`), so a fit that
//! silently degraded — jittered ridge, LSQR fallback, stagnated
//! iterations — is always distinguishable from a clean one.

pub use srda_solvers::robust::RecoveryAction;
use srda_solvers::robust::{RobustSolveReport, SolverUsed};
pub use srda_solvers::{CertStatus, SolveCertificate};
use srda_solvers::{Interrupt, StopReason};

/// How one response (one column of `Ȳ`) was solved.
#[derive(Debug, Clone, PartialEq)]
pub enum ResponseSolver {
    /// Direct normal-equations solve, no recovery.
    Direct,
    /// Direct solve that needed `jitter` extra diagonal loading.
    DirectJittered {
        /// Extra diagonal loading added on top of the configured `α`.
        jitter: f64,
    },
    /// Damped LSQR engaged as a *fallback* after the direct solves
    /// failed.
    LsqrFallback,
    /// Damped LSQR as the *configured* solver.
    Lsqr {
        /// Iterations this response consumed.
        iterations: usize,
        /// Why the solve stopped.
        stop: StopReason,
    },
}

/// Diagnostics from one `Srda::fit_*` call.
#[derive(Debug, Clone, Default)]
pub struct FitReport {
    /// Human-readable descriptions of every breakdown, recovery, and
    /// anomaly. Empty for a clean fit.
    pub warnings: Vec<String>,
    /// Recovery actions the fallback chain took, in order. Empty for a
    /// clean fit.
    pub recoveries: Vec<RecoveryAction>,
    /// How each response problem was solved (length `c − 1`). For
    /// direct solves the factorization is shared, so all entries match.
    pub responses: Vec<ResponseSolver>,
    /// Condition-number estimate of the factored Gram matrix (squared
    /// ratio of extreme Cholesky diagonal entries); `None` when no
    /// factorization succeeded (pure LSQR fits and fallbacks).
    pub condition_estimate: Option<f64>,
    /// Set when the fit's `RunGovernor` stopped the run early — the
    /// report then describes the *partial* fit (see
    /// `Srda::fit_*_outcome`). `None` for a run-to-completion fit.
    pub interrupt: Option<Interrupt>,
    /// What the input-sanitization pass quarantined before the fit saw
    /// the data, when one ran (see `srda-data`'s `sanitize` module; the
    /// CLI `train` pipeline fills this in). `None` when no sanitization
    /// ran.
    pub quarantine: Option<QuarantineSummary>,
    /// Per-response solution certificates (one per solved response, in
    /// response order) — backward error, condition estimate, refinement
    /// steps, and the certification verdict. Empty when the fit path
    /// predates certification or solved nothing.
    pub certificates: Vec<SolveCertificate>,
    /// Largest backward error across [`FitReport::certificates`];
    /// `None` when no certificates were recorded.
    pub worst_backward_error: Option<f64>,
}

/// Counts of what a pre-fit sanitization pass removed or repaired. The
/// full row/column lists live in `srda-data`'s `SanitizeReport`; this is
/// the summary that travels with the fitted model.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QuarantineSummary {
    /// Rows dropped for containing NaN/±Inf cells.
    pub non_finite_rows: usize,
    /// NaN/±Inf cells overwritten with 0 (impute policy).
    pub imputed_cells: usize,
    /// Exact-duplicate rows dropped (first occurrence kept).
    pub duplicate_rows: usize,
    /// Rows dropped because their class fell below the size floor.
    pub small_class_rows: usize,
    /// Classes removed entirely (empty or below the size floor).
    pub dropped_classes: usize,
    /// Constant (zero-variance) feature columns dropped.
    pub constant_features: usize,
}

impl QuarantineSummary {
    /// `true` when sanitization ran but found nothing to quarantine.
    pub fn is_noop(&self) -> bool {
        self.non_finite_rows == 0
            && self.imputed_cells == 0
            && self.duplicate_rows == 0
            && self.small_class_rows == 0
            && self.dropped_classes == 0
            && self.constant_features == 0
    }
}

impl FitReport {
    /// `true` when the fit needed no recovery, raised no warnings, ran to
    /// completion, and (if sanitization ran) nothing was quarantined.
    pub fn clean(&self) -> bool {
        self.warnings.is_empty()
            && self.recoveries.is_empty()
            && self.interrupt.is_none()
            && self.quarantine.as_ref().map_or(true, |q| q.is_noop())
    }

    /// Build a report from a [`RobustSolveReport`], fanning the single
    /// shared-factorization outcome out to all `k` responses.
    pub(crate) fn from_robust(rep: &RobustSolveReport, k: usize) -> FitReport {
        let per_response = match rep.solver {
            SolverUsed::Direct => ResponseSolver::Direct,
            SolverUsed::DirectJittered { jitter } => ResponseSolver::DirectJittered { jitter },
            SolverUsed::LsqrFallback => ResponseSolver::LsqrFallback,
        };
        FitReport {
            warnings: rep.warnings.clone(),
            recoveries: rep.actions.clone(),
            responses: vec![per_response; k],
            condition_estimate: rep.condition_estimate,
            interrupt: None,
            quarantine: None,
            worst_backward_error: srda_solvers::worst_backward_error(&rep.certificates),
            certificates: rep.certificates.clone(),
        }
    }

    /// Recompute [`FitReport::worst_backward_error`] from the current
    /// certificate list. Call after appending certificates directly.
    pub(crate) fn refresh_certificate_summary(&mut self) {
        self.worst_backward_error = srda_solvers::worst_backward_error(&self.certificates);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_report_is_clean() {
        let r = FitReport::default();
        assert!(r.clean());
        assert!(r.responses.is_empty());
        assert!(r.condition_estimate.is_none());
        assert!(r.interrupt.is_none());
        assert!(r.quarantine.is_none());
    }

    #[test]
    fn interrupted_report_is_not_clean() {
        let r = FitReport {
            interrupt: Some(Interrupt::Cancelled),
            ..FitReport::default()
        };
        assert!(!r.clean());
    }

    #[test]
    fn quarantine_summary_affects_clean() {
        let noop = FitReport {
            quarantine: Some(QuarantineSummary::default()),
            ..FitReport::default()
        };
        assert!(noop.clean(), "a no-op sanitize pass must stay clean");
        let dirty = FitReport {
            quarantine: Some(QuarantineSummary {
                duplicate_rows: 3,
                ..QuarantineSummary::default()
            }),
            ..FitReport::default()
        };
        assert!(!dirty.clean());
    }

    #[test]
    fn from_robust_fans_out_to_all_responses() {
        let rep = RobustSolveReport {
            solver: SolverUsed::DirectJittered { jitter: 0.5 },
            actions: vec![RecoveryAction::JitterRetry { jitter: 0.5 }],
            warnings: vec!["direct solve failed".into()],
            condition_estimate: Some(42.0),
            form: None,
            certificates: Vec::new(),
        };
        let r = FitReport::from_robust(&rep, 3);
        assert!(!r.clean());
        assert_eq!(r.responses.len(), 3);
        assert!(r
            .responses
            .iter()
            .all(|s| *s == ResponseSolver::DirectJittered { jitter: 0.5 }));
        assert_eq!(r.condition_estimate, Some(42.0));
        assert!(r.certificates.is_empty());
        assert_eq!(r.worst_backward_error, None);
    }

    #[test]
    fn from_robust_carries_certificates_and_summary() {
        let cert = |e: f64| SolveCertificate {
            backward_error: e,
            cond_estimate: 10.0,
            refinement_steps: 0,
            certified: CertStatus::Certified,
        };
        let rep = RobustSolveReport {
            solver: SolverUsed::Direct,
            actions: vec![],
            warnings: vec![],
            condition_estimate: Some(10.0),
            form: None,
            certificates: vec![cert(1e-15), cert(3e-12)],
        };
        let r = FitReport::from_robust(&rep, 2);
        assert!(r.clean(), "certified certificates do not dirty a report");
        assert_eq!(r.certificates.len(), 2);
        assert_eq!(r.worst_backward_error, Some(3e-12));
    }
}
