//! Kernel SRDA — the kernelized variant of the paper's algorithm (the
//! authors' companion paper "Efficient Kernel Discriminant Analysis via
//! Spectral Regression", ICDM 2007, which the ICDE paper cites as \[14\]).
//!
//! The reduction is identical: the responses `ȳ` are still the closed-form
//! eigenvectors of the class graph; only the regression step changes to
//! **kernel ridge regression** — find coefficients `β` with
//!
//! ```text
//! (K + αI) β = ȳ
//! ```
//!
//! where `K` is the kernel Gram matrix of the training samples. The
//! projective function is `f(x) = Σᵢ βᵢ·κ(xᵢ, x)`, so the model must keep
//! the training data. One Cholesky factorization of `K + αI` (`m³/6` flam)
//! is shared by all `c − 1` responses, exactly mirroring the linear case.

use crate::labels::ClassIndex;
use crate::responses;
use crate::{Result, SrdaError};
use srda_linalg::{vector, Cholesky, ExecPolicy, Executor, Mat};
use srda_obs::Recorder;

/// Kernel functions κ(x, y).
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Kernel {
    /// `xᵀy` — recovers linear SRDA in function space.
    Linear,
    /// `exp(−γ·‖x − y‖²)`.
    Rbf {
        /// Width parameter `γ > 0`.
        gamma: f64,
    },
    /// `(xᵀy + coef0)^degree`.
    Polynomial {
        /// Polynomial degree (≥ 1).
        degree: u32,
        /// Additive constant.
        coef0: f64,
    },
}

impl Kernel {
    /// Evaluate κ(x, y).
    pub fn eval(&self, x: &[f64], y: &[f64]) -> f64 {
        match *self {
            Kernel::Linear => vector::dot(x, y),
            Kernel::Rbf { gamma } => (-gamma * vector::dist2_sq(x, y)).exp(),
            Kernel::Polynomial { degree, coef0 } => (vector::dot(x, y) + coef0).powi(degree as i32),
        }
    }

    /// Gram matrix of the rows of `a` (symmetric, `m × m`).
    pub fn gram(&self, a: &Mat) -> Mat {
        self.gram_exec(a, &Executor::serial())
    }

    /// [`Kernel::gram`] on an explicit execution backend: row blocks of
    /// the upper triangle are evaluated in parallel, then mirrored. Each
    /// entry is one independent κ evaluation, so every backend produces
    /// bit-identical matrices.
    pub fn gram_exec(&self, a: &Mat, exec: &Executor) -> Mat {
        let m = a.nrows();
        let mut k = Mat::zeros(m, m);
        let kernel = *self;
        exec.for_each_row_block(k.as_mut_slice(), m, |start, block| {
            for (local, krow) in block.chunks_mut(m).enumerate() {
                let i = start + local;
                for j in i..m {
                    krow[j] = kernel.eval(a.row(i), a.row(j));
                }
            }
        });
        mirror_upper(&mut k);
        k
    }

    /// Cross-Gram matrix between the rows of `a` and the rows of `b`
    /// (`a.nrows() × b.nrows()`).
    pub fn cross_gram(&self, a: &Mat, b: &Mat) -> Mat {
        self.cross_gram_exec(a, b, &Executor::serial())
    }

    /// [`Kernel::cross_gram`] on an explicit execution backend.
    pub fn cross_gram_exec(&self, a: &Mat, b: &Mat, exec: &Executor) -> Mat {
        let mut k = Mat::zeros(a.nrows(), b.nrows());
        let kernel = *self;
        let w = b.nrows();
        exec.for_each_row_block(k.as_mut_slice(), w, |start, block| {
            for (local, krow) in block.chunks_mut(w).enumerate() {
                let i = start + local;
                for (j, kij) in krow.iter_mut().enumerate() {
                    *kij = kernel.eval(a.row(i), b.row(j));
                }
            }
        });
        k
    }

    /// Gram matrix of sparse rows, `O(m²·s)` via sorted-index merges and
    /// the identity `‖x − y‖² = ‖x‖² + ‖y‖² − 2xᵀy` (so RBF needs only
    /// sparse dot products).
    pub fn gram_sparse(&self, a: &srda_sparse::CsrMatrix) -> Mat {
        self.gram_sparse_exec(a, &Executor::serial())
    }

    /// [`Kernel::gram_sparse`] on an explicit execution backend.
    pub fn gram_sparse_exec(&self, a: &srda_sparse::CsrMatrix, exec: &Executor) -> Mat {
        let m = a.nrows();
        let sq: Vec<f64> = (0..m)
            .map(|i| a.row_entries(i).map(|(_, v)| v * v).sum())
            .collect();
        let mut k = Mat::zeros(m, m);
        let kernel = *self;
        exec.for_each_row_block(k.as_mut_slice(), m, |start, block| {
            for (local, krow) in block.chunks_mut(m).enumerate() {
                let i = start + local;
                for j in i..m {
                    let dot = sparse_row_dot(a, i, a, j);
                    krow[j] = kernel.eval_from_dot(dot, sq[i], sq[j]);
                }
            }
        });
        mirror_upper(&mut k);
        k
    }

    /// Cross-Gram between sparse row sets (`a.nrows() × b.nrows()`).
    pub fn cross_gram_sparse(&self, a: &srda_sparse::CsrMatrix, b: &srda_sparse::CsrMatrix) -> Mat {
        self.cross_gram_sparse_exec(a, b, &Executor::serial())
    }

    /// [`Kernel::cross_gram_sparse`] on an explicit execution backend.
    pub fn cross_gram_sparse_exec(
        &self,
        a: &srda_sparse::CsrMatrix,
        b: &srda_sparse::CsrMatrix,
        exec: &Executor,
    ) -> Mat {
        let sq_a: Vec<f64> = (0..a.nrows())
            .map(|i| a.row_entries(i).map(|(_, v)| v * v).sum())
            .collect();
        let sq_b: Vec<f64> = (0..b.nrows())
            .map(|i| b.row_entries(i).map(|(_, v)| v * v).sum())
            .collect();
        let mut k = Mat::zeros(a.nrows(), b.nrows());
        let kernel = *self;
        let w = b.nrows();
        exec.for_each_row_block(k.as_mut_slice(), w, |start, block| {
            for (local, krow) in block.chunks_mut(w).enumerate() {
                let i = start + local;
                for (j, kij) in krow.iter_mut().enumerate() {
                    let dot = sparse_row_dot(a, i, b, j);
                    *kij = kernel.eval_from_dot(dot, sq_a[i], sq_b[j]);
                }
            }
        });
        k
    }

    /// Evaluate the kernel from a dot product and the two squared norms.
    fn eval_from_dot(&self, dot: f64, xx: f64, yy: f64) -> f64 {
        match *self {
            Kernel::Linear => dot,
            Kernel::Rbf { gamma } => (-gamma * (xx + yy - 2.0 * dot)).exp(),
            Kernel::Polynomial { degree, coef0 } => (dot + coef0).powi(degree as i32),
        }
    }
}

/// Copy the strict upper triangle into the lower half (in-place
/// symmetrization after a parallel upper-triangle build).
fn mirror_upper(k: &mut Mat) {
    let m = k.nrows();
    for i in 0..m {
        for j in (i + 1)..m {
            k[(j, i)] = k[(i, j)];
        }
    }
}

/// Dot product of sparse row `i` of `a` with sparse row `j` of `b`
/// (sorted-index merge).
fn sparse_row_dot(
    a: &srda_sparse::CsrMatrix,
    i: usize,
    b: &srda_sparse::CsrMatrix,
    j: usize,
) -> f64 {
    let mut ai = a.row_entries(i).peekable();
    let mut bj = b.row_entries(j).peekable();
    let mut acc = 0.0;
    while let (Some(&(ca, va)), Some(&(cb, vb))) = (ai.peek(), bj.peek()) {
        match ca.cmp(&cb) {
            std::cmp::Ordering::Less => {
                ai.next();
            }
            std::cmp::Ordering::Greater => {
                bj.next();
            }
            std::cmp::Ordering::Equal => {
                acc += va * vb;
                ai.next();
                bj.next();
            }
        }
    }
    acc
}

/// Configuration for [`KernelSrda`].
#[derive(Debug, Clone)]
pub struct KernelSrdaConfig {
    /// The kernel.
    pub kernel: Kernel,
    /// Ridge parameter `α > 0`.
    pub alpha: f64,
    /// Execution backend for the Gram builds at fit and transform time
    /// (defaults to [`ExecPolicy::from_env`], so `SRDA_THREADS=N` threads
    /// them; all backends are bitwise identical).
    pub exec: ExecPolicy,
    /// Optional run governor, probed before the `m × m` Gram build and
    /// before the Cholesky solve (the two expensive stages). Neither is
    /// resumable, so an interrupt surfaces as [`SrdaError::Interrupted`]
    /// with no checkpoint.
    pub governor: Option<srda_solvers::RunGovernor>,
    /// Observability sink (spans + kernel-dispatch counters); defaults to
    /// [`Recorder::from_env`], so `SRDA_TRACE=1` instruments the fit.
    pub recorder: Recorder,
}

impl Default for KernelSrdaConfig {
    fn default() -> Self {
        KernelSrdaConfig {
            kernel: Kernel::Rbf { gamma: 1.0 },
            alpha: 1.0,
            exec: ExecPolicy::from_env(),
            governor: None,
            recorder: Recorder::from_env(),
        }
    }
}

/// The Kernel SRDA estimator.
#[derive(Debug, Clone, Default)]
pub struct KernelSrda {
    config: KernelSrdaConfig,
}

/// The retained training data of a kernel model.
#[derive(Debug, Clone)]
enum TrainData {
    Dense(Mat),
    Sparse(srda_sparse::CsrMatrix),
}

/// A fitted Kernel SRDA model (keeps the training data — the price of the
/// kernel trick).
#[derive(Debug, Clone)]
pub struct KernelSrdaModel {
    kernel: Kernel,
    train_x: TrainData,
    /// Dual coefficients, `m × (c − 1)`.
    beta: Mat,
    n_classes: usize,
    /// Execution backend carried over from the fit config; used for the
    /// cross-Gram and projection products at transform time.
    exec: ExecPolicy,
}

impl KernelSrda {
    /// Create an estimator with the given configuration.
    pub fn new(config: KernelSrdaConfig) -> Self {
        KernelSrda { config }
    }

    /// Fit on dense data (samples as rows) with labels `y`.
    pub fn fit_dense(&self, x: &Mat, y: &[usize]) -> Result<KernelSrdaModel> {
        let _fit_span = srda_obs::span!(self.config.recorder, "fit");
        if x.nrows() != y.len() {
            return Err(SrdaError::ShapeMismatch {
                op: "kernel srda fit_dense",
                expected: x.nrows(),
                got: y.len(),
            });
        }
        crate::error::check_governor(self.config.governor.as_ref())?;
        let gram = self.config.kernel.gram_exec(
            x,
            &Executor::with_recorder(self.config.exec, self.config.recorder),
        );
        self.fit_from_gram(gram, y, TrainData::Dense(x.clone()))
    }

    /// Fit on sparse data; the Gram matrix is built from sparse dot
    /// products (the data is never densified, though the `m × m` kernel
    /// matrix itself is inherently dense).
    pub fn fit_sparse(&self, x: &srda_sparse::CsrMatrix, y: &[usize]) -> Result<KernelSrdaModel> {
        let _fit_span = srda_obs::span!(self.config.recorder, "fit");
        if x.nrows() != y.len() {
            return Err(SrdaError::ShapeMismatch {
                op: "kernel srda fit_sparse",
                expected: x.nrows(),
                got: y.len(),
            });
        }
        crate::error::check_governor(self.config.governor.as_ref())?;
        let gram = self.config.kernel.gram_sparse_exec(
            x,
            &Executor::with_recorder(self.config.exec, self.config.recorder),
        );
        self.fit_from_gram(gram, y, TrainData::Sparse(x.clone()))
    }

    fn fit_from_gram(
        &self,
        mut k: Mat,
        y: &[usize],
        train_x: TrainData,
    ) -> Result<KernelSrdaModel> {
        let index = ClassIndex::new(y)?;
        let ybar = responses::generate(&index);
        k.add_to_diag(self.config.alpha);
        crate::error::check_governor(self.config.governor.as_ref())?;
        let chol = Cholesky::factor(&k)?;
        let beta = chol.solve_mat(&ybar)?;
        Ok(KernelSrdaModel {
            kernel: self.config.kernel,
            train_x,
            beta,
            n_classes: index.n_classes(),
            exec: self.config.exec,
        })
    }
}

impl KernelSrdaModel {
    /// Number of classes seen at fit time.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Embedding dimension (`c − 1`).
    pub fn n_components(&self) -> usize {
        self.beta.ncols()
    }

    /// The dual coefficient matrix `β` (`m_train × (c − 1)`).
    pub fn beta(&self) -> &Mat {
        &self.beta
    }

    /// Feature dimension of the training data.
    pub fn n_features(&self) -> usize {
        match &self.train_x {
            TrainData::Dense(m) => m.ncols(),
            TrainData::Sparse(s) => s.ncols(),
        }
    }

    /// Embed a dense batch: `Z = K(X, X_train)·β`. Rejects NaN/±Inf rows
    /// with [`SrdaError::NonFiniteInput`].
    pub fn transform_dense(&self, x: &Mat) -> Result<Mat> {
        if x.ncols() != self.n_features() {
            return Err(SrdaError::ShapeMismatch {
                op: "kernel srda transform",
                expected: self.n_features(),
                got: x.ncols(),
            });
        }
        for i in 0..x.nrows() {
            if !x.row(i).iter().all(|v| v.is_finite()) {
                return Err(SrdaError::NonFiniteInput {
                    op: "kernel srda transform",
                    row: i,
                });
            }
        }
        let exec = Executor::new(self.exec);
        let k = match &self.train_x {
            TrainData::Dense(train) => self.kernel.cross_gram_exec(x, train, &exec),
            TrainData::Sparse(train) => {
                // sparsify the query; exact because from_dense keeps all
                // non-zeros
                let xs = srda_sparse::CsrMatrix::from_dense(x, 0.0);
                self.kernel.cross_gram_sparse_exec(&xs, train, &exec)
            }
        };
        Ok(srda_linalg::ops::matmul_exec(&k, &self.beta, &exec)?)
    }

    /// Embed a sparse batch. Rejects NaN/±Inf rows with
    /// [`SrdaError::NonFiniteInput`].
    pub fn transform_sparse(&self, x: &srda_sparse::CsrMatrix) -> Result<Mat> {
        if x.ncols() != self.n_features() {
            return Err(SrdaError::ShapeMismatch {
                op: "kernel srda transform_sparse",
                expected: self.n_features(),
                got: x.ncols(),
            });
        }
        for i in 0..x.nrows() {
            if x.row_entries(i).any(|(_, v)| !v.is_finite()) {
                return Err(SrdaError::NonFiniteInput {
                    op: "kernel srda transform_sparse",
                    row: i,
                });
            }
        }
        let exec = Executor::new(self.exec);
        let k = match &self.train_x {
            TrainData::Sparse(train) => self.kernel.cross_gram_sparse_exec(x, train, &exec),
            TrainData::Dense(train) => {
                let ts = srda_sparse::CsrMatrix::from_dense(train, 0.0);
                self.kernel.cross_gram_sparse_exec(x, &ts, &exec)
            }
        };
        Ok(srda_linalg::ops::matmul_exec(&k, &self.beta, &exec)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// XOR-style data: not linearly separable, trivially RBF-separable.
    fn xor_data() -> (Mat, Vec<usize>) {
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for (cx, cy, label) in [(0.0, 0.0, 0), (4.0, 4.0, 0), (0.0, 4.0, 1), (4.0, 0.0, 1)] {
            for s in 0..5 {
                let n1 = ((s * 13 + label * 7) as f64 * 0.71).sin() * 0.2;
                let n2 = ((s * 17 + label * 3) as f64 * 0.37).cos() * 0.2;
                rows.push(vec![cx + n1, cy + n2]);
                y.push(label);
            }
        }
        (Mat::from_rows(&rows).unwrap(), y)
    }

    fn within_between(z: &Mat, y: &[usize], c: usize) -> (f64, f64) {
        let (cent, _) = srda_linalg::stats::class_means(z, y, c).unwrap();
        let mut within = 0.0;
        for (i, &k) in y.iter().enumerate() {
            within += vector::dist2_sq(z.row(i), cent.row(k)).sqrt();
        }
        within /= y.len() as f64;
        let between = vector::dist2_sq(cent.row(0), cent.row(1)).sqrt();
        (within, between)
    }

    #[test]
    fn kernel_evaluations() {
        let x = [1.0, 2.0];
        let y = [3.0, -1.0];
        assert_eq!(Kernel::Linear.eval(&x, &y), 1.0);
        let rbf = Kernel::Rbf { gamma: 0.5 };
        assert!((rbf.eval(&x, &x) - 1.0).abs() < 1e-15);
        assert!(rbf.eval(&x, &y) < 1.0);
        let poly = Kernel::Polynomial {
            degree: 2,
            coef0: 1.0,
        };
        assert_eq!(poly.eval(&x, &y), 4.0); // (1 + 1)² = 4
    }

    #[test]
    fn exec_gram_builds_match_serial_bitwise() {
        let (x, _) = xor_data();
        let xs = srda_sparse::CsrMatrix::from_dense(&x, 0.0);
        for kernel in [
            Kernel::Linear,
            Kernel::Rbf { gamma: 0.4 },
            Kernel::Polynomial {
                degree: 2,
                coef0: 1.0,
            },
        ] {
            let kd = kernel.gram(&x);
            let kc = kernel.cross_gram(&x, &x);
            let ks = kernel.gram_sparse(&xs);
            let kcs = kernel.cross_gram_sparse(&xs, &xs);
            for t in [2, 4, 64] {
                let exec = Executor::threaded(t);
                assert!(kd.approx_eq(&kernel.gram_exec(&x, &exec), 0.0));
                assert!(kc.approx_eq(&kernel.cross_gram_exec(&x, &x, &exec), 0.0));
                assert!(ks.approx_eq(&kernel.gram_sparse_exec(&xs, &exec), 0.0));
                assert!(kcs.approx_eq(&kernel.cross_gram_sparse_exec(&xs, &xs, &exec), 0.0));
            }
        }
    }

    #[test]
    fn gram_is_symmetric_psd() {
        let (x, _) = xor_data();
        let k = Kernel::Rbf { gamma: 0.3 }.gram(&x);
        assert!(k.approx_eq(&k.transpose(), 1e-14));
        let eig = srda_linalg::SymmetricEigen::factor(&k).unwrap();
        assert!(*eig.values.last().unwrap() > -1e-9);
    }

    #[test]
    fn rbf_solves_xor() {
        let (x, y) = xor_data();
        let model = KernelSrda::new(KernelSrdaConfig {
            kernel: Kernel::Rbf { gamma: 0.5 },
            alpha: 0.1,
            exec: ExecPolicy::serial(),
            governor: None,
            recorder: Recorder::disabled(),
        })
        .fit_dense(&x, &y)
        .unwrap();
        let z = model.transform_dense(&x).unwrap();
        let (within, between) = within_between(&z, &y, 2);
        assert!(
            between > 3.0 * within,
            "RBF KSRDA failed XOR: within {within}, between {between}"
        );
    }

    #[test]
    fn linear_kernel_fails_xor_where_rbf_succeeds() {
        let (x, y) = xor_data();
        let lin = KernelSrda::new(KernelSrdaConfig {
            kernel: Kernel::Linear,
            alpha: 0.1,
            exec: ExecPolicy::serial(),
            governor: None,
            recorder: Recorder::disabled(),
        })
        .fit_dense(&x, &y)
        .unwrap();
        let z = lin.transform_dense(&x).unwrap();
        let (within, between) = within_between(&z, &y, 2);
        // XOR is not linearly separable: class centroids nearly coincide
        assert!(
            between < within,
            "linear kernel should not separate XOR: within {within}, between {between}"
        );
    }

    #[test]
    fn linear_kernel_matches_linear_srda_on_separable_data() {
        // on linearly separable data, linear-kernel KSRDA and linear SRDA
        // embed the training set with the same class geometry up to an
        // affine map; compare nearest-centroid predictions
        let x = Mat::from_rows(&[
            vec![0.0, 0.2],
            vec![0.2, 0.0],
            vec![0.1, 0.1],
            vec![5.0, 5.2],
            vec![5.2, 5.0],
            vec![5.1, 5.1],
        ])
        .unwrap();
        let y = vec![0, 0, 0, 1, 1, 1];
        let kmodel = KernelSrda::new(KernelSrdaConfig {
            kernel: Kernel::Linear,
            alpha: 1.0,
            exec: ExecPolicy::serial(),
            governor: None,
            recorder: Recorder::disabled(),
        })
        .fit_dense(&x, &y)
        .unwrap();
        let z = kmodel.transform_dense(&x).unwrap();
        let (within, between) = within_between(&z, &y, 2);
        assert!(between > 3.0 * within);
    }

    #[test]
    fn transform_unseen_points() {
        let (x, y) = xor_data();
        let model = KernelSrda::new(KernelSrdaConfig {
            kernel: Kernel::Rbf { gamma: 0.5 },
            alpha: 0.1,
            exec: ExecPolicy::serial(),
            governor: None,
            recorder: Recorder::disabled(),
        })
        .fit_dense(&x, &y)
        .unwrap();
        let test = Mat::from_rows(&[vec![0.1, 0.1], vec![0.1, 3.9]]).unwrap();
        let zt = model.transform_dense(&test).unwrap();
        let z = model.transform_dense(&x).unwrap();
        // test point 0 (class 0 region) is closer to the class-0 embedding
        let d0 = vector::dist2_sq(zt.row(0), z.row(0));
        let d1 = vector::dist2_sq(zt.row(0), z.row(10));
        assert!(d0 < d1);
        // dimension check
        assert_eq!(zt.shape(), (2, 1));
        assert!(model.transform_dense(&Mat::zeros(1, 5)).is_err());
    }

    #[test]
    fn alpha_shrinks_dual_coefficients() {
        let (x, y) = xor_data();
        let norm = |alpha: f64| {
            KernelSrda::new(KernelSrdaConfig {
                kernel: Kernel::Rbf { gamma: 0.5 },
                alpha,
                exec: ExecPolicy::serial(),
                governor: None,
                recorder: Recorder::disabled(),
            })
            .fit_dense(&x, &y)
            .unwrap()
            .beta()
            .frobenius_norm()
        };
        assert!(norm(0.01) > norm(10.0));
    }

    #[test]
    fn label_validation() {
        let (x, _) = xor_data();
        assert!(KernelSrda::default().fit_dense(&x, &[0; 20]).is_err());
        assert!(KernelSrda::default().fit_dense(&x, &[0, 1]).is_err());
    }

    #[test]
    fn sparse_gram_matches_dense_gram() {
        let (x, _) = xor_data();
        let xs = srda_sparse::CsrMatrix::from_dense(&x, 0.0);
        for kernel in [
            Kernel::Linear,
            Kernel::Rbf { gamma: 0.3 },
            Kernel::Polynomial {
                degree: 2,
                coef0: 1.0,
            },
        ] {
            let kd = kernel.gram(&x);
            let ks = kernel.gram_sparse(&xs);
            assert!(
                kd.approx_eq(&ks, 1e-10),
                "{kernel:?}: max diff {}",
                kd.sub(&ks).unwrap().max_abs()
            );
        }
    }

    #[test]
    fn sparse_fit_matches_dense_fit() {
        let (x, y) = xor_data();
        let xs = srda_sparse::CsrMatrix::from_dense(&x, 0.0);
        let cfg = KernelSrdaConfig {
            kernel: Kernel::Rbf { gamma: 0.5 },
            alpha: 0.2,
            exec: ExecPolicy::serial(),
            governor: None,
            recorder: Recorder::disabled(),
        };
        let md = KernelSrda::new(cfg.clone()).fit_dense(&x, &y).unwrap();
        let ms = KernelSrda::new(cfg).fit_sparse(&xs, &y).unwrap();
        assert!(md.beta().approx_eq(ms.beta(), 1e-9));
        // transforms agree in all four (model repr × query repr) combos
        let zd = md.transform_dense(&x).unwrap();
        let zs = ms.transform_sparse(&xs).unwrap();
        let z_cross1 = md.transform_sparse(&xs).unwrap();
        let z_cross2 = ms.transform_dense(&x).unwrap();
        assert!(zd.approx_eq(&zs, 1e-9));
        assert!(zd.approx_eq(&z_cross1, 1e-9));
        assert!(zd.approx_eq(&z_cross2, 1e-9));
    }

    #[test]
    fn sparse_transform_shape_check() {
        let (x, y) = xor_data();
        let model = KernelSrda::default().fit_dense(&x, &y).unwrap();
        assert!(model
            .transform_sparse(&srda_sparse::CsrMatrix::zeros(1, 7))
            .is_err());
    }
}
