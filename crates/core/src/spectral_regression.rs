//! The general Spectral Regression framework — the paper's closing
//! generalization (§III: "constructing the graph matrix W in the
//! unsupervised or semi-supervised way", pointing at the authors'
//! companion SR papers).
//!
//! The recipe is the same two steps as SRDA, with an arbitrary affinity
//! graph in place of the class graph:
//!
//! 1. **Spectral step** — compute the top eigenvectors of the normalized
//!    affinity `D^{-1/2} W D^{-1/2}` (equivalently, of the random-walk
//!    eigenproblem `W y = λ D y` after rescaling), discarding the trivial
//!    `D^{1/2}·1` eigenvector.
//! 2. **Regression step** — fit each eigenvector with bias-augmented
//!    ridge regression exactly as SRDA does.
//!
//! With [`crate::graph::AffinityGraph::supervised`] this *is* SRDA (the
//! closed-form responses are just the known eigenvectors of that graph —
//! verified in the tests); with a k-NN graph it is the unsupervised
//! spectral embedding + regression of the SR-LPP line of work; with a
//! mixed graph it is semi-supervised discriminant analysis.

use crate::graph::AffinityGraph;
use crate::model::Embedding;
use crate::{Result, SrdaError};
use srda_linalg::{ExecPolicy, Executor, Mat, SymmetricEigen};
use srda_obs::Recorder;
use srda_solvers::lsqr::{lsqr_controlled, LsqrConfig, SolveControls};
use srda_solvers::ridge::RidgeSolver;
use srda_solvers::StopReason;
use srda_solvers::{AugmentedOp, ExecDense};

/// How the spectral step's eigenvectors are computed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GraphEigensolver {
    /// Materialize the normalized affinity and run the dense symmetric
    /// eigensolver — `O(m³)`, exact, fine up to a few thousand samples.
    #[default]
    Dense,
    /// Matrix-free deflated power iteration on the (shifted) normalized
    /// affinity — `O(edges)` per iteration, the right choice for large
    /// sparse graphs. The spectrum lies in `[−1, 1]`, so the operator is
    /// shifted by `+I` to make it PSD before iterating.
    PowerIteration,
}

/// Configuration for the generic spectral-regression estimator.
#[derive(Debug, Clone)]
pub struct SpectralRegressionConfig {
    /// Number of embedding dimensions to extract (eigenvectors after the
    /// trivial one).
    pub n_components: usize,
    /// Ridge parameter for the regression step.
    pub alpha: f64,
    /// Use LSQR (with this iteration budget) instead of normal equations.
    pub lsqr_iterations: Option<usize>,
    /// Eigensolver for the spectral step.
    pub eigensolver: GraphEigensolver,
    /// Execution backend for the regression step's products (defaults to
    /// [`ExecPolicy::from_env`]).
    pub exec: ExecPolicy,
    /// Optional run governor, probed at the fit's stage boundaries
    /// (before the spectral step and before the regression step) and
    /// inside the LSQR regression loop. Interrupts surface as
    /// [`SrdaError::Interrupted`] with no checkpoint — the spectral step
    /// is not resumable.
    pub governor: Option<srda_solvers::RunGovernor>,
    /// Observability sink (spans + kernel-dispatch counters); defaults to
    /// [`Recorder::from_env`], so `SRDA_TRACE=1` instruments the fit.
    pub recorder: Recorder,
}

impl Default for SpectralRegressionConfig {
    fn default() -> Self {
        SpectralRegressionConfig {
            n_components: 2,
            alpha: 1.0,
            lsqr_iterations: None,
            eigensolver: GraphEigensolver::Dense,
            exec: ExecPolicy::from_env(),
            governor: None,
            recorder: Recorder::from_env(),
        }
    }
}

/// Generic spectral regression over an arbitrary affinity graph.
#[derive(Debug, Clone, Default)]
pub struct SpectralRegression {
    config: SpectralRegressionConfig,
}

impl SpectralRegression {
    /// Create an estimator with the given configuration.
    pub fn new(config: SpectralRegressionConfig) -> Self {
        SpectralRegression { config }
    }

    /// Compute the response vectors (step 1) for `graph`: the top
    /// non-trivial eigenvectors of `D^{-1/2} W D^{-1/2}`, mapped back to
    /// the random-walk scaling (`D^{-1/2}·u`) so that, like SRDA's
    /// responses, they solve `W y = λ D y`.
    ///
    /// Returns an `m × k` matrix with `k ≤ n_components` (fewer if the
    /// graph has fewer informative eigenvectors).
    pub fn responses(&self, graph: &AffinityGraph) -> Result<Mat> {
        let m = graph.n_nodes();
        if m == 0 {
            return Err(SrdaError::InvalidLabels {
                context: "empty graph".into(),
            });
        }
        let d = graph.degrees();
        let inv_sqrt: Vec<f64> = d
            .iter()
            .map(|&x| if x > 0.0 { 1.0 / x.sqrt() } else { 0.0 })
            .collect();

        // eigenvector columns of D^{-1/2} W D^{-1/2}, by either engine
        let eigenvectors: Vec<Vec<f64>> = match self.config.eigensolver {
            GraphEigensolver::Dense => {
                let w = graph.normalized_dense();
                let eig = SymmetricEigen::factor(&w)?;
                (0..m).map(|idx| eig.vectors.col(idx)).collect()
            }
            GraphEigensolver::PowerIteration => {
                // matrix-free: v ↦ D^{-1/2} W D^{-1/2} v + v (the +I shift
                // makes the operator PSD; the eigenvector ORDER for the
                // shifted spectrum matches the unshifted one)
                let apply = |v: &[f64]| {
                    let scaled: Vec<f64> = v.iter().zip(&inv_sqrt).map(|(a, b)| a * b).collect();
                    let wv = graph.apply(&scaled);
                    wv.iter()
                        .zip(&inv_sqrt)
                        .zip(v)
                        .map(|((a, b), orig)| a * b + orig)
                        .collect()
                };
                // +1 extra pair to cover the trivial eigenvector that the
                // deflation below will consume
                let k = (self.config.n_components + 1).min(m);
                let top = srda_linalg::power::top_k_symmetric(
                    m,
                    k,
                    apply,
                    &srda_linalg::power::PowerConfig::default(),
                );
                top.vectors
            }
        };

        // the trivial eigenvector is D^{1/2}·1 (eigenvalue = spectral max
        // for a connected graph). Deflate by orthogonality instead of
        // assuming it is exactly the first: build the normalized trivial
        // direction and skip eigenvectors nearly parallel to it.
        let mut trivial: Vec<f64> = d.iter().map(|&x| x.sqrt()).collect();
        srda_linalg::vector::normalize(&mut trivial);

        // When the leading eigenvalue is repeated (exactly the situation
        // in the supervised class graph, where eigenvalue 1 has
        // multiplicity c) the eigensolver returns an arbitrary basis of
        // the eigenspace, with the trivial direction mixed in. Deflate by
        // Gram-Schmidt: orthogonalize every candidate against the trivial
        // direction and against already-accepted responses, dropping
        // candidates that collapse to ~0.
        let mut accepted: Vec<Vec<f64>> = vec![trivial];
        let mut cols: Vec<Vec<f64>> = Vec::new();
        for u_raw in eigenvectors {
            if cols.len() >= self.config.n_components {
                break;
            }
            let mut u = u_raw;
            if srda_linalg::gram_schmidt::orthogonalize_against(&accepted, &mut u, 1e-6)
                == srda_linalg::gram_schmidt::GsOutcome::Dependent
            {
                continue;
            }
            accepted.push(u.clone());
            // map back: y = D^{-1/2} u
            let y: Vec<f64> = u.iter().zip(&inv_sqrt).map(|(a, b)| a * b).collect();
            cols.push(y);
        }
        let mut out = Mat::zeros(m, cols.len());
        for (j, cvec) in cols.iter().enumerate() {
            out.set_col(j, cvec);
        }
        Ok(out)
    }

    /// Fit on dense data with the given graph (the graph must be over the
    /// same `m` samples, in the same order).
    pub fn fit_dense(&self, x: &Mat, graph: &AffinityGraph) -> Result<Embedding> {
        let _fit_span = srda_obs::span!(self.config.recorder, "fit");
        if x.nrows() != graph.n_nodes() {
            return Err(SrdaError::ShapeMismatch {
                op: "spectral_regression fit_dense",
                expected: graph.n_nodes(),
                got: x.nrows(),
            });
        }
        crate::error::check_governor(self.config.governor.as_ref())?;
        let ybar = self.responses(graph)?;
        let n = x.ncols();
        let exec = Executor::with_recorder(self.config.exec, self.config.recorder);
        crate::error::check_governor(self.config.governor.as_ref())?;
        let w_aug = match self.config.lsqr_iterations {
            None => {
                let x_aug = x.append_constant_col(1.0);
                let solver = RidgeSolver::auto_exec(&x_aug, self.config.alpha, exec)?;
                solver.solve(&x_aug, &ybar)?
            }
            Some(iters) => {
                let inner = ExecDense::new(x, exec);
                let op = AugmentedOp::new(&inner);
                let cfg = LsqrConfig {
                    damp: self.config.alpha.sqrt(),
                    max_iter: iters,
                    tol: 0.0,
                };
                let mut w = Mat::zeros(n + 1, ybar.ncols());
                for j in 0..ybar.ncols() {
                    let controls = SolveControls {
                        governor: self.config.governor.as_ref(),
                        ..SolveControls::default()
                    };
                    let r = lsqr_controlled(&op, &ybar.col(j), &cfg, &controls);
                    if let StopReason::Interrupted(reason) = r.stop {
                        return Err(SrdaError::Interrupted {
                            reason,
                            responses_completed: j,
                            checkpoint: None,
                        });
                    }
                    w.set_col(j, &r.x);
                }
                w
            }
        };
        let weights = w_aug.block(0, n, 0, w_aug.ncols());
        let bias = w_aug.row(n).to_vec();
        Embedding::new(weights, bias)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::EdgeWeight;
    use crate::{ClassIndex, Srda, SrdaConfig};

    fn blobs() -> (Mat, Vec<usize>) {
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for k in 0..3usize {
            for s in 0..6 {
                let noise = |d: usize| {
                    let h = ((k * 31 + s * 7 + d * 13) as f64 * 12.9898).sin() * 43758.5453;
                    (h - h.floor() - 0.5) * 0.2
                };
                rows.push(
                    (0..5)
                        .map(|d| if d == k { 4.0 } else { 0.0 } + noise(d))
                        .collect::<Vec<_>>(),
                );
                y.push(k);
            }
        }
        (Mat::from_rows(&rows).unwrap(), y)
    }

    #[test]
    fn supervised_graph_responses_match_srda_span() {
        // the SR responses on the class graph must span the same space as
        // SRDA's closed-form responses (both are bases of the eigenvalue-1
        // eigenspace of W, orthogonal to 1)
        let (_, y) = blobs();
        let graph = AffinityGraph::supervised(&y);
        let sr = SpectralRegression::new(SpectralRegressionConfig {
            n_components: 2,
            ..Default::default()
        });
        let r_sr = sr.responses(&graph).unwrap();
        assert_eq!(r_sr.ncols(), 2);

        let index = ClassIndex::new(&y).unwrap();
        let r_srda = crate::responses::generate(&index);

        // both span: check each SR response lies in the SRDA span
        let basis: Vec<Vec<f64>> = (0..r_srda.ncols()).map(|j| r_srda.col(j)).collect();
        for j in 0..2 {
            let mut v = r_sr.col(j);
            srda_linalg::vector::normalize(&mut v);
            let proj: f64 = basis
                .iter()
                .map(|b| srda_linalg::vector::dot(b, &v).powi(2))
                .sum();
            assert!(proj > 1.0 - 1e-8, "response {j}: proj {proj}");
        }
    }

    #[test]
    fn supervised_graph_embedding_agrees_with_srda_subspace() {
        let (x, y) = blobs();
        let graph = AffinityGraph::supervised(&y);
        let sr_emb = SpectralRegression::new(SpectralRegressionConfig {
            n_components: 2,
            alpha: 1.0,
            lsqr_iterations: None,
            ..Default::default()
        })
        .fit_dense(&x, &graph)
        .unwrap();
        let srda_model = Srda::new(SrdaConfig::default()).fit_dense(&x, &y).unwrap();
        // same span of weight columns
        let cols: Vec<Vec<f64>> = (0..2)
            .map(|j| srda_model.embedding().weights().col(j))
            .collect();
        let basis = srda_linalg::gram_schmidt::orthonormalize(&cols, 1e-12);
        for j in 0..2 {
            let mut v = sr_emb.weights().col(j);
            srda_linalg::vector::normalize(&mut v);
            let proj: f64 = basis
                .iter()
                .map(|b| srda_linalg::vector::dot(b, &v).powi(2))
                .sum();
            assert!(proj > 1.0 - 1e-6, "weight {j}: proj {proj}");
        }
    }

    #[test]
    fn unsupervised_knn_graph_separates_clusters() {
        // no labels at all: the k-NN graph's spectral embedding + ridge
        // regression should still separate well-separated blobs
        let (x, y) = blobs();
        let graph = AffinityGraph::knn(&x, 3, EdgeWeight::Heat { t: 1.0 });
        let emb = SpectralRegression::new(SpectralRegressionConfig {
            n_components: 2,
            alpha: 0.01,
            lsqr_iterations: None,
            ..Default::default()
        })
        .fit_dense(&x, &graph)
        .unwrap();
        let z = emb.transform_dense(&x).unwrap();
        let (cent, _) = srda_linalg::stats::class_means(&z, &y, 3).unwrap();
        let mut within = 0.0f64;
        for (i, &k) in y.iter().enumerate() {
            within = within.max(srda_linalg::vector::dist2_sq(z.row(i), cent.row(k)).sqrt());
        }
        let mut min_between = f64::INFINITY;
        for a in 0..3 {
            for b in (a + 1)..3 {
                min_between =
                    min_between.min(srda_linalg::vector::dist2_sq(cent.row(a), cent.row(b)).sqrt());
            }
        }
        assert!(
            min_between > within,
            "clusters not separated: within {within}, between {min_between}"
        );
    }

    #[test]
    fn semi_supervised_beats_tiny_labeled_set() {
        // 1 labeled sample per class + unlabeled structure: the mixed
        // graph should classify the unlabeled points correctly
        let (x, y) = blobs();
        let partial: Vec<Option<usize>> = y
            .iter()
            .enumerate()
            .map(|(i, &k)| if i % 6 == 0 { Some(k) } else { None })
            .collect();
        let graph =
            AffinityGraph::semi_supervised(&x, &partial, 3, EdgeWeight::Heat { t: 1.0 }, 0.5);
        let emb = SpectralRegression::new(SpectralRegressionConfig {
            n_components: 2,
            alpha: 0.1,
            lsqr_iterations: None,
            ..Default::default()
        })
        .fit_dense(&x, &graph)
        .unwrap();
        let z = emb.transform_dense(&x).unwrap();
        // nearest-centroid using only the labeled points' embeddings
        let labeled: Vec<usize> = (0..18).step_by(6).collect();
        let zl = z.select_rows(&labeled);
        let yl: Vec<usize> = labeled.iter().map(|&i| y[i]).collect();
        let clf = srda_eval_stub::fit_predict(&zl, &yl, &z);
        let errors = clf.iter().zip(&y).filter(|(p, t)| p != t).count();
        assert!(errors <= 2, "{errors} of 18 misclassified");
    }

    #[test]
    fn lsqr_and_direct_agree() {
        let (x, y) = blobs();
        let graph = AffinityGraph::supervised(&y);
        let direct = SpectralRegression::new(SpectralRegressionConfig {
            n_components: 2,
            alpha: 1.0,
            lsqr_iterations: None,
            ..Default::default()
        })
        .fit_dense(&x, &graph)
        .unwrap();
        let iterative = SpectralRegression::new(SpectralRegressionConfig {
            n_components: 2,
            alpha: 1.0,
            lsqr_iterations: Some(300),
            ..Default::default()
        })
        .fit_dense(&x, &graph)
        .unwrap();
        assert!(direct.weights().approx_eq(
            iterative.weights(),
            1e-6 * direct.weights().max_abs().max(1.0)
        ));
    }

    #[test]
    fn power_iteration_engine_matches_dense_on_class_graph() {
        let (x, y) = blobs();
        let graph = AffinityGraph::supervised(&y);
        let dense = SpectralRegression::new(SpectralRegressionConfig {
            n_components: 2,
            alpha: 1.0,
            ..Default::default()
        })
        .fit_dense(&x, &graph)
        .unwrap();
        let power = SpectralRegression::new(SpectralRegressionConfig {
            n_components: 2,
            alpha: 1.0,
            eigensolver: GraphEigensolver::PowerIteration,
            ..Default::default()
        })
        .fit_dense(&x, &graph)
        .unwrap();
        // responses differ by a rotation of the eigenvalue-1 eigenspace, so
        // compare spanned weight subspaces
        let cols: Vec<Vec<f64>> = (0..2).map(|j| dense.weights().col(j)).collect();
        let basis = srda_linalg::gram_schmidt::orthonormalize(&cols, 1e-10);
        for j in 0..2 {
            let mut v = power.weights().col(j);
            srda_linalg::vector::normalize(&mut v);
            let proj: f64 = basis
                .iter()
                .map(|b| srda_linalg::vector::dot(b, &v).powi(2))
                .sum();
            assert!(proj > 1.0 - 1e-4, "weight {j}: proj {proj}");
        }
    }

    #[test]
    fn shape_mismatch_rejected() {
        let (x, y) = blobs();
        let graph = AffinityGraph::supervised(&y[..10]);
        assert!(SpectralRegression::default().fit_dense(&x, &graph).is_err());
    }

    /// tiny local nearest-centroid helper (srda-eval depends on this
    /// crate, so tests here cannot use it without a cycle)
    mod srda_eval_stub {
        use srda_linalg::{vector, Mat};

        pub fn fit_predict(z_train: &Mat, y_train: &[usize], z_all: &Mat) -> Vec<usize> {
            let c = y_train.iter().max().unwrap() + 1;
            let (cent, _) = srda_linalg::stats::class_means(z_train, y_train, c).unwrap();
            (0..z_all.nrows())
                .map(|i| {
                    let mut best = (f64::INFINITY, 0);
                    for k in 0..c {
                        let d = vector::dist2_sq(z_all.row(i), cent.row(k));
                        if d < best.0 {
                            best = (d, k);
                        }
                    }
                    best.1
                })
                .collect()
        }
    }
}
