//! # srda — Spectral Regression Discriminant Analysis
//!
//! A from-scratch Rust reproduction of
//!
//! > Deng Cai, Xiaofei He, Jiawei Han.
//! > *Training Linear Discriminant Analysis in Linear Time.* ICDE 2008.
//!
//! ## What this crate provides
//!
//! * [`Srda`] — the paper's contribution. LDA recast as `c − 1` regularized
//!   least-squares problems via spectral graph analysis (Theorem 1), with
//!   three interchangeable solvers: direct normal equations (Eqn 20), the
//!   dual normal equations for `n > m` (Eqn 21), and LSQR for linear-time
//!   training on large sparse data (§III.C.2). Dense
//!   ([`srda_linalg::Mat`]) and sparse ([`srda_sparse::CsrMatrix`]) inputs
//!   are both first-class.
//! * [`Lda`] — classical LDA solved exactly as the paper's §II-A: SVD of
//!   the centered data by the cross-product trick, then a `c × c`
//!   eigenproblem.
//! * [`Rlda`] — regularized LDA: the generalized problem
//!   `S_b a = λ (S_t + αI) a` solved in the SVD basis.
//! * [`IdrQr`] — the IDR/QR baseline (Ye, Li, Xiong, Park, Janardan,
//!   Kumar; KDD 2004): QR of the class-centroid matrix, then a reduced
//!   `c × c` discriminant problem.
//! * [`Embedding`] — the common output: an affine map `x ↦ Wᵀx + b` into
//!   the (at most `c − 1`)-dimensional discriminant subspace.
//!
//! ## Quick start
//!
//! ```
//! use srda::{Srda, SrdaConfig};
//! use srda_linalg::Mat;
//!
//! // 6 samples, 2 features, 2 classes
//! let x = Mat::from_rows(&[
//!     vec![0.0, 0.1], vec![0.1, 0.0], vec![-0.1, 0.0],
//!     vec![5.0, 5.1], vec![5.1, 5.0], vec![4.9, 5.0],
//! ]).unwrap();
//! let y = vec![0, 0, 0, 1, 1, 1];
//!
//! let model = Srda::new(SrdaConfig::default()).fit_dense(&x, &y).unwrap();
//! let z = model.embedding().transform_dense(&x).unwrap();
//! assert_eq!(z.shape(), (6, 1)); // c − 1 = 1 discriminant direction
//! // same-class samples embed close together, different classes far apart
//! assert!((z[(0, 0)] - z[(1, 0)]).abs() < (z[(0, 0)] - z[(3, 0)]).abs());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// index-based loops are the clearest way to write the numeric kernels here
#![allow(clippy::needless_range_loop)]

pub mod checkpoint;
pub mod error;
pub mod graph;
pub mod idr_qr;
pub mod kernel;
pub mod labels;
pub mod lda;
pub mod model;
pub mod pca;
pub mod report;
pub mod responses;
pub mod rlda;
pub mod spectral_regression;
pub mod srda;

pub use checkpoint::{CompletedResponse, FitCheckpoint, FitFingerprint, FIT_CHECKPOINT_FILE};
pub use error::SrdaError;
pub use graph::{AffinityGraph, EdgeWeight};
pub use idr_qr::{IdrQr, IdrQrConfig};
pub use kernel::{Kernel, KernelSrda, KernelSrdaConfig, KernelSrdaModel};
pub use labels::ClassIndex;
pub use lda::{Lda, LdaConfig, SvdMethod};
pub use model::Embedding;
pub use pca::{Fisherfaces, FisherfacesConfig, Pca, PcaConfig, PcaModel};
pub use report::{
    CertStatus, FitReport, QuarantineSummary, RecoveryAction, ResponseSolver, SolveCertificate,
};
pub use rlda::{Rlda, RldaConfig};
pub use spectral_regression::{GraphEigensolver, SpectralRegression, SpectralRegressionConfig};
pub use srda::{
    CheckpointPolicy, FitOutcome, InterruptedFit, Srda, SrdaConfig, SrdaModel, SrdaSolver,
};
pub use srda_linalg::{Backend, ExecPolicy, Executor};
pub use srda_obs::{IterationRecord, ObsReport, Recorder, SolverTrace, TRACE_ENV};
pub use srda_solvers::{CancelToken, CheckpointError, Interrupt, RunBudget, RunGovernor};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, SrdaError>;
