//! Affinity graphs over samples — the `W` matrices of the spectral
//! regression framework.
//!
//! The paper's §III closes by noting that SRDA "can be generalized by
//! constructing the graph matrix in the unsupervised or semi-supervised
//! way" (citing the authors' companion Spectral Regression papers). This
//! module provides those constructions:
//!
//! * [`AffinityGraph::supervised`] — the paper's block-diagonal class
//!   graph (Eqn 6): `W_ij = 1/m_k` iff `i` and `j` share class `k`.
//! * [`AffinityGraph::knn`] — an unsupervised k-nearest-neighbour graph
//!   with binary or heat-kernel weights (the LPP/Laplacianfaces graph).
//! * [`AffinityGraph::semi_supervised`] — labeled pairs get the class
//!   weight, everything else falls back to the k-NN weight.
//!
//! Graphs are stored as symmetric adjacency lists (the supervised graph is
//! dense within blocks but never materialized as an `m × m` matrix).

use srda_linalg::{vector, Mat};

/// Edge weighting for neighbourhood graphs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EdgeWeight {
    /// 0/1 adjacency.
    Binary,
    /// Heat kernel `exp(−‖xᵢ − xⱼ‖² / (2t²))`.
    Heat {
        /// Kernel width `t > 0`.
        t: f64,
    },
}

/// A symmetric, non-negative affinity graph over `m` samples.
#[derive(Debug, Clone)]
pub struct AffinityGraph {
    m: usize,
    /// Adjacency: for each node, `(neighbour, weight)` with `neighbour`
    /// strictly increasing; only entries with weight ≠ 0. Symmetric by
    /// construction.
    adj: Vec<Vec<(usize, f64)>>,
}

impl AffinityGraph {
    /// Number of nodes (samples).
    pub fn n_nodes(&self) -> usize {
        self.m
    }

    /// Neighbours of node `i` as `(index, weight)` pairs.
    pub fn neighbors(&self, i: usize) -> &[(usize, f64)] {
        &self.adj[i]
    }

    /// Total number of stored (directed) edges.
    pub fn n_edges(&self) -> usize {
        self.adj.iter().map(|a| a.len()).sum()
    }

    /// The paper's supervised class graph (Eqn 6).
    ///
    /// ```
    /// use srda::AffinityGraph;
    ///
    /// let g = AffinityGraph::supervised(&[0, 0, 1]);
    /// // same-class pairs share weight 1/m_k; rows sum to 1
    /// assert_eq!(g.neighbors(0), &[(0, 0.5), (1, 0.5)]);
    /// assert_eq!(g.degrees(), vec![1.0, 1.0, 1.0]);
    /// ```
    pub fn supervised(labels: &[usize]) -> Self {
        let m = labels.len();
        let c = labels.iter().max().map_or(0, |&k| k + 1);
        let mut members = vec![Vec::new(); c];
        for (i, &k) in labels.iter().enumerate() {
            members[k].push(i);
        }
        let mut adj = vec![Vec::new(); m];
        for mem in &members {
            if mem.is_empty() {
                continue;
            }
            let w = 1.0 / mem.len() as f64;
            for &i in mem {
                adj[i] = mem.iter().map(|&j| (j, w)).collect();
            }
        }
        AffinityGraph { m, adj }
    }

    /// Unsupervised symmetric k-NN graph on the rows of `x`.
    ///
    /// An edge `{i, j}` exists if `j` is among the `k` nearest neighbours
    /// of `i` **or** vice versa (the usual symmetrization), weighted per
    /// `weight`.
    pub fn knn(x: &Mat, k: usize, weight: EdgeWeight) -> Self {
        let m = x.nrows();
        let k = k.min(m.saturating_sub(1));
        // brute-force neighbour search: O(m² n); fine at the scales the
        // dense eigenstep (also O(m²·)) can handle anyway
        let mut pairs: Vec<(usize, usize, f64)> = Vec::new();
        for i in 0..m {
            let mut dists: Vec<(f64, usize)> = (0..m)
                .filter(|&j| j != i)
                .map(|j| (vector::dist2_sq(x.row(i), x.row(j)), j))
                .collect();
            dists.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            for &(d2, j) in dists.iter().take(k) {
                let w = match weight {
                    EdgeWeight::Binary => 1.0,
                    EdgeWeight::Heat { t } => (-d2 / (2.0 * t * t)).exp(),
                };
                let (a, b) = if i < j { (i, j) } else { (j, i) };
                pairs.push((a, b, w));
            }
        }
        // dedupe symmetric duplicates, keep the max weight
        pairs.sort_by_key(|p| (p.0, p.1));
        pairs.dedup_by(|a, b| {
            if a.0 == b.0 && a.1 == b.1 {
                b.2 = b.2.max(a.2);
                true
            } else {
                false
            }
        });
        let mut adj = vec![Vec::new(); m];
        for (i, j, w) in pairs {
            adj[i].push((j, w));
            adj[j].push((i, w));
        }
        for a in &mut adj {
            a.sort_by_key(|&(j, _)| j);
        }
        AffinityGraph { m, adj }
    }

    /// Semi-supervised graph: samples with `Some(label)` are connected to
    /// all same-class labeled samples with the supervised weight; all
    /// samples additionally carry the k-NN affinity scaled by
    /// `unsupervised_weight`.
    pub fn semi_supervised(
        x: &Mat,
        labels: &[Option<usize>],
        k: usize,
        weight: EdgeWeight,
        unsupervised_weight: f64,
    ) -> Self {
        assert_eq!(x.nrows(), labels.len());
        let m = x.nrows();
        let base = AffinityGraph::knn(x, k, weight);
        // accumulate into a map-per-node
        let mut adj: Vec<Vec<(usize, f64)>> = vec![Vec::new(); m];
        for i in 0..m {
            adj[i] = base.adj[i]
                .iter()
                .map(|&(j, w)| (j, w * unsupervised_weight))
                .collect();
        }
        // supervised part
        let c = labels.iter().flatten().max().map_or(0, |&k2| k2 + 1);
        let mut members = vec![Vec::new(); c];
        for (i, l) in labels.iter().enumerate() {
            if let Some(k2) = l {
                members[*k2].push(i);
            }
        }
        for mem in &members {
            if mem.is_empty() {
                continue;
            }
            let w = 1.0 / mem.len() as f64;
            for &i in mem {
                for &j in mem {
                    match adj[i].binary_search_by_key(&j, |&(n, _)| n) {
                        Ok(pos) => adj[i][pos].1 += w,
                        Err(pos) => adj[i].insert(pos, (j, w)),
                    }
                }
            }
        }
        AffinityGraph { m, adj }
    }

    /// Node degrees `dᵢ = Σⱼ Wᵢⱼ`.
    pub fn degrees(&self) -> Vec<f64> {
        self.adj
            .iter()
            .map(|a| a.iter().map(|&(_, w)| w).sum())
            .collect()
    }

    /// Apply the affinity matrix: `y = W·v`.
    pub fn apply(&self, v: &[f64]) -> Vec<f64> {
        debug_assert_eq!(v.len(), self.m);
        self.adj
            .iter()
            .map(|a| a.iter().map(|&(j, w)| w * v[j]).sum())
            .collect()
    }

    /// Materialize the normalized affinity `D^{-1/2} W D^{-1/2}` as a
    /// dense symmetric matrix (for the dense eigenstep). Nodes with zero
    /// degree contribute zero rows/columns.
    pub fn normalized_dense(&self) -> Mat {
        let d = self.degrees();
        let inv_sqrt: Vec<f64> = d
            .iter()
            .map(|&x| if x > 0.0 { 1.0 / x.sqrt() } else { 0.0 })
            .collect();
        let mut w = Mat::zeros(self.m, self.m);
        for (i, a) in self.adj.iter().enumerate() {
            for &(j, wij) in a {
                w[(i, j)] = wij * inv_sqrt[i] * inv_sqrt[j];
            }
        }
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn supervised_matches_paper_blocks() {
        let g = AffinityGraph::supervised(&[0, 0, 1, 1, 1]);
        assert_eq!(g.n_nodes(), 5);
        // class 0: weight 1/2 among {0,1}
        assert_eq!(g.neighbors(0), &[(0, 0.5), (1, 0.5)]);
        // class 1: weight 1/3 among {2,3,4}
        assert_eq!(g.neighbors(3).len(), 3);
        assert!((g.neighbors(3)[0].1 - 1.0 / 3.0).abs() < 1e-15);
    }

    #[test]
    fn supervised_ones_vector_is_eigenvector() {
        // W·1 = 1 (each row sums to 1 in the class graph)
        let g = AffinityGraph::supervised(&[0, 1, 0, 2, 1]);
        let ones = vec![1.0; 5];
        let w1 = g.apply(&ones);
        for v in w1 {
            assert!((v - 1.0).abs() < 1e-14);
        }
    }

    fn grid_points() -> Mat {
        // two tight clusters of 3 points
        Mat::from_rows(&[
            vec![0.0, 0.0],
            vec![0.1, 0.0],
            vec![0.0, 0.1],
            vec![5.0, 5.0],
            vec![5.1, 5.0],
            vec![5.0, 5.1],
        ])
        .unwrap()
    }

    #[test]
    fn knn_graph_is_symmetric_and_local() {
        let g = AffinityGraph::knn(&grid_points(), 2, EdgeWeight::Binary);
        // symmetry
        for i in 0..6 {
            for &(j, w) in g.neighbors(i) {
                let back = g
                    .neighbors(j)
                    .iter()
                    .find(|&&(n, _)| n == i)
                    .map(|&(_, wb)| wb);
                assert_eq!(back, Some(w), "asymmetric edge ({i},{j})");
            }
        }
        // locality: no edges between the two clusters with k = 2
        for i in 0..3 {
            for &(j, _) in g.neighbors(i) {
                assert!(j < 3, "cross-cluster edge {i}->{j}");
            }
        }
    }

    #[test]
    fn heat_weights_decay_with_distance() {
        let x = Mat::from_rows(&[vec![0.0], vec![1.0], vec![3.0]]).unwrap();
        let g = AffinityGraph::knn(&x, 2, EdgeWeight::Heat { t: 1.0 });
        let w01 = g.neighbors(0).iter().find(|&&(j, _)| j == 1).unwrap().1;
        let w02 = g.neighbors(0).iter().find(|&&(j, _)| j == 2).unwrap().1;
        assert!(w01 > w02);
        assert!((w01 - (-0.5f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn degrees_sum_edge_weights() {
        let g = AffinityGraph::supervised(&[0, 0, 0]);
        assert_eq!(g.degrees(), vec![1.0; 3]);
    }

    #[test]
    fn normalized_dense_is_symmetric_with_unit_spectral_bound() {
        let g = AffinityGraph::knn(&grid_points(), 2, EdgeWeight::Heat { t: 1.0 });
        let w = g.normalized_dense();
        assert!(w.approx_eq(&w.transpose(), 1e-14));
        let eig = srda_linalg::SymmetricEigen::factor(&w).unwrap();
        assert!(eig.values[0] <= 1.0 + 1e-10, "λmax {}", eig.values[0]);
    }

    #[test]
    fn semi_supervised_combines_both_sources() {
        let x = grid_points();
        let labels = [Some(0), None, None, Some(1), None, None];
        let g = AffinityGraph::semi_supervised(&x, &labels, 1, EdgeWeight::Binary, 0.1);
        // labeled singletons get a self-edge of weight 1
        let self_edge = g
            .neighbors(0)
            .iter()
            .find(|&&(j, _)| j == 0)
            .map(|&(_, w)| w);
        assert_eq!(self_edge, Some(1.0));
        // unlabeled nodes still have (scaled) knn edges
        assert!(!g.neighbors(1).is_empty());
        for &(_, w) in g.neighbors(1) {
            assert!(w <= 0.1 + 1e-12);
        }
    }

    #[test]
    fn knn_with_oversized_k_clamps() {
        let x = Mat::from_rows(&[vec![0.0], vec![1.0]]).unwrap();
        let g = AffinityGraph::knn(&x, 100, EdgeWeight::Binary);
        assert_eq!(g.neighbors(0), &[(1, 1.0)]);
    }
}
