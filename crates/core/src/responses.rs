//! SRDA response generation — §III.B step 1 of the paper.
//!
//! The eigenvectors of the class-affinity matrix `W` (Eqn 6) for its
//! (repeated) eigenvalue 1 are spanned by the `c` class-indicator vectors
//! (Eqn 15). Because the eigenvalue is repeated, *any* orthogonal basis of
//! that span works; the paper picks the basis produced by taking the
//! all-ones vector first and Gram-Schmidt-orthogonalizing the indicators
//! against it, then discards the ones vector. The result is `c − 1`
//! orthonormal responses `ȳ_k` with (Eqn 16):
//!
//! * `ȳ_iᵀ ȳ_j = δ_ij` (orthonormal),
//! * `ȳ_iᵀ 1 = 0` (each response sums to zero),
//! * each `ȳ_k` is constant within every class (it lives in the indicator
//!   span) — which is what makes Theorem 1 applicable.

use crate::labels::ClassIndex;
use srda_linalg::gram_schmidt::{orthogonalize_against, GsOutcome};
use srda_linalg::Mat;

/// Numerical dependence threshold for the Gram-Schmidt sweep. The inputs
/// are exact 0/1 indicators, so anything below this is rounding noise.
const GS_TOL: f64 = 1e-8;

/// Generate the `m × (c − 1)` response matrix `Ȳ` (columns are the `ȳ_k`).
pub fn generate(index: &ClassIndex) -> Mat {
    let m = index.n_samples();
    let c = index.n_classes();

    // ones vector first, normalized — the eigenvector to be discarded
    let mut basis: Vec<Vec<f64>> = Vec::with_capacity(c);
    let ones_normalized = vec![1.0 / (m as f64).sqrt(); m];
    basis.push(ones_normalized);

    // orthogonalize each indicator in turn; exactly one becomes dependent
    // (the indicators sum to the ones vector)
    let mut responses: Vec<Vec<f64>> = Vec::with_capacity(c - 1);
    for k in 0..c {
        let mut v = index.indicator(k);
        if orthogonalize_against(&basis, &mut v, GS_TOL) == GsOutcome::Added {
            basis.push(v.clone());
            responses.push(v);
        }
    }
    debug_assert_eq!(responses.len(), c - 1, "exactly c-1 responses survive");

    let mut y = Mat::zeros(m, c - 1);
    for (j, r) in responses.iter().enumerate() {
        y.set_col(j, r);
    }
    y
}

#[cfg(test)]
mod tests {
    use super::*;
    use srda_linalg::vector;

    fn index(labels: &[usize]) -> ClassIndex {
        ClassIndex::new(labels).unwrap()
    }

    #[test]
    fn shape_is_m_by_c_minus_1() {
        let y = generate(&index(&[0, 0, 1, 1, 2, 2, 2]));
        assert_eq!(y.shape(), (7, 2));
    }

    #[test]
    fn columns_are_orthonormal() {
        let y = generate(&index(&[0, 1, 2, 0, 1, 2, 0, 3, 3]));
        for i in 0..y.ncols() {
            for j in 0..y.ncols() {
                let d = vector::dot(&y.col(i), &y.col(j));
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((d - expect).abs() < 1e-12, "({i},{j}) -> {d}");
            }
        }
    }

    #[test]
    fn columns_sum_to_zero() {
        // orthogonality to the ones vector, Eqn 16's second condition
        let y = generate(&index(&[0, 0, 0, 1, 1, 2]));
        for j in 0..y.ncols() {
            assert!(vector::sum(&y.col(j)).abs() < 1e-12);
        }
    }

    #[test]
    fn responses_constant_within_class() {
        // the property Theorem 1 needs: ȳ ∈ span of the indicators
        let labels = [0, 1, 2, 1, 0, 2, 2, 0];
        let ci = index(&labels);
        let y = generate(&ci);
        for j in 0..y.ncols() {
            let col = y.col(j);
            for k in 0..ci.n_classes() {
                let mem = ci.members(k);
                let first = col[mem[0]];
                for &i in mem {
                    assert!(
                        (col[i] - first).abs() < 1e-12,
                        "response {j} not constant on class {k}"
                    );
                }
            }
        }
    }

    #[test]
    fn two_class_response_is_the_classic_contrast() {
        // c = 2, balanced: the single response is ±const with sign by class
        let y = generate(&index(&[0, 0, 1, 1]));
        assert_eq!(y.shape(), (4, 1));
        let col = y.col(0);
        assert!((col[0] - col[1]).abs() < 1e-12);
        assert!((col[2] - col[3]).abs() < 1e-12);
        assert!((col[0] + col[2]).abs() < 1e-12); // balanced → symmetric
        assert!((vector::norm2(&col) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn unbalanced_classes_still_orthonormal() {
        let y = generate(&index(&[0, 0, 0, 0, 0, 0, 0, 1, 2, 2]));
        assert_eq!(y.shape(), (10, 2));
        for i in 0..2 {
            for j in 0..2 {
                let d = vector::dot(&y.col(i), &y.col(j));
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((d - expect).abs() < 1e-12);
            }
        }
        for j in 0..2 {
            assert!(vector::sum(&y.col(j)).abs() < 1e-12);
        }
    }

    #[test]
    fn responses_are_eigenvectors_of_w() {
        // Verify the spectral claim directly: W ȳ = ȳ where W is the
        // block-diagonal matrix with blocks (1/m_k)·1·1ᵀ (Eqn 6).
        let labels = [0, 0, 1, 1, 1, 2];
        let ci = index(&labels);
        let m = labels.len();
        let mut w = Mat::zeros(m, m);
        for k in 0..ci.n_classes() {
            let mem = ci.members(k);
            let inv = 1.0 / mem.len() as f64;
            for &i in mem {
                for &j in mem {
                    w[(i, j)] = inv;
                }
            }
        }
        let y = generate(&ci);
        for j in 0..y.ncols() {
            let col = y.col(j);
            let wy = srda_linalg::ops::matvec(&w, &col).unwrap();
            for i in 0..m {
                assert!(
                    (wy[i] - col[i]).abs() < 1e-12,
                    "W·ȳ ≠ ȳ at ({i}, response {j})"
                );
            }
        }
    }

    #[test]
    fn deterministic() {
        let ci = index(&[0, 1, 0, 2, 2, 1]);
        let y1 = generate(&ci);
        let y2 = generate(&ci);
        assert!(y1.approx_eq(&y2, 0.0));
    }
}
